/// Fuzz BoundStore::deserialize: the CRC-framed warm-start block a restarted
/// tuning campaign loads from disk.  The block is untrusted (any file path
/// can be handed to the warm-start load); the property is Status-on-garbage,
/// never a crash, and a store left unchanged by a failed load.
#include "engine/bound_store.hpp"
#include "fuzz_driver.hpp"

void fraz_fuzz_one(const std::uint8_t* data, std::size_t size) {
  fraz::BoundStore store;
  store.put("seed", 4.0, 1.0);  // pre-existing state a failed load must keep
  const fraz::Status status = store.deserialize(data, size);
  if (!status.ok()) {
    // Failed loads must leave the prior contents intact.
    if (store.get("seed", 4.0) != 1.0) __builtin_trap();
  }
}
