#ifndef FRAZ_FUZZ_DRIVER_HPP
#define FRAZ_FUZZ_DRIVER_HPP

/// \file fuzz_driver.hpp
/// Dual-mode entry point shared by every FRaZ fuzz harness.
///
/// Each harness implements exactly one function:
///
///     void fraz_fuzz_one(const std::uint8_t* data, std::size_t size);
///
/// and gets two drivers out of this header:
///
///  - **libFuzzer** (compiled with clang and `-fsanitize=fuzzer`, selected
///    by the FRAZ_FUZZ_LIBFUZZER define): the canonical coverage-guided
///    loop used by the CI fuzz smoke.
///  - **standalone** (any compiler, no define): a plain main() that replays
///    every file named on the command line — or every regular file of every
///    directory named — through the harness once.  This is how the checked-
///    in corpus runs under plain g++ builds and how a crasher is replayed
///    in a debugger without a fuzzing toolchain.
///
/// Harness rules: the callback must be deterministic, must tolerate any
/// byte string without crashing (that is the property under test), and must
/// not leak — the sanitized smoke run counts leaks as failures.

#include <cstddef>
#include <cstdint>

void fraz_fuzz_one(const std::uint8_t* data, std::size_t size);

#if defined(FRAZ_FUZZ_LIBFUZZER)

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  fraz_fuzz_one(data, size);
  return 0;
}

#else  // standalone replay driver

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

namespace fraz_fuzz_detail {

inline bool replay_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "fuzz: cannot read %s\n", path.string().c_str());
    return false;
  }
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  fraz_fuzz_one(bytes.data(), bytes.size());
  return true;
}

}  // namespace fraz_fuzz_detail

int main(int argc, char** argv) {
  namespace fs = std::filesystem;
  std::size_t replayed = 0;
  bool ok = true;
  for (int i = 1; i < argc; ++i) {
    const fs::path path(argv[i]);
    std::error_code ec;
    if (fs::is_directory(path, ec)) {
      for (const fs::directory_entry& entry : fs::directory_iterator(path, ec)) {
        if (!entry.is_regular_file()) continue;
        ok = fraz_fuzz_detail::replay_file(entry.path()) && ok;
        ++replayed;
      }
    } else {
      ok = fraz_fuzz_detail::replay_file(path) && ok;
      ++replayed;
    }
  }
  std::fprintf(stderr, "fuzz: replayed %zu input(s)\n", replayed);
  return ok ? 0 : 1;
}

#endif  // FRAZ_FUZZ_LIBFUZZER

#endif  // FRAZ_FUZZ_DRIVER_HPP
