/// Fuzz the serve request-line parser: the input is split on newlines and
/// each line goes through parse_request exactly as serve_connection would
/// feed it.  The property is totality — every byte string maps to a Request
/// (kBad carries the ERR message) with no crash and no assert.
#include <string>

#include "fuzz_driver.hpp"
#include "serve/protocol.hpp"

void fraz_fuzz_one(const std::uint8_t* data, std::size_t size) {
  const char* bytes = reinterpret_cast<const char*>(data);
  std::size_t start = 0;
  for (std::size_t i = 0; i <= size; ++i) {
    if (i != size && bytes[i] != '\n') continue;
    std::string line(bytes + start, i - start);
    if (!line.empty() && line.back() == '\r') line.pop_back();
    const fraz::serve::Request request = fraz::serve::parse_request(line);
    if (request.kind == fraz::serve::RequestKind::kBad && request.error.empty())
      __builtin_trap();  // every rejection must carry an ERR message
    start = i + 1;
  }
}
