/// Seed-corpus generator: every fuzz target starts from inputs produced by
/// the matching *writer*, so the fuzzer begins at valid bytes and mutates
/// toward the interesting edges instead of spending its budget rediscovering
/// magic numbers.  Usage:
///
///     fraz_make_corpus <output-dir>
///
/// writes one subdirectory per fuzz target (archive_format/, bound_store/,
/// serve_protocol/, varint/, entropy/, szx/, fpc/, sz2/).  The checked-in copy
/// lives at tests/corpus/ and doubles as the negative-path unit-test input
/// set.
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "archive/archive.hpp"
#include "codec/huffman.hpp"
#include "codec/rans.hpp"
#include "codec/varint.hpp"
#include "compressors/fpc/fpc.hpp"
#include "compressors/sz/sz.hpp"
#include "compressors/szx/szx.hpp"
#include "engine/bound_store.hpp"
#include "ndarray/ndarray.hpp"

namespace fs = std::filesystem;
using namespace fraz;

namespace {

bool write_file(const fs::path& path, const void* data, std::size_t size) {
  std::ofstream out(path, std::ios::binary);
  out.write(static_cast<const char*>(data), static_cast<std::streamsize>(size));
  if (!out) {
    std::fprintf(stderr, "make_corpus: cannot write %s\n", path.string().c_str());
    return false;
  }
  return true;
}

NdArray smooth_field() {
  NdArray field(DType::kFloat32, Shape{6, 8, 4});
  float* p = static_cast<float*>(field.data());
  for (std::size_t i = 0; i < field.elements(); ++i)
    p[i] = std::sin(static_cast<float>(i) * 0.05f) * 10.0f;
  return field;
}

bool emit_archives(const fs::path& dir) {
  const NdArray field = smooth_field();
  for (const std::uint8_t version : {std::uint8_t{2}, std::uint8_t{3}}) {
    archive::ArchiveWriteConfig config;
    config.engine.compressor = "truncate";
    config.engine.tuner.target_ratio = 2.5;
    config.engine.tuner.epsilon = 0.3;
    config.chunk_extent = 3;
    config.threads = 1;
    config.format_version = version;
    archive::ArchiveWriter writer(std::move(config));
    Buffer bytes;
    auto written = writer.write(field.view(), bytes);
    if (!written.ok()) {
      std::fprintf(stderr, "make_corpus: pack v%u failed: %s\n", version,
                   written.status().to_string().c_str());
      return false;
    }
    const std::string name = "archive_v" + std::to_string(version) + ".fraz";
    if (!write_file(dir / name, bytes.data(), bytes.size())) return false;
    // The bare footer is its own seed: the open path's first parse step.
    const std::size_t tail = bytes.size() < 48 ? bytes.size() : 48;
    if (!write_file(dir / ("footer_v" + std::to_string(version) + ".bin"),
                    bytes.data() + bytes.size() - tail, tail))
      return false;
  }
  return true;
}

bool emit_bound_store(const fs::path& dir) {
  BoundStore store;
  store.put("temperature", 10.0, 1.5e-3);
  store.put("pressure", 8.0, 2.0e-4);
  store.put("velocity/x", 12.0, 7.5e-5);
  Buffer block;
  store.serialize(block);
  if (!write_file(dir / "bounds.frzb", block.data(), block.size())) return false;
  BoundStore empty;
  Buffer empty_block;
  empty.serialize(empty_block);
  return write_file(dir / "bounds_empty.frzb", empty_block.data(), empty_block.size());
}

bool emit_serve_protocol(const fs::path& dir) {
  const std::string session =
      "PING\n"
      "INFO\n"
      "STATS\n"
      "METRICS\n"
      "METRICS PROM\n"
      "GET temperature 0 4\n"
      "CHUNK temperature 1\n"
      "GET temperature 18446744073709551615 1\n"
      "QUIT\n";
  const std::string hostile =
      "GET temperature -1 4\n"
      "GET temperature 0x10 4\n"
      "CHUNK temperature 99999999999999999999\n"
      "METRICS JUNK\n"
      "NOSUCHVERB a b c\n"
      "\n"
      "GET\n";
  return write_file(dir / "session.txt", session.data(), session.size()) &&
         write_file(dir / "hostile.txt", hostile.data(), hostile.size());
}

bool emit_varint(const fs::path& dir) {
  Buffer bytes;
  bytes.push_back(0);  // phase selector: start at get_varint
  for (const std::uint64_t v : {0ull, 1ull, 127ull, 128ull, 300ull, 1ull << 32,
                                0xffffffffffffffffull})
    put_varint(bytes, v);
  put_u32(bytes, 0xdeadbeefu);
  put_u64(bytes, 0x0123456789abcdefull);
  put_f64(bytes, 3.14159);
  return write_file(dir / "primitives.bin", bytes.data(), bytes.size());
}

bool emit_entropy(const fs::path& dir) {
  std::vector<std::uint32_t> symbols;
  for (std::uint32_t i = 0; i < 256; ++i) symbols.push_back(i % 7);
  const std::vector<std::uint8_t> huff = huffman_encode(symbols);
  const std::vector<std::uint8_t> rans = rans_encode(symbols);
  std::vector<std::uint8_t> huff_seed{0x00};  // router byte: huffman
  huff_seed.insert(huff_seed.end(), huff.begin(), huff.end());
  std::vector<std::uint8_t> rans_seed{0x01};  // router byte: rans
  rans_seed.insert(rans_seed.end(), rans.begin(), rans.end());
  return write_file(dir / "huffman.bin", huff_seed.data(), huff_seed.size()) &&
         write_file(dir / "rans.bin", rans_seed.data(), rans_seed.size());
}

bool emit_szx(const fs::path& dir) {
  const NdArray field = smooth_field();
  SzxOptions tight;
  tight.error_bound = 1e-4;  // packed blocks with wide codes
  SzxOptions loose;
  loose.error_bound = 15.0;  // mostly constant blocks
  const auto frame_tight = szx_compress(field.view(), tight);
  const auto frame_loose = szx_compress(field.view(), loose);

  // A frame with a raw block: one NaN demotes its whole block.
  NdArray special(DType::kFloat64, Shape{260});
  double* p = static_cast<double*>(special.data());
  for (std::size_t i = 0; i < special.elements(); ++i)
    p[i] = std::sin(static_cast<double>(i) * 0.02) * 5.0;
  p[7] = std::nan("");
  const auto frame_raw = szx_compress(special.view(), SzxOptions{1e-3});

  return write_file(dir / "tight.szx", frame_tight.data(), frame_tight.size()) &&
         write_file(dir / "loose.szx", frame_loose.data(), frame_loose.size()) &&
         write_file(dir / "raw_block.szx", frame_raw.data(), frame_raw.size());
}

bool emit_fpc(const fs::path& dir) {
  const NdArray field = smooth_field();
  const auto frame_f32 = fpc_compress(field.view(), FpcOptions{});

  // Rough doubles: residual bytes at every header length.
  NdArray rough(DType::kFloat64, Shape{128});
  double* p = static_cast<double*>(rough.data());
  std::uint64_t x = 0x9e3779b97f4a7c15ull;
  for (std::size_t i = 0; i < rough.elements(); ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    p[i] = static_cast<double>(static_cast<std::int64_t>(x)) * 1e-3;
  }
  FpcOptions small_table;
  small_table.table_bits = 8;  // forces hash collisions -> mispredictions
  const auto frame_f64 = fpc_compress(rough.view(), small_table);

  return write_file(dir / "smooth_f32.fpc", frame_f32.data(), frame_f32.size()) &&
         write_file(dir / "rough_f64.fpc", frame_f64.data(), frame_f64.size());
}

bool emit_sz2(const fs::path& dir) {
  // Blocked (v2) frames across ranks plus one serial (v1) frame, so the
  // fuzzer mutates both sides of the version routing.
  const NdArray field = smooth_field();
  SzOptions blocked;
  blocked.error_bound = 1e-3;
  blocked.mode = SzMode::kBlocked;
  const auto frame_3d = sz_compress(field.view(), blocked);

  NdArray plane(DType::kFloat64, Shape{40, 36});
  double* pd = static_cast<double*>(plane.data());
  for (std::size_t i = 0; i < plane.elements(); ++i)
    pd[i] = std::cos(static_cast<double>(i) * 0.03) * 7.0;
  SzOptions loose = blocked;
  loose.error_bound = 5.0;  // near-constant codes -> tiny rANS alphabets
  const auto frame_2d = sz_compress(plane.view(), loose);

  // Rough 1D data at a tight bound: most elements escape into the raw
  // section, exercising the flags/raws framing.
  NdArray rough(DType::kFloat32, Shape{1500});
  float* pf = static_cast<float*>(rough.data());
  std::uint64_t x = 0x243f6a8885a308d3ull;
  for (std::size_t i = 0; i < rough.elements(); ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    pf[i] = static_cast<float>(static_cast<std::int64_t>(x)) * 1e-12f;
  }
  SzOptions tight = blocked;
  tight.error_bound = 1e-6;
  const auto frame_raws = sz_compress(rough.view(), tight);

  SzOptions serial;
  serial.error_bound = 1e-3;
  const auto frame_v1 = sz_compress(field.view(), serial);

  return write_file(dir / "blocked_3d.sz2", frame_3d.data(), frame_3d.size()) &&
         write_file(dir / "blocked_2d_loose.sz2", frame_2d.data(), frame_2d.size()) &&
         write_file(dir / "blocked_1d_raws.sz2", frame_raws.data(), frame_raws.size()) &&
         write_file(dir / "serial_v1.sz2", frame_v1.data(), frame_v1.size());
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: fraz_make_corpus <output-dir>\n");
    return 2;
  }
  const fs::path root(argv[1]);
  bool ok = true;
  const struct {
    const char* name;
    bool (*emit)(const fs::path&);
  } targets[] = {
      {"archive_format", emit_archives},   {"bound_store", emit_bound_store},
      {"serve_protocol", emit_serve_protocol}, {"varint", emit_varint},
      {"entropy", emit_entropy},           {"szx", emit_szx},
      {"fpc", emit_fpc},                   {"sz2", emit_sz2},
  };
  for (const auto& target : targets) {
    const fs::path dir = root / target.name;
    std::error_code ec;
    fs::create_directories(dir, ec);
    ok = target.emit(dir) && ok;
  }
  return ok ? 0 : 1;
}
