/// Fuzz the szx decompressor over raw untrusted bytes.  szx frames arrive
/// from disk and from remote peers via archives; the decoder's contract is
/// decode-or-CorruptStream for any input — no crash, no out-of-bounds block
/// unpack, no allocation driven by an unvalidated element count.
#include "compressors/szx/szx.hpp"
#include "fuzz_driver.hpp"
#include "util/error.hpp"

void fraz_fuzz_one(const std::uint8_t* data, std::size_t size) {
  try {
    (void)fraz::szx_decompress(data, size);
  } catch (const fraz::CorruptStream&) {
    // Rejection is the expected outcome for malformed bytes.
  } catch (const fraz::Unsupported&) {
    // Frames claiming a dtype/rank this build does not handle.
  }
}
