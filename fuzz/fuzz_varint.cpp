/// Fuzz the wire-primitive getters every archive parser is built on:
/// get_varint / get_u32 / get_u64 / get_f64 must either return a value and
/// advance the cursor, or throw CorruptStream — truncation and overlong
/// varint encodings included — and never read out of bounds.
#include "codec/varint.hpp"
#include "fuzz_driver.hpp"
#include "util/error.hpp"

void fraz_fuzz_one(const std::uint8_t* data, std::size_t size) {
  // Walk the buffer as an alternating stream of each primitive; the first
  // byte picks the starting phase so the fuzzer can aim at each getter.
  std::size_t pos = size == 0 ? 0 : 1;
  unsigned phase = size == 0 ? 0 : data[0] & 3u;
  try {
    while (pos < size) {
      const std::size_t before = pos;
      switch (phase++ & 3u) {
        case 0: (void)fraz::get_varint(data, size, pos); break;
        case 1: (void)fraz::get_u32(data, size, pos); break;
        case 2: (void)fraz::get_u64(data, size, pos); break;
        default: (void)fraz::get_f64(data, size, pos); break;
      }
      if (pos <= before || pos > size) __builtin_trap();  // must advance in-bounds
    }
  } catch (const fraz::CorruptStream&) {
    // Rejection is the expected outcome for malformed bytes.
  }
}
