/// Fuzz the archive open path: footer probe, manifest parse (v1/v2/v3 field
/// tables), chunk-index tiling validation, and per-field engine setup.  The
/// input is the entire archive byte string; the property is that open()
/// returns a Status for every input — no crash, no UB, no unbounded
/// allocation driven by attacker-chosen counts.
#include "archive/archive.hpp"
#include "fuzz_driver.hpp"

void fraz_fuzz_one(const std::uint8_t* data, std::size_t size) {
  auto reader = fraz::archive::ArchiveReader::open(data, size);
  if (!reader.ok()) return;
  // A parse that survived validation must also survive metadata walks.
  for (const fraz::archive::FieldInfo& field : reader.value().fields()) {
    (void)field.chunks.size();
    (void)field.raw_bytes;
  }
}
