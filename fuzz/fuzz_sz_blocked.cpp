/// Fuzz the sz decoder over raw untrusted bytes, aimed at the v2 blocked
/// payload: per-group section framing (flags/coeffs/entropy/raws), the
/// interleaved-rANS streams inside, and the v1/v2 version routing.  The
/// contract is decode-or-throw-a-fraz-Error for any input — no crash, no
/// out-of-bounds block write, no allocation driven by an unvalidated group
/// or symbol count.  Seeds live at tests/corpus/sz2/.
#include "compressors/sz/sz.hpp"
#include "fuzz_driver.hpp"
#include "util/error.hpp"

void fraz_fuzz_one(const std::uint8_t* data, std::size_t size) {
  try {
    (void)fraz::sz_decompress(data, size);
  } catch (const fraz::CorruptStream&) {
    // Rejection is the expected outcome for malformed bytes.
  } catch (const fraz::Unsupported&) {
    // Frames claiming a dtype/rank/version this build does not handle.
  } catch (const fraz::InvalidArgument&) {
    // Structurally valid frames whose decoded metadata fails a precondition.
  }
}
