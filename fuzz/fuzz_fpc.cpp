/// Fuzz the fpc decompressor over raw untrusted bytes.  The predictor
/// replay is table-driven — a hostile residual stream must never index a
/// hash table out of bounds, overrun the declared element count, or crash;
/// anything malformed must surface as CorruptStream.
#include "compressors/fpc/fpc.hpp"
#include "fuzz_driver.hpp"
#include "util/error.hpp"

void fraz_fuzz_one(const std::uint8_t* data, std::size_t size) {
  try {
    (void)fraz::fpc_decompress(data, size);
  } catch (const fraz::CorruptStream&) {
    // Rejection is the expected outcome for malformed bytes.
  } catch (const fraz::Unsupported&) {
    // Frames claiming a dtype/rank this build does not handle.
  }
}
