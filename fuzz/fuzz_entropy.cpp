/// Fuzz the entropy-coder decoders over raw untrusted bytes.  Archives carry
/// Huffman- or rANS-coded blocks inside compressed chunks; the decoders'
/// contract is decode-or-CorruptStream for any input — no crash, no
/// out-of-bounds table walk, no unbounded output from a tiny input's
/// declared symbol count.
#include "codec/huffman.hpp"
#include "codec/rans.hpp"
#include "fuzz_driver.hpp"
#include "util/error.hpp"

void fraz_fuzz_one(const std::uint8_t* data, std::size_t size) {
  // First byte routes so the fuzzer evolves distinct corpora per decoder.
  if (size == 0) return;
  const bool use_rans = (data[0] & 1) != 0;
  ++data;
  --size;
  try {
    if (use_rans)
      (void)fraz::rans_decode(data, size);
    else
      (void)fraz::huffman_decode(data, size);
  } catch (const fraz::CorruptStream&) {
    // Rejection is the expected outcome for malformed bytes.
  }
}
