/// Use case 1 from the paper (§II-B): fit a multi-field, multi-step climate
/// campaign into a fixed storage allocation.
///
/// A CESM-like run produces six 2D fields over many time steps; the centre
/// grants a fixed byte budget.  The target compression ratio follows from
/// budget / raw size; FRaZ then tunes every field's error bound (fields in
/// parallel, time steps warm-started) and the example verifies that the
/// compressed campaign actually fits.
///
///   ./climate_storage_budget [--budget-mb 2.0] [--steps 6]

#include <cstdio>
#include <iostream>
#include <map>

#include "core/tuner.hpp"
#include "data/datasets.hpp"
#include "pressio/registry.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace fraz;
  Cli cli("Fit a CESM-like campaign into a storage budget with FRaZ");
  cli.add_double("budget-mb", 0.25, "storage allocation for the whole campaign (MB)");
  cli.add_int("steps", 6, "time steps per field");
  cli.add_string("compressor", "sz", "backend: sz|zfp|mgard");
  if (!cli.parse(argc, argv)) return 0;

  const auto dataset = data::dataset_by_name("cesm");
  const int steps = static_cast<int>(cli.get_int("steps"));

  // Generate the campaign and compute the ratio the budget demands.
  std::map<std::string, std::vector<NdArray>> storage;
  std::map<std::string, std::vector<ArrayView>> fields;
  std::size_t raw_bytes = 0;
  for (const auto& spec : dataset.fields) {
    storage[spec.name] = data::generate_series(spec, steps);
    for (const auto& step : storage[spec.name]) {
      fields[spec.name].push_back(step.view());
      raw_bytes += step.size_bytes();
    }
  }
  const double budget_bytes = cli.get_double("budget-mb") * 1e6;
  const double required_ratio = static_cast<double>(raw_bytes) / budget_bytes;
  std::printf("campaign: %zu fields x %d steps = %.1f MB raw; budget %.1f MB -> "
              "target ratio %.1f:1\n",
              fields.size(), steps, raw_bytes / 1e6, budget_bytes / 1e6, required_ratio);

  TunerConfig config;
  config.target_ratio = required_ratio;
  config.epsilon = 0.08;  // stay close: overshooting wastes quality,
                          // undershooting busts the allocation
  auto compressor = pressio::registry().create(cli.get_string("compressor"));
  const Tuner tuner(*compressor, config);
  const auto results = tuner.tune_fields(fields);

  Table t({"field", "steps_in_band", "retrains", "mean_ratio", "bound_last_step"});
  std::size_t compressed_bytes = 0;
  Buffer archive;  // reused across every (field, step) archive pass
  for (const auto& [name, series] : results) {
    int in_band = 0;
    double ratio_sum = 0;
    for (std::size_t s = 0; s < series.steps.size(); ++s) {
      const auto& step = series.steps[s];
      in_band += step.result.feasible;
      ratio_sum += step.result.achieved_ratio;
      // Account the actual archive for the fit check (zero-copy V2 path).
      compressor->set_error_bound(step.result.error_bound);
      const Status st = compressor->compress_into(fields.at(name)[s], archive);
      if (!st.ok()) {
        std::fprintf(stderr, "%s step %zu: %s\n", name.c_str(), s, st.to_string().c_str());
        return 1;
      }
      compressed_bytes += archive.size();
    }
    t.add_row({name, std::to_string(in_band) + "/" + std::to_string(series.steps.size()),
               std::to_string(series.retrain_count),
               Table::num(ratio_sum / static_cast<double>(series.steps.size()), 2),
               Table::num(series.steps.back().result.error_bound, 6)});
  }
  t.print(std::cout);

  std::printf("\ncompressed campaign: %.2f MB (budget %.2f MB) -> %s\n",
              compressed_bytes / 1e6, budget_bytes / 1e6,
              compressed_bytes <= budget_bytes * 1.02 ? "FITS" : "OVER BUDGET");
  return compressed_bytes <= budget_bytes * 1.02 ? 0 : 1;
}
