/// Serving one archive to many readers: the serve subsystem in miniature.
///
/// A climate field is packed to a file once, then a ReaderPool maps it and
/// eight threads slice it concurrently — the access pattern of a dashboard
/// or analysis farm where every client wants windows of the same campaign
/// output.  The pool's shared ChunkCache pays each chunk's decompression
/// once; every later request from any thread is a hash lookup plus a plane
/// copy.  The same serving loop is what `fraz serve` speaks over
/// stdin/stdout or TCP.  Build and run:
///
///   cmake --build build --target concurrent_serving
///   ./build/concurrent_serving

#include <cstdio>
#include <random>
#include <thread>
#include <vector>

#include "archive/archive_file.hpp"
#include "data/datasets.hpp"
#include "serve/reader_pool.hpp"
#include "util/timer.hpp"

int main() {
  using namespace fraz;

  const auto ds = data::dataset_by_name("hurricane", data::SuiteScale::kSmall);
  const NdArray field = data::generate_field(data::field_by_name(ds, "TCf"), 0);

  // Pack the archive file the pool will serve.
  archive::ArchiveWriteConfig config;
  config.engine.compressor = "sz";
  config.engine.tuner.target_ratio = 8.0;
  archive::ArchiveFileWriter writer(config);
  const std::string path = "concurrent_serving.fraza";
  const auto written = writer.write(path, field.view());
  if (!written.ok()) {
    std::fprintf(stderr, "pack failed: %s\n", written.status().to_string().c_str());
    return 1;
  }
  std::printf("packed %zu chunks at ratio %.2f -> %s\n\n",
              written.value().chunk_count, written.value().achieved_ratio,
              path.c_str());

  // One pool maps the file; every client thread gets its own cheap handle.
  auto pool = serve::ReaderPool::open(path);
  if (!pool.ok()) {
    std::fprintf(stderr, "open failed: %s\n", pool.status().to_string().c_str());
    return 1;
  }
  const std::size_t n0 = pool.value()->fields()[0].shape[0];
  const std::size_t window = pool.value()->fields()[0].chunk_extent;

  constexpr unsigned kThreads = 8;
  constexpr unsigned kRequests = 400;
  Timer wall;
  std::vector<std::thread> clients;
  for (unsigned t = 0; t < kThreads; ++t)
    clients.emplace_back([&, t] {
      std::mt19937 rng(100 + t);
      serve::ReaderHandle handle = pool.value()->handle();
      for (unsigned q = 0; q < kRequests; ++q) {
        const std::size_t first = rng() % (n0 - window + 1);
        if (!handle.read_range(0, first, window).ok()) return;
      }
    });
  for (std::thread& client : clients) client.join();
  const double elapsed = wall.seconds();

  const serve::ReaderPool::Stats stats = pool.value()->stats();
  std::printf("%u threads x %u requests in %.3f s  (%.0f requests/s)\n", kThreads,
              kRequests, elapsed, kThreads * kRequests / elapsed);
  std::printf("chunk requests: %zu\n", stats.requests);
  std::printf("  served by cache:   %zu\n", stats.cache_hits);
  std::printf("  waited on a peer:  %zu\n", stats.wait_hits);
  std::printf("  decodes paid:      %zu  (archive has %zu chunks)\n",
              stats.decoded_chunks, written.value().chunk_count);
  std::printf("\nevery chunk was decompressed once; all other requests were "
              "lookups + copies.\n");

  std::remove(path.c_str());
  return 0;
}
