/// Quickstart: the five-minute tour of the public API.
///
/// 1. Build a fraz::Engine — one object owning backend + tuner + bound cache
///    (SZ here, but "zfp"/"mgard" work identically; that is the point of the
///    pressio abstraction underneath).
/// 2. Ask it for an error bound that hits a 10:1 compression ratio.
/// 3. Compress into a reusable Buffer, verify the quality — all through the
///    non-throwing Status/Result API a service would embed.
///
///   ./quickstart [--compressor sz|zfp|mgard] [--target 10]

#include <cstdio>

#include "data/datasets.hpp"
#include "engine/engine.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace fraz;
  Cli cli("FRaZ quickstart: fixed-ratio lossy compression in a few lines");
  cli.add_string("compressor", "sz", "backend: sz|zfp|mgard");
  cli.add_double("target", 10.0, "requested compression ratio");
  if (!cli.parse(argc, argv)) return 0;

  // A synthetic 3D turbulence field standing in for your simulation output.
  const auto dataset = data::dataset_by_name("hurricane");
  const NdArray field = data::generate_field(data::field_by_name(dataset, "TCf"), 0);
  std::printf("field: %zu values (%.1f KB)\n", field.elements(),
              field.size_bytes() / 1024.0);

  // Step 1: one facade over registry + tuner + bound cache.  Failures are
  // values, not exceptions — check and report.
  EngineConfig config;
  config.compressor = cli.get_string("compressor");
  config.tuner.target_ratio = cli.get_double("target");
  config.tuner.epsilon = 0.1;
  auto created = Engine::create(config);
  if (!created.ok()) {
    std::fprintf(stderr, "engine: %s\n", created.status().to_string().c_str());
    return 1;
  }
  Engine engine = std::move(created).value();
  const auto caps = engine.capabilities();
  std::printf("backend: %s v%s (%zuD..%zuD, error_bounded=%s)\n", caps.name.c_str(),
              caps.version.c_str(), caps.min_dims, caps.max_dims,
              caps.error_bounded ? "yes" : "no");

  // Step 2: FRaZ finds the error bound whose achieved ratio lands within
  // +-10% of the target.  The result is cached under the field key, so a
  // second tune of the next time step would cost one confirmation probe.
  const auto tuned = engine.tune("TCf", field.view());
  if (!tuned.ok()) {
    std::fprintf(stderr, "tune: %s\n", tuned.status().to_string().c_str());
    return 1;
  }
  const TuneResult& r = tuned.value();
  std::printf("tuned: error bound %.6g -> ratio %.2f (%s, %d compressor calls, %.2fs)\n",
              r.error_bound, r.achieved_ratio,
              r.feasible ? "inside the band" : "closest achievable", r.compress_calls,
              r.seconds);

  // Step 3: compress into a caller-owned Buffer (reusable across frames)
  // and run the full fidelity report at the tuned bound.
  Buffer archive;
  if (const Status s = engine.compress("TCf", field.view(), archive); !s.ok()) {
    std::fprintf(stderr, "compress: %s\n", s.to_string().c_str());
    return 1;
  }
  const auto report = engine.evaluate("TCf", field.view());
  if (!report.ok()) {
    std::fprintf(stderr, "evaluate: %s\n", report.status().to_string().c_str());
    return 1;
  }
  std::printf("verify: ratio %.2f, PSNR %.1f dB, max error %.4g, SSIM %.3f\n",
              report.value().probe.ratio, report.value().psnr_db,
              report.value().max_abs_error, report.value().ssim);
  std::printf("engine: %zu tunes (%zu warm), archive %zu bytes\n", engine.stats().tunes,
              engine.stats().warm_hits, archive.size());
  return 0;
}
