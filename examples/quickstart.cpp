/// Quickstart: the five-minute tour of the public API.
///
/// 1. Grab a compressor from the registry (SZ here, but "zfp"/"mgard" work
///    identically — that is the point of the pressio abstraction).
/// 2. Ask FRaZ for an error bound that hits a 10:1 compression ratio.
/// 3. Compress with the tuned bound, decompress, verify the quality.
///
///   ./quickstart [--compressor sz|zfp|mgard] [--target 10]

#include <cstdio>

#include "core/tuner.hpp"
#include "data/datasets.hpp"
#include "metrics/error_stats.hpp"
#include "pressio/evaluate.hpp"
#include "pressio/registry.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace fraz;
  Cli cli("FRaZ quickstart: fixed-ratio lossy compression in a few lines");
  cli.add_string("compressor", "sz", "backend: sz|zfp|mgard");
  cli.add_double("target", 10.0, "requested compression ratio");
  if (!cli.parse(argc, argv)) return 0;

  // A synthetic 3D turbulence field standing in for your simulation output.
  const auto dataset = data::dataset_by_name("hurricane");
  const NdArray field = data::generate_field(data::field_by_name(dataset, "TCf"), 0);
  std::printf("field: %zu values (%.1f KB)\n", field.elements(),
              field.size_bytes() / 1024.0);

  // Step 1: any error-bounded compressor behind one interface.
  auto compressor = pressio::registry().create(cli.get_string("compressor"));

  // Step 2: FRaZ finds the error bound whose achieved ratio lands within
  // +-10% of the target.
  TunerConfig config;
  config.target_ratio = cli.get_double("target");
  config.epsilon = 0.1;
  const Tuner tuner(*compressor, config);
  const TuneResult tuned = tuner.tune(field.view());
  std::printf("tuned: error bound %.6g -> ratio %.2f (%s, %d compressor calls, %.2fs)\n",
              tuned.error_bound, tuned.achieved_ratio,
              tuned.feasible ? "inside the band" : "closest achievable",
              tuned.compress_calls, tuned.seconds);

  // Step 3: use the bound like any other compressor setting.
  compressor->set_error_bound(tuned.error_bound);
  const auto report = pressio::evaluate_fidelity(*compressor, field.view());
  std::printf("verify: ratio %.2f, PSNR %.1f dB, max error %.4g, SSIM %.3f\n",
              report.probe.ratio, report.psnr_db, report.max_abs_error, report.ssim);
  return 0;
}
