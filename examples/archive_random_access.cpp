/// Random access into a chunked archive: the reason the super-frame format
/// exists.  A cosmology field is packed at a fixed aggregate ratio, then
/// three access patterns run against the same bytes:
///
///   1. full decompression (the baseline every monolithic archive forces),
///   2. a single chunk (one checksum + one chunk decode),
///   3. a slowest-axis plane range straddling two chunks.
///
/// The point to take away is the "compressed bytes touched" column: a range
/// query validates and decodes only the chunks that cover it, so pulling a
/// few planes out of a campaign-sized archive stops costing a full-file
/// decode.  Build and run:
///
///   cmake --build build --target archive_random_access
///   ./build/archive_random_access

#include <cstdio>
#include <cstring>

#include "archive/archive.hpp"
#include "data/datasets.hpp"

int main() {
  using namespace fraz;

  const auto nyx = data::dataset_by_name("nyx", data::SuiteScale::kSmall);
  const NdArray field = data::generate_field(data::field_by_name(nyx, "temperature"), 0);
  std::printf("field: nyx/temperature,");
  for (std::size_t d : field.shape()) std::printf(" %zu", d);
  std::printf(" f32 (%zu bytes raw)\n\n", field.size_bytes());

  // Pack at a fixed aggregate ratio of 10:1.
  archive::ArchiveWriteConfig config;
  config.engine.compressor = "sz";
  config.engine.tuner.target_ratio = 10.0;
  archive::ArchiveWriter writer(config);
  Buffer bytes;
  const auto written = writer.write(field.view(), bytes);
  if (!written.ok()) {
    std::fprintf(stderr, "pack failed: %s\n", written.status().to_string().c_str());
    return 1;
  }
  std::printf("packed: %zu chunks of %zu plane(s), aggregate ratio %.2f (%s band)\n",
              written.value().chunk_count, written.value().chunk_extent,
              written.value().achieved_ratio, written.value().in_band ? "in" : "OUT of");

  auto reader = archive::ArchiveReader::open(bytes.data(), bytes.size());
  if (!reader.ok()) {
    std::fprintf(stderr, "open failed: %s\n", reader.status().to_string().c_str());
    return 1;
  }
  const archive::ArchiveInfo& info = reader.value().info();

  // 1. Full decompression — the baseline.
  auto full = reader.value().read_all();
  if (!full.ok()) return 1;
  std::printf("\n%-28s %18s %12s\n", "access", "compressed bytes", "planes out");
  std::printf("%-28s %18zu %12zu\n", "read_all()", info.archive_bytes,
              full.value().shape()[0]);

  // 2. One chunk: exactly one index entry's bytes are touched.
  const std::size_t mid = info.chunk_count / 2;
  auto chunk = reader.value().read_chunk(mid);
  if (!chunk.ok()) return 1;
  std::printf("%-28s %18zu %12zu\n",
              ("read_chunk(" + std::to_string(mid) + ")").c_str(), info.chunks[mid].size,
              chunk.value().shape()[0]);

  // 3. A plane range straddling a chunk boundary.
  const std::size_t first = info.chunk_extent - 1;
  const std::size_t count = 2;  // last plane of chunk 0, first of chunk 1
  auto range = reader.value().read_range(first, count);
  if (!range.ok()) return 1;
  std::size_t touched = 0;
  for (std::size_t c = first / info.chunk_extent; c <= (first + count - 1) / info.chunk_extent; ++c)
    touched += info.chunks[c].size;
  std::printf("%-28s %18zu %12zu\n",
              ("read_range(" + std::to_string(first) + ", " + std::to_string(count) + ")").c_str(),
              touched, range.value().shape()[0]);

  // Verify the seeks against the full decode: same bytes, fewer touched.
  const std::size_t plane_bytes = full.value().size_bytes() / full.value().shape()[0];
  const auto* base = static_cast<const std::uint8_t*>(full.value().data());
  const bool chunk_matches =
      std::memcmp(chunk.value().data(), base + mid * info.chunk_extent * plane_bytes,
                  chunk.value().size_bytes()) == 0;
  const bool range_matches =
      std::memcmp(range.value().data(), base + first * plane_bytes,
                  range.value().size_bytes()) == 0;
  std::printf("\nseek results match the full decode: chunk %s, range %s\n",
              chunk_matches ? "yes" : "NO", range_matches ? "yes" : "NO");
  return chunk_matches && range_matches ? 0 : 1;
}
