/// Use case 2 from the paper (§II-B): pick the best-fit compressor for a
/// post-analysis quality requirement at a fixed compressed size.
///
/// Without FRaZ, users run trial-and-error per compressor to land on the
/// desired ratio before they can even compare quality.  With FRaZ, one call
/// per backend pins the ratio, and the comparison becomes apples-to-apples:
/// the example tunes every registered backend to the same target and prints
/// a quality scoreboard (PSNR / SSIM / max error / ACF).
///
///   ./compressor_explorer [--dataset nyx --field temperature] [--target 30]

#include <cstdio>
#include <iostream>

#include "core/tuner.hpp"
#include "data/datasets.hpp"
#include "pressio/evaluate.hpp"
#include "pressio/registry.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace fraz;
  Cli cli("Compare every compressor at one fixed compression ratio");
  cli.add_string("dataset", "nyx", "hurricane|hacc|cesm|exaalt|nyx");
  cli.add_string("field", "temperature", "field within the dataset");
  cli.add_double("target", 30.0, "target compression ratio");
  if (!cli.parse(argc, argv)) return 0;

  const auto dataset = data::dataset_by_name(cli.get_string("dataset"));
  const auto spec = data::field_by_name(dataset, cli.get_string("field"));
  const NdArray field = data::generate_field(spec, 0);
  const double target = cli.get_double("target");
  std::printf("dataset %s/%s, %zuD, %.1f KB raw, target ratio %.1f:1\n",
              dataset.name.c_str(), spec.name.c_str(), field.dims(),
              field.size_bytes() / 1024.0, target);

  TunerConfig config;
  config.target_ratio = target;
  config.epsilon = 0.1;
  config.max_error_bound = value_range(field.view()) * 16;  // generous U

  Table t({"compressor", "ratio", "in_band", "psnr_db", "ssim", "max_error", "acf_error"});
  for (const std::string& name : pressio::registry().names()) {
    auto compressor = pressio::registry().create(name);
    // Capability introspection replaces trial-and-error: ask the backend
    // up front whether it can handle this dtype/rank combination.
    if (!compressor->capabilities().supports(field.dtype(), field.dims())) {
      t.add_row({name, "-", "-", "-", "-", "-", "unsupported dtype/rank"});
      continue;
    }
    const Tuner tuner(*compressor, config);
    const TuneResult tuned = tuner.tune(field.view());
    compressor->set_error_bound(tuned.error_bound);
    const auto report = pressio::evaluate_fidelity(*compressor, field.view());
    t.add_row({name, Table::num(report.probe.ratio, 2), tuned.feasible ? "yes" : "no",
               Table::num(report.psnr_db, 1), Table::num(report.ssim, 3),
               Table::num(report.max_abs_error, 4), Table::num(report.acf_error, 3)});
  }
  t.print(std::cout);
  std::printf("\nhigher PSNR/SSIM and lower max error / ACF(error) = better fidelity\n"
              "at the same compressed size; pick the backend that wins your metric.\n");
  return 0;
}
