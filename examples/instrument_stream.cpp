/// Use case 3 from the paper (§II-B): match an instrument's acquisition rate
/// to the storage bandwidth.  LCLS-II produces up to 250 GB/s against
/// 25 GB/s of storage — a hard 10:1 ratio requirement on a *live* stream.
///
/// This example simulates frames arriving one at a time and drives the
/// OnlineTuner's in-situ fast path: `push_into` tunes each frame (reusing
/// the previous bound, retraining only on drift — Algorithm 3's online
/// behaviour) and writes the archive into ONE reusable Buffer.  The buffer's
/// allocation counter demonstrates the zero-copy steady state: after the
/// first frames establish the high-water mark, no further per-frame output
/// allocation happens — the property a 250 GB/s pipeline lives or dies by.
///
///   ./instrument_stream [--frames 16] [--target 10]

#include <cstdio>
#include <iostream>

#include "core/online.hpp"
#include "data/datasets.hpp"
#include "pressio/registry.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace fraz;
  Cli cli("Stream compression at a fixed ratio (LCLS-II style bandwidth matching)");
  cli.add_int("frames", 16, "frames to stream");
  cli.add_double("target", 10.0, "required compression ratio (bandwidth quotient)");
  cli.add_string("compressor", "sz", "backend: sz|zfp|mgard");
  if (!cli.parse(argc, argv)) return 0;

  const auto dataset = data::dataset_by_name("hurricane");
  const auto spec = data::field_by_name(dataset, "TCf");
  const int frames = static_cast<int>(cli.get_int("frames"));
  const double target = cli.get_double("target");

  auto compressor = pressio::registry().create(cli.get_string("compressor"));
  TunerConfig config;
  config.target_ratio = target;
  config.epsilon = 0.1;
  OnlineTuner online(*compressor, config);

  Table t({"frame", "ratio", "in_band", "retrained", "latency_ms", "allocs"});
  Buffer archive;  // ONE output buffer for the whole stream
  std::size_t raw_total = 0, compressed_total = 0;
  for (int frame = 0; frame < frames; ++frame) {
    // Frame "arrives" from the instrument.
    const NdArray data = data::generate_field(spec, frame);

    Timer latency;
    StepOutcome outcome;
    const Status s = online.push_into(data.view(), archive, &outcome);
    const double ms = latency.millis();
    if (!s.ok()) {
      std::fprintf(stderr, "frame %d: %s\n", frame, s.to_string().c_str());
      return 1;
    }

    raw_total += data.size_bytes();
    compressed_total += archive.size();
    t.add_row({std::to_string(frame), Table::num(outcome.result.achieved_ratio, 2),
               outcome.result.feasible ? "yes" : "no", outcome.retrained ? "yes" : "no",
               Table::num(ms, 1), std::to_string(archive.allocations())});
  }
  t.print(std::cout);

  const double aggregate = static_cast<double>(raw_total) / compressed_total;
  std::printf("\naggregate ratio %.2f:1 over %d frames (%zu retrains, %zu buffer "
              "allocations total) -> stream %s\n",
              aggregate, frames, online.stats().retrains, archive.allocations(),
              aggregate >= target * 0.9 ? "KEEPS UP with the bandwidth quotient"
                                        : "FALLS BEHIND");
  return 0;
}
