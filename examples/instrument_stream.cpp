/// Use case 3 from the paper (§II-B): match an instrument's acquisition rate
/// to the storage bandwidth.  LCLS-II produces up to 250 GB/s against
/// 25 GB/s of storage — a hard 10:1 ratio requirement on a *live* stream.
///
/// This example simulates frames arriving one at a time.  The first frame is
/// tuned from scratch; every later frame reuses the previous bound and only
/// retrains when drift pushes the ratio out of the band (Algorithm 3's
/// online behaviour).  It reports per-frame latency and the achieved
/// aggregate ratio, i.e. whether the stream keeps up.
///
///   ./instrument_stream [--frames 16] [--target 10]

#include <cstdio>
#include <iostream>

#include "core/tuner.hpp"
#include "data/datasets.hpp"
#include "pressio/registry.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace fraz;
  Cli cli("Stream compression at a fixed ratio (LCLS-II style bandwidth matching)");
  cli.add_int("frames", 16, "frames to stream");
  cli.add_double("target", 10.0, "required compression ratio (bandwidth quotient)");
  cli.add_string("compressor", "sz", "backend: sz|zfp|mgard");
  if (!cli.parse(argc, argv)) return 0;

  const auto dataset = data::dataset_by_name("hurricane");
  const auto spec = data::field_by_name(dataset, "TCf");
  const int frames = static_cast<int>(cli.get_int("frames"));
  const double target = cli.get_double("target");

  auto compressor = pressio::registry().create(cli.get_string("compressor"));
  TunerConfig config;
  config.target_ratio = target;
  config.epsilon = 0.1;
  const Tuner tuner(*compressor, config);

  Table t({"frame", "ratio", "in_band", "retrained", "latency_ms"});
  double prediction = 0;
  std::size_t raw_total = 0, compressed_total = 0;
  int retrains = 0;
  for (int frame = 0; frame < frames; ++frame) {
    // Frame "arrives" from the instrument.
    const NdArray data = data::generate_field(spec, frame);

    Timer latency;
    const TuneResult result = tuner.tune_with_prediction(data.view(), prediction);
    compressor->set_error_bound(result.error_bound);
    const auto archive = compressor->compress(data.view());
    const double ms = latency.millis();

    if (result.feasible) prediction = result.error_bound;
    retrains += !result.from_prediction;
    raw_total += data.size_bytes();
    compressed_total += archive.size();
    t.add_row({std::to_string(frame), Table::num(result.achieved_ratio, 2),
               result.feasible ? "yes" : "no", result.from_prediction ? "no" : "yes",
               Table::num(ms, 1)});
  }
  t.print(std::cout);

  const double aggregate = static_cast<double>(raw_total) / compressed_total;
  std::printf("\naggregate ratio %.2f:1 over %d frames (%d retrains) -> stream %s\n",
              aggregate, frames, retrains,
              aggregate >= target * 0.9 ? "KEEPS UP with the bandwidth quotient"
                                        : "FALLS BEHIND");
  return 0;
}
