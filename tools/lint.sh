#!/usr/bin/env bash
# Static-analysis entry point — the CI lint job runs this file verbatim, so
# local `tools/lint.sh` reproduces the gate exactly.
#
# Stages (default: all three clang gates):
#   thread-safety  clang build with -Wthread-safety as errors
#   tidy           run-clang-tidy over src/ using .clang-tidy
#   fuzz           ~60s sanitized libFuzzer smoke per harness, seeded from
#                  tests/corpus/ (clang + libFuzzer required)
#   fuzz-replay    replay tests/corpus/ through the standalone harnesses —
#                  works with any compiler, no fuzzing toolchain needed
#
# Usage: tools/lint.sh [stage ...]
set -euo pipefail

cd "$(dirname "$0")/.."
REPO="$PWD"
CLANG_CXX="${CLANG_CXX:-clang++}"
RUN_CLANG_TIDY="${RUN_CLANG_TIDY:-run-clang-tidy}"
FUZZ_SECONDS="${FUZZ_SECONDS:-10}"
JOBS="$(nproc 2>/dev/null || echo 4)"

need() {
  command -v "$1" >/dev/null 2>&1 || {
    echo "lint: required tool '$1' not found" >&2
    exit 1
  }
}

stage_thread_safety() {
  need "$CLANG_CXX"
  echo "== thread-safety: clang -Wthread-safety -Werror =="
  cmake -B build-tsa -S . \
    -DCMAKE_CXX_COMPILER="$CLANG_CXX" \
    -DFRAZ_THREAD_SAFETY=ON -DFRAZ_WERROR=ON >/dev/null
  cmake --build build-tsa -j "$JOBS"
}

stage_tidy() {
  need "$CLANG_CXX"
  need "$RUN_CLANG_TIDY"
  echo "== clang-tidy over src/ =="
  cmake -B build-tidy -S . -DCMAKE_CXX_COMPILER="$CLANG_CXX" >/dev/null
  "$RUN_CLANG_TIDY" -p build-tidy -quiet "$REPO/src/.*\.cpp$"
}

# Everything that feeds the fuzz binaries, hashed.  The fuzz stages stamp
# this into their build tree after a successful build and skip the
# configure+compile entirely when it matches — the common case for lint runs
# that only touched tests or docs.
fuzz_source_hash() {
  {
    find "$REPO/src" "$REPO/fuzz" -type f \( -name '*.cpp' -o -name '*.hpp' \) -print0 |
      sort -z | xargs -0 sha256sum
    sha256sum "$REPO/CMakeLists.txt"
  } | sha256sum | cut -d' ' -f1
}

# build_fuzzers_cached <build-dir> [cmake flags...]: (re)build the `fuzzers`
# target unless the stamped source hash matches and the harness binaries
# exist.
build_fuzzers_cached() {
  local build_dir="$1"
  shift
  local stamp="$build_dir/.fuzz-src-hash"
  local hash
  hash="$(fuzz_source_hash)"
  if [ -f "$stamp" ] && [ "$(cat "$stamp")" = "$hash" ] &&
    ls "$build_dir"/fuzz_* >/dev/null 2>&1; then
    echo "-- fuzz harnesses up to date (sources ${hash:0:12}), skipping rebuild"
    return 0
  fi
  rm -f "$stamp"
  cmake -B "$build_dir" -S . "$@" >/dev/null
  cmake --build "$build_dir" -j "$JOBS" --target fuzzers
  echo "$hash" >"$stamp"
}

# Harness name -> seed directory.  The default strips the fuzz_ prefix; the
# sz blocked harness reads the v2 corpus, which lives under the payload
# format's name.
seed_dir_for() {
  case "$1" in
    fuzz_sz_blocked) echo "$REPO/tests/corpus/sz2" ;;
    *) echo "$REPO/tests/corpus/${1#fuzz_}" ;;
  esac
}

stage_fuzz() {
  need "$CLANG_CXX"
  echo "== fuzz smoke: ${FUZZ_SECONDS}s per harness, ASan+UBSan =="
  build_fuzzers_cached build-fuzz \
    -DCMAKE_CXX_COMPILER="$CLANG_CXX" \
    -DFRAZ_FUZZ=ON -DFRAZ_SANITIZE=address,undefined \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
  for harness in build-fuzz/fuzz_*; do
    [ -x "$harness" ] || continue
    local name seed_dir work_dir
    name="$(basename "$harness")"
    seed_dir="$(seed_dir_for "$name")"
    work_dir="build-fuzz/corpus-work/${name#fuzz_}"
    mkdir -p "$work_dir"
    echo "-- $name (seeds: $seed_dir)"
    "$harness" -max_total_time="$FUZZ_SECONDS" -timeout=5 -rss_limit_mb=2048 \
      "$work_dir" "$seed_dir"
  done
}

stage_fuzz_replay() {
  echo "== fuzz replay: checked-in corpus through standalone harnesses =="
  build_fuzzers_cached build-replay -DFRAZ_FUZZ=ON
  for harness in build-replay/fuzz_*; do
    [ -x "$harness" ] || continue
    local name seed_dir
    name="$(basename "$harness")"
    seed_dir="$(seed_dir_for "$name")"
    echo "-- $name (seeds: $seed_dir)"
    "$harness" "$seed_dir"
  done
}

stages=("$@")
[ ${#stages[@]} -eq 0 ] && stages=(thread-safety tidy fuzz)
for stage in "${stages[@]}"; do
  case "$stage" in
    thread-safety) stage_thread_safety ;;
    tidy) stage_tidy ;;
    fuzz) stage_fuzz ;;
    fuzz-replay) stage_fuzz_replay ;;
    *)
      echo "lint: unknown stage '$stage' (thread-safety|tidy|fuzz|fuzz-replay)" >&2
      exit 2
      ;;
  esac
done
echo "lint: all requested stages passed"
