/// fraz — command-line front end for the FRaZ fixed-ratio compression stack.
///
/// Subcommands (first positional argument):
///   tune        find the error bound for a target ratio on a raw binary file
///               (--json emits the result machine-readably)
///   quality     find the most aggressive bound meeting a PSNR/SSIM floor
///               (the paper's §VII quality-target extension)
///   compress    compress a raw binary file at a given bound (or tune first)
///   decompress  reconstruct a raw binary file from a .fraz archive
///   inspect     print header metadata of a .fraz archive
///   pack        shard a raw binary file into a chunked, seekable archive
///               compressed in parallel at the target aggregate ratio
///               (exit 0 = aggregate ratio in the band, 2 = out of band,
///               mirroring `tune`'s feasible/closest exit codes).  Repeat
///               --field NAME=PATH[:DIMS[:DTYPE]] to stream several named
///               fields into one v3 multi-field archive — each field is
///               pushed through an ingestion session in chunk-row slabs, so
///               no field is ever fully resident
///   unpack      reconstruct raw data from a chunked archive (whole field,
///               --chunk i, or --range a:b over the slowest axis; --field
///               NAME selects a field of a multi-field archive)
///   info        print a chunked archive's manifest, field table, chunk
///               index, and footer (--json emits the record machine-readably)
///   serve       map a chunked archive once and answer line-delimited read
///               requests (GET field first count, CHUNK field i, INFO,
///               STATS) over stdin/stdout or --port, with a shared
///               decoded-chunk cache and sequential readahead
///   backends    list registered backends with their capabilities
///               (--json emits machine-readable capability records)
///
/// tune/compress/decompress run through the fraz::Engine facade — the same
/// object a service embeds — so the CLI exercises the supported API surface
/// instead of hand-wiring registry + tuner.
///
/// Raw files are flat little-endian scalar dumps (the SDRBench layout);
/// shape and dtype come from --dims / --dtype, exactly as the benchmark
/// distributes them.
///
/// Examples:
///   fraz tune --input CLOUDf48.bin --dims 100x500x500 --dtype f32
///             --compressor sz --target 10
///   fraz compress --input CLOUDf48.bin --dims 100x500x500 --dtype f32
///             --compressor sz --target 10 --output CLOUDf48.fraz
///   fraz decompress --input CLOUDf48.fraz --compressor sz --output out.bin
///   fraz inspect --input CLOUDf48.fraz

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "archive/archive.hpp"
#include "archive/archive_file.hpp"
#include "core/quality_tuner.hpp"
#include "core/serialize.hpp"
#include "core/tuner.hpp"
#include "engine/engine.hpp"
#include "metrics/error_stats.hpp"
#include "ndarray/io.hpp"
#include "pressio/evaluate.hpp"
#include "pressio/registry.hpp"
#include "serve/reader_pool.hpp"
#include "serve/server.hpp"
#include "telemetry/telemetry.hpp"
#include "util/buffer.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/seed.hpp"

namespace {

using namespace fraz;

/// Parse "100x500x500" into a Shape.
Shape parse_dims(const std::string& spec) {
  Shape shape;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t consumed = 0;
    const unsigned long long extent = std::stoull(spec.substr(pos), &consumed);
    require(consumed > 0 && extent > 0, "bad --dims component in '" + spec + "'");
    shape.push_back(static_cast<std::size_t>(extent));
    pos += consumed;
    if (pos < spec.size()) {
      require(spec[pos] == 'x', "--dims must look like 100x500x500");
      ++pos;
    }
  }
  require(!shape.empty() && shape.size() <= 3, "--dims must have 1..3 extents");
  return shape;
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary | std::ios::ate);
  if (!is) throw IoError("cannot open '" + path + "'");
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(is.tellg()));
  is.seekg(0);
  is.read(reinterpret_cast<char*>(bytes.data()), static_cast<std::streamsize>(bytes.size()));
  if (!is) throw IoError("short read from '" + path + "'");
  return bytes;
}

void write_file(const std::string& path, const std::uint8_t* data, std::size_t size) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw IoError("cannot open '" + path + "' for writing");
  os.write(reinterpret_cast<const char*>(data), static_cast<std::streamsize>(size));
  if (!os) throw IoError("write failed for '" + path + "'");
}

/// Shared Engine construction from the common flags.
Engine make_engine(const Cli& cli) {
  EngineConfig config;
  config.compressor = cli.get_string("compressor");
  config.tuner.target_ratio = cli.get_double("target");
  config.tuner.epsilon = cli.get_double("epsilon");
  config.tuner.max_error_bound = cli.get_double("max-bound");
  config.tuner.regions = static_cast<int>(cli.get_int("regions"));
  config.tuner.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  auto engine = Engine::create(std::move(config));
  if (!engine.ok()) throw_status(engine.status());
  return std::move(engine).value();
}

/// Render one backend's capability record as a JSON object.
std::string capabilities_json(const pressio::Compressor& c) {
  const pressio::Capabilities caps = c.capabilities();
  JsonWriter w;
  w.begin_object()
      .field("name", caps.name)
      .field("version", caps.version)
      .field("min_dims", caps.min_dims)
      .field("max_dims", caps.max_dims)
      .field("f32", caps.supports_f32)
      .field("f64", caps.supports_f64)
      .field("thread_safe", caps.thread_safe)
      .field("deterministic", caps.deterministic)
      .field("error_bounded", caps.error_bounded)
      .field("lossless", caps.lossless)
      .field("blocked_mode", caps.blocked_mode)
      .key("options")
      .begin_array();
  for (const auto& key : c.get_options().keys()) w.value(key);
  w.end_array().end_object();
  return std::move(w).str();
}

int cmd_backends(int argc, const char* const* argv) {
  Cli cli("fraz backends");
  cli.add_flag("json", "emit capability records as a JSON array");
  if (!cli.parse(argc, argv)) return 0;

  if (cli.get_flag("json")) {
    std::string out = "[";
    bool first = true;
    for (const auto& name : pressio::registry().names()) {
      if (!first) out += ",";
      out += capabilities_json(*pressio::registry().create(name));
      first = false;
    }
    out += "]";
    std::printf("%s\n", out.c_str());
    return 0;
  }

  std::printf("%-10s %-8s %-6s %-5s %-5s %-12s %-14s %s\n", "backend", "version", "dims",
              "f32", "f64", "error_bound", "deterministic", "options");
  for (const auto& name : pressio::registry().names()) {
    auto c = pressio::registry().create(name);
    const pressio::Capabilities caps = c->capabilities();
    std::string options;
    for (const auto& key : c->get_options().keys()) {
      if (!options.empty()) options += " ";
      options += key;
    }
    std::printf("%-10s %-8s %zu..%zu   %-5s %-5s %-12s %-14s %s\n", caps.name.c_str(),
                caps.version.c_str(), caps.min_dims, caps.max_dims,
                caps.supports_f32 ? "yes" : "no", caps.supports_f64 ? "yes" : "no",
                caps.error_bounded ? "yes" : "no", caps.deterministic ? "yes" : "no",
                options.c_str());
  }
  return 0;
}

int cmd_tune(const Cli& cli) {
  const NdArray field = read_raw(cli.get_string("input"),
                                 dtype_from_name(cli.get_string("dtype")),
                                 parse_dims(cli.get_string("dims")));
  Engine engine = make_engine(cli);
  const auto tuned = engine.tune(cli.get_string("input"), field.view());
  if (!tuned.ok()) throw_status(tuned.status());
  const TuneResult& r = tuned.value();

  if (cli.get_flag("json")) {
    // to_json(r) carries the per-tune probe counters; wrap it with the
    // engine-level aggregates and the registry snapshot so bench
    // trajectories can track tuning cost.
    std::string out = to_json(r);
    out.pop_back();  // strip the closing '}' to append engine counters
    out += ",\"tuner_probe_calls\":" + std::to_string(engine.stats().tuner_probe_calls);
    out += ",\"engine_probe_cache_hits\":" + std::to_string(engine.stats().probe_cache_hits);
    out += ",\"telemetry\":" + telemetry::global().to_json();
    out += "}";
    std::printf("%s\n", out.c_str());
  } else {
    std::printf("compressor      %s\n", engine.compressor_name().c_str());
    std::printf("target ratio    %.3f (epsilon %.3f)\n", engine.config().tuner.target_ratio,
                engine.config().tuner.epsilon);
    std::printf("error bound     %.9g\n", r.error_bound);
    std::printf("achieved ratio  %.3f\n", r.achieved_ratio);
    std::printf("feasible        %s\n", r.feasible ? "yes" : "no (closest reported)");
    std::printf("compress calls  %d (%d cache hits, %d executed) in %.2fs\n",
                r.compress_calls, r.probe_cache_hits,
                r.compress_calls - r.probe_cache_hits, r.seconds);
  }
  return r.feasible ? 0 : 2;
}

int cmd_quality(const Cli& cli) {
  const NdArray field = read_raw(cli.get_string("input"),
                                 dtype_from_name(cli.get_string("dtype")),
                                 parse_dims(cli.get_string("dims")));
  auto compressor = pressio::registry().create(cli.get_string("compressor"));

  QualityTunerConfig config;
  const std::string metric = cli.get_string("metric");
  if (metric == "psnr")
    config.metric = QualityMetric::kPsnrDb;
  else if (metric == "ssim")
    config.metric = QualityMetric::kSsim;
  else
    throw InvalidArgument("--metric must be psnr or ssim");
  config.quality_floor = cli.get_double("floor");
  const QualityTuneResult r = tune_for_quality(*compressor, field.view(), config);

  std::printf("metric floor    %s >= %.4g\n", metric.c_str(), config.quality_floor);
  if (!r.met_floor) {
    std::printf("no error bound meets the floor within the search range\n");
    return 2;
  }
  std::printf("error bound     %.9g\n", r.error_bound);
  std::printf("quality         %.4g\n", r.quality);
  std::printf("achieved ratio  %.3f\n", r.achieved_ratio);
  std::printf("evaluations     %d\n", r.evaluations);
  return 0;
}

int cmd_compress(const Cli& cli) {
  const NdArray field = read_raw(cli.get_string("input"),
                                 dtype_from_name(cli.get_string("dtype")),
                                 parse_dims(cli.get_string("dims")));
  Engine engine = make_engine(cli);

  double bound = cli.get_double("bound");
  Buffer archive;
  if (bound > 0) {
    const Status s = engine.compress_at(bound, field.view(), archive);
    if (!s.ok()) throw_status(s);
  } else {
    // No explicit bound: tune for the target ratio first (cached inside the
    // Engine, so repeated invocations in one process warm-start).
    const auto tuned = engine.tune(cli.get_string("input"), field.view());
    if (!tuned.ok()) throw_status(tuned.status());
    bound = tuned.value().error_bound;
    std::printf("tuned bound %.9g (ratio %.3f, %s)\n", bound,
                tuned.value().achieved_ratio, tuned.value().feasible ? "in band" : "closest");
    const Status s = engine.compress_at(bound, field.view(), archive);
    if (!s.ok()) throw_status(s);
  }
  write_file(cli.get_string("output"), archive.data(), archive.size());

  if (cli.get_flag("verify")) {
    const auto decoded = engine.decompress(archive.data(), archive.size());
    if (!decoded.ok()) throw_status(decoded.status());
    const ErrorStats stats = error_stats(field.view(), decoded.value().view());
    std::printf("verify: max error %.6g (bound %.6g) psnr %.1f dB\n", stats.max_abs_error,
                bound, stats.psnr_db);
    require(stats.max_abs_error <= bound, "bound violated — archive NOT trustworthy");
  }
  std::printf("wrote %s: %zu -> %zu bytes (ratio %.3f)\n", cli.get_string("output").c_str(),
              field.size_bytes(), archive.size(),
              static_cast<double>(field.size_bytes()) / static_cast<double>(archive.size()));
  return 0;
}

int cmd_decompress(const Cli& cli) {
  const auto archive = read_file(cli.get_string("input"));
  Engine engine = make_engine(cli);
  const auto decoded = engine.decompress(archive.data(), archive.size());
  if (!decoded.ok()) throw_status(decoded.status());
  write_raw(cli.get_string("output"), decoded.value().view());
  std::printf("wrote %s: %zu values (%s", cli.get_string("output").c_str(),
              decoded.value().elements(), dtype_name(decoded.value().dtype()).c_str());
  for (std::size_t d : decoded.value().shape()) std::printf(" x%zu", d);
  std::printf(")\n");
  return 0;
}

int cmd_inspect(const Cli& cli) {
  const auto archive = read_file(cli.get_string("input"));
  // Probe every registered backend; the V2 Status API makes "produced by a
  // different backend" an ordinary value instead of exception control flow.
  for (const auto& name : pressio::registry().names()) {
    auto compressor = pressio::registry().create(name);
    NdArray decoded;
    const Status s = compressor->decompress_into(archive.data(), archive.size(), decoded);
    if (s.code() == StatusCode::kUnsupported) continue;  // different backend
    if (!s.ok()) throw_status(s);
    std::printf("compressor  %s\n", name.c_str());
    std::printf("dtype       %s\n", dtype_name(decoded.dtype()).c_str());
    std::printf("shape      ");
    for (std::size_t d : decoded.shape()) std::printf(" %zu", d);
    std::printf("\nvalues      %zu\n", decoded.elements());
    std::printf("ratio       %.3f\n", static_cast<double>(decoded.size_bytes()) /
                                          static_cast<double>(archive.size()));
    return 0;
  }
  std::fprintf(stderr, "no registered backend accepts this archive\n");
  return 1;
}

/// Parse "--range a:b" (half-open plane interval) into first/count.
void parse_range(const std::string& spec, std::size_t& first, std::size_t& count) {
  const std::size_t colon = spec.find(':');
  require(colon != std::string::npos && colon > 0 && colon + 1 < spec.size() &&
              spec.find_first_not_of("0123456789:") == std::string::npos &&
              spec.find(':', colon + 1) == std::string::npos,
          "--range must look like first:end (half-open, slowest axis)");
  try {
    first = static_cast<std::size_t>(std::stoull(spec.substr(0, colon)));
    count = static_cast<std::size_t>(std::stoull(spec.substr(colon + 1)));
  } catch (const std::exception&) {
    throw InvalidArgument("--range bounds do not fit in an integer: '" + spec + "'");
  }
  require(count > first, "--range end must exceed its start");
  count -= first;
}

/// The pack flags shared by the single-field and multi-field paths.
archive::ArchiveWriteConfig pack_config(const Cli& cli) {
  archive::ArchiveWriteConfig config;
  config.engine.compressor = cli.get_string("compressor");
  config.engine.tuner.target_ratio = cli.get_double("target");
  config.engine.tuner.epsilon = cli.get_double("epsilon");
  config.engine.tuner.max_error_bound = cli.get_double("max-bound");
  config.engine.tuner.regions = static_cast<int>(cli.get_int("regions"));
  config.engine.tuner.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  config.chunk_extent = static_cast<std::size_t>(cli.get_int("chunk-extent"));
  config.threads = static_cast<unsigned>(cli.get_int("threads"));
  return config;
}

/// Restartable tuning campaigns: --bounds-in seeds the writer's warm-bound
/// store before the pack, --bounds-out saves it after.  A missing input
/// store is a cold start, not an error — the first run of a campaign has
/// nothing to restore; a *corrupt* store is a hard error (silently packing
/// cold would waste the probes the caller tried to save).
template <typename Writer>
void load_bounds(const Cli& cli, const Writer& writer) {
  const std::string path = cli.get_string("bounds-in");
  if (path.empty()) return;
  const Status s = writer.bound_store()->load(path);
  if (s.ok()) return;
  if (s.code() == StatusCode::kIoError) {
    std::fprintf(stderr, "warning: no warm-bound store at '%s'; tuning cold\n",
                 path.c_str());
    return;
  }
  throw_status(s);
}

template <typename Writer>
void save_bounds(const Cli& cli, const Writer& writer) {
  const std::string path = cli.get_string("bounds-out");
  if (path.empty()) return;
  const Status s = writer.bound_store()->save(path);
  if (!s.ok()) throw_status(s);
}

/// Render a pack result (and its per-field breakdown) as JSON.
std::string pack_json(const Cli& cli, const archive::ArchiveWriteResult& r) {
  JsonWriter w;
  w.begin_object()
      .field("output", cli.get_string("output"))
      .field("format_version", r.format_version)
      .field("raw_bytes", r.raw_bytes)
      .field("archive_bytes", r.archive_bytes)
      .field("chunk_count", r.chunk_count)
      .field("chunk_extent", r.chunk_extent)
      .field("achieved_ratio", r.achieved_ratio)
      .field("in_band", r.in_band)
      .field("warm_chunks", r.warm_chunks)
      .field("retrained_chunks", r.retrained_chunks)
      .field("rate_fallback_chunks", r.rate_fallback_chunks)
      .field("tuner_probe_calls", r.tuner_probe_calls)
      .field("probe_cache_hits", r.probe_cache_hits)
      .field("peak_buffered_chunks", r.peak_buffered_chunks)
      .field("peak_buffered_bytes", r.peak_buffered_bytes)
      .field("peak_staged_bytes", r.peak_staged_bytes)
      .key("fields")
      .begin_array();
  for (const archive::FieldWriteReport& f : r.fields) {
    w.begin_object()
        .field("name", f.name)
        .field("dtype", dtype_name(f.dtype))
        .field("raw_bytes", f.raw_bytes)
        .field("payload_bytes", f.payload_bytes)
        .field("payload_ratio", f.payload_ratio)
        .field("chunk_count", f.chunk_count)
        .field("chunk_extent", f.chunk_extent)
        .field("warm_chunks", f.warm_chunks)
        .field("retrained_chunks", f.retrained_chunks)
        .field("rate_fallback_chunks", f.rate_fallback_chunks)
        .end_object();
  }
  w.end_array()
      .field("seconds", r.seconds)
      .field_raw("telemetry", telemetry::global().to_json())
      .end_object();
  return std::move(w).str();
}

int report_pack(const Cli& cli, const archive::ArchiveWriteResult& r) {
  if (cli.get_flag("json")) {
    std::printf("%s\n", pack_json(cli, r).c_str());
    return r.in_band ? 0 : 2;
  }
  std::printf("wrote %s (format v%u): %zu -> %zu bytes, %zu field(s)\n",
              cli.get_string("output").c_str(), static_cast<unsigned>(r.format_version),
              r.raw_bytes, r.archive_bytes, r.fields.size());
  for (const archive::FieldWriteReport& f : r.fields)
    std::printf("  field '%s': %zu -> %zu bytes (ratio %.3f) in %zu chunks of %zu "
                "plane(s)\n",
                f.name.c_str(), f.raw_bytes, f.payload_bytes, f.payload_ratio,
                f.chunk_count, f.chunk_extent);
  std::printf("aggregate ratio %.3f vs target %.3f (epsilon %.3f): %s\n",
              r.achieved_ratio, cli.get_double("target"), cli.get_double("epsilon"),
              r.in_band ? "in band" : "OUT OF BAND");
  std::printf("chunks: %zu warm, %zu retrained, %zu rate-fallback; peak %zu buffered "
              "(%zu bytes out, %zu bytes staged in), %.2fs\n",
              r.warm_chunks, r.retrained_chunks, r.rate_fallback_chunks,
              r.peak_buffered_chunks, r.peak_buffered_bytes, r.peak_staged_bytes,
              r.seconds);
  std::printf("tuning: %zu probes executed, %zu served by the probe cache\n",
              r.tuner_probe_calls, r.probe_cache_hits);
  return r.in_band ? 0 : 2;
}

/// One --field occurrence: NAME=PATH[:DIMS[:DTYPE]], dims/dtype defaulting
/// to the global flags.
struct FieldSpec {
  std::string name;
  std::string path;
  Shape dims;
  DType dtype;
};

FieldSpec parse_field_spec(const std::string& spec, const Cli& cli) {
  const std::size_t eq = spec.find('=');
  require(eq != std::string::npos && eq > 0 && eq + 1 < spec.size(),
          "--field must look like NAME=PATH[:DIMS[:DTYPE]]: '" + spec + "'");
  FieldSpec out;
  out.name = spec.substr(0, eq);
  std::string rest = spec.substr(eq + 1);
  std::string dims = cli.get_string("dims");
  std::string dtype = cli.get_string("dtype");
  // Strip optional suffixes from the right so paths may contain colons.
  auto last_token = [&rest]() -> std::string {
    const std::size_t colon = rest.rfind(':');
    return colon == std::string::npos ? std::string() : rest.substr(colon + 1);
  };
  if (const std::string token = last_token(); token == "f32" || token == "f64") {
    dtype = token;
    rest.resize(rest.rfind(':'));
  }
  if (const std::string token = last_token();
      !token.empty() && token.find_first_not_of("0123456789x") == std::string::npos) {
    dims = token;
    rest.resize(rest.rfind(':'));
  }
  require(!rest.empty(), "--field is missing its path: '" + spec + "'");
  out.path = rest;
  out.dims = parse_dims(dims);
  out.dtype = dtype_from_name(dtype);
  return out;
}

/// Multi-field pack: stream every --field through an ingestion session in
/// chunk-row-sized slabs — no field is ever fully resident, in memory terms
/// the pack is O(chunk-row x workers) end to end.
int cmd_pack_fields(const Cli& cli, const std::vector<std::string>& specs) {
  auto writer = archive::ArchiveFileWriter::create(pack_config(cli));
  if (!writer.ok()) throw_status(writer.status());
  load_bounds(cli, writer.value());
  Status s = writer.value().begin(cli.get_string("output"));
  if (!s.ok()) throw_status(s);
  for (const std::string& raw_spec : specs) {
    const FieldSpec spec = parse_field_spec(raw_spec, cli);
    RawFileReader raw(spec.path, spec.dtype, spec.dims);
    archive::FieldDesc desc;
    desc.dtype = spec.dtype;
    desc.shape = spec.dims;
    auto session = writer.value().open_field(spec.name, desc);
    if (!session.ok()) throw_status(session.status());
    const std::size_t plane_bytes =
        (shape_elements(spec.dims) / spec.dims[0]) * dtype_size(spec.dtype);
    const std::size_t slab_planes =
        std::max<std::size_t>(1, (4u << 20) / std::max<std::size_t>(plane_bytes, 1));
    while (raw.planes_remaining() > 0) {
      s = session.value().push(raw.next(slab_planes));
      if (!s.ok()) throw_status(s);
    }
    const auto report = session.value().close();
    if (!report.ok()) throw_status(report.status());
  }
  const auto written = writer.value().finish();
  if (!written.ok()) throw_status(written.status());
  save_bounds(cli, writer.value());
  return report_pack(cli, written.value());
}

int cmd_pack(const Cli& cli) {
  if (const auto& specs = cli.get_list("field"); !specs.empty())
    return cmd_pack_fields(cli, specs);

  const NdArray field = read_raw(cli.get_string("input"),
                                 dtype_from_name(cli.get_string("dtype")),
                                 parse_dims(cli.get_string("dims")));
  // Stream the archive straight to disk: chunks are written as their
  // compression tasks finish, so peak memory is O(chunk x workers) — the
  // archive itself is never resident.
  auto writer = archive::ArchiveFileWriter::create(pack_config(cli));
  if (!writer.ok()) throw_status(writer.status());
  load_bounds(cli, writer.value());
  const auto written = writer.value().write(cli.get_string("output"), field.view());
  if (!written.ok()) throw_status(written.status());
  save_bounds(cli, writer.value());
  return report_pack(cli, written.value());
}

int cmd_unpack(const Cli& cli) {
  // Positioned reads only: open() validates just the manifest and footer;
  // chunk payloads are fetched (mmap or buffered) as requests touch them.
  auto reader = archive::ArchiveFileReader::open(cli.get_string("input"));
  if (!reader.ok()) throw_status(reader.status());
  const auto threads = static_cast<unsigned>(cli.get_int("threads"));

  // --field selects one field of a multi-field archive; the default is the
  // archive's first (and for v1/v2, only) field.
  const auto& field_flags = cli.get_list("field");
  require(field_flags.size() <= 1, "unpack takes at most one --field");
  const std::string field_name =
      field_flags.empty() ? reader.value().fields().front().name : field_flags[0];
  const archive::FieldInfo* field = archive::find_field(reader.value().info(), field_name);
  require(field != nullptr, "no field named '" + field_name + "' in the archive");

  const std::int64_t chunk = cli.get_int("chunk");
  const std::string range = cli.get_string("range");
  require(chunk < 0 || range.empty(), "--chunk and --range are mutually exclusive");
  if (chunk >= 0 || !range.empty()) {
    Result<NdArray> decoded = [&]() -> Result<NdArray> {
      if (chunk >= 0)
        return reader.value().read_chunk(field_name, static_cast<std::size_t>(chunk));
      std::size_t first = 0, count = 0;
      parse_range(range, first, count);
      return reader.value().read_range(field_name, first, count, threads);
    }();
    if (!decoded.ok()) throw_status(decoded.status());
    write_raw(cli.get_string("output"), decoded.value().view());
    std::printf("wrote %s: %zu values (%s", cli.get_string("output").c_str(),
                decoded.value().elements(), dtype_name(decoded.value().dtype()).c_str());
    for (std::size_t d : decoded.value().shape()) std::printf(" x%zu", d);
    std::printf(")\n");
    return 0;
  }

  // Streaming full unpack: decode a window of chunks per pass (in parallel)
  // and append it to the output, so peak memory is O(window x chunk), never
  // O(raw) — the counterpart of the streaming pack.
  unsigned workers = threads == 0 ? std::thread::hardware_concurrency() : threads;
  if (workers == 0) workers = 1;
  const std::size_t n0 = field->shape[0];
  RawFileWriter out(cli.get_string("output"));
  for (std::size_t c = 0; c < field->chunk_count; c += workers) {
    const std::size_t first = c * field->chunk_extent;
    const std::size_t last = std::min(n0, (c + workers) * field->chunk_extent);
    auto window = reader.value().read_range(field_name, first, last - first, threads);
    if (!window.ok()) throw_status(window.status());
    out.append(window.value().view());
  }
  out.close();
  std::printf("wrote %s: %zu values (%s", cli.get_string("output").c_str(),
              shape_elements(field->shape), dtype_name(field->dtype).c_str());
  for (std::size_t d : field->shape) std::printf(" x%zu", d);
  std::printf(")\n");
  return 0;
}

int cmd_serve(const Cli& cli) {
  serve::ReaderPoolConfig config;
  const std::int64_t cache_mb = cli.get_int("cache-mb");
  require(cache_mb >= 0, "--cache-mb must be >= 0 (0 disables caching)");
  config.cache_bytes = static_cast<std::size_t>(cache_mb) << 20;
  config.prefetch = !cli.get_flag("no-prefetch");
  auto pool = serve::ReaderPool::open(cli.get_string("input"), config);
  if (!pool.ok()) throw_status(pool.status());

  serve::ServeStats stats;
  Status served;
  const std::int64_t port = cli.get_int("port");
  if (port >= 0) {
    require(port <= 65535, "--port must be 0..65535 (0 picks an ephemeral port)");
    served = serve::serve_tcp(
        pool.value(), static_cast<std::uint16_t>(port), &stats, [](std::uint16_t bound) {
          // Announce on stderr so scripted clients can scrape the ephemeral
          // port without disturbing any stdout the caller may be piping.
          std::fprintf(stderr, "serving on 127.0.0.1:%u\n", static_cast<unsigned>(bound));
          std::fflush(stderr);
        });
  } else {
    // inetd-style default: one connection over stdin/stdout.
    serve::StreamTransport transport(std::cin, std::cout);
    served = serve::serve_connection(pool.value(), transport, &stats);
  }
  if (!served.ok()) throw_status(served);
  std::fprintf(stderr, "served %zu request(s), %zu error(s), %zu payload byte(s)\n",
               stats.requests, stats.errors, stats.bytes_out);
  return 0;
}

int cmd_info(const Cli& cli) {
  // Only the manifest and footer are read — info on a TB-scale archive
  // touches KBs of the file.
  auto reader = archive::ArchiveFileReader::open(cli.get_string("input"));
  if (!reader.ok()) throw_status(reader.status());
  const archive::ArchiveInfo& info = reader.value().info();

  if (cli.get_flag("json")) {
    std::string out = "{";
    out += "\"format_version\":" + std::to_string(info.version);
    out += ",\"compressor\":" + json_escape(info.compressor);
    out += ",\"dtype\":" + json_escape(dtype_name(info.dtype));
    out += ",\"shape\":[";
    for (std::size_t d = 0; d < info.shape.size(); ++d)
      out += (d ? "," : "") + std::to_string(info.shape[d]);
    out += "],\"chunk_extent\":" + std::to_string(info.chunk_extent);
    out += ",\"chunk_count\":" + std::to_string(info.chunk_count);
    out += ",\"target_ratio\":" + std::to_string(info.target_ratio);
    out += ",\"epsilon\":" + std::to_string(info.epsilon);
    out += ",\"raw_bytes\":" + std::to_string(info.raw_bytes);
    out += ",\"archive_bytes\":" + std::to_string(info.archive_bytes);
    out += ",\"achieved_ratio\":" + std::to_string(info.achieved_ratio);
    out += ",\"field_count\":" + std::to_string(info.fields.size());
    out += ",\"fields\":[";
    for (std::size_t f = 0; f < info.fields.size(); ++f) {
      const archive::FieldInfo& field = info.fields[f];
      if (f) out += ",";
      out += "{\"name\":" + json_escape(field.name);
      out += ",\"compressor\":" + json_escape(field.compressor);
      out += ",\"dtype\":" + json_escape(dtype_name(field.dtype));
      out += ",\"shape\":[";
      for (std::size_t d = 0; d < field.shape.size(); ++d)
        out += (d ? "," : "") + std::to_string(field.shape[d]);
      out += "],\"chunk_extent\":" + std::to_string(field.chunk_extent);
      out += ",\"chunk_count\":" + std::to_string(field.chunk_count);
      out += ",\"target_ratio\":" + std::to_string(field.target_ratio);
      out += ",\"epsilon\":" + std::to_string(field.epsilon);
      out += ",\"raw_bytes\":" + std::to_string(field.raw_bytes);
      out += ",\"payload_bytes\":" + std::to_string(field.payload_bytes);
      out += ",\"payload_ratio\":" + std::to_string(field.payload_ratio);
      out += ",\"chunks\":[";
      for (std::size_t i = 0; i < field.chunks.size(); ++i) {
        const archive::ChunkEntry& c = field.chunks[i];
        if (i) out += ",";
        out += "{\"offset\":" + std::to_string(c.offset) +
               ",\"size\":" + std::to_string(c.size) +
               ",\"error_bound\":" + std::to_string(c.error_bound) + "}";
      }
      out += "]}";
    }
    out += "],\"chunks\":[";
    for (std::size_t i = 0; i < info.chunks.size(); ++i) {
      const archive::ChunkEntry& c = info.chunks[i];
      if (i) out += ",";
      out += "{\"offset\":" + std::to_string(c.offset) +
             ",\"size\":" + std::to_string(c.size) +
             ",\"error_bound\":" + std::to_string(c.error_bound) + "}";
    }
    out += "]}";
    std::printf("%s\n", out.c_str());
    return 0;
  }

  std::printf("format version  %u\n", static_cast<unsigned>(info.version));
  std::printf("fields          %zu\n", info.fields.size());
  std::printf("aggregate ratio %.3f (%zu -> %zu bytes)\n", info.achieved_ratio,
              info.raw_bytes, info.archive_bytes);
  for (const archive::FieldInfo& field : info.fields) {
    std::printf("field '%s'      %s [%s", field.name.c_str(), field.compressor.c_str(),
                dtype_name(field.dtype).c_str());
    for (std::size_t d : field.shape) std::printf(" x%zu", d);
    std::printf("], %zu chunk(s) of %zu plane(s), target %.3f (epsilon %.3f), "
                "ratio %.3f (%zu -> %zu bytes)\n",
                field.chunk_count, field.chunk_extent, field.target_ratio, field.epsilon,
                field.payload_ratio, field.raw_bytes, field.payload_bytes);
    std::printf("  %-6s %-10s %-10s %s\n", "chunk", "offset", "bytes", "error_bound");
    for (std::size_t i = 0; i < field.chunks.size(); ++i)
      std::printf("  %-6zu %-10zu %-10zu %.9g\n", i, field.chunks[i].offset,
                  field.chunks[i].size, field.chunks[i].error_bound);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: fraz "
                 "<tune|quality|compress|decompress|inspect|pack|unpack|info|serve|"
                 "backends> "
                 "[flags]\nrun 'fraz <subcommand> --help' for flags\n");
    return 1;
  }
  const std::string subcommand = argv[1];
  try {
    if (subcommand == "backends") return cmd_backends(argc - 1, argv + 1);

    Cli cli("fraz " + subcommand);
    cli.add_string("input", "", "input file (raw scalars or .fraz archive)");
    cli.add_string("output", "out.bin", "output file");
    cli.add_string("dims", "0", "raw input shape, e.g. 100x500x500");
    cli.add_string("dtype", "f32", "raw input scalar type: f32|f64");
    cli.add_string("compressor", "sz", "backend: sz|szx|zfp|mgard|fpc|truncate");
    cli.add_double("target", 10.0, "target compression ratio");
    cli.add_double("epsilon", 0.1, "acceptance band around the target");
    cli.add_double("bound", 0.0, "explicit error bound (skip tuning when > 0)");
    cli.add_double("max-bound", 0.0, "U: maximum allowed error bound (0 = auto)");
    cli.add_int("regions", 12, "error-bound search regions (paper default 12)");
    cli.add_int("seed", static_cast<std::int64_t>(kDefaultSearchSeed),
                "deterministic search seed");
    cli.add_flag("verify", "after compress: decompress and check the bound");
    cli.add_flag("json", "tune/pack/info: emit the result as JSON");
    cli.add_int("chunk-extent", 0, "pack: slowest-axis planes per chunk (0 = auto)");
    cli.add_int("threads", 0, "pack/unpack: worker threads (0 = hardware)");
    cli.add_list("field", "pack: NAME=PATH[:DIMS[:DTYPE]], repeatable, streams each "
                          "field into one v3 archive; unpack: field to extract");
    cli.add_int("chunk", -1, "unpack: extract a single chunk by index");
    cli.add_string("range", "", "unpack: slowest-axis plane range first:end");
    cli.add_string("metric", "psnr", "quality: psnr|ssim");
    cli.add_double("floor", 60.0, "quality: minimum acceptable metric value");
    cli.add_string("bounds-in", "", "pack: warm-bound store to restore before tuning");
    cli.add_string("bounds-out", "", "pack: save the warm-bound store here afterwards");
    cli.add_int("cache-mb", 256, "serve: decoded-chunk cache budget in MiB (0 = off)");
    cli.add_flag("no-prefetch", "serve: disable sequential-scan readahead");
    cli.add_int("port", -1, "serve: TCP port (0 = ephemeral; default stdin/stdout)");
    if (!cli.parse(argc - 1, argv + 1)) return 0;
    // Multi-field pack names its inputs per --field; everything else reads
    // one --input file.
    const bool multi_field_pack = subcommand == "pack" && !cli.get_list("field").empty();
    require(multi_field_pack || !cli.get_string("input").empty(), "--input is required");

    if (subcommand == "tune") return cmd_tune(cli);
    if (subcommand == "quality") return cmd_quality(cli);
    if (subcommand == "compress") return cmd_compress(cli);
    if (subcommand == "decompress") return cmd_decompress(cli);
    if (subcommand == "inspect") return cmd_inspect(cli);
    if (subcommand == "pack") return cmd_pack(cli);
    if (subcommand == "unpack") return cmd_unpack(cli);
    if (subcommand == "info") return cmd_info(cli);
    if (subcommand == "serve") return cmd_serve(cli);
    std::fprintf(stderr, "unknown subcommand '%s'\n", subcommand.c_str());
    return 1;
  } catch (const fraz::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    // Flag parsing helpers (std::stoull and friends) throw standard
    // exceptions; a typo must print usage-style feedback, not terminate().
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
