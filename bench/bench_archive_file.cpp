/// Streaming file transport vs. in-memory transport — throughput and memory
/// of `fraz::archive`'s two write paths, plus positioned-read latency of the
/// two file read modes (mmap vs. buffered fread).
///
/// What this measures (no paper figure — the file layer is a scale-out
/// extension in the C-Blosc2 frame tradition):
///
///  - pack throughput of ArchiveWriter (whole archive resident) against
///    ArchiveFileWriter (chunks streamed to disk as they finish), at several
///    worker counts, asserting the two transports' bytes are identical;
///  - the writer's peak buffered chunk payloads — the streaming memory
///    model says it never exceeds workers + 1;
///  - ranged-read latency through the file reader's mmap path and its
///    portable buffered fallback.
///
/// Expected shape: file packs within a few percent of in-memory packs (the
/// sink append is tiny next to chunk compression), peak buffered chunks
/// pinned at workers + 1, and mmap ranged reads at or below buffered ones.
/// Output ends with one machine-readable JSON line.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "archive/archive.hpp"
#include "archive/archive_file.hpp"
#include "bench_common.hpp"
#include "ndarray/io.hpp"

namespace {

using namespace fraz;

archive::ArchiveWriteConfig make_config(const Cli& cli, unsigned threads) {
  archive::ArchiveWriteConfig config;
  config.engine.compressor = cli.get_string("compressor");
  config.engine.tuner.target_ratio = cli.get_double("target");
  config.threads = threads;
  return config;
}

std::vector<std::uint8_t> slurp(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return {};
  std::fseek(f, 0, SEEK_END);
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(std::ftell(f)));
  std::fseek(f, 0, SEEK_SET);
  const std::size_t got = std::fread(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  bytes.resize(got);
  return bytes;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fraz;
  Cli cli("archive file transport: streaming pack + positioned reads");
  cli.add_string("scale", "small", "suite scale: tiny|small|medium");
  cli.add_string("field", "TCf", "hurricane field to pack");
  cli.add_string("compressor", "sz", "backend: sz|zfp|mgard|truncate");
  cli.add_double("target", 10.0, "target aggregate compression ratio");
  cli.add_int("steps", 4, "timed packs per transport (after 1 warm-up)");
  cli.add_string("path", "bench_archive_file.fraza", "scratch archive path");
  if (!cli.parse(argc, argv)) return 0;

  bench::banner("archive-file",
                "streaming file packs vs in-memory packs; mmap vs buffered reads",
                "file pack within a few %% of memory pack; peak buffered chunks "
                "== workers + 1; byte-identical transports");

  const auto ds =
      data::dataset_by_name("hurricane", bench::parse_scale(cli.get_string("scale")));
  const auto spec = data::field_by_name(ds, cli.get_string("field"));
  const int steps = static_cast<int>(cli.get_int("steps"));
  const std::string path = cli.get_string("path");
  const std::vector<NdArray> series =
      data::generate_series(spec, static_cast<std::size_t>(steps) + 1);
  const double raw_mb = static_cast<double>(series[0].size_bytes()) / 1e6;

  std::printf("%-8s %-12s %-10s %-10s %-14s %s\n", "workers", "transport", "MB/s",
              "ratio", "peak_buffered", "identical");
  double mem_mbps = 0, file_mbps = 0;
  std::size_t peak_chunks = 0;
  bool identical = true;
  for (const unsigned threads : {1u, 2u, 4u}) {
    // In-memory transport.
    archive::ArchiveWriter memory_writer(make_config(cli, threads));
    Buffer memory_bytes;
    if (!memory_writer.write(series[0].view(), memory_bytes).ok()) return 1;
    Timer memory_timer;
    double ratio = 0;
    for (int s = 1; s <= steps; ++s) {
      auto written = memory_writer.write(series[static_cast<std::size_t>(s)].view(),
                                         memory_bytes);
      if (!written.ok()) return 1;
      ratio = written.value().achieved_ratio;
    }
    mem_mbps = raw_mb * steps / memory_timer.seconds();
    std::printf("%-8u %-12s %-10.1f %-10.3f %-14s %s\n", threads, "memory", mem_mbps,
                ratio, "-", "-");

    // Streaming file transport (same warm-up discipline, same data).
    archive::ArchiveFileWriter file_writer(make_config(cli, threads));
    if (!file_writer.write(path, series[0].view()).ok()) return 1;
    Timer file_timer;
    std::size_t peak = 0, window = 0;
    for (int s = 1; s <= steps; ++s) {
      auto written = file_writer.write(path, series[static_cast<std::size_t>(s)].view());
      if (!written.ok()) return 1;
      ratio = written.value().achieved_ratio;
      peak = std::max(peak, written.value().peak_buffered_chunks);
      window = static_cast<std::size_t>(threads) + 1;
    }
    file_mbps = raw_mb * steps / file_timer.seconds();
    peak_chunks = peak;
    // The last file step and the last memory step packed the same array.
    const auto file_bytes = slurp(path);
    const bool same = file_bytes.size() == memory_bytes.size() &&
                      std::memcmp(file_bytes.data(), memory_bytes.data(),
                                  file_bytes.size()) == 0;
    identical = identical && same;
    std::printf("%-8u %-12s %-10.1f %-10.3f %zu <= %-8zu %s\n", threads, "file",
                file_mbps, ratio, peak, window, same ? "yes" : "NO");
  }

  // Ranged reads: mmap vs buffered, one chunk-sized window per probe.
  double mmap_us = 0, buffered_us = 0;
  for (const auto mode : {archive::FileReadMode::kAuto, archive::FileReadMode::kBuffered}) {
    auto reader = archive::ArchiveFileReader::open(path, mode);
    if (!reader.ok()) return 1;
    const std::size_t n0 = reader.value().info().shape[0];
    const std::size_t extent = reader.value().info().chunk_extent;
    constexpr int kProbes = 32;
    Timer timer;
    for (int p = 0; p < kProbes; ++p) {
      const std::size_t first = (static_cast<std::size_t>(p) * 7) % (n0 - extent + 1);
      if (!reader.value().read_range(first, extent).ok()) return 1;
    }
    const double us = timer.seconds() * 1e6 / kProbes;
    (reader.value().mapped() ? mmap_us : buffered_us) = us;
    std::printf("ranged read (%s): %.0f us / chunk-sized window\n",
                reader.value().mapped() ? "mmap" : "buffered", us);
  }

  std::remove(path.c_str());
  std::printf("\n{\"bench\":\"archive_file\",\"memory_mbps\":%.1f,\"file_mbps\":%.1f,"
              "\"peak_buffered_chunks\":%zu,\"mmap_us\":%.0f,\"buffered_us\":%.0f,"
              "\"identical\":%s}\n",
              mem_mbps, file_mbps, peak_chunks, mmap_us, buffered_us,
              identical ? "true" : "false");
  return identical ? 0 : 1;
}
