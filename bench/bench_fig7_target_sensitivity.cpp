/// Reproduction of Fig. 7: sensitivity of FRaZ's runtime to the target
/// compression ratio rho_t in 2..29 on a Hurricane field series.
///
/// Expected shapes:
///  - low targets below the compressor's effective ratio floor never
///    converge: every step burns the full iteration budget, so total time
///    sits on a high plateau;
///  - feasible mid-range targets converge in a handful of calls (warm-start
///    reuse makes later steps nearly free) -> roughly 10x faster;
///  - compression time dominates total time (the search itself is cheap).

#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "core/tuner.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace fraz;
  Cli cli("Fig. 7 reproduction: runtime vs target compression ratio");
  cli.add_string("scale", "small", "suite scale: tiny|small|medium");
  cli.add_int("steps", 4, "time steps per target");
  cli.add_int("min-target", 2, "first target ratio");
  cli.add_int("max-target", 29, "last target ratio");
  if (!cli.parse(argc, argv)) return 0;

  bench::banner("Fig. 7", "sensitivity to the target objective (Hurricane CLOUD analogue, SZ)",
                "plateau of long runtimes below the ratio floor; fast convergence for "
                "feasible targets; compression time ~ total time");

  const auto ds = data::dataset_by_name("hurricane", bench::parse_scale(cli.get_string("scale")));
  const auto spec = data::field_by_name(ds, "CLOUDf");
  const auto arrays =
      data::generate_series(spec, static_cast<int>(cli.get_int("steps")));
  std::vector<ArrayView> views;
  for (const auto& a : arrays) views.push_back(a.view());

  Table t({"target", "total_time_s", "compress_time_s", "compress_calls", "steps_in_band"});
  auto compressor = pressio::registry().create("sz");
  for (int target = static_cast<int>(cli.get_int("min-target"));
       target <= static_cast<int>(cli.get_int("max-target")); ++target) {
    TunerConfig cfg;
    cfg.target_ratio = target;
    cfg.epsilon = 0.1;
    cfg.regions = 8;
    cfg.max_evals_per_region = 12;
    // The paper searched the bound axis linearly (Dlib over [lo, U]); keep
    // that here so the low-target infeasibility plateau reproduces.  Serial
    // execution makes total time directly comparable with the estimated
    // compression time (as in the paper's single-node Fig. 7).
    cfg.log_scale_search = false;
    cfg.threads = 1;
    const Tuner tuner(*compressor, cfg);

    Timer timer;
    const SeriesResult series = tuner.tune_series(views);
    const double total = timer.seconds();

    // Estimate pure compression time: one timed compression at the tuned
    // bound scaled by call count (the loop outside compression is trivial).
    auto probe_comp = compressor->clone();
    probe_comp->set_error_bound(series.steps.back().result.error_bound > 0
                                    ? series.steps.back().result.error_bound
                                    : value_range(views[0]) * 0.01);
    Timer ctimer;
    (void)probe_comp->compress(views[0]);
    const double one_compress = ctimer.seconds();
    const double compress_time = one_compress * series.total_compress_calls;

    int in_band = 0;
    for (const auto& s : series.steps) in_band += s.result.feasible;
    t.add_row({std::to_string(target), Table::num(total, 3), Table::num(compress_time, 3),
               std::to_string(series.total_compress_calls),
               std::to_string(in_band) + "/" + std::to_string(series.steps.size())});
  }
  t.print(std::cout);
  std::printf("\nnote: targets below the SZ ratio floor on this field exhaust the\n"
              "iteration budget at every step (the paper's ~10x runtime plateau).\n");
  return 0;
}
