/// Reproduction of Fig. 10: visual quality on NYX temperature at CR ~ 85:1.
///
/// The paper wanted 100:1 but settled on 85:1, ZFP's closest feasible ratio;
/// this bench does the same search.  It reports PSNR, SSIM, and ACF(error)
/// for ZFP(FRaZ), ZFP(fixed-rate), SZ(FRaZ), and MGARD(FRaZ), and dumps the
/// middle slice of each reconstruction as a PGM image (plus the original)
/// under ./bench_artifacts/.
///
/// Expected shapes: ZFP(FRaZ) far better than ZFP(fixed-rate) on PSNR/SSIM;
/// SZ(FRaZ) best overall; MGARD(FRaZ) lowest quality on this dataset.

#include <cstdio>
#include <iostream>
#include <filesystem>
#include <string>

#include "bench_common.hpp"
#include "core/tuner.hpp"
#include "metrics/acf.hpp"
#include "metrics/error_stats.hpp"
#include "metrics/ssim.hpp"
#include "pressio/options.hpp"
#include "util/pgm.hpp"

namespace {

using namespace fraz;

struct Row {
  std::string label;
  double ratio = 0;
  double psnr = 0;
  double ssim_v = 0;
  double acf = 0;
  bool valid = false;
  NdArray decoded;
};

Row measure(const std::string& label, const pressio::Compressor& compressor,
            const ArrayView& view) {
  Row row;
  row.label = label;
  const auto compressed = compressor.compress(view);
  row.decoded = compressor.decompress(compressed.data(), compressed.size());
  const ErrorStats stats = error_stats(view, row.decoded.view());
  row.ratio = compression_ratio(view.size_bytes(), compressed.size());
  row.psnr = stats.psnr_db;
  row.ssim_v = ssim(view, row.decoded.view());
  row.acf = error_acf(view, row.decoded.view());
  row.valid = true;
  return row;
}

void dump_slice(const NdArray& field, const std::string& path) {
  const NdArray slice = field.slice2d(field.shape()[0] / 2);
  write_pgm(path, slice.to_doubles(), slice.shape()[1], slice.shape()[0]);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fraz;
  Cli cli("Fig. 10 reproduction: visual quality at CR ~ 85:1 (NYX temperature)");
  // Medium scale by default: CR 85 archives of the small field would sit
  // below the codecs' fixed overhead floor (the paper used a 512^3 field).
  cli.add_string("scale", "medium", "suite scale: tiny|small|medium");
  cli.add_double("target", 85.0, "target compression ratio (paper: 85)");
  cli.add_string("artifacts", "bench_artifacts", "output directory for PGM slices");
  if (!cli.parse(argc, argv)) return 0;

  bench::banner("Fig. 10", "visual quality at CR~85 (NYX temperature analogue)",
                "ZFP(FRaZ) >> ZFP(fixed-rate) on PSNR/SSIM; SZ(FRaZ) best; MGARD lowest");

  const auto ds = data::dataset_by_name("nyx", bench::parse_scale(cli.get_string("scale")));
  const NdArray field = data::generate_field(data::field_by_name(ds, "temperature"), 0);
  const ArrayView view = field.view();
  const double target = cli.get_double("target");

  const std::string artifacts = cli.get_string("artifacts");
  std::filesystem::create_directories(artifacts);
  dump_slice(field, artifacts + "/fig10_original.pgm");

  TunerConfig cfg;
  cfg.target_ratio = target;
  cfg.epsilon = 0.15;
  cfg.regions = 8;
  cfg.max_evals_per_region = 16;
  // ZFP needs tolerances above the value range to reach CR~85 (its accuracy
  // mode keeps collapsing blocks); the paper's remedy for a too-small U is
  // rerunning with the compressor's maximum allowed bound -- emulate that by
  // opening the cap to several times the range.
  cfg.max_error_bound = value_range(view) * 16.0;

  std::vector<Row> rows;
  for (const std::string backend : {"zfp", "sz", "mgard"}) {
    auto compressor = pressio::registry().create(backend);
    const Tuner tuner(*compressor, cfg);
    const TuneResult r = tuner.tune(view);
    if (r.error_bound <= 0) continue;
    compressor->set_error_bound(r.error_bound);
    rows.push_back(measure(backend + "(FRaZ)", *compressor, view));
    dump_slice(rows.back().decoded, artifacts + "/fig10_" + backend + "_fraz.pgm");
  }
  {
    auto compressor = pressio::registry().create("zfp");
    pressio::Options o;
    o.set("zfp:mode", std::string("rate"));
    o.set("zfp:rate", 32.0 / target);
    compressor->set_options(o);
    rows.push_back(measure("zfp(fixed-rate)", *compressor, view));
    dump_slice(rows.back().decoded, artifacts + "/fig10_zfp_fixed_rate.pgm");
  }

  Table t({"method", "ratio", "psnr_db", "ssim", "acf_error"});
  double zfp_fraz_psnr = 0, zfp_rate_psnr = 0, sz_psnr = 0, mgard_psnr = 1e300;
  for (const Row& row : rows) {
    t.add_row({row.label, Table::num(row.ratio, 1), Table::num(row.psnr, 1),
               Table::num(row.ssim_v, 3), Table::num(row.acf, 3)});
    if (row.label == "zfp(FRaZ)") zfp_fraz_psnr = row.psnr;
    if (row.label == "zfp(fixed-rate)") zfp_rate_psnr = row.psnr;
    if (row.label == "sz(FRaZ)") sz_psnr = row.psnr;
    if (row.label == "mgard(FRaZ)") mgard_psnr = row.psnr;
  }
  t.print(std::cout);
  std::printf("\nslice images written to %s/fig10_*.pgm\n", artifacts.c_str());

  std::printf("shape checks: ZFP(FRaZ) > ZFP(fixed-rate): %s; SZ best: %s; MGARD lowest: %s\n",
              zfp_fraz_psnr > zfp_rate_psnr ? "HOLDS" : "VIOLATED",
              sz_psnr >= zfp_fraz_psnr ? "HOLDS" : "VIOLATED",
              mgard_psnr <= std::min({zfp_fraz_psnr, sz_psnr}) ? "HOLDS" : "VIOLATED");
  return 0;
}
