/// Reproduction of Table III (dataset descriptions): prints the synthetic
/// SDRBench-analogue suite with per-dataset domain, time steps, rank, field
/// count, and total size, mirroring the paper's inventory columns.

#include <cstdio>
#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace fraz;
  Cli cli("Table III reproduction: dataset inventory");
  cli.add_string("scale", "small", "suite scale: tiny|small|medium");
  if (!cli.parse(argc, argv)) return 0;

  bench::banner("Table III", "dataset descriptions (synthetic SDRBench analogues)",
                "5 datasets: Hurricane 3D, HACC 1D, CESM 2D, EXAALT 1D, NYX 3D");

  const auto suite = data::sdrbench_suite(bench::parse_scale(cli.get_string("scale")));
  Table t({"name", "domain", "time_steps", "dims", "fields", "total_size_mb"});
  for (const auto& ds : suite) {
    std::string dims;
    for (std::size_t i = 0; i < ds.fields[0].shape.size(); ++i)
      dims += (i ? "x" : "") + std::to_string(ds.fields[0].shape[i]);
    const double total_mb = static_cast<double>(ds.step_bytes()) * ds.time_steps / 1e6;
    t.add_row({ds.name, ds.domain, std::to_string(ds.time_steps), dims,
               std::to_string(ds.fields.size()), Table::num(total_mb, 1)});
  }
  t.print(std::cout);
  std::printf("\nnote: extents are scaled-down analogues of the paper's datasets\n"
              "(59GB Hurricane, 11GB HACC, 48GB CESM, 1.1GB EXAALT, 35GB NYX);\n"
              "generators reproduce the statistical structure, see DESIGN.md.\n");
  return 0;
}
