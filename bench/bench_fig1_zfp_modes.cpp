/// Reproduction of Fig. 1: ZFP fixed-accuracy vs fixed-rate.
///
/// (b) rate-distortion: PSNR vs bit rate for both modes on the Hurricane
///     TCf analogue — fixed-accuracy should dominate fixed-rate across the
///     whole bit-rate axis (the paper reports up to ~30 dB difference).
/// (c)/(d) the CR=50:1 comparison: PSNR, max error, SSIM, ACF(error) for
///     both modes at the same compression ratio.

#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "compressors/zfp/zfp.hpp"
#include "metrics/acf.hpp"
#include "metrics/error_stats.hpp"
#include "metrics/ssim.hpp"

namespace {

using namespace fraz;

struct ModePoint {
  double bit_rate;
  double psnr;
  double max_err;
  double ssim_v;
  double acf;
  double ratio;
};

ModePoint evaluate(const ArrayView& field, const ZfpOptions& opt) {
  const auto compressed = zfp_compress(field, opt);
  const NdArray decoded = zfp_decompress(compressed);
  const ErrorStats stats = error_stats(field, decoded.view());
  ModePoint p;
  p.bit_rate = bit_rate(field.elements(), compressed.size());
  p.ratio = compression_ratio(field.size_bytes(), compressed.size());
  p.psnr = stats.psnr_db;
  p.max_err = stats.max_abs_error;
  p.ssim_v = ssim(field, decoded.view());
  p.acf = error_acf(field, decoded.view());
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fraz;
  Cli cli("Fig. 1 reproduction: ZFP fixed-accuracy vs fixed-rate");
  cli.add_string("scale", "small", "suite scale: tiny|small|medium");
  if (!cli.parse(argc, argv)) return 0;

  bench::banner("Fig. 1", "ZFP fixed-accuracy vs fixed-rate (Hurricane TCf analogue)",
                "fixed-accuracy PSNR above fixed-rate at every bit rate; at CR~50 "
                "fixed-accuracy has higher PSNR and far lower max error");

  const auto ds = data::dataset_by_name("hurricane", bench::parse_scale(cli.get_string("scale")));
  const NdArray field = data::generate_field(data::field_by_name(ds, "TCf"), 0);
  const ArrayView view = field.view();

  // ---- (b) rate distortion ----
  std::printf("\n[Fig. 1b] rate distortion (PSNR vs bit rate)\n");
  Table rd({"mode", "bit_rate", "psnr_db", "ratio"});
  // Fixed-rate: sweep rates directly.
  for (double rate : {0.5, 1.0, 2.0, 4.0, 8.0, 12.0, 16.0}) {
    ZfpOptions opt;
    opt.mode = ZfpMode::kFixedRate;
    opt.rate = rate;
    const ModePoint p = evaluate(view, opt);
    rd.add_row({"fixed-rate", Table::num(p.bit_rate, 2), Table::num(p.psnr, 1),
                Table::num(p.ratio, 1)});
  }
  // Fixed-accuracy: sweep tolerances to cover a similar bit-rate span.
  const double range = value_range(view);
  for (double frac : {3e-1, 1e-1, 3e-2, 1e-2, 1e-3, 1e-4, 1e-5, 1e-6}) {
    ZfpOptions opt;
    opt.mode = ZfpMode::kAccuracy;
    opt.tolerance = range * frac;
    const ModePoint p = evaluate(view, opt);
    rd.add_row({"fixed-accuracy", Table::num(p.bit_rate, 2), Table::num(p.psnr, 1),
                Table::num(p.ratio, 1)});
  }
  rd.print(std::cout);

  // Shape check: compare PSNR at matched bit rates via interpolation-free
  // pairing (closest bit rates).
  std::printf("\n[Fig. 1c/1d] matched-ratio comparison at CR ~ 50:1\n");
  // Fixed-rate at CR 50 for f32: rate = 32/50 = 0.64 bits/value.
  ZfpOptions rate_opt;
  rate_opt.mode = ZfpMode::kFixedRate;
  rate_opt.rate = 32.0 / 50.0;
  const ModePoint fixed_rate = evaluate(view, rate_opt);

  // Fixed-accuracy: find the tolerance whose ratio lands nearest 50.
  ZfpOptions acc_opt;
  acc_opt.mode = ZfpMode::kAccuracy;
  ModePoint fixed_acc{};
  double best_dist = 1e300;
  // Tolerances beyond the value range are legitimate here: ZFP keeps
  // collapsing blocks to fewer bit planes, pushing the ratio past 50.
  for (double frac = 1e-4; frac < 8.0; frac *= 1.25) {
    acc_opt.tolerance = range * frac;
    const ModePoint p = evaluate(view, acc_opt);
    if (std::abs(p.ratio - 50.0) < best_dist) {
      best_dist = std::abs(p.ratio - 50.0);
      fixed_acc = p;
    }
  }

  Table cmp({"mode", "ratio", "psnr_db", "max_error", "ssim", "acf_error"});
  cmp.add_row({"fixed-accuracy", Table::num(fixed_acc.ratio, 1), Table::num(fixed_acc.psnr, 1),
               Table::num(fixed_acc.max_err, 3), Table::num(fixed_acc.ssim_v, 3),
               Table::num(fixed_acc.acf, 3)});
  cmp.add_row({"fixed-rate", Table::num(fixed_rate.ratio, 1), Table::num(fixed_rate.psnr, 1),
               Table::num(fixed_rate.max_err, 3), Table::num(fixed_rate.ssim_v, 3),
               Table::num(fixed_rate.acf, 3)});
  cmp.print(std::cout);

  const bool shape_holds = fixed_acc.psnr > fixed_rate.psnr &&
                           fixed_acc.max_err < fixed_rate.max_err;
  std::printf("\nshape check (accuracy-mode beats rate-mode at matched CR): %s\n",
              shape_holds ? "HOLDS" : "VIOLATED");
  return shape_holds ? 0 : 1;
}
