/// Concurrent serving throughput of serve::ReaderPool — the read-side
/// subsystem's headline claim: once the decoded-chunk cache is warm, N
/// client threads re-reading an archive are bounded by memcpy, not by
/// decompression, so warm QPS clears cold QPS by a wide margin.
///
/// Two pools serve the same archive file under the same random-range
/// request mix (deterministic per-thread query streams):
///
///  - **cold**: a zero-budget cache — every request decodes its chunks,
///    the decode-per-call floor ArchiveFileReader alone would pay;
///  - **warm**: the default cache, pre-touched once, so every request is a
///    cache hit plus a plane-window copy.
///
/// Reported per mode: aggregate QPS and per-request latency p50/p99.  A
/// third pass re-runs the warm mix with the FRAZ_TELEMETRY_OFF kill-switch
/// engaged, so the telemetry layer's hot-path overhead is measured directly.
/// Expected shape: warm QPS >= ~5x cold QPS at 8 threads, and
/// telemetry-enabled warm QPS within 10% of the kill-switched run (both
/// floors enforced under --check).  Output ends with one JSON line.

#include <algorithm>
#include <cstdio>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "archive/archive_file.hpp"
#include "bench_common.hpp"
#include "serve/reader_pool.hpp"
#include "telemetry/telemetry.hpp"
#include "util/timer.hpp"

namespace {

using namespace fraz;

struct ModeResult {
  double qps = 0;
  double p50_ms = 0;
  double p99_ms = 0;
};

double percentile(std::vector<double>& sorted_ms, double q) {
  if (sorted_ms.empty()) return 0;
  const auto at = static_cast<std::size_t>(q * static_cast<double>(sorted_ms.size() - 1));
  return sorted_ms[at];
}

/// Run \p threads clients, each issuing \p per_thread random plane-range
/// reads from a deterministic per-thread stream, against one pool.  The
/// wall clock starts at a ready barrier, so thread spawn cost never counts
/// as serving time (warm requests are sub-microsecond — spawn would
/// otherwise dominate the measurement).
ModeResult run_mode(const std::shared_ptr<serve::ReaderPool>& pool, unsigned threads,
                    unsigned per_thread, bool& ok) {
  const std::size_t n0 = pool->fields()[0].shape[0];
  const std::size_t extent = pool->fields()[0].chunk_extent;
  std::vector<std::vector<double>> latencies_ms(threads);
  std::vector<std::thread> clients;
  std::atomic<unsigned> ready{0};
  std::atomic<bool> go{false};
  for (unsigned t = 0; t < threads; ++t)
    clients.emplace_back([&, t] {
      std::mt19937 rng(7000 + t);
      serve::ReaderHandle handle = pool->handle();
      latencies_ms[t].reserve(per_thread);
      ready.fetch_add(1, std::memory_order_relaxed);
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (unsigned q = 0; q < per_thread; ++q) {
        // Chunk-sized windows at random offsets: the slicing access pattern
        // of a visualization or analysis client.
        const std::size_t first = rng() % (n0 - extent + 1);
        Timer request;
        if (!handle.read_range(0, first, extent).ok()) {
          ok = false;
          return;
        }
        latencies_ms[t].push_back(request.seconds() * 1e3);
      }
    });
  while (ready.load(std::memory_order_relaxed) < threads) std::this_thread::yield();
  Timer wall;
  go.store(true, std::memory_order_release);
  for (std::thread& client : clients) client.join();
  const double elapsed = wall.seconds();

  std::vector<double> all_ms;
  for (const auto& thread_ms : latencies_ms)
    all_ms.insert(all_ms.end(), thread_ms.begin(), thread_ms.end());
  std::sort(all_ms.begin(), all_ms.end());
  ModeResult result;
  result.qps = static_cast<double>(all_ms.size()) / elapsed;
  result.p50_ms = percentile(all_ms, 0.5);
  result.p99_ms = percentile(all_ms, 0.99);
  return result;
}

/// Best of \p rounds runs.  Warm requests finish in well under a
/// microsecond, so a single scheduler hiccup can halve one round's QPS;
/// the best round is each mode's steady-state capability, which is what
/// the warm-vs-kill-switched overhead comparison needs.
ModeResult best_mode(const std::shared_ptr<serve::ReaderPool>& pool, unsigned threads,
                     unsigned per_thread, unsigned rounds, bool& ok) {
  ModeResult best;
  for (unsigned r = 0; r < rounds && ok; ++r) {
    const ModeResult round = run_mode(pool, threads, per_thread, ok);
    if (round.qps > best.qps) best = round;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fraz;
  Cli cli("concurrent serving: warm decoded-chunk cache vs cold decode-per-call");
  cli.add_string("scale", "small", "suite scale: tiny|small|medium");
  cli.add_string("field", "TCf", "hurricane field to pack and serve");
  cli.add_string("compressor", "sz", "backend: sz|zfp|mgard|truncate");
  cli.add_double("target", 8.0, "target aggregate compression ratio");
  cli.add_int("threads", 8, "concurrent client threads");
  cli.add_int("requests", 200, "requests per thread per mode");
  cli.add_string("path", "bench_serve_concurrent.fraza", "scratch archive path");
  cli.add_flag("smoke", "tiny fast run for CI (overrides scale/threads/requests)");
  cli.add_flag("check", "exit nonzero unless warm QPS >= 5x cold QPS and "
                        "telemetry costs < 10% of kill-switched warm QPS");
  if (!cli.parse(argc, argv)) return 0;

  const bool smoke = cli.get_flag("smoke");
  const unsigned threads =
      smoke ? 4u : static_cast<unsigned>(cli.get_int("threads"));
  const unsigned per_thread =
      smoke ? 50u : static_cast<unsigned>(cli.get_int("requests"));

  bench::banner("serve-concurrent",
                "N client threads x random chunk-sized ranges, cold vs warm cache",
                "warm (cache-hit + copy) QPS >= ~5x cold (decode-per-call) QPS");

  // Pack the served archive once.
  const auto ds = data::dataset_by_name(
      "hurricane", bench::parse_scale(smoke ? "tiny" : cli.get_string("scale")));
  const NdArray field =
      data::generate_field(data::field_by_name(ds, cli.get_string("field")), 0);
  archive::ArchiveWriteConfig config;
  config.engine.compressor = cli.get_string("compressor");
  config.engine.tuner.target_ratio = cli.get_double("target");
  config.threads = 4;
  const std::string path = cli.get_string("path");
  archive::ArchiveFileWriter writer(config);
  auto written = writer.write(path, field.view());
  if (!written.ok()) {
    std::fprintf(stderr, "pack failed: %s\n", written.status().to_string().c_str());
    return 1;
  }
  std::printf("archive: %zu chunks, ratio %.2f, %.1f MB raw\n\n",
              written.value().chunk_count, written.value().achieved_ratio,
              static_cast<double>(field.size_bytes()) / 1e6);

  bool ok = true;
  ModeResult cold, warm, warm_off;

  {
    serve::ReaderPoolConfig pool_config;
    pool_config.cache = std::make_shared<serve::ChunkCache>(0);  // cache off
    pool_config.prefetch = false;
    auto pool = serve::ReaderPool::open(path, pool_config);
    if (!pool.ok()) return 1;
    cold = run_mode(pool.value(), threads, per_thread, ok);
  }
  {
    serve::ReaderPoolConfig pool_config;
    auto pool = serve::ReaderPool::open(path, pool_config);
    if (!pool.ok()) return 1;
    // Pre-touch every chunk so the timed section measures steady-state
    // serving, not the one-time fill.
    for (std::size_t i = 0; i < pool.value()->fields()[0].chunk_count; ++i)
      if (!pool.value()->chunk(0, i).ok()) return 1;
    // Warm requests are ~1000x cheaper than cold decodes: scale the request
    // count up so each round runs ~10ms+, interleave telemetry-on and
    // kill-switched rounds (so CPU frequency / cache warm-up drift hits
    // both modes equally), and take the best round per mode — otherwise
    // the comparison below measures scheduler noise instead of the
    // telemetry layer.
    const unsigned warm_per_thread = per_thread * 200;
    best_mode(pool.value(), threads, warm_per_thread, 1, ok);  // untimed warm-up
    for (unsigned round = 0; round < 3 && ok; ++round) {
      const ModeResult on = run_mode(pool.value(), threads, warm_per_thread, ok);
      if (on.qps > warm.qps) warm = on;
      // Same warm pool, kill-switch engaged: the delta is the telemetry
      // layer's whole hot-path cost (counters, spans, clock reads).
      telemetry::set_enabled(false);
      const ModeResult off = run_mode(pool.value(), threads, warm_per_thread, ok);
      telemetry::set_enabled(true);
      if (off.qps > warm_off.qps) warm_off = off;
    }
  }
  std::remove(path.c_str());
  if (!ok) {
    std::fprintf(stderr, "serving request failed\n");
    return 1;
  }

  const double speedup = cold.qps > 0 ? warm.qps / cold.qps : 0;
  const double telemetry_cost_pct =
      warm_off.qps > 0 ? (1.0 - warm.qps / warm_off.qps) * 100.0 : 0;
  std::printf("%-9s %-12s %-12s %-12s\n", "mode", "qps", "p50_ms", "p99_ms");
  std::printf("%-9s %-12.0f %-12.3f %-12.3f\n", "cold", cold.qps, cold.p50_ms,
              cold.p99_ms);
  std::printf("%-9s %-12.0f %-12.3f %-12.3f\n", "warm", warm.qps, warm.p50_ms,
              warm.p99_ms);
  std::printf("%-9s %-12.0f %-12.3f %-12.3f\n", "warm-off", warm_off.qps,
              warm_off.p50_ms, warm_off.p99_ms);
  std::printf("warm/cold speedup: %.1fx; telemetry cost: %.1f%% of warm QPS\n",
              speedup, telemetry_cost_pct);

  JsonWriter jw;
  const auto mode_json = [&jw](const char* name, const ModeResult& mode) {
    jw.key(name)
        .begin_object()
        .field("qps", mode.qps)
        .field("p50_ms", mode.p50_ms)
        .field("p99_ms", mode.p99_ms)
        .end_object();
  };
  jw.begin_object()
      .field("bench", "serve_concurrent")
      .field("threads", threads)
      .field("requests", threads * per_thread);
  mode_json("cold", cold);
  mode_json("warm", warm);
  mode_json("warm_telemetry_off", warm_off);
  jw.field("speedup", speedup)
      .field("telemetry_cost_pct", telemetry_cost_pct)
      .end_object();
  bench::json_line(jw);

  if (cli.get_flag("check") && speedup < 5.0) {
    std::fprintf(stderr, "FAIL: warm/cold speedup %.2f below the 5x floor\n", speedup);
    return 1;
  }
  if (cli.get_flag("check") && warm.qps < 0.9 * warm_off.qps) {
    std::fprintf(stderr,
                 "FAIL: telemetry-enabled warm QPS %.0f below 90%% of the "
                 "kill-switched %.0f\n",
                 warm.qps, warm_off.qps);
    return 1;
  }
  return 0;
}
