/// Reproduction of Fig. 3: the relationship between SZ's error bound and its
/// compression ratio on the Hurricane QCLOUDf.log10 field is NOT monotonic.
///
/// The paper plots a dense sweep plus two zoom windows and attributes the
/// wiggles to (a) prediction from decompressed data and (b) the Huffman →
/// dictionary-coder interaction.  This bench sweeps the analogue field,
/// prints the curve, and counts monotonicity violations — the reproduction
/// succeeds when violations exist (binary search would be unsound).

#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "compressors/sz/sz.hpp"
#include "metrics/error_stats.hpp"

int main(int argc, char** argv) {
  using namespace fraz;
  Cli cli("Fig. 3 reproduction: non-monotonic ratio vs error bound (SZ)");
  cli.add_string("scale", "small", "suite scale: tiny|small|medium");
  cli.add_int("points", 80, "sweep resolution");
  if (!cli.parse(argc, argv)) return 0;

  bench::banner("Fig. 3", "SZ compression ratio vs error bound (QCLOUDf.log10 analogue)",
                "ratio rises overall but with local decreases/spikes -> not monotonic");

  const auto ds = data::dataset_by_name("hurricane", bench::parse_scale(cli.get_string("scale")));
  const NdArray field =
      data::generate_field(data::field_by_name(ds, "QCLOUDf.log10"), 0);
  const int points = static_cast<int>(cli.get_int("points"));

  // The paper sweeps bounds up to ~0.55 on the log field; our analogue has a
  // comparable value range, sweep a matching span.
  const double hi = 0.55;
  const double lo = hi / points;

  std::vector<std::pair<double, double>> curve;
  Table t({"error_bound", "ratio"});
  for (int i = 1; i <= points; ++i) {
    const double bound = lo * i;
    SzOptions opt;
    opt.error_bound = bound;
    const auto compressed = sz_compress(field.view(), opt);
    const double ratio = compression_ratio(field.size_bytes(), compressed.size());
    curve.emplace_back(bound, ratio);
    t.add_row({Table::num(bound, 4), Table::num(ratio, 2)});
  }
  t.print(std::cout);

  int violations = 0;
  double worst_drop = 0;
  for (std::size_t i = 1; i < curve.size(); ++i) {
    if (curve[i].second < curve[i - 1].second) {
      ++violations;
      worst_drop = std::max(worst_drop, curve[i - 1].second - curve[i].second);
    }
  }
  std::printf("\nmonotonicity violations: %d of %zu intervals (largest drop: %.2f)\n",
              violations, curve.size() - 1, worst_drop);
  std::printf("shape check (non-monotonic, as in the paper): %s\n",
              violations > 0 ? "HOLDS" : "VIOLATED");
  return violations > 0 ? 0 : 1;
}
