/// Archive pack throughput vs. worker count — the scaling companion to the
/// Fig. 8 reproduction, measured on the real `fraz::archive` chunk pipeline.
///
/// Substitution (same as bench_fig8, DESIGN.md §2): the paper scales over
/// MPI ranks on Bebop; this machine may have very few cores, so the *task
/// durations are real* — every chunk's compression is executed and timed by
/// the writer itself — and the thread-count curve is produced by
/// list-scheduling those measured chunk tasks at each simulated worker
/// count, exactly the schedule the writer's shared-counter worker loop
/// produces.  The serial residue (the warm-start confirmation probe on
/// chunk 0 plus manifest/footer assembly) is measured per pack and charged
/// to every worker count unchanged.
///
/// Protocol: one untimed warm-up pack (step 0) pays ratio training; the
/// measured steps exercise the campaign steady state — one probe plus N
/// chunk compressions per archive (Algorithm 3's reuse, lifted to whole
/// archives).  Real packs at each worker count additionally assert the
/// determinism contract: byte-identical archives regardless of threads.
///
/// Expected shape: near-linear speedup to the chunk-count limit; >2x at 4
/// workers.  Output ends with one machine-readable JSON line.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <queue>
#include <string>
#include <vector>

#include "archive/archive.hpp"
#include "bench_common.hpp"

namespace {

using namespace fraz;

/// Replay the writer's worker loop: chunks are claimed in index order, each
/// by the earliest-free worker.  Returns the makespan.
double simulate_pack(const std::vector<double>& chunk_seconds, unsigned workers) {
  std::priority_queue<double, std::vector<double>, std::greater<>> free_at;
  for (unsigned w = 0; w < workers; ++w) free_at.push(0.0);
  double makespan = 0;
  for (double task : chunk_seconds) {
    const double start = free_at.top();
    free_at.pop();
    free_at.push(start + task);
    makespan = std::max(makespan, start + task);
  }
  return makespan;
}

archive::ArchiveWriteConfig make_config(const Cli& cli, unsigned threads) {
  archive::ArchiveWriteConfig config;
  config.engine.compressor = cli.get_string("compressor");
  config.engine.tuner.target_ratio = cli.get_double("target");
  config.threads = threads;
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fraz;
  Cli cli("archive scalability: pack throughput vs worker count");
  cli.add_string("scale", "small", "suite scale: tiny|small|medium");
  cli.add_string("field", "TCf", "hurricane field to pack");
  cli.add_string("compressor", "sz", "backend: sz|zfp|mgard|truncate");
  cli.add_double("target", 10.0, "target aggregate compression ratio");
  cli.add_int("steps", 6, "timed packs (after 1 warm-up)");
  cli.add_string("threads", "1,2,4,8", "comma-separated worker counts");
  if (!cli.parse(argc, argv)) return 0;

  bench::banner("archive", "chunked pack throughput vs worker count (Hurricane analogue)",
                "near-linear speedup to the chunk/core limit; >2x at 4 workers; "
                "byte-identical archives at every worker count");

  const auto ds =
      data::dataset_by_name("hurricane", bench::parse_scale(cli.get_string("scale")));
  const auto spec = data::field_by_name(ds, cli.get_string("field"));
  const int steps = static_cast<int>(cli.get_int("steps"));

  std::vector<unsigned> thread_counts;
  {
    const std::string list = cli.get_string("threads");
    std::size_t pos = 0;
    while (pos < list.size()) {
      std::size_t consumed = 0;
      thread_counts.push_back(
          static_cast<unsigned>(std::stoul(list.substr(pos), &consumed)));
      pos += consumed + 1;  // skip the comma
    }
  }

  // Pre-generate the series so data synthesis stays out of the timings.
  const std::vector<NdArray> series = data::generate_series(spec, steps + 1);
  const std::size_t raw_bytes_per_step = series[0].size_bytes();

  // ---- measurement pass: serial pack, real per-chunk task durations ------
  archive::ArchiveWriter writer(make_config(cli, 1));
  Buffer out;
  auto warmup = writer.write(series[0].view(), out);
  if (!warmup.ok()) {
    std::fprintf(stderr, "warm-up pack failed: %s\n", warmup.status().to_string().c_str());
    return 1;
  }
  std::size_t chunk_count = warmup.value().chunk_count;
  std::vector<std::vector<double>> step_chunk_seconds;  // per step, per chunk
  std::vector<double> step_overhead;                    // probe + assembly residue
  double measured_serial = 0;
  for (int step = 1; step <= steps; ++step) {
    auto written = writer.write(series[static_cast<std::size_t>(step)].view(), out);
    if (!written.ok()) {
      std::fprintf(stderr, "pack failed: %s\n", written.status().to_string().c_str());
      return 1;
    }
    const auto& r = written.value();
    std::vector<double> chunk_seconds;
    double chunk_sum = 0;
    for (const auto& chunk : r.chunks) {
      chunk_seconds.push_back(chunk.seconds);
      chunk_sum += chunk.seconds;
    }
    step_chunk_seconds.push_back(std::move(chunk_seconds));
    step_overhead.push_back(std::max(r.seconds - chunk_sum, 0.0));
    measured_serial += r.seconds;
  }
  std::printf("[profile] %zu chunks/step, %d steps, %.3fs serial steady state "
              "(%.1f MB/s)\n\n",
              chunk_count, steps, measured_serial,
              static_cast<double>(raw_bytes_per_step) * steps / measured_serial / 1e6);

  // ---- byte-identity pass: real packs (cold + carried) per worker count --
  bool identical = true;
  std::vector<std::vector<std::uint8_t>> reference;  // per step
  for (unsigned threads : thread_counts) {
    archive::ArchiveWriter check(make_config(cli, threads));
    for (std::size_t step = 0; step < 2; ++step) {
      Buffer bytes;
      auto written = check.write(series[step].view(), bytes);
      if (!written.ok()) {
        std::fprintf(stderr, "pack failed: %s\n", written.status().to_string().c_str());
        return 1;
      }
      if (reference.size() <= step)
        reference.emplace_back(bytes.data(), bytes.data() + bytes.size());
      else if (reference[step].size() != bytes.size() ||
               std::memcmp(reference[step].data(), bytes.data(), bytes.size()) != 0)
        identical = false;
    }
  }

  // ---- schedule the measured tasks at each worker count ------------------
  Table t({"workers", "seconds", "mb_per_s", "speedup"});
  std::vector<double> scheduled;
  for (unsigned workers : thread_counts) {
    double total = 0;
    for (std::size_t s = 0; s < step_chunk_seconds.size(); ++s)
      total += step_overhead[s] + simulate_pack(step_chunk_seconds[s], workers);
    scheduled.push_back(total);
  }
  for (std::size_t i = 0; i < thread_counts.size(); ++i)
    t.add_row({std::to_string(thread_counts[i]), Table::num(scheduled[i], 3),
               Table::num(static_cast<double>(raw_bytes_per_step) * steps /
                              scheduled[i] / 1e6,
                          1),
               Table::num(scheduled.front() / scheduled[i], 2)});
  t.print(std::cout);

  double speedup4 = 0;
  for (std::size_t i = 0; i < thread_counts.size(); ++i)
    if (thread_counts[i] == 4) speedup4 = scheduled.front() / scheduled[i];
  std::printf("\nshape checks: >2x pack throughput at 4 workers: %s; "
              "byte-identical archives across worker counts: %s\n",
              speedup4 > 2.0 ? "HOLDS" : "VIOLATED", identical ? "HOLDS" : "VIOLATED");

  std::string json = "{\"bench\":\"archive_scalability\",\"dataset\":\"hurricane/" +
                     cli.get_string("field") + "\",\"compressor\":\"" +
                     cli.get_string("compressor") +
                     "\",\"raw_bytes_per_step\":" + std::to_string(raw_bytes_per_step) +
                     ",\"steps\":" + std::to_string(steps) +
                     ",\"chunks_per_step\":" + std::to_string(chunk_count) +
                     ",\"measured_serial_seconds\":" + std::to_string(measured_serial) +
                     ",\"results\":[";
  for (std::size_t i = 0; i < thread_counts.size(); ++i) {
    if (i) json += ",";
    json += "{\"workers\":" + std::to_string(thread_counts[i]) +
            ",\"seconds\":" + std::to_string(scheduled[i]) + ",\"mb_per_s\":" +
            std::to_string(static_cast<double>(raw_bytes_per_step) * steps /
                           scheduled[i] / 1e6) +
            ",\"speedup\":" + std::to_string(scheduled.front() / scheduled[i]) + "}";
  }
  json += "],\"speedup_4_workers\":" + std::to_string(speedup4) +
          ",\"identical_bytes\":" + (identical ? "true" : "false") + "}";
  std::printf("%s\n", json.c_str());
  return speedup4 > 2.0 && identical ? 0 : 1;
}
