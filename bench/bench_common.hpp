#ifndef FRAZ_BENCH_BENCH_COMMON_HPP
#define FRAZ_BENCH_BENCH_COMMON_HPP

/// Shared plumbing for the per-figure/table reproduction benches: suite-scale
/// parsing, standard banner, and ratio/fidelity helpers.  Every bench prints
/// a self-describing header, the paper-expected shape, and a machine-parsable
/// table so EXPERIMENTS.md can quote outputs directly.

#include <cstdio>
#include <string>

#include "data/datasets.hpp"
#include "pressio/evaluate.hpp"
#include "pressio/registry.hpp"
#include "util/cli.hpp"
#include "util/json_writer.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace fraz::bench {

/// Standard banner shared by all benches.
inline void banner(const std::string& id, const std::string& title,
                   const std::string& expectation) {
  std::printf("==================================================================\n");
  std::printf("%s — %s\n", id.c_str(), title.c_str());
  std::printf("paper-expected shape: %s\n", expectation.c_str());
  std::printf("==================================================================\n");
}

/// Parse the --scale flag shared by dataset-driven benches.
inline data::SuiteScale parse_scale(const std::string& name) {
  if (name == "tiny") return data::SuiteScale::kTiny;
  if (name == "medium") return data::SuiteScale::kMedium;
  return data::SuiteScale::kSmall;
}

/// Emit a bench's machine-parsable result line: one JSON object built with
/// the shared JsonWriter (escaping and comma placement handled centrally),
/// printed on its own line after a blank separator so log scrapers can grab
/// the last line of output.
inline void json_line(const JsonWriter& writer) {
  std::printf("\n%s\n", writer.str().c_str());
}

/// Compression ratio at a given error bound (one compress call).  The
/// archive lands in a thread-local grow-only scratch, so bound sweeps reach
/// the same zero-allocation steady state as the tuner's inner loop.
inline double ratio_at(const pressio::Compressor& c, const ArrayView& view, double bound) {
  thread_local Buffer scratch;
  auto clone = c.clone();
  clone->set_error_bound(bound);
  return pressio::probe_ratio(*clone, view, scratch).ratio;
}

}  // namespace fraz::bench

#endif  // FRAZ_BENCH_BENCH_COMMON_HPP
