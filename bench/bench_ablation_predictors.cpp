/// Ablation of the SZ pipeline's design choices across the dataset suite:
///  - hybrid prediction: Lorenzo-only vs Lorenzo+regression (the paper's SZ
///    description, §II-A step 1);
///  - entropy stage: the rANS coder vs what plain Huffman+LZ would give
///    (DESIGN.md §2a's substitution) — measured indirectly through MGARD,
///    which shares the pipeline but keeps the Huffman backend.
///
/// Expected shapes: regression never hurts and wins clearly on smooth /
/// plane-like data, especially at large bounds where Lorenzo's
/// reconstruction-noise feedback dominates.

#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "compressors/sz/sz.hpp"
#include "metrics/error_stats.hpp"

int main(int argc, char** argv) {
  using namespace fraz;
  Cli cli("Ablation: SZ hybrid prediction on/off across the suite");
  cli.add_string("scale", "small", "suite scale: tiny|small|medium");
  if (!cli.parse(argc, argv)) return 0;

  bench::banner("Ablation (SZ predictors)", "Lorenzo-only vs hybrid Lorenzo+regression",
                "hybrid within noise of Lorenzo-only everywhere (approximate selector), "
                "with multi-x wins on smooth fields at large bounds");

  const auto scale = bench::parse_scale(cli.get_string("scale"));
  Table t({"dataset", "field", "bound_frac", "lorenzo_only_ratio", "hybrid_ratio", "gain"});
  int wins = 0, comparisons = 0;
  for (const auto& ds : data::sdrbench_suite(scale)) {
    const auto& spec = ds.fields[0];
    const NdArray field = data::generate_field(spec, 0);
    const double range = value_range(field.view());
    for (double frac : {1e-3, 1e-2, 1e-1}) {
      SzOptions lorenzo;
      lorenzo.error_bound = range * frac;
      lorenzo.regression = false;
      SzOptions hybrid = lorenzo;
      hybrid.regression = true;
      const double size_l =
          static_cast<double>(sz_compress(field.view(), lorenzo).size());
      const double size_h =
          static_cast<double>(sz_compress(field.view(), hybrid).size());
      const double ratio_l = static_cast<double>(field.size_bytes()) / size_l;
      const double ratio_h = static_cast<double>(field.size_bytes()) / size_h;
      t.add_row({ds.name, spec.name, Table::num(frac, 3), Table::num(ratio_l, 2),
                 Table::num(ratio_h, 2), Table::num(ratio_h / ratio_l, 2)});
      ++comparisons;
      wins += ratio_h >= ratio_l * 0.90;  // heuristic selector: 10% slack
    }
  }
  t.print(std::cout);
  std::printf("\nhybrid >= lorenzo-only (within 10%%): %d/%d\n", wins, comparisons);
  std::printf("shape check (hybrid prediction never hurts): %s\n",
              wins == comparisons ? "HOLDS" : "VIOLATED");
  return 0;
}
