/// Micro-benchmarks (google-benchmark) for the codec substrate: Huffman,
/// LZ77 dictionary coder, CRC-32, and the bit stream.  These are the
/// building blocks whose throughput bounds SZ/MGARD compression bandwidth.

#include <benchmark/benchmark.h>

#include <vector>

#include "codec/bitstream.hpp"
#include "codec/checksum.hpp"
#include "codec/huffman.hpp"
#include "codec/lz.hpp"
#include "codec/rans.hpp"
#include "util/rng.hpp"

namespace {

using namespace fraz;

std::vector<std::uint32_t> quantization_codes(std::size_t n) {
  // SZ-like code stream: sharply peaked around the radius.
  Rng rng(1);
  std::vector<std::uint32_t> codes(n);
  for (auto& c : codes) {
    const double g = rng.normal() * 3.0;
    c = static_cast<std::uint32_t>(32768 + static_cast<std::int64_t>(g));
  }
  return codes;
}

std::vector<std::uint8_t> huffman_bytes(std::size_t n) {
  return huffman_encode(quantization_codes(n));
}

void BM_HuffmanEncode(benchmark::State& state) {
  const auto codes = quantization_codes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) benchmark::DoNotOptimize(huffman_encode(codes));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0) * 4);
}
BENCHMARK(BM_HuffmanEncode)->Arg(1 << 14)->Arg(1 << 18);

void BM_HuffmanDecode(benchmark::State& state) {
  const auto encoded = huffman_bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) benchmark::DoNotOptimize(huffman_decode(encoded));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0) * 4);
}
BENCHMARK(BM_HuffmanDecode)->Arg(1 << 14)->Arg(1 << 18);

void BM_LzCompress(benchmark::State& state) {
  // Huffman output is the realistic input of the dictionary stage.
  const auto data = huffman_bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) benchmark::DoNotOptimize(lz_compress(data));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.size()));
}
BENCHMARK(BM_LzCompress)->Arg(1 << 14)->Arg(1 << 18);

void BM_LzDecompress(benchmark::State& state) {
  const auto compressed = lz_compress(huffman_bytes(static_cast<std::size_t>(state.range(0))));
  for (auto _ : state) benchmark::DoNotOptimize(lz_decompress(compressed));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(compressed.size()));
}
BENCHMARK(BM_LzDecompress)->Arg(1 << 14)->Arg(1 << 18);

void BM_RansEncode(benchmark::State& state) {
  const auto codes = quantization_codes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) benchmark::DoNotOptimize(rans_encode(codes));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0) * 4);
}
BENCHMARK(BM_RansEncode)->Arg(1 << 14)->Arg(1 << 18);

void BM_RansDecode(benchmark::State& state) {
  const auto encoded = rans_encode(quantization_codes(static_cast<std::size_t>(state.range(0))));
  for (auto _ : state) benchmark::DoNotOptimize(rans_decode(encoded));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0) * 4);
}
BENCHMARK(BM_RansDecode)->Arg(1 << 14)->Arg(1 << 18);

void BM_Crc32(benchmark::State& state) {
  Rng rng(2);
  std::vector<std::uint8_t> data(static_cast<std::size_t>(state.range(0)));
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.below(256));
  for (auto _ : state) benchmark::DoNotOptimize(crc32(data));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Crc32)->Arg(1 << 20);

void BM_BitStreamRoundtrip(benchmark::State& state) {
  Rng rng(3);
  std::vector<std::pair<std::uint64_t, unsigned>> writes;
  for (int i = 0; i < 4096; ++i) {
    const unsigned width = 1 + static_cast<unsigned>(rng.below(31));
    writes.emplace_back(rng.next() & ((1ull << width) - 1), width);
  }
  for (auto _ : state) {
    BitWriter w;
    for (const auto& [value, width] : writes) w.write_bits(value, width);
    const auto bytes = w.take();
    BitReader r(bytes);
    std::uint64_t sink = 0;
    for (const auto& [value, width] : writes) sink ^= r.read_bits(width);
    benchmark::DoNotOptimize(sink);
  }
}
BENCHMARK(BM_BitStreamRoundtrip);

}  // namespace

BENCHMARK_MAIN();
