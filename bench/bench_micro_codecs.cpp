/// Micro-benchmarks and CI regression gates for the codec substrate:
/// Huffman, rANS, the LZ77 dictionary coder, CRC-32, and the bit stream —
/// the building blocks whose throughput bounds SZ/MGARD bandwidth.
///
/// The decode-side gates pin the flattened fast paths against their
/// reference implementations on the same SZ-like quantization-code stream:
/// outputs are asserted bit-identical before timing, then `--check`
/// enforces huffman_decode >= 1.5x huffman_decode_ref, rans_decode >=
/// 1.05x rans_decode_ref, and rans_interleaved_decode >= 1.5x its
/// reference.  The single-state rANS floor is low by design: its decode
/// loop is a serial state chain (slot -> table load -> state update, each
/// iteration depending on the last), so the fast path can only hoist table
/// fills and renormalization bounds checks and short-circuit the dominant
/// symbol's slot range — measured ~1.1x, a real but bounded win.  The
/// 8-way interleaved coder breaks exactly that chain (eight independent
/// states per round, SIMD renorm), which is why its gate sits at the
/// Huffman tier (~1.5x+) instead.
///
/// Output ends with one JSON line; `--smoke` shrinks sizes for CI.

#include <cstdio>
#include <cstring>
#include <vector>

#include "bench_common.hpp"
#include "codec/bitstream.hpp"
#include "codec/checksum.hpp"
#include "codec/huffman.hpp"
#include "codec/lz.hpp"
#include "codec/rans.hpp"
#include "codec/rans_interleaved.hpp"
#include "util/rng.hpp"

namespace {

using namespace fraz;

inline void keep(const void* p) { asm volatile("" : : "g"(p) : "memory"); }

template <typename Fn>
double best_seconds(unsigned reps, Fn&& fn) {
  fn();
  double best = 1e300;
  for (unsigned r = 0; r < reps; ++r) {
    Timer t;
    fn();
    best = std::min(best, t.seconds());
  }
  return best;
}

/// SZ-like code stream: sharply peaked around the radius, the distribution
/// both entropy stages were built for.
std::vector<std::uint32_t> quantization_codes(std::size_t n) {
  Rng rng(1);
  std::vector<std::uint32_t> codes(n);
  for (auto& c : codes) {
    const double g = rng.normal() * 3.0;
    c = static_cast<std::uint32_t>(32768 + static_cast<std::int64_t>(g));
  }
  return codes;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fraz;
  Cli cli("entropy/dictionary codec micro-benchmarks");
  cli.add_int("symbols", 1 << 18, "quantization codes per stream");
  cli.add_int("reps", 9, "timed repetitions (best counts)");
  cli.add_flag("smoke", "tiny fast run for CI (overrides symbols/reps)");
  cli.add_flag("check", "exit nonzero unless huffman_decode >= 1.5x its reference, "
                        "rans_decode >= 1.05x its reference, and "
                        "rans_interleaved_decode >= 1.5x its reference");
  if (!cli.parse(argc, argv)) return 0;

  const bool smoke = cli.get_flag("smoke");
  const auto n = static_cast<std::size_t>(smoke ? (1 << 15) : cli.get_int("symbols"));
  const auto reps = static_cast<unsigned>(smoke ? 7 : cli.get_int("reps"));

  bench::banner("micro-codecs",
                "Huffman/rANS encode+decode, LZ, CRC-32, bit stream",
                "table-driven Huffman decode and the flattened rANS loop beat "
                "their bit-identical reference decoders");

  const std::vector<std::uint32_t> codes = quantization_codes(n);
  const double mb = static_cast<double>(n * 4) / 1e6;

  const auto huff = huffman_encode(codes);
  const auto rans = rans_encode(codes);
  const auto irans = rans_interleaved_encode(codes);

  // Bit-identity first: a decode gate on diverging outputs gates nothing.
  if (huffman_decode(huff) != huffman_decode_ref(huff.data(), huff.size()) ||
      huffman_decode(huff) != codes) {
    std::fprintf(stderr, "FAIL: huffman fast/ref decode mismatch\n");
    return 1;
  }
  if (rans_decode(rans) != rans_decode_ref(rans.data(), rans.size()) ||
      rans_decode(rans) != codes) {
    std::fprintf(stderr, "FAIL: rans fast/ref decode mismatch\n");
    return 1;
  }
  if (rans_interleaved_decode(irans) !=
          rans_interleaved_decode_ref(irans.data(), irans.size()) ||
      rans_interleaved_decode(irans) != codes) {
    std::fprintf(stderr, "FAIL: interleaved rans fast/ref decode mismatch\n");
    return 1;
  }

  struct Row {
    const char* name;
    double mbps;
  };
  std::vector<Row> rows;
  const auto time_mbps = [&](const char* name, double bytes_mb, auto&& fn) {
    const double mbps = bytes_mb / best_seconds(reps, fn);
    rows.push_back({name, mbps});
    return mbps;
  };

  time_mbps("huffman_encode", mb, [&] {
    auto b = huffman_encode(codes);
    keep(b.data());
  });
  const double huff_fast = time_mbps("huffman_decode", mb, [&] {
    auto s = huffman_decode(huff);
    keep(s.data());
  });
  const double huff_ref = time_mbps("huffman_decode_ref", mb, [&] {
    auto s = huffman_decode_ref(huff.data(), huff.size());
    keep(s.data());
  });
  time_mbps("rans_encode", mb, [&] {
    auto b = rans_encode(codes);
    keep(b.data());
  });
  const double rans_fast = time_mbps("rans_decode", mb, [&] {
    auto s = rans_decode(rans);
    keep(s.data());
  });
  const double rans_ref = time_mbps("rans_decode_ref", mb, [&] {
    auto s = rans_decode_ref(rans.data(), rans.size());
    keep(s.data());
  });
  time_mbps("rans_interleaved_encode", mb, [&] {
    auto b = rans_interleaved_encode(codes);
    keep(b.data());
  });
  const double irans_fast = time_mbps("rans_interleaved_decode", mb, [&] {
    auto s = rans_interleaved_decode(irans);
    keep(s.data());
  });
  const double irans_ref = time_mbps("rans_interleaved_decode_ref", mb, [&] {
    auto s = rans_interleaved_decode_ref(irans.data(), irans.size());
    keep(s.data());
  });

  // LZ consumes the entropy stage's output — the realistic dictionary input.
  const double huff_mb = static_cast<double>(huff.size()) / 1e6;
  const auto lz = lz_compress(huff);
  time_mbps("lz_compress", huff_mb, [&] {
    auto b = lz_compress(huff);
    keep(b.data());
  });
  time_mbps("lz_decompress", huff_mb, [&] {
    auto b = lz_decompress(lz);
    keep(b.data());
  });

  {
    Rng rng(2);
    std::vector<std::uint8_t> blob(1u << 20);
    for (auto& b : blob) b = static_cast<std::uint8_t>(rng.below(256));
    time_mbps("crc32", static_cast<double>(blob.size()) / 1e6, [&] {
      auto c = crc32(blob);
      keep(&c);
    });
  }
  {
    Rng rng(3);
    std::vector<std::pair<std::uint64_t, unsigned>> writes;
    std::size_t bits = 0;
    for (int i = 0; i < 4096; ++i) {
      const unsigned width = 1 + static_cast<unsigned>(rng.below(31));
      writes.emplace_back(rng.next() & ((1ull << width) - 1), width);
      bits += width;
    }
    time_mbps("bitstream_roundtrip", static_cast<double>(bits / 8) / 1e6, [&] {
      BitWriter w;
      for (const auto& [value, width] : writes) w.write_bits(value, width);
      const auto bytes = w.take();
      BitReader r(bytes);
      std::uint64_t sink = 0;
      for (const auto& [value, width] : writes) sink ^= r.read_bits(width);
      keep(&sink);
    });
  }

  std::printf("%-20s %10s\n", "codec", "MB/s");
  for (const Row& r : rows) std::printf("%-20s %10.0f\n", r.name, r.mbps);
  const double huff_speedup = huff_ref > 0 ? huff_fast / huff_ref : 0;
  const double rans_speedup = rans_ref > 0 ? rans_fast / rans_ref : 0;
  const double irans_speedup = irans_ref > 0 ? irans_fast / irans_ref : 0;
  std::printf("huffman fast/ref: %.2fx; rans fast/ref: %.2fx; "
              "rans_interleaved fast/ref: %.2fx\n",
              huff_speedup, rans_speedup, irans_speedup);

  JsonWriter jw;
  jw.begin_object()
      .field("bench", "micro_codecs")
      .field("symbols", n);
  jw.key("codecs").begin_object();
  for (const Row& r : rows) jw.field(r.name, r.mbps);
  jw.end_object();
  jw.field("huffman_decode_speedup", huff_speedup)
      .field("rans_decode_speedup", rans_speedup)
      .field("rans_interleaved_decode_speedup", irans_speedup)
      .end_object();
  bench::json_line(jw);

  if (cli.get_flag("check")) {
    bool pass = true;
    if (huff_speedup < 1.5) {
      std::fprintf(stderr, "FAIL: huffman decode speedup %.2f below the 1.5x floor\n",
                   huff_speedup);
      pass = false;
    }
    if (rans_speedup < 1.05) {
      std::fprintf(stderr, "FAIL: rans decode speedup %.2f below the 1.05x floor\n",
                   rans_speedup);
      pass = false;
    }
    if (irans_speedup < 1.5) {
      std::fprintf(stderr,
                   "FAIL: interleaved rans decode speedup %.2f below the 1.5x floor\n",
                   irans_speedup);
      pass = false;
    }
    if (!pass) return 1;
  }
  return 0;
}
