/// Reproduction of Fig. 4: the autotuning objective.
///
/// Left panel: a typical error-bound -> compression-ratio landscape (a step
/// function with slight slope per tread — ZFP's accuracy mode produces
/// exactly this, because of the floor(log2 tolerance) quantization).
/// Right panel: FRaZ's transformed loss l(e) = min((rho_r(e) - rho_t)^2, gamma)
/// with the acceptance region; the bench prints both curves and reports
/// whether the requested target is feasible (blue points inside the band).

#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "compressors/zfp/zfp.hpp"
#include "core/loss.hpp"
#include "metrics/error_stats.hpp"

int main(int argc, char** argv) {
  using namespace fraz;
  Cli cli("Fig. 4 reproduction: ratio landscape and clamped-square loss");
  cli.add_string("scale", "small", "suite scale: tiny|small|medium");
  cli.add_double("target", 15.0, "target compression ratio (paper's example: 15 -> infeasible)");
  cli.add_double("epsilon", 0.1, "acceptance band");
  if (!cli.parse(argc, argv)) return 0;

  bench::banner("Fig. 4", "error-bound landscape and FRaZ loss function (ZFP accuracy mode)",
                "staircase ratio curve; loss is clamped parabola-of-steps; a target on "
                "a gap between treads is infeasible and FRaZ reports the closest step");

  const auto ds = data::dataset_by_name("hurricane", bench::parse_scale(cli.get_string("scale")));
  const NdArray field = data::generate_field(data::field_by_name(ds, "TCf"), 0);
  const double target = cli.get_double("target");
  const double epsilon = cli.get_double("epsilon");
  const double range = value_range(field.view());

  Table t({"error_bound", "ratio", "loss", "in_acceptance_band"});
  double closest_ratio = 0, closest_dist = 1e300;
  bool feasible = false;
  for (int i = 1; i <= 64; ++i) {
    const double bound = range * i / 64.0;
    ZfpOptions opt;
    opt.tolerance = bound;
    const auto compressed = zfp_compress(field.view(), opt);
    const double ratio = compression_ratio(field.size_bytes(), compressed.size());
    const double loss = ratio_loss(ratio, target);
    const bool in_band = ratio_acceptable(ratio, target, epsilon);
    feasible = feasible || in_band;
    if (std::abs(ratio - target) < closest_dist) {
      closest_dist = std::abs(ratio - target);
      closest_ratio = ratio;
    }
    t.add_row({Table::num(bound, 4), Table::num(ratio, 2), Table::num(loss, 2),
               in_band ? "yes" : "no"});
  }
  t.print(std::cout);

  // Count distinct ratio treads: the staircase signature.
  std::printf("\ntarget %.1f with epsilon %.2f: %s (closest observed ratio: %.2f)\n", target,
              epsilon, feasible ? "FEASIBLE" : "INFEASIBLE — FRaZ would report closest",
              closest_ratio);
  std::printf("loss clamp gamma = %.3e (80%% of max double, as in the paper)\n", kLossClamp);
  return 0;
}
