/// Reproduction of Table II (hardware & software versions): prints the
/// environment this reproduction runs on, alongside the paper's original
/// environment, so EXPERIMENTS.md can document both sides.

#include <cstdio>
#include <iostream>
#include <thread>

#include "bench_common.hpp"

int main() {
  fraz::bench::banner("Table II", "hardware and software environment",
                      "documentation table (no measured shape)");

  fraz::Table t({"component", "paper (Bebop)", "this reproduction"});
  t.add_row({"CPU", "36-core Intel Xeon E5-2695v4",
             std::to_string(std::thread::hardware_concurrency()) + " hardware threads"});
  t.add_row({"MEM", "128GB DDR4", "(host dependent)"});
  t.add_row({"parallel runtime", "OpenMPI 2.1.1 (MPI ranks)", "std::thread pool (see DESIGN.md)"});
  t.add_row({"SZ", "2.1.7 (C)", "fraz::sz from-scratch reproduction"});
  t.add_row({"ZFP", "0.5.5 (C)", "fraz::zfp from-scratch reproduction"});
  t.add_row({"MGARD", "0.0.0.2 (C++)", "fraz::mgard from-scratch reproduction"});
  t.add_row({"optimizer", "Dlib 2.28 find_global_min", "fraz::opt::find_min_global"});
  t.add_row({"middleware", "libpressio", "fraz::pressio"});
  t.add_row({"language standard", "C/C++/Python mix", "C++20"});
  t.print(std::cout);
  return 0;
}
