/// Ablation for the paper's §V-C design choices:
///  - K (regions per dataset): "preliminary experiments found that 12 tasks
///    ... offered an ideal tradeoff between efficiency and runtime" — more
///    regions than that add compressor calls without better results;
///  - alpha (overlap): overlapping regions avoid the pathological case of a
///    target error bound sitting exactly on a region border.
///
/// The bench sweeps K and alpha on a live tuning problem and reports wall
/// time, total compressor calls, and success.

#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "core/tuner.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace fraz;
  Cli cli("Ablation: region count K and overlap alpha");
  cli.add_string("scale", "small", "suite scale: tiny|small|medium");
  cli.add_double("target", 10.0, "target compression ratio");
  if (!cli.parse(argc, argv)) return 0;

  bench::banner("Ablation (§V-C)", "error-bound region decomposition (K, alpha)",
                "success across all K; diminishing returns in calls/time beyond ~12 "
                "regions; overlap keeps border targets cheap");

  const auto ds = data::dataset_by_name("hurricane", bench::parse_scale(cli.get_string("scale")));
  const NdArray field = data::generate_field(data::field_by_name(ds, "TCf"), 0);
  const double target = cli.get_double("target");
  auto compressor = pressio::registry().create("sz");

  std::printf("\n[K sweep] alpha = 0.1 (paper default)\n");
  Table tk({"regions_K", "feasible", "compress_calls", "wall_s", "achieved_ratio"});
  for (int k : {1, 2, 4, 8, 12, 16, 24}) {
    TunerConfig cfg;
    cfg.target_ratio = target;
    cfg.epsilon = 0.1;
    cfg.regions = k;
    cfg.max_evals_per_region = 16;
    cfg.threads = 2;
    const Tuner tuner(*compressor, cfg);
    Timer timer;
    const TuneResult r = tuner.tune(field.view());
    tk.add_row({std::to_string(k), r.feasible ? "yes" : "no",
                std::to_string(r.compress_calls), Table::num(timer.seconds(), 3),
                Table::num(r.achieved_ratio, 2)});
  }
  tk.print(std::cout);

  std::printf("\n[alpha sweep] K = 12 (paper default)\n");
  Table ta({"alpha", "feasible", "compress_calls", "wall_s"});
  for (double alpha : {0.0, 0.05, 0.1, 0.2, 0.4}) {
    TunerConfig cfg;
    cfg.target_ratio = target;
    cfg.epsilon = 0.1;
    cfg.regions = 12;
    cfg.overlap = alpha;
    cfg.max_evals_per_region = 16;
    cfg.threads = 2;
    const Tuner tuner(*compressor, cfg);
    Timer timer;
    const TuneResult r = tuner.tune(field.view());
    ta.add_row({Table::num(alpha, 2), r.feasible ? "yes" : "no",
                std::to_string(r.compress_calls), Table::num(timer.seconds(), 3)});
  }
  ta.print(std::cout);
  std::printf("\nnote: with early termination, the winning region dominates runtime;\n"
              "extra regions beyond ~12 only add cancelled work (paper's tradeoff).\n");
  return 0;
}
