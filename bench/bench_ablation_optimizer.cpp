/// Ablation for the paper's §V-B.1 claim: FRaZ's cutoff-modified global
/// search converges in far fewer compressor invocations than the baseline
/// the paper describes — a search that "climbs from the minimum possible
/// error bound to the user-specified upper limit" ("our method requires only
/// 6 iterations ... binary search needs 39").
///
/// Three searchers run on the same live objective (SZ / ZFP on Hurricane
/// fields):
///  - FRaZ: find_min_global with the early-termination cutoff;
///  - climbing: the paper's described baseline (geometric climb from lo);
///  - bisection: classic midpoint splitting, shown for completeness — it is
///    efficient on monotone stretches but unsound under the non-monotonic
///    curves of Fig. 3.

#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "core/loss.hpp"
#include "opt/global_search.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace fraz;
  Cli cli("Ablation: cutoff-modified global search vs climbing/bisection baselines");
  cli.add_string("scale", "small", "suite scale: tiny|small|medium");
  if (!cli.parse(argc, argv)) return 0;

  bench::banner("Ablation (§V-B.1)", "global search vs the paper's climbing baseline",
                "FRaZ converges in few calls on feasible targets; the climbing "
                "baseline needs several times more (paper: 6 vs 39)");

  const auto scale = bench::parse_scale(cli.get_string("scale"));
  const auto ds = data::dataset_by_name("hurricane", scale);
  const double epsilon = 0.1;

  Table t({"field", "backend", "target", "fraz_calls", "fraz_hit", "climb_calls", "climb_hit",
           "bisect_calls", "bisect_hit"});
  long fraz_total = 0, climb_total = 0;
  int cases = 0;

  struct Workload {
    const char* field;
    const char* backend;
    std::vector<double> targets;
  };
  const std::vector<Workload> workloads = {
      {"CLOUDf", "sz", {5, 8, 12, 20}},
      {"QCLOUDf.log10", "sz", {70, 90, 110}},  // the Fig. 3 non-monotonic field
      {"TCf", "zfp", {5, 10, 20}},
  };

  for (const auto& w : workloads) {
    const NdArray field = data::generate_field(data::field_by_name(ds, w.field), 0);
    const ArrayView view = field.view();
    const double hi = value_range(view);
    auto compressor = pressio::registry().create(w.backend);
    auto ratio_fn = [&](double bound) {
      return bench::ratio_at(*compressor, view, std::max(bound, hi * 1e-12));
    };

    for (double target : w.targets) {
      opt::SearchOptions so;
      so.max_calls = 80;
      so.cutoff = loss_cutoff(target, epsilon);
      const auto global = opt::find_min_global(
          [&](double bound) { return ratio_loss(ratio_fn(bound), target); }, hi * 1e-9, hi,
          so);
      const auto climb = opt::climbing_search(ratio_fn, hi * 1e-9, hi, target, epsilon, 80);
      const auto bisect = opt::binary_search_monotone(ratio_fn, hi * 1e-9, hi, target,
                                                      epsilon, 80);
      t.add_row({w.field, w.backend, Table::num(target, 0), std::to_string(global.calls),
                 global.hit_cutoff ? "yes" : "no", std::to_string(climb.calls),
                 climb.hit_cutoff ? "yes" : "no", std::to_string(bisect.calls),
                 bisect.hit_cutoff ? "yes" : "no"});
      if (global.hit_cutoff && climb.hit_cutoff) {
        fraz_total += global.calls;
        climb_total += climb.calls;
        ++cases;
      }
    }
  }
  t.print(std::cout);

  if (cases > 0) {
    const double fraz_avg = static_cast<double>(fraz_total) / cases;
    const double climb_avg = static_cast<double>(climb_total) / cases;
    std::printf("\naverage calls on mutually-feasible targets: FRaZ %.1f vs climbing %.1f\n",
                fraz_avg, climb_avg);
    std::printf("shape check (FRaZ needs fewer calls than the paper's baseline): %s\n",
                fraz_avg < climb_avg ? "HOLDS" : "VIOLATED");
  }
  std::printf("note: bisection is shown for completeness; it assumes monotonicity,\n"
              "which Fig. 3 shows these curves do not provide in general.\n");
  return 0;
}
