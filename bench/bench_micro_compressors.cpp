/// Micro-benchmarks (google-benchmark) for the three compressor backends:
/// compression / decompression bandwidth on a Hurricane-analogue field.
/// The paper's §VI-B.3 observation — ZFP compresses faster per call than SZ
/// — should be visible here.

#include <benchmark/benchmark.h>

#include "compressors/mgard/mgard.hpp"
#include "compressors/sz/sz.hpp"
#include "compressors/zfp/zfp.hpp"
#include "data/datasets.hpp"

namespace {

using namespace fraz;

const NdArray& field() {
  static const NdArray f = [] {
    const auto ds = data::dataset_by_name("hurricane", data::SuiteScale::kSmall);
    return data::generate_field(data::field_by_name(ds, "TCf"), 0);
  }();
  return f;
}

double bound_for(double fraction) { return value_range(field().view()) * fraction; }

void BM_SzCompress(benchmark::State& state) {
  SzOptions opt;
  opt.error_bound = bound_for(1e-3);
  for (auto _ : state) benchmark::DoNotOptimize(sz_compress(field().view(), opt));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(field().size_bytes()));
}
BENCHMARK(BM_SzCompress);

void BM_SzDecompress(benchmark::State& state) {
  SzOptions opt;
  opt.error_bound = bound_for(1e-3);
  const auto compressed = sz_compress(field().view(), opt);
  for (auto _ : state) benchmark::DoNotOptimize(sz_decompress(compressed));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(field().size_bytes()));
}
BENCHMARK(BM_SzDecompress);

void BM_ZfpAccuracyCompress(benchmark::State& state) {
  ZfpOptions opt;
  opt.tolerance = bound_for(1e-3);
  for (auto _ : state) benchmark::DoNotOptimize(zfp_compress(field().view(), opt));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(field().size_bytes()));
}
BENCHMARK(BM_ZfpAccuracyCompress);

void BM_ZfpAccuracyDecompress(benchmark::State& state) {
  ZfpOptions opt;
  opt.tolerance = bound_for(1e-3);
  const auto compressed = zfp_compress(field().view(), opt);
  for (auto _ : state) benchmark::DoNotOptimize(zfp_decompress(compressed));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(field().size_bytes()));
}
BENCHMARK(BM_ZfpAccuracyDecompress);

void BM_ZfpFixedRateCompress(benchmark::State& state) {
  ZfpOptions opt;
  opt.mode = ZfpMode::kFixedRate;
  opt.rate = 4.0;
  for (auto _ : state) benchmark::DoNotOptimize(zfp_compress(field().view(), opt));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(field().size_bytes()));
}
BENCHMARK(BM_ZfpFixedRateCompress);

void BM_MgardCompress(benchmark::State& state) {
  MgardOptions opt;
  opt.tolerance = bound_for(1e-3);
  for (auto _ : state) benchmark::DoNotOptimize(mgard_compress(field().view(), opt));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(field().size_bytes()));
}
BENCHMARK(BM_MgardCompress);

void BM_MgardDecompress(benchmark::State& state) {
  MgardOptions opt;
  opt.tolerance = bound_for(1e-3);
  const auto compressed = mgard_compress(field().view(), opt);
  for (auto _ : state) benchmark::DoNotOptimize(mgard_decompress(compressed));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(field().size_bytes()));
}
BENCHMARK(BM_MgardDecompress);

}  // namespace

BENCHMARK_MAIN();
