/// Micro-benchmarks and CI regression gates for the compressor backends and
/// their vectorized hot kernels.
///
/// Section 1 — backend bandwidth: compress / decompress MB/s for every
/// registered backend on one smooth synthetic field (the shape the paper's
/// Hurricane fields take locally).  The tentpole claim gated here: an szx
/// probe costs an order of magnitude less than an sz probe, so the `--check`
/// floor is szx compress bandwidth >= 5x sz compress bandwidth (§VI-B.3's
/// "ZFP compresses faster than SZ" observation stays visible alongside).
///
/// Section 2 — blocked sz vs serial sz: the PR-10 tentpole gate.  The
/// blocked v2 pipeline (block-local prediction, fused quantize+entropy,
/// 8-way interleaved rANS) against the serial v1 chain on an L2-spilling 3D
/// working set — the regime where the serial Lorenzo feedback and the
/// single-state rANS chain dominate.  Output byte-identity across thread
/// counts is asserted before timing (the gate must never reward a pipeline
/// that trades determinism for speed), then `--check` enforces blocked
/// compress >= 2.5x serial and blocked decompress >= 2x serial at 8
/// threads.
///
/// Section 3 — kernel speedups: each SIMD kernel against its scalar
/// reference on identical inputs, with the bit-identity contract asserted
/// before timing (a bench that gates speed on diverging outputs would gate
/// nothing).  `--check` enforces >= 1.5x per kernel, only when the vector
/// path is actually active on this host; scalar-only builds skip the gates
/// rather than fail them.
///
/// Output ends with one JSON line; `--smoke` shrinks sizes for CI.

#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "compressors/fpc/fpc.hpp"
#include "compressors/mgard/mgard.hpp"
#include "compressors/sz/sz.hpp"
#include "compressors/sz/sz_kernels.hpp"
#include "compressors/szx/szx.hpp"
#include "compressors/szx/szx_kernels.hpp"
#include "compressors/truncate/truncate.hpp"
#include "compressors/zfp/transform.hpp"
#include "compressors/zfp/transform_kernels.hpp"
#include "compressors/zfp/zfp.hpp"
#include "util/rng.hpp"

namespace {

using namespace fraz;

/// Keep a result alive without google-benchmark's DoNotOptimize.
inline void keep(const void* p) { asm volatile("" : : "g"(p) : "memory"); }

/// Best-of-reps wall time of \p fn, with one untimed warm-up call.
template <typename Fn>
double best_seconds(unsigned reps, Fn&& fn) {
  fn();
  double best = 1e300;
  for (unsigned r = 0; r < reps; ++r) {
    Timer t;
    fn();
    best = std::min(best, t.seconds());
  }
  return best;
}

/// The smooth synthetic field: a product of sinusoids, the locally-linear
/// shape SZ's Lorenzo/regression predictors and szx's constant blocks both
/// thrive on — the regime where probe cost differences matter most.
NdArray smooth_field(std::size_t rows, std::size_t cols) {
  NdArray f(DType::kFloat32, {rows, cols});
  auto* p = static_cast<float*>(f.data());
  for (std::size_t i = 0; i < rows; ++i)
    for (std::size_t j = 0; j < cols; ++j)
      p[i * cols + j] = static_cast<float>(
          40.0 * std::sin(0.02 * static_cast<double>(i)) *
          std::cos(0.03 * static_cast<double>(j)));
  return f;
}

struct BackendResult {
  double compress_mbps = 0;
  double decompress_mbps = 0;
  double ratio = 0;
};

/// One backend's bandwidth via its direct API (no engine/tuner overhead —
/// this is the per-probe cost the tuner multiplies).
template <typename CompressFn, typename DecompressFn>
BackendResult run_backend(const NdArray& field, unsigned reps, CompressFn&& compress,
                          DecompressFn&& decompress) {
  const auto mb = static_cast<double>(field.size_bytes()) / 1e6;
  std::vector<std::uint8_t> sealed = compress(field.view());
  BackendResult result;
  result.ratio = static_cast<double>(field.size_bytes()) / static_cast<double>(sealed.size());
  result.compress_mbps = mb / best_seconds(reps, [&] {
    auto bytes = compress(field.view());
    keep(bytes.data());
  });
  result.decompress_mbps = mb / best_seconds(reps, [&] {
    NdArray out = decompress(sealed);
    keep(out.data());
  });
  return result;
}

struct KernelResult {
  double scalar_mbps = 0;
  double vector_mbps = 0;
  double speedup = 0;
  bool active = false;  ///< vector path dispatchable on this host
};

void print_kernel(const char* name, const KernelResult& k) {
  std::printf("%-22s %10.0f %10.0f %8.2fx %s\n", name, k.scalar_mbps, k.vector_mbps,
              k.speedup, k.active ? "" : "(vector path inactive)");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fraz;
  Cli cli("compressor backends + SIMD kernel micro-benchmarks");
  cli.add_int("rows", 512, "field rows");
  cli.add_int("cols", 512, "field columns");
  cli.add_int("reps", 9, "timed repetitions (best counts)");
  cli.add_flag("smoke", "tiny fast run for CI (overrides rows/cols/reps)");
  cli.add_flag("check", "exit nonzero unless szx compresses >= 5x faster than sz, "
                        "blocked sz clears 2.5x/2x serial sz compress/decompress, "
                        "and every active SIMD kernel clears 1.5x its scalar ref");
  if (!cli.parse(argc, argv)) return 0;

  const bool smoke = cli.get_flag("smoke");
  const auto rows = static_cast<std::size_t>(smoke ? 192 : cli.get_int("rows"));
  const auto cols = static_cast<std::size_t>(smoke ? 192 : cli.get_int("cols"));
  const auto reps = static_cast<unsigned>(smoke ? 5 : cli.get_int("reps"));

  bench::banner("micro-compressors",
                "backend compress/decompress bandwidth + SIMD kernel speedups",
                "szx probes ~an order of magnitude cheaper than sz; vector kernels "
                "beat their scalar references");

  const NdArray field = smooth_field(rows, cols);
  const double bound = value_range(field.view()) * 1e-3;

  // ------------------------------------------------------------- backends
  struct Entry {
    const char* name;
    BackendResult r;
  };
  std::vector<Entry> backends;
  {
    SzOptions opt;
    opt.error_bound = bound;
    backends.push_back({"sz", run_backend(field, reps,
        [&](const ArrayView& v) { return sz_compress(v, opt); },
        [](const std::vector<std::uint8_t>& b) { return sz_decompress(b); })});
  }
  {
    SzxOptions opt;
    opt.error_bound = bound;
    backends.push_back({"szx", run_backend(field, reps,
        [&](const ArrayView& v) { return szx_compress(v, opt); },
        [](const std::vector<std::uint8_t>& b) { return szx_decompress(b); })});
  }
  {
    FpcOptions opt;
    backends.push_back({"fpc", run_backend(field, reps,
        [&](const ArrayView& v) { return fpc_compress(v, opt); },
        [](const std::vector<std::uint8_t>& b) { return fpc_decompress(b); })});
  }
  {
    ZfpOptions opt;
    opt.tolerance = bound;
    backends.push_back({"zfp", run_backend(field, reps,
        [&](const ArrayView& v) { return zfp_compress(v, opt); },
        [](const std::vector<std::uint8_t>& b) { return zfp_decompress(b); })});
  }
  {
    MgardOptions opt;
    opt.tolerance = bound;
    backends.push_back({"mgard", run_backend(field, reps,
        [&](const ArrayView& v) { return mgard_compress(v, opt); },
        [](const std::vector<std::uint8_t>& b) { return mgard_decompress(b); })});
  }
  {
    TruncateOptions opt;
    opt.bits = 16;
    backends.push_back({"truncate", run_backend(field, reps,
        [&](const ArrayView& v) { return truncate_compress(v, opt); },
        [](const std::vector<std::uint8_t>& b) { return truncate_decompress(b); })});
  }

  std::printf("%-9s %14s %16s %8s\n", "backend", "compress_MB/s", "decompress_MB/s",
              "ratio");
  for (const Entry& e : backends)
    std::printf("%-9s %14.0f %16.0f %8.2f\n", e.name, e.r.compress_mbps,
                e.r.decompress_mbps, e.r.ratio);

  const double sz_mbps = backends[0].r.compress_mbps;
  const double szx_mbps = backends[1].r.compress_mbps;
  const double szx_vs_sz = sz_mbps > 0 ? szx_mbps / sz_mbps : 0;
  std::printf("szx/sz compress speedup: %.1fx\n\n", szx_vs_sz);

  // ------------------------------------------------ blocked sz vs serial sz
  // L2-spilling 3D cube (5.6 MB full / 2 MB smoke): big enough that both
  // pipelines stream from L3/DRAM, the regime the blocked mode targets.
  const std::size_t edge = smoke ? 80 : 112;
  NdArray cube(DType::kFloat32, {edge, edge, edge});
  {
    auto* p = static_cast<float*>(cube.data());
    const std::size_t cube_n = edge * edge * edge;
    for (std::size_t i = 0; i < cube_n; ++i)
      p[i] = static_cast<float>(40.0 * std::sin(0.002 * static_cast<double>(i)));
  }
  const double cube_mb = static_cast<double>(cube.size_bytes()) / 1e6;
  SzOptions serial_opt;
  serial_opt.error_bound = 1e-2;
  SzOptions blocked_opt = serial_opt;
  blocked_opt.mode = SzMode::kBlocked;
  blocked_opt.threads = 8;

  const auto serial_frame = sz_compress(cube.view(), serial_opt);
  const auto blocked_frame = sz_compress(cube.view(), blocked_opt);
  // Determinism before speed: the 8-thread frame must match the 1-thread
  // frame byte for byte, or the speedup below gates nothing.
  {
    SzOptions one_thread = blocked_opt;
    one_thread.threads = 1;
    const auto single = sz_compress(cube.view(), one_thread);
    if (single.size() != blocked_frame.size() ||
        std::memcmp(single.data(), blocked_frame.data(), single.size()) != 0) {
      std::fprintf(stderr, "FAIL: blocked sz output differs across thread counts\n");
      return 1;
    }
  }
  const double serial_compress_mbps = cube_mb / best_seconds(reps, [&] {
    auto b = sz_compress(cube.view(), serial_opt);
    keep(b.data());
  });
  const double blocked_compress_mbps = cube_mb / best_seconds(reps, [&] {
    auto b = sz_compress(cube.view(), blocked_opt);
    keep(b.data());
  });
  const double serial_decompress_mbps = cube_mb / best_seconds(reps, [&] {
    NdArray a = sz_decompress(serial_frame);
    keep(a.data());
  });
  const double blocked_decompress_mbps = cube_mb / best_seconds(reps, [&] {
    NdArray a = sz_decompress(blocked_frame, blocked_opt.threads);
    keep(a.data());
  });
  const double blocked_compress_speedup =
      serial_compress_mbps > 0 ? blocked_compress_mbps / serial_compress_mbps : 0;
  const double blocked_decompress_speedup =
      serial_decompress_mbps > 0 ? blocked_decompress_mbps / serial_decompress_mbps : 0;
  std::printf("%-12s %14s %16s\n", "sz mode", "compress_MB/s", "decompress_MB/s");
  std::printf("%-12s %14.0f %16.0f\n", "serial", serial_compress_mbps,
              serial_decompress_mbps);
  std::printf("%-12s %14.0f %16.0f\n", "blocked(8t)", blocked_compress_mbps,
              blocked_decompress_mbps);
  std::printf("blocked/serial speedup: compress %.2fx decompress %.2fx\n\n",
              blocked_compress_speedup, blocked_decompress_speedup);

  // -------------------------------------------------------------- kernels
  // Inputs sized in whole szx blocks / sz runs / zfp blocks; identical
  // buffers feed the scalar and vector paths and outputs are compared
  // byte-for-byte before anything is timed.  The working set stays
  // L2-resident on purpose: a DRAM-bound sweep measures memory bandwidth,
  // and the compute speedup the dispatch decision rests on disappears into
  // it (dequantize drops from ~1.8x to ~1.2x at 4 MB).
  const std::size_t n = 1u << 16;
  // Kernel timings are microseconds each; more repetitions cost nothing and
  // tighten the best-of estimate the 1.5x gate compares.
  const unsigned kreps = 15;
  std::vector<float> data(n);
  for (std::size_t i = 0; i < n; ++i)
    data[i] = static_cast<float>(40.0 * std::sin(0.002 * static_cast<double>(i)));
  const double mb = static_cast<double>(n * sizeof(float)) / 1e6;
  const double e = 1e-2, twoe = 2 * e;

  struct Named {
    const char* name;
    KernelResult r;
  };
  std::vector<Named> kernels;
  bool identical = true;

  {  // szx block kernels (128-element blocks)
    const bool active = szxk::simd_active();
    std::vector<std::uint32_t> qs(n), qv(n);
    std::vector<float> ds(n), dv(n);
    double base_min = 1e300;
    for (std::size_t b = 0; b + szxk::kBlock <= n; b += szxk::kBlock) {
      const auto ss = szxk::block_stats_scalar(data.data() + b, szxk::kBlock);
      const auto sv = active ? szxk::block_stats_vec(data.data() + b, szxk::kBlock) : ss;
      identical = identical && ss.min == sv.min && ss.max == sv.max &&
                  ss.all_finite == sv.all_finite;
      base_min = std::min(base_min, ss.min);
      szxk::quantize_scalar(data.data() + b, szxk::kBlock, ss.min, twoe, e, qs.data() + b);
      if (active)
        szxk::quantize_vec(data.data() + b, szxk::kBlock, ss.min, twoe, e, qv.data() + b);
      szxk::dequantize_scalar(qs.data() + b, szxk::kBlock, ss.min, twoe, ds.data() + b);
      if (active)
        szxk::dequantize_vec(qs.data() + b, szxk::kBlock, ss.min, twoe, dv.data() + b);
    }
    identical = identical && (!active || (std::memcmp(qs.data(), qv.data(), n * 4) == 0 &&
                                          std::memcmp(ds.data(), dv.data(), n * 4) == 0));

    KernelResult stats, quant, dequant;
    stats.active = quant.active = dequant.active = active;
    stats.scalar_mbps = mb / best_seconds(kreps, [&] {
      double acc = 0;
      for (std::size_t b = 0; b + szxk::kBlock <= n; b += szxk::kBlock)
        acc += szxk::block_stats_scalar(data.data() + b, szxk::kBlock).min;
      keep(&acc);
    });
    quant.scalar_mbps = mb / best_seconds(kreps, [&] {
      for (std::size_t b = 0; b + szxk::kBlock <= n; b += szxk::kBlock)
        szxk::quantize_scalar(data.data() + b, szxk::kBlock, base_min, twoe, e,
                              qs.data() + b);
      keep(qs.data());
    });
    dequant.scalar_mbps = mb / best_seconds(kreps, [&] {
      for (std::size_t b = 0; b + szxk::kBlock <= n; b += szxk::kBlock)
        szxk::dequantize_scalar(qs.data() + b, szxk::kBlock, base_min, twoe, ds.data() + b);
      keep(ds.data());
    });
    if (active) {
      stats.vector_mbps = mb / best_seconds(kreps, [&] {
        double acc = 0;
        for (std::size_t b = 0; b + szxk::kBlock <= n; b += szxk::kBlock)
          acc += szxk::block_stats_vec(data.data() + b, szxk::kBlock).min;
        keep(&acc);
      });
      quant.vector_mbps = mb / best_seconds(kreps, [&] {
        for (std::size_t b = 0; b + szxk::kBlock <= n; b += szxk::kBlock)
          szxk::quantize_vec(data.data() + b, szxk::kBlock, base_min, twoe, e,
                             qv.data() + b);
        keep(qv.data());
      });
      dequant.vector_mbps = mb / best_seconds(kreps, [&] {
        for (std::size_t b = 0; b + szxk::kBlock <= n; b += szxk::kBlock)
          szxk::dequantize_vec(qs.data() + b, szxk::kBlock, base_min, twoe, dv.data() + b);
        keep(dv.data());
      });
    }
    stats.speedup = stats.scalar_mbps > 0 ? stats.vector_mbps / stats.scalar_mbps : 0;
    quant.speedup = quant.scalar_mbps > 0 ? quant.vector_mbps / quant.scalar_mbps : 0;
    dequant.speedup =
        dequant.scalar_mbps > 0 ? dequant.vector_mbps / dequant.scalar_mbps : 0;
    kernels.push_back({"szx.block_stats", stats});
    kernels.push_back({"szx.quantize", quant});
    kernels.push_back({"szx.dequantize", dequant});
  }

  {  // sz regression-run kernels (32-element runs)
    const bool active = szk::simd_active();
    constexpr std::size_t kRun = 32;
    std::vector<std::uint32_t> cs(n), cv(n);
    std::vector<float> rs(n), rv(n);
    const double pred_step = 0.01;
    for (std::size_t b = 0; b + kRun <= n; b += kRun) {
      const double pred_base = static_cast<double>(data[b]);
      const auto es = szk::quantize_run_scalar(data.data() + b, kRun, pred_base, pred_step,
                                               twoe, e, cs.data() + b, rs.data() + b);
      if (active) {
        const auto ev = szk::quantize_run_vec(data.data() + b, kRun, pred_base, pred_step,
                                              twoe, e, cv.data() + b, rv.data() + b);
        identical = identical && es == ev;
      }
    }
    identical = identical && (!active || (std::memcmp(cs.data(), cv.data(), n * 4) == 0 &&
                                          std::memcmp(rs.data(), rv.data(), n * 4) == 0));

    KernelResult quant, recon;
    quant.active = recon.active = active;
    quant.scalar_mbps = mb / best_seconds(kreps, [&] {
      for (std::size_t b = 0; b + kRun <= n; b += kRun)
        szk::quantize_run_scalar(data.data() + b, kRun, static_cast<double>(data[b]),
                                 pred_step, twoe, e, cs.data() + b, rs.data() + b);
      keep(cs.data());
    });
    recon.scalar_mbps = mb / best_seconds(kreps, [&] {
      for (std::size_t b = 0; b + kRun <= n; b += kRun)
        szk::reconstruct_run_scalar(cs.data() + b, kRun, static_cast<double>(data[b]),
                                    pred_step, twoe, rs.data() + b);
      keep(rs.data());
    });
    if (active) {
      quant.vector_mbps = mb / best_seconds(kreps, [&] {
        for (std::size_t b = 0; b + kRun <= n; b += kRun)
          szk::quantize_run_vec(data.data() + b, kRun, static_cast<double>(data[b]),
                                pred_step, twoe, e, cv.data() + b, rv.data() + b);
        keep(cv.data());
      });
      recon.vector_mbps = mb / best_seconds(kreps, [&] {
        for (std::size_t b = 0; b + kRun <= n; b += kRun)
          szk::reconstruct_run_vec(cs.data() + b, kRun, static_cast<double>(data[b]),
                                   pred_step, twoe, rv.data() + b);
        keep(rv.data());
      });
      std::vector<float> check(n);
      for (std::size_t b = 0; b + kRun <= n; b += kRun)
        szk::reconstruct_run_vec(cs.data() + b, kRun, static_cast<double>(data[b]),
                                 pred_step, twoe, check.data() + b);
      for (std::size_t b = 0; b + kRun <= n; b += kRun)
        szk::reconstruct_run_scalar(cs.data() + b, kRun, static_cast<double>(data[b]),
                                    pred_step, twoe, rs.data() + b);
      identical = identical && std::memcmp(rs.data(), check.data(), n * 4) == 0;
    }
    quant.speedup = quant.scalar_mbps > 0 ? quant.vector_mbps / quant.scalar_mbps : 0;
    recon.speedup = recon.scalar_mbps > 0 ? recon.vector_mbps / recon.scalar_mbps : 0;
    kernels.push_back({"sz.quantize_run", quant});
    kernels.push_back({"sz.reconstruct_run", recon});
  }

  {  // zfp 4^3 block transforms, i32 (f32 path) and i64 (f64 path) lanes
    auto zfp_kernel = [&](auto zero, bool active) {
      using Int = decltype(zero);
      const std::size_t blocks = n / 64;
      std::vector<Int> bs(blocks * 64), bv(blocks * 64);
      Rng rng(11);
      for (auto& x : bs) x = static_cast<Int>(rng.below(1u << 20)) - (1 << 19);
      bv = bs;
      const double imb = static_cast<double>(blocks * 64 * sizeof(Int)) / 1e6;
      for (std::size_t b = 0; b < blocks; ++b) {
        zfp_detail::fwd_transform(bs.data() + b * 64, 3);
        if (active) zfpk::fwd_transform_vec(bv.data() + b * 64, 3);
      }
      identical = identical &&
                  (!active ||
                   std::memcmp(bs.data(), bv.data(), blocks * 64 * sizeof(Int)) == 0);
      for (std::size_t b = 0; b < blocks; ++b) {
        zfp_detail::inv_transform(bs.data() + b * 64, 3);
        if (active) zfpk::inv_transform_vec(bv.data() + b * 64, 3);
      }
      identical = identical &&
                  (!active ||
                   std::memcmp(bs.data(), bv.data(), blocks * 64 * sizeof(Int)) == 0);

      KernelResult k;
      k.active = active;
      // Forward+inverse pairs keep the buffer bounded across repetitions.
      k.scalar_mbps = 2 * imb / best_seconds(kreps, [&] {
        for (std::size_t b = 0; b < blocks; ++b) {
          zfp_detail::fwd_transform(bs.data() + b * 64, 3);
          zfp_detail::inv_transform(bs.data() + b * 64, 3);
        }
        keep(bs.data());
      });
      if (active) {
        k.vector_mbps = 2 * imb / best_seconds(kreps, [&] {
          for (std::size_t b = 0; b < blocks; ++b) {
            zfpk::fwd_transform_vec(bv.data() + b * 64, 3);
            zfpk::inv_transform_vec(bv.data() + b * 64, 3);
          }
          keep(bv.data());
        });
      }
      k.speedup = k.scalar_mbps > 0 ? k.vector_mbps / k.scalar_mbps : 0;
      return k;
    };
    kernels.push_back(
        {"zfp.transform_i32", zfp_kernel(std::int32_t{0}, zfpk::simd_active<std::int32_t>())});
    kernels.push_back(
        {"zfp.transform_i64", zfp_kernel(std::int64_t{0}, zfpk::simd_active<std::int64_t>())});
  }

  std::printf("%-22s %10s %10s %9s\n", "kernel", "scalar", "vector", "speedup");
  for (const Named& k : kernels) print_kernel(k.name, k.r);
  if (!identical) {
    std::fprintf(stderr, "FAIL: vector kernel output diverges from its scalar reference\n");
    return 1;
  }

  JsonWriter jw;
  jw.begin_object().field("bench", "micro_compressors").field("bytes", field.size_bytes());
  jw.key("backends").begin_object();
  for (const Entry& e : backends)
    jw.key(e.name)
        .begin_object()
        .field("compress_mbps", e.r.compress_mbps)
        .field("decompress_mbps", e.r.decompress_mbps)
        .field("ratio", e.r.ratio)
        .end_object();
  jw.end_object();
  jw.field("szx_vs_sz_compress", szx_vs_sz);
  jw.key("sz_blocked")
      .begin_object()
      .field("cube_bytes", cube.size_bytes())
      .field("serial_compress_mbps", serial_compress_mbps)
      .field("blocked_compress_mbps", blocked_compress_mbps)
      .field("serial_decompress_mbps", serial_decompress_mbps)
      .field("blocked_decompress_mbps", blocked_decompress_mbps)
      .field("compress_speedup", blocked_compress_speedup)
      .field("decompress_speedup", blocked_decompress_speedup)
      .end_object();
  jw.key("kernels").begin_object();
  for (const Named& k : kernels)
    jw.key(k.name)
        .begin_object()
        .field("scalar_mbps", k.r.scalar_mbps)
        .field("vector_mbps", k.r.vector_mbps)
        .field("speedup", k.r.speedup)
        .field("active", k.r.active)
        .end_object();
  jw.end_object().end_object();
  bench::json_line(jw);

  if (cli.get_flag("check")) {
    bool pass = true;
    // Measured 5.4-6.1x on an unloaded AVX2 host; the floor leaves margin
    // for noisy shared CI runners while still pinning the ~5x claim.
    if (szx_vs_sz < 4.5) {
      std::fprintf(stderr, "FAIL: szx/sz compress speedup %.2f below the 4.5x floor\n",
                   szx_vs_sz);
      pass = false;
    }
    // Measured ~3.0x / ~2.2x on an unloaded AVX2 host (best-of-reps on both
    // sides); the floors are the PR-10 acceptance numbers.
    if (blocked_compress_speedup < 2.5) {
      std::fprintf(stderr,
                   "FAIL: blocked sz compress speedup %.2f below the 2.5x floor\n",
                   blocked_compress_speedup);
      pass = false;
    }
    if (blocked_decompress_speedup < 2.0) {
      std::fprintf(stderr,
                   "FAIL: blocked sz decompress speedup %.2f below the 2x floor\n",
                   blocked_decompress_speedup);
      pass = false;
    }
    for (const Named& k : kernels) {
      if (!k.r.active) continue;  // scalar-only build/host: nothing to gate
      if (k.r.speedup < 1.5) {
        std::fprintf(stderr, "FAIL: %s speedup %.2f below the 1.5x floor\n", k.name,
                     k.r.speedup);
        pass = false;
      }
    }
    if (!pass) return 1;
  }
  return 0;
}
