/// Reproduction of Fig. 6: per-time-step convergence of FRaZ on the
/// Hurricane CLOUD field, one feasible target (paper: rho_t = 8, "good
/// case") and one drifting-infeasible target (paper: rho_t = 15, "bad
/// case"), plus the §VI-B.1 warm-start observation (few retrains).
///
/// Expected shapes:
///  - good case: nearly all steps land inside the band; only a handful of
///    retrains across the series;
///  - bad case: many steps miss the band and oscillate around it, because
///    the achievable ratio set drifts away from the target over time.

#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "core/tuner.hpp"

namespace {

using namespace fraz;

void run_case(const char* label, double target, const std::vector<ArrayView>& views,
              double max_error_bound) {
  auto compressor = pressio::registry().create("sz");
  TunerConfig cfg;
  cfg.target_ratio = target;
  cfg.epsilon = 0.1;
  cfg.regions = 8;
  cfg.max_evals_per_region = 16;
  cfg.max_error_bound = max_error_bound;  // U in the paper's Eq. 2 (0 = auto)
  const Tuner tuner(*compressor, cfg);
  const SeriesResult series = tuner.tune_series(views);

  std::printf("\n[%s] target ratio %.1f, epsilon %.2f\n", label, target, cfg.epsilon);
  Table t({"step", "achieved_ratio", "in_band", "retrained", "compress_calls", "cache_hits"});
  int in_band = 0;
  for (std::size_t s = 0; s < series.steps.size(); ++s) {
    const auto& step = series.steps[s];
    const bool ok = step.result.feasible;
    in_band += ok;
    t.add_row({std::to_string(s), Table::num(step.result.achieved_ratio, 2), ok ? "yes" : "no",
               step.retrained ? "yes" : "no", std::to_string(step.result.compress_calls),
               std::to_string(step.result.probe_cache_hits)});
  }
  t.print(std::cout);
  // "probes executed" is the cost the unified tuning stack minimizes: probes
  // the searches consumed minus those the dedup cache served for free.
  std::printf("steps in band: %d/%zu, retrains: %d, total compress calls: %d "
              "(%d cache hits, %d probes executed)\n",
              in_band, series.steps.size(), series.retrain_count,
              series.total_compress_calls, series.total_probe_cache_hits,
              series.total_compress_calls - series.total_probe_cache_hits);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fraz;
  Cli cli("Fig. 6 reproduction: good vs bad convergence across time steps");
  cli.add_string("scale", "small", "suite scale: tiny|small|medium");
  cli.add_int("steps", 12, "time steps to tune");
  cli.add_double("good-target", 8.0, "feasible target (paper: 8)");
  cli.add_double("bad-target", 15.0, "drifting-infeasible target (paper: 15)");
  cli.add_double("bad-max-bound", 1.0e-5,
                 "U for the bad case: user's max allowed error (paper Eq. 2); the "
                 "field's noise floor rises across steps, pushing the bound needed "
                 "for the target past U — the paper's drift-to-infeasible story");
  if (!cli.parse(argc, argv)) return 0;

  bench::banner("Fig. 6", "convergence across time steps (Hurricane CLOUD analogue, SZ)",
                "good target: >90% of steps in band, few retrains; bad target: "
                "oscillation around an infeasible objective");

  const auto ds = data::dataset_by_name("hurricane", bench::parse_scale(cli.get_string("scale")));
  const auto spec = data::field_by_name(ds, "CLOUDf");
  const auto arrays = data::generate_series(spec, static_cast<int>(cli.get_int("steps")));
  std::vector<ArrayView> views;
  for (const auto& a : arrays) views.push_back(a.view());

  run_case("good convergence case (Fig. 6b)", cli.get_double("good-target"), views, 0.0);
  run_case("bad convergence case (Fig. 6a)", cli.get_double("bad-target"), views,
           cli.get_double("bad-max-bound"));
  return 0;
}
