/// Push-based ingestion sessions — throughput and input-memory residency of
/// the streamed write data plane against the whole-array compatibility path.
///
/// What this measures (no paper figure — the session API is the in-situ
/// deployment shape the error-bounded-compression literature calls for):
///
///  - pack throughput of write(ArrayView) (whole field handed over at once)
///    against a FieldSession fed one plane at a time, at several worker
///    counts, asserting the two paths' bytes are identical;
///  - the writer's peak raw *input* residency on the push path — the
///    streamed memory model says it never exceeds (workers + 2) chunk rows,
///    however large the field;
///  - a two-field v3 build streamed back-to-back, with per-field ratios.
///
/// Expected shape: plane-by-plane packs within a few percent of whole-array
/// packs (staging is one memcpy per plane next to chunk compression), input
/// residency pinned at (workers + 2) chunk rows — a small fraction of the
/// field — and byte-identical archives.  Output ends with one
/// machine-readable JSON line.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "archive/archive.hpp"
#include "bench_common.hpp"

namespace {

using namespace fraz;

archive::ArchiveWriteConfig make_config(const Cli& cli, unsigned threads) {
  archive::ArchiveWriteConfig config;
  config.engine.compressor = cli.get_string("compressor");
  config.engine.tuner.target_ratio = cli.get_double("target");
  config.threads = threads;
  return config;
}

/// Push every plane of \p field through \p session individually.
bool push_planes(archive::FieldSession& session, const NdArray& field) {
  const std::size_t n0 = field.shape()[0];
  const std::size_t plane_bytes = field.size_bytes() / n0;
  Shape plane_shape = field.shape();
  plane_shape[0] = 1;
  const auto* base = static_cast<const std::uint8_t*>(field.data());
  for (std::size_t p = 0; p < n0; ++p) {
    const ArrayView plane(base + p * plane_bytes, field.dtype(), plane_shape);
    if (!session.push(plane).ok()) return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fraz;
  Cli cli("archive ingestion sessions: plane-by-plane push vs whole-array write");
  cli.add_string("scale", "small", "suite scale: tiny|small|medium");
  cli.add_string("compressor", "sz", "backend: sz|zfp|mgard|truncate");
  cli.add_double("target", 10.0, "target aggregate compression ratio");
  cli.add_int("steps", 3, "timed packs per path (after 1 warm-up)");
  if (!cli.parse(argc, argv)) return 0;

  bench::banner("archive-stream",
                "push-based field sessions vs whole-array writes",
                "byte-identical archives; input residency <= (workers + 2) chunk "
                "rows; push within a few %% of write");

  const auto ds =
      data::dataset_by_name("hurricane", bench::parse_scale(cli.get_string("scale")));
  const NdArray temp = data::generate_field(data::field_by_name(ds, "TCf"), 0);
  const NdArray press = data::generate_field(data::field_by_name(ds, "Uf"), 0);
  const int steps = static_cast<int>(cli.get_int("steps"));
  const double raw_mb = static_cast<double>(temp.size_bytes()) / 1e6;

  std::printf("%-8s %-14s %-10s %-10s %-16s %s\n", "workers", "path", "MB/s", "ratio",
              "staged/raw", "identical");
  double write_mbps = 0, push_mbps = 0, staged_fraction = 0;
  bool identical = true;
  for (const unsigned threads : {1u, 2u, 4u}) {
    archive::ArchiveWriter whole_writer(make_config(cli, threads));
    Buffer whole_bytes;
    double whole_ratio = 0;
    {
      Timer timer;
      for (int s = 0; s <= steps; ++s) {
        auto written = whole_writer.write(temp.view(), whole_bytes);
        if (!written.ok()) return 1;
        if (s == 0) timer = Timer();  // warm-up excluded
        whole_ratio = written.value().achieved_ratio;
      }
      write_mbps = raw_mb * steps / timer.seconds();
    }

    archive::ArchiveWriter push_writer(make_config(cli, threads));
    Buffer push_bytes;
    std::size_t peak_staged = 0;
    {
      Timer timer;
      for (int s = 0; s <= steps; ++s) {
        if (!push_writer.begin(push_bytes, archive::kFormatVersion).ok()) return 1;
        archive::FieldDesc desc;
        desc.dtype = temp.dtype();
        desc.shape = temp.shape();
        auto session = push_writer.open_field(archive::kDefaultFieldName, desc);
        if (!session.ok() || !push_planes(session.value(), temp)) return 1;
        if (!session.value().close().ok()) return 1;
        auto finished = push_writer.finish();
        if (!finished.ok()) return 1;
        if (s == 0) timer = Timer();
        peak_staged = finished.value().peak_staged_bytes;
      }
      push_mbps = raw_mb * steps / timer.seconds();
    }

    const bool same = whole_bytes.size() == push_bytes.size() &&
                      std::memcmp(whole_bytes.data(), push_bytes.data(),
                                  whole_bytes.size()) == 0;
    identical = identical && same;
    staged_fraction =
        static_cast<double>(peak_staged) / static_cast<double>(temp.size_bytes());
    std::printf("%-8u %-14s %-10.1f %-10.2f %-16s %s\n", threads, "write", write_mbps,
                whole_ratio, "-", "-");
    std::printf("%-8u %-14s %-10.1f %-10.2f %-16.3f %s\n", threads, "push", push_mbps,
                whole_ratio, staged_fraction, same ? "yes" : "NO");
  }

  // Two-field v3 build, both fields streamed plane by plane.
  archive::ArchiveWriter multi_writer(make_config(cli, 4));
  Buffer multi_bytes;
  double temp_ratio = 0, press_ratio = 0;
  if (!multi_writer.begin(multi_bytes).ok()) return 1;
  for (const NdArray* field : {&temp, &press}) {
    archive::FieldDesc desc;
    desc.dtype = field->dtype();
    desc.shape = field->shape();
    auto session = multi_writer.open_field(field == &temp ? "TCf" : "Uf", desc);
    if (!session.ok() || !push_planes(session.value(), *field)) return 1;
    auto report = session.value().close();
    if (!report.ok()) return 1;
    (field == &temp ? temp_ratio : press_ratio) = report.value().payload_ratio;
  }
  auto multi = multi_writer.finish();
  if (!multi.ok()) return 1;
  std::printf("\nv3 multi-field: %zu fields, %zu -> %zu bytes (aggregate %.2f; "
              "TCf %.2f, Uf %.2f)\n",
              multi.value().fields.size(), multi.value().raw_bytes,
              multi.value().archive_bytes, multi.value().achieved_ratio, temp_ratio,
              press_ratio);

  std::printf("\n{\"bench\":\"archive_stream\",\"write_mbps\":%.2f,\"push_mbps\":%.2f,"
              "\"staged_fraction\":%.4f,\"identical\":%s,"
              "\"multi_field_ratio\":%.3f}\n",
              write_mbps, push_mbps, staged_fraction, identical ? "true" : "false",
              multi.value().achieved_ratio);
  return identical ? 0 : 1;
}
