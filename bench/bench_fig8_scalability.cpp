/// Reproduction of Fig. 8: strong scalability of FRaZ from 36 to 252 cores,
/// for sz:abs and zfp:accuracy on the Hurricane dataset.
///
/// Substitution (DESIGN.md §2): the paper measures MPI ranks on Bebop; this
/// machine has a handful of cores, so the scaling curve is reproduced by a
/// deterministic discrete-event replay.  The *task durations are real*: a
/// serial FRaZ training run is executed per field and each region task's
/// wall time and call count recorded; the warm-start step structure (probe
/// per step, occasional retrain) mirrors Algorithm 3.  The replay then
/// list-schedules the task graph at each simulated core count.
///
/// Expected shapes:
///  - steep runtime decrease up to ~180-216 cores, flat afterwards (the
///    makespan becomes the longest dependency chain / longest task);
///  - ZFP's curve sits ABOVE SZ's despite ZFP compressing faster per call,
///    because ZFP expresses fewer ratios -> more infeasible searches that
///    exhaust the iteration budget (paper §VI-B.3).

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <queue>
#include <vector>

#include "bench_common.hpp"
#include "core/tuner.hpp"
#include "util/timer.hpp"

namespace {

using namespace fraz;

/// One schedulable unit with a dependency on a previous unit (or -1).
struct SimTask {
  double duration;
  int depends_on;  // index into the task vector, -1 if none
};

/// List-schedule tasks on `cores` workers; returns the makespan.
double simulate_makespan(const std::vector<SimTask>& tasks, int cores) {
  const std::size_t n = tasks.size();
  std::vector<double> finish(n, -1.0);
  std::vector<int> pending(n, 0);
  std::vector<std::vector<int>> children(n);
  std::vector<int> ready;
  for (std::size_t i = 0; i < n; ++i) {
    if (tasks[i].depends_on >= 0) {
      pending[i] = 1;
      children[static_cast<std::size_t>(tasks[i].depends_on)].push_back(static_cast<int>(i));
    } else {
      ready.push_back(static_cast<int>(i));
    }
  }
  // Workers become free at these times (min-heap).
  std::priority_queue<double, std::vector<double>, std::greater<>> workers;
  for (int c = 0; c < cores; ++c) workers.push(0.0);

  // Event loop: pop the earliest-free worker, give it the ready task whose
  // dependency finished earliest (FIFO within readiness).
  std::size_t completed = 0;
  double makespan = 0.0;
  std::size_t ready_head = 0;
  std::vector<std::pair<double, int>> not_ready;  // (ready_time, task)
  std::priority_queue<std::pair<double, int>, std::vector<std::pair<double, int>>,
                      std::greater<>>
      becomes_ready;
  while (completed < n) {
    if (ready_head >= ready.size()) {
      // Advance time to the next dependency completion.
      auto [t, task] = becomes_ready.top();
      becomes_ready.pop();
      ready.push_back(task);
      // Worker availability must not precede the ready time.
      double w = workers.top();
      workers.pop();
      workers.push(std::max(w, t));
      continue;
    }
    const int task = ready[ready_head++];
    double start = workers.top();
    workers.pop();
    const double end = start + tasks[static_cast<std::size_t>(task)].duration;
    finish[static_cast<std::size_t>(task)] = end;
    makespan = std::max(makespan, end);
    workers.push(end);
    ++completed;
    for (int child : children[static_cast<std::size_t>(task)]) {
      if (--pending[static_cast<std::size_t>(child)] == 0) becomes_ready.emplace(end, child);
    }
  }
  return makespan;
}

/// Measured profile of tuning one field.
struct FieldProfile {
  std::vector<double> region_seconds;  // real per-region training durations
  double probe_seconds;                // one warm-start probe
  bool feasible;                       // did the target land in the band?
};

/// Build the task graph: per field, step 0 trains (K parallel region tasks
/// whose join feeds step 1), later steps are single probes except periodic
/// retrains (paper Fig. 6b: a handful per series).
std::vector<SimTask> build_graph(const std::vector<FieldProfile>& fields, int steps,
                                 int retrain_every) {
  std::vector<SimTask> tasks;
  for (const auto& field : fields) {
    int join_of_prev = -1;
    for (int t = 0; t < steps; ++t) {
      // Infeasible fields retrain at EVERY step: the warm-start probe always
      // misses the band (paper §VI-B.3: "FRaZ took more time-steps which
      // took the maximum number of iterations, lengthening the runtime").
      const bool trains =
          t == 0 || !field.feasible || (retrain_every > 0 && t % retrain_every == 0);
      if (trains) {
        // K parallel region tasks, then a zero-cost join task.
        std::vector<int> region_ids;
        for (double d : field.region_seconds) {
          tasks.push_back({d, join_of_prev});
          region_ids.push_back(static_cast<int>(tasks.size() - 1));
        }
        // Join approximated by chaining on the longest region (list
        // scheduling of independent siblings makes the distinction moot).
        int longest = region_ids[0];
        for (int id : region_ids)
          if (tasks[static_cast<std::size_t>(id)].duration >
              tasks[static_cast<std::size_t>(longest)].duration)
            longest = id;
        join_of_prev = longest;
      } else {
        tasks.push_back({field.probe_seconds, join_of_prev});
        join_of_prev = static_cast<int>(tasks.size() - 1);
      }
    }
  }
  return tasks;
}

FieldProfile profile_field(const pressio::Compressor& proto, const ArrayView& view,
                           double target) {
  TunerConfig cfg;
  cfg.target_ratio = target;
  // A tight band widens the gaps between ZFP's expressible ratios (its
  // accuracy mode floors log2(tolerance), so ratios come in coarse treads)
  // while SZ's near-continuous curve still satisfies it -- the mechanism
  // behind the paper's ZFP-above-SZ Fig. 8 ordering.
  cfg.epsilon = 0.05;
  cfg.regions = 12;            // the paper's default task count
  cfg.max_evals_per_region = 12;
  cfg.threads = 1;             // serial: we need *per-region* durations
  const Tuner tuner(proto, cfg);
  const TuneResult r = tuner.tune(view);

  // Per-region durations: calls x measured single-compression time.
  auto clone = proto.clone();
  clone->set_error_bound(r.error_bound > 0 ? r.error_bound : value_range(view) * 0.01);
  Timer timer;
  (void)clone->compress(view);
  const double per_call = timer.seconds();

  FieldProfile profile;
  for (const auto& region : r.regions)
    profile.region_seconds.push_back(std::max(region.compress_calls, 1) * per_call);
  profile.probe_seconds = per_call;
  profile.feasible = r.feasible;
  return profile;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fraz;
  Cli cli("Fig. 8 reproduction: strong scalability (measured tasks, simulated cores)");
  cli.add_string("scale", "small", "suite scale: tiny|small|medium");
  cli.add_int("steps", 12, "time steps per field");
  cli.add_double("target", 16.0, "target compression ratio");
  if (!cli.parse(argc, argv)) return 0;

  bench::banner("Fig. 8", "strong scaling, sz:abs vs zfp:accuracy (Hurricane analogue)",
                "runtime drops steeply to ~180-216 cores then flattens at the longest "
                "task chain; zfp curve above sz despite faster per-call compression");

  const auto scale = bench::parse_scale(cli.get_string("scale"));
  const auto ds = data::dataset_by_name("hurricane", scale);
  const double target = cli.get_double("target");
  const int steps = static_cast<int>(cli.get_int("steps"));

  // The paper's Hurricane has 13 fields; replicate our 4 analogue kinds with
  // distinct seeds to reach 13 (the QCLOUD-like heavy field included once).
  std::vector<data::FieldSpec> specs;
  for (int i = 0; specs.size() < 13; ++i) {
    for (const auto& f : ds.fields) {
      if (specs.size() >= 13) break;
      data::FieldSpec s = f;
      s.seed ^= static_cast<std::uint64_t>(i) * 0x9e3779b9u;
      specs.push_back(s);
    }
  }

  Table t({"cores", "sz_abs_runtime_s", "zfp_accuracy_runtime_s"});
  std::vector<double> sz_curve, zfp_curve;
  std::vector<int> core_counts = {36, 72, 108, 144, 180, 216, 252};

  for (const char* backend : {"sz", "zfp"}) {
    auto proto = pressio::registry().create(backend);
    std::vector<FieldProfile> profiles;
    int feasible_fields = 0;
    double per_call_sum = 0;
    for (const auto& spec : specs) {
      const NdArray field = data::generate_field(spec, 0);
      profiles.push_back(profile_field(*proto, field.view(), target));
      feasible_fields += profiles.back().feasible;
      per_call_sum += profiles.back().probe_seconds;
    }
    std::printf("[profile] %s: %d/%zu fields feasible at target %.0f, mean compress "
                "%.2f ms/call\n",
                backend, feasible_fields, specs.size(), target,
                1e3 * per_call_sum / static_cast<double>(specs.size()));
    const auto graph = build_graph(profiles, steps, 8);
    auto& curve = std::string(backend) == "sz" ? sz_curve : zfp_curve;
    for (int cores : core_counts) curve.push_back(simulate_makespan(graph, cores));
  }

  for (std::size_t i = 0; i < core_counts.size(); ++i)
    t.add_row({std::to_string(core_counts[i]), Table::num(sz_curve[i], 3),
               Table::num(zfp_curve[i], 3)});
  t.print(std::cout);

  const bool decreases = sz_curve.front() > sz_curve.back() * 1.2;
  const bool flattens =
      sz_curve[sz_curve.size() - 2] < sz_curve[sz_curve.size() - 3] * 1.05 ||
      sz_curve.back() > sz_curve[sz_curve.size() - 2] * 0.95;
  const bool zfp_above = zfp_curve.back() >= sz_curve.back();
  std::printf("\nshape checks: runtime decreases with cores: %s; flattens at high core "
              "counts: %s; zfp above sz at scale: %s\n",
              decreases ? "HOLDS" : "VIOLATED", flattens ? "HOLDS" : "VIOLATED",
              zfp_above ? "HOLDS" : "VIOLATED");
  return 0;
}
