/// Reproduction of Fig. 9: rate-distortion (PSNR vs bit rate) of
/// SZ(FRaZ), ZFP(FRaZ), ZFP(fixed-rate), and MGARD(FRaZ) across all five
/// datasets.  MGARD is absent on HACC/EXAALT (1D), exactly as in the paper.
///
/// Expected shapes:
///  - ZFP(FRaZ) consistently above ZFP(fixed-rate) at matched bit rates;
///  - SZ(FRaZ) the best curve on most datasets;
///  - all curves increase monotonically with bit rate.

#include <algorithm>
#include <cmath>
#include <limits>
#include <cstdio>
#include <iostream>
#include <map>

#include "bench_common.hpp"
#include "core/tuner.hpp"
#include "metrics/error_stats.hpp"
#include "pressio/evaluate.hpp"
#include "pressio/options.hpp"

namespace {

using namespace fraz;

struct Point {
  double bit_rate = 0;
  double psnr = 0;
  bool valid = false;
};

/// FRaZ-tune `backend` to the target ratio, then measure fidelity.
Point fraz_point(const std::string& backend, const ArrayView& view, double target) {
  Point p;
  auto compressor = pressio::registry().create(backend);
  if (!compressor->supports_dims(view.dims())) return p;
  TunerConfig cfg;
  cfg.target_ratio = target;
  cfg.epsilon = 0.15;
  cfg.regions = 8;
  cfg.max_evals_per_region = 14;
  const Tuner tuner(*compressor, cfg);
  const TuneResult r = tuner.tune(view);
  if (r.error_bound <= 0) return p;
  compressor->set_error_bound(r.error_bound);
  const auto report = pressio::evaluate_fidelity(*compressor, view);
  p.bit_rate = report.probe.bit_rate;
  p.psnr = report.psnr_db;
  p.valid = true;
  return p;
}

/// ZFP's built-in fixed-rate mode at the equivalent rate.
Point fixed_rate_point(const ArrayView& view, double target) {
  Point p;
  auto compressor = pressio::registry().create("zfp");
  pressio::Options o;
  o.set("zfp:mode", std::string("rate"));
  o.set("zfp:rate", 32.0 / target);
  compressor->set_options(o);
  const auto report = pressio::evaluate_fidelity(*compressor, view);
  p.bit_rate = report.probe.bit_rate;
  p.psnr = report.psnr_db;
  p.valid = true;
  return p;
}

/// Linear interpolation of a curve's PSNR at the requested bitrate; NaN when
/// the bitrate lies outside the curve's support.
double interpolate_psnr(const std::vector<Point>& curve, double bitrate) {
  std::vector<Point> sorted = curve;
  std::sort(sorted.begin(), sorted.end(),
            [](const Point& a, const Point& b) { return a.bit_rate < b.bit_rate; });
  for (std::size_t i = 1; i < sorted.size(); ++i) {
    const Point& lo = sorted[i - 1];
    const Point& hi = sorted[i];
    if (bitrate >= lo.bit_rate && bitrate <= hi.bit_rate) {
      if (hi.bit_rate == lo.bit_rate) return lo.psnr;
      const double w = (bitrate - lo.bit_rate) / (hi.bit_rate - lo.bit_rate);
      return lo.psnr + w * (hi.psnr - lo.psnr);
    }
  }
  return std::numeric_limits<double>::quiet_NaN();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fraz;
  Cli cli("Fig. 9 reproduction: rate distortion across the five datasets");
  cli.add_string("scale", "small", "suite scale: tiny|small|medium");
  if (!cli.parse(argc, argv)) return 0;

  bench::banner("Fig. 9", "rate distortion: SZ(FRaZ), ZFP(FRaZ), ZFP(fixed-rate), MGARD(FRaZ)",
                "ZFP(FRaZ) above ZFP(fixed-rate); SZ(FRaZ) best on most datasets; "
                "MGARD missing on 1D HACC/EXAALT");

  const auto scale = bench::parse_scale(cli.get_string("scale"));
  const std::map<std::string, std::string> panels = {
      {"hurricane", "TCf"},       {"nyx", "temperature"}, {"cesm", "CLDHGH"},
      {"hacc", "x"},              {"exaalt", "x"},
  };
  const std::vector<double> targets = {4, 8, 16, 32, 64};
  // Rate-distortion curves live on the bitrate axis; infeasible targets
  // saturate to the closest achievable ratio, so fair "who wins" comparisons
  // interpolate PSNR at matched bitrates, like reading the paper's plots.
  const std::vector<double> probe_bitrates = {2.0, 4.0, 8.0};

  int zfp_wins = 0, zfp_comparisons = 0;
  int sz_best = 0, panels_counted = 0;

  for (const auto& [ds_name, field_name] : panels) {
    const auto ds = data::dataset_by_name(ds_name, scale);
    const NdArray field = data::generate_field(data::field_by_name(ds, field_name), 0);
    const ArrayView view = field.view();

    std::printf("\n[Fig. 9 panel] %s (%s)\n", ds_name.c_str(), field_name.c_str());
    Table t({"target", "curve", "bit_rate", "psnr_db"});
    std::map<std::string, std::vector<Point>> curves;
    for (double target : targets) {
      const Point sz = fraz_point("sz", view, target);
      const Point zfp = fraz_point("zfp", view, target);
      const Point zfp_rate = fixed_rate_point(view, target);
      const Point mgard = fraz_point("mgard", view, target);
      for (const auto& [label, point] :
           {std::pair<const char*, const Point&>{"SZ(FRaZ)", sz},
            {"ZFP(FRaZ)", zfp},
            {"ZFP(fixed-rate)", zfp_rate},
            {"MGARD(FRaZ)", mgard}}) {
        if (!point.valid) continue;
        t.add_row({Table::num(target, 0), label, Table::num(point.bit_rate, 2),
                   Table::num(point.psnr, 1)});
        curves[label].push_back(point);
      }
      if (zfp.valid && zfp_rate.valid) {
        ++zfp_comparisons;
        zfp_wins += zfp.psnr >= zfp_rate.psnr;
      }
    }
    t.print(std::cout);
    if (view.dims() == 1) std::printf("MGARD absent: 1D unsupported (as in the paper)\n");

    // Panel verdict: SZ is "best" when it wins the majority of matched-
    // bitrate comparisons against every other curve present.
    if (curves.count("SZ(FRaZ)") && curves.count("ZFP(FRaZ)")) {
      ++panels_counted;
      int wins = 0, comparisons = 0;
      for (const auto& [label, curve] : curves) {
        if (label == "SZ(FRaZ)") continue;
        for (double bitrate : probe_bitrates) {
          const double sz_psnr = interpolate_psnr(curves.at("SZ(FRaZ)"), bitrate);
          const double other = interpolate_psnr(curve, bitrate);
          if (std::isnan(sz_psnr) || std::isnan(other)) continue;
          ++comparisons;
          wins += sz_psnr >= other;
        }
      }
      if (comparisons > 0 && wins * 2 >= comparisons) ++sz_best;
    }
  }

  std::printf("\nshape checks:\n");
  std::printf("  ZFP(FRaZ) >= ZFP(fixed-rate) PSNR: %d/%d comparisons -> %s\n", zfp_wins,
              zfp_comparisons, zfp_wins * 2 >= zfp_comparisons ? "HOLDS" : "VIOLATED");
  std::printf("  SZ(FRaZ) best at matched bitrates: %d/%d panels -> %s\n", sz_best,
              panels_counted,
              sz_best * 2 >= panels_counted ? "HOLDS (most cases)" : "VIOLATED");
  return 0;
}
