#include "ndarray/io.hpp"

#include <algorithm>
#include <fstream>

namespace fraz {

void write_raw(const std::string& path, const ArrayView& array) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw IoError("write_raw: cannot open '" + path + "'");
  os.write(static_cast<const char*>(array.data()), static_cast<std::streamsize>(array.size_bytes()));
  if (!os) throw IoError("write_raw: write failed for '" + path + "'");
}

RawFileWriter::RawFileWriter(const std::string& path)
    : os_(path, std::ios::binary), path_(path) {
  if (!os_) throw IoError("RawFileWriter: cannot open '" + path + "'");
}

RawFileWriter::~RawFileWriter() = default;

void RawFileWriter::append(const ArrayView& array) {
  append_bytes(array.data(), array.size_bytes());
}

void RawFileWriter::append_bytes(const void* data, std::size_t size) {
  if (!os_.is_open()) throw IoError("RawFileWriter: '" + path_ + "' is closed");
  os_.write(static_cast<const char*>(data), static_cast<std::streamsize>(size));
  if (!os_) throw IoError("RawFileWriter: write failed for '" + path_ + "'");
  bytes_ += size;
}

void RawFileWriter::close() {
  if (!os_.is_open()) return;
  os_.close();
  if (!os_) throw IoError("RawFileWriter: close failed for '" + path_ + "'");
}

RawFileReader::RawFileReader(const std::string& path, DType dtype, Shape shape)
    : is_(path, std::ios::binary | std::ios::ate), path_(path), dtype_(dtype),
      shape_(std::move(shape)) {
  if (!is_) throw IoError("RawFileReader: cannot open '" + path + "'");
  require(!shape_.empty() && shape_elements(shape_) > 0,
          "RawFileReader: shape must be non-empty");
  const auto file_size = static_cast<std::size_t>(is_.tellg());
  plane_bytes_ = (shape_elements(shape_) / shape_[0]) * dtype_size(dtype_);
  require(file_size == shape_elements(shape_) * dtype_size(dtype_),
          "RawFileReader: file size does not match shape for '" + path + "'");
  is_.seekg(0);
}

ArrayView RawFileReader::next(std::size_t max_planes) {
  require(max_planes >= 1, "RawFileReader: max_planes must be >= 1");
  require(planes_remaining() > 0, "RawFileReader: '" + path_ + "' is exhausted");
  const std::size_t planes = std::min(max_planes, planes_remaining());
  slab_.resize(planes * plane_bytes_);
  is_.read(reinterpret_cast<char*>(slab_.data()),
           static_cast<std::streamsize>(slab_.size()));
  if (!is_) throw IoError("RawFileReader: short read from '" + path_ + "'");
  planes_read_ += planes;
  Shape slab_shape = shape_;
  slab_shape[0] = planes;
  return ArrayView(slab_.data(), dtype_, std::move(slab_shape));
}

NdArray read_raw(const std::string& path, DType dtype, Shape shape) {
  std::ifstream is(path, std::ios::binary | std::ios::ate);
  if (!is) throw IoError("read_raw: cannot open '" + path + "'");
  const auto file_size = static_cast<std::size_t>(is.tellg());
  NdArray out(dtype, std::move(shape));
  require(file_size == out.size_bytes(),
          "read_raw: file size does not match shape for '" + path + "'");
  is.seekg(0);
  is.read(static_cast<char*>(out.data()), static_cast<std::streamsize>(out.size_bytes()));
  if (!is) throw IoError("read_raw: short read from '" + path + "'");
  return out;
}

}  // namespace fraz
