#ifndef FRAZ_NDARRAY_IO_HPP
#define FRAZ_NDARRAY_IO_HPP

/// \file io.hpp
/// Raw binary array I/O in the SDRBench layout: a flat little-endian dump of
/// the scalars, shape supplied out of band (as the benchmark does with its
/// published dimensions).

#include <fstream>
#include <string>

#include "ndarray/ndarray.hpp"

namespace fraz {

/// Write the array's scalars as a flat binary file.  Throws IoError.
void write_raw(const std::string& path, const ArrayView& array);

/// Read a flat binary file produced by write_raw (or downloaded from
/// SDRBench).  The file size must equal shape x dtype size; throws IoError /
/// InvalidArgument otherwise.
NdArray read_raw(const std::string& path, DType dtype, Shape shape);

/// Incremental raw writer: open once, append slabs in order.  This is the
/// output side of a streaming unpack — plane ranges decoded one window at a
/// time land on disk without the whole reconstruction ever being resident.
/// All methods throw IoError on filesystem failure.
class RawFileWriter {
public:
  /// Create or truncate \p path.
  explicit RawFileWriter(const std::string& path);

  /// Closes the stream, swallowing errors (call close() to observe them).
  ~RawFileWriter();

  RawFileWriter(const RawFileWriter&) = delete;
  RawFileWriter& operator=(const RawFileWriter&) = delete;

  /// Append the array's scalars.
  void append(const ArrayView& array);

  /// Append \p size arbitrary bytes.
  void append_bytes(const void* data, std::size_t size);

  std::size_t bytes_written() const noexcept { return bytes_; }

  /// Flush and close; throws IoError when the final flush fails.
  void close();

private:
  std::ofstream os_;
  std::string path_;
  std::size_t bytes_ = 0;
};

}  // namespace fraz

#endif  // FRAZ_NDARRAY_IO_HPP
