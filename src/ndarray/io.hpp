#ifndef FRAZ_NDARRAY_IO_HPP
#define FRAZ_NDARRAY_IO_HPP

/// \file io.hpp
/// Raw binary array I/O in the SDRBench layout: a flat little-endian dump of
/// the scalars, shape supplied out of band (as the benchmark does with its
/// published dimensions).

#include <fstream>
#include <string>

#include "ndarray/ndarray.hpp"

namespace fraz {

/// Write the array's scalars as a flat binary file.  Throws IoError.
void write_raw(const std::string& path, const ArrayView& array);

/// Read a flat binary file produced by write_raw (or downloaded from
/// SDRBench).  The file size must equal shape x dtype size; throws IoError /
/// InvalidArgument otherwise.
NdArray read_raw(const std::string& path, DType dtype, Shape shape);

/// Incremental raw writer: open once, append slabs in order.  This is the
/// output side of a streaming unpack — plane ranges decoded one window at a
/// time land on disk without the whole reconstruction ever being resident.
/// All methods throw IoError on filesystem failure.
class RawFileWriter {
public:
  /// Create or truncate \p path.
  explicit RawFileWriter(const std::string& path);

  /// Closes the stream, swallowing errors (call close() to observe them).
  ~RawFileWriter();

  RawFileWriter(const RawFileWriter&) = delete;
  RawFileWriter& operator=(const RawFileWriter&) = delete;

  /// Append the array's scalars.
  void append(const ArrayView& array);

  /// Append \p size arbitrary bytes.
  void append_bytes(const void* data, std::size_t size);

  std::size_t bytes_written() const noexcept { return bytes_; }

  /// Flush and close; throws IoError when the final flush fails.
  void close();

private:
  std::ofstream os_;
  std::string path_;
  std::size_t bytes_ = 0;
};

/// Incremental raw reader: open once, read slowest-axis plane slabs in
/// order.  This is the input side of a streaming pack — slabs feed an
/// archive FieldSession one chunk row at a time without the whole field
/// ever being resident.  All methods throw IoError / InvalidArgument.
class RawFileReader {
public:
  /// Open \p path and validate its size against shape × dtype size.
  RawFileReader(const std::string& path, DType dtype, Shape shape);

  RawFileReader(const RawFileReader&) = delete;
  RawFileReader& operator=(const RawFileReader&) = delete;

  const Shape& shape() const noexcept { return shape_; }
  std::size_t planes_remaining() const noexcept { return shape_[0] - planes_read_; }

  /// Read the next min(max_planes, planes_remaining()) planes into an
  /// internal buffer and return a view shaped {k, rest...}.  The view stays
  /// valid until the next call.  Requires max_planes >= 1 and at least one
  /// plane remaining.
  ArrayView next(std::size_t max_planes);

private:
  std::ifstream is_;
  std::string path_;
  DType dtype_;
  Shape shape_;
  std::size_t plane_bytes_ = 0;
  std::size_t planes_read_ = 0;
  std::vector<std::uint8_t> slab_;
};

}  // namespace fraz

#endif  // FRAZ_NDARRAY_IO_HPP
