#ifndef FRAZ_NDARRAY_IO_HPP
#define FRAZ_NDARRAY_IO_HPP

/// \file io.hpp
/// Raw binary array I/O in the SDRBench layout: a flat little-endian dump of
/// the scalars, shape supplied out of band (as the benchmark does with its
/// published dimensions).

#include <string>

#include "ndarray/ndarray.hpp"

namespace fraz {

/// Write the array's scalars as a flat binary file.  Throws IoError.
void write_raw(const std::string& path, const ArrayView& array);

/// Read a flat binary file produced by write_raw (or downloaded from
/// SDRBench).  The file size must equal shape x dtype size; throws IoError /
/// InvalidArgument otherwise.
NdArray read_raw(const std::string& path, DType dtype, Shape shape);

}  // namespace fraz

#endif  // FRAZ_NDARRAY_IO_HPP
