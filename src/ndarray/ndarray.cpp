#include "ndarray/ndarray.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

namespace fraz {

std::size_t shape_elements(const Shape& shape) {
  std::size_t n = shape.empty() ? 0 : 1;
  for (std::size_t d : shape) {
    require(d > 0, "shape_elements: zero extent");
    n *= d;
  }
  return n;
}

ArrayView::ArrayView(const void* data, DType dtype, Shape shape)
    : data_(data), dtype_(dtype), shape_(std::move(shape)), elements_(shape_elements(shape_)) {
  require(data_ != nullptr || elements_ == 0, "ArrayView: null data with nonzero shape");
}

NdArray::NdArray() : dtype_(DType::kFloat32), elements_(0) {}

NdArray::NdArray(DType dtype, Shape shape)
    : dtype_(dtype),
      shape_(std::move(shape)),
      elements_(shape_elements(shape_)),
      buffer_(elements_ * dtype_size(dtype), 0) {}

double NdArray::at_flat(std::size_t i) const {
  require(i < elements_, "NdArray::at_flat: index out of range");
  if (dtype_ == DType::kFloat32) return reinterpret_cast<const float*>(buffer_.data())[i];
  return reinterpret_cast<const double*>(buffer_.data())[i];
}

void NdArray::set_flat(std::size_t i, double v) {
  require(i < elements_, "NdArray::set_flat: index out of range");
  if (dtype_ == DType::kFloat32)
    reinterpret_cast<float*>(buffer_.data())[i] = static_cast<float>(v);
  else
    reinterpret_cast<double*>(buffer_.data())[i] = v;
}

std::vector<double> NdArray::to_doubles() const {
  std::vector<double> out(elements_);
  if (dtype_ == DType::kFloat32) {
    const auto* p = reinterpret_cast<const float*>(buffer_.data());
    std::copy(p, p + elements_, out.begin());
  } else {
    const auto* p = reinterpret_cast<const double*>(buffer_.data());
    std::copy(p, p + elements_, out.begin());
  }
  return out;
}

NdArray NdArray::slice2d(std::size_t plane) const {
  if (dims() == 2) {
    require(plane == 0, "NdArray::slice2d: plane out of range for 2D array");
    NdArray out(dtype_, shape_);
    std::memcpy(out.data(), buffer_.data(), buffer_.size());
    return out;
  }
  require(dims() == 3, "NdArray::slice2d: requires a 2D or 3D array");
  require(plane < shape_[0], "NdArray::slice2d: plane out of range");
  const std::size_t plane_elems = shape_[1] * shape_[2];
  const std::size_t esize = dtype_size(dtype_);
  NdArray out(dtype_, {shape_[1], shape_[2]});
  std::memcpy(out.data(), buffer_.data() + plane * plane_elems * esize, plane_elems * esize);
  return out;
}

namespace {
template <typename T>
double max_abs_impl(const T* p, std::size_t n) {
  double m = 0.0;
  for (std::size_t i = 0; i < n; ++i) m = std::max(m, std::abs(static_cast<double>(p[i])));
  return m;
}

template <typename T>
double range_impl(const T* p, std::size_t n) {
  if (n == 0) return 0.0;
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < n; ++i) {
    const double v = p[i];
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  return hi - lo;
}
}  // namespace

double max_abs(const ArrayView& v) {
  if (v.elements() == 0) return 0.0;
  return v.dtype() == DType::kFloat32 ? max_abs_impl(v.typed<float>(), v.elements())
                                      : max_abs_impl(v.typed<double>(), v.elements());
}

double value_range(const ArrayView& v) {
  if (v.elements() == 0) return 0.0;
  return v.dtype() == DType::kFloat32 ? range_impl(v.typed<float>(), v.elements())
                                      : range_impl(v.typed<double>(), v.elements());
}

}  // namespace fraz
