#ifndef FRAZ_NDARRAY_NDARRAY_HPP
#define FRAZ_NDARRAY_NDARRAY_HPP

/// \file ndarray.hpp
/// Owning N-dimensional array of floating-point scalars plus a non-owning
/// const view.  This is the datum every compressor, metric, and the tuner
/// operate on.  Layout is row-major (C order, last dimension fastest), which
/// matches the raw SDRBench binary files.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "ndarray/dtype.hpp"
#include "util/error.hpp"

namespace fraz {

/// Shape of an array: extent per dimension, slowest-varying first.
using Shape = std::vector<std::size_t>;

/// Total element count of a shape.
std::size_t shape_elements(const Shape& shape);

/// Non-owning, read-only view over an array's raw buffer.
///
/// Views are the currency of the compression API: compressors read from an
/// ArrayView and the tuner passes views around without copying the (possibly
/// large) field.
class ArrayView {
public:
  ArrayView(const void* data, DType dtype, Shape shape);

  const void* data() const noexcept { return data_; }
  DType dtype() const noexcept { return dtype_; }
  const Shape& shape() const noexcept { return shape_; }
  std::size_t dims() const noexcept { return shape_.size(); }
  std::size_t elements() const noexcept { return elements_; }
  std::size_t size_bytes() const noexcept { return elements_ * dtype_size(dtype_); }

  /// Typed element pointer; T must match dtype().
  template <typename T>
  const T* typed() const {
    require(dtype_of<T>::value == dtype_, "ArrayView::typed: dtype mismatch");
    return static_cast<const T*>(data_);
  }

private:
  const void* data_;
  DType dtype_;
  Shape shape_;
  std::size_t elements_;
};

/// Owning N-dimensional array.
class NdArray {
public:
  /// An empty, zero-element array (useful as a default-constructed slot).
  NdArray();

  /// Allocate a zero-initialized array.
  NdArray(DType dtype, Shape shape);

  /// Build from an existing vector of scalars; shape must match size.
  template <typename T>
  static NdArray from_vector(const std::vector<T>& values, Shape shape) {
    NdArray a(dtype_of<T>::value, std::move(shape));
    require(a.elements() == values.size(), "NdArray::from_vector: element count mismatch");
    auto* dst = a.typed<T>();
    for (std::size_t i = 0; i < values.size(); ++i) dst[i] = values[i];
    return a;
  }

  DType dtype() const noexcept { return dtype_; }
  const Shape& shape() const noexcept { return shape_; }
  std::size_t dims() const noexcept { return shape_.size(); }
  std::size_t elements() const noexcept { return elements_; }
  std::size_t size_bytes() const noexcept { return buffer_.size(); }

  void* data() noexcept { return buffer_.data(); }
  const void* data() const noexcept { return buffer_.data(); }

  /// Typed mutable pointer; T must match dtype().
  template <typename T>
  T* typed() {
    require(dtype_of<T>::value == dtype_, "NdArray::typed: dtype mismatch");
    return reinterpret_cast<T*>(buffer_.data());
  }

  /// Typed const pointer; T must match dtype().
  template <typename T>
  const T* typed() const {
    require(dtype_of<T>::value == dtype_, "NdArray::typed: dtype mismatch");
    return reinterpret_cast<const T*>(buffer_.data());
  }

  /// Non-owning view of the whole array.
  ArrayView view() const { return ArrayView(buffer_.data(), dtype_, shape_); }
  operator ArrayView() const { return view(); }

  /// Element i (flat index) widened to double, regardless of dtype.
  double at_flat(std::size_t i) const;
  /// Store \p v (narrowed if f32) at flat index i.
  void set_flat(std::size_t i, double v);

  /// Copy of the contents widened to double (convenience for metrics/plots).
  std::vector<double> to_doubles() const;

  /// Extract the 2D slice [plane, :, :] of a 3D array (or the whole array if
  /// 2D; throws for other ranks).  Used for SSIM and image dumps.
  NdArray slice2d(std::size_t plane) const;

private:
  DType dtype_;
  Shape shape_;
  std::size_t elements_;
  std::vector<std::uint8_t> buffer_;
};

/// Maximum absolute value in the view (0 for empty views).
double max_abs(const ArrayView& v);

/// Value range (max - min) of the view; 0 for constant or empty views.
double value_range(const ArrayView& v);

}  // namespace fraz

#endif  // FRAZ_NDARRAY_NDARRAY_HPP
