#ifndef FRAZ_NDARRAY_DTYPE_HPP
#define FRAZ_NDARRAY_DTYPE_HPP

/// \file dtype.hpp
/// Element types supported by the compression stack.  SDRBench datasets are
/// single precision; double precision is supported throughout because the
/// paper's framework is generic over the element type.

#include <cstddef>
#include <string>

#include "util/error.hpp"

namespace fraz {

/// Scalar element type of an NdArray.
enum class DType {
  kFloat32,
  kFloat64,
};

/// Size in bytes of one element of \p t.
constexpr std::size_t dtype_size(DType t) noexcept {
  return t == DType::kFloat32 ? 4 : 8;
}

/// Human-readable name ("f32" / "f64").
inline std::string dtype_name(DType t) { return t == DType::kFloat32 ? "f32" : "f64"; }

/// Parse "f32"/"f64"; throws InvalidArgument otherwise.
inline DType dtype_from_name(const std::string& name) {
  if (name == "f32") return DType::kFloat32;
  if (name == "f64") return DType::kFloat64;
  throw InvalidArgument("unknown dtype '" + name + "' (expected f32 or f64)");
}

/// Maps C++ scalar types to DType tags.
template <typename T>
struct dtype_of;

template <>
struct dtype_of<float> {
  static constexpr DType value = DType::kFloat32;
};

template <>
struct dtype_of<double> {
  static constexpr DType value = DType::kFloat64;
};

}  // namespace fraz

#endif  // FRAZ_NDARRAY_DTYPE_HPP
