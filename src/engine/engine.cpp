#include "engine/engine.hpp"

#include "core/loss.hpp"
#include "pressio/registry.hpp"
#include "telemetry/telemetry.hpp"

namespace fraz {

namespace {

// EngineStats stays a plain per-instance struct — its deltas are functional
// (the archive pipeline accounts warm/retrained chunks from them) — so the
// registry gets parallel process-wide totals bumped at the same sites.
telemetry::Counter& tunes_counter() {
  static telemetry::Counter& c = telemetry::global().counter("engine.tunes");
  return c;
}

telemetry::Counter& warm_hits_counter() {
  static telemetry::Counter& c = telemetry::global().counter("engine.warm_hits");
  return c;
}

telemetry::Counter& retrains_counter() {
  static telemetry::Counter& c = telemetry::global().counter("engine.retrains");
  return c;
}

}  // namespace

Engine::Engine(EngineConfig config)
    : config_(std::move(config)),
      compressor_(pressio::registry().create(config_.compressor, config_.compressor_options)),
      bounds_(std::make_shared<BoundStore>()),
      probe_cache_(std::make_shared<ProbeCache>()) {
  // Fail construction, not first use, on a nonsensical tuner config: the
  // Tuner constructor is the validator, so run it once here.
  (void)Tuner(*compressor_, config_.tuner, probe_cache_);
}

Result<Engine> Engine::create(EngineConfig config) noexcept {
  try {
    return Engine(std::move(config));
  } catch (...) {
    return status_from_current_exception();
  }
}

void Engine::adopt_bound_store(BoundStorePtr store) noexcept {
  if (store) bounds_ = std::move(store);
}

void Engine::adopt_probe_cache(ProbeCachePtr cache) noexcept {
  if (cache) probe_cache_ = std::move(cache);
}

Result<TuneResult> Engine::tune(const std::string& field, const ArrayView& data,
                                double target_ratio) noexcept {
  try {
    TunerConfig cfg = config_.tuner;
    cfg.target_ratio = target_ratio;
    const Tuner tuner(*compressor_, cfg, probe_cache_);

    const double prediction = bounds_->get(field, target_ratio);

    TuneResult result = tuner.tune_with_prediction(data, prediction);
    ++stats_.tunes;
    tunes_counter().add();
    stats_.tuner_probe_calls +=
        static_cast<std::size_t>(result.compress_calls - result.probe_cache_hits);
    stats_.probe_cache_hits += static_cast<std::size_t>(result.probe_cache_hits);
    EngineFieldStats& per_field = field_stats_[field];
    ++per_field.tunes;
    if (result.from_prediction) {
      ++stats_.warm_hits;
      ++per_field.warm_hits;
      warm_hits_counter().add();
    } else {
      ++stats_.retrains;
      ++per_field.retrains;
      retrains_counter().add();
    }
    // Algorithm 3's carry rule: only a bound that satisfied the acceptance
    // band is worth warm-starting the next call with.
    if (result.feasible) bounds_->put(field, target_ratio, result.error_bound);
    return result;
  } catch (...) {
    return status_from_current_exception();
  }
}

Status Engine::compress(const std::string& field, const ArrayView& data, Buffer& out,
                        CompressOutcome* outcome) noexcept {
  // Warm path: compress directly at the cached bound and let that archive
  // double as the confirmation probe (warm_archive_probe).  Routing through
  // tune() here would compress twice per steady-state frame — once for the
  // probe, once for the archive — on identical bytes.
  const double target = config_.tuner.target_ratio;
  const double cached = bounds_->get(field, target);
  if (cached > 0) {
    WarmArchive warm;
    const Status s = warm_archive_probe(*compressor_, data, cached, target,
                                        config_.tuner.epsilon, out, warm);
    if (!s.ok()) return s;
    ++stats_.compress_calls;
    ++field_stats_[field].compress_calls;
    if (warm.in_band) {
      ++stats_.tunes;
      ++stats_.warm_hits;
      tunes_counter().add();
      warm_hits_counter().add();
      EngineFieldStats& per_field = field_stats_[field];
      ++per_field.tunes;
      ++per_field.warm_hits;
      if (outcome) *outcome = CompressOutcome{cached, warm.ratio, true, false, true};
      return Status();
    }
    // Drift: the cached bound is proven stale — drop it so the retraining
    // tune() below goes straight to full training instead of re-probing the
    // very bound this archive just measured out-of-band.
    bounds_->erase(field, target);
  }
  Result<TuneResult> tuned = tune(field, data);
  if (!tuned.ok()) return tuned.status();
  const Status s = compress_at(tuned.value().error_bound, data, out);
  if (!s.ok()) return s;
  ++field_stats_[field].compress_calls;
  if (outcome) {
    const double ratio =
        static_cast<double>(data.size_bytes()) / static_cast<double>(out.size());
    *outcome = CompressOutcome{tuned.value().error_bound, ratio, false,
                               !tuned.value().from_prediction,
                               ratio_acceptable(ratio, target, config_.tuner.epsilon)};
  }
  return Status();
}

Status Engine::compress_at(double error_bound, const ArrayView& data, Buffer& out) noexcept {
  try {
    compressor_->set_error_bound(error_bound);
  } catch (...) {
    return status_from_current_exception();
  }
  const Status s = compressor_->compress_into(data, out);
  if (s.ok()) ++stats_.compress_calls;
  return s;
}

Result<NdArray> Engine::decompress(const std::uint8_t* data, std::size_t size) noexcept {
  NdArray out;
  const Status s = compressor_->decompress_into(data, size, out);
  if (!s.ok()) return s;
  ++stats_.decompress_calls;
  return out;
}

Result<pressio::FidelityReport> Engine::evaluate(const std::string& field,
                                                 const ArrayView& data) noexcept {
  Result<TuneResult> tuned = tune(field, data);
  if (!tuned.ok()) return tuned.status();
  try {
    compressor_->set_error_bound(tuned.value().error_bound);
    pressio::FidelityReport report = pressio::evaluate_fidelity(*compressor_, data);
    ++stats_.compress_calls;
    ++stats_.decompress_calls;
    return report;
  } catch (...) {
    return status_from_current_exception();
  }
}

void Engine::seed_bound(const std::string& field, double target_ratio,
                        double bound) noexcept {
  if (!(bound > 0)) return;
  bounds_->put(field, target_ratio, bound);
}

double Engine::cached_bound(const std::string& field, double target_ratio) const noexcept {
  return bounds_->get(field, target_ratio);
}

}  // namespace fraz
