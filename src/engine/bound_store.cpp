#include "engine/bound_store.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "codec/checksum.hpp"
#include "codec/varint.hpp"

namespace fraz {

namespace {

constexpr std::uint32_t kBoundStoreMagic = 0x427a5246u;  // "FRzB" little-endian
constexpr std::uint8_t kBoundStoreVersion = 1;

}  // namespace

double BoundStore::get(const std::string& field, double target_ratio) const noexcept {
  LockGuard lock(mutex_);
  const auto it = bounds_.find(Key{field, target_ratio});
  return it != bounds_.end() ? it->second : 0.0;
}

void BoundStore::put(const std::string& field, double target_ratio, double bound) {
  if (!(bound > 0)) return;
  LockGuard lock(mutex_);
  bounds_[Key{field, target_ratio}] = bound;
}

void BoundStore::erase(const std::string& field, double target_ratio) noexcept {
  LockGuard lock(mutex_);
  bounds_.erase(Key{field, target_ratio});
}

void BoundStore::clear() noexcept {
  LockGuard lock(mutex_);
  bounds_.clear();
}

std::size_t BoundStore::size() const noexcept {
  LockGuard lock(mutex_);
  return bounds_.size();
}

void BoundStore::serialize(Buffer& out) const {
  LockGuard lock(mutex_);
  out.clear();
  put_u32(out, kBoundStoreMagic);
  out.push_back(kBoundStoreVersion);
  put_varint(out, bounds_.size());
  for (const auto& [key, bound] : bounds_) {
    put_varint(out, key.first.size());
    out.append(key.first.data(), key.first.size());
    put_f64(out, key.second);
    put_f64(out, bound);
  }
  put_u32(out, crc32(out.data(), out.size()));
}

Status BoundStore::deserialize(const std::uint8_t* data, std::size_t size) noexcept {
  try {
    // Parse into a scratch map first: a corrupt block must never leave the
    // store half-replaced.  Minimum block: magic + version + varint(0) + CRC
    // — an empty store is a valid checkpoint.
    if (size < 10) return Status::corrupt_stream("bound store: block too small");
    std::size_t pos = 0;
    if (get_u32(data, size, pos) != kBoundStoreMagic)
      return Status::corrupt_stream("bound store: bad magic");
    const std::uint32_t stored_crc = [&] {
      std::size_t p = size - 4;
      return get_u32(data, size, p);
    }();
    if (crc32(data, size - 4) != stored_crc)
      return Status::corrupt_stream("bound store: checksum mismatch");
    if (data[pos++] != kBoundStoreVersion)
      return Status::corrupt_stream("bound store: unsupported version");
    const std::uint64_t count = get_varint(data, size, pos);
    std::map<Key, double> parsed;
    for (std::uint64_t i = 0; i < count; ++i) {
      // No arbitrary length cap: put() accepts any field key, so load()
      // must accept whatever save() wrote — the CRC plus this bounds check
      // are what guard against a malformed block.
      const std::uint64_t name_size = get_varint(data, size, pos);
      if (pos + name_size > size)
        return Status::corrupt_stream("bound store: bad field name");
      std::string field(reinterpret_cast<const char*>(data) + pos,
                        static_cast<std::size_t>(name_size));
      pos += static_cast<std::size_t>(name_size);
      const double target = get_f64(data, size, pos);
      const double bound = get_f64(data, size, pos);
      if (!(bound > 0)) return Status::corrupt_stream("bound store: non-positive bound");
      parsed[Key{std::move(field), target}] = bound;
    }
    if (pos + 4 != size) return Status::corrupt_stream("bound store: trailing bytes");
    LockGuard lock(mutex_);
    bounds_ = std::move(parsed);
    return Status();
  } catch (...) {
    return status_from_current_exception();
  }
}

Status BoundStore::save(const std::string& path) const noexcept {
  try {
    Buffer block;
    serialize(block);
    std::FILE* file = std::fopen(path.c_str(), "wb");
    if (!file)
      return Status::io_error("bound store: cannot open '" + path +
                              "': " + errno_detail(errno));
    const bool wrote =
        block.size() == 0 || std::fwrite(block.data(), 1, block.size(), file) == block.size();
    const int write_errno = wrote ? 0 : errno;
    const bool closed = std::fclose(file) == 0;
    const int close_errno = closed ? 0 : errno;
    if (wrote && closed) return Status();
    std::remove(path.c_str());
    return Status::io_error("bound store: cannot write '" + path +
                            "': " + errno_detail(wrote ? close_errno : write_errno));
  } catch (...) {
    return status_from_current_exception();
  }
}

Status BoundStore::load(const std::string& path) noexcept {
  try {
    std::FILE* file = std::fopen(path.c_str(), "rb");
    if (!file)
      return Status::io_error("bound store: cannot open '" + path +
                              "': " + errno_detail(errno));
    std::vector<std::uint8_t> bytes;
    std::uint8_t chunk[4096];
    std::size_t got;
    while ((got = std::fread(chunk, 1, sizeof chunk, file)) > 0)
      bytes.insert(bytes.end(), chunk, chunk + got);
    const bool read_ok = std::ferror(file) == 0;
    std::fclose(file);
    if (!read_ok)
      return Status::io_error("bound store: cannot read '" + path + "'");
    return deserialize(bytes.data(), bytes.size());
  } catch (...) {
    return status_from_current_exception();
  }
}

}  // namespace fraz
