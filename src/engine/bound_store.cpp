#include "engine/bound_store.hpp"

namespace fraz {

double BoundStore::get(const std::string& field, double target_ratio) const noexcept {
  std::lock_guard lock(mutex_);
  const auto it = bounds_.find(Key{field, target_ratio});
  return it != bounds_.end() ? it->second : 0.0;
}

void BoundStore::put(const std::string& field, double target_ratio, double bound) {
  if (!(bound > 0)) return;
  std::lock_guard lock(mutex_);
  bounds_[Key{field, target_ratio}] = bound;
}

void BoundStore::erase(const std::string& field, double target_ratio) noexcept {
  std::lock_guard lock(mutex_);
  bounds_.erase(Key{field, target_ratio});
}

void BoundStore::clear() noexcept {
  std::lock_guard lock(mutex_);
  bounds_.clear();
}

std::size_t BoundStore::size() const noexcept {
  std::lock_guard lock(mutex_);
  return bounds_.size();
}

}  // namespace fraz
