#ifndef FRAZ_ENGINE_ENGINE_HPP
#define FRAZ_ENGINE_ENGINE_HPP

/// \file engine.hpp
/// The fraz::Engine facade: one object that owns the whole fixed-ratio
/// pipeline — registry-constructed backend, tuner, and a bound cache — so
/// consumers stop hand-wiring registry + Tuner + metrics for every use.
///
/// The cache is the paper's Algorithm 3 time-step reuse promoted into the
/// API: bounds are keyed by (field, target ratio), and every tune through
/// the Engine warm-starts from the last feasible bound for that key.  A
/// climate campaign that calls `compress("CLOUD", step_t)` per time step
/// pays full training once and a single confirmation probe afterwards.
///
/// All entry points are non-throwing (Status / Result), matching the
/// CompressorV2 contract — an Engine is what a long-running service embeds,
/// and a service treats failure as data, not as control flow.

#include <cstdint>
#include <map>
#include <string>
#include <utility>

#include "core/probe.hpp"
#include "core/tuner.hpp"
#include "engine/bound_store.hpp"
#include "pressio/compressor.hpp"
#include "pressio/evaluate.hpp"
#include "util/buffer.hpp"
#include "util/status.hpp"

namespace fraz {

/// Construction-time configuration of an Engine.
struct EngineConfig {
  /// Registered backend name ("sz", "zfp", "mgard", "truncate", or a
  /// user-registered plugin).
  std::string compressor = "sz";
  /// Applied to the backend at construction (Registry::create(name, opts)).
  pressio::Options compressor_options;
  /// Tuning knobs; tuner.target_ratio is the default target for requests
  /// that do not name one.
  TunerConfig tuner;
};

/// Aggregate counters of one Engine's lifetime.
struct EngineStats {
  std::size_t tunes = 0;            ///< tune() / compress() tuning passes
  std::size_t warm_hits = 0;        ///< satisfied by the cached bound alone
  std::size_t retrains = 0;         ///< fell back to full training
  std::size_t compress_calls = 0;   ///< archive-producing compressions
  std::size_t decompress_calls = 0;
  /// Compressor invocations actually spent inside tuning (probes the shared
  /// cache served for free are excluded — they cost no compression).
  std::size_t tuner_probe_calls = 0;
  /// Tuning probes the shared probe cache answered without a compression.
  std::size_t probe_cache_hits = 0;
};

/// Per-field slice of an Engine's counters, keyed by the field name handed
/// to tune()/compress() — what a multi-field campaign reports per stream.
/// (compress_at and decompress are field-less and tracked only in the
/// aggregate EngineStats.)
struct EngineFieldStats {
  std::size_t tunes = 0;
  std::size_t warm_hits = 0;
  std::size_t retrains = 0;
  std::size_t compress_calls = 0;
};

/// Per-call detail of one Engine::compress (what the archive writer records
/// in its chunk index).
struct CompressOutcome {
  double error_bound = 0;     ///< bound the archive was produced at
  double achieved_ratio = 0;  ///< raw bytes / archive bytes of this call
  bool warm = false;          ///< served by the cached bound (archive-as-probe)
  bool retrained = false;     ///< full training ran for this call
  bool in_band = false;       ///< achieved ratio within the acceptance band
};

/// Facade over registry + tuner + bound cache.  Not thread-safe; give each
/// worker its own Engine.  The two caches — the warm BoundStore and the
/// dedup ProbeCache — ARE thread-safe and are meant to be shared: sibling
/// worker Engines adopt one store so every worker warm-starts from the
/// freshest feasible bounds and identical probes are paid once
/// (adopt_bound_store / adopt_probe_cache).
class Engine {
public:
  /// Non-throwing factory: unknown backend names or invalid options come
  /// back as a Status.
  static Result<Engine> create(EngineConfig config) noexcept;

  /// Throwing convenience constructor (setup code, tests).
  explicit Engine(EngineConfig config);

  const EngineConfig& config() const noexcept { return config_; }
  const std::string& compressor_name() const noexcept { return config_.compressor; }

  /// Introspection of the owned backend.
  pressio::Capabilities capabilities() const { return compressor_->capabilities(); }

  /// Find the error bound for \p data at the config's default target ratio,
  /// warm-starting from the cache entry for \p field.
  Result<TuneResult> tune(const std::string& field, const ArrayView& data) noexcept {
    return tune(field, data, config_.tuner.target_ratio);
  }

  /// Same, at an explicit target ratio (cached separately per target).
  Result<TuneResult> tune(const std::string& field, const ArrayView& data,
                          double target_ratio) noexcept;

  /// Tune (cached) then compress \p data into the caller's reusable \p out.
  /// On the warm path the archive itself is the acceptance probe, so an
  /// in-band frame costs exactly one compression; retraining happens only
  /// when the cached bound's achieved ratio drifts out of the band.  When
  /// \p outcome is non-null it receives the bound/ratio/path of this call.
  Status compress(const std::string& field, const ArrayView& data, Buffer& out,
                  CompressOutcome* outcome = nullptr) noexcept;

  /// Compress at an explicit error bound, bypassing tuning and cache.
  Status compress_at(double error_bound, const ArrayView& data, Buffer& out) noexcept;

  /// Decompress an archive produced by this Engine's backend.
  Result<NdArray> decompress(const std::uint8_t* data, std::size_t size) noexcept;

  /// Tune (cached) then run the full fidelity evaluation at the tuned bound.
  Result<pressio::FidelityReport> evaluate(const std::string& field,
                                           const ArrayView& data) noexcept;

  /// Last feasible bound cached for (field, default target); 0 when none.
  double cached_bound(const std::string& field) const noexcept {
    return cached_bound(field, config_.tuner.target_ratio);
  }
  double cached_bound(const std::string& field, double target_ratio) const noexcept;

  /// Inject a known-good bound into the cache (e.g. a bound tuned on a
  /// sibling chunk or restored from a previous run), so the next call for
  /// \p field warm-starts from it instead of paying full training.  A
  /// non-positive \p bound is ignored.
  void seed_bound(const std::string& field, double bound) noexcept {
    seed_bound(field, config_.tuner.target_ratio, bound);
  }
  void seed_bound(const std::string& field, double target_ratio, double bound) noexcept;

  /// Drop every cached bound (e.g. at a simulation restart).  Affects the
  /// adopted store — siblings sharing it forget too.
  void clear_cache() noexcept { bounds_->clear(); }

  /// Share warm-bound knowledge with sibling Engines: replace this Engine's
  /// store with \p store (non-null).  Existing entries of the old store are
  /// not migrated.
  void adopt_bound_store(BoundStorePtr store) noexcept;
  const BoundStorePtr& bound_store() const noexcept { return bounds_; }

  /// Share the probe dedup cache with sibling Engines / tuners (non-null).
  void adopt_probe_cache(ProbeCachePtr cache) noexcept;
  const ProbeCachePtr& probe_cache() const noexcept { return probe_cache_; }

  const EngineStats& stats() const noexcept { return stats_; }

  /// Per-field breakdown of the aggregate counters (empty until a field is
  /// tuned or compressed through this Engine).
  const std::map<std::string, EngineFieldStats>& field_stats() const noexcept {
    return field_stats_;
  }

private:
  EngineConfig config_;
  pressio::CompressorPtr compressor_;
  BoundStorePtr bounds_;        ///< last feasible bound per (field, target)
  ProbeCachePtr probe_cache_;   ///< dedup cache fed to every tuning pass
  EngineStats stats_;
  std::map<std::string, EngineFieldStats> field_stats_;
};

}  // namespace fraz

#endif  // FRAZ_ENGINE_ENGINE_HPP
