#ifndef FRAZ_ENGINE_BOUND_STORE_HPP
#define FRAZ_ENGINE_BOUND_STORE_HPP

/// \file bound_store.hpp
/// The (field, target-ratio) -> last-feasible-error-bound store — the
/// paper's Algorithm 3 warm-start state, extracted from Engine into a
/// standalone, thread-safe object so it can be SHARED.
///
/// An Engine is deliberately not thread-safe (one per worker), but its warm
/// bounds are pure, monotone-improving knowledge about the data: an archive
/// writer gives every per-worker Engine the same store, so every chunk —
/// not only chunk 0 — warm-starts from the freshest feasible bound recorded
/// for *its own* deterministic key.  Because each consumer reads and writes
/// its own keys, sharing never makes results depend on worker scheduling.

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

namespace fraz {

/// Thread-safe map of the last feasible error bound per (field, target).
class BoundStore {
public:
  /// Last feasible bound for the key; 0 when none is known.
  double get(const std::string& field, double target_ratio) const noexcept;

  /// Record a feasible bound (Algorithm 3's carry rule: only a bound that
  /// satisfied the acceptance band is worth warm-starting from).  A
  /// non-positive \p bound is ignored.
  void put(const std::string& field, double target_ratio, double bound);

  /// Forget one key (e.g. a cached bound proven stale by a drift probe).
  void erase(const std::string& field, double target_ratio) noexcept;

  /// Forget everything (e.g. at a simulation restart).
  void clear() noexcept;

  std::size_t size() const noexcept;

private:
  using Key = std::pair<std::string, double>;

  mutable std::mutex mutex_;
  std::map<Key, double> bounds_;
};

using BoundStorePtr = std::shared_ptr<BoundStore>;

}  // namespace fraz

#endif  // FRAZ_ENGINE_BOUND_STORE_HPP
