#ifndef FRAZ_ENGINE_BOUND_STORE_HPP
#define FRAZ_ENGINE_BOUND_STORE_HPP

/// \file bound_store.hpp
/// The (field, target-ratio) -> last-feasible-error-bound store — the
/// paper's Algorithm 3 warm-start state, extracted from Engine into a
/// standalone, thread-safe object so it can be SHARED.
///
/// An Engine is deliberately not thread-safe (one per worker), but its warm
/// bounds are pure, monotone-improving knowledge about the data: an archive
/// writer gives every per-worker Engine the same store, so every chunk —
/// not only chunk 0 — warm-starts from the freshest feasible bound recorded
/// for *its own* deterministic key.  Because each consumer reads and writes
/// its own keys, sharing never makes results depend on worker scheduling.

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>

#include "util/buffer.hpp"
#include "util/status.hpp"
#include "util/thread_annotations.hpp"

namespace fraz {

/// Thread-safe map of the last feasible error bound per (field, target).
class BoundStore {
public:
  /// Last feasible bound for the key; 0 when none is known.
  double get(const std::string& field, double target_ratio) const noexcept;

  /// Record a feasible bound (Algorithm 3's carry rule: only a bound that
  /// satisfied the acceptance band is worth warm-starting from).  A
  /// non-positive \p bound is ignored.
  void put(const std::string& field, double target_ratio, double bound);

  /// Forget one key (e.g. a cached bound proven stale by a drift probe).
  void erase(const std::string& field, double target_ratio) noexcept;

  /// Forget everything (e.g. at a simulation restart).
  void clear() noexcept;

  std::size_t size() const noexcept;

  /// Serialize every entry into \p out (cleared first): a self-framed block
  /// — magic 'FRzB', version, entry count, (field, target, bound) triples,
  /// trailing CRC-32.  Targets and bounds round-trip bit-exactly, so a
  /// restored campaign warm-starts from precisely the bounds it saved.
  void serialize(Buffer& out) const;

  /// Replace this store's contents with a previously serialized block.
  /// Framing, checksum, or version failures come back as a Status and leave
  /// the store untouched; this never throws.
  Status deserialize(const std::uint8_t* data, std::size_t size) noexcept;

  /// serialize() to a file, so a restarted campaign can warm-start from the
  /// bounds of its previous run.  Filesystem failures come back as Status.
  Status save(const std::string& path) const noexcept;

  /// deserialize() from a file written by save().  A missing file is
  /// IoError; a corrupt one is CorruptStream; neither throws and neither
  /// modifies the store.
  Status load(const std::string& path) noexcept;

private:
  using Key = std::pair<std::string, double>;

  mutable Mutex mutex_;
  std::map<Key, double> bounds_ FRAZ_GUARDED_BY(mutex_);
};

using BoundStorePtr = std::shared_ptr<BoundStore>;

}  // namespace fraz

#endif  // FRAZ_ENGINE_BOUND_STORE_HPP
