#include "util/rng.hpp"

#include <cmath>

namespace fraz {

double Rng::mag(double s) noexcept { return std::sqrt(-2.0 * std::log(s) / s); }

}  // namespace fraz
