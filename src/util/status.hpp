#ifndef FRAZ_UTIL_STATUS_HPP
#define FRAZ_UTIL_STATUS_HPP

/// \file status.hpp
/// Non-throwing error model for the hot paths of the compression stack.
///
/// The original seed API threw on every failure, which is fine for setup code
/// but wrong for FRaZ's inner search loop: a tune performs dozens of compress
/// calls and a production service performs millions, so failure must be a
/// value, not a stack unwind.  `Status` carries (code, message); `Result<T>`
/// is either a value or a non-ok Status.  The exception hierarchy in
/// error.hpp remains the currency of the legacy wrappers — the two bridges at
/// the bottom convert losslessly in both directions.

#include <optional>
#include <string>
#include <utility>

#include "util/error.hpp"

namespace fraz {

/// Machine-readable failure category, mirroring the exception hierarchy.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,  ///< argument outside the documented domain
  kUnsupported,      ///< operation not supported by the selected component
  kCorruptStream,    ///< compressed container failed validation
  kIoError,          ///< filesystem operation failed
  kInternal,         ///< unclassified failure (foreign exception, logic bug)
};

/// Name of a status code ("ok", "invalid_argument", ...).
inline const char* status_code_name(StatusCode code) noexcept {
  switch (code) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kInvalidArgument: return "invalid_argument";
    case StatusCode::kUnsupported: return "unsupported";
    case StatusCode::kCorruptStream: return "corrupt_stream";
    case StatusCode::kIoError: return "io_error";
    case StatusCode::kInternal: return "internal";
  }
  return "unknown";
}

/// Success-or-failure of one operation.  Default-constructed = ok.
class Status {
public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  bool ok() const noexcept { return code_ == StatusCode::kOk; }
  StatusCode code() const noexcept { return code_; }
  const std::string& message() const noexcept { return message_; }

  /// "invalid_argument: sz: error bound must be positive" (or "ok").
  std::string to_string() const {
    return ok() ? "ok" : std::string(status_code_name(code_)) + ": " + message_;
  }

  static Status invalid_argument(std::string m) {
    return {StatusCode::kInvalidArgument, std::move(m)};
  }
  static Status unsupported(std::string m) { return {StatusCode::kUnsupported, std::move(m)}; }
  static Status corrupt_stream(std::string m) {
    return {StatusCode::kCorruptStream, std::move(m)};
  }
  static Status io_error(std::string m) { return {StatusCode::kIoError, std::move(m)}; }
  static Status internal(std::string m) { return {StatusCode::kInternal, std::move(m)}; }

private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// A value of type T or a non-ok Status explaining its absence.
template <typename T>
class Result {
public:
  /// Implicit from a value (success).
  Result(T value) : value_(std::move(value)) {}
  /// Implicit from a non-ok Status (failure); ok statuses are a logic error.
  Result(Status status) : status_(std::move(status)) {
    require(!status_.ok(), "Result: constructed from an ok Status without a value");
  }

  bool ok() const noexcept { return value_.has_value(); }
  const Status& status() const noexcept { return status_; }

  /// Access the value; throws the status's exception when absent.
  T& value() &;
  const T& value() const&;
  T&& value() &&;

  /// The value, or \p fallback when this Result holds a failure.
  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

private:
  Status status_;           // ok when value_ holds
  std::optional<T> value_;
};

/// Convert the in-flight exception (inside a catch block) to a Status.
/// fraz::Error subclasses map to their code; anything else is kInternal.
inline Status status_from_current_exception() noexcept {
  try {
    throw;
  } catch (const InvalidArgument& e) {
    return Status::invalid_argument(e.what());
  } catch (const CorruptStream& e) {
    return Status::corrupt_stream(e.what());
  } catch (const Unsupported& e) {
    return Status::unsupported(e.what());
  } catch (const IoError& e) {
    return Status::io_error(e.what());
  } catch (const std::exception& e) {
    return Status::internal(e.what());
  } catch (...) {
    return Status::internal("unknown exception");
  }
}

/// Rethrow a non-ok Status as the matching fraz exception (legacy wrappers).
[[noreturn]] inline void throw_status(const Status& status) {
  switch (status.code()) {
    case StatusCode::kInvalidArgument: throw InvalidArgument(status.message());
    case StatusCode::kCorruptStream: throw CorruptStream(status.message());
    case StatusCode::kUnsupported: throw Unsupported(status.message());
    case StatusCode::kIoError: throw IoError(status.message());
    default: throw Error(status.to_string());
  }
}

template <typename T>
T& Result<T>::value() & {
  if (!ok()) throw_status(status_);
  return *value_;
}

template <typename T>
const T& Result<T>::value() const& {
  if (!ok()) throw_status(status_);
  return *value_;
}

template <typename T>
T&& Result<T>::value() && {
  if (!ok()) throw_status(status_);
  return std::move(*value_);
}

}  // namespace fraz

#endif  // FRAZ_UTIL_STATUS_HPP
