/// Portable fixed-width SIMD shim.
///
/// The ISA is selected at *compile time per translation unit*: a TU compiled
/// with `-mavx2` sees the AVX2 types, a baseline x86-64 TU sees SSE2, an
/// aarch64 TU sees NEON, and anything else falls back to scalar structs with
/// the same API.  Kernels that want wider-than-baseline code live in
/// dedicated `*_simd.cpp` files that CMake compiles with extra flags; their
/// callers stay in baseline TUs and dispatch through `isa_id()` +
/// `cpu_has_avx2()` so a binary built on an AVX2 box still runs (on the
/// scalar reference path) on a pre-AVX2 CPU.
///
/// Dispatch contract: a `*_simd.cpp` TU exports its compile-time `isa_id()`;
/// the baseline caller may enter that TU only when the reported ISA is
/// runtime-supported (`kAvx2` requires `cpu_has_avx2()`; `kSse2`/`kNeon` are
/// baseline-guaranteed on their targets).  Never call into an AVX2-compiled
/// TU — not even its "scalar" paths — without the runtime check, since the
/// whole TU is VEX-encoded.
///
/// Floating-point bit-identity: vector kernels must produce bit-identical
/// results to their scalar references.  CMake therefore compiles `*_simd.cpp`
/// with `-ffp-contract=off` (the baseline build has no FMA, so contraction
/// in the wide TU would be the one source of divergence), and the shim
/// exposes only plain mul/add — no fused ops.
#ifndef FRAZ_UTIL_SIMD_HPP
#define FRAZ_UTIL_SIMD_HPP

#include <cmath>
#include <cstdint>
#include <cstring>

#if defined(__AVX2__)
#define FRAZ_SIMD_AVX2 1
#include <immintrin.h>
#elif defined(__SSE2__) || defined(__x86_64__) || defined(_M_X64)
#define FRAZ_SIMD_SSE2 1
#include <emmintrin.h>
#elif defined(__ARM_NEON) || defined(__aarch64__)
#define FRAZ_SIMD_NEON 1
#include <arm_neon.h>
#else
#define FRAZ_SIMD_SCALAR 1
#endif

namespace fraz::simd {

enum : int { kScalar = 0, kSse2 = 1, kAvx2 = 2, kNeon = 3 };

constexpr int isa_id() {
#if defined(FRAZ_SIMD_AVX2)
  return kAvx2;
#elif defined(FRAZ_SIMD_SSE2)
  return kSse2;
#elif defined(FRAZ_SIMD_NEON)
  return kNeon;
#else
  return kScalar;
#endif
}

constexpr const char* isa_name() {
#if defined(FRAZ_SIMD_AVX2)
  return "avx2";
#elif defined(FRAZ_SIMD_SSE2)
  return "sse2";
#elif defined(FRAZ_SIMD_NEON)
  return "neon";
#else
  return "scalar";
#endif
}

/// Runtime CPU check, defined in a baseline TU (simd.cpp) so it is safe to
/// call before any wide code executes.
bool cpu_has_avx2() noexcept;

/// True when a TU compiled with ISA `id` may be entered on this CPU.
bool isa_runtime_ok(int id) noexcept;

// ---------------------------------------------------------------------------
// V4i32 — four 32-bit lanes.  SSE2 / AVX2(VEX SSE) / NEON / scalar.
// ---------------------------------------------------------------------------
#if defined(FRAZ_SIMD_SSE2) || defined(FRAZ_SIMD_AVX2)

struct V4i32 {
  __m128i v;
  static V4i32 load(const std::int32_t* p) {
    return {_mm_loadu_si128(reinterpret_cast<const __m128i*>(p))};
  }
  void store(std::int32_t* p) const {
    _mm_storeu_si128(reinterpret_cast<__m128i*>(p), v);
  }
};
inline V4i32 add(V4i32 a, V4i32 b) { return {_mm_add_epi32(a.v, b.v)}; }
inline V4i32 sub(V4i32 a, V4i32 b) { return {_mm_sub_epi32(a.v, b.v)}; }
inline V4i32 sra1(V4i32 a) { return {_mm_srai_epi32(a.v, 1)}; }
inline V4i32 vor(V4i32 a, V4i32 b) { return {_mm_or_si128(a.v, b.v)}; }
inline void transpose4(V4i32& r0, V4i32& r1, V4i32& r2, V4i32& r3) {
  const __m128i t0 = _mm_unpacklo_epi32(r0.v, r1.v);
  const __m128i t1 = _mm_unpackhi_epi32(r0.v, r1.v);
  const __m128i t2 = _mm_unpacklo_epi32(r2.v, r3.v);
  const __m128i t3 = _mm_unpackhi_epi32(r2.v, r3.v);
  r0.v = _mm_unpacklo_epi64(t0, t2);
  r1.v = _mm_unpackhi_epi64(t0, t2);
  r2.v = _mm_unpacklo_epi64(t1, t3);
  r3.v = _mm_unpackhi_epi64(t1, t3);
}

#elif defined(FRAZ_SIMD_NEON)

struct V4i32 {
  int32x4_t v;
  static V4i32 load(const std::int32_t* p) { return {vld1q_s32(p)}; }
  void store(std::int32_t* p) const { vst1q_s32(p, v); }
};
inline V4i32 add(V4i32 a, V4i32 b) { return {vaddq_s32(a.v, b.v)}; }
inline V4i32 sub(V4i32 a, V4i32 b) { return {vsubq_s32(a.v, b.v)}; }
inline V4i32 sra1(V4i32 a) { return {vshrq_n_s32(a.v, 1)}; }
inline V4i32 vor(V4i32 a, V4i32 b) { return {vorrq_s32(a.v, b.v)}; }
inline void transpose4(V4i32& r0, V4i32& r1, V4i32& r2, V4i32& r3) {
  const int32x4x2_t t01 = vtrnq_s32(r0.v, r1.v);
  const int32x4x2_t t23 = vtrnq_s32(r2.v, r3.v);
  r0.v = vcombine_s32(vget_low_s32(t01.val[0]), vget_low_s32(t23.val[0]));
  r1.v = vcombine_s32(vget_low_s32(t01.val[1]), vget_low_s32(t23.val[1]));
  r2.v = vcombine_s32(vget_high_s32(t01.val[0]), vget_high_s32(t23.val[0]));
  r3.v = vcombine_s32(vget_high_s32(t01.val[1]), vget_high_s32(t23.val[1]));
}

#else  // scalar fallback

struct V4i32 {
  std::int32_t v[4];
  static V4i32 load(const std::int32_t* p) {
    V4i32 r;
    std::memcpy(r.v, p, sizeof(r.v));
    return r;
  }
  void store(std::int32_t* p) const { std::memcpy(p, v, sizeof(v)); }
};
inline V4i32 add(V4i32 a, V4i32 b) {
  V4i32 r;
  for (int i = 0; i < 4; ++i)
    r.v[i] = static_cast<std::int32_t>(static_cast<std::uint32_t>(a.v[i]) +
                                       static_cast<std::uint32_t>(b.v[i]));
  return r;
}
inline V4i32 sub(V4i32 a, V4i32 b) {
  V4i32 r;
  for (int i = 0; i < 4; ++i)
    r.v[i] = static_cast<std::int32_t>(static_cast<std::uint32_t>(a.v[i]) -
                                       static_cast<std::uint32_t>(b.v[i]));
  return r;
}
inline V4i32 sra1(V4i32 a) {
  V4i32 r;
  for (int i = 0; i < 4; ++i) r.v[i] = a.v[i] >> 1;
  return r;
}
inline V4i32 vor(V4i32 a, V4i32 b) {
  V4i32 r;
  for (int i = 0; i < 4; ++i)
    r.v[i] = static_cast<std::int32_t>(static_cast<std::uint32_t>(a.v[i]) |
                                       static_cast<std::uint32_t>(b.v[i]));
  return r;
}
inline void transpose4(V4i32& r0, V4i32& r1, V4i32& r2, V4i32& r3) {
  V4i32 c0{{r0.v[0], r1.v[0], r2.v[0], r3.v[0]}};
  V4i32 c1{{r0.v[1], r1.v[1], r2.v[1], r3.v[1]}};
  V4i32 c2{{r0.v[2], r1.v[2], r2.v[2], r3.v[2]}};
  V4i32 c3{{r0.v[3], r1.v[3], r2.v[3], r3.v[3]}};
  r0 = c0;
  r1 = c1;
  r2 = c2;
  r3 = c3;
}

#endif

// ---------------------------------------------------------------------------
// V4i64 / V4d — four 64-bit lanes.  AVX2 only; FRAZ_SIMD_HAS_WIDE64 gates
// kernels that need them (callers fall back to their scalar reference when
// the macro is absent).
// ---------------------------------------------------------------------------
#if defined(FRAZ_SIMD_AVX2)
#define FRAZ_SIMD_HAS_WIDE64 1

struct V4i64 {
  __m256i v;
  static V4i64 load(const std::int64_t* p) {
    return {_mm256_loadu_si256(reinterpret_cast<const __m256i*>(p))};
  }
  void store(std::int64_t* p) const {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
  }
};
inline V4i64 add(V4i64 a, V4i64 b) { return {_mm256_add_epi64(a.v, b.v)}; }
inline V4i64 sub(V4i64 a, V4i64 b) { return {_mm256_sub_epi64(a.v, b.v)}; }
/// Arithmetic >> 1 (no native 64-bit sra in AVX2): logical shift plus
/// sign-bit replication into the vacated top bit.
inline V4i64 sra1(V4i64 a) {
  const __m256i sign = _mm256_cmpgt_epi64(_mm256_setzero_si256(), a.v);
  return {_mm256_or_si256(_mm256_srli_epi64(a.v, 1), _mm256_slli_epi64(sign, 63))};
}
inline void transpose4(V4i64& r0, V4i64& r1, V4i64& r2, V4i64& r3) {
  const __m256i t0 = _mm256_unpacklo_epi64(r0.v, r1.v);
  const __m256i t1 = _mm256_unpackhi_epi64(r0.v, r1.v);
  const __m256i t2 = _mm256_unpacklo_epi64(r2.v, r3.v);
  const __m256i t3 = _mm256_unpackhi_epi64(r2.v, r3.v);
  r0.v = _mm256_permute2x128_si256(t0, t2, 0x20);
  r1.v = _mm256_permute2x128_si256(t1, t3, 0x20);
  r2.v = _mm256_permute2x128_si256(t0, t2, 0x31);
  r3.v = _mm256_permute2x128_si256(t1, t3, 0x31);
}

struct V4d {
  __m256d v;
  static V4d load(const double* p) { return {_mm256_loadu_pd(p)}; }
  static V4d load4f(const float* p) { return {_mm256_cvtps_pd(_mm_loadu_ps(p))}; }
  static V4d bcast(double x) { return {_mm256_set1_pd(x)}; }
  void store(double* p) const { _mm256_storeu_pd(p, v); }
};
inline V4d add(V4d a, V4d b) { return {_mm256_add_pd(a.v, b.v)}; }
inline V4d sub(V4d a, V4d b) { return {_mm256_sub_pd(a.v, b.v)}; }
inline V4d mul(V4d a, V4d b) { return {_mm256_mul_pd(a.v, b.v)}; }
inline V4d div(V4d a, V4d b) { return {_mm256_div_pd(a.v, b.v)}; }
inline V4d vmin(V4d a, V4d b) { return {_mm256_min_pd(a.v, b.v)}; }
inline V4d vmax(V4d a, V4d b) { return {_mm256_max_pd(a.v, b.v)}; }
inline V4d trunc(V4d a) {
  return {_mm256_round_pd(a.v, _MM_FROUND_TO_ZERO | _MM_FROUND_NO_EXC)};
}
inline V4d vabs(V4d a) {
  return {_mm256_andnot_pd(_mm256_set1_pd(-0.0), a.v)};
}
/// Ordered comparisons producing an all-ones/all-zero lane mask.
inline V4d cmp_le(V4d a, V4d b) { return {_mm256_cmp_pd(a.v, b.v, _CMP_LE_OQ)}; }
inline V4d cmp_lt(V4d a, V4d b) { return {_mm256_cmp_pd(a.v, b.v, _CMP_LT_OQ)}; }
inline V4d cmp_eq(V4d a, V4d b) { return {_mm256_cmp_pd(a.v, b.v, _CMP_EQ_OQ)}; }
inline V4d mask_and(V4d a, V4d b) { return {_mm256_and_pd(a.v, b.v)}; }
inline int movemask(V4d m) { return _mm256_movemask_pd(m.v); }
inline V4d blend(V4d mask, V4d on, V4d off) {
  return {_mm256_blendv_pd(off.v, on.v, mask.v)};
}
/// Lane-wise (double)(int32) widening of the low 4 x i32.
inline V4d to_f64(V4i32 a) { return {_mm256_cvtepi32_pd(a.v)}; }
/// Round-to-nearest-even narrowing to i32 (inputs must be in i32 range; the
/// kernels only convert already-truncated integral values).
inline V4i32 to_i32(V4d a) { return {_mm256_cvtpd_epi32(a.v)}; }
/// Narrow to 4 floats with the same rounding as a scalar (float) cast.
inline void store4f(V4d a, float* p) { _mm_storeu_ps(p, _mm256_cvtpd_ps(a.v)); }
/// Lane-wise double -> float -> double, matching `(double)(float)x` exactly.
inline V4d f32_roundtrip(V4d a) { return {_mm256_cvtps_pd(_mm256_cvtpd_ps(a.v))}; }

#endif  // FRAZ_SIMD_AVX2

}  // namespace fraz::simd

#endif  // FRAZ_UTIL_SIMD_HPP
