#ifndef FRAZ_UTIL_TABLE_HPP
#define FRAZ_UTIL_TABLE_HPP

/// \file table.hpp
/// ASCII table and CSV emitters used by the benchmark harnesses so that every
/// table/figure reproduction prints in a uniform, machine-parsable way.

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace fraz {

/// Column-aligned ASCII table with an optional CSV rendering.
///
/// Usage:
/// \code
///   Table t({"bitrate", "psnr_db"});
///   t.add_row({"4.00", "88.3"});
///   t.print(std::cout);
/// \endcode
class Table {
public:
  explicit Table(std::vector<std::string> header);

  /// Append one row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Number of data rows (excluding the header).
  std::size_t rows() const noexcept { return rows_.size(); }

  /// Render with padded columns and a rule under the header.
  void print(std::ostream& os) const;

  /// Render as RFC-4180-ish CSV (no quoting needed for our numeric cells).
  void print_csv(std::ostream& os) const;

  /// Format a double with fixed precision; convenience for bench code.
  static std::string num(double v, int precision = 3);

private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace fraz

#endif  // FRAZ_UTIL_TABLE_HPP
