#include "util/cli.hpp"

#include <cstdio>
#include <cstdlib>

#include "util/error.hpp"

namespace fraz {

Cli::Cli(std::string description) : description_(std::move(description)) {}

void Cli::add_string(const std::string& name, std::string default_value, std::string help) {
  options_[name] = Option{Option::Kind::kString, std::move(default_value), std::move(help), {}};
}

void Cli::add_double(const std::string& name, double default_value, std::string help) {
  options_[name] = Option{Option::Kind::kDouble, std::to_string(default_value), std::move(help), {}};
}

void Cli::add_int(const std::string& name, std::int64_t default_value, std::string help) {
  options_[name] = Option{Option::Kind::kInt, std::to_string(default_value), std::move(help), {}};
}

void Cli::add_flag(const std::string& name, std::string help) {
  options_[name] = Option{Option::Kind::kBool, "0", std::move(help), {}};
}

void Cli::add_list(const std::string& name, std::string help) {
  options_[name] = Option{Option::Kind::kList, "", std::move(help), {}};
}

bool Cli::parse(int argc, const char* const* argv) {
  program_ = argc > 0 ? argv[0] : "program";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_help();
      return false;
    }
    require(arg.size() > 2 && arg.substr(0, 2) == "--", "Cli: expected --flag, got '" + arg + "'");
    arg = arg.substr(2);
    std::string value;
    bool has_value = false;
    if (auto eq = arg.find('='); eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
      has_value = true;
    }
    auto it = options_.find(arg);
    require(it != options_.end(), "Cli: unknown flag '--" + arg + "'");
    if (it->second.kind == Option::Kind::kBool) {
      it->second.value = has_value ? value : "1";
    } else {
      if (!has_value) {
        require(i + 1 < argc, "Cli: flag '--" + arg + "' requires a value");
        value = argv[++i];
      }
      if (it->second.kind == Option::Kind::kList)
        it->second.values.push_back(value);
      else
        it->second.value = value;
    }
  }
  return true;
}

const Cli::Option& Cli::find(const std::string& name, Option::Kind kind) const {
  auto it = options_.find(name);
  require(it != options_.end(), "Cli: flag '--" + name + "' was never registered");
  require(it->second.kind == kind, "Cli: flag '--" + name + "' accessed with wrong type");
  return it->second;
}

std::string Cli::get_string(const std::string& name) const {
  return find(name, Option::Kind::kString).value;
}

double Cli::get_double(const std::string& name) const {
  return std::strtod(find(name, Option::Kind::kDouble).value.c_str(), nullptr);
}

std::int64_t Cli::get_int(const std::string& name) const {
  return std::strtoll(find(name, Option::Kind::kInt).value.c_str(), nullptr, 10);
}

bool Cli::get_flag(const std::string& name) const {
  return find(name, Option::Kind::kBool).value != "0";
}

const std::vector<std::string>& Cli::get_list(const std::string& name) const {
  return find(name, Option::Kind::kList).values;
}

void Cli::print_help() const {
  std::printf("%s\n\nusage: %s [flags]\n\nflags:\n", description_.c_str(), program_.c_str());
  for (const auto& [name, opt] : options_) {
    if (opt.kind == Option::Kind::kList) {
      std::printf("  --%-24s %s (repeatable)\n", name.c_str(), opt.help.c_str());
      continue;
    }
    std::printf("  --%-24s %s (default: %s)\n", name.c_str(), opt.help.c_str(),
                opt.kind == Option::Kind::kBool ? (opt.value == "0" ? "off" : "on")
                                                : opt.value.c_str());
  }
}

}  // namespace fraz
