#ifndef FRAZ_UTIL_BUFFER_HPP
#define FRAZ_UTIL_BUFFER_HPP

/// \file buffer.hpp
/// Caller-owned, grow-only output buffer for the zero-copy compress path.
///
/// FRaZ's search performs dozens of compress calls per tune; a production
/// service performs millions.  Returning a fresh std::vector per call makes
/// the allocator a hot-path participant.  Buffer instead keeps its capacity
/// across reuse: `clear()` resets the size but never releases memory, so
/// after the first call at the largest output size every further
/// `compress_into` writes into already-owned storage.
///
/// The allocation counter exists so tests and benches can *prove* the
/// zero-allocation steady state instead of asserting it by folklore.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace fraz {

/// Grow-only byte buffer with an allocation counter.
class Buffer {
public:
  Buffer() = default;

  std::uint8_t* data() noexcept { return data_; }
  const std::uint8_t* data() const noexcept { return data_; }
  std::size_t size() const noexcept { return size_; }
  std::size_t capacity() const noexcept { return capacity_; }
  bool empty() const noexcept { return size_ == 0; }

  const std::uint8_t* begin() const noexcept { return data_; }
  const std::uint8_t* end() const noexcept { return data_ + size_; }

  /// Reset the size to zero.  Capacity (and therefore memory) is retained —
  /// this is the call that makes reuse allocation-free.
  void clear() noexcept { size_ = 0; }

  /// Ensure capacity for at least \p n bytes (existing contents preserved).
  void reserve(std::size_t n);

  /// Set the size to \p n, growing capacity if needed.  Newly exposed bytes
  /// are uninitialized — callers are expected to overwrite them.
  void resize(std::size_t n) {
    reserve(n);
    size_ = n;
  }

  /// Append \p n bytes from \p src.
  void append(const void* src, std::size_t n);

  void push_back(std::uint8_t byte) {
    if (size_ == capacity_) reserve(size_ + 1);
    data_[size_++] = byte;
  }

  /// Number of times the buffer had to acquire a new allocation.  Stable
  /// across reuse once the high-water capacity is reached.
  std::size_t allocations() const noexcept { return allocations_; }

  /// Copy out as a std::vector (legacy-API bridges only; allocates).
  std::vector<std::uint8_t> to_vector() const { return {data_, data_ + size_}; }

  Buffer(const Buffer&) = delete;
  Buffer& operator=(const Buffer&) = delete;
  Buffer(Buffer&& other) noexcept { swap(other); }
  Buffer& operator=(Buffer&& other) noexcept {
    if (this != &other) swap(other);
    return *this;
  }
  ~Buffer();

  void swap(Buffer& other) noexcept;

private:
  std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t capacity_ = 0;
  std::size_t allocations_ = 0;
};

}  // namespace fraz

#endif  // FRAZ_UTIL_BUFFER_HPP
