#ifndef FRAZ_UTIL_TIMER_HPP
#define FRAZ_UTIL_TIMER_HPP

/// \file timer.hpp
/// Monotonic wall-clock timing helpers used by the benches and the tuner's
/// bookkeeping.

#include <chrono>

namespace fraz {

/// A simple monotonic stopwatch.
class Timer {
public:
  Timer() noexcept : start_(Clock::now()) {}

  /// Restart the stopwatch.
  void reset() noexcept { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last reset().
  double millis() const noexcept { return seconds() * 1e3; }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace fraz

#endif  // FRAZ_UTIL_TIMER_HPP
