#ifndef FRAZ_UTIL_RNG_HPP
#define FRAZ_UTIL_RNG_HPP

/// \file rng.hpp
/// Deterministic, seedable random number generation.
///
/// Every stochastic component in fraz (the global optimizer's candidate
/// sampling, synthetic dataset generation) draws from these generators so that
/// results are bit-reproducible across runs and platforms.  std::mt19937 is
/// deliberately avoided for the data path: distribution implementations differ
/// between standard libraries, which would break reproducibility.

#include <cstdint>

namespace fraz {

/// SplitMix64: tiny, fast generator used for seeding and cheap streams.
class SplitMix64 {
public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

private:
  std::uint64_t state_;
};

/// xoshiro256**: the main generator.  Seeded from SplitMix64 per the
/// reference implementation's recommendation.
class Rng {
public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedull) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~std::uint64_t{0}; }

  result_type operator()() noexcept { return next(); }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).  Uses the top 53 bits; platform independent.
  double uniform() noexcept { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n).  n must be > 0.  Uses rejection to avoid
  /// modulo bias.
  std::uint64_t below(std::uint64_t n) noexcept {
    const std::uint64_t threshold = (~n + 1) % n;  // = 2^64 mod n
    for (;;) {
      const std::uint64_t r = next();
      if (r >= threshold) return r % n;
    }
  }

  /// Standard normal via Marsaglia polar method (deterministic given state).
  double normal() noexcept {
    if (have_spare_) {
      have_spare_ = false;
      return spare_;
    }
    double u, v, s;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double m = mag(s);
    spare_ = v * m;
    have_spare_ = true;
    return u * m;
  }

private:
  static std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  static double mag(double s) noexcept;

  std::uint64_t s_[4]{};
  double spare_ = 0.0;
  bool have_spare_ = false;
};

}  // namespace fraz

#endif  // FRAZ_UTIL_RNG_HPP
