/// Baseline-compiled runtime CPU detection for the SIMD dispatch contract
/// (see simd.hpp).  Must stay free of wide intrinsics: it runs before any
/// dispatch decision, possibly on a CPU older than the widest compiled TU.
#include "util/simd.hpp"

namespace fraz::simd {

bool cpu_has_avx2() noexcept {
#if (defined(__x86_64__) || defined(_M_X64)) && defined(__GNUC__)
  static const bool ok = __builtin_cpu_supports("avx2") != 0;
  return ok;
#else
  return false;
#endif
}

bool isa_runtime_ok(const int id) noexcept {
  switch (id) {
    case kAvx2:
      return cpu_has_avx2();
    case kSse2:  // baseline on x86-64
    case kNeon:  // baseline on aarch64
    case kScalar:
      return true;
    default:
      return false;
  }
}

}  // namespace fraz::simd
