#ifndef FRAZ_UTIL_THREAD_ANNOTATIONS_HPP
#define FRAZ_UTIL_THREAD_ANNOTATIONS_HPP

/// \file thread_annotations.hpp
/// Compile-time concurrency contracts: Clang thread-safety annotation macros
/// plus the annotated `fraz::Mutex` / `fraz::LockGuard` / `fraz::UniqueLock`
/// / `fraz::CondVar` wrappers every lock-bearing subsystem uses.
///
/// FRaZ's core guarantees — bit-identical tuned bounds and byte-identical
/// packs at any worker count — rest on lock discipline spread across eight
/// concurrent subsystems (ProbeCache, BoundStore, ChunkCache, ReaderPool,
/// ThreadPool, the telemetry registry, the archive ChunkPipeline, serve
/// sessions).  TSan samples executions; these annotations are exhaustive:
/// `clang++ -Wthread-safety -Werror` (the `tools/lint.sh` / CI lint gate)
/// turns every future guarded-state access outside its lock into a compile
/// error.  Under GCC (or any non-Clang compiler) every macro expands to
/// nothing and the wrappers are zero-cost veneers over the std primitives,
/// so the Tier-1 build is unaffected.
///
/// House rules (see docs/API.md "Concurrency contracts"):
///  - every mutex-guarded member carries FRAZ_GUARDED_BY(its mutex);
///  - every `*_locked()` helper carries FRAZ_REQUIRES(its mutex);
///  - condition waits are explicit `while (!pred) cv.wait(lock)` loops, not
///    predicate-lambda waits — the analysis cannot see into a lambda, and
///    the loop form keeps every guarded read visibly under the lock;
///  - new shared state MUST be annotated before it lands (the lint gate
///    makes forgetting the lock a build break, but only for annotated
///    members — an unannotated member is invisible to the analysis).

#include <condition_variable>
#include <mutex>

// Raw attribute spelling, compiled out everywhere except Clang.  SWIG and
// clangd both define __clang__, which is exactly what we want: the IDE shows
// lock-discipline errors inline even when the build compiler is GCC.
#if defined(__clang__)
#define FRAZ_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define FRAZ_THREAD_ANNOTATION(x)  // no-op off Clang
#endif

/// Declares a type to be a lockable capability ("mutex" by convention).
#define FRAZ_CAPABILITY(x) FRAZ_THREAD_ANNOTATION(capability(x))

/// Declares an RAII type whose lifetime holds a capability.
#define FRAZ_SCOPED_CAPABILITY FRAZ_THREAD_ANNOTATION(scoped_lockable)

/// Member may only be touched while holding the named capability.
#define FRAZ_GUARDED_BY(x) FRAZ_THREAD_ANNOTATION(guarded_by(x))

/// Pointee (not the pointer) is guarded by the named capability.
#define FRAZ_PT_GUARDED_BY(x) FRAZ_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function requires the capability held on entry (a `*_locked()` helper).
#define FRAZ_REQUIRES(...) \
  FRAZ_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function must NOT be entered with the capability held (deadlock guard).
#define FRAZ_EXCLUDES(...) FRAZ_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function acquires the capability (held on return).
#define FRAZ_ACQUIRE(...) \
  FRAZ_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases the capability (held on entry, released on return).
#define FRAZ_RELEASE(...) \
  FRAZ_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function conditionally acquires: holds the capability iff it returned
/// \p result (e.g. FRAZ_TRY_ACQUIRE(true) on try_lock).
#define FRAZ_TRY_ACQUIRE(...) \
  FRAZ_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Function returns a reference to the named capability (accessor pattern).
#define FRAZ_RETURN_CAPABILITY(x) FRAZ_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch for code the analysis cannot model (document why at the
/// use site; every use needs a rationale comment).
#define FRAZ_NO_THREAD_SAFETY_ANALYSIS \
  FRAZ_THREAD_ANNOTATION(no_thread_safety_analysis)

/// Lock-acquisition ordering, for deadlock detection across mutexes.
#define FRAZ_ACQUIRED_BEFORE(...) \
  FRAZ_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define FRAZ_ACQUIRED_AFTER(...) \
  FRAZ_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

namespace fraz {

/// std::mutex with the capability attribute, so members can be declared
/// FRAZ_GUARDED_BY(mutex_) and the analysis tracks acquire/release through
/// the annotated entry points below.  Zero-cost: the wrapper adds no state
/// and every method is a forwarding inline.
class FRAZ_CAPABILITY("mutex") Mutex {
public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() FRAZ_ACQUIRE() { mutex_.lock(); }
  void unlock() FRAZ_RELEASE() { mutex_.unlock(); }
  bool try_lock() FRAZ_TRY_ACQUIRE(true) { return mutex_.try_lock(); }

  /// The wrapped std::mutex, for interop the analysis cannot follow (the
  /// scoped wrappers below use it; annotated code should not need it).
  std::mutex& native() noexcept { return mutex_; }

private:
  std::mutex mutex_;
};

/// Scoped lock over a fraz::Mutex — std::lock_guard with the scoped
/// capability attributes, so the analysis knows the guarded region's extent.
class FRAZ_SCOPED_CAPABILITY LockGuard {
public:
  explicit LockGuard(Mutex& mutex) FRAZ_ACQUIRE(mutex) : lock_(mutex.native()) {}
  ~LockGuard() FRAZ_RELEASE() {}

  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

private:
  std::lock_guard<std::mutex> lock_;
};

/// Scoped lock that a CondVar can wait on (std::unique_lock semantics).
/// CondVar::wait atomically releases and reacquires; from the analysis's
/// point of view the capability is held for the whole wait, which is exactly
/// right for the guarded reads on either side of it.
class FRAZ_SCOPED_CAPABILITY UniqueLock {
public:
  explicit UniqueLock(Mutex& mutex) FRAZ_ACQUIRE(mutex) : lock_(mutex.native()) {}
  ~UniqueLock() FRAZ_RELEASE() {}

  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

  /// The wrapped lock, for CondVar::wait.
  std::unique_lock<std::mutex>& native() noexcept { return lock_; }

private:
  std::unique_lock<std::mutex> lock_;
};

/// Condition variable over fraz::UniqueLock.  Deliberately exposes only the
/// plain wait — predicate waits hide guarded reads inside a lambda the
/// analysis cannot see into, so call sites spell the loop:
///
///     UniqueLock lock(mutex_);
///     while (!done_) cv_.wait(lock);
class CondVar {
public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(UniqueLock& lock) { cv_.wait(lock.native()); }
  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

private:
  std::condition_variable cv_;
};

}  // namespace fraz

#endif  // FRAZ_UTIL_THREAD_ANNOTATIONS_HPP
