#ifndef FRAZ_UTIL_PGM_HPP
#define FRAZ_UTIL_PGM_HPP

/// \file pgm.hpp
/// Grayscale PGM image output.  Used by the Fig. 10 reproduction to dump 2D
/// slices of original vs. decompressed fields for visual inspection.

#include <cstddef>
#include <string>
#include <vector>

namespace fraz {

/// Write \p values (row-major, height x width) as an 8-bit binary PGM,
/// linearly mapping [min, max] of the data to [0, 255].
/// Throws IoError when the file cannot be written.
void write_pgm(const std::string& path, const std::vector<double>& values, std::size_t width,
               std::size_t height);

}  // namespace fraz

#endif  // FRAZ_UTIL_PGM_HPP
