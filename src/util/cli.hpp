#ifndef FRAZ_UTIL_CLI_HPP
#define FRAZ_UTIL_CLI_HPP

/// \file cli.hpp
/// Minimal command-line flag parser shared by the examples and bench drivers.
///
/// Supports `--name value` and `--name=value` forms plus boolean switches.
/// Unknown flags raise InvalidArgument so typos fail loudly.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace fraz {

/// Declarative flag parser.
class Cli {
public:
  /// \param description one-line program description shown by --help.
  explicit Cli(std::string description);

  /// Register a string flag with a default.
  void add_string(const std::string& name, std::string default_value, std::string help);
  /// Register a floating-point flag with a default.
  void add_double(const std::string& name, double default_value, std::string help);
  /// Register an integer flag with a default.
  void add_int(const std::string& name, std::int64_t default_value, std::string help);
  /// Register a boolean switch (present => true).
  void add_flag(const std::string& name, std::string help);
  /// Register a repeatable string flag (each occurrence appends a value).
  void add_list(const std::string& name, std::string help);

  /// Parse argv.  Returns false when --help was requested (help text printed
  /// to stdout); throws InvalidArgument on unknown or malformed flags.
  bool parse(int argc, const char* const* argv);

  std::string get_string(const std::string& name) const;
  double get_double(const std::string& name) const;
  std::int64_t get_int(const std::string& name) const;
  bool get_flag(const std::string& name) const;
  /// Every value a repeatable flag received, in command-line order.
  const std::vector<std::string>& get_list(const std::string& name) const;

private:
  struct Option {
    enum class Kind { kString, kDouble, kInt, kBool, kList } kind;
    std::string value;  // canonical textual value (unused for kList)
    std::string help;
    std::vector<std::string> values;  // kList occurrences
  };
  const Option& find(const std::string& name, Option::Kind kind) const;
  void print_help() const;

  std::string description_;
  std::string program_;
  std::map<std::string, Option> options_;
};

}  // namespace fraz

#endif  // FRAZ_UTIL_CLI_HPP
