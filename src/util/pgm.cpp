#include "util/pgm.hpp"

#include <algorithm>
#include <cstdint>
#include <fstream>

#include "util/error.hpp"

namespace fraz {

void write_pgm(const std::string& path, const std::vector<double>& values, std::size_t width,
               std::size_t height) {
  require(values.size() == width * height, "write_pgm: size mismatch");
  require(width > 0 && height > 0, "write_pgm: empty image");

  const auto [lo_it, hi_it] = std::minmax_element(values.begin(), values.end());
  const double lo = *lo_it, hi = *hi_it;
  const double scale = hi > lo ? 255.0 / (hi - lo) : 0.0;

  std::ofstream os(path, std::ios::binary);
  if (!os) throw IoError("write_pgm: cannot open '" + path + "'");
  os << "P5\n" << width << " " << height << "\n255\n";
  std::vector<std::uint8_t> row(width);
  for (std::size_t y = 0; y < height; ++y) {
    for (std::size_t x = 0; x < width; ++x) {
      const double v = (values[y * width + x] - lo) * scale;
      row[x] = static_cast<std::uint8_t>(std::clamp(v, 0.0, 255.0));
    }
    os.write(reinterpret_cast<const char*>(row.data()), static_cast<std::streamsize>(width));
  }
  if (!os) throw IoError("write_pgm: write failed for '" + path + "'");
}

}  // namespace fraz
