#ifndef FRAZ_UTIL_SEED_HPP
#define FRAZ_UTIL_SEED_HPP

/// \file seed.hpp
/// The one default seed every search-stack layer shares.  SearchOptions,
/// TunerConfig, and the CLI's --seed flag all used to repeat the literal
/// 0x46526158 independently; a drifted copy would silently break the
/// "identical inputs, identical tuned bounds" reproducibility contract, so
/// the constant lives exactly once.

#include <cstdint>

namespace fraz {

/// Default seed of the deterministic search stack ("FRaX" in ASCII).
inline constexpr std::uint64_t kDefaultSearchSeed = 0x46526158ull;

}  // namespace fraz

#endif  // FRAZ_UTIL_SEED_HPP
