#ifndef FRAZ_UTIL_JSON_WRITER_HPP
#define FRAZ_UTIL_JSON_WRITER_HPP

/// \file json_writer.hpp
/// One JSON emitter for the whole codebase.  Before this existed, the serve
/// protocol, the CLI's --json modes, and the benches each hand-managed commas
/// and escaping; JsonWriter centralizes RFC 8259 escaping, locale-independent
/// number formatting, and comma placement behind a small streaming builder:
///
///     JsonWriter w;
///     w.begin_object()
///        .field("requests", n)
///        .key("pool").begin_object().field("hits", h).end_object()
///      .end_object();
///     std::string line = std::move(w).str();
///
/// Containers nest arbitrarily; the writer tracks where commas go, so adding
/// a field never means auditing the emitter's separator logic.  raw() splices
/// a preformatted JSON value (e.g. another component's to_json output).

#include <cstdint>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace fraz {

/// JSON string literal with escaping (includes the surrounding quotes).
std::string json_escape(const std::string& text);

/// Locale-independent JSON number (handles infinities/NaN as strings, which
/// JSON cannot represent natively).
std::string json_number(double value);

/// Streaming JSON builder with automatic comma management.  Methods return
/// *this for chaining.  Misuse (value with no pending key inside an object,
/// unbalanced end_*) is a programming error; the writer does not validate.
class JsonWriter {
public:
  JsonWriter& begin_object() {
    separate();
    out_ += '{';
    stack_.push_back(Frame{true});
    return *this;
  }
  JsonWriter& end_object() {
    stack_.pop_back();
    out_ += '}';
    return *this;
  }
  JsonWriter& begin_array() {
    separate();
    out_ += '[';
    stack_.push_back(Frame{true});
    return *this;
  }
  JsonWriter& end_array() {
    stack_.pop_back();
    out_ += ']';
    return *this;
  }

  JsonWriter& key(std::string_view k) {
    separate();
    out_ += json_escape(std::string(k));
    out_ += ':';
    pending_key_ = true;
    return *this;
  }

  JsonWriter& value(std::string_view s) {
    separate();
    out_ += json_escape(std::string(s));
    return *this;
  }
  JsonWriter& value(const std::string& s) { return value(std::string_view(s)); }
  JsonWriter& value(const char* s) { return value(std::string_view(s)); }
  JsonWriter& value(bool b) {
    separate();
    out_ += b ? "true" : "false";
    return *this;
  }
  JsonWriter& value(double d) {
    separate();
    out_ += json_number(d);
    return *this;
  }
  template <typename T,
            std::enable_if_t<std::is_integral_v<T> && !std::is_same_v<T, bool>, int> = 0>
  JsonWriter& value(T n) {
    separate();
    if constexpr (std::is_signed_v<T>)
      out_ += std::to_string(static_cast<long long>(n));
    else
      out_ += std::to_string(static_cast<unsigned long long>(n));
    return *this;
  }
  JsonWriter& null() {
    separate();
    out_ += "null";
    return *this;
  }

  /// Splice a preformatted JSON value verbatim (caller guarantees validity).
  JsonWriter& raw(std::string_view json) {
    separate();
    out_ += json;
    return *this;
  }

  /// key(k).value(v) in one call — the common flat-field case.
  template <typename T>
  JsonWriter& field(std::string_view k, T&& v) {
    key(k);
    return value(std::forward<T>(v));
  }
  JsonWriter& field_raw(std::string_view k, std::string_view json) {
    key(k);
    return raw(json);
  }

  const std::string& str() const& { return out_; }
  std::string str() && { return std::move(out_); }

private:
  struct Frame {
    bool first;
  };

  // Emit the comma owed before this element, unless it directly follows its
  // key (key() already consumed the separator slot).
  void separate() {
    if (pending_key_) {
      pending_key_ = false;
      return;
    }
    if (stack_.empty()) return;
    if (!stack_.back().first) out_ += ',';
    stack_.back().first = false;
  }

  std::string out_;
  std::vector<Frame> stack_;
  bool pending_key_ = false;
};

}  // namespace fraz

#endif  // FRAZ_UTIL_JSON_WRITER_HPP
