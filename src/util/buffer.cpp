#include "util/buffer.hpp"

#include <algorithm>
#include <cstring>
#include <utility>

namespace fraz {

void Buffer::reserve(std::size_t n) {
  if (n <= capacity_) return;
  // Geometric growth amortizes repeated small appends; the max() keeps a
  // single large resize from over-allocating beyond the request.
  const std::size_t grown = std::max(n, capacity_ + capacity_ / 2 + 64);
  auto* next = new std::uint8_t[grown];
  if (size_ != 0) std::memcpy(next, data_, size_);
  delete[] data_;
  data_ = next;
  capacity_ = grown;
  ++allocations_;
}

void Buffer::append(const void* src, std::size_t n) {
  if (n == 0) return;
  reserve(size_ + n);
  std::memcpy(data_ + size_, src, n);
  size_ += n;
}

void Buffer::swap(Buffer& other) noexcept {
  std::swap(data_, other.data_);
  std::swap(size_, other.size_);
  std::swap(capacity_, other.capacity_);
  std::swap(allocations_, other.allocations_);
}

Buffer::~Buffer() { delete[] data_; }

}  // namespace fraz
