#include "util/json_writer.hpp"

#include <cmath>
#include <cstdio>

namespace fraz {

std::string json_escape(const std::string& text) {
  std::string out = "\"";
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

std::string json_number(double value) {
  if (std::isnan(value)) return "\"nan\"";
  if (std::isinf(value)) return value > 0 ? "\"inf\"" : "\"-inf\"";
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  return buf;
}

}  // namespace fraz
