#ifndef FRAZ_UTIL_ERROR_HPP
#define FRAZ_UTIL_ERROR_HPP

/// \file error.hpp
/// Exception hierarchy shared by all fraz libraries, plus the errno
/// rendering helper every filesystem error message goes through.

#include <cstring>
#include <stdexcept>
#include <string>

namespace fraz {

/// Base class for all errors thrown by the fraz libraries.
class Error : public std::runtime_error {
public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A caller passed an argument outside the documented domain.
class InvalidArgument : public Error {
public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// A compressed container failed validation (bad magic, checksum, truncation).
class CorruptStream : public Error {
public:
  explicit CorruptStream(const std::string& what) : Error(what) {}
};

/// An operation is not supported by the selected component
/// (e.g. MGARD on 1D data, unknown compressor id).
class Unsupported : public Error {
public:
  explicit Unsupported(const std::string& what) : Error(what) {}
};

/// An I/O operation on the filesystem failed.
class IoError : public Error {
public:
  explicit IoError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] inline void throw_invalid(const std::string& what) { throw InvalidArgument(what); }
}  // namespace detail

/// Precondition check used throughout the public API: throws InvalidArgument
/// with \p what when \p cond is false.
inline void require(bool cond, const std::string& what) {
  if (!cond) detail::throw_invalid(what);
}

/// Render \p err the way strerror would, but never claim "Success" for a
/// failure whose errno a C library call did not set.  Capture errno at the
/// failing call — before any other call can clobber it — and pass it here.
inline std::string errno_detail(int err) {
  return err != 0 ? std::strerror(err) : "unknown I/O error";
}

}  // namespace fraz

#endif  // FRAZ_UTIL_ERROR_HPP
