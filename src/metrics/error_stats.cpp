#include "metrics/error_stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace fraz {

ErrorStats error_stats(const ArrayView& original, const ArrayView& reconstructed) {
  require(original.shape() == reconstructed.shape(), "error_stats: shape mismatch");
  require(original.dtype() == reconstructed.dtype(), "error_stats: dtype mismatch");
  const std::size_t n = original.elements();
  require(n > 0, "error_stats: empty input");

  auto value = [](const ArrayView& v, std::size_t i) -> double {
    return v.dtype() == DType::kFloat32 ? v.typed<float>()[i] : v.typed<double>()[i];
  };

  ErrorStats s;
  double lo = std::numeric_limits<double>::infinity();
  double hi = -lo;
  double sum_sq = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double a = value(original, i);
    const double b = value(reconstructed, i);
    const double err = a - b;
    s.max_abs_error = std::max(s.max_abs_error, std::abs(err));
    sum_sq += err * err;
    lo = std::min(lo, a);
    hi = std::max(hi, a);
  }
  s.mse = sum_sq / static_cast<double>(n);
  s.rmse = std::sqrt(s.mse);
  s.value_range = hi - lo;
  s.psnr_db = s.rmse == 0 ? std::numeric_limits<double>::infinity()
                          : 20.0 * std::log10(s.value_range / s.rmse);
  return s;
}

}  // namespace fraz
