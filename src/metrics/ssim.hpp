#ifndef FRAZ_METRICS_SSIM_HPP
#define FRAZ_METRICS_SSIM_HPP

/// \file ssim.hpp
/// Structural similarity index (Wang et al., TIP 2004), the visual-quality
/// metric the paper reports alongside PSNR for its Fig. 1/10 comparisons.
///
/// The implementation follows the standard windowed formulation with
/// k1 = 0.01, k2 = 0.03 and the dynamic range L taken from the original
/// field.  2D fields are evaluated directly; 3D fields are evaluated as the
/// mean SSIM over all 2D slices along the slowest axis (the paper inspects
/// representative slices).

#include "ndarray/ndarray.hpp"

namespace fraz {

/// Mean SSIM between \p original and \p reconstructed (2D or 3D arrays of
/// matching shape/dtype).  Window is 8x8 with stride 4.
double ssim(const ArrayView& original, const ArrayView& reconstructed);

}  // namespace fraz

#endif  // FRAZ_METRICS_SSIM_HPP
