#include "metrics/ssim.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "util/error.hpp"

namespace fraz {

namespace {

constexpr std::size_t kWindow = 8;
constexpr std::size_t kStride = 4;
constexpr double kK1 = 0.01;
constexpr double kK2 = 0.03;

double value_at(const ArrayView& v, std::size_t i) {
  return v.dtype() == DType::kFloat32 ? v.typed<float>()[i] : v.typed<double>()[i];
}

/// SSIM over one 2D plane (offset = first element of the plane).
double ssim_plane(const ArrayView& a, const ArrayView& b, std::size_t offset, std::size_t rows,
                  std::size_t cols, double dynamic_range) {
  const double c1 = (kK1 * dynamic_range) * (kK1 * dynamic_range);
  const double c2 = (kK2 * dynamic_range) * (kK2 * dynamic_range);

  double total = 0;
  std::size_t windows = 0;
  const std::size_t wr = std::min(kWindow, rows);
  const std::size_t wc = std::min(kWindow, cols);
  for (std::size_t y0 = 0; y0 + wr <= rows; y0 += kStride) {
    for (std::size_t x0 = 0; x0 + wc <= cols; x0 += kStride) {
      double ma = 0, mb = 0;
      const double n = static_cast<double>(wr * wc);
      for (std::size_t y = 0; y < wr; ++y)
        for (std::size_t x = 0; x < wc; ++x) {
          const std::size_t i = offset + (y0 + y) * cols + (x0 + x);
          ma += value_at(a, i);
          mb += value_at(b, i);
        }
      ma /= n;
      mb /= n;
      double va = 0, vb = 0, cov = 0;
      for (std::size_t y = 0; y < wr; ++y)
        for (std::size_t x = 0; x < wc; ++x) {
          const std::size_t i = offset + (y0 + y) * cols + (x0 + x);
          const double da = value_at(a, i) - ma;
          const double db = value_at(b, i) - mb;
          va += da * da;
          vb += db * db;
          cov += da * db;
        }
      va /= n - 1;
      vb /= n - 1;
      cov /= n - 1;
      const double num = (2 * ma * mb + c1) * (2 * cov + c2);
      const double den = (ma * ma + mb * mb + c1) * (va + vb + c2);
      total += num / den;
      ++windows;
    }
  }
  return windows == 0 ? 1.0 : total / static_cast<double>(windows);
}

}  // namespace

double ssim(const ArrayView& original, const ArrayView& reconstructed) {
  require(original.shape() == reconstructed.shape(), "ssim: shape mismatch");
  require(original.dtype() == reconstructed.dtype(), "ssim: dtype mismatch");
  require(original.dims() == 2 || original.dims() == 3, "ssim: requires 2D or 3D data");

  // Dynamic range of the original across the whole field.
  double lo = std::numeric_limits<double>::infinity(), hi = -lo;
  for (std::size_t i = 0; i < original.elements(); ++i) {
    const double v = value_at(original, i);
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  const double range = hi > lo ? hi - lo : 1.0;

  if (original.dims() == 2)
    return ssim_plane(original, reconstructed, 0, original.shape()[0], original.shape()[1],
                      range);

  const std::size_t planes = original.shape()[0];
  const std::size_t rows = original.shape()[1];
  const std::size_t cols = original.shape()[2];
  double total = 0;
  for (std::size_t p = 0; p < planes; ++p)
    total += ssim_plane(original, reconstructed, p * rows * cols, rows, cols, range);
  return total / static_cast<double>(planes);
}

}  // namespace fraz
