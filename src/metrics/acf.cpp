#include "metrics/acf.hpp"

#include <cmath>
#include <vector>

#include "util/error.hpp"

namespace fraz {

double error_acf(const ArrayView& original, const ArrayView& reconstructed, std::size_t lag) {
  require(original.shape() == reconstructed.shape(), "error_acf: shape mismatch");
  require(original.dtype() == reconstructed.dtype(), "error_acf: dtype mismatch");
  const std::size_t n = original.elements();
  require(lag >= 1 && lag < n, "error_acf: lag out of range");

  auto value = [](const ArrayView& v, std::size_t i) -> double {
    return v.dtype() == DType::kFloat32 ? v.typed<float>()[i] : v.typed<double>()[i];
  };

  double mean = 0;
  std::vector<double> err(n);
  for (std::size_t i = 0; i < n; ++i) {
    err[i] = value(original, i) - value(reconstructed, i);
    mean += err[i];
  }
  mean /= static_cast<double>(n);

  double var = 0;
  for (std::size_t i = 0; i < n; ++i) var += (err[i] - mean) * (err[i] - mean);
  if (var == 0) return 0.0;

  double cov = 0;
  for (std::size_t i = 0; i + lag < n; ++i) cov += (err[i] - mean) * (err[i + lag] - mean);
  return cov / var;
}

}  // namespace fraz
