#ifndef FRAZ_METRICS_ERROR_STATS_HPP
#define FRAZ_METRICS_ERROR_STATS_HPP

/// \file error_stats.hpp
/// Pointwise distortion statistics between an original and a reconstructed
/// field: the metrics the paper reports in its rate-distortion studies.

#include <cstddef>

#include "ndarray/ndarray.hpp"

namespace fraz {

/// Summary of reconstruction error.
struct ErrorStats {
  double max_abs_error = 0;   ///< L-infinity error
  double mse = 0;             ///< mean squared error
  double rmse = 0;            ///< sqrt(mse)
  double psnr_db = 0;         ///< 20*log10((max-min)/rmse); +inf when rmse==0
  double value_range = 0;     ///< max - min of the original data
};

/// Compute error statistics.  Shapes and dtypes must match.
ErrorStats error_stats(const ArrayView& original, const ArrayView& reconstructed);

/// Bits per scalar after compression.
inline double bit_rate(std::size_t elements, std::size_t compressed_bytes) {
  return elements == 0 ? 0.0
                       : 8.0 * static_cast<double>(compressed_bytes) /
                             static_cast<double>(elements);
}

/// Compression ratio original/compressed.
inline double compression_ratio(std::size_t original_bytes, std::size_t compressed_bytes) {
  return compressed_bytes == 0 ? 0.0
                               : static_cast<double>(original_bytes) /
                                     static_cast<double>(compressed_bytes);
}

}  // namespace fraz

#endif  // FRAZ_METRICS_ERROR_STATS_HPP
