#ifndef FRAZ_METRICS_ACF_HPP
#define FRAZ_METRICS_ACF_HPP

/// \file acf.hpp
/// Autocorrelation of the compression error, ACF(error) in the paper's
/// figures.  Structured (autocorrelated) error indicates the compressor left
/// coherent artifacts; white error is preferable at equal magnitude.

#include <cstddef>

#include "ndarray/ndarray.hpp"

namespace fraz {

/// Lag-\p lag autocorrelation of the error field (original - reconstructed),
/// flattened in row-major order.  Returns 0 for a constant error field.
double error_acf(const ArrayView& original, const ArrayView& reconstructed,
                 std::size_t lag = 1);

}  // namespace fraz

#endif  // FRAZ_METRICS_ACF_HPP
