#include "data/datasets.hpp"

#include <algorithm>
#include <cmath>

#include "data/noise.hpp"
#include "util/error.hpp"

namespace fraz::data {

namespace {

/// Scale a base extent by the suite scale (kSmall = base).
std::size_t scaled(std::size_t base, SuiteScale scale) {
  switch (scale) {
    case SuiteScale::kTiny:
      return std::max<std::size_t>(base / 4, 8);
    case SuiteScale::kMedium:
      return base * 2;
    default:
      return base;
  }
}

Shape scaled_shape(std::initializer_list<std::size_t> dims, SuiteScale scale) {
  Shape s;
  for (std::size_t d : dims) s.push_back(scaled(d, scale));
  return s;
}

// ------------------------------------------------------------ field kernels

/// Plume intensity shared by the cloud-like generators: a handful of
/// gaussian bumps whose centres drift with the time step, over a turbulent
/// background.  Mirrors the structure of hurricane moisture fields: mostly
/// empty air with localized condensed features.
double plume_intensity(const LatticeNoise& noise, double x, double y, double z, double t) {
  double v = 0;
  // Bump parameters are hashed from the noise seed via corner(); bump k
  // drifts along a seed-specific direction.
  for (int k = 0; k < 6; ++k) {
    const double cx = 0.15 + 0.7 * noise.corner(k, 1, 0) + 0.004 * t * (noise.corner(k, 2, 0) - 0.5);
    const double cy = 0.15 + 0.7 * noise.corner(k, 3, 0) + 0.006 * t * (noise.corner(k, 4, 0) - 0.5);
    const double cz = 0.15 + 0.7 * noise.corner(k, 5, 0);
    const double radius = 0.06 + 0.12 * noise.corner(k, 6, 0);
    const double dx = x - cx, dy = y - cy, dz = z - cz;
    const double d2 = dx * dx + dy * dy + dz * dz;
    v += std::exp(-d2 / (2 * radius * radius));
  }
  // Turbulent modulation so plume interiors are not perfectly smooth.
  const double turb = noise.fbm3(6 * x + 0.05 * t, 6 * y, 6 * z, 3);
  return v * (0.6 + 0.8 * turb);
}

NdArray turbulent3d(const FieldSpec& spec, int step) {
  NdArray out(DType::kFloat32, spec.shape);
  float* p = out.typed<float>();
  const LatticeNoise noise(spec.seed);
  const std::size_t nz = spec.shape[0], ny = spec.shape[1], nx = spec.shape[2];
  const double t = step;
  std::size_t i = 0;
  for (std::size_t z = 0; z < nz; ++z)
    for (std::size_t y = 0; y < ny; ++y)
      for (std::size_t x = 0; x < nx; ++x) {
        // Advect the sampling coordinates with time: the field evolves
        // smoothly, so consecutive steps have similar (drifting) statistics.
        const double u = static_cast<double>(x) / static_cast<double>(nx) + 0.012 * t;
        const double v = static_cast<double>(y) / static_cast<double>(ny) + 0.007 * t;
        const double w = static_cast<double>(z) / static_cast<double>(nz);
        const double amp = 40.0 * (1.0 + 0.08 * std::sin(0.45 * t));
        p[i++] = static_cast<float>(amp * (noise.fbm3(5 * u, 5 * v, 5 * w, 5) - 0.5) +
                                    15.0 * std::sin(2.1 * u + 0.3 * t) * std::cos(1.7 * v));
      }
  return out;
}

NdArray cloud_field3d(const FieldSpec& spec, int step) {
  NdArray out(DType::kFloat32, spec.shape);
  float* p = out.typed<float>();
  const LatticeNoise noise(spec.seed);
  const std::size_t nz = spec.shape[0], ny = spec.shape[1], nx = spec.shape[2];
  const double t = step;
  // In-cloud microphysics noise: unpredictable at every scale below it, so
  // the compression-ratio curve spans its full range over bounds that are a
  // *linear-searchable* fraction of the value range (as with real CLOUDf).
  // The noise floor rises slowly with time: the bound needed for a given
  // ratio drifts upward across the series, which is what pushes a
  // user-capped (max-error-bound) target out of feasibility in later steps.
  const double noise_floor = 1.2e-4 * (1.0 + 0.10 * t);
  std::size_t i = 0;
  for (std::size_t z = 0; z < nz; ++z)
    for (std::size_t y = 0; y < ny; ++y)
      for (std::size_t x = 0; x < nx; ++x) {
        const double u = static_cast<double>(x) / static_cast<double>(nx);
        const double v = static_cast<double>(y) / static_cast<double>(ny);
        const double w = static_cast<double>(z) / static_cast<double>(nz);
        const double raw = plume_intensity(noise, u, v, w, t) - 0.35;
        // Threshold: most of the volume is exactly zero, like CLOUDf.
        if (raw > 0) {
          const double jitter = noise_floor * hash_normal(spec.seed ^ 0xc10d5u, i + 977 * step);
          p[i] = static_cast<float>(raw * 1e-3 + jitter);
        } else {
          p[i] = 0.0f;
        }
        ++i;
      }
  return out;
}

NdArray log_sparse_plume3d(const FieldSpec& spec, int step) {
  NdArray out(DType::kFloat32, spec.shape);
  float* p = out.typed<float>();
  const LatticeNoise noise(spec.seed);
  const std::size_t nz = spec.shape[0], ny = spec.shape[1], nx = spec.shape[2];
  const double t = step;
  const double floor_value = 1e-7;  // background mixing ratio
  std::size_t i = 0;
  for (std::size_t z = 0; z < nz; ++z)
    for (std::size_t y = 0; y < ny; ++y)
      for (std::size_t x = 0; x < nx; ++x) {
        const double u = static_cast<double>(x) / static_cast<double>(nx);
        const double v = static_cast<double>(y) / static_cast<double>(ny);
        const double w = static_cast<double>(z) / static_cast<double>(nz);
        const double q = plume_intensity(noise, u, v, w, t);
        // log10 of a mostly-tiny field: a flat plateau at log10(floor) with
        // smooth mesas where plumes exist -- QCLOUDf.log10's signature, and
        // the shape that drives SZ's non-monotonic ratio curve (Fig. 3).
        p[i++] = static_cast<float>(std::log10(floor_value + 1e-3 * std::max(q - 0.3, 0.0)));
      }
  return out;
}

NdArray particle_coord1d(const FieldSpec& spec, int step, double box, bool clustered) {
  NdArray out(DType::kFloat32, spec.shape);
  float* p = out.typed<float>();
  const std::size_t n = out.elements();
  const double t = step;
  for (std::size_t i = 0; i < n; ++i) {
    double x0;
    if (clustered && hash_uniform(spec.seed ^ 0xc1u, i) < 0.35) {
      // Cluster members: gaussian around one of 16 halo centres.
      const auto halo = static_cast<std::uint64_t>(hash_uniform(spec.seed ^ 0xc2u, i) * 16.0);
      const double centre = box * hash_uniform(spec.seed ^ 0xc3u, halo);
      x0 = centre + 0.01 * box * hash_normal(spec.seed ^ 0xc4u, i);
    } else {
      x0 = box * hash_uniform(spec.seed ^ 0xc5u, i);
    }
    const double velocity = 0.002 * box * hash_normal(spec.seed ^ 0xc6u, i);
    const double x = std::fmod(std::fmod(x0 + velocity * t, box) + box, box);
    p[i] = static_cast<float>(x);
  }
  return out;
}

NdArray particle_vel1d(const FieldSpec& spec, int step) {
  NdArray out(DType::kFloat32, spec.shape);
  float* p = out.typed<float>();
  const std::size_t n = out.elements();
  const double t = step;
  for (std::size_t i = 0; i < n; ++i) {
    const double v0 = 300.0 * hash_normal(spec.seed ^ 0xd0u, i);
    // Slow acceleration drift keeps successive steps correlated.
    p[i] = static_cast<float>(v0 * (1.0 + 0.01 * t) + 2.0 * hash_normal(spec.seed + 77, i) * t);
  }
  return out;
}

NdArray lattice_coord1d(const FieldSpec& spec, int step) {
  NdArray out(DType::kFloat32, spec.shape);
  float* p = out.typed<float>();
  const std::size_t n = out.elements();
  const double spacing = 2.8;  // angstrom-ish lattice constant
  const double t = step;
  for (std::size_t i = 0; i < n; ++i) {
    // Crystal site + thermal vibration; vibration phase advances with time.
    const double site = spacing * static_cast<double>(i % 4096);
    const double phase = 6.2831853 * hash_uniform(spec.seed ^ 0xe1u, i);
    const double amp = 0.08 * (1.0 + hash_uniform(spec.seed ^ 0xe2u, i));
    p[i] = static_cast<float>(site + amp * std::sin(phase + 0.9 * t) +
                              0.01 * hash_normal(spec.seed ^ 0xe3u, i + 31 * step));
  }
  return out;
}

NdArray smooth2d(const FieldSpec& spec, int step) {
  NdArray out(DType::kFloat32, spec.shape);
  float* p = out.typed<float>();
  const LatticeNoise noise(spec.seed);
  const std::size_t ny = spec.shape[0], nx = spec.shape[1];
  const double t = step;
  std::size_t i = 0;
  for (std::size_t y = 0; y < ny; ++y)
    for (std::size_t x = 0; x < nx; ++x) {
      const double u = static_cast<double>(x) / static_cast<double>(nx);
      const double v = static_cast<double>(y) / static_cast<double>(ny);
      // Large-scale climate pattern + seasonal-style drift + small texture.
      // The fine octave mimics sharp cloud-fraction edges: real CLDHGH has
      // considerable high-frequency content.
      const double base = std::sin(3.1 * u + 0.08 * t) * std::cos(2.3 * v - 0.05 * t);
      const double texture = noise.fbm3(8 * u + 0.03 * t, 8 * v, 0.25 * t, 4) - 0.5;
      const double fine = noise.fbm3(40 * u, 40 * v, 0.25 * t + 9.1, 2) - 0.5;
      p[i++] = static_cast<float>(0.55 + 0.4 * base + 0.18 * texture + 0.06 * fine);
    }
  return out;
}

NdArray cosmo_field3d(const FieldSpec& spec, int step) {
  NdArray out(DType::kFloat32, spec.shape);
  float* p = out.typed<float>();
  const LatticeNoise noise(spec.seed);
  const std::size_t nz = spec.shape[0], ny = spec.shape[1], nx = spec.shape[2];
  const double t = step;
  std::size_t i = 0;
  for (std::size_t z = 0; z < nz; ++z)
    for (std::size_t y = 0; y < ny; ++y)
      for (std::size_t x = 0; x < nx; ++x) {
        const double u = static_cast<double>(x) / static_cast<double>(nx);
        const double v = static_cast<double>(y) / static_cast<double>(ny);
        const double w = static_cast<double>(z) / static_cast<double>(nz);
        // Log-normal field: exp of fBm gives the heavy-tailed brightness of
        // NYX temperature/density with filament-like structure.  Structure
        // growth: contrast rises slowly with time (clustering deepens).
        // Dominantly large-scale structure (as in the real 512^3 field):
        // steep spectrum -- per-octave amplitude decays by 0.3, so nearly
        // all energy sits in the lowest modes and adjacent samples are
        // highly predictable (what lets SZ excel at extreme ratios).
        double g = 0, norm = 0, amp = 1, freq = 3;
        for (int o = 0; o < 4; ++o) {
          const double off = 17.31 * o;
          g += amp * noise.noise3(freq * u + off, freq * v + off,
                                  freq * (w + 0.02 * t) + off);
          norm += amp;
          amp *= 0.18;
          freq *= 2;
        }
        g = g / norm - 0.5;
        const double contrast = 2.6 * (1.0 + 0.04 * t);
        p[i++] = static_cast<float>(1e4 * std::exp(contrast * g));
      }
  return out;
}

}  // namespace

std::size_t DatasetSpec::step_bytes() const {
  std::size_t total = 0;
  for (const FieldSpec& f : fields) total += shape_elements(f.shape) * 4;
  return total;
}

std::vector<DatasetSpec> sdrbench_suite(SuiteScale scale) {
  std::vector<DatasetSpec> suite;

  {
    DatasetSpec d;
    d.name = "hurricane";
    d.domain = "meteorology";
    d.time_steps = 12;  // paper: 48 steps, 100x500x500, 13 fields
    const Shape shape = scaled_shape({16, 64, 64}, scale);
    d.fields = {
        {"TCf", FieldKind::kTurbulent3d, shape, 0x480001},
        {"Uf", FieldKind::kTurbulent3d, shape, 0x480002},
        {"CLOUDf", FieldKind::kCloudField3d, shape, 0x480003},
        {"QCLOUDf.log10", FieldKind::kLogSparsePlume3d, shape, 0x480004},
    };
    suite.push_back(std::move(d));
  }
  {
    DatasetSpec d;
    d.name = "hacc";
    d.domain = "cosmology (particles)";
    d.time_steps = 16;  // paper: 101 steps, 6 1D fields
    const Shape shape = scaled_shape({131072}, scale);
    d.fields = {
        {"x", FieldKind::kParticleCoord1d, shape, 0xacc001},
        {"y", FieldKind::kParticleCoord1d, shape, 0xacc002},
        {"z", FieldKind::kParticleCoord1d, shape, 0xacc003},
        {"vx", FieldKind::kParticleVel1d, shape, 0xacc004},
        {"vy", FieldKind::kParticleVel1d, shape, 0xacc005},
        {"vz", FieldKind::kParticleVel1d, shape, 0xacc006},
    };
    suite.push_back(std::move(d));
  }
  {
    DatasetSpec d;
    d.name = "cesm";
    d.domain = "climate";
    d.time_steps = 12;  // paper: 62 steps, 2D, 6 multi-step fields
    const Shape shape = scaled_shape({96, 192}, scale);
    d.fields = {
        {"CLDHGH", FieldKind::kSmooth2d, shape, 0xce5001},
        {"CLDLOW", FieldKind::kSmooth2d, shape, 0xce5002},
        {"CLOUD", FieldKind::kSmooth2d, shape, 0xce5003},
        {"FLDSC", FieldKind::kSmooth2d, shape, 0xce5004},
        {"FREQSH", FieldKind::kSmooth2d, shape, 0xce5005},
        {"PHIS", FieldKind::kSmooth2d, shape, 0xce5006},
    };
    suite.push_back(std::move(d));
  }
  {
    DatasetSpec d;
    d.name = "exaalt";
    d.domain = "molecular dynamics";
    d.time_steps = 16;  // paper: 82 steps, 3 1D fields
    const Shape shape = scaled_shape({65536}, scale);
    d.fields = {
        {"x", FieldKind::kLatticeCoord1d, shape, 0xea1001},
        {"y", FieldKind::kLatticeCoord1d, shape, 0xea1002},
        {"z", FieldKind::kLatticeCoord1d, shape, 0xea1003},
    };
    suite.push_back(std::move(d));
  }
  {
    DatasetSpec d;
    d.name = "nyx";
    d.domain = "cosmology (fields)";
    d.time_steps = 8;  // paper: 8 steps, 512^3, 5 fields
    const Shape shape = scaled_shape({24, 48, 48}, scale);
    d.fields = {
        {"temperature", FieldKind::kCosmoField3d, shape, 0x0ee001},
        {"baryon_density", FieldKind::kCosmoField3d, shape, 0x0ee002},
        {"dark_matter_density", FieldKind::kCosmoField3d, shape, 0x0ee003},
        {"velocity_x", FieldKind::kTurbulent3d, shape, 0x0ee004},
        {"velocity_y", FieldKind::kTurbulent3d, shape, 0x0ee005},
    };
    suite.push_back(std::move(d));
  }
  return suite;
}

DatasetSpec dataset_by_name(const std::string& name, SuiteScale scale) {
  for (DatasetSpec& d : sdrbench_suite(scale))
    if (d.name == name) return std::move(d);
  throw InvalidArgument("dataset_by_name: unknown dataset '" + name + "'");
}

FieldSpec field_by_name(const DatasetSpec& dataset, const std::string& field) {
  for (const FieldSpec& f : dataset.fields)
    if (f.name == field) return f;
  throw InvalidArgument("field_by_name: dataset '" + dataset.name + "' has no field '" + field +
                        "'");
}

NdArray generate_field(const FieldSpec& spec, int step) {
  require(step >= 0, "generate_field: step must be >= 0");
  switch (spec.kind) {
    case FieldKind::kTurbulent3d:
      require(spec.shape.size() == 3, "turbulent3d expects a 3D shape");
      return turbulent3d(spec, step);
    case FieldKind::kCloudField3d:
      require(spec.shape.size() == 3, "cloud_field3d expects a 3D shape");
      return cloud_field3d(spec, step);
    case FieldKind::kLogSparsePlume3d:
      require(spec.shape.size() == 3, "log_sparse_plume3d expects a 3D shape");
      return log_sparse_plume3d(spec, step);
    case FieldKind::kParticleCoord1d:
      require(spec.shape.size() == 1, "particle_coord1d expects a 1D shape");
      return particle_coord1d(spec, step, 256.0, true);
    case FieldKind::kParticleVel1d:
      require(spec.shape.size() == 1, "particle_vel1d expects a 1D shape");
      return particle_vel1d(spec, step);
    case FieldKind::kSmooth2d:
      require(spec.shape.size() == 2, "smooth2d expects a 2D shape");
      return smooth2d(spec, step);
    case FieldKind::kLatticeCoord1d:
      require(spec.shape.size() == 1, "lattice_coord1d expects a 1D shape");
      return lattice_coord1d(spec, step);
    case FieldKind::kCosmoField3d:
      require(spec.shape.size() == 3, "cosmo_field3d expects a 3D shape");
      return cosmo_field3d(spec, step);
  }
  throw InvalidArgument("generate_field: unknown field kind");
}

std::vector<NdArray> generate_series(const FieldSpec& spec, int steps, int first_step) {
  require(steps >= 1, "generate_series: steps must be >= 1");
  std::vector<NdArray> out;
  out.reserve(static_cast<std::size_t>(steps));
  for (int t = 0; t < steps; ++t) out.push_back(generate_field(spec, first_step + t));
  return out;
}

}  // namespace fraz::data
