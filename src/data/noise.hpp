#ifndef FRAZ_DATA_NOISE_HPP
#define FRAZ_DATA_NOISE_HPP

/// \file noise.hpp
/// Deterministic lattice value-noise used by the synthetic dataset
/// generators.  Integer lattice corners are hashed (SplitMix64) to values in
/// [0,1) and blended with a smoothstep kernel; summing octaves yields the
/// multi-scale structure typical of simulation fields.  Everything is pure
/// arithmetic on the seed — no global state, bit-identical across platforms.

#include <cstdint>

namespace fraz::data {

/// Smooth pseudo-random scalar field over R^3.
class LatticeNoise {
public:
  explicit LatticeNoise(std::uint64_t seed) noexcept : seed_(seed) {}

  /// Single-octave smooth noise in [0, 1).
  double noise3(double x, double y, double z) const noexcept;

  /// Sum of \p octaves octaves with per-octave frequency doubling and
  /// amplitude halving (fractal Brownian motion), normalized to [0, 1).
  double fbm3(double x, double y, double z, int octaves) const noexcept;

  /// Hash of an integer lattice point to [0, 1).
  double corner(std::int64_t x, std::int64_t y, std::int64_t z) const noexcept;

private:
  std::uint64_t seed_;
};

/// Stateless per-index uniform hash in [0, 1): used for particle datasets
/// where every particle's trajectory must be reproducible from its index.
double hash_uniform(std::uint64_t seed, std::uint64_t index) noexcept;

/// Stateless standard-normal-ish hash (sum of uniforms, Irwin-Hall with 4
/// terms, variance-normalized): cheap, deterministic, good enough for
/// synthetic thermal jitter.
double hash_normal(std::uint64_t seed, std::uint64_t index) noexcept;

}  // namespace fraz::data

#endif  // FRAZ_DATA_NOISE_HPP
