#include "data/noise.hpp"

#include <cmath>

namespace fraz::data {

namespace {

std::uint64_t mix(std::uint64_t z) noexcept {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

double smoothstep(double t) noexcept { return t * t * (3.0 - 2.0 * t); }

}  // namespace

double LatticeNoise::corner(std::int64_t x, std::int64_t y, std::int64_t z) const noexcept {
  std::uint64_t h = seed_;
  h = mix(h ^ static_cast<std::uint64_t>(x) * 0x9e3779b97f4a7c15ull);
  h = mix(h ^ static_cast<std::uint64_t>(y) * 0xc2b2ae3d27d4eb4full);
  h = mix(h ^ static_cast<std::uint64_t>(z) * 0x165667b19e3779f9ull);
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

double LatticeNoise::noise3(double x, double y, double z) const noexcept {
  const double fx = std::floor(x), fy = std::floor(y), fz = std::floor(z);
  const auto ix = static_cast<std::int64_t>(fx);
  const auto iy = static_cast<std::int64_t>(fy);
  const auto iz = static_cast<std::int64_t>(fz);
  const double tx = smoothstep(x - fx);
  const double ty = smoothstep(y - fy);
  const double tz = smoothstep(z - fz);

  double acc[2][2];
  for (int dy = 0; dy < 2; ++dy)
    for (int dz = 0; dz < 2; ++dz) {
      const double a = corner(ix, iy + dy, iz + dz);
      const double b = corner(ix + 1, iy + dy, iz + dz);
      acc[dy][dz] = a + tx * (b - a);
    }
  const double y0 = acc[0][0] + tz * (acc[0][1] - acc[0][0]);
  const double y1 = acc[1][0] + tz * (acc[1][1] - acc[1][0]);
  return y0 + ty * (y1 - y0);
}

double LatticeNoise::fbm3(double x, double y, double z, int octaves) const noexcept {
  double sum = 0, amplitude = 1, norm = 0, frequency = 1;
  for (int o = 0; o < octaves; ++o) {
    // Offset per octave decorrelates lattice alignment across octaves.
    const double off = 17.31 * o;
    sum += amplitude * noise3(x * frequency + off, y * frequency + off, z * frequency + off);
    norm += amplitude;
    amplitude *= 0.5;
    frequency *= 2.0;
  }
  return sum / norm;
}

double hash_uniform(std::uint64_t seed, std::uint64_t index) noexcept {
  return static_cast<double>(mix(seed ^ mix(index + 0x9e3779b97f4a7c15ull)) >> 11) * 0x1.0p-53;
}

double hash_normal(std::uint64_t seed, std::uint64_t index) noexcept {
  double s = 0;
  for (std::uint64_t k = 0; k < 4; ++k) s += hash_uniform(seed + k * 0x5851f42d4c957f2dull, index);
  // Irwin-Hall(4): mean 2, variance 1/3; normalize to mean 0, variance 1.
  return (s - 2.0) * 1.7320508075688772;
}

}  // namespace fraz::data
