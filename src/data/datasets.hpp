#ifndef FRAZ_DATA_DATASETS_HPP
#define FRAZ_DATA_DATASETS_HPP

/// \file datasets.hpp
/// Synthetic analogues of the five SDRBench datasets the paper evaluates
/// (Table III): Hurricane (meteorology, 3D), HACC (cosmology particles, 1D),
/// CESM (climate, 2D), EXAALT (molecular dynamics, 1D), NYX (cosmology
/// fields, 3D).
///
/// Substitution rationale (DESIGN.md §2): the real archives are tens of GB
/// and unavailable offline, so each field is replaced by a seeded generator
/// that reproduces the property FRaZ is sensitive to — smooth multiscale
/// structure, log-scaled sparse plumes, weakly compressible particle
/// coordinates, log-normal cosmology fields — including slow temporal drift
/// so the time-step warm-start behaviour (paper Fig. 6) is exercised.
/// Generation is deterministic: (spec, step) always yields the same bytes.

#include <cstdint>
#include <string>
#include <vector>

#include "ndarray/ndarray.hpp"

namespace fraz::data {

/// Statistical family of a synthetic field.
enum class FieldKind {
  kTurbulent3d,       ///< multiscale fBm (Hurricane TCf/Uf, wind/temperature)
  kCloudField3d,      ///< thresholded plumes, many exact zeros (Hurricane CLOUDf)
  kLogSparsePlume3d,  ///< log10 of plume field (Hurricane QCLOUDf.log10)
  kParticleCoord1d,   ///< unsorted drifting particle coordinates (HACC x/y/z)
  kParticleVel1d,     ///< particle velocities (HACC vx/vy/vz)
  kSmooth2d,          ///< smooth multiscale climate field (CESM)
  kLatticeCoord1d,    ///< thermal-vibrating crystal coordinates (EXAALT)
  kCosmoField3d,      ///< log-normal density/temperature (NYX)
};

/// One field of a dataset.
struct FieldSpec {
  std::string name;
  FieldKind kind;
  Shape shape;          ///< extent of one time step
  std::uint64_t seed;   ///< generator stream
};

/// One benchmark dataset.
struct DatasetSpec {
  std::string name;
  std::string domain;
  int time_steps;
  std::vector<FieldSpec> fields;

  /// Bytes of one time step across all fields (f32).
  std::size_t step_bytes() const;
};

/// Relative sizing of the synthetic suite; dims scale with the factor so
/// tests stay fast while benches can run closer to paper-like extents.
enum class SuiteScale {
  kTiny,    ///< unit-test sized (dims ~ /4 of kSmall)
  kSmall,   ///< default bench size
  kMedium,  ///< slower, higher-fidelity bench size (dims ~ x2 of kSmall)
};

/// The five-dataset suite mirroring the paper's Table III.
std::vector<DatasetSpec> sdrbench_suite(SuiteScale scale = SuiteScale::kSmall);

/// Look up one dataset by name ("hurricane", "hacc", "cesm", "exaalt",
/// "nyx"); throws InvalidArgument for unknown names.
DatasetSpec dataset_by_name(const std::string& name, SuiteScale scale = SuiteScale::kSmall);

/// Look up one field inside a dataset; throws InvalidArgument when missing.
FieldSpec field_by_name(const DatasetSpec& dataset, const std::string& field);

/// Generate the field's data at time step \p step (f32, deterministic).
NdArray generate_field(const FieldSpec& spec, int step);

/// Generate \p steps consecutive time steps of a field.
std::vector<NdArray> generate_series(const FieldSpec& spec, int steps, int first_step = 0);

}  // namespace fraz::data

#endif  // FRAZ_DATA_DATASETS_HPP
