#ifndef FRAZ_ARCHIVE_PIPELINE_HPP
#define FRAZ_ARCHIVE_PIPELINE_HPP

/// \file pipeline.hpp
/// The transport-independent core of `fraz::archive`: one chunk-compression
/// pipeline every writer shares and one chunk-decode core every reader
/// shares.  Transports supply two small adapters —
///
///  - a `ByteSink` the writer appends the archive to (a growable Buffer for
///    the in-memory transport, a FILE* for the streaming file transport);
///  - a `ChunkSource` the reader fetches positioned byte ranges from (a raw
///    pointer, an mmap'd view, or buffered positioned reads).
///
/// The write pipeline claims chunk indices under a bounded window so at most
/// `workers + 1` chunk payloads are ever held in memory (claimed-but-not-yet
/// -emitted), and emits payloads to the sink strictly in index order — which
/// is what lets a file be written append-only while keeping the bytes
/// identical to an in-memory pack at any worker count.

#include <cstdint>
#include <string>
#include <vector>

#include "archive/archive.hpp"
#include "archive/format.hpp"
#include "engine/engine.hpp"
#include "ndarray/ndarray.hpp"
#include "util/buffer.hpp"
#include "util/status.hpp"

namespace fraz::archive::detail {

/// Writer-internal engines tune single-threaded: archive parallelism comes
/// from chunks, and region-level cancellation races would otherwise make the
/// chosen bound (and therefore the archive bytes) timing-dependent.  The one
/// definition every transport shares.
EngineConfig serial_tuning(EngineConfig config);

/// Everything a writer must refuse at construction: unknown format
/// versions, v1 with a backend the v1 manifest cannot name, and compressor
/// names the v2 manifest cannot record.  Shared by both writer constructors
/// and by write_archive (for configs that bypassed a constructor).
Status validate_write_config(const ArchiveWriteConfig& config) noexcept;

/// Append-only destination of one archive write.
class ByteSink {
public:
  virtual ~ByteSink() = default;
  /// Append \p size bytes; a non-ok Status aborts the write.
  virtual Status append(const std::uint8_t* data, std::size_t size) noexcept = 0;
  /// Total bytes appended so far.
  virtual std::size_t bytes_written() const noexcept = 0;
};

/// Sink over a caller-owned Buffer (the in-memory transport).
class BufferSink final : public ByteSink {
public:
  explicit BufferSink(Buffer& out) noexcept : out_(out) {}
  Status append(const std::uint8_t* data, std::size_t size) noexcept override {
    try {
      out_.append(data, size);
      return Status();
    } catch (...) {
      return status_from_current_exception();
    }
  }
  std::size_t bytes_written() const noexcept override { return out_.size(); }

private:
  Buffer& out_;
};

/// Shards, tunes, compresses, and assembles one complete archive (either
/// format version) through \p sink.  \p state carries the persistent warm
/// knowledge between write() calls: the chunk-0 tuning engine, the shared
/// BoundStore of per-chunk warm bounds (every worker engine adopts it, each
/// chunk reading/writing only its own deterministic key), and the shared
/// probe dedup cache.  This is the single write path behind ArchiveWriter
/// (in-memory) and ArchiveFileWriter (streaming): format v2 streams chunks
/// to the sink as they finish; format v1 buffers the chunk region because
/// its manifest precedes the chunks.
Result<ArchiveWriteResult> write_archive(const ArchiveWriteConfig& config,
                                         WriterWarmState& state, const ArrayView& data,
                                         ByteSink& sink);

/// Positioned-read abstraction of one archive's bytes.
class ChunkSource {
public:
  virtual ~ChunkSource() = default;
  /// Return a pointer to \p size bytes at absolute offset \p offset.
  /// Zero-copy transports ignore \p scratch and return into their own
  /// storage; buffered transports fill \p scratch and return its data.  The
  /// pointer stays valid until the next fetch through the same scratch.
  /// Throws CorruptStream (range) or IoError (transport failure).
  virtual const std::uint8_t* fetch(std::size_t offset, std::size_t size,
                                    Buffer& scratch) const = 0;
};

/// Zero-copy source over bytes already in memory.
class MemorySource final : public ChunkSource {
public:
  MemorySource(const std::uint8_t* data, std::size_t size) noexcept
      : data_(data), size_(size) {}
  const std::uint8_t* fetch(std::size_t offset, std::size_t size,
                            Buffer& scratch) const override;

private:
  const std::uint8_t* data_;
  std::size_t size_;
};

/// Shape of chunk \p i of \p info ({extent_i, rest...}; last chunk short).
Shape chunk_shape(const ArchiveInfo& info, std::size_t i);

/// Validate chunk \p i's CRC and decode it (throwing helper shared by every
/// reader).  \p scratch backs the fetch for buffered transports.
NdArray decode_chunk(Engine& engine, const ChunkSource& source, const ArchiveInfo& info,
                     std::size_t i, Buffer& scratch);

/// Decode the slowest-axis planes [first, first + count) into \p out (whose
/// shape must already be {count, rest...}), touching and validating only the
/// chunks that cover the range.  \p threads > 1 decodes the touched chunks
/// in parallel, one Engine per worker, each writing its disjoint plane
/// window of \p out; \p serial_engine serves the single-threaded path.
/// Backs both read_all (first = 0, count = n0) and read_range.
Status read_planes(const ChunkSource& source, const ArchiveInfo& info,
                   Engine& serial_engine, Buffer& serial_scratch, std::size_t first,
                   std::size_t count, unsigned threads, NdArray& out) noexcept;

}  // namespace fraz::archive::detail

#endif  // FRAZ_ARCHIVE_PIPELINE_HPP
