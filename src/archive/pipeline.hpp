#ifndef FRAZ_ARCHIVE_PIPELINE_HPP
#define FRAZ_ARCHIVE_PIPELINE_HPP

/// \file pipeline.hpp
/// The transport-independent write core of `fraz::archive`: the push-based
/// archive assembler every writer shares.  Transports supply one small
/// adapter — a `ByteSink` the writer appends the archive to (a growable
/// Buffer for the in-memory transport, a FILE* for the streaming file
/// transport).  The matching read-side core (`ChunkSource` + `ReaderCore`)
/// lives in `archive/reader_core.hpp`.
///
/// The assembler is the engine behind both the push-based FieldSession API
/// and the `write(ArrayView)` compatibility wrapper: callers push slabs, the
/// assembler stages exactly one chunk row per open field and dispatches each
/// completed row into the parallel chunk pipeline, which admits rows under a
/// bounded window (submitted-but-unemitted ≤ workers + 1) and emits payloads
/// to the sink strictly in index order — which is what lets a file be
/// written append-only while keeping the bytes identical to an in-memory
/// pack at any worker count, and what bounds writer input memory to
/// O(chunk-row × workers) however the data arrives.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "archive/archive.hpp"
#include "archive/format.hpp"
#include "engine/engine.hpp"
#include "ndarray/ndarray.hpp"
#include "util/buffer.hpp"
#include "util/status.hpp"
#include "util/timer.hpp"

namespace fraz::archive::detail {

/// Writer-internal engines tune single-threaded: archive parallelism comes
/// from chunks, and region-level cancellation races would otherwise make the
/// chosen bound (and therefore the archive bytes) timing-dependent.  The one
/// definition every transport shares.
EngineConfig serial_tuning(EngineConfig config);

/// Everything a writer must refuse at construction: unknown format
/// versions, v1 with a backend the v1 manifest cannot name, and compressor
/// names the v2/v3 manifests cannot record.  Shared by both writer
/// constructors and by write_archive (for configs that bypassed a
/// constructor).
Status validate_write_config(const ArchiveWriteConfig& config) noexcept;

/// Append-only destination of one archive write.
class ByteSink {
public:
  virtual ~ByteSink() = default;
  /// Append \p size bytes; a non-ok Status aborts the write.
  virtual Status append(const std::uint8_t* data, std::size_t size) noexcept = 0;
  /// Total bytes appended so far.
  virtual std::size_t bytes_written() const noexcept = 0;
};

/// Sink over a caller-owned Buffer (the in-memory transport).
class BufferSink final : public ByteSink {
public:
  explicit BufferSink(Buffer& out) noexcept : out_(out) {}
  Status append(const std::uint8_t* data, std::size_t size) noexcept override {
    try {
      out_.append(data, size);
      return Status();
    } catch (...) {
      return status_from_current_exception();
    }
  }
  std::size_t bytes_written() const noexcept override { return out_.size(); }

private:
  Buffer& out_;
};

class ChunkPipeline;

/// Transport-independent build of one complete archive (any format version)
/// through a ByteSink.  Fields are ingested one at a time: open_field()
/// declares the geometry (and invalidates stale per-chunk warm keys),
/// push() stages planes into the current chunk row and dispatches completed
/// rows to the parallel pipeline, close_field() drains the field, finish()
/// seals manifest + footer.  v1/v2 accept exactly one field; v1 buffers the
/// chunk region internally because its manifest precedes the chunks on the
/// wire.
///
/// \p state carries the persistent warm knowledge between builds: the
/// per-field chunk-0 tuning engine, the shared BoundStore of per-(field,
/// chunk) warm bounds (every worker engine adopts it, each chunk
/// reading/writing only its own deterministic key), and the shared probe
/// dedup cache.  This is the single write path behind ArchiveWriter
/// (in-memory) and ArchiveFileWriter (streaming).
class ArchiveAssembler {
public:
  ArchiveAssembler(const ArchiveWriteConfig& config, WriterWarmState& state,
                   ByteSink& sink, std::uint8_t version);
  ~ArchiveAssembler();

  ArchiveAssembler(const ArchiveAssembler&) = delete;
  ArchiveAssembler& operator=(const ArchiveAssembler&) = delete;

  Status open_field(const std::string& name, const FieldDesc& desc) noexcept;
  Status push(const ArrayView& slab) noexcept;
  Result<FieldWriteReport> close_field() noexcept;
  Result<ArchiveWriteResult> finish() noexcept;

  bool field_open() const noexcept { return open_ != nullptr; }

private:
  struct OpenField;

  /// Dispatch the staged chunk row (tuning + seeding the field first when it
  /// is chunk 0) and stage the next row.
  Status submit_stage() noexcept;

  const ArchiveWriteConfig config_;
  WriterWarmState& state_;
  ByteSink* sink_;              ///< where the finished archive lands
  ByteSink* chunk_sink_;        ///< where chunk payloads go (= sink_ except v1)
  Buffer region_;               ///< v1 only: buffered chunk region
  std::unique_ptr<BufferSink> region_sink_;
  const std::uint8_t version_;
  Timer timer_;

  std::unique_ptr<OpenField> open_;
  std::vector<FieldInfo> manifest_fields_;   ///< closed fields, write order
  std::vector<FieldWriteReport> reports_;
  std::vector<ChunkReport> all_chunks_;
  std::size_t chunk_bytes_emitted_ = 0;      ///< absolute base of the next field
  std::size_t total_raw_bytes_ = 0;
  std::size_t tuner_probe_calls_ = 0;
  std::size_t probe_cache_hits_ = 0;
  std::size_t peak_buffered_chunks_ = 0;
  std::size_t peak_buffered_bytes_ = 0;
  std::size_t peak_staged_bytes_ = 0;
  bool finished_ = false;
  Status failed_;               ///< sticky: first failure poisons the build
};

/// Shards, tunes, compresses, and assembles one complete single-field
/// archive (any format version) through \p sink — the compatibility path
/// behind write(ArrayView), implemented as one ArchiveAssembler session fed
/// the whole array under the default field name.
Result<ArchiveWriteResult> write_archive(const ArchiveWriteConfig& config,
                                         WriterWarmState& state, const ArrayView& data,
                                         ByteSink& sink);

}  // namespace fraz::archive::detail

#endif  // FRAZ_ARCHIVE_PIPELINE_HPP
