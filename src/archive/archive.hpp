#ifndef FRAZ_ARCHIVE_ARCHIVE_HPP
#define FRAZ_ARCHIVE_ARCHIVE_HPP

/// \file archive.hpp
/// Chunked, seekable super-frame archive over the fixed-ratio pipeline —
/// the in-memory transport.
///
/// FRaZ's ratio guarantee is framed per whole field, but production stores
/// (cf. C-Blosc2's super-chunk/frame design) shard data into independently
/// compressed, checksummed chunks so large campaigns get parallel compression
/// and random access without full decompression.  An archive shards each
/// field along its slowest dimension, compresses every chunk through a
/// `fraz::Engine` on the shared thread pool, and enforces the fixed ratio at
/// the *archive* level: per-chunk ratios may drift inside (or even out of)
/// the band, the aggregate raw/archive ratio is what must land in ρt(1±ε)
/// and is recorded in the footer.
///
/// **Ingestion is push-based.**  Data enters through a FieldSession:
/// `begin()` starts a build, `open_field(name, desc)` declares one field's
/// geometry, and the caller push()es planes or slabs as they arrive —
/// simulation time steps, instrument planes — in any slab granularity.  The
/// session assembles chunk rows and hands each completed row to the parallel
/// chunk pipeline immediately, so writer *input* memory is O(chunk-row ×
/// workers), never O(field).  `write(ArrayView)` remains as a thin
/// compatibility wrapper: one session fed a single slab (byte-identical
/// archives, gated by test).  A v3 archive holds any number of named fields;
/// v1/v2 single-field archives remain fully readable and writable.
///
/// The wire formats (v3 multi-field and v2 single-field chunks-first
/// streaming layouts, v1 manifest-first legacy layout) are documented in
/// `archive/format.hpp`; the file-backed transport that streams chunks to
/// disk as they finish lives in `archive/archive_file.hpp`.  All transports
/// share one chunk pipeline and one manifest codec, so in-memory and
/// file-backed packs of the same data are byte-identical.
///
/// Seekability: the manifest and footer carry their own CRCs, chunk CRCs live
/// in the manifest, and chunk payloads are validated only when touched — a
/// flipped bit in chunk i fails exactly the reads that cover chunk i.
///
/// Determinism: chunk boundaries depend only on (shape, dtype, chunk_extent),
/// every chunk warm-starts from the same chunk-0 bound, and tuning inside the
/// writer is forced single-threaded — so packing with 1 worker and N workers
/// yields byte-identical archives, whether the data arrived as one array or
/// plane by plane.

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "archive/format.hpp"
#include "archive/reader_core.hpp"
#include "engine/engine.hpp"
#include "ndarray/ndarray.hpp"
#include "util/buffer.hpp"
#include "util/status.hpp"

namespace fraz::archive {

namespace detail {
class ArchiveAssembler;
class ByteSink;
class BufferSink;
}  // namespace detail

/// Construction-time configuration of an archive writer (both transports).
struct ArchiveWriteConfig {
  /// Backend + tuning knobs; engine.tuner.target_ratio/epsilon define the
  /// archive-level acceptance band.  Tuner thread parallelism is forced to 1
  /// inside the writer — archive parallelism comes from chunks, and a
  /// single-threaded tune keeps the chosen bounds (and therefore the archive
  /// bytes) independent of worker count.
  EngineConfig engine;
  /// Slowest-axis planes per chunk; 0 picks a policy from the shape alone
  /// (~16 chunks, at least 4 KiB of raw data each).  Per-field overrides go
  /// through FieldDesc::chunk_extent.
  std::size_t chunk_extent = 0;
  /// Chunk-compression workers; 0 selects hardware concurrency.  Never
  /// affects the output bytes.
  unsigned threads = 0;
  /// On-disk format write() emits.  v2 (default) is the chunks-first
  /// streaming layout and records the backend by registry name, so user
  /// plugins round-trip; v1 is the legacy manifest-first layout restricted
  /// to the four built-in backends (and cannot stream — the whole chunk
  /// region is buffered before the manifest is written).  Multi-field
  /// builds started with begin() default to v3.
  std::uint8_t format_version = kFormatVersion;
  /// When the backend is "zfp" and a chunk's accuracy-mode ratio misses the
  /// acceptance band (ZFP's bit-plane treads are too coarse on small chunks
  /// — the expressibility limit the paper reports in §VI-B.3), recompress
  /// that chunk in fixed-rate mode at a rate targeting its share of the
  /// aggregate band.  Rate-mode chunks trade the pointwise error bound for
  /// the ratio guarantee; disable to keep every chunk error-bounded.
  bool zfp_rate_fallback = true;
};

/// Geometry of one field to be ingested through a FieldSession.
struct FieldDesc {
  DType dtype{};
  /// Full logical shape, slowest axis first.  push() delivers slabs of
  /// complete slowest-axis planes until shape[0] planes have arrived.
  Shape shape;
  /// Slowest-axis planes per chunk; 0 defers to the writer config (and its
  /// auto policy).
  std::size_t chunk_extent = 0;
};

/// Writer-side detail of one chunk (ChunkEntry plus how it was produced).
struct ChunkReport {
  ChunkEntry entry;
  /// Accuracy-mode bound the chunk was tuned at — equal to entry.error_bound
  /// except for rate-fallback chunks, whose manifest entry records 0 (no
  /// pointwise guarantee) while this bound still seeds the next write.
  double tuned_bound = 0;
  double ratio = 0;           ///< raw/compressed of this chunk alone
  double seconds = 0;         ///< wall time of this chunk's compression task
  bool warm = false;          ///< served by the shared warm-start bound
  bool retrained = false;     ///< chunk paid full training
  bool in_band = false;       ///< chunk ratio inside the band (informational)
  bool rate_fallback = false; ///< rescued by the ZFP fixed-rate fallback
};

/// Writer-side outcome of one field's ingestion session.
struct FieldWriteReport {
  std::string name;
  DType dtype{};
  Shape shape;
  std::size_t chunk_extent = 0;
  std::size_t chunk_count = 0;
  std::size_t raw_bytes = 0;
  std::size_t payload_bytes = 0;  ///< compressed chunk bytes of this field
  double payload_ratio = 0;       ///< raw / payload — the manifest's per-field ratio
  bool in_band = false;           ///< payload_ratio within the band (informational)
  std::size_t warm_chunks = 0;
  std::size_t retrained_chunks = 0;
  std::size_t rate_fallback_chunks = 0;
  std::vector<ChunkReport> chunks;  ///< offsets absolute within the chunk region
};

/// Outcome of one archive write (either transport).  The flat members mirror
/// the archive totals (and fields[0]'s geometry), `fields` the per-field
/// breakdown.
struct ArchiveWriteResult {
  std::uint8_t format_version = 0;
  std::size_t chunk_count = 0;      ///< fields[0]'s chunk count
  std::size_t chunk_extent = 0;     ///< fields[0]'s chunk extent
  std::size_t raw_bytes = 0;        ///< total across every field
  std::size_t archive_bytes = 0;
  double achieved_ratio = 0;  ///< raw / archive — the footer's aggregate ratio
  bool in_band = false;       ///< aggregate ratio within ρt(1±ε)
  std::size_t warm_chunks = 0;
  std::size_t retrained_chunks = 0;
  std::size_t rate_fallback_chunks = 0;
  /// Compressor probes actually spent tuning this write (chunk-0 training
  /// plus every chunk engine's tuning), cache-served probes excluded.
  std::size_t tuner_probe_calls = 0;
  /// Tuning probes the writer's shared probe cache served for free.
  std::size_t probe_cache_hits = 0;
  /// Peak number of chunk payloads the writer held in memory at once
  /// (claimed-but-unemitted); bounded by workers + 1, which is what makes
  /// the streaming transport's memory O(largest chunk × workers).
  std::size_t peak_buffered_chunks = 0;
  /// Peak bytes of completed-but-unemitted chunk payloads.
  std::size_t peak_buffered_bytes = 0;
  /// Peak bytes of raw *input* the writer owned at once: queued and
  /// in-compression chunk rows plus the session's staging row.  Bounded by
  /// (workers + 2) chunk rows — the push path never materializes a field.
  std::size_t peak_staged_bytes = 0;
  double seconds = 0;
  std::vector<ChunkReport> chunks;       ///< every chunk, all fields, in write order
  std::vector<FieldWriteReport> fields;  ///< per-field breakdown, in write order
};

/// Warm-start state a writer carries across write() calls and field
/// sessions, shared by the in-memory and file transports: the persistent
/// chunk-0 tuning engine plus the thread-safe stores every per-worker chunk
/// engine adopts — a BoundStore holding the freshest feasible bound under a
/// deterministic per-(field, chunk) key (the time dimension of Algorithm 3;
/// one key per chunk so worker scheduling can never change which bound a
/// chunk sees, one namespace per field so fields warm-start independently),
/// and the ProbeCache that dedups tuning probes across chunks, fields, and
/// writes.
struct WriterWarmState {
  explicit WriterWarmState(const EngineConfig& engine_config);

  Engine tune_engine;   ///< persistent per-field chunk-0 warm start
  BoundStorePtr bounds;
  ProbeCachePtr probes;

  /// Chunk-grid geometry a field's per-chunk warm keys were minted for; an
  /// ingest of the same field with a different geometry invalidates them
  /// (the chunk index would map onto different planes).
  struct FieldGeometry {
    Shape shape;
    std::size_t extent = 0;
    std::size_t chunk_count = 0;
  };
  std::map<std::string, FieldGeometry> fields;
};

/// Handle to one field's in-progress ingestion: push planes/slabs as they
/// arrive, then close().  Obtained from a writer's open_field(); the handle
/// tracks its build weakly, so a session that outlives the build (after
/// cancel() or writer destruction) degrades to "session is closed" errors
/// instead of dangling.  Move-only; always close() before dropping — an
/// unclosed field keeps its build from finishing.
class FieldSession {
public:
  FieldSession() noexcept = default;  ///< disengaged
  FieldSession(FieldSession&& other) noexcept = default;
  FieldSession& operator=(FieldSession&& other) noexcept = default;
  FieldSession(const FieldSession&) = delete;
  FieldSession& operator=(const FieldSession&) = delete;
  ~FieldSession() = default;

  bool open() const noexcept { return !assembler_.expired(); }

  /// Ingest \p slab: one or more complete slowest-axis planes, shaped
  /// {k, rest...} with the field's trailing extents and dtype.  Completed
  /// chunk rows dispatch to the parallel pipeline immediately; push blocks
  /// only when the pipeline's bounded window is full (which is what bounds
  /// the writer's input memory).  The slab is copied — the caller may reuse
  /// its buffer the moment push returns.
  Status push(const ArrayView& slab) noexcept;

  /// Finish the field: waits for its chunks to be compressed and emitted.
  /// Fails (and stays open) if fewer than shape[0] planes were pushed.
  Result<FieldWriteReport> close() noexcept;

private:
  friend class ArchiveWriter;
  friend class ArchiveFileWriter;
  explicit FieldSession(std::weak_ptr<detail::ArchiveAssembler> assembler) noexcept
      : assembler_(std::move(assembler)) {}

  std::weak_ptr<detail::ArchiveAssembler> assembler_;
};

/// Shards fields along their slowest dimension and compresses the chunks in
/// parallel, one Engine per worker.  Warm-starting is Algorithm 3's reuse
/// applied twice: within a field, every chunk starts from the bound tuned on
/// that field's chunk 0; across write() calls / sessions for the same field
/// name (a time series packed through one writer), each chunk starts from
/// the bound *it* used last step.  Both seeds depend only on (field, chunk)
/// identity — never on which worker handles a chunk — so a whole campaign
/// pays full ratio training roughly once per field and the archives stay
/// byte-identical at any worker count.
class ArchiveWriter {
public:
  /// Non-throwing factory; unknown backends / invalid tuner configs come
  /// back as a Status.
  static Result<ArchiveWriter> create(ArchiveWriteConfig config) noexcept;

  /// Throwing convenience constructor (setup code, tests).
  explicit ArchiveWriter(ArchiveWriteConfig config);

  ArchiveWriter(ArchiveWriter&&) noexcept;
  ArchiveWriter& operator=(ArchiveWriter&&) noexcept;
  ~ArchiveWriter();

  const ArchiveWriteConfig& config() const noexcept { return config_; }

  /// Compress \p data into a complete single-field archive in the caller's
  /// reusable \p out — a thin compatibility wrapper over one FieldSession
  /// fed the whole array (same bytes, gated by test).  Non-throwing; on
  /// failure \p out is unspecified.  Fails while a begin() build is active.
  Result<ArchiveWriteResult> write(const ArrayView& data, Buffer& out) noexcept;

  /// Start a streaming multi-field build into \p out (cleared; it must
  /// outlive the build).  \p version defaults to the v3 multi-field layout;
  /// v2/v1 are accepted for single-field builds.  Fails if a build is
  /// already in progress.
  Status begin(Buffer& out, std::uint8_t version = kFormatVersionMultiField) noexcept;

  /// Declare the next field of the current build and get its ingestion
  /// session.  One field is open at a time; names must be unique within the
  /// build (and are the warm-start namespace across builds).
  Result<FieldSession> open_field(const std::string& name, const FieldDesc& desc) noexcept;

  /// Seal the build: write the field-table manifest and footer.  Every
  /// opened field must have been closed.  On failure the build stays active
  /// — close the offending field and retry, or cancel().
  Result<ArchiveWriteResult> finish() noexcept;

  /// Abandon an in-progress build (the output buffer is left holding a
  /// partial, unreadable archive).  No-op when no build is active.
  void cancel() noexcept;

  /// The writer's persistent per-(field, chunk) warm-bound store — the state
  /// worth saving between tuning-campaign runs (see BoundStore::save/load).
  const BoundStorePtr& bound_store() const noexcept { return state_->bounds; }

private:
  ArchiveWriteConfig config_;
  /// Heap-allocated so sessions and assemblers can hold stable references
  /// across writer moves.
  std::unique_ptr<WriterWarmState> state_;
  std::unique_ptr<detail::BufferSink> build_sink_;     ///< active build only
  std::shared_ptr<detail::ArchiveAssembler> build_;    ///< active build only
};

/// Random-access reader over an archive held in memory.  The reader does not
/// own the bytes; they must outlive it.  open() validates manifest and
/// footer only — chunk payloads are checked (CRC + backend validation) by
/// exactly the reads that touch them, so corruption in one chunk leaves
/// every other chunk readable.  Reads all format versions; the unnamed
/// read methods serve fields()[0] (the only field of a v1/v2 archive).
class ArchiveReader {
public:
  /// Validate manifest + footer and build the chunk index.
  static Result<ArchiveReader> open(const std::uint8_t* data, std::size_t size) noexcept;

  const ArchiveInfo& info() const noexcept { return core_.info(); }

  /// Field table of the archive (one synthesized entry for v1/v2).
  const std::vector<FieldInfo>& fields() const noexcept { return core_.fields(); }

  /// Shape of chunk \p i ({extent_i, rest...}; the last chunk may be short).
  Shape chunk_shape(std::size_t i) const;
  Shape chunk_shape(const std::string& field, std::size_t i) const;

  /// Decompress a whole field.  \p threads > 1 decodes chunks in parallel,
  /// one Engine per worker; 0 selects hardware concurrency.
  Result<NdArray> read_all(unsigned threads = 1) noexcept;
  Result<NdArray> read_all(const std::string& field, unsigned threads = 1) noexcept;

  /// Decompress exactly chunk \p i of a field, validating only its bytes.
  Result<NdArray> read_chunk(std::size_t i) noexcept;
  Result<NdArray> read_chunk(const std::string& field, std::size_t i) noexcept;

  /// Decompress the slowest-axis plane range [first, first + count) of a
  /// field, touching (and validating) only the chunks that cover it.  Wide
  /// ranges decode their chunks in parallel when \p threads allows (same
  /// semantics as read_all; output ordering and per-chunk CRC isolation
  /// preserved).
  Result<NdArray> read_range(std::size_t first, std::size_t count,
                             unsigned threads = 1) noexcept;
  Result<NdArray> read_range(const std::string& field, std::size_t first,
                             std::size_t count, unsigned threads = 1) noexcept;

private:
  ArchiveReader(const std::uint8_t* data, std::size_t size,
                detail::ReaderCore core) noexcept
      : source_(data, size), core_(std::move(core)) {}

  detail::MemorySource source_;  ///< zero-copy view of the caller's bytes
  detail::ReaderCore core_;      ///< shared per-field read dispatch
};

}  // namespace fraz::archive

#endif  // FRAZ_ARCHIVE_ARCHIVE_HPP
