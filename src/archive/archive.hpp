#ifndef FRAZ_ARCHIVE_ARCHIVE_HPP
#define FRAZ_ARCHIVE_ARCHIVE_HPP

/// \file archive.hpp
/// Chunked, seekable super-frame archive over the fixed-ratio pipeline —
/// the in-memory transport.
///
/// FRaZ's ratio guarantee is framed per whole field, but production stores
/// (cf. C-Blosc2's super-chunk/frame design) shard data into independently
/// compressed, checksummed chunks so large campaigns get parallel compression
/// and random access without full decompression.  An archive shards an array
/// along its slowest dimension, compresses every chunk through a `fraz::Engine`
/// on the shared thread pool, and enforces the fixed ratio at the *archive*
/// level: per-chunk ratios may drift inside (or even out of) the band, the
/// aggregate raw/archive ratio is what must land in ρt(1±ε) and is recorded
/// in the footer.
///
/// The wire format (v2 chunks-first streaming layout, v1 manifest-first
/// legacy layout) is documented in `archive/format.hpp`; the file-backed
/// transport that streams chunks to disk as they finish lives in
/// `archive/archive_file.hpp`.  All transports share one chunk pipeline and
/// one manifest codec, so in-memory and file-backed packs of the same data
/// are byte-identical.
///
/// Seekability: the manifest and footer carry their own CRCs, chunk CRCs live
/// in the manifest, and chunk payloads are validated only when touched — a
/// flipped bit in chunk i fails exactly the reads that cover chunk i.
///
/// Determinism: chunk boundaries depend only on (shape, dtype, chunk_extent),
/// every chunk warm-starts from the same chunk-0 bound, and tuning inside the
/// writer is forced single-threaded — so packing with 1 worker and N workers
/// yields byte-identical archives.

#include <cstdint>
#include <string>
#include <vector>

#include "archive/format.hpp"
#include "engine/engine.hpp"
#include "ndarray/ndarray.hpp"
#include "util/buffer.hpp"
#include "util/status.hpp"

namespace fraz::archive {

/// Construction-time configuration of an archive writer (both transports).
struct ArchiveWriteConfig {
  /// Backend + tuning knobs; engine.tuner.target_ratio/epsilon define the
  /// archive-level acceptance band.  Tuner thread parallelism is forced to 1
  /// inside the writer — archive parallelism comes from chunks, and a
  /// single-threaded tune keeps the chosen bounds (and therefore the archive
  /// bytes) independent of worker count.
  EngineConfig engine;
  /// Slowest-axis planes per chunk; 0 picks a policy from the shape alone
  /// (~16 chunks, at least 4 KiB of raw data each).
  std::size_t chunk_extent = 0;
  /// Chunk-compression workers; 0 selects hardware concurrency.  Never
  /// affects the output bytes.
  unsigned threads = 0;
  /// On-disk format to emit.  v2 (default) is the chunks-first streaming
  /// layout and records the backend by registry name, so user plugins
  /// round-trip; v1 is the legacy manifest-first layout restricted to the
  /// four built-in backends (and cannot stream — the whole chunk region is
  /// buffered before the manifest is written).
  std::uint8_t format_version = kFormatVersion;
  /// When the backend is "zfp" and a chunk's accuracy-mode ratio misses the
  /// acceptance band (ZFP's bit-plane treads are too coarse on small chunks
  /// — the expressibility limit the paper reports in §VI-B.3), recompress
  /// that chunk in fixed-rate mode at a rate targeting its share of the
  /// aggregate band.  Rate-mode chunks trade the pointwise error bound for
  /// the ratio guarantee; disable to keep every chunk error-bounded.
  bool zfp_rate_fallback = true;
};

/// Writer-side detail of one chunk (ChunkEntry plus how it was produced).
struct ChunkReport {
  ChunkEntry entry;
  /// Accuracy-mode bound the chunk was tuned at — equal to entry.error_bound
  /// except for rate-fallback chunks, whose manifest entry records 0 (no
  /// pointwise guarantee) while this bound still seeds the next write.
  double tuned_bound = 0;
  double ratio = 0;           ///< raw/compressed of this chunk alone
  double seconds = 0;         ///< wall time of this chunk's compression task
  bool warm = false;          ///< served by the shared warm-start bound
  bool retrained = false;     ///< chunk paid full training
  bool in_band = false;       ///< chunk ratio inside the band (informational)
  bool rate_fallback = false; ///< rescued by the ZFP fixed-rate fallback
};

/// Outcome of one archive write (either transport).
struct ArchiveWriteResult {
  std::uint8_t format_version = 0;
  std::size_t chunk_count = 0;
  std::size_t chunk_extent = 0;
  std::size_t raw_bytes = 0;
  std::size_t archive_bytes = 0;
  double achieved_ratio = 0;  ///< raw / archive — the footer's aggregate ratio
  bool in_band = false;       ///< aggregate ratio within ρt(1±ε)
  std::size_t warm_chunks = 0;
  std::size_t retrained_chunks = 0;
  std::size_t rate_fallback_chunks = 0;
  /// Compressor probes actually spent tuning this write (chunk-0 training
  /// plus every chunk engine's tuning), cache-served probes excluded.
  std::size_t tuner_probe_calls = 0;
  /// Tuning probes the writer's shared probe cache served for free.
  std::size_t probe_cache_hits = 0;
  /// Peak number of chunk payloads the writer held in memory at once
  /// (claimed-but-unemitted); bounded by workers + 1, which is what makes
  /// the streaming transport's memory O(largest chunk × workers).
  std::size_t peak_buffered_chunks = 0;
  /// Peak bytes of completed-but-unemitted chunk payloads.
  std::size_t peak_buffered_bytes = 0;
  double seconds = 0;
  std::vector<ChunkReport> chunks;
};

/// Warm-start state a writer carries across write() calls, shared by the
/// in-memory and file transports: the persistent chunk-0 tuning engine plus
/// the thread-safe stores every per-worker chunk engine adopts — a
/// BoundStore holding the freshest feasible bound under a deterministic
/// per-chunk key (the time dimension of Algorithm 3, one key per chunk so
/// worker scheduling can never change which bound a chunk sees), and the
/// ProbeCache that dedups tuning probes across chunks and writes.
struct WriterWarmState {
  explicit WriterWarmState(const EngineConfig& engine_config);

  Engine tune_engine;   ///< persistent chunk-0 warm start across writes
  BoundStorePtr bounds;
  ProbeCachePtr probes;
  /// Geometry the per-chunk keys were minted for; a write with a different
  /// geometry invalidates them (chunk index would mean different planes).
  Shape shape;
  std::size_t extent = 0;
  std::size_t chunk_count = 0;
};

/// Shards an array along its slowest dimension and compresses the chunks in
/// parallel, one Engine per worker.  Warm-starting is Algorithm 3's reuse
/// applied twice: within a write, every chunk starts from the bound tuned on
/// chunk 0; across write() calls (a time series packed through one writer),
/// each chunk starts from the bound *it* used last step.  Both seeds depend
/// only on chunk identity — never on which worker handles a chunk — so a
/// whole campaign pays full ratio training roughly once and the archives
/// stay byte-identical at any worker count.
class ArchiveWriter {
public:
  /// Non-throwing factory; unknown backends / invalid tuner configs come
  /// back as a Status.
  static Result<ArchiveWriter> create(ArchiveWriteConfig config) noexcept;

  /// Throwing convenience constructor (setup code, tests).
  explicit ArchiveWriter(ArchiveWriteConfig config);

  const ArchiveWriteConfig& config() const noexcept { return config_; }

  /// Compress \p data into a complete archive in the caller's reusable
  /// \p out.  Non-throwing; on failure \p out is unspecified.
  Result<ArchiveWriteResult> write(const ArrayView& data, Buffer& out) noexcept;

private:
  ArchiveWriteConfig config_;
  WriterWarmState state_;  ///< persistent warm bounds + probe cache
};

/// Random-access reader over an archive held in memory.  The reader does not
/// own the bytes; they must outlive it.  open() validates manifest and
/// footer only — chunk payloads are checked (CRC + backend validation) by
/// exactly the reads that touch them, so corruption in one chunk leaves
/// every other chunk readable.  Reads both format versions.
class ArchiveReader {
public:
  /// Validate manifest + footer and build the chunk index.
  static Result<ArchiveReader> open(const std::uint8_t* data, std::size_t size) noexcept;

  const ArchiveInfo& info() const noexcept { return info_; }

  /// Shape of chunk \p i ({extent_i, rest...}; the last chunk may be short).
  Shape chunk_shape(std::size_t i) const;

  /// Decompress the whole archive.  \p threads > 1 decodes chunks in
  /// parallel, one Engine per worker; 0 selects hardware concurrency.
  Result<NdArray> read_all(unsigned threads = 1) noexcept;

  /// Decompress exactly chunk \p i, validating only its bytes.
  Result<NdArray> read_chunk(std::size_t i) noexcept;

  /// Decompress the slowest-axis plane range [first, first + count),
  /// touching (and validating) only the chunks that cover it.  Wide ranges
  /// decode their chunks in parallel when \p threads allows (same semantics
  /// as read_all; output ordering and per-chunk CRC isolation preserved).
  Result<NdArray> read_range(std::size_t first, std::size_t count,
                             unsigned threads = 1) noexcept;

private:
  ArchiveReader(const std::uint8_t* data, std::size_t size, ArchiveInfo info,
                Engine engine);

  const std::uint8_t* data_;
  std::size_t size_;
  ArchiveInfo info_;
  Engine engine_;   ///< serial decode path; workers clone their own
  Buffer scratch_;  ///< fetch scratch for the serial path
};

}  // namespace fraz::archive

#endif  // FRAZ_ARCHIVE_ARCHIVE_HPP
