#ifndef FRAZ_ARCHIVE_ARCHIVE_HPP
#define FRAZ_ARCHIVE_ARCHIVE_HPP

/// \file archive.hpp
/// Chunked, seekable super-frame archive over the fixed-ratio pipeline.
///
/// FRaZ's ratio guarantee is framed per whole field, but production stores
/// (cf. C-Blosc2's super-chunk/frame design) shard data into independently
/// compressed, checksummed chunks so large campaigns get parallel compression
/// and random access without full decompression.  An archive shards an array
/// along its slowest dimension, compresses every chunk through a `fraz::Engine`
/// on the shared thread pool, and enforces the fixed ratio at the *archive*
/// level: per-chunk ratios may drift inside (or even out of) the band, the
/// aggregate raw/archive ratio is what must land in ρt(1±ε) and is recorded
/// in the footer.
///
/// Byte layout (all integers little-endian, varints LEB128):
///
///   [manifest]   a standard Container frame (magic 'FRaZ', version,
///                compressor id, dtype, FULL logical shape, CRC-32) whose
///                payload is the archive manifest:
///                  u32     archive magic 'FRzA'
///                  u8      archive format version (1)
///                  f64     target ratio ρt
///                  f64     epsilon ε
///                  varint  chunk extent (slowest-axis planes per chunk)
///                  varint  chunk count
///                  per chunk: varint offset   (from start of chunk region)
///                             varint size     (compressed bytes)
///                             f64    error bound the chunk was written at
///                             u32    CRC-32 of the chunk's bytes
///   [chunks]     the chunk payloads, concatenated.  Each is itself a
///                complete Container frame produced by the backend for the
///                chunk's slice (shape {extent_i, rest...}), so a single
///                chunk is decodable by the ordinary decompression path.
///   [footer]     fixed 40 bytes at the very end:
///                  u32  footer magic 'FRzE'
///                  u64  manifest size (bytes; where the chunk region starts)
///                  u64  raw bytes of the original array
///                  u64  total archive bytes (self check)
///                  f64  achieved aggregate ratio (raw / archive)
///                  u32  CRC-32 over the 36 footer bytes before it
///
/// Seekability: the manifest and footer carry their own CRCs, chunk CRCs live
/// in the manifest, and chunk payloads are validated only when touched — a
/// flipped bit in chunk i fails exactly the reads that cover chunk i.
///
/// Determinism: chunk boundaries depend only on (shape, dtype, chunk_extent),
/// every chunk warm-starts from the same chunk-0 bound, and tuning inside the
/// writer is forced single-threaded — so packing with 1 worker and N workers
/// yields byte-identical archives.

#include <cstdint>
#include <string>
#include <vector>

#include "compressors/container.hpp"
#include "engine/engine.hpp"
#include "ndarray/ndarray.hpp"
#include "util/buffer.hpp"
#include "util/status.hpp"

namespace fraz::archive {

/// Archive format version written by this implementation.
inline constexpr std::uint8_t kFormatVersion = 1;

/// Size of the fixed trailer at the end of every archive.
inline constexpr std::size_t kFooterBytes = 40;

/// Registry name of a container CompressorId ("sz", "zfp", ...).
std::string backend_name(CompressorId id);

/// Inverse of backend_name; throws Unsupported for names outside the four
/// built-in ids the archive format can record.
CompressorId backend_id(const std::string& name);

/// Construction-time configuration of an ArchiveWriter.
struct ArchiveWriteConfig {
  /// Backend + tuning knobs; engine.tuner.target_ratio/epsilon define the
  /// archive-level acceptance band.  Tuner thread parallelism is forced to 1
  /// inside the writer — archive parallelism comes from chunks, and a
  /// single-threaded tune keeps the chosen bounds (and therefore the archive
  /// bytes) independent of worker count.
  EngineConfig engine;
  /// Slowest-axis planes per chunk; 0 picks a policy from the shape alone
  /// (~16 chunks, at least 4 KiB of raw data each).
  std::size_t chunk_extent = 0;
  /// Chunk-compression workers; 0 selects hardware concurrency.  Never
  /// affects the output bytes.
  unsigned threads = 0;
};

/// One chunk's entry as recorded in (or parsed from) the manifest.
struct ChunkEntry {
  std::size_t offset = 0;     ///< from the start of the chunk region
  std::size_t size = 0;       ///< compressed bytes
  double error_bound = 0;     ///< bound the chunk was compressed at
  std::uint32_t crc = 0;      ///< CRC-32 of the chunk's bytes
};

/// Writer-side detail of one chunk (ChunkEntry plus how it was produced).
struct ChunkReport {
  ChunkEntry entry;
  double ratio = 0;           ///< raw/compressed of this chunk alone
  double seconds = 0;         ///< wall time of this chunk's compression task
  bool warm = false;          ///< served by the shared warm-start bound
  bool retrained = false;     ///< chunk paid full training
  bool in_band = false;       ///< chunk ratio inside the band (informational)
};

/// Outcome of one ArchiveWriter::write.
struct ArchiveWriteResult {
  std::size_t chunk_count = 0;
  std::size_t chunk_extent = 0;
  std::size_t raw_bytes = 0;
  std::size_t archive_bytes = 0;
  double achieved_ratio = 0;  ///< raw / archive — the footer's aggregate ratio
  bool in_band = false;       ///< aggregate ratio within ρt(1±ε)
  std::size_t warm_chunks = 0;
  std::size_t retrained_chunks = 0;
  double seconds = 0;
  std::vector<ChunkReport> chunks;
};

/// Shards an array along its slowest dimension and compresses the chunks in
/// parallel, one Engine per worker.  Warm-starting is Algorithm 3's reuse
/// applied twice: within a write, every chunk starts from the bound tuned on
/// chunk 0; across write() calls (a time series packed through one writer),
/// each chunk starts from the bound *it* used last step.  Both seeds depend
/// only on chunk identity — never on which worker handles a chunk — so a
/// whole campaign pays full ratio training roughly once and the archives
/// stay byte-identical at any worker count.
class ArchiveWriter {
public:
  /// Non-throwing factory; unknown backends / invalid tuner configs come
  /// back as a Status.
  static Result<ArchiveWriter> create(ArchiveWriteConfig config) noexcept;

  /// Throwing convenience constructor (setup code, tests).
  explicit ArchiveWriter(ArchiveWriteConfig config);

  const ArchiveWriteConfig& config() const noexcept { return config_; }

  /// Compress \p data into a complete archive in the caller's reusable
  /// \p out.  Non-throwing; on failure \p out is unspecified.
  Result<ArchiveWriteResult> write(const ArrayView& data, Buffer& out) noexcept;

private:
  ArchiveWriteConfig config_;
  Engine tune_engine_;  ///< persistent: carries the chunk-0 bound across writes

  /// Per-chunk bounds of the previous write (valid while the chunk geometry
  /// is unchanged) — the time dimension of the warm start.
  Shape last_shape_;
  std::size_t last_extent_ = 0;
  std::vector<double> chunk_bounds_;
};

/// Parsed archive metadata (manifest + footer; chunk payloads untouched).
struct ArchiveInfo {
  CompressorId id{};
  std::string compressor;       ///< registry name of id
  DType dtype{};
  Shape shape;                  ///< full logical shape
  std::size_t chunk_extent = 0;
  std::size_t chunk_count = 0;
  double target_ratio = 0;
  double epsilon = 0;
  std::size_t raw_bytes = 0;
  std::size_t archive_bytes = 0;
  double achieved_ratio = 0;    ///< aggregate ratio recorded in the footer
  std::vector<ChunkEntry> chunks;
};

/// Random-access reader over an archive produced by ArchiveWriter.  The
/// reader does not own the bytes; they must outlive it.  open() validates
/// manifest and footer only — chunk payloads are checked (CRC + container
/// CRC) by exactly the reads that touch them, so corruption in one chunk
/// leaves every other chunk readable.
class ArchiveReader {
public:
  /// Validate manifest + footer and build the chunk index.
  static Result<ArchiveReader> open(const std::uint8_t* data, std::size_t size) noexcept;

  const ArchiveInfo& info() const noexcept { return info_; }

  /// Shape of chunk \p i ({extent_i, rest...}; the last chunk may be short).
  Shape chunk_shape(std::size_t i) const;

  /// Decompress the whole archive.  \p threads > 1 decodes chunks in
  /// parallel, one Engine per worker; 0 selects hardware concurrency.
  Result<NdArray> read_all(unsigned threads = 1) noexcept;

  /// Decompress exactly chunk \p i, validating only its bytes.
  Result<NdArray> read_chunk(std::size_t i) noexcept;

  /// Decompress the slowest-axis plane range [first, first + count),
  /// touching (and validating) only the chunks that cover it.
  Result<NdArray> read_range(std::size_t first, std::size_t count) noexcept;

private:
  ArchiveReader(const std::uint8_t* data, std::size_t size, std::size_t chunk_region,
                ArchiveInfo info, Engine engine);

  /// Validate chunk \p i's CRC and decode it (throwing helper).
  NdArray decode_chunk(Engine& engine, std::size_t i) const;

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t chunk_region_;  ///< offset of the chunk region (= manifest size)
  ArchiveInfo info_;
  Engine engine_;             ///< serial decode path; workers clone their own
};

}  // namespace fraz::archive

#endif  // FRAZ_ARCHIVE_ARCHIVE_HPP
