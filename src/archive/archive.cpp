#include "archive/archive.hpp"

#include <algorithm>

#include "archive/pipeline.hpp"
#include "util/error.hpp"

namespace fraz::archive {

// ------------------------------------------------------------ field session

Status FieldSession::push(const ArrayView& slab) noexcept {
  const std::shared_ptr<detail::ArchiveAssembler> assembler = assembler_.lock();
  if (!assembler) return Status::invalid_argument("archive: field session is closed");
  return assembler->push(slab);
}

Result<FieldWriteReport> FieldSession::close() noexcept {
  const std::shared_ptr<detail::ArchiveAssembler> assembler = assembler_.lock();
  if (!assembler) return Status::invalid_argument("archive: field session is closed");
  Result<FieldWriteReport> report = assembler->close_field();
  if (report.ok()) assembler_.reset();
  return report;
}

// ------------------------------------------------------------------- writer

ArchiveWriter::ArchiveWriter(ArchiveWriteConfig config)
    : config_(std::move(config)),
      state_(std::make_unique<WriterWarmState>(config_.engine)) {
  // Fail construction, not the first write, on configs no write can accept
  // (unknown format version, v1 with a backend the format cannot name).
  const Status s = detail::validate_write_config(config_);
  if (!s.ok()) throw_status(s);
}

ArchiveWriter::ArchiveWriter(ArchiveWriter&&) noexcept = default;
ArchiveWriter& ArchiveWriter::operator=(ArchiveWriter&&) noexcept = default;
ArchiveWriter::~ArchiveWriter() = default;

Result<ArchiveWriter> ArchiveWriter::create(ArchiveWriteConfig config) noexcept {
  try {
    return ArchiveWriter(std::move(config));
  } catch (...) {
    return status_from_current_exception();
  }
}

Result<ArchiveWriteResult> ArchiveWriter::write(const ArrayView& data,
                                                Buffer& out) noexcept {
  if (build_)
    return Status::invalid_argument(
        "archive: a multi-field build is in progress; finish() or cancel() first");
  out.clear();
  detail::BufferSink sink(out);
  return detail::write_archive(config_, *state_, data, sink);
}

Status ArchiveWriter::begin(Buffer& out, std::uint8_t version) noexcept {
  try {
    if (build_)
      return Status::invalid_argument(
          "archive: a build is already in progress; finish() or cancel() first");
    ArchiveWriteConfig versioned = config_;
    versioned.format_version = version;
    const Status s = detail::validate_write_config(versioned);
    if (!s.ok()) return s;
    out.clear();
    build_sink_ = std::make_unique<detail::BufferSink>(out);
    build_ = std::make_shared<detail::ArchiveAssembler>(config_, *state_, *build_sink_,
                                                        version);
    return Status();
  } catch (...) {
    return status_from_current_exception();
  }
}

Result<FieldSession> ArchiveWriter::open_field(const std::string& name,
                                               const FieldDesc& desc) noexcept {
  if (!build_)
    return Status::invalid_argument("archive: no build in progress; call begin() first");
  const Status s = build_->open_field(name, desc);
  if (!s.ok()) return s;
  return FieldSession(std::weak_ptr<detail::ArchiveAssembler>(build_));
}

Result<ArchiveWriteResult> ArchiveWriter::finish() noexcept {
  if (!build_)
    return Status::invalid_argument("archive: no build in progress; call begin() first");
  Result<ArchiveWriteResult> result = build_->finish();
  if (result.ok()) {
    build_.reset();
    build_sink_.reset();
  }
  return result;
}

void ArchiveWriter::cancel() noexcept {
  build_.reset();
  build_sink_.reset();
}

// ------------------------------------------------------------------- reader

ArchiveReader::ArchiveReader(const std::uint8_t* data, std::size_t size,
                             ArchiveInfo info, std::vector<Engine> engines)
    : data_(data), size_(size), info_(std::move(info)), engines_(std::move(engines)) {}

Result<ArchiveReader> ArchiveReader::open(const std::uint8_t* data,
                                          std::size_t size) noexcept {
  try {
    const std::size_t tail_size = std::min(size, kFooterBytes);
    const Footer footer = parse_footer(data + (size - tail_size), tail_size, size);
    ArchiveInfo info =
        parse_manifest(data + footer.manifest_offset, footer.manifest_size, footer);

    // One serial-path Engine per field, created eagerly so an archive whose
    // backend is not registered fails open(), not the first read.
    std::vector<Engine> engines;
    engines.reserve(info.fields.size());
    for (const FieldInfo& field : info.fields) {
      EngineConfig engine_config;
      engine_config.compressor = field.compressor;
      auto engine = Engine::create(std::move(engine_config));
      if (!engine.ok()) return engine.status();
      engines.push_back(std::move(engine).value());
    }
    return ArchiveReader(data, size, std::move(info), std::move(engines));
  } catch (...) {
    return status_from_current_exception();
  }
}

Result<std::size_t> ArchiveReader::field_index(const std::string& name) const noexcept {
  if (const FieldInfo* field = find_field(info_, name))
    return static_cast<std::size_t>(field - info_.fields.data());
  return Status::invalid_argument("archive: no field named '" + name + "'");
}

Shape ArchiveReader::chunk_shape(std::size_t i) const {
  return detail::chunk_shape(info_.fields.front(), i);
}

Shape ArchiveReader::chunk_shape(const std::string& field, std::size_t i) const {
  const FieldInfo* f = find_field(info_, field);
  require(f != nullptr, "archive: no field named '" + field + "'");
  return detail::chunk_shape(*f, i);
}

Result<NdArray> ArchiveReader::read_field_chunk(std::size_t field,
                                                std::size_t i) noexcept {
  try {
    const FieldInfo& f = info_.fields[field];
    if (i >= f.chunk_count)
      return Status::invalid_argument("archive: chunk index out of range");
    const detail::MemorySource source(data_, size_);
    return detail::decode_chunk(engines_[field], source, f, info_.chunk_region, i,
                                scratch_);
  } catch (...) {
    return status_from_current_exception();
  }
}

Result<NdArray> ArchiveReader::read_field_range(std::size_t field, std::size_t first,
                                                std::size_t count,
                                                unsigned threads) noexcept {
  try {
    const FieldInfo& f = info_.fields[field];
    const std::size_t n0 = f.shape[0];
    if (count == 0 || first >= n0 || count > n0 - first)
      return Status::invalid_argument("archive: plane range out of bounds");
    Shape out_shape = f.shape;
    out_shape[0] = count;
    NdArray out(f.dtype, std::move(out_shape));
    const detail::MemorySource source(data_, size_);
    const Status s = detail::read_planes(source, f, info_.chunk_region, engines_[field],
                                         scratch_, first, count, threads, out);
    if (!s.ok()) return s;
    return out;
  } catch (...) {
    return status_from_current_exception();
  }
}

Result<NdArray> ArchiveReader::read_chunk(std::size_t i) noexcept {
  return read_field_chunk(0, i);
}

Result<NdArray> ArchiveReader::read_chunk(const std::string& field,
                                          std::size_t i) noexcept {
  const Result<std::size_t> index = field_index(field);
  if (!index.ok()) return index.status();
  return read_field_chunk(index.value(), i);
}

Result<NdArray> ArchiveReader::read_range(std::size_t first, std::size_t count,
                                          unsigned threads) noexcept {
  return read_field_range(0, first, count, threads);
}

Result<NdArray> ArchiveReader::read_range(const std::string& field, std::size_t first,
                                          std::size_t count, unsigned threads) noexcept {
  const Result<std::size_t> index = field_index(field);
  if (!index.ok()) return index.status();
  return read_field_range(index.value(), first, count, threads);
}

Result<NdArray> ArchiveReader::read_all(unsigned threads) noexcept {
  return read_field_range(0, 0, info_.fields.front().shape[0], threads);
}

Result<NdArray> ArchiveReader::read_all(const std::string& field,
                                        unsigned threads) noexcept {
  const Result<std::size_t> index = field_index(field);
  if (!index.ok()) return index.status();
  return read_field_range(index.value(), 0, info_.fields[index.value()].shape[0],
                          threads);
}

}  // namespace fraz::archive
