#include "archive/archive.hpp"

#include <algorithm>

#include "archive/pipeline.hpp"
#include "util/error.hpp"

namespace fraz::archive {

// ------------------------------------------------------------ field session

Status FieldSession::push(const ArrayView& slab) noexcept {
  const std::shared_ptr<detail::ArchiveAssembler> assembler = assembler_.lock();
  if (!assembler) return Status::invalid_argument("archive: field session is closed");
  return assembler->push(slab);
}

Result<FieldWriteReport> FieldSession::close() noexcept {
  const std::shared_ptr<detail::ArchiveAssembler> assembler = assembler_.lock();
  if (!assembler) return Status::invalid_argument("archive: field session is closed");
  Result<FieldWriteReport> report = assembler->close_field();
  if (report.ok()) assembler_.reset();
  return report;
}

// ------------------------------------------------------------------- writer

ArchiveWriter::ArchiveWriter(ArchiveWriteConfig config)
    : config_(std::move(config)),
      state_(std::make_unique<WriterWarmState>(config_.engine)) {
  // Fail construction, not the first write, on configs no write can accept
  // (unknown format version, v1 with a backend the format cannot name).
  const Status s = detail::validate_write_config(config_);
  if (!s.ok()) throw_status(s);
}

ArchiveWriter::ArchiveWriter(ArchiveWriter&&) noexcept = default;
ArchiveWriter& ArchiveWriter::operator=(ArchiveWriter&&) noexcept = default;
ArchiveWriter::~ArchiveWriter() = default;

Result<ArchiveWriter> ArchiveWriter::create(ArchiveWriteConfig config) noexcept {
  try {
    return ArchiveWriter(std::move(config));
  } catch (...) {
    return status_from_current_exception();
  }
}

Result<ArchiveWriteResult> ArchiveWriter::write(const ArrayView& data,
                                                Buffer& out) noexcept {
  if (build_)
    return Status::invalid_argument(
        "archive: a multi-field build is in progress; finish() or cancel() first");
  out.clear();
  detail::BufferSink sink(out);
  return detail::write_archive(config_, *state_, data, sink);
}

Status ArchiveWriter::begin(Buffer& out, std::uint8_t version) noexcept {
  try {
    if (build_)
      return Status::invalid_argument(
          "archive: a build is already in progress; finish() or cancel() first");
    ArchiveWriteConfig versioned = config_;
    versioned.format_version = version;
    const Status s = detail::validate_write_config(versioned);
    if (!s.ok()) return s;
    out.clear();
    build_sink_ = std::make_unique<detail::BufferSink>(out);
    build_ = std::make_shared<detail::ArchiveAssembler>(config_, *state_, *build_sink_,
                                                        version);
    return Status();
  } catch (...) {
    return status_from_current_exception();
  }
}

Result<FieldSession> ArchiveWriter::open_field(const std::string& name,
                                               const FieldDesc& desc) noexcept {
  if (!build_)
    return Status::invalid_argument("archive: no build in progress; call begin() first");
  const Status s = build_->open_field(name, desc);
  if (!s.ok()) return s;
  return FieldSession(std::weak_ptr<detail::ArchiveAssembler>(build_));
}

Result<ArchiveWriteResult> ArchiveWriter::finish() noexcept {
  if (!build_)
    return Status::invalid_argument("archive: no build in progress; call begin() first");
  Result<ArchiveWriteResult> result = build_->finish();
  if (result.ok()) {
    build_.reset();
    build_sink_.reset();
  }
  return result;
}

void ArchiveWriter::cancel() noexcept {
  build_.reset();
  build_sink_.reset();
}

// ------------------------------------------------------------------- reader

Result<ArchiveReader> ArchiveReader::open(const std::uint8_t* data,
                                          std::size_t size) noexcept {
  try {
    const std::size_t tail_size = std::min(size, kFooterBytes);
    const Footer footer = parse_footer(data + (size - tail_size), tail_size, size);
    ArchiveInfo info =
        parse_manifest(data + footer.manifest_offset, footer.manifest_size, footer);

    // ReaderCore creates one serial-path Engine per field eagerly, so an
    // archive whose backend is not registered fails open(), not the first
    // read.
    auto core = detail::ReaderCore::create(std::move(info));
    if (!core.ok()) return core.status();
    return ArchiveReader(data, size, std::move(core).value());
  } catch (...) {
    return status_from_current_exception();
  }
}

Shape ArchiveReader::chunk_shape(std::size_t i) const {
  return core_.shape_of_chunk(std::size_t{0}, i);
}

Shape ArchiveReader::chunk_shape(const std::string& field, std::size_t i) const {
  return core_.shape_of_chunk(field, i);
}

Result<NdArray> ArchiveReader::read_chunk(std::size_t i) noexcept {
  return core_.read_chunk(source_, std::size_t{0}, i);
}

Result<NdArray> ArchiveReader::read_chunk(const std::string& field,
                                          std::size_t i) noexcept {
  return core_.read_chunk(source_, field, i);
}

Result<NdArray> ArchiveReader::read_range(std::size_t first, std::size_t count,
                                          unsigned threads) noexcept {
  return core_.read_range(source_, std::size_t{0}, first, count, threads);
}

Result<NdArray> ArchiveReader::read_range(const std::string& field, std::size_t first,
                                          std::size_t count, unsigned threads) noexcept {
  return core_.read_range(source_, field, first, count, threads);
}

Result<NdArray> ArchiveReader::read_all(unsigned threads) noexcept {
  return core_.read_all(source_, std::size_t{0}, threads);
}

Result<NdArray> ArchiveReader::read_all(const std::string& field,
                                        unsigned threads) noexcept {
  return core_.read_all(source_, field, threads);
}

}  // namespace fraz::archive
