#include "archive/archive.hpp"

#include <algorithm>

#include "archive/pipeline.hpp"
#include "util/error.hpp"

namespace fraz::archive {

// ------------------------------------------------------------------- writer

ArchiveWriter::ArchiveWriter(ArchiveWriteConfig config)
    : config_(std::move(config)), state_(config_.engine) {
  // Fail construction, not the first write, on configs no write can accept
  // (unknown format version, v1 with a backend the format cannot name).
  const Status s = detail::validate_write_config(config_);
  if (!s.ok()) throw_status(s);
}

Result<ArchiveWriter> ArchiveWriter::create(ArchiveWriteConfig config) noexcept {
  try {
    return ArchiveWriter(std::move(config));
  } catch (...) {
    return status_from_current_exception();
  }
}

Result<ArchiveWriteResult> ArchiveWriter::write(const ArrayView& data,
                                                Buffer& out) noexcept {
  out.clear();
  detail::BufferSink sink(out);
  return detail::write_archive(config_, state_, data, sink);
}

// ------------------------------------------------------------------- reader

ArchiveReader::ArchiveReader(const std::uint8_t* data, std::size_t size,
                             ArchiveInfo info, Engine engine)
    : data_(data), size_(size), info_(std::move(info)), engine_(std::move(engine)) {}

Result<ArchiveReader> ArchiveReader::open(const std::uint8_t* data,
                                          std::size_t size) noexcept {
  try {
    const std::size_t tail_size = std::min(size, kFooterBytes);
    const Footer footer = parse_footer(data + (size - tail_size), tail_size, size);
    ArchiveInfo info =
        parse_manifest(data + footer.manifest_offset, footer.manifest_size, footer);

    EngineConfig engine_config;
    engine_config.compressor = info.compressor;
    Engine engine(std::move(engine_config));
    return ArchiveReader(data, size, std::move(info), std::move(engine));
  } catch (...) {
    return status_from_current_exception();
  }
}

Shape ArchiveReader::chunk_shape(std::size_t i) const {
  return detail::chunk_shape(info_, i);
}

Result<NdArray> ArchiveReader::read_chunk(std::size_t i) noexcept {
  try {
    if (i >= info_.chunk_count)
      return Status::invalid_argument("archive: chunk index out of range");
    const detail::MemorySource source(data_, size_);
    return detail::decode_chunk(engine_, source, info_, i, scratch_);
  } catch (...) {
    return status_from_current_exception();
  }
}

Result<NdArray> ArchiveReader::read_range(std::size_t first, std::size_t count,
                                          unsigned threads) noexcept {
  try {
    const std::size_t n0 = info_.shape[0];
    if (count == 0 || first >= n0 || count > n0 - first)
      return Status::invalid_argument("archive: plane range out of bounds");
    Shape out_shape = info_.shape;
    out_shape[0] = count;
    NdArray out(info_.dtype, std::move(out_shape));
    const detail::MemorySource source(data_, size_);
    const Status s = detail::read_planes(source, info_, engine_, scratch_, first, count,
                                         threads, out);
    if (!s.ok()) return s;
    return out;
  } catch (...) {
    return status_from_current_exception();
  }
}

Result<NdArray> ArchiveReader::read_all(unsigned threads) noexcept {
  return read_range(0, info_.shape[0], threads);
}

}  // namespace fraz::archive
