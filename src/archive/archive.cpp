#include "archive/archive.hpp"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <future>

#include "codec/checksum.hpp"
#include "codec/varint.hpp"
#include "opt/thread_pool.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

namespace fraz::archive {

namespace {

constexpr std::uint32_t kArchiveMagic = 0x417a5246u;  // "FRzA" little-endian
constexpr std::uint32_t kFooterMagic = 0x457a5246u;   // "FRzE" little-endian

/// Field keys inside the writer's Engines; the tune key is stable across
/// write() calls so the persistent engine warm-starts a whole time series.
constexpr const char* kTuneKey = "archive:chunk0";
constexpr const char* kChunkKey = "archive:chunk";

/// Chunk boundaries must depend on the data geometry only (never on worker
/// count), so 1-thread and N-thread packs produce identical archives.
std::size_t auto_chunk_extent(std::size_t n0, std::size_t plane_bytes) {
  constexpr std::size_t kTargetChunks = 16;
  constexpr std::size_t kMinChunkBytes = 4096;
  std::size_t extent = (n0 + kTargetChunks - 1) / kTargetChunks;
  if (extent * plane_bytes < kMinChunkBytes)
    extent = (kMinChunkBytes + plane_bytes - 1) / plane_bytes;
  return std::min(std::max<std::size_t>(extent, 1), n0);
}

/// Writer-internal engines tune single-threaded: archive parallelism comes
/// from chunks, and region-level cancellation races would otherwise make the
/// chosen bound (and the archive bytes) timing-dependent.
EngineConfig serial_tuning(EngineConfig config) {
  config.tuner.threads = 1;
  return config;
}

unsigned resolve_workers(unsigned requested, std::size_t tasks) {
  unsigned w = requested == 0 ? std::thread::hardware_concurrency() : requested;
  if (w == 0) w = 1;
  return static_cast<unsigned>(std::min<std::size_t>(w, tasks));
}

/// Non-owning view of the slowest-axis slice [i*extent, i*extent+planes).
ArrayView chunk_slice(const ArrayView& data, std::size_t extent, std::size_t i) {
  const Shape& shape = data.shape();
  const std::size_t n0 = shape[0];
  const std::size_t plane_bytes = data.size_bytes() / n0;
  const std::size_t first = i * extent;
  Shape chunk_shape = shape;
  chunk_shape[0] = std::min(extent, n0 - first);
  const auto* base = static_cast<const std::uint8_t*>(data.data());
  return ArrayView(base + first * plane_bytes, data.dtype(), std::move(chunk_shape));
}

}  // namespace

std::string backend_name(CompressorId id) {
  switch (id) {
    case CompressorId::kSz: return "sz";
    case CompressorId::kZfp: return "zfp";
    case CompressorId::kMgard: return "mgard";
    case CompressorId::kTruncate: return "truncate";
  }
  throw Unsupported("archive: unknown compressor id");
}

CompressorId backend_id(const std::string& name) {
  if (name == "sz") return CompressorId::kSz;
  if (name == "zfp") return CompressorId::kZfp;
  if (name == "mgard") return CompressorId::kMgard;
  if (name == "truncate") return CompressorId::kTruncate;
  throw Unsupported("archive: backend '" + name +
                    "' has no container id (format v1 records sz/zfp/mgard/truncate)");
}

// ------------------------------------------------------------------- writer

ArchiveWriter::ArchiveWriter(ArchiveWriteConfig config)
    : config_(std::move(config)), tune_engine_(serial_tuning(config_.engine)) {
  // The manifest records the backend as a CompressorId — fail construction,
  // not the first write, for backends the format cannot name.
  (void)backend_id(config_.engine.compressor);
}

Result<ArchiveWriter> ArchiveWriter::create(ArchiveWriteConfig config) noexcept {
  try {
    return ArchiveWriter(std::move(config));
  } catch (...) {
    return status_from_current_exception();
  }
}

Result<ArchiveWriteResult> ArchiveWriter::write(const ArrayView& data, Buffer& out) noexcept {
  try {
    Timer timer;
    if (data.dims() == 0 || data.elements() == 0)
      return Status::invalid_argument("archive: cannot pack an empty array");
    const CompressorId id = backend_id(config_.engine.compressor);
    const std::size_t n0 = data.shape()[0];
    const std::size_t plane_bytes = data.size_bytes() / n0;
    const std::size_t extent = config_.chunk_extent > 0
                                   ? std::min(config_.chunk_extent, n0)
                                   : auto_chunk_extent(n0, plane_bytes);
    const std::size_t chunk_count = (n0 + extent - 1) / extent;

    // Shared warm-start bound: full ratio training runs on chunk 0 only (and
    // only when the persistent engine's cache cannot satisfy it — packing a
    // drifting time series retrains a handful of times, not per archive).
    Result<TuneResult> tuned = tune_engine_.tune(kTuneKey, chunk_slice(data, extent, 0));
    if (!tuned.ok()) return tuned.status();
    const double shared_bound = tuned.value().error_bound;

    // Parallel chunk pipeline: workers pull chunk indices from a shared
    // counter, each with its own Engine (the backends are not thread-safe).
    // Each chunk is seeded with its own previous-write bound when the chunk
    // geometry is unchanged (the time dimension of Algorithm 3), falling
    // back to the shared chunk-0 bound — both depend only on the chunk
    // index, so the bytes a chunk compresses to cannot depend on which
    // worker handled it.
    const bool carry = last_shape_ == data.shape() && last_extent_ == extent &&
                       chunk_bounds_.size() == chunk_count;
    struct Slot {
      Buffer bytes;
      CompressOutcome outcome;
      Status status;
      double seconds = 0;
    };
    std::vector<Slot> slots(chunk_count);
    std::atomic<std::size_t> next{0};
    auto drain_chunks = [&] {
      auto created = Engine::create(serial_tuning(config_.engine));
      std::size_t i;
      if (!created.ok()) {
        while ((i = next.fetch_add(1)) < chunk_count) slots[i].status = created.status();
        return;
      }
      Engine engine = std::move(created).value();
      while ((i = next.fetch_add(1)) < chunk_count) {
        Timer chunk_timer;
        const double seed =
            carry && chunk_bounds_[i] > 0 ? chunk_bounds_[i] : shared_bound;
        engine.seed_bound(kChunkKey, seed);
        slots[i].status = engine.compress(kChunkKey, chunk_slice(data, extent, i),
                                          slots[i].bytes, &slots[i].outcome);
        slots[i].seconds = chunk_timer.seconds();
      }
    };
    const unsigned workers = resolve_workers(config_.threads, chunk_count);
    if (workers <= 1) {
      drain_chunks();
    } else {
      ThreadPool pool(workers);
      std::vector<std::future<void>> done;
      done.reserve(workers);
      for (unsigned w = 0; w < workers; ++w) done.push_back(pool.submit(drain_chunks));
      for (auto& f : done) f.get();
    }
    for (std::size_t i = 0; i < chunk_count; ++i)
      if (!slots[i].status.ok()) return slots[i].status;

    // Remember each chunk's bound for the next write of the same geometry.
    last_shape_ = data.shape();
    last_extent_ = extent;
    chunk_bounds_.resize(chunk_count);
    for (std::size_t i = 0; i < chunk_count; ++i)
      chunk_bounds_[i] = slots[i].outcome.error_bound;

    // Manifest payload: policy + per-chunk index.
    Buffer manifest;
    put_u32(manifest, kArchiveMagic);
    manifest.push_back(kFormatVersion);
    put_f64(manifest, config_.engine.tuner.target_ratio);
    put_f64(manifest, config_.engine.tuner.epsilon);
    put_varint(manifest, extent);
    put_varint(manifest, chunk_count);
    ArchiveWriteResult result;
    result.chunk_count = chunk_count;
    result.chunk_extent = extent;
    result.chunks.reserve(chunk_count);
    std::size_t offset = 0;
    for (const Slot& slot : slots) {
      ChunkReport report;
      report.entry.offset = offset;
      report.entry.size = slot.bytes.size();
      report.entry.error_bound = slot.outcome.error_bound;
      report.entry.crc = crc32(slot.bytes.data(), slot.bytes.size());
      report.ratio = slot.outcome.achieved_ratio;
      report.seconds = slot.seconds;
      report.warm = slot.outcome.warm;
      report.retrained = slot.outcome.retrained;
      report.in_band = slot.outcome.in_band;
      put_varint(manifest, report.entry.offset);
      put_varint(manifest, report.entry.size);
      put_f64(manifest, report.entry.error_bound);
      put_u32(manifest, report.entry.crc);
      offset += slot.bytes.size();
      result.warm_chunks += report.warm;
      result.retrained_chunks += report.retrained;
      result.chunks.push_back(std::move(report));
    }

    // Assemble: manifest frame (a standard Container over the full shape),
    // chunk region, footer.
    seal_container_into(id, data.dtype(), data.shape(), manifest.data(), manifest.size(),
                        out);
    const std::size_t manifest_size = out.size();
    for (const Slot& slot : slots) out.append(slot.bytes.data(), slot.bytes.size());

    result.raw_bytes = data.size_bytes();
    result.archive_bytes = out.size() + kFooterBytes;
    result.achieved_ratio = static_cast<double>(result.raw_bytes) /
                            static_cast<double>(result.archive_bytes);
    result.in_band = ratio_acceptable(result.achieved_ratio,
                                      config_.engine.tuner.target_ratio,
                                      config_.engine.tuner.epsilon);
    put_u32(out, kFooterMagic);
    put_u64(out, manifest_size);
    put_u64(out, result.raw_bytes);
    put_u64(out, result.archive_bytes);
    put_f64(out, result.achieved_ratio);
    put_u32(out, crc32(out.data() + (out.size() - (kFooterBytes - 4)), kFooterBytes - 4));

    result.seconds = timer.seconds();
    return result;
  } catch (...) {
    return status_from_current_exception();
  }
}

// ------------------------------------------------------------------- reader

ArchiveReader::ArchiveReader(const std::uint8_t* data, std::size_t size,
                             std::size_t chunk_region, ArchiveInfo info, Engine engine)
    : data_(data),
      size_(size),
      chunk_region_(chunk_region),
      info_(std::move(info)),
      engine_(std::move(engine)) {}

Result<ArchiveReader> ArchiveReader::open(const std::uint8_t* data,
                                          std::size_t size) noexcept {
  try {
    if (size < kFooterBytes + 16) throw CorruptStream("archive: too small");

    // Footer first: it is the trust anchor locating the manifest.
    std::size_t pos = size - kFooterBytes;
    const std::size_t footer_base = pos;
    const std::uint32_t magic = get_u32(data, size, pos);
    const std::uint64_t manifest_size = get_u64(data, size, pos);
    const std::uint64_t raw_bytes = get_u64(data, size, pos);
    const std::uint64_t archive_bytes = get_u64(data, size, pos);
    const double achieved_ratio = get_f64(data, size, pos);
    const std::uint32_t stored_crc = get_u32(data, size, pos);
    if (crc32(data + footer_base, kFooterBytes - 4) != stored_crc)
      throw CorruptStream("archive: footer checksum mismatch");
    if (magic != kFooterMagic) throw CorruptStream("archive: bad footer magic");
    if (archive_bytes != size) throw CorruptStream("archive: size mismatch");
    if (manifest_size < 12 || manifest_size > size - kFooterBytes)
      throw CorruptStream("archive: manifest size out of range");

    // Manifest: a standard Container frame over the full logical array.
    const Container manifest = open_container(data, manifest_size);
    ArchiveInfo info;
    info.id = manifest.id;
    info.compressor = backend_name(manifest.id);
    info.dtype = manifest.dtype;
    info.shape = manifest.shape;
    info.raw_bytes = raw_bytes;
    info.archive_bytes = archive_bytes;
    info.achieved_ratio = achieved_ratio;

    const std::uint8_t* p = manifest.payload;
    const std::size_t psize = manifest.payload_size;
    std::size_t mpos = 0;
    if (get_u32(p, psize, mpos) != kArchiveMagic)
      throw CorruptStream("archive: bad manifest magic");
    if (mpos >= psize) throw CorruptStream("archive: truncated manifest");
    const std::uint8_t version = p[mpos++];
    if (version != kFormatVersion)
      throw CorruptStream("archive: unsupported format version");
    info.target_ratio = get_f64(p, psize, mpos);
    info.epsilon = get_f64(p, psize, mpos);
    info.chunk_extent = get_varint(p, psize, mpos);
    info.chunk_count = get_varint(p, psize, mpos);

    const std::size_t n0 = info.shape[0];
    if (info.chunk_extent == 0 || info.chunk_extent > n0)
      throw CorruptStream("archive: bad chunk extent");
    if (info.chunk_count != (n0 + info.chunk_extent - 1) / info.chunk_extent)
      throw CorruptStream("archive: chunk count does not match shape");
    if (raw_bytes != shape_elements(info.shape) * dtype_size(info.dtype))
      throw CorruptStream("archive: raw size does not match shape");

    const std::size_t region_bytes = size - manifest_size - kFooterBytes;
    std::size_t running = 0;
    info.chunks.reserve(info.chunk_count);
    for (std::size_t i = 0; i < info.chunk_count; ++i) {
      ChunkEntry entry;
      entry.offset = get_varint(p, psize, mpos);
      entry.size = get_varint(p, psize, mpos);
      entry.error_bound = get_f64(p, psize, mpos);
      entry.crc = get_u32(p, psize, mpos);
      if (entry.offset != running || entry.size == 0)
        throw CorruptStream("archive: chunk index is not contiguous");
      running += entry.size;
      info.chunks.push_back(entry);
    }
    if (running != region_bytes)
      throw CorruptStream("archive: chunk region size mismatch");
    if (mpos != psize) throw CorruptStream("archive: trailing manifest bytes");

    EngineConfig engine_config;
    engine_config.compressor = info.compressor;
    Engine engine(std::move(engine_config));
    return ArchiveReader(data, size, manifest_size, std::move(info), std::move(engine));
  } catch (...) {
    return status_from_current_exception();
  }
}

Shape ArchiveReader::chunk_shape(std::size_t i) const {
  require(i < info_.chunk_count, "archive: chunk index out of range");
  Shape shape = info_.shape;
  shape[0] = std::min(info_.chunk_extent, info_.shape[0] - i * info_.chunk_extent);
  return shape;
}

NdArray ArchiveReader::decode_chunk(Engine& engine, std::size_t i) const {
  const ChunkEntry& entry = info_.chunks[i];
  const std::uint8_t* chunk = data_ + chunk_region_ + entry.offset;
  if (crc32(chunk, entry.size) != entry.crc)
    throw CorruptStream("archive: chunk " + std::to_string(i) + " failed its checksum");
  Result<NdArray> decoded = engine.decompress(chunk, entry.size);
  if (!decoded.ok())
    throw CorruptStream("archive: chunk " + std::to_string(i) + ": " +
                        decoded.status().to_string());
  if (decoded.value().dtype() != info_.dtype || decoded.value().shape() != chunk_shape(i))
    throw CorruptStream("archive: chunk " + std::to_string(i) +
                        " decoded to an unexpected shape");
  return std::move(decoded).value();
}

Result<NdArray> ArchiveReader::read_chunk(std::size_t i) noexcept {
  try {
    if (i >= info_.chunk_count)
      return Status::invalid_argument("archive: chunk index out of range");
    return decode_chunk(engine_, i);
  } catch (...) {
    return status_from_current_exception();
  }
}

Result<NdArray> ArchiveReader::read_range(std::size_t first, std::size_t count) noexcept {
  try {
    const std::size_t n0 = info_.shape[0];
    if (count == 0 || first >= n0 || count > n0 - first)
      return Status::invalid_argument("archive: plane range out of bounds");
    Shape out_shape = info_.shape;
    out_shape[0] = count;
    NdArray out(info_.dtype, std::move(out_shape));
    const std::size_t plane_bytes =
        (shape_elements(info_.shape) / n0) * dtype_size(info_.dtype);
    const std::size_t extent = info_.chunk_extent;
    const std::size_t last_chunk = (first + count - 1) / extent;
    for (std::size_t c = first / extent; c <= last_chunk; ++c) {
      const NdArray chunk = decode_chunk(engine_, c);
      const std::size_t chunk_first = c * extent;
      const std::size_t lo = std::max(first, chunk_first);
      const std::size_t hi = std::min(first + count, chunk_first + chunk.shape()[0]);
      std::memcpy(static_cast<std::uint8_t*>(out.data()) + (lo - first) * plane_bytes,
                  static_cast<const std::uint8_t*>(chunk.data()) +
                      (lo - chunk_first) * plane_bytes,
                  (hi - lo) * plane_bytes);
    }
    return out;
  } catch (...) {
    return status_from_current_exception();
  }
}

Result<NdArray> ArchiveReader::read_all(unsigned threads) noexcept {
  try {
    NdArray out(info_.dtype, info_.shape);
    const std::size_t plane_bytes =
        (shape_elements(info_.shape) / info_.shape[0]) * dtype_size(info_.dtype);
    auto emplace = [&](Engine& engine, std::size_t i) {
      const NdArray chunk = decode_chunk(engine, i);
      std::memcpy(static_cast<std::uint8_t*>(out.data()) +
                      i * info_.chunk_extent * plane_bytes,
                  chunk.data(), chunk.size_bytes());
    };
    const unsigned workers = resolve_workers(threads, info_.chunk_count);
    if (threads == 1 || workers <= 1) {
      for (std::size_t i = 0; i < info_.chunk_count; ++i) emplace(engine_, i);
      return out;
    }
    // Parallel decode: chunks write disjoint plane ranges of `out`, so the
    // only coordination needed is the shared chunk counter.
    std::vector<Status> statuses(info_.chunk_count);
    std::atomic<std::size_t> next{0};
    auto drain = [&] {
      EngineConfig config;
      config.compressor = info_.compressor;
      auto created = Engine::create(std::move(config));
      std::size_t i;
      if (!created.ok()) {
        while ((i = next.fetch_add(1)) < info_.chunk_count)
          statuses[i] = created.status();
        return;
      }
      Engine engine = std::move(created).value();
      while ((i = next.fetch_add(1)) < info_.chunk_count) {
        try {
          emplace(engine, i);
        } catch (...) {
          statuses[i] = status_from_current_exception();
        }
      }
    };
    {
      ThreadPool pool(workers);
      std::vector<std::future<void>> done;
      done.reserve(workers);
      for (unsigned w = 0; w < workers; ++w) done.push_back(pool.submit(drain));
      for (auto& f : done) f.get();
    }
    for (const Status& s : statuses)
      if (!s.ok()) return s;
    return out;
  } catch (...) {
    return status_from_current_exception();
  }
}

}  // namespace fraz::archive
