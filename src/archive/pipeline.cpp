#include "archive/pipeline.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <condition_variable>
#include <cstring>
#include <future>
#include <mutex>

#include "codec/checksum.hpp"
#include "core/loss.hpp"
#include "opt/thread_pool.hpp"
#include "pressio/registry.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

namespace fraz::archive::detail {

namespace {

/// Field keys inside the writer's shared BoundStore; the tune key is stable
/// across write() calls so the persistent engine warm-starts a whole time
/// series, and every chunk gets its OWN key — per-chunk keys are what make
/// sharing one store across workers deterministic: a chunk's warm bound
/// depends only on the chunk index, never on which worker got it.
constexpr const char* kTuneKey = "archive:chunk0";

std::string chunk_field_key(std::size_t i) {
  return "archive:chunk:" + std::to_string(i);
}

/// Chunk boundaries must depend on the data geometry only (never on worker
/// count), so 1-thread and N-thread packs produce identical archives.
std::size_t auto_chunk_extent(std::size_t n0, std::size_t plane_bytes) {
  constexpr std::size_t kTargetChunks = 16;
  constexpr std::size_t kMinChunkBytes = 4096;
  std::size_t extent = (n0 + kTargetChunks - 1) / kTargetChunks;
  if (extent * plane_bytes < kMinChunkBytes)
    extent = (kMinChunkBytes + plane_bytes - 1) / plane_bytes;
  return std::min(std::max<std::size_t>(extent, 1), n0);
}

unsigned resolve_workers(unsigned requested, std::size_t tasks) {
  unsigned w = requested == 0 ? std::thread::hardware_concurrency() : requested;
  if (w == 0) w = 1;
  return static_cast<unsigned>(std::min<std::size_t>(w, tasks));
}

/// Non-owning view of the slowest-axis slice [i*extent, i*extent+planes).
ArrayView chunk_slice(const ArrayView& data, std::size_t extent, std::size_t i) {
  const Shape& shape = data.shape();
  const std::size_t n0 = shape[0];
  const std::size_t plane_bytes = data.size_bytes() / n0;
  const std::size_t first = i * extent;
  Shape slice_shape = shape;
  slice_shape[0] = std::min(extent, n0 - first);
  const auto* base = static_cast<const std::uint8_t*>(data.data());
  return ArrayView(base + first * plane_bytes, data.dtype(), std::move(slice_shape));
}

/// Deterministic estimate of the non-chunk archive bytes one chunk is
/// responsible for (its manifest entry plus a share of the manifest header
/// and footer), so the rate fallback targets the chunk's share of the
/// *aggregate* band rather than the naive payload ratio.
double per_chunk_overhead(const Shape& shape, std::size_t chunk_count) {
  const double fixed = 112.0 + 10.0 * static_cast<double>(shape.size());
  return 26.0 + fixed / static_cast<double>(chunk_count);
}

/// The ZFP band-miss rescue: when accuracy mode cannot express the band on a
/// small chunk (its bit-plane treads quantize the reachable ratios), retry
/// in fixed-rate mode, where the output size is a near-linear function of
/// the rate and any ratio is expressible.  Deterministic secant iteration on
/// the rate; keeps whichever archive (accuracy or best rate) lands closest
/// to the chunk's target bytes.  On success with a closer rate-mode archive,
/// \p out is replaced and \p fell_back set.
Status zfp_rate_rescue(pressio::Compressor& rate_backend, const ArrayView& slice,
                       double target_ratio, double epsilon, double overhead_bytes,
                       Buffer& out, bool& fell_back) noexcept {
  try {
    const double raw = static_cast<double>(slice.size_bytes());
    const double target = std::max(raw / target_ratio - overhead_bytes, 24.0);
    const double elements = static_cast<double>(slice.elements());
    const double max_rate = static_cast<double>(dtype_size(slice.dtype())) * 8.0;
    const double min_rate = 1.0 / 16.0;
    double best_diff = std::abs(static_cast<double>(out.size()) - target);
    Buffer trial, best;
    bool improved = false;
    double rate = std::clamp((target - 40.0) * 8.0 / elements, min_rate, max_rate);
    double prev_rate = 0, prev_size = 0;
    for (int iter = 0; iter < 6; ++iter) {
      rate_backend.set_options(
          pressio::Options{{"zfp:mode", std::string("rate")}, {"zfp:rate", rate}});
      const Status s = rate_backend.compress_into(slice, trial);
      if (!s.ok()) return s;
      const double size = static_cast<double>(trial.size());
      const double diff = std::abs(size - target);
      if (diff < best_diff) {
        best_diff = diff;
        best.swap(trial);
        improved = true;
      }
      if (ratio_acceptable(raw / (size + overhead_bytes), target_ratio, epsilon)) break;
      double next;
      if (prev_size > 0 && size != prev_size)
        next = rate + (target - size) * (rate - prev_rate) / (size - prev_size);
      else
        next = rate * (target / std::max(size, 1.0));
      prev_rate = rate;
      prev_size = size;
      rate = std::clamp(next, min_rate, max_rate);
      if (rate == prev_rate) break;
    }
    if (improved) {
      out.swap(best);
      fell_back = true;
    }
    return Status();
  } catch (...) {
    return status_from_current_exception();
  }
}

/// Everything run_chunk_pipeline tracks per chunk before emission.
struct Slot {
  Buffer bytes;
  CompressOutcome outcome;
  std::uint32_t crc = 0;  ///< computed by the worker, outside the lock
  double ratio = 0;
  double seconds = 0;
  bool rate_fallback = false;
  bool ready = false;
};

struct PipelineOutcome {
  std::vector<ChunkReport> chunks;
  std::size_t region_bytes = 0;
  std::size_t peak_buffered_chunks = 0;
  std::size_t peak_buffered_bytes = 0;
  std::size_t tuner_probe_calls = 0;  ///< summed over the worker engines
  std::size_t probe_cache_hits = 0;
};

/// The shared parallel chunk pipeline.  Workers claim chunk indices under a
/// bounded window (claimed-but-unemitted ≤ workers + 1) and the completion
/// path drains ready chunks to \p sink strictly in index order — append-only
/// for the sink, bounded memory for the writer, bytes independent of worker
/// count and transport.  Every worker engine adopts \p state's BoundStore
/// and ProbeCache; chunk i reads and commits only its own key, pre-seeded by
/// write_archive, so the shared stores never make bytes scheduling-dependent.
Result<PipelineOutcome> run_chunk_pipeline(const ArchiveWriteConfig& config,
                                           const WriterWarmState& state,
                                           const ArrayView& data, std::size_t extent,
                                           std::size_t chunk_count, ByteSink& sink) noexcept {
  try {
    const unsigned workers = resolve_workers(config.threads, chunk_count);
    const std::size_t window = static_cast<std::size_t>(workers) + 1;
    const bool try_rate_fallback =
        config.zfp_rate_fallback && config.engine.compressor == "zfp";
    const double overhead = per_chunk_overhead(data.shape(), chunk_count);

    std::mutex mutex;
    std::condition_variable claim_cv;
    std::size_t claim_next = 0;
    std::size_t write_head = 0;
    std::size_t live_chunks = 0;       // claimed but not yet emitted
    std::size_t live_bytes = 0;        // completed-but-unemitted payload bytes
    std::size_t emitted_bytes = 0;
    bool failed = false;
    Status failure;

    std::vector<Slot> slots(chunk_count);
    PipelineOutcome outcome;
    outcome.chunks.resize(chunk_count);

    auto fail_locked = [&](Status status) {
      if (!failed) {
        failed = true;
        failure = std::move(status);
      }
      claim_cv.notify_all();
    };

    auto worker_fn = [&] {
      auto created = Engine::create(serial_tuning(config.engine));
      if (!created.ok()) {
        std::lock_guard lock(mutex);
        fail_locked(created.status());
        return;
      }
      Engine engine = std::move(created).value();
      engine.adopt_bound_store(state.bounds);
      engine.adopt_probe_cache(state.probes);
      pressio::CompressorPtr rate_backend;  // lazy, per-worker (not thread-safe)
      const auto account_tuning = [&] {
        // Under `mutex` (or after the workers joined): fold this engine's
        // tuning spend into the pipeline totals exactly once per exit path.
        outcome.tuner_probe_calls += engine.stats().tuner_probe_calls;
        outcome.probe_cache_hits += engine.stats().probe_cache_hits;
      };
      for (;;) {
        std::size_t i;
        {
          std::unique_lock lock(mutex);
          claim_cv.wait(lock, [&] {
            return failed || claim_next >= chunk_count || claim_next < write_head + window;
          });
          if (failed || claim_next >= chunk_count) {
            account_tuning();
            return;
          }
          i = claim_next++;
          ++live_chunks;
          outcome.peak_buffered_chunks = std::max(outcome.peak_buffered_chunks, live_chunks);
        }

        Timer chunk_timer;
        const ArrayView slice = chunk_slice(data, extent, i);
        const std::string chunk_key = chunk_field_key(i);
        Buffer bytes;
        CompressOutcome chunk_outcome;
        Status status = engine.compress(chunk_key, slice, bytes, &chunk_outcome);
        bool fell_back = false;
        if (status.ok() && try_rate_fallback && !chunk_outcome.in_band) {
          // The rescue backend inherits the user's zfp options; the rate
          // search overrides only zfp:mode / zfp:rate per probe.
          if (!rate_backend)
            rate_backend = pressio::registry().create(
                "zfp", config.engine.compressor_options);
          status = zfp_rate_rescue(*rate_backend, slice, config.engine.tuner.target_ratio,
                                   config.engine.tuner.epsilon, overhead, bytes, fell_back);
        }
        // Checksum and ratio are per-payload and deterministic — compute them
        // here so the lock below covers only ordering and emission.
        const std::uint32_t crc = status.ok() ? crc32(bytes.data(), bytes.size()) : 0;
        const double ratio = status.ok() && bytes.size() > 0
                                 ? static_cast<double>(slice.size_bytes()) /
                                       static_cast<double>(bytes.size())
                                 : 0;
        const double seconds = chunk_timer.seconds();

        std::lock_guard lock(mutex);
        if (!status.ok()) {
          fail_locked(std::move(status));
          account_tuning();
          return;
        }
        if (failed) {
          account_tuning();
          return;
        }
        Slot& slot = slots[i];
        slot.bytes = std::move(bytes);
        slot.outcome = chunk_outcome;
        slot.crc = crc;
        slot.ratio = ratio;
        slot.seconds = seconds;
        slot.rate_fallback = fell_back;
        slot.ready = true;
        live_bytes += slot.bytes.size();
        outcome.peak_buffered_bytes = std::max(outcome.peak_buffered_bytes, live_bytes);
        // Drain every ready chunk at the write head: emission is strictly in
        // index order regardless of completion order.
        while (write_head < chunk_count && slots[write_head].ready) {
          Slot& head = slots[write_head];
          const std::size_t head_size = head.bytes.size();
          ChunkReport& report = outcome.chunks[write_head];
          report.entry.offset = emitted_bytes;
          report.entry.size = head_size;
          // A rate-mode payload honours no pointwise bound — record 0 in the
          // manifest so readers cannot mistake the abandoned accuracy bound
          // for a guarantee; the tuned bound still seeds the next write.
          report.entry.error_bound = head.rate_fallback ? 0 : head.outcome.error_bound;
          report.tuned_bound = head.outcome.error_bound;
          report.entry.crc = head.crc;
          report.ratio = head.ratio;
          report.seconds = head.seconds;
          report.warm = head.outcome.warm;
          report.retrained = head.outcome.retrained;
          report.rate_fallback = head.rate_fallback;
          report.in_band = ratio_acceptable(report.ratio, config.engine.tuner.target_ratio,
                                            config.engine.tuner.epsilon);
          const Status sink_status = sink.append(head.bytes.data(), head_size);
          if (!sink_status.ok()) {
            fail_locked(sink_status);
            account_tuning();
            return;
          }
          emitted_bytes += head_size;
          live_bytes -= head_size;
          --live_chunks;
          Buffer().swap(head.bytes);  // release the payload's memory
          ++write_head;
        }
        claim_cv.notify_all();
      }
    };

    if (workers <= 1) {
      worker_fn();
    } else {
      ThreadPool pool(workers);
      std::vector<std::future<void>> done;
      done.reserve(workers);
      for (unsigned w = 0; w < workers; ++w) done.push_back(pool.submit(worker_fn));
      for (auto& f : done) f.get();
    }
    if (failed) return failure;
    outcome.region_bytes = emitted_bytes;
    return outcome;
  } catch (...) {
    return status_from_current_exception();
  }
}

}  // namespace

EngineConfig serial_tuning(EngineConfig config) {
  config.tuner.threads = 1;
  return config;
}

}  // namespace fraz::archive::detail

namespace fraz::archive {

WriterWarmState::WriterWarmState(const EngineConfig& engine_config)
    : tune_engine(detail::serial_tuning(engine_config)),
      bounds(std::make_shared<BoundStore>()),
      probes(std::make_shared<ProbeCache>()) {
  tune_engine.adopt_bound_store(bounds);
  tune_engine.adopt_probe_cache(probes);
}

}  // namespace fraz::archive

namespace fraz::archive::detail {

Status validate_write_config(const ArchiveWriteConfig& config) noexcept {
  try {
    if (config.format_version != 1 && config.format_version != 2)
      return Status::invalid_argument("archive: unsupported format version " +
                                      std::to_string(config.format_version));
    // v1's manifest records the backend as a CompressorId (built-ins only);
    // v2 records the registry name, whose encoding caps it at 256 bytes.
    if (config.format_version == 1) (void)backend_id(config.engine.compressor);
    if (config.engine.compressor.empty() || config.engine.compressor.size() > 256)
      return Status::invalid_argument(
          "archive: compressor name must be 1..256 bytes to be recorded");
    return Status();
  } catch (...) {
    return status_from_current_exception();
  }
}

// ------------------------------------------------------------------- writer

Result<ArchiveWriteResult> write_archive(const ArchiveWriteConfig& config,
                                         WriterWarmState& state, const ArrayView& data,
                                         ByteSink& sink) {
  try {
    Timer timer;
    if (data.dims() == 0 || data.elements() == 0)
      return Status::invalid_argument("archive: cannot pack an empty array");
    const Status config_status = validate_write_config(config);
    if (!config_status.ok()) return config_status;
    const std::uint8_t version = config.format_version;
    const std::size_t n0 = data.shape()[0];
    const std::size_t plane_bytes = data.size_bytes() / n0;
    const std::size_t extent = config.chunk_extent > 0
                                   ? std::min(config.chunk_extent, n0)
                                   : auto_chunk_extent(n0, plane_bytes);
    const std::size_t chunk_count = (n0 + extent - 1) / extent;
    const double target = config.engine.tuner.target_ratio;

    // A geometry change re-maps chunk indices onto different planes, so the
    // per-chunk warm keys of the previous geometry are meaningless — drop
    // them (the chunk-0 tune key survives: it tracks the field, not a chunk).
    if (state.shape != data.shape() || state.extent != extent) {
      for (std::size_t i = 0; i < state.chunk_count; ++i)
        state.bounds->erase(chunk_field_key(i), target);
      state.shape = data.shape();
      state.extent = extent;
      state.chunk_count = chunk_count;
    }

    // Shared warm-start bound: full ratio training runs on chunk 0 only (and
    // only when the persistent engine's store cannot satisfy it — packing a
    // drifting time series retrains a handful of times, not per archive).
    const EngineStats tune_before = state.tune_engine.stats();
    Result<TuneResult> tuned = state.tune_engine.tune(kTuneKey, chunk_slice(data, extent, 0));
    if (!tuned.ok()) return tuned.status();
    const double shared_bound = tuned.value().error_bound;

    // Deterministic per-chunk snapshot: before any worker runs, every chunk
    // key holds exactly the bound its compression will warm-start from —
    // its own previous-write bound when one is stored (the time dimension
    // of Algorithm 3), else the fresh chunk-0 bound.  Seeds depend only on
    // the chunk index, so the bytes a chunk compresses to cannot depend on
    // which worker handled it or on how many workers ran.
    for (std::size_t i = 0; i < chunk_count; ++i) {
      const std::string key = chunk_field_key(i);
      if (state.bounds->get(key, target) <= 0) state.bounds->put(key, target, shared_bound);
    }

    PipelineOutcome pipe;
    Buffer manifest;
    std::size_t manifest_offset = 0;
    if (version == 2) {
      // Streaming layout: chunks flow straight to the sink, the manifest and
      // footer follow — the whole archive is assembled append-only.
      auto piped = run_chunk_pipeline(config, state, data, extent, chunk_count, sink);
      if (!piped.ok()) return piped.status();
      pipe = std::move(piped).value();
      manifest_offset = pipe.region_bytes;
    } else {
      // Legacy manifest-first layout: the chunk region must be buffered
      // because the manifest precedes it on the wire.
      Buffer region;
      BufferSink region_sink(region);
      auto piped = run_chunk_pipeline(config, state, data, extent, chunk_count, region_sink);
      if (!piped.ok()) return piped.status();
      pipe = std::move(piped).value();
      std::vector<ChunkEntry> entries;
      entries.reserve(chunk_count);
      for (const ChunkReport& report : pipe.chunks) entries.push_back(report.entry);
      encode_manifest(1, config.engine.compressor, data.dtype(), data.shape(),
                      config.engine.tuner.target_ratio, config.engine.tuner.epsilon, extent,
                      entries, manifest);
      Status s = sink.append(manifest.data(), manifest.size());
      if (!s.ok()) return s;
      s = sink.append(region.data(), region.size());
      if (!s.ok()) return s;
    }

    if (version == 2) {
      std::vector<ChunkEntry> entries;
      entries.reserve(chunk_count);
      for (const ChunkReport& report : pipe.chunks) entries.push_back(report.entry);
      encode_manifest(2, config.engine.compressor, data.dtype(), data.shape(),
                      config.engine.tuner.target_ratio, config.engine.tuner.epsilon, extent,
                      entries, manifest);
      const Status s = sink.append(manifest.data(), manifest.size());
      if (!s.ok()) return s;
    }

    // (Per-chunk warm bounds for the next write already live in the shared
    // store: each chunk's engine committed its feasible bound under the
    // chunk's own key as it finished.)

    ArchiveWriteResult result;
    const EngineStats& tune_after = state.tune_engine.stats();
    result.tuner_probe_calls =
        pipe.tuner_probe_calls + (tune_after.tuner_probe_calls - tune_before.tuner_probe_calls);
    result.probe_cache_hits =
        pipe.probe_cache_hits + (tune_after.probe_cache_hits - tune_before.probe_cache_hits);
    result.format_version = version;
    result.chunk_count = chunk_count;
    result.chunk_extent = extent;
    result.raw_bytes = data.size_bytes();
    result.peak_buffered_chunks = pipe.peak_buffered_chunks;
    result.peak_buffered_bytes = pipe.peak_buffered_bytes;
    const std::size_t footer_bytes = version == 1 ? kFooterBytesV1 : kFooterBytes;
    result.archive_bytes = sink.bytes_written() + footer_bytes;
    result.achieved_ratio = static_cast<double>(result.raw_bytes) /
                            static_cast<double>(result.archive_bytes);
    result.in_band = ratio_acceptable(result.achieved_ratio,
                                      config.engine.tuner.target_ratio,
                                      config.engine.tuner.epsilon);
    for (ChunkReport& report : pipe.chunks) {
      result.warm_chunks += report.warm;
      result.retrained_chunks += report.retrained;
      result.rate_fallback_chunks += report.rate_fallback;
    }
    result.chunks = std::move(pipe.chunks);

    Buffer footer;
    encode_footer(version, manifest_offset, manifest.size(), result.raw_bytes,
                  result.archive_bytes, result.achieved_ratio, footer);
    const Status s = sink.append(footer.data(), footer.size());
    if (!s.ok()) return s;

    result.seconds = timer.seconds();
    return result;
  } catch (...) {
    return status_from_current_exception();
  }
}

// ------------------------------------------------------------------- reader

const std::uint8_t* MemorySource::fetch(std::size_t offset, std::size_t size,
                                        Buffer& scratch) const {
  (void)scratch;
  if (offset > size_ || size > size_ - offset)
    throw CorruptStream("archive: read beyond the end of the archive");
  return data_ + offset;
}

Shape chunk_shape(const ArchiveInfo& info, std::size_t i) {
  require(i < info.chunk_count, "archive: chunk index out of range");
  Shape shape = info.shape;
  shape[0] = std::min(info.chunk_extent, info.shape[0] - i * info.chunk_extent);
  return shape;
}

NdArray decode_chunk(Engine& engine, const ChunkSource& source, const ArchiveInfo& info,
                     std::size_t i, Buffer& scratch) {
  const ChunkEntry& entry = info.chunks[i];
  const std::uint8_t* chunk =
      source.fetch(info.chunk_region + entry.offset, entry.size, scratch);
  if (crc32(chunk, entry.size) != entry.crc)
    throw CorruptStream("archive: chunk " + std::to_string(i) + " failed its checksum");
  Result<NdArray> decoded = engine.decompress(chunk, entry.size);
  if (!decoded.ok())
    throw CorruptStream("archive: chunk " + std::to_string(i) + ": " +
                        decoded.status().to_string());
  if (decoded.value().dtype() != info.dtype ||
      decoded.value().shape() != chunk_shape(info, i))
    throw CorruptStream("archive: chunk " + std::to_string(i) +
                        " decoded to an unexpected shape");
  return std::move(decoded).value();
}

Status read_planes(const ChunkSource& source, const ArchiveInfo& info,
                   Engine& serial_engine, Buffer& serial_scratch, std::size_t first,
                   std::size_t count, unsigned threads, NdArray& out) noexcept {
  try {
    const std::size_t n0 = info.shape[0];
    const std::size_t plane_bytes =
        (shape_elements(info.shape) / n0) * dtype_size(info.dtype);
    const std::size_t extent = info.chunk_extent;
    const std::size_t first_chunk = first / extent;
    const std::size_t last_chunk = (first + count - 1) / extent;
    const std::size_t touched = last_chunk - first_chunk + 1;

    auto emplace = [&](Engine& engine, Buffer& scratch, std::size_t c) {
      const NdArray chunk = decode_chunk(engine, source, info, c, scratch);
      const std::size_t chunk_first = c * extent;
      const std::size_t lo = std::max(first, chunk_first);
      const std::size_t hi = std::min(first + count, chunk_first + chunk.shape()[0]);
      std::memcpy(static_cast<std::uint8_t*>(out.data()) + (lo - first) * plane_bytes,
                  static_cast<const std::uint8_t*>(chunk.data()) +
                      (lo - chunk_first) * plane_bytes,
                  (hi - lo) * plane_bytes);
    };

    const unsigned workers = resolve_workers(threads, touched);
    if (threads == 1 || workers <= 1) {
      for (std::size_t c = first_chunk; c <= last_chunk; ++c)
        emplace(serial_engine, serial_scratch, c);
      return Status();
    }

    // Parallel decode: touched chunks write disjoint plane windows of `out`,
    // so the only coordination needed is the shared chunk counter.
    std::vector<Status> statuses(touched);
    std::atomic<std::size_t> next{0};
    auto drain = [&] {
      EngineConfig config;
      config.compressor = info.compressor;
      auto created = Engine::create(std::move(config));
      std::size_t t;
      if (!created.ok()) {
        while ((t = next.fetch_add(1)) < touched) statuses[t] = created.status();
        return;
      }
      Engine engine = std::move(created).value();
      Buffer scratch;
      while ((t = next.fetch_add(1)) < touched) {
        try {
          emplace(engine, scratch, first_chunk + t);
        } catch (...) {
          statuses[t] = status_from_current_exception();
        }
      }
    };
    {
      ThreadPool pool(workers);
      std::vector<std::future<void>> done;
      done.reserve(workers);
      for (unsigned w = 0; w < workers; ++w) done.push_back(pool.submit(drain));
      for (auto& f : done) f.get();
    }
    for (const Status& s : statuses)
      if (!s.ok()) return s;
    return Status();
  } catch (...) {
    return status_from_current_exception();
  }
}

}  // namespace fraz::archive::detail
