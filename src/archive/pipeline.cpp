#include "archive/pipeline.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <deque>
#include <future>

#include "codec/checksum.hpp"
#include "core/loss.hpp"
#include "opt/thread_pool.hpp"
#include "pressio/registry.hpp"
#include "telemetry/telemetry.hpp"
#include "util/error.hpp"
#include "util/thread_annotations.hpp"
#include "util/timer.hpp"

namespace fraz::archive::detail {

namespace {

// Process-wide pack-plane metrics.  ArchiveWriteResult keeps its own plain
// counters (CI gates warm_chunks on them); these registry twins are bumped at
// the same sites so METRICS / --json expositions see every pipeline.
telemetry::Counter& chunks_counter() {
  static telemetry::Counter& c = telemetry::global().counter("pack.chunks");
  return c;
}

telemetry::Counter& warm_chunks_counter() {
  static telemetry::Counter& c = telemetry::global().counter("pack.warm_chunks");
  return c;
}

telemetry::Counter& retrained_chunks_counter() {
  static telemetry::Counter& c = telemetry::global().counter("pack.retrained_chunks");
  return c;
}

telemetry::Counter& rate_fallback_counter() {
  static telemetry::Counter& c =
      telemetry::global().counter("pack.rate_fallback_chunks");
  return c;
}

telemetry::Gauge& staged_bytes_gauge() {
  static telemetry::Gauge& g = telemetry::global().gauge("pack.staged_bytes");
  return g;
}

/// Field keys inside the writer's shared BoundStore.  The tune key is stable
/// across builds so the persistent engine warm-starts a whole time series of
/// the same field, and every chunk gets its OWN key — per-(field, chunk)
/// keys are what make sharing one store across workers deterministic: a
/// chunk's warm bound depends only on its field and index, never on which
/// worker got it — and what lets each field of a multi-field archive
/// warm-start independently.
std::string field_tune_key(const std::string& field) {
  return "archive:" + field + ":chunk0";
}

std::string chunk_field_key(const std::string& field, std::size_t i) {
  return "archive:" + field + ":chunk:" + std::to_string(i);
}

/// Chunk boundaries must depend on the data geometry only (never on worker
/// count), so 1-thread and N-thread packs produce identical archives.
std::size_t auto_chunk_extent(std::size_t n0, std::size_t plane_bytes) {
  constexpr std::size_t kTargetChunks = 16;
  constexpr std::size_t kMinChunkBytes = 4096;
  std::size_t extent = (n0 + kTargetChunks - 1) / kTargetChunks;
  if (extent * plane_bytes < kMinChunkBytes)
    extent = (kMinChunkBytes + plane_bytes - 1) / plane_bytes;
  return std::min(std::max<std::size_t>(extent, 1), n0);
}

unsigned resolve_workers(unsigned requested, std::size_t tasks) {
  unsigned w = requested == 0 ? std::thread::hardware_concurrency() : requested;
  if (w == 0) w = 1;
  return static_cast<unsigned>(std::min<std::size_t>(w, tasks));
}

/// Deterministic estimate of the non-chunk archive bytes one chunk is
/// responsible for (its manifest entry plus a share of the manifest header
/// and footer), so the rate fallback targets the chunk's share of the
/// *aggregate* band rather than the naive payload ratio.
double per_chunk_overhead(const Shape& shape, std::size_t chunk_count) {
  const double fixed = 112.0 + 10.0 * static_cast<double>(shape.size());
  return 26.0 + fixed / static_cast<double>(chunk_count);
}

/// The ZFP band-miss rescue: when accuracy mode cannot express the band on a
/// small chunk (its bit-plane treads quantize the reachable ratios), retry
/// in fixed-rate mode, where the output size is a near-linear function of
/// the rate and any ratio is expressible.  Deterministic secant iteration on
/// the rate; keeps whichever archive (accuracy or best rate) lands closest
/// to the chunk's target bytes.  On success with a closer rate-mode archive,
/// \p out is replaced and \p fell_back set.
Status zfp_rate_rescue(pressio::Compressor& rate_backend, const ArrayView& slice,
                       double target_ratio, double epsilon, double overhead_bytes,
                       Buffer& out, bool& fell_back) noexcept {
  try {
    const double raw = static_cast<double>(slice.size_bytes());
    const double target = std::max(raw / target_ratio - overhead_bytes, 24.0);
    const double elements = static_cast<double>(slice.elements());
    const double max_rate = static_cast<double>(dtype_size(slice.dtype())) * 8.0;
    const double min_rate = 1.0 / 16.0;
    double best_diff = std::abs(static_cast<double>(out.size()) - target);
    Buffer trial, best;
    bool improved = false;
    double rate = std::clamp((target - 40.0) * 8.0 / elements, min_rate, max_rate);
    double prev_rate = 0, prev_size = 0;
    for (int iter = 0; iter < 6; ++iter) {
      rate_backend.set_options(
          pressio::Options{{"zfp:mode", std::string("rate")}, {"zfp:rate", rate}});
      const Status s = rate_backend.compress_into(slice, trial);
      if (!s.ok()) return s;
      const double size = static_cast<double>(trial.size());
      const double diff = std::abs(size - target);
      if (diff < best_diff) {
        best_diff = diff;
        best.swap(trial);
        improved = true;
      }
      if (ratio_acceptable(raw / (size + overhead_bytes), target_ratio, epsilon)) break;
      double next;
      if (prev_size > 0 && size != prev_size)
        next = rate + (target - size) * (rate - prev_rate) / (size - prev_size);
      else
        next = rate * (target / std::max(size, 1.0));
      prev_rate = rate;
      prev_size = size;
      rate = std::clamp(next, min_rate, max_rate);
      if (rate == prev_rate) break;
    }
    if (improved) {
      out.swap(best);
      fell_back = true;
    }
    return Status();
  } catch (...) {
    return status_from_current_exception();
  }
}

/// Everything the pipeline tracks per chunk before emission.
struct Slot {
  Buffer bytes;
  CompressOutcome outcome;
  std::uint32_t crc = 0;  ///< computed by the worker, outside the lock
  double ratio = 0;
  double seconds = 0;
  bool rate_fallback = false;
  bool ready = false;
};

/// What one field's pipeline hands back to the assembler at close.
struct PipelineOutcome {
  std::vector<ChunkReport> chunks;
  std::size_t region_bytes = 0;       ///< compressed bytes this field emitted
  std::size_t peak_buffered_chunks = 0;
  std::size_t peak_buffered_bytes = 0;
  std::size_t peak_staged_bytes = 0;  ///< peak raw chunk-row bytes held at once
  std::size_t tuner_probe_calls = 0;  ///< summed over the worker engines
  std::size_t probe_cache_hits = 0;
};

}  // namespace

/// The shared parallel chunk pipeline, push mode: the assembler submits
/// owned chunk rows in index order; submit() admits rows under a bounded
/// window (submitted-but-unemitted ≤ workers + 1 — which bounds both the
/// raw rows staged and the compressed payloads buffered) and the completion
/// path drains ready chunks to the sink strictly in index order —
/// append-only for the sink, bounded memory for the writer, bytes
/// independent of worker count and transport.  Every worker engine adopts
/// the warm state's BoundStore and ProbeCache; chunk i reads and commits
/// only its own (field, i) key, pre-seeded by the assembler, so the shared
/// stores never make bytes scheduling-dependent.
class ChunkPipeline {
public:
  ChunkPipeline(const ArchiveWriteConfig& config, const WriterWarmState& state,
                std::string field_name, const Shape& field_shape,
                std::size_t chunk_count, std::size_t base_offset, ByteSink& sink)
      : config_(config),
        state_(state),
        field_name_(std::move(field_name)),
        chunk_count_(chunk_count),
        base_offset_(base_offset),
        sink_(sink),
        workers_(resolve_workers(config.threads, chunk_count)),
        window_(static_cast<std::size_t>(workers_) + 1),
        try_rate_fallback_(config.zfp_rate_fallback && config.engine.compressor == "zfp"),
        overhead_(per_chunk_overhead(field_shape, chunk_count)) {
    slots_.resize(chunk_count_);
    outcome_.chunks.resize(chunk_count_);
    pool_ = std::make_unique<ThreadPool>(workers_);
    futures_.reserve(workers_);
    for (unsigned w = 0; w < workers_; ++w)
      futures_.push_back(pool_->submit([this] { worker(); }));
  }

  ~ChunkPipeline() {
    if (!joined_) {
      // Abandoned build: poison the pipeline so workers drop the backlog
      // instead of compressing and emitting it, then join.
      {
        LockGuard lock(mutex_);
        fail_locked(Status::internal("archive: build abandoned"));
      }
      (void)shut_down();
    }
  }

  ChunkPipeline(const ChunkPipeline&) = delete;
  ChunkPipeline& operator=(const ChunkPipeline&) = delete;

  /// Take ownership of the next chunk row.  Blocks while the window is full
  /// — this back-pressure is the writer's input-memory bound.
  Status submit(NdArray row) noexcept {
    try {
      UniqueLock lock(mutex_);
      while (!failed_ && live_chunks_ >= window_) space_cv_.wait(lock);
      if (failed_) return failure_;
      if (submit_next_ >= chunk_count_)
        return Status::internal("archive: more chunk rows than the field declared");
      ++live_chunks_;
      outcome_.peak_buffered_chunks = std::max(outcome_.peak_buffered_chunks, live_chunks_);
      staged_bytes_ += row.size_bytes();
      outcome_.peak_staged_bytes = std::max(outcome_.peak_staged_bytes, staged_bytes_);
      staged_bytes_gauge().add(static_cast<std::int64_t>(row.size_bytes()));
      queue_.emplace_back(submit_next_++, std::move(row));
      work_cv_.notify_one();
      return Status();
    } catch (...) {
      return status_from_current_exception();
    }
  }

  /// Drain the pipeline and return the field's chunk reports.
  Result<PipelineOutcome> finish() noexcept {
    try {
      const Status join_status = shut_down();
      if (!join_status.ok()) return join_status;
      // Post-join the workers are gone, so the lock is uncontended — taking
      // it anyway keeps the guarded-state contract uniform.
      LockGuard lock(mutex_);
      if (failed_) return failure_;
      if (write_head_ != chunk_count_)
        return Status::internal(
            "archive: chunk pipeline closed before every chunk was emitted");
      outcome_.region_bytes = emitted_bytes_;
      return std::move(outcome_);
    } catch (...) {
      return status_from_current_exception();
    }
  }

private:
  Status shut_down() noexcept {
    if (joined_) return Status();
    {
      LockGuard lock(mutex_);
      closed_ = true;
    }
    work_cv_.notify_all();
    Status status;
    for (auto& f : futures_) {
      try {
        f.get();
      } catch (...) {
        status = status_from_current_exception();
      }
    }
    futures_.clear();
    pool_.reset();
    joined_ = true;
    return status;
  }

  void fail_locked(Status status) FRAZ_REQUIRES(mutex_) {
    if (!failed_) {
      failed_ = true;
      failure_ = std::move(status);
    }
    work_cv_.notify_all();
    space_cv_.notify_all();
  }

  /// Fold one engine's tuning spend into the pipeline totals — called
  /// exactly once per worker exit path, always under the lock.
  void account_tuning_locked(const Engine& engine) FRAZ_REQUIRES(mutex_) {
    outcome_.tuner_probe_calls += engine.stats().tuner_probe_calls;
    outcome_.probe_cache_hits += engine.stats().probe_cache_hits;
  }

  void worker() {
    auto created = Engine::create(serial_tuning(config_.engine));
    if (!created.ok()) {
      LockGuard lock(mutex_);
      fail_locked(created.status());
      return;
    }
    Engine engine = std::move(created).value();
    engine.adopt_bound_store(state_.bounds);
    engine.adopt_probe_cache(state_.probes);
    pressio::CompressorPtr rate_backend;  // lazy, per-worker (not thread-safe)
    for (;;) {
      std::size_t i = 0;
      NdArray row;
      {
        UniqueLock lock(mutex_);
        while (!failed_ && !closed_ && queue_.empty()) work_cv_.wait(lock);
        if (failed_ || (queue_.empty() && closed_)) {
          account_tuning_locked(engine);
          return;
        }
        i = queue_.front().first;
        row = std::move(queue_.front().second);
        queue_.pop_front();
      }

      Timer chunk_timer;
      const ArrayView slice = row.view();
      const std::string chunk_key = chunk_field_key(field_name_, i);
      Buffer bytes;
      CompressOutcome chunk_outcome;
      Status status;
      bool fell_back = false;
      {
        TELEM_SPAN("pack.compress_us");
        status = engine.compress(chunk_key, slice, bytes, &chunk_outcome);
        if (status.ok() && try_rate_fallback_ && !chunk_outcome.in_band) {
          // The rescue backend inherits the user's zfp options; the rate
          // search overrides only zfp:mode / zfp:rate per probe.
          try {
            if (!rate_backend)
              rate_backend =
                  pressio::registry().create("zfp", config_.engine.compressor_options);
            status =
                zfp_rate_rescue(*rate_backend, slice, config_.engine.tuner.target_ratio,
                                config_.engine.tuner.epsilon, overhead_, bytes, fell_back);
          } catch (...) {
            status = status_from_current_exception();
          }
        }
      }
      // Checksum and ratio are per-payload and deterministic — compute them
      // here so the lock below covers only ordering and emission.
      const std::uint32_t crc = status.ok() ? crc32(bytes.data(), bytes.size()) : 0;
      const double ratio = status.ok() && bytes.size() > 0
                               ? static_cast<double>(slice.size_bytes()) /
                                     static_cast<double>(bytes.size())
                               : 0;
      const double seconds = chunk_timer.seconds();
      const std::size_t row_bytes = row.size_bytes();
      row = NdArray();  // release the raw input row before taking the lock

      LockGuard lock(mutex_);
      staged_bytes_ -= row_bytes;
      staged_bytes_gauge().sub(static_cast<std::int64_t>(row_bytes));
      if (!status.ok()) {
        fail_locked(std::move(status));
        account_tuning_locked(engine);
        return;
      }
      if (failed_) {
        account_tuning_locked(engine);
        return;
      }
      Slot& slot = slots_[i];
      slot.bytes = std::move(bytes);
      slot.outcome = chunk_outcome;
      slot.crc = crc;
      slot.ratio = ratio;
      slot.seconds = seconds;
      slot.rate_fallback = fell_back;
      slot.ready = true;
      live_bytes_ += slot.bytes.size();
      outcome_.peak_buffered_bytes = std::max(outcome_.peak_buffered_bytes, live_bytes_);
      // Drain every ready chunk at the write head: emission is strictly in
      // index order regardless of completion order.
      while (write_head_ < chunk_count_ && slots_[write_head_].ready) {
        Slot& head = slots_[write_head_];
        const std::size_t head_size = head.bytes.size();
        ChunkReport& report = outcome_.chunks[write_head_];
        report.entry.offset = base_offset_ + emitted_bytes_;
        report.entry.size = head_size;
        // A rate-mode payload honours no pointwise bound — record 0 in the
        // manifest so readers cannot mistake the abandoned accuracy bound
        // for a guarantee; the tuned bound still seeds the next write.
        report.entry.error_bound = head.rate_fallback ? 0 : head.outcome.error_bound;
        report.tuned_bound = head.outcome.error_bound;
        report.entry.crc = head.crc;
        report.ratio = head.ratio;
        report.seconds = head.seconds;
        report.warm = head.outcome.warm;
        report.retrained = head.outcome.retrained;
        report.rate_fallback = head.rate_fallback;
        report.in_band = ratio_acceptable(report.ratio, config_.engine.tuner.target_ratio,
                                          config_.engine.tuner.epsilon);
        chunks_counter().add();
        if (report.warm) warm_chunks_counter().add();
        if (report.retrained) retrained_chunks_counter().add();
        if (report.rate_fallback) rate_fallback_counter().add();
        Status sink_status;
        {
          TELEM_SPAN("pack.emit_us");
          sink_status = sink_.append(head.bytes.data(), head_size);
        }
        if (!sink_status.ok()) {
          fail_locked(sink_status);
          account_tuning_locked(engine);
          return;
        }
        emitted_bytes_ += head_size;
        live_bytes_ -= head_size;
        --live_chunks_;
        Buffer().swap(head.bytes);  // release the payload's memory
        ++write_head_;
      }
      space_cv_.notify_all();
    }
  }

  const ArchiveWriteConfig& config_;
  const WriterWarmState& state_;
  const std::string field_name_;
  const std::size_t chunk_count_;
  const std::size_t base_offset_;  ///< this field's base within the chunk region
  ByteSink& sink_;
  const unsigned workers_;
  const std::size_t window_;
  const bool try_rate_fallback_;
  const double overhead_;

  Mutex mutex_;
  CondVar work_cv_;   ///< workers wait for queued rows
  CondVar space_cv_;  ///< submit waits for window space
  std::deque<std::pair<std::size_t, NdArray>> queue_ FRAZ_GUARDED_BY(mutex_);
  std::vector<Slot> slots_ FRAZ_GUARDED_BY(mutex_);
  PipelineOutcome outcome_ FRAZ_GUARDED_BY(mutex_);
  std::size_t submit_next_ FRAZ_GUARDED_BY(mutex_) = 0;
  std::size_t write_head_ FRAZ_GUARDED_BY(mutex_) = 0;
  /// submitted but not yet emitted
  std::size_t live_chunks_ FRAZ_GUARDED_BY(mutex_) = 0;
  /// completed-but-unemitted payload bytes
  std::size_t live_bytes_ FRAZ_GUARDED_BY(mutex_) = 0;
  /// queued + in-compression raw row bytes
  std::size_t staged_bytes_ FRAZ_GUARDED_BY(mutex_) = 0;
  std::size_t emitted_bytes_ FRAZ_GUARDED_BY(mutex_) = 0;
  bool closed_ FRAZ_GUARDED_BY(mutex_) = false;
  bool failed_ FRAZ_GUARDED_BY(mutex_) = false;
  Status failure_ FRAZ_GUARDED_BY(mutex_);
  /// Touched only by the owner thread (submit/finish caller), never by
  /// workers — not lock-guarded.
  bool joined_ = false;

  std::unique_ptr<ThreadPool> pool_;
  std::vector<std::future<void>> futures_;
};

EngineConfig serial_tuning(EngineConfig config) {
  config.tuner.threads = 1;
  return config;
}

Status validate_write_config(const ArchiveWriteConfig& config) noexcept {
  try {
    if (config.format_version < 1 || config.format_version > kFormatVersionMultiField)
      return Status::invalid_argument("archive: unsupported format version " +
                                      std::to_string(config.format_version));
    // v1's manifest records the backend as a CompressorId (built-ins only);
    // v2/v3 record the registry name, whose encoding caps it at 256 bytes.
    if (config.format_version == 1) (void)backend_id(config.engine.compressor);
    if (config.engine.compressor.empty() || config.engine.compressor.size() > 256)
      return Status::invalid_argument(
          "archive: compressor name must be 1..256 bytes to be recorded");
    return Status();
  } catch (...) {
    return status_from_current_exception();
  }
}

// ---------------------------------------------------------------- assembler

/// One field mid-ingestion: its geometry, the single staged chunk row, and
/// the pipeline compressing completed rows.
struct ArchiveAssembler::OpenField {
  std::string name;
  DType dtype{};
  Shape shape;
  std::size_t extent = 0;
  std::size_t chunk_count = 0;
  std::size_t plane_bytes = 0;
  std::size_t stage_row_bytes = 0;  ///< full chunk-row allocation (memory bound)
  std::size_t pushed_planes = 0;    ///< total planes received
  std::size_t staged_planes = 0;    ///< planes in the current stage row
  std::size_t next_chunk = 0;       ///< index of the row being staged
  bool tuned = false;
  NdArray stage;                    ///< the ONE chunk row being assembled
  std::unique_ptr<ChunkPipeline> pipeline;
  EngineStats tune_stats_before;    ///< tune-engine counters at open
};

ArchiveAssembler::ArchiveAssembler(const ArchiveWriteConfig& config,
                                   WriterWarmState& state, ByteSink& sink,
                                   std::uint8_t version)
    : config_(config), state_(state), sink_(&sink), version_(version) {
  if (version_ == 1) {
    // Legacy manifest-first layout: the chunk region must be buffered
    // because the manifest precedes it on the wire.
    region_sink_ = std::make_unique<BufferSink>(region_);
    chunk_sink_ = region_sink_.get();
  } else {
    chunk_sink_ = sink_;
  }
}

ArchiveAssembler::~ArchiveAssembler() = default;

Status ArchiveAssembler::open_field(const std::string& name,
                                    const FieldDesc& desc) noexcept {
  try {
    if (!failed_.ok()) return failed_;
    if (finished_) return Status::invalid_argument("archive: build already finished");
    if (open_)
      return Status::invalid_argument("archive: field '" + open_->name +
                                      "' is still open; close it first");
    if (name.empty() || name.size() > 256)
      return Status::invalid_argument("archive: field name must be 1..256 bytes");
    if (manifest_fields_.size() >= kMaxFields)
      return Status::invalid_argument("archive: at most " +
                                      std::to_string(kMaxFields) +
                                      " fields per archive");
    for (const FieldInfo& field : manifest_fields_)
      if (field.name == name)
        return Status::invalid_argument("archive: duplicate field name '" + name + "'");
    if (version_ != kFormatVersionMultiField && !manifest_fields_.empty())
      return Status::invalid_argument(
          "archive: format v" + std::to_string(version_) +
          " holds exactly one field (build with v3 for multi-field archives)");
    if (desc.shape.empty() || desc.shape.size() > 8)
      return Status::invalid_argument("archive: field rank must be 1..8");
    if (shape_elements(desc.shape) == 0)
      return Status::invalid_argument("archive: cannot pack an empty array");

    auto field = std::make_unique<OpenField>();
    field->name = name;
    field->dtype = desc.dtype;
    field->shape = desc.shape;
    const std::size_t n0 = desc.shape[0];
    field->plane_bytes =
        (shape_elements(desc.shape) / n0) * dtype_size(desc.dtype);
    const std::size_t requested =
        desc.chunk_extent > 0 ? desc.chunk_extent : config_.chunk_extent;
    field->extent = requested > 0 ? std::min(requested, n0)
                                  : auto_chunk_extent(n0, field->plane_bytes);
    field->chunk_count = (n0 + field->extent - 1) / field->extent;
    field->stage_row_bytes = std::min(field->extent, n0) * field->plane_bytes;

    // A geometry change re-maps chunk indices onto different planes, so the
    // per-chunk warm keys of the previous geometry are meaningless — drop
    // them (the chunk-0 tune key survives: it tracks the field, not a chunk).
    const double target = config_.engine.tuner.target_ratio;
    WriterWarmState::FieldGeometry& geometry = state_.fields[name];
    if (geometry.shape != desc.shape || geometry.extent != field->extent) {
      for (std::size_t i = 0; i < geometry.chunk_count; ++i)
        state_.bounds->erase(chunk_field_key(name, i), target);
      geometry.shape = desc.shape;
      geometry.extent = field->extent;
      geometry.chunk_count = field->chunk_count;
    }

    Shape row_shape = desc.shape;
    row_shape[0] = std::min(field->extent, n0);
    field->stage = NdArray(desc.dtype, std::move(row_shape));
    field->tune_stats_before = state_.tune_engine.stats();
    open_ = std::move(field);
    return Status();
  } catch (...) {
    return status_from_current_exception();
  }
}

Status ArchiveAssembler::push(const ArrayView& slab) noexcept {
  try {
    if (!failed_.ok()) return failed_;
    if (!open_) return Status::invalid_argument("archive: no field session is open");
    OpenField& field = *open_;
    if (slab.dtype() != field.dtype)
      return Status::invalid_argument("archive: slab dtype does not match field '" +
                                      field.name + "'");
    if (slab.dims() != field.shape.size())
      return Status::invalid_argument("archive: slab rank does not match field '" +
                                      field.name + "'");
    for (std::size_t d = 1; d < field.shape.size(); ++d)
      if (slab.shape()[d] != field.shape[d])
        return Status::invalid_argument(
            "archive: slab plane shape does not match field '" + field.name + "'");
    const std::size_t planes = slab.shape()[0];
    if (planes == 0)
      return Status::invalid_argument("archive: slab must hold at least one plane");
    if (field.pushed_planes + planes > field.shape[0])
      return Status::invalid_argument(
          "archive: field '" + field.name + "' overflows its declared " +
          std::to_string(field.shape[0]) + " planes");

    // Stage planes into the current chunk row; dispatch each row the moment
    // it completes.  The slab is copied, so the caller's buffer is free for
    // the next acquisition as soon as push returns.
    const auto* src = static_cast<const std::uint8_t*>(slab.data());
    std::size_t remaining = planes;
    while (remaining > 0) {
      const std::size_t room = field.stage.shape()[0] - field.staged_planes;
      const std::size_t take = std::min(room, remaining);
      {
        // Only the staging copy — submit_stage (tuning + pipeline hand-off)
        // is accounted by the compress/emit spans downstream.
        TELEM_SPAN("pack.stage_us");
        std::memcpy(static_cast<std::uint8_t*>(field.stage.data()) +
                        field.staged_planes * field.plane_bytes,
                    src, take * field.plane_bytes);
      }
      src += take * field.plane_bytes;
      field.staged_planes += take;
      field.pushed_planes += take;
      remaining -= take;
      if (field.staged_planes == field.stage.shape()[0]) {
        const Status s = submit_stage();
        if (!s.ok()) {
          failed_ = s;
          return s;
        }
      }
    }
    return Status();
  } catch (...) {
    return status_from_current_exception();
  }
}

Status ArchiveAssembler::submit_stage() noexcept {
  try {
    OpenField& field = *open_;
    if (!field.tuned) {
      // Chunk 0 is complete: run the field's shared ratio training (or its
      // warm confirmation) and seed every chunk key BEFORE any worker
      // compresses.  Deterministic per-chunk snapshot: each key holds
      // exactly the bound its compression will warm-start from — its own
      // previous-build bound when one is stored (the time dimension of
      // Algorithm 3), else the fresh chunk-0 bound.  Seeds depend only on
      // (field, chunk index), so the bytes a chunk compresses to cannot
      // depend on which worker handled it or on how many workers ran.
      Result<TuneResult> tuned =
          state_.tune_engine.tune(field_tune_key(field.name), field.stage.view());
      if (!tuned.ok()) return tuned.status();
      const double shared_bound = tuned.value().error_bound;
      const double target = config_.engine.tuner.target_ratio;
      for (std::size_t i = 0; i < field.chunk_count; ++i) {
        const std::string key = chunk_field_key(field.name, i);
        if (state_.bounds->get(key, target) <= 0)
          state_.bounds->put(key, target, shared_bound);
      }
      field.pipeline = std::make_unique<ChunkPipeline>(
          config_, state_, field.name, field.shape, field.chunk_count,
          chunk_bytes_emitted_, *chunk_sink_);
      field.tuned = true;
    }

    NdArray row = std::move(field.stage);
    ++field.next_chunk;
    field.staged_planes = 0;
    if (field.next_chunk < field.chunk_count) {
      Shape row_shape = field.shape;
      row_shape[0] = std::min(field.extent,
                              field.shape[0] - field.next_chunk * field.extent);
      field.stage = NdArray(field.dtype, std::move(row_shape));
    } else {
      field.stage = NdArray();
    }
    return field.pipeline->submit(std::move(row));
  } catch (...) {
    return status_from_current_exception();
  }
}

Result<FieldWriteReport> ArchiveAssembler::close_field() noexcept {
  try {
    if (!failed_.ok()) return failed_;
    if (!open_) return Status::invalid_argument("archive: no field session is open");
    OpenField& field = *open_;
    if (field.pushed_planes != field.shape[0])
      return Status::invalid_argument(
          "archive: field '" + field.name + "' is incomplete: " +
          std::to_string(field.pushed_planes) + " of " +
          std::to_string(field.shape[0]) + " planes pushed");

    Result<PipelineOutcome> piped = field.pipeline->finish();
    if (!piped.ok()) {
      failed_ = piped.status();
      return failed_;
    }
    PipelineOutcome outcome = std::move(piped).value();

    FieldInfo manifest_field;
    manifest_field.name = field.name;
    manifest_field.compressor = config_.engine.compressor;
    manifest_field.dtype = field.dtype;
    manifest_field.shape = field.shape;
    manifest_field.chunk_extent = field.extent;
    manifest_field.chunk_count = field.chunk_count;
    manifest_field.target_ratio = config_.engine.tuner.target_ratio;
    manifest_field.epsilon = config_.engine.tuner.epsilon;
    manifest_field.raw_bytes = shape_elements(field.shape) * dtype_size(field.dtype);
    manifest_field.payload_bytes = outcome.region_bytes;
    manifest_field.payload_ratio = static_cast<double>(manifest_field.raw_bytes) /
                                   static_cast<double>(manifest_field.payload_bytes);
    manifest_field.chunks.reserve(outcome.chunks.size());
    for (const ChunkReport& report : outcome.chunks)
      manifest_field.chunks.push_back(report.entry);

    FieldWriteReport report;
    report.name = field.name;
    report.dtype = field.dtype;
    report.shape = field.shape;
    report.chunk_extent = field.extent;
    report.chunk_count = field.chunk_count;
    report.raw_bytes = manifest_field.raw_bytes;
    report.payload_bytes = manifest_field.payload_bytes;
    report.payload_ratio = manifest_field.payload_ratio;
    report.in_band = ratio_acceptable(report.payload_ratio,
                                      config_.engine.tuner.target_ratio,
                                      config_.engine.tuner.epsilon);
    for (const ChunkReport& chunk : outcome.chunks) {
      report.warm_chunks += chunk.warm;
      report.retrained_chunks += chunk.retrained;
      report.rate_fallback_chunks += chunk.rate_fallback;
    }
    report.chunks = std::move(outcome.chunks);
    all_chunks_.insert(all_chunks_.end(), report.chunks.begin(), report.chunks.end());

    const EngineStats& tune_after = state_.tune_engine.stats();
    tuner_probe_calls_ += outcome.tuner_probe_calls +
                          (tune_after.tuner_probe_calls -
                           field.tune_stats_before.tuner_probe_calls);
    probe_cache_hits_ += outcome.probe_cache_hits +
                         (tune_after.probe_cache_hits -
                          field.tune_stats_before.probe_cache_hits);
    peak_buffered_chunks_ = std::max(peak_buffered_chunks_, outcome.peak_buffered_chunks);
    peak_buffered_bytes_ = std::max(peak_buffered_bytes_, outcome.peak_buffered_bytes);
    peak_staged_bytes_ = std::max(peak_staged_bytes_,
                                  outcome.peak_staged_bytes + field.stage_row_bytes);
    chunk_bytes_emitted_ += manifest_field.payload_bytes;
    total_raw_bytes_ += manifest_field.raw_bytes;

    manifest_fields_.push_back(std::move(manifest_field));
    reports_.push_back(std::move(report));
    open_.reset();
    return reports_.back();
  } catch (...) {
    return status_from_current_exception();
  }
}

Result<ArchiveWriteResult> ArchiveAssembler::finish() noexcept {
  try {
    if (!failed_.ok()) return failed_;
    if (finished_) return Status::invalid_argument("archive: build already finished");
    if (open_)
      return Status::invalid_argument("archive: field '" + open_->name +
                                      "' is still open; close it before finish");
    if (manifest_fields_.empty())
      return Status::invalid_argument("archive: build holds no fields");

    const auto append = [&](const Buffer& block) {
      const Status s = sink_->append(block.data(), block.size());
      if (!s.ok()) failed_ = s;
      return s;
    };

    Buffer manifest;
    std::size_t manifest_offset = 0;
    const FieldInfo& first = manifest_fields_.front();
    if (version_ == 1) {
      encode_manifest(1, first.compressor, first.dtype, first.shape, first.target_ratio,
                      first.epsilon, first.chunk_extent, first.chunks, manifest);
      if (!append(manifest).ok()) return failed_;
      if (!append(region_).ok()) return failed_;
    } else if (version_ == 2) {
      manifest_offset = chunk_bytes_emitted_;
      encode_manifest(2, first.compressor, first.dtype, first.shape, first.target_ratio,
                      first.epsilon, first.chunk_extent, first.chunks, manifest);
      if (!append(manifest).ok()) return failed_;
    } else {
      manifest_offset = chunk_bytes_emitted_;
      encode_manifest_fields(manifest_fields_, manifest);
      if (!append(manifest).ok()) return failed_;
    }

    ArchiveWriteResult result;
    result.format_version = version_;
    result.chunk_count = first.chunk_count;
    result.chunk_extent = first.chunk_extent;
    result.raw_bytes = total_raw_bytes_;
    const std::size_t footer_bytes = version_ == 1 ? kFooterBytesV1 : kFooterBytes;
    result.archive_bytes = sink_->bytes_written() + footer_bytes;
    result.achieved_ratio = static_cast<double>(result.raw_bytes) /
                            static_cast<double>(result.archive_bytes);
    result.in_band = ratio_acceptable(result.achieved_ratio,
                                      config_.engine.tuner.target_ratio,
                                      config_.engine.tuner.epsilon);
    for (const FieldWriteReport& report : reports_) {
      result.warm_chunks += report.warm_chunks;
      result.retrained_chunks += report.retrained_chunks;
      result.rate_fallback_chunks += report.rate_fallback_chunks;
    }
    result.tuner_probe_calls = tuner_probe_calls_;
    result.probe_cache_hits = probe_cache_hits_;
    result.peak_buffered_chunks = peak_buffered_chunks_;
    result.peak_buffered_bytes = peak_buffered_bytes_;
    result.peak_staged_bytes = peak_staged_bytes_;
    result.chunks = std::move(all_chunks_);
    result.fields = std::move(reports_);

    Buffer footer;
    encode_footer(version_, manifest_offset, manifest.size(), result.raw_bytes,
                  result.archive_bytes, result.achieved_ratio, footer);
    if (!append(footer).ok()) return failed_;

    result.seconds = timer_.seconds();
    finished_ = true;
    return result;
  } catch (...) {
    return status_from_current_exception();
  }
}

// ---------------------------------------------------- compatibility wrapper

Result<ArchiveWriteResult> write_archive(const ArchiveWriteConfig& config,
                                         WriterWarmState& state, const ArrayView& data,
                                         ByteSink& sink) {
  try {
    if (data.dims() == 0 || data.elements() == 0)
      return Status::invalid_argument("archive: cannot pack an empty array");
    const Status config_status = validate_write_config(config);
    if (!config_status.ok()) return config_status;
    // The whole write path IS one field session: write(ArrayView) just
    // pushes the entire array as a single slab.  This stages one extra
    // memcpy pass over the input (chunk rows are owned by the pipeline so
    // pushed data never needs to outlive push()) — measured noise next to
    // chunk compression (bench_archive_stream), and the price of having
    // exactly one write path to keep byte-identical.
    ArchiveAssembler assembler(config, state, sink, config.format_version);
    FieldDesc desc;
    desc.dtype = data.dtype();
    desc.shape = data.shape();
    desc.chunk_extent = config.chunk_extent;
    Status s = assembler.open_field(kDefaultFieldName, desc);
    if (!s.ok()) return s;
    s = assembler.push(data);
    if (!s.ok()) return s;
    const Result<FieldWriteReport> closed = assembler.close_field();
    if (!closed.ok()) return closed.status();
    return assembler.finish();
  } catch (...) {
    return status_from_current_exception();
  }
}

}  // namespace fraz::archive::detail

namespace fraz::archive {

WriterWarmState::WriterWarmState(const EngineConfig& engine_config)
    : tune_engine(detail::serial_tuning(engine_config)),
      bounds(std::make_shared<BoundStore>()),
      probes(std::make_shared<ProbeCache>()) {
  tune_engine.adopt_bound_store(bounds);
  tune_engine.adopt_probe_cache(probes);
}

}  // namespace fraz::archive

