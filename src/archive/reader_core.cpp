#include "archive/reader_core.hpp"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <future>
#include <thread>
#include <vector>

#include "codec/checksum.hpp"
#include "opt/thread_pool.hpp"
#include "telemetry/telemetry.hpp"
#include "util/error.hpp"

namespace fraz::archive::detail {

namespace {

unsigned resolve_workers(unsigned requested, std::size_t tasks) {
  unsigned w = requested == 0 ? std::thread::hardware_concurrency() : requested;
  if (w == 0) w = 1;
  return static_cast<unsigned>(std::min<std::size_t>(w, tasks));
}

}  // namespace

const std::uint8_t* MemorySource::fetch(std::size_t offset, std::size_t size,
                                        Buffer& scratch) const {
  (void)scratch;
  if (offset > size_ || size > size_ - offset)
    throw CorruptStream("archive: read beyond the end of the archive");
  return data_ + offset;
}

Shape chunk_shape(const FieldInfo& field, std::size_t i) {
  require(i < field.chunk_count, "archive: chunk index out of range");
  Shape shape = field.shape;
  shape[0] = std::min(field.chunk_extent, field.shape[0] - i * field.chunk_extent);
  return shape;
}

NdArray decode_chunk(Engine& engine, const ChunkSource& source, const FieldInfo& field,
                     std::size_t chunk_region, std::size_t i, Buffer& scratch) {
  const ChunkEntry& entry = field.chunks[i];
  const std::uint8_t* chunk =
      source.fetch(chunk_region + entry.offset, entry.size, scratch);
  if (crc32(chunk, entry.size) != entry.crc)
    throw CorruptStream("archive: chunk " + std::to_string(i) + " failed its checksum");
  Result<NdArray> decoded = [&] {
    // Per-backend decode latency, labelled like the tuner's probe spans
    // (tune.probe_us.<backend>) so dashboards can line the two up.
    const std::string span_name = "decode_us." + field.compressor;
    telemetry::SpanTimer span(telemetry::global().histogram(span_name), span_name.c_str());
    return engine.decompress(chunk, entry.size);
  }();
  if (!decoded.ok())
    throw CorruptStream("archive: chunk " + std::to_string(i) + ": " +
                        decoded.status().to_string());
  if (decoded.value().dtype() != field.dtype ||
      decoded.value().shape() != chunk_shape(field, i))
    throw CorruptStream("archive: chunk " + std::to_string(i) +
                        " decoded to an unexpected shape");
  return std::move(decoded).value();
}

Status read_planes(const ChunkSource& source, const FieldInfo& field,
                   std::size_t chunk_region, Engine& serial_engine,
                   Buffer& serial_scratch, std::size_t first, std::size_t count,
                   unsigned threads, NdArray& out) noexcept {
  try {
    const std::size_t n0 = field.shape[0];
    const std::size_t plane_bytes =
        (shape_elements(field.shape) / n0) * dtype_size(field.dtype);
    const std::size_t extent = field.chunk_extent;
    const std::size_t first_chunk = first / extent;
    const std::size_t last_chunk = (first + count - 1) / extent;
    const std::size_t touched = last_chunk - first_chunk + 1;

    auto emplace = [&](Engine& engine, Buffer& scratch, std::size_t c) {
      const NdArray chunk = decode_chunk(engine, source, field, chunk_region, c, scratch);
      const std::size_t chunk_first = c * extent;
      const std::size_t lo = std::max(first, chunk_first);
      const std::size_t hi = std::min(first + count, chunk_first + chunk.shape()[0]);
      std::memcpy(static_cast<std::uint8_t*>(out.data()) + (lo - first) * plane_bytes,
                  static_cast<const std::uint8_t*>(chunk.data()) +
                      (lo - chunk_first) * plane_bytes,
                  (hi - lo) * plane_bytes);
    };

    const unsigned workers = resolve_workers(threads, touched);
    if (threads == 1 || workers <= 1) {
      for (std::size_t c = first_chunk; c <= last_chunk; ++c)
        emplace(serial_engine, serial_scratch, c);
      return Status();
    }

    // Parallel decode: touched chunks write disjoint plane windows of `out`,
    // so the only coordination needed is the shared chunk counter.
    std::vector<Status> statuses(touched);
    std::atomic<std::size_t> next{0};
    auto drain = [&] {
      EngineConfig config;
      config.compressor = field.compressor;
      auto created = Engine::create(std::move(config));
      std::size_t t;
      if (!created.ok()) {
        while ((t = next.fetch_add(1)) < touched) statuses[t] = created.status();
        return;
      }
      Engine engine = std::move(created).value();
      Buffer scratch;
      while ((t = next.fetch_add(1)) < touched) {
        try {
          emplace(engine, scratch, first_chunk + t);
        } catch (...) {
          statuses[t] = status_from_current_exception();
        }
      }
    };
    {
      ThreadPool pool(workers);
      std::vector<std::future<void>> done;
      done.reserve(workers);
      for (unsigned w = 0; w < workers; ++w) done.push_back(pool.submit(drain));
      for (auto& f : done) f.get();
    }
    for (const Status& s : statuses)
      if (!s.ok()) return s;
    return Status();
  } catch (...) {
    return status_from_current_exception();
  }
}

// --------------------------------------------------------------- ReaderCore

Result<ReaderCore> ReaderCore::create(ArchiveInfo info) noexcept {
  try {
    std::vector<Engine> engines;
    engines.reserve(info.fields.size());
    for (const FieldInfo& field : info.fields) {
      EngineConfig engine_config;
      engine_config.compressor = field.compressor;
      auto engine = Engine::create(std::move(engine_config));
      if (!engine.ok()) return engine.status();
      engines.push_back(std::move(engine).value());
    }
    return ReaderCore(std::move(info), std::move(engines));
  } catch (...) {
    return status_from_current_exception();
  }
}

Result<std::size_t> ReaderCore::field_index(const std::string& name) const noexcept {
  if (const FieldInfo* field = find_field(info_, name))
    return static_cast<std::size_t>(field - info_.fields.data());
  return Status::invalid_argument("archive: no field named '" + name + "'");
}

Shape ReaderCore::shape_of_chunk(std::size_t field, std::size_t i) const {
  require(field < info_.fields.size(), "archive: field index out of range");
  return chunk_shape(info_.fields[field], i);
}

Shape ReaderCore::shape_of_chunk(const std::string& field, std::size_t i) const {
  const FieldInfo* f = find_field(info_, field);
  require(f != nullptr, "archive: no field named '" + field + "'");
  return chunk_shape(*f, i);
}

Result<NdArray> ReaderCore::read_chunk(const ChunkSource& source, std::size_t field,
                                       std::size_t i) noexcept {
  try {
    const FieldInfo& f = info_.fields[field];
    if (i >= f.chunk_count)
      return Status::invalid_argument("archive: chunk index out of range");
    return decode_chunk(engines_[field], source, f, info_.chunk_region, i, scratch_);
  } catch (...) {
    return status_from_current_exception();
  }
}

Result<NdArray> ReaderCore::read_chunk(const ChunkSource& source,
                                       const std::string& field,
                                       std::size_t i) noexcept {
  const Result<std::size_t> index = field_index(field);
  if (!index.ok()) return index.status();
  return read_chunk(source, index.value(), i);
}

Result<NdArray> ReaderCore::read_range(const ChunkSource& source, std::size_t field,
                                       std::size_t first, std::size_t count,
                                       unsigned threads) noexcept {
  try {
    const FieldInfo& f = info_.fields[field];
    const std::size_t n0 = f.shape[0];
    if (count == 0 || first >= n0 || count > n0 - first)
      return Status::invalid_argument("archive: plane range out of bounds");
    Shape out_shape = f.shape;
    out_shape[0] = count;
    NdArray out(f.dtype, std::move(out_shape));
    const Status s = read_planes(source, f, info_.chunk_region, engines_[field],
                                 scratch_, first, count, threads, out);
    if (!s.ok()) return s;
    return out;
  } catch (...) {
    return status_from_current_exception();
  }
}

Result<NdArray> ReaderCore::read_range(const ChunkSource& source,
                                       const std::string& field, std::size_t first,
                                       std::size_t count, unsigned threads) noexcept {
  const Result<std::size_t> index = field_index(field);
  if (!index.ok()) return index.status();
  return read_range(source, index.value(), first, count, threads);
}

Result<NdArray> ReaderCore::read_all(const ChunkSource& source, std::size_t field,
                                     unsigned threads) noexcept {
  return read_range(source, field, 0, info_.fields[field].shape[0], threads);
}

Result<NdArray> ReaderCore::read_all(const ChunkSource& source,
                                     const std::string& field,
                                     unsigned threads) noexcept {
  const Result<std::size_t> index = field_index(field);
  if (!index.ok()) return index.status();
  return read_all(source, index.value(), threads);
}

}  // namespace fraz::archive::detail
