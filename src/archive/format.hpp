#ifndef FRAZ_ARCHIVE_FORMAT_HPP
#define FRAZ_ARCHIVE_FORMAT_HPP

/// \file format.hpp
/// The archive wire codec shared by every transport: manifest and footer
/// encoding/parsing for both on-disk layouts.
///
/// **Format v1** (PR 2, manifest-first):
///
///   [manifest]   a standard Container frame (magic 'FRaZ', compressor id,
///                dtype, FULL logical shape, CRC-32) whose payload is:
///                  u32     archive magic 'FRzA'
///                  u8      archive format version (1)
///                  f64     target ratio ρt,  f64 epsilon ε
///                  varint  chunk extent,  varint chunk count
///                  per chunk: varint offset, varint size, f64 bound, u32 CRC
///   [chunks]     concatenated chunk payloads
///   [footer]     fixed 40 bytes: u32 magic 'FRzE', u64 manifest size,
///                u64 raw bytes, u64 archive bytes, f64 aggregate ratio,
///                u32 CRC-32 over the preceding 36 bytes
///
/// **Format v2** (current, chunks-first — the streaming layout):
///
///   [chunks]     concatenated chunk payloads, starting at offset 0.  A
///                streaming writer appends each chunk as it finishes; nothing
///                upstream of a chunk ever needs rewriting.
///   [manifest]   a self-framed block (no Container wrapper, so the backend
///                no longer needs a built-in CompressorId):
///                  u32     manifest magic 'FRzM'
///                  u8      archive format version (2)
///                  u8      dtype tag (0 = f32, 1 = f64)
///                  varint  ndims, then varint extents (slowest first)
///                  varint  compressor-name length, then the registry name —
///                          user plugins round-trip through archives
///                  f64     target ratio ρt,  f64 epsilon ε
///                  varint  chunk extent,  varint chunk count
///                  per chunk: varint offset, varint size, f64 bound, u32 CRC
///                  u32     CRC-32 over every preceding manifest byte
///   [footer]     fixed 48 bytes at the very end:
///                  u32  footer magic 'FRz2'
///                  u64  manifest offset (= chunk region size)
///                  u64  manifest size
///                  u64  raw bytes of the original array
///                  u64  total archive bytes (self check)
///                  f64  achieved aggregate ratio (raw / archive)
///                  u32  CRC-32 over the 44 footer bytes before it
///
/// **Format v3** (multi-field, chunks-first — the streaming layout):
///
///   [chunks]     concatenated chunk payloads of EVERY field, in field write
///                order, starting at offset 0.  Fields are ingested one at a
///                time (push-based sessions), so each field's chunks form a
///                contiguous span and the spans tile the region in manifest
///                order.  Chunk offsets are absolute within the region.
///   [manifest]   a self-framed field table:
///                  u32     manifest magic 'FRzM'
///                  u8      archive format version (3)
///                  varint  field count
///                  per field:
///                    varint  name length, then the field name (unique)
///                    u8      dtype tag (0 = f32, 1 = f64)
///                    varint  ndims, then varint extents (slowest first)
///                    varint  compressor-name length, then the registry name
///                    f64     target ratio ρt,  f64 epsilon ε
///                    f64     per-field aggregate payload ratio (raw/payload)
///                    varint  chunk extent,  varint chunk count
///                    per chunk: varint offset, varint size, f64 bound, u32 CRC
///                  u32     CRC-32 over every preceding manifest byte
///   [footer]     the same 48-byte 'FRz2' trailer as v2 (raw/archive bytes
///                are totals across fields); the manifest's version byte is
///                what distinguishes a v3 archive from a v2 one.
///
/// A reader locates the footer from the end of the byte stream (v2/v3 trailer
/// tried first, then v1), so all layouts stay readable through one parse path.

#include <cstdint>
#include <string>
#include <vector>

#include "compressors/container.hpp"
#include "ndarray/ndarray.hpp"
#include "util/buffer.hpp"

namespace fraz::archive {

/// Archive format version written by default (single-field packs).
inline constexpr std::uint8_t kFormatVersion = 2;

/// Format version of multi-field archives (the field-table manifest).
inline constexpr std::uint8_t kFormatVersionMultiField = 3;

/// Field name single-field (v1/v2) archives are presented under, and the
/// name the compatibility write(ArrayView) path ingests as.
inline constexpr const char* kDefaultFieldName = "data";

/// Maximum fields a v3 archive may hold — enforced symmetrically by the
/// writer (open_field) and the parser, so a build that succeeds always
/// produces an archive its own readers open.
inline constexpr std::size_t kMaxFields = 4096;

/// Size of the fixed trailer of the current (v2/v3) formats.
inline constexpr std::size_t kFooterBytes = 48;

/// Size of the v1 trailer (still readable).
inline constexpr std::size_t kFooterBytesV1 = 40;

/// One chunk's entry as recorded in (or parsed from) the manifest.
struct ChunkEntry {
  std::size_t offset = 0;     ///< from the start of the chunk region
  std::size_t size = 0;       ///< compressed bytes
  /// Pointwise error bound the chunk was compressed at; 0 when the payload
  /// honours no pointwise bound (a ZFP rate-mode fallback chunk).
  double error_bound = 0;
  std::uint32_t crc = 0;      ///< CRC-32 of the chunk's bytes
};

/// One named field of an archive: its geometry, backend, tuning band, and
/// chunk index.  v1/v2 archives present their single array as a field named
/// kDefaultFieldName so every reader API is uniform across versions.
struct FieldInfo {
  std::string name;
  std::string compressor;       ///< registry name of the backend
  DType dtype{};
  Shape shape;                  ///< full logical shape of this field
  std::size_t chunk_extent = 0;
  std::size_t chunk_count = 0;
  double target_ratio = 0;
  double epsilon = 0;
  std::size_t raw_bytes = 0;    ///< uncompressed bytes of this field
  std::size_t payload_bytes = 0;///< sum of this field's chunk sizes
  double payload_ratio = 0;     ///< per-field aggregate: raw / payload bytes
  std::vector<ChunkEntry> chunks;  ///< offsets absolute within the chunk region
};

/// Parsed archive metadata (manifest + footer; chunk payloads untouched).
/// The flat members mirror fields[0] (every archive has at least one field),
/// so single-field consumers keep working; totals (raw_bytes, archive_bytes,
/// achieved_ratio) always come from the footer and cover every field.
struct ArchiveInfo {
  std::uint8_t version = 0;     ///< on-disk format version (1, 2, or 3)
  std::string compressor;       ///< registry name of fields[0]'s backend
  DType dtype{};
  Shape shape;                  ///< full logical shape of fields[0]
  std::size_t chunk_region = 0; ///< byte offset where the chunk region starts
  std::size_t chunk_extent = 0;
  std::size_t chunk_count = 0;
  double target_ratio = 0;
  double epsilon = 0;
  std::size_t raw_bytes = 0;    ///< total raw bytes across every field
  std::size_t archive_bytes = 0;
  double achieved_ratio = 0;    ///< aggregate ratio recorded in the footer
  std::vector<ChunkEntry> chunks;  ///< fields[0]'s chunk index
  std::vector<FieldInfo> fields;   ///< every field (size 1 for v1/v2)
};

/// Parsed footer: the trust anchor that locates the other two regions.
struct Footer {
  /// Trailer layout (1 or 2).  v3 archives share the v2 trailer — the
  /// manifest's own version byte is what distinguishes them.
  std::uint8_t version = 0;
  std::size_t footer_bytes = 0;    ///< 40 (v1) or 48 (v2)
  std::size_t manifest_offset = 0;
  std::size_t manifest_size = 0;
  std::size_t chunk_region = 0;    ///< where chunk payloads start
  std::size_t region_bytes = 0;    ///< total chunk payload bytes
  std::uint64_t raw_bytes = 0;
  std::uint64_t archive_bytes = 0;
  double achieved_ratio = 0;
};

/// Registry name of a container CompressorId ("sz", "zfp", ...).
std::string backend_name(CompressorId id);

/// Inverse of backend_name; throws Unsupported for names outside the four
/// built-in ids the v1 format can record (v2 records the name itself).
CompressorId backend_id(const std::string& name);

/// Encode the manifest block for \p version into \p out (cleared first).
/// v1 seals a Container frame around the legacy payload and therefore
/// requires a built-in backend; v2 is self-framed and accepts any name.
void encode_manifest(std::uint8_t version, const std::string& compressor, DType dtype,
                     const Shape& shape, double target_ratio, double epsilon,
                     std::size_t chunk_extent, const std::vector<ChunkEntry>& chunks,
                     Buffer& out);

/// Encode the v3 multi-field manifest (field table) into \p out (cleared
/// first).  Field names must be unique, 1..256 bytes; chunk offsets must be
/// absolute within the chunk region and tile it in field order.
void encode_manifest_fields(const std::vector<FieldInfo>& fields, Buffer& out);

/// Field named \p name in \p info, or nullptr when absent.
const FieldInfo* find_field(const ArchiveInfo& info, const std::string& name) noexcept;

/// Append the fixed trailer for \p version to \p out.  For v1,
/// \p manifest_offset is ignored (the manifest starts at 0 by construction
/// and the footer records only its size).
void encode_footer(std::uint8_t version, std::size_t manifest_offset,
                   std::size_t manifest_size, std::uint64_t raw_bytes,
                   std::uint64_t archive_bytes, double achieved_ratio, Buffer& out);

/// Parse and validate the trailer from the archive's final bytes.  \p tail
/// must hold the last min(kFooterBytes, total_size) bytes of the stream and
/// \p total_size the full archive size.  Tries the v2 trailer first, then
/// v1; throws CorruptStream when neither validates or the recorded geometry
/// is inconsistent with \p total_size.
Footer parse_footer(const std::uint8_t* tail, std::size_t tail_size,
                    std::uint64_t total_size);

/// Parse and validate the manifest block located by \p footer (both
/// layouts), returning the fully populated ArchiveInfo.  Throws
/// CorruptStream on any checksum, framing, or consistency failure.
ArchiveInfo parse_manifest(const std::uint8_t* manifest, std::size_t size,
                           const Footer& footer);

}  // namespace fraz::archive

#endif  // FRAZ_ARCHIVE_FORMAT_HPP
