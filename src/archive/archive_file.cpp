#include "archive/archive_file.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <limits>
#include <mutex>

#include "archive/pipeline.hpp"
#include "util/error.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define FRAZ_ARCHIVE_HAS_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define FRAZ_ARCHIVE_HAS_MMAP 0
#endif

namespace fraz::archive {

namespace detail {

namespace {

std::string errno_message(const std::string& what, const std::string& path) {
  return what + " '" + path + "': " + errno_detail(errno);
}

#if !FRAZ_ARCHIVE_HAS_MMAP
/// 64-bit-clean positioned seek: std::fseek takes a long, which is 32 bits
/// on some platforms (Windows) — exactly the ones stuck on the FILE* path —
/// and archives larger than RAM routinely exceed 2 GiB.
int seek_to(std::FILE* file, std::size_t offset) {
  if (offset > static_cast<std::size_t>(std::numeric_limits<long>::max())) return -1;
  return std::fseek(file, static_cast<long>(offset), SEEK_SET);
}

/// 64-bit-clean end-of-file position; negative on failure.
std::int64_t size_of(std::FILE* file) {
  if (std::fseek(file, 0, SEEK_END) != 0) return -1;
  return static_cast<std::int64_t>(std::ftell(file));
}
#endif

}  // namespace

Status FileSink::append(const std::uint8_t* data, std::size_t size) noexcept {
  if (size != 0 && std::fwrite(data, 1, size, file_) != size) {
    // Capture errno at the failing fwrite — before any other call can
    // clobber it — so the Status carries the real OS detail (ENOSPC, EIO,
    // EBADF, ...), not a stale or reset value.
    const int write_errno = errno;
    return Status::io_error("archive: write failed after " + std::to_string(written_) +
                            " bytes: " + errno_detail(write_errno));
  }
  written_ += size;
  return Status();
}

/// Positioned-read source over an archive file: an mmap'd view where the
/// platform provides one; the buffered fallback uses pread on POSIX —
/// per-call offsets on a shared descriptor, no shared file position and no
/// lock, so cold reads from parallel decode workers genuinely overlap.
/// Only the portable non-POSIX fallback still serializes fseek+fread on a
/// FILE* behind a mutex.
class FileSource final : public ChunkSource {
public:
  static std::unique_ptr<FileSource> open(const std::string& path, FileReadMode mode) {
#if FRAZ_ARCHIVE_HAS_MMAP
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) throw IoError(errno_message("archive: cannot open", path));
    struct stat st {};
    if (::fstat(fd, &st) != 0 || st.st_size < 0) {
      ::close(fd);
      throw IoError(errno_message("archive: cannot stat", path));
    }
    const auto size = static_cast<std::size_t>(st.st_size);
    if (size == 0) {
      ::close(fd);
      throw CorruptStream("archive: '" + path + "' is empty");
    }
    if (mode != FileReadMode::kBuffered) {
      void* map = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
      ::close(fd);  // the mapping keeps the file referenced
      if (map == MAP_FAILED) throw IoError(errno_message("archive: cannot mmap", path));
      return std::unique_ptr<FileSource>(new FileSource(map, size));
    }
    // Buffered mode keeps the descriptor: pread carries its own offset, so
    // concurrent fetches need no coordination at all.
    return std::unique_ptr<FileSource>(new FileSource(fd, size));
#else
    if (mode == FileReadMode::kMmap)
      throw Unsupported("archive: mmap is not available on this platform");
    std::FILE* file = std::fopen(path.c_str(), "rb");
    if (!file) throw IoError(errno_message("archive: cannot open", path));
    const std::int64_t end = size_of(file);
    if (end < 0) {
      std::fclose(file);
      throw IoError(errno_message("archive: cannot measure", path));
    }
    if (end == 0) {
      std::fclose(file);
      throw CorruptStream("archive: '" + path + "' is empty");
    }
    return std::unique_ptr<FileSource>(new FileSource(file, static_cast<std::size_t>(end)));
#endif
  }

  ~FileSource() override {
#if FRAZ_ARCHIVE_HAS_MMAP
    if (map_) ::munmap(map_, size_);
    if (fd_ >= 0) ::close(fd_);
#else
    if (file_) std::fclose(file_);
#endif
  }

  FileSource(const FileSource&) = delete;
  FileSource& operator=(const FileSource&) = delete;

  std::size_t size() const noexcept { return size_; }
  bool mapped() const noexcept { return map_ != nullptr; }

  const std::uint8_t* fetch(std::size_t offset, std::size_t size,
                            Buffer& scratch) const override {
    if (offset > size_ || size > size_ - offset)
      throw CorruptStream("archive: read beyond the end of the archive");
    if (map_) return static_cast<const std::uint8_t*>(map_) + offset;
    scratch.resize(size);
#if FRAZ_ARCHIVE_HAS_MMAP
    // Positioned reads on the shared descriptor: each call names its own
    // offset, so parallel workers' cold fetches overlap instead of queueing
    // on one file position.  Loop: pread may return short on signals.
    std::size_t got = 0;
    while (got < size) {
      const ::ssize_t n = ::pread(fd_, scratch.data() + got, size - got,
                                  static_cast<off_t>(offset + got));
      if (n < 0) {
        if (errno == EINTR) continue;
        throw IoError("archive: pread failed: " + std::string(std::strerror(errno)));
      }
      if (n == 0) throw IoError("archive: short read");
      got += static_cast<std::size_t>(n);
    }
#else
    std::lock_guard lock(io_mutex_);
    if (seek_to(file_, offset) != 0)
      throw IoError("archive: seek failed: " + std::string(std::strerror(errno)));
    if (std::fread(scratch.data(), 1, size, file_) != size)
      throw IoError("archive: short read");
#endif
    return scratch.data();
  }

private:
  FileSource(void* map, std::size_t size) : map_(map), size_(size) {}
#if FRAZ_ARCHIVE_HAS_MMAP
  FileSource(int fd, std::size_t size) : size_(size), fd_(fd) {}
#else
  FileSource(std::FILE* file, std::size_t size) : size_(size), file_(file) {}
#endif

  // One representation per platform: POSIX serves buffered fetches through
  // pread on fd_; only the portable fallback carries a FILE* and the mutex
  // that serializes its shared file position.
  void* map_ = nullptr;
  std::size_t size_ = 0;
#if FRAZ_ARCHIVE_HAS_MMAP
  int fd_ = -1;
#else
  std::FILE* file_ = nullptr;
  mutable std::mutex io_mutex_;
#endif
};

}  // namespace detail

// ------------------------------------------------------------------- writer

/// One streaming build: the open file, its sink, and the shared assembler
/// (shared so FieldSession handles can track it weakly).  Destroying a
/// build whose handle is still live is abandonment — every teardown path
/// (cancel, writer destruction, move-assignment over an active build) joins
/// the pipeline, closes the handle, and removes the partial file, so no
/// path can leak the descriptor or strand a corrupt archive.
struct ArchiveFileWriter::Build {
  Build(std::FILE* handle, std::string file_path, const ArchiveWriteConfig& config,
        WriterWarmState& state, std::uint8_t version)
      : file(handle),
        path(std::move(file_path)),
        sink(handle),
        assembler(std::make_shared<detail::ArchiveAssembler>(config, state, sink,
                                                             version)) {}

  ~Build() {
    // Join the pipeline workers before the handle they emit through closes;
    // a successful finish() nulls `file` first and skips this entirely.
    assembler.reset();
    if (file) {
      std::fclose(file);
      std::remove(path.c_str());
    }
  }

  std::FILE* file;
  std::string path;
  detail::FileSink sink;
  std::shared_ptr<detail::ArchiveAssembler> assembler;
};

ArchiveFileWriter::ArchiveFileWriter(ArchiveWriteConfig config)
    : config_(std::move(config)),
      state_(std::make_unique<WriterWarmState>(config_.engine)) {
  const Status s = detail::validate_write_config(config_);
  if (!s.ok()) throw_status(s);
}

ArchiveFileWriter::ArchiveFileWriter(ArchiveFileWriter&&) noexcept = default;
ArchiveFileWriter& ArchiveFileWriter::operator=(ArchiveFileWriter&&) noexcept = default;

ArchiveFileWriter::~ArchiveFileWriter() {
  // An abandoned build must not leak its handle or leave a partial archive.
  cancel();
}

Result<ArchiveFileWriter> ArchiveFileWriter::create(ArchiveWriteConfig config) noexcept {
  try {
    return ArchiveFileWriter(std::move(config));
  } catch (...) {
    return status_from_current_exception();
  }
}

Result<ArchiveWriteResult> ArchiveFileWriter::write(const std::string& path,
                                                    const ArrayView& data) noexcept {
  if (build_)
    return Status::invalid_argument(
        "archive: a multi-field build is in progress; finish() or cancel() first");
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (!file)
    return Status::io_error(detail::errno_message("archive: cannot open", path));
  detail::FileSink sink(file);
  Result<ArchiveWriteResult> result = detail::write_archive(config_, *state_, data, sink);
  // Capture each failing call's errno immediately: a succeeding fclose after
  // a failed fflush would otherwise clobber the detail worth reporting.
  const bool flushed = std::fflush(file) == 0;
  const int flush_errno = flushed ? 0 : errno;
  const bool closed = std::fclose(file) == 0;
  const int close_errno = closed ? 0 : errno;
  if (result.ok() && !(flushed && closed))
    result = Status::io_error("archive: cannot finish '" + path + "': " +
                              errno_detail(flushed ? close_errno : flush_errno));
  // Never leave a partial archive behind: its footer chain would fail open()
  // anyway, and a campaign retries by path.
  if (!result.ok()) std::remove(path.c_str());
  return result;
}

Status ArchiveFileWriter::begin(const std::string& path, std::uint8_t version) noexcept {
  try {
    if (build_)
      return Status::invalid_argument(
          "archive: a build is already in progress; finish() or cancel() first");
    ArchiveWriteConfig versioned = config_;
    versioned.format_version = version;
    const Status s = detail::validate_write_config(versioned);
    if (!s.ok()) return s;
    std::FILE* file = std::fopen(path.c_str(), "wb");
    if (!file)
      return Status::io_error(detail::errno_message("archive: cannot open", path));
    build_ = std::make_unique<Build>(file, path, config_, *state_, version);
    return Status();
  } catch (...) {
    return status_from_current_exception();
  }
}

Result<FieldSession> ArchiveFileWriter::open_field(const std::string& name,
                                                   const FieldDesc& desc) noexcept {
  if (!build_)
    return Status::invalid_argument("archive: no build in progress; call begin() first");
  const Status s = build_->assembler->open_field(name, desc);
  if (!s.ok()) return s;
  return FieldSession(std::weak_ptr<detail::ArchiveAssembler>(build_->assembler));
}

Result<ArchiveWriteResult> ArchiveFileWriter::finish() noexcept {
  if (!build_)
    return Status::invalid_argument("archive: no build in progress; call begin() first");
  Result<ArchiveWriteResult> result = build_->assembler->finish();
  // Assembler-level failure (field still open, sticky pipeline error): keep
  // the build so the caller can close the field and retry, or cancel().
  if (!result.ok()) return result;
  const std::string path = build_->path;
  std::FILE* file = build_->file;
  build_->file = nullptr;
  build_.reset();
  // Capture each failing call's errno immediately: a succeeding fclose after
  // a failed fflush would otherwise clobber the detail worth reporting.
  const bool flushed = std::fflush(file) == 0;
  const int flush_errno = flushed ? 0 : errno;
  const bool closed = std::fclose(file) == 0;
  const int close_errno = closed ? 0 : errno;
  if (!(flushed && closed)) {
    std::remove(path.c_str());
    return Status::io_error("archive: cannot finish '" + path + "': " +
                            errno_detail(flushed ? close_errno : flush_errno));
  }
  return result;
}

void ArchiveFileWriter::cancel() noexcept {
  build_.reset();  // ~Build joins the pipeline, closes, and removes the file
}

// ------------------------------------------------------------------- reader

ArchiveFileReader::ArchiveFileReader(std::unique_ptr<detail::FileSource> source,
                                     detail::ReaderCore core) noexcept
    : source_(std::move(source)), core_(std::move(core)) {}

ArchiveFileReader::ArchiveFileReader(ArchiveFileReader&&) noexcept = default;
ArchiveFileReader& ArchiveFileReader::operator=(ArchiveFileReader&&) noexcept = default;
ArchiveFileReader::~ArchiveFileReader() = default;

Result<ArchiveFileReader> ArchiveFileReader::open(const std::string& path,
                                                  FileReadMode mode) noexcept {
  try {
    std::unique_ptr<detail::FileSource> source = detail::FileSource::open(path, mode);
    const std::size_t size = source->size();

    // Validate only the trust anchors up front: footer, then manifest.
    Buffer scratch;
    const std::size_t tail_size = std::min(size, kFooterBytes);
    const std::uint8_t* tail = source->fetch(size - tail_size, tail_size, scratch);
    const Footer footer = parse_footer(tail, tail_size, size);
    Buffer manifest_scratch;
    const std::uint8_t* manifest =
        source->fetch(footer.manifest_offset, footer.manifest_size, manifest_scratch);
    ArchiveInfo info = parse_manifest(manifest, footer.manifest_size, footer);

    // ReaderCore creates one serial-path Engine per field eagerly, so an
    // archive whose backend is not registered fails open(), not the first
    // read.
    auto core = detail::ReaderCore::create(std::move(info));
    if (!core.ok()) return core.status();
    return ArchiveFileReader(std::move(source), std::move(core).value());
  } catch (...) {
    return status_from_current_exception();
  }
}

bool ArchiveFileReader::mapped() const noexcept { return source_->mapped(); }

const detail::ChunkSource& ArchiveFileReader::chunk_source() const noexcept {
  return *source_;
}

Shape ArchiveFileReader::chunk_shape(std::size_t i) const {
  return core_.shape_of_chunk(std::size_t{0}, i);
}

Shape ArchiveFileReader::chunk_shape(const std::string& field, std::size_t i) const {
  return core_.shape_of_chunk(field, i);
}

Result<NdArray> ArchiveFileReader::read_chunk(std::size_t i) noexcept {
  return core_.read_chunk(*source_, std::size_t{0}, i);
}

Result<NdArray> ArchiveFileReader::read_chunk(const std::string& field,
                                              std::size_t i) noexcept {
  return core_.read_chunk(*source_, field, i);
}

Result<NdArray> ArchiveFileReader::read_range(std::size_t first, std::size_t count,
                                              unsigned threads) noexcept {
  return core_.read_range(*source_, std::size_t{0}, first, count, threads);
}

Result<NdArray> ArchiveFileReader::read_range(const std::string& field,
                                              std::size_t first, std::size_t count,
                                              unsigned threads) noexcept {
  return core_.read_range(*source_, field, first, count, threads);
}

Result<NdArray> ArchiveFileReader::read_all(unsigned threads) noexcept {
  return core_.read_all(*source_, std::size_t{0}, threads);
}

Result<NdArray> ArchiveFileReader::read_all(const std::string& field,
                                            unsigned threads) noexcept {
  return core_.read_all(*source_, field, threads);
}

}  // namespace fraz::archive
