#include "archive/archive_file.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <limits>
#include <mutex>

#include "archive/pipeline.hpp"
#include "util/error.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define FRAZ_ARCHIVE_HAS_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define FRAZ_ARCHIVE_HAS_MMAP 0
#endif

namespace fraz::archive {

namespace detail {

namespace {

std::string errno_message(const std::string& what, const std::string& path) {
  return what + " '" + path + "': " + std::strerror(errno);
}

#if !FRAZ_ARCHIVE_HAS_MMAP
/// 64-bit-clean positioned seek: std::fseek takes a long, which is 32 bits
/// on some platforms (Windows) — exactly the ones stuck on the FILE* path —
/// and archives larger than RAM routinely exceed 2 GiB.
int seek_to(std::FILE* file, std::size_t offset) {
  if (offset > static_cast<std::size_t>(std::numeric_limits<long>::max())) return -1;
  return std::fseek(file, static_cast<long>(offset), SEEK_SET);
}

/// 64-bit-clean end-of-file position; negative on failure.
std::int64_t size_of(std::FILE* file) {
  if (std::fseek(file, 0, SEEK_END) != 0) return -1;
  return static_cast<std::int64_t>(std::ftell(file));
}
#endif

}  // namespace

/// Positioned-read source over an archive file: an mmap'd view where the
/// platform provides one; the buffered fallback uses pread on POSIX —
/// per-call offsets on a shared descriptor, no shared file position and no
/// lock, so cold reads from parallel decode workers genuinely overlap.
/// Only the portable non-POSIX fallback still serializes fseek+fread on a
/// FILE* behind a mutex.
class FileSource final : public ChunkSource {
public:
  static std::unique_ptr<FileSource> open(const std::string& path, FileReadMode mode) {
#if FRAZ_ARCHIVE_HAS_MMAP
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) throw IoError(errno_message("archive: cannot open", path));
    struct stat st {};
    if (::fstat(fd, &st) != 0 || st.st_size < 0) {
      ::close(fd);
      throw IoError(errno_message("archive: cannot stat", path));
    }
    const auto size = static_cast<std::size_t>(st.st_size);
    if (size == 0) {
      ::close(fd);
      throw CorruptStream("archive: '" + path + "' is empty");
    }
    if (mode != FileReadMode::kBuffered) {
      void* map = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
      ::close(fd);  // the mapping keeps the file referenced
      if (map == MAP_FAILED) throw IoError(errno_message("archive: cannot mmap", path));
      return std::unique_ptr<FileSource>(new FileSource(map, size));
    }
    // Buffered mode keeps the descriptor: pread carries its own offset, so
    // concurrent fetches need no coordination at all.
    return std::unique_ptr<FileSource>(new FileSource(fd, size));
#else
    if (mode == FileReadMode::kMmap)
      throw Unsupported("archive: mmap is not available on this platform");
    std::FILE* file = std::fopen(path.c_str(), "rb");
    if (!file) throw IoError(errno_message("archive: cannot open", path));
    const std::int64_t end = size_of(file);
    if (end < 0) {
      std::fclose(file);
      throw IoError(errno_message("archive: cannot measure", path));
    }
    if (end == 0) {
      std::fclose(file);
      throw CorruptStream("archive: '" + path + "' is empty");
    }
    return std::unique_ptr<FileSource>(new FileSource(file, static_cast<std::size_t>(end)));
#endif
  }

  ~FileSource() override {
#if FRAZ_ARCHIVE_HAS_MMAP
    if (map_) ::munmap(map_, size_);
    if (fd_ >= 0) ::close(fd_);
#else
    if (file_) std::fclose(file_);
#endif
  }

  FileSource(const FileSource&) = delete;
  FileSource& operator=(const FileSource&) = delete;

  std::size_t size() const noexcept { return size_; }
  bool mapped() const noexcept { return map_ != nullptr; }

  const std::uint8_t* fetch(std::size_t offset, std::size_t size,
                            Buffer& scratch) const override {
    if (offset > size_ || size > size_ - offset)
      throw CorruptStream("archive: read beyond the end of the archive");
    if (map_) return static_cast<const std::uint8_t*>(map_) + offset;
    scratch.resize(size);
#if FRAZ_ARCHIVE_HAS_MMAP
    // Positioned reads on the shared descriptor: each call names its own
    // offset, so parallel workers' cold fetches overlap instead of queueing
    // on one file position.  Loop: pread may return short on signals.
    std::size_t got = 0;
    while (got < size) {
      const ::ssize_t n = ::pread(fd_, scratch.data() + got, size - got,
                                  static_cast<off_t>(offset + got));
      if (n < 0) {
        if (errno == EINTR) continue;
        throw IoError("archive: pread failed: " + std::string(std::strerror(errno)));
      }
      if (n == 0) throw IoError("archive: short read");
      got += static_cast<std::size_t>(n);
    }
#else
    std::lock_guard lock(io_mutex_);
    if (seek_to(file_, offset) != 0)
      throw IoError("archive: seek failed: " + std::string(std::strerror(errno)));
    if (std::fread(scratch.data(), 1, size, file_) != size)
      throw IoError("archive: short read");
#endif
    return scratch.data();
  }

private:
  FileSource(void* map, std::size_t size) : map_(map), size_(size) {}
#if FRAZ_ARCHIVE_HAS_MMAP
  FileSource(int fd, std::size_t size) : size_(size), fd_(fd) {}
#else
  FileSource(std::FILE* file, std::size_t size) : size_(size), file_(file) {}
#endif

  // One representation per platform: POSIX serves buffered fetches through
  // pread on fd_; only the portable fallback carries a FILE* and the mutex
  // that serializes its shared file position.
  void* map_ = nullptr;
  std::size_t size_ = 0;
#if FRAZ_ARCHIVE_HAS_MMAP
  int fd_ = -1;
#else
  std::FILE* file_ = nullptr;
  mutable std::mutex io_mutex_;
#endif
};

namespace {

/// Append-only sink over a FILE* (the streaming write transport).
class FileSink final : public ByteSink {
public:
  explicit FileSink(std::FILE* file) noexcept : file_(file) {}

  Status append(const std::uint8_t* data, std::size_t size) noexcept override {
    if (size != 0 && std::fwrite(data, 1, size, file_) != size)
      return Status::io_error("archive: write failed: " +
                              std::string(std::strerror(errno)));
    written_ += size;
    return Status();
  }

  std::size_t bytes_written() const noexcept override { return written_; }

private:
  std::FILE* file_;
  std::size_t written_ = 0;
};

}  // namespace

}  // namespace detail

// ------------------------------------------------------------------- writer

ArchiveFileWriter::ArchiveFileWriter(ArchiveWriteConfig config)
    : config_(std::move(config)), state_(config_.engine) {
  const Status s = detail::validate_write_config(config_);
  if (!s.ok()) throw_status(s);
}

Result<ArchiveFileWriter> ArchiveFileWriter::create(ArchiveWriteConfig config) noexcept {
  try {
    return ArchiveFileWriter(std::move(config));
  } catch (...) {
    return status_from_current_exception();
  }
}

Result<ArchiveWriteResult> ArchiveFileWriter::write(const std::string& path,
                                                    const ArrayView& data) noexcept {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (!file)
    return Status::io_error(detail::errno_message("archive: cannot open", path));
  detail::FileSink sink(file);
  Result<ArchiveWriteResult> result = detail::write_archive(config_, state_, data, sink);
  const bool flushed = std::fflush(file) == 0;
  const bool closed = std::fclose(file) == 0;
  if (result.ok() && !(flushed && closed))
    result = Status::io_error(detail::errno_message("archive: cannot finish", path));
  // Never leave a partial archive behind: its footer chain would fail open()
  // anyway, and a campaign retries by path.
  if (!result.ok()) std::remove(path.c_str());
  return result;
}

// ------------------------------------------------------------------- reader

ArchiveFileReader::ArchiveFileReader(std::unique_ptr<detail::FileSource> source,
                                     ArchiveInfo info, Engine engine)
    : source_(std::move(source)), info_(std::move(info)), engine_(std::move(engine)) {}

ArchiveFileReader::ArchiveFileReader(ArchiveFileReader&&) noexcept = default;
ArchiveFileReader& ArchiveFileReader::operator=(ArchiveFileReader&&) noexcept = default;
ArchiveFileReader::~ArchiveFileReader() = default;

Result<ArchiveFileReader> ArchiveFileReader::open(const std::string& path,
                                                  FileReadMode mode) noexcept {
  try {
    std::unique_ptr<detail::FileSource> source = detail::FileSource::open(path, mode);
    const std::size_t size = source->size();

    // Validate only the trust anchors up front: footer, then manifest.
    Buffer scratch;
    const std::size_t tail_size = std::min(size, kFooterBytes);
    const std::uint8_t* tail = source->fetch(size - tail_size, tail_size, scratch);
    const Footer footer = parse_footer(tail, tail_size, size);
    Buffer manifest_scratch;
    const std::uint8_t* manifest =
        source->fetch(footer.manifest_offset, footer.manifest_size, manifest_scratch);
    ArchiveInfo info = parse_manifest(manifest, footer.manifest_size, footer);

    EngineConfig engine_config;
    engine_config.compressor = info.compressor;
    auto engine = Engine::create(std::move(engine_config));
    if (!engine.ok()) return engine.status();
    return ArchiveFileReader(std::move(source), std::move(info),
                             std::move(engine).value());
  } catch (...) {
    return status_from_current_exception();
  }
}

bool ArchiveFileReader::mapped() const noexcept { return source_->mapped(); }

Shape ArchiveFileReader::chunk_shape(std::size_t i) const {
  return detail::chunk_shape(info_, i);
}

Result<NdArray> ArchiveFileReader::read_chunk(std::size_t i) noexcept {
  try {
    if (i >= info_.chunk_count)
      return Status::invalid_argument("archive: chunk index out of range");
    return detail::decode_chunk(engine_, *source_, info_, i, scratch_);
  } catch (...) {
    return status_from_current_exception();
  }
}

Result<NdArray> ArchiveFileReader::read_range(std::size_t first, std::size_t count,
                                              unsigned threads) noexcept {
  try {
    const std::size_t n0 = info_.shape[0];
    if (count == 0 || first >= n0 || count > n0 - first)
      return Status::invalid_argument("archive: plane range out of bounds");
    Shape out_shape = info_.shape;
    out_shape[0] = count;
    NdArray out(info_.dtype, std::move(out_shape));
    const Status s = detail::read_planes(*source_, info_, engine_, scratch_, first, count,
                                         threads, out);
    if (!s.ok()) return s;
    return out;
  } catch (...) {
    return status_from_current_exception();
  }
}

Result<NdArray> ArchiveFileReader::read_all(unsigned threads) noexcept {
  return read_range(0, info_.shape[0], threads);
}

}  // namespace fraz::archive
