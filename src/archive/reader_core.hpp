#ifndef FRAZ_ARCHIVE_READER_CORE_HPP
#define FRAZ_ARCHIVE_READER_CORE_HPP

/// \file reader_core.hpp
/// The shared decode core of `fraz::archive`: the ChunkSource positioned-read
/// abstraction, the chunk decode/validate helpers, and ReaderCore — the one
/// per-field dispatch (field lookup, chunk/range/whole-field reads) that
/// every reader fronts.
///
/// Before this header the in-memory and file-backed readers each carried
/// their own copy of the field_index + read_* dispatch block (~60 lines
/// each); ReaderCore is that block extracted over (info, engines, source) so
/// ArchiveReader, ArchiveFileReader, and the serve subsystem all run the
/// same decode path.  ReaderCore is the *serial* path: it owns one Engine
/// per field plus one fetch scratch and is not thread-safe (wrap access, or
/// use serve::ReaderPool which checks engines out per decode).

#include <cstdint>
#include <string>
#include <vector>

#include "archive/format.hpp"
#include "engine/engine.hpp"
#include "ndarray/ndarray.hpp"
#include "util/buffer.hpp"
#include "util/status.hpp"

namespace fraz::archive::detail {

/// Positioned-read abstraction of one archive's bytes.
class ChunkSource {
public:
  virtual ~ChunkSource() = default;
  /// Return a pointer to \p size bytes at absolute offset \p offset.
  /// Zero-copy transports ignore \p scratch and return into their own
  /// storage; buffered transports fill \p scratch and return its data.  The
  /// pointer stays valid until the next fetch through the same scratch.
  /// Throws CorruptStream (range) or IoError (transport failure).
  virtual const std::uint8_t* fetch(std::size_t offset, std::size_t size,
                                    Buffer& scratch) const = 0;
};

/// Zero-copy source over bytes already in memory.
class MemorySource final : public ChunkSource {
public:
  MemorySource(const std::uint8_t* data, std::size_t size) noexcept
      : data_(data), size_(size) {}
  const std::uint8_t* fetch(std::size_t offset, std::size_t size,
                            Buffer& scratch) const override;

private:
  const std::uint8_t* data_;
  std::size_t size_;
};

/// Shape of chunk \p i of \p field ({extent_i, rest...}; last chunk short).
Shape chunk_shape(const FieldInfo& field, std::size_t i);

/// Validate chunk \p i's CRC and decode it (throwing helper shared by every
/// reader).  \p chunk_region is the archive's chunk-region base offset;
/// \p scratch backs the fetch for buffered transports.
NdArray decode_chunk(Engine& engine, const ChunkSource& source, const FieldInfo& field,
                     std::size_t chunk_region, std::size_t i, Buffer& scratch);

/// Decode the slowest-axis planes [first, first + count) of \p field into
/// \p out (whose shape must already be {count, rest...}), touching and
/// validating only the chunks that cover the range.  \p threads > 1 decodes
/// the touched chunks in parallel, one Engine per worker, each writing its
/// disjoint plane window of \p out; \p serial_engine serves the
/// single-threaded path.  Backs both read_all (first = 0, count = n0) and
/// read_range for every field.
Status read_planes(const ChunkSource& source, const FieldInfo& field,
                   std::size_t chunk_region, Engine& serial_engine,
                   Buffer& serial_scratch, std::size_t first, std::size_t count,
                   unsigned threads, NdArray& out) noexcept;

/// The per-field read dispatch every reader shares: parsed metadata, one
/// serial decode Engine per field, and the name -> index / chunk / range /
/// whole-field entry points over a caller-supplied ChunkSource.  The
/// transport (raw pointer, mmap, positioned reads) stays with the owning
/// reader; ReaderCore only ever sees fetches.
class ReaderCore {
public:
  ReaderCore() = default;  ///< disengaged (moved-from readers)

  /// Build the per-field engines for \p info's backends.
  static Result<ReaderCore> create(ArchiveInfo info) noexcept;

  const ArchiveInfo& info() const noexcept { return info_; }
  const std::vector<FieldInfo>& fields() const noexcept { return info_.fields; }

  /// Index of the field named \p name, or InvalidArgument.
  Result<std::size_t> field_index(const std::string& name) const noexcept;

  /// Shape of chunk \p i of a field; throws on unknown names / bad indices
  /// (mirrors the readers' throwing chunk_shape contract).
  Shape shape_of_chunk(std::size_t field, std::size_t i) const;
  Shape shape_of_chunk(const std::string& field, std::size_t i) const;

  /// Decompress exactly chunk \p i of a field through \p source.
  Result<NdArray> read_chunk(const ChunkSource& source, std::size_t field,
                             std::size_t i) noexcept;
  Result<NdArray> read_chunk(const ChunkSource& source, const std::string& field,
                             std::size_t i) noexcept;

  /// Decompress the slowest-axis plane range [first, first + count).
  Result<NdArray> read_range(const ChunkSource& source, std::size_t field,
                             std::size_t first, std::size_t count,
                             unsigned threads) noexcept;
  Result<NdArray> read_range(const ChunkSource& source, const std::string& field,
                             std::size_t first, std::size_t count,
                             unsigned threads) noexcept;

  /// Decompress a whole field (read_range over every plane).
  Result<NdArray> read_all(const ChunkSource& source, std::size_t field,
                           unsigned threads) noexcept;
  Result<NdArray> read_all(const ChunkSource& source, const std::string& field,
                           unsigned threads) noexcept;

private:
  explicit ReaderCore(ArchiveInfo info, std::vector<Engine> engines)
      : info_(std::move(info)), engines_(std::move(engines)) {}

  ArchiveInfo info_;
  std::vector<Engine> engines_;  ///< serial decode path, one per field
  Buffer scratch_;               ///< fetch scratch for the serial path
};

}  // namespace fraz::archive::detail

#endif  // FRAZ_ARCHIVE_READER_CORE_HPP
