#ifndef FRAZ_ARCHIVE_ARCHIVE_FILE_HPP
#define FRAZ_ARCHIVE_ARCHIVE_FILE_HPP

/// \file archive_file.hpp
/// The streaming file transport of `fraz::archive`: archives that exceed RAM.
///
/// `ArchiveFileWriter` runs the same chunk pipeline as the in-memory
/// `ArchiveWriter` but appends each chunk to the file the moment it is the
/// next one in index order, so the writer's peak memory is
/// O(largest chunk × workers) — at most workers + 1 chunk payloads are ever
/// held (the pipeline's bounded reorder window) — never O(archive).  The v2
/// chunks-first layout (see format.hpp) is what makes this append-only: the
/// manifest and footer follow the chunk region, so nothing is back-patched.
/// File-backed and in-memory packs of the same data are byte-identical at
/// any worker count.
///
/// `ArchiveFileReader` opens a file, reads and validates only the footer and
/// manifest, and serves `read_chunk` / `read_range` / `read_all` through
/// positioned reads of exactly the chunks a request touches: mmap where
/// available (zero-copy, the default on POSIX), with a portable buffered
/// fread fallback (positioned reads serialized on the file handle; decode
/// still runs in parallel).  Peak reader memory is O(touched output +
/// largest chunk × workers).

#include <cstdint>
#include <memory>
#include <string>

#include "archive/archive.hpp"
#include "util/buffer.hpp"
#include "util/status.hpp"

namespace fraz::archive {

namespace detail {
class FileSource;
}  // namespace detail

/// Streams a complete archive to a file as its chunks finish compressing.
/// Carries the same Algorithm-3 warm-start state across write() calls as
/// ArchiveWriter, so a time-series campaign pays ratio training once.
class ArchiveFileWriter {
public:
  /// Non-throwing factory; unknown backends / invalid configs come back as
  /// a Status.
  static Result<ArchiveFileWriter> create(ArchiveWriteConfig config) noexcept;

  /// Throwing convenience constructor (setup code, tests).
  explicit ArchiveFileWriter(ArchiveWriteConfig config);

  const ArchiveWriteConfig& config() const noexcept { return config_; }

  /// Compress \p data into a complete archive at \p path (created or
  /// truncated).  Format v2 streams chunk-by-chunk; format v1 buffers the
  /// chunk region in memory first (its manifest precedes the chunks on the
  /// wire).  On failure the partial file is removed.
  Result<ArchiveWriteResult> write(const std::string& path,
                                   const ArrayView& data) noexcept;

private:
  ArchiveWriteConfig config_;
  WriterWarmState state_;  ///< persistent warm bounds + probe cache
};

/// How ArchiveFileReader accesses the file's bytes.
enum class FileReadMode {
  kAuto,      ///< mmap where the platform supports it, else buffered reads
  kMmap,      ///< require mmap; open() fails where unavailable
  kBuffered,  ///< portable positioned fread (also exercised by tests on POSIX)
};

/// Random-access reader over an archive file.  open() reads and validates
/// only the footer and manifest; chunk payloads are fetched and validated by
/// exactly the reads that touch them.  Reads both format versions.
class ArchiveFileReader {
public:
  static Result<ArchiveFileReader> open(const std::string& path,
                                        FileReadMode mode = FileReadMode::kAuto) noexcept;

  ArchiveFileReader(ArchiveFileReader&&) noexcept;
  ArchiveFileReader& operator=(ArchiveFileReader&&) noexcept;
  ~ArchiveFileReader();

  const ArchiveInfo& info() const noexcept { return info_; }

  /// True when this reader serves fetches through an mmap'd view.
  bool mapped() const noexcept;

  /// Shape of chunk \p i ({extent_i, rest...}; the last chunk may be short).
  Shape chunk_shape(std::size_t i) const;

  /// Decompress the whole archive; \p threads as in ArchiveReader.
  Result<NdArray> read_all(unsigned threads = 1) noexcept;

  /// Decompress exactly chunk \p i, fetching and validating only its bytes.
  Result<NdArray> read_chunk(std::size_t i) noexcept;

  /// Decompress the slowest-axis plane range [first, first + count); wide
  /// ranges decode touched chunks in parallel when \p threads allows.
  Result<NdArray> read_range(std::size_t first, std::size_t count,
                             unsigned threads = 1) noexcept;

private:
  ArchiveFileReader(std::unique_ptr<detail::FileSource> source, ArchiveInfo info,
                    Engine engine);

  std::unique_ptr<detail::FileSource> source_;
  ArchiveInfo info_;
  Engine engine_;   ///< serial decode path; workers clone their own
  Buffer scratch_;  ///< fetch scratch for the serial path
};

}  // namespace fraz::archive

#endif  // FRAZ_ARCHIVE_ARCHIVE_FILE_HPP
