#ifndef FRAZ_ARCHIVE_ARCHIVE_FILE_HPP
#define FRAZ_ARCHIVE_ARCHIVE_FILE_HPP

/// \file archive_file.hpp
/// The streaming file transport of `fraz::archive`: archives that exceed RAM.
///
/// `ArchiveFileWriter` runs the same push-based assembler as the in-memory
/// `ArchiveWriter` and appends each chunk to the file the moment it is the
/// next one in index order.  Output memory is O(largest chunk × workers) —
/// at most workers + 1 chunk payloads are ever held (the pipeline's bounded
/// reorder window) — and with the FieldSession API the *input* side is just
/// as streamed: planes pushed as they arrive, at most workers + 2 chunk rows
/// resident, never O(field).  The v2/v3 chunks-first layouts (see
/// format.hpp) are what make this append-only: the manifest and footer
/// follow the chunk region, so nothing is back-patched.  File-backed and
/// in-memory packs of the same data are byte-identical at any worker count.
///
/// `ArchiveFileReader` opens a file, reads and validates only the footer and
/// manifest, and serves `read_chunk` / `read_range` / `read_all` (optionally
/// per named field) through positioned reads of exactly the chunks a request
/// touches: mmap where available (zero-copy, the default on POSIX), with a
/// portable buffered fread fallback.  Peak reader memory is O(touched output
/// + largest chunk × workers).

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "archive/archive.hpp"
#include "archive/pipeline.hpp"
#include "util/buffer.hpp"
#include "util/status.hpp"

namespace fraz::archive {

namespace detail {

class FileSource;

/// Append-only sink over a FILE* (the streaming write transport).  Failures
/// capture errno at the failing call — fwrite for writes, fflush for the
/// final flush — so the returned Status carries the OS error detail instead
/// of whatever a later library call left behind.
class FileSink final : public ByteSink {
public:
  explicit FileSink(std::FILE* file) noexcept : file_(file) {}

  Status append(const std::uint8_t* data, std::size_t size) noexcept override;

  std::size_t bytes_written() const noexcept override { return written_; }

private:
  std::FILE* file_;
  std::size_t written_ = 0;
};

}  // namespace detail

/// Streams a complete archive to a file as its chunks finish compressing.
/// Carries the same Algorithm-3 warm-start state across write() calls and
/// field sessions as ArchiveWriter, so a time-series campaign pays ratio
/// training once per field.
class ArchiveFileWriter {
public:
  /// Non-throwing factory; unknown backends / invalid configs come back as
  /// a Status.
  static Result<ArchiveFileWriter> create(ArchiveWriteConfig config) noexcept;

  /// Throwing convenience constructor (setup code, tests).
  explicit ArchiveFileWriter(ArchiveWriteConfig config);

  ArchiveFileWriter(ArchiveFileWriter&&) noexcept;
  ArchiveFileWriter& operator=(ArchiveFileWriter&&) noexcept;
  ~ArchiveFileWriter();

  const ArchiveWriteConfig& config() const noexcept { return config_; }

  /// Compress \p data into a complete single-field archive at \p path
  /// (created or truncated) — the compatibility wrapper over one field
  /// session.  Format v2 streams chunk-by-chunk; format v1 buffers the
  /// chunk region in memory first (its manifest precedes the chunks on the
  /// wire).  On failure the partial file is removed.  Fails while a begin()
  /// build is active.
  Result<ArchiveWriteResult> write(const std::string& path,
                                   const ArrayView& data) noexcept;

  /// Start a streaming multi-field build at \p path (created or truncated).
  /// \p version defaults to the v3 multi-field layout; v2/v1 are accepted
  /// for single-field builds.  Fails if a build is already in progress.
  Status begin(const std::string& path,
               std::uint8_t version = kFormatVersionMultiField) noexcept;

  /// Declare the next field of the current build and get its ingestion
  /// session; push slabs as they arrive, then close().  One field is open
  /// at a time.
  Result<FieldSession> open_field(const std::string& name, const FieldDesc& desc) noexcept;

  /// Seal the build: manifest + footer, flush, close.  On an assembler
  /// failure (e.g. a field still open) the build stays active — close the
  /// field and retry, or cancel(); on a filesystem failure the partial file
  /// is removed (its footer chain would fail open() anyway).
  Result<ArchiveWriteResult> finish() noexcept;

  /// Abandon an in-progress build: close and remove the partial file.
  /// No-op when no build is active.
  void cancel() noexcept;

  /// The writer's persistent per-(field, chunk) warm-bound store — the state
  /// worth saving between tuning-campaign runs (see BoundStore::save/load).
  const BoundStorePtr& bound_store() const noexcept { return state_->bounds; }

private:
  struct Build;

  ArchiveWriteConfig config_;
  /// Heap-allocated so sessions and assemblers can hold stable references
  /// across writer moves.
  std::unique_ptr<WriterWarmState> state_;
  std::unique_ptr<Build> build_;  ///< active build only
};

/// How ArchiveFileReader accesses the file's bytes.
enum class FileReadMode {
  kAuto,      ///< mmap where the platform supports it, else buffered reads
  kMmap,      ///< require mmap; open() fails where unavailable
  kBuffered,  ///< portable positioned fread (also exercised by tests on POSIX)
};

/// Random-access reader over an archive file.  open() reads and validates
/// only the footer and manifest; chunk payloads are fetched and validated by
/// exactly the reads that touch them.  Reads all format versions; the
/// unnamed read methods serve fields()[0] (the only field of a v1/v2
/// archive).
class ArchiveFileReader {
public:
  static Result<ArchiveFileReader> open(const std::string& path,
                                        FileReadMode mode = FileReadMode::kAuto) noexcept;

  ArchiveFileReader(ArchiveFileReader&&) noexcept;
  ArchiveFileReader& operator=(ArchiveFileReader&&) noexcept;
  ~ArchiveFileReader();

  const ArchiveInfo& info() const noexcept { return core_.info(); }

  /// Field table of the archive (one synthesized entry for v1/v2).
  const std::vector<FieldInfo>& fields() const noexcept { return core_.fields(); }

  /// True when this reader serves fetches through an mmap'd view.
  bool mapped() const noexcept;

  /// The reader's positioned-read source (mmap'd view or positioned reads).
  /// Thread-safe for concurrent fetches; this is what lets serve::ReaderPool
  /// decode chunks from many threads over one open file.
  const detail::ChunkSource& chunk_source() const noexcept;

  /// Shape of chunk \p i ({extent_i, rest...}; the last chunk may be short).
  Shape chunk_shape(std::size_t i) const;
  Shape chunk_shape(const std::string& field, std::size_t i) const;

  /// Decompress a whole field; \p threads as in ArchiveReader.
  Result<NdArray> read_all(unsigned threads = 1) noexcept;
  Result<NdArray> read_all(const std::string& field, unsigned threads = 1) noexcept;

  /// Decompress exactly chunk \p i of a field, fetching and validating only
  /// its bytes.
  Result<NdArray> read_chunk(std::size_t i) noexcept;
  Result<NdArray> read_chunk(const std::string& field, std::size_t i) noexcept;

  /// Decompress the slowest-axis plane range [first, first + count) of a
  /// field; wide ranges decode touched chunks in parallel when \p threads
  /// allows.
  Result<NdArray> read_range(std::size_t first, std::size_t count,
                             unsigned threads = 1) noexcept;
  Result<NdArray> read_range(const std::string& field, std::size_t first,
                             std::size_t count, unsigned threads = 1) noexcept;

private:
  ArchiveFileReader(std::unique_ptr<detail::FileSource> source,
                    detail::ReaderCore core) noexcept;

  std::unique_ptr<detail::FileSource> source_;  ///< mmap or positioned reads
  detail::ReaderCore core_;                     ///< shared per-field read dispatch
};

}  // namespace fraz::archive

#endif  // FRAZ_ARCHIVE_ARCHIVE_FILE_HPP
