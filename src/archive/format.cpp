#include "archive/format.hpp"

#include "codec/checksum.hpp"
#include "codec/varint.hpp"
#include "util/error.hpp"

namespace fraz::archive {

namespace {

constexpr std::uint32_t kArchiveMagic = 0x417a5246u;   // "FRzA" little-endian
constexpr std::uint32_t kManifestMagic = 0x4d7a5246u;  // "FRzM" little-endian
constexpr std::uint32_t kFooterMagicV1 = 0x457a5246u;  // "FRzE" little-endian
constexpr std::uint32_t kFooterMagicV2 = 0x327a5246u;  // "FRz2" little-endian

void encode_chunk_index(const std::vector<ChunkEntry>& chunks, Buffer& out) {
  put_varint(out, chunks.size());
  for (const ChunkEntry& entry : chunks) {
    put_varint(out, entry.offset);
    put_varint(out, entry.size);
    put_f64(out, entry.error_bound);
    put_u32(out, entry.crc);
  }
}

/// Parse the per-chunk index shared by both manifest layouts, validating
/// contiguity against the footer's chunk-region size.
void parse_chunk_index(const std::uint8_t* p, std::size_t size, std::size_t& pos,
                       const Footer& footer, ArchiveInfo& info) {
  info.chunk_count = get_varint(p, size, pos);
  const std::size_t n0 = info.shape[0];
  if (info.chunk_extent == 0 || info.chunk_extent > n0)
    throw CorruptStream("archive: bad chunk extent");
  if (info.chunk_count != (n0 + info.chunk_extent - 1) / info.chunk_extent)
    throw CorruptStream("archive: chunk count does not match shape");
  if (info.raw_bytes != shape_elements(info.shape) * dtype_size(info.dtype))
    throw CorruptStream("archive: raw size does not match shape");
  std::size_t running = 0;
  info.chunks.reserve(info.chunk_count);
  for (std::size_t i = 0; i < info.chunk_count; ++i) {
    ChunkEntry entry;
    entry.offset = get_varint(p, size, pos);
    entry.size = get_varint(p, size, pos);
    entry.error_bound = get_f64(p, size, pos);
    entry.crc = get_u32(p, size, pos);
    if (entry.offset != running || entry.size == 0)
      throw CorruptStream("archive: chunk index is not contiguous");
    running += entry.size;
    info.chunks.push_back(entry);
  }
  if (running != footer.region_bytes)
    throw CorruptStream("archive: chunk region size mismatch");
}

bool try_parse_footer_v2(const std::uint8_t* tail, std::size_t tail_size,
                         std::uint64_t total_size, Footer& footer) {
  if (tail_size < kFooterBytes) return false;
  std::size_t pos = tail_size - kFooterBytes;
  const std::size_t base = pos;
  if (get_u32(tail, tail_size, pos) != kFooterMagicV2) return false;
  const std::uint64_t manifest_offset = get_u64(tail, tail_size, pos);
  const std::uint64_t manifest_size = get_u64(tail, tail_size, pos);
  const std::uint64_t raw_bytes = get_u64(tail, tail_size, pos);
  const std::uint64_t archive_bytes = get_u64(tail, tail_size, pos);
  const double achieved_ratio = get_f64(tail, tail_size, pos);
  const std::uint32_t stored_crc = get_u32(tail, tail_size, pos);
  if (crc32(tail + base, kFooterBytes - 4) != stored_crc) return false;
  if (archive_bytes != total_size) throw CorruptStream("archive: size mismatch");
  if (manifest_offset > total_size || manifest_size > total_size - manifest_offset ||
      manifest_offset + manifest_size != total_size - kFooterBytes)
    throw CorruptStream("archive: manifest location out of range");
  footer.version = 2;
  footer.footer_bytes = kFooterBytes;
  footer.manifest_offset = static_cast<std::size_t>(manifest_offset);
  footer.manifest_size = static_cast<std::size_t>(manifest_size);
  footer.chunk_region = 0;
  footer.region_bytes = static_cast<std::size_t>(manifest_offset);
  footer.raw_bytes = raw_bytes;
  footer.archive_bytes = archive_bytes;
  footer.achieved_ratio = achieved_ratio;
  return true;
}

bool try_parse_footer_v1(const std::uint8_t* tail, std::size_t tail_size,
                         std::uint64_t total_size, Footer& footer) {
  if (tail_size < kFooterBytesV1) return false;
  std::size_t pos = tail_size - kFooterBytesV1;
  const std::size_t base = pos;
  if (get_u32(tail, tail_size, pos) != kFooterMagicV1) return false;
  const std::uint64_t manifest_size = get_u64(tail, tail_size, pos);
  const std::uint64_t raw_bytes = get_u64(tail, tail_size, pos);
  const std::uint64_t archive_bytes = get_u64(tail, tail_size, pos);
  const double achieved_ratio = get_f64(tail, tail_size, pos);
  const std::uint32_t stored_crc = get_u32(tail, tail_size, pos);
  if (crc32(tail + base, kFooterBytesV1 - 4) != stored_crc) return false;
  if (archive_bytes != total_size) throw CorruptStream("archive: size mismatch");
  if (manifest_size < 12 || manifest_size > total_size - kFooterBytesV1)
    throw CorruptStream("archive: manifest size out of range");
  footer.version = 1;
  footer.footer_bytes = kFooterBytesV1;
  footer.manifest_offset = 0;
  footer.manifest_size = static_cast<std::size_t>(manifest_size);
  footer.chunk_region = static_cast<std::size_t>(manifest_size);
  footer.region_bytes =
      static_cast<std::size_t>(total_size - manifest_size - kFooterBytesV1);
  footer.raw_bytes = raw_bytes;
  footer.archive_bytes = archive_bytes;
  footer.achieved_ratio = achieved_ratio;
  return true;
}

}  // namespace

std::string backend_name(CompressorId id) {
  switch (id) {
    case CompressorId::kSz: return "sz";
    case CompressorId::kZfp: return "zfp";
    case CompressorId::kMgard: return "mgard";
    case CompressorId::kTruncate: return "truncate";
  }
  throw Unsupported("archive: unknown compressor id");
}

CompressorId backend_id(const std::string& name) {
  if (name == "sz") return CompressorId::kSz;
  if (name == "zfp") return CompressorId::kZfp;
  if (name == "mgard") return CompressorId::kMgard;
  if (name == "truncate") return CompressorId::kTruncate;
  throw Unsupported("archive: backend '" + name +
                    "' has no container id (format v1 records sz/zfp/mgard/truncate; "
                    "write format v2 to record plugins by name)");
}

void encode_manifest(std::uint8_t version, const std::string& compressor, DType dtype,
                     const Shape& shape, double target_ratio, double epsilon,
                     std::size_t chunk_extent, const std::vector<ChunkEntry>& chunks,
                     Buffer& out) {
  if (version == 1) {
    // Legacy layout: the manifest is a Container frame over the full logical
    // array, so the backend must have a built-in CompressorId.
    Buffer payload;
    put_u32(payload, kArchiveMagic);
    payload.push_back(1);
    put_f64(payload, target_ratio);
    put_f64(payload, epsilon);
    put_varint(payload, chunk_extent);
    encode_chunk_index(chunks, payload);
    seal_container_into(backend_id(compressor), dtype, shape, payload.data(),
                        payload.size(), out);
    return;
  }
  require(version == 2, "archive: unsupported format version");
  out.clear();
  put_u32(out, kManifestMagic);
  out.push_back(2);
  out.push_back(dtype == DType::kFloat32 ? 0 : 1);
  put_varint(out, shape.size());
  for (std::size_t d : shape) put_varint(out, d);
  put_varint(out, compressor.size());
  out.append(compressor.data(), compressor.size());
  put_f64(out, target_ratio);
  put_f64(out, epsilon);
  put_varint(out, chunk_extent);
  encode_chunk_index(chunks, out);
  put_u32(out, crc32(out.data(), out.size()));
}

void encode_footer(std::uint8_t version, std::size_t manifest_offset,
                   std::size_t manifest_size, std::uint64_t raw_bytes,
                   std::uint64_t archive_bytes, double achieved_ratio, Buffer& out) {
  const std::size_t base = out.size();
  if (version == 1) {
    put_u32(out, kFooterMagicV1);
    put_u64(out, manifest_size);
  } else {
    require(version == 2, "archive: unsupported format version");
    put_u32(out, kFooterMagicV2);
    put_u64(out, manifest_offset);
    put_u64(out, manifest_size);
  }
  put_u64(out, raw_bytes);
  put_u64(out, archive_bytes);
  put_f64(out, achieved_ratio);
  put_u32(out, crc32(out.data() + base, out.size() - base));
}

Footer parse_footer(const std::uint8_t* tail, std::size_t tail_size,
                    std::uint64_t total_size) {
  if (total_size < kFooterBytesV1 + 12 || tail_size > total_size)
    throw CorruptStream("archive: too small");
  Footer footer;
  if (try_parse_footer_v2(tail, tail_size, total_size, footer)) return footer;
  if (try_parse_footer_v1(tail, tail_size, total_size, footer)) return footer;
  throw CorruptStream("archive: bad or corrupt footer");
}

ArchiveInfo parse_manifest(const std::uint8_t* manifest, std::size_t size,
                           const Footer& footer) {
  ArchiveInfo info;
  info.raw_bytes = static_cast<std::size_t>(footer.raw_bytes);
  info.archive_bytes = static_cast<std::size_t>(footer.archive_bytes);
  info.achieved_ratio = footer.achieved_ratio;
  info.chunk_region = footer.chunk_region;

  if (footer.version == 1) {
    const Container frame = open_container(manifest, size);
    info.version = 1;
    info.compressor = backend_name(frame.id);
    info.dtype = frame.dtype;
    info.shape = frame.shape;
    const std::uint8_t* p = frame.payload;
    const std::size_t psize = frame.payload_size;
    std::size_t pos = 0;
    if (get_u32(p, psize, pos) != kArchiveMagic)
      throw CorruptStream("archive: bad manifest magic");
    if (pos >= psize) throw CorruptStream("archive: truncated manifest");
    if (p[pos++] != 1) throw CorruptStream("archive: unsupported format version");
    info.target_ratio = get_f64(p, psize, pos);
    info.epsilon = get_f64(p, psize, pos);
    info.chunk_extent = get_varint(p, psize, pos);
    parse_chunk_index(p, psize, pos, footer, info);
    if (pos != psize) throw CorruptStream("archive: trailing manifest bytes");
    return info;
  }

  // v2: self-framed manifest block with its own trailing CRC.
  std::size_t pos = 0;
  if (size < 16) throw CorruptStream("archive: truncated manifest");
  if (get_u32(manifest, size, pos) != kManifestMagic)
    throw CorruptStream("archive: bad manifest magic");
  const std::uint32_t stored_crc = [&] {
    std::size_t p = size - 4;
    return get_u32(manifest, size, p);
  }();
  if (crc32(manifest, size - 4) != stored_crc)
    throw CorruptStream("archive: manifest checksum mismatch");
  info.version = manifest[pos++];
  if (info.version != 2) throw CorruptStream("archive: unsupported format version");
  const std::uint8_t dtype_tag = manifest[pos++];
  if (dtype_tag > 1) throw CorruptStream("archive: bad dtype tag");
  info.dtype = dtype_tag == 0 ? DType::kFloat32 : DType::kFloat64;
  const std::uint64_t ndims = get_varint(manifest, size, pos);
  if (ndims == 0 || ndims > 8) throw CorruptStream("archive: bad rank");
  info.shape.resize(ndims);
  for (auto& d : info.shape) {
    d = get_varint(manifest, size, pos);
    if (d == 0) throw CorruptStream("archive: zero extent");
  }
  const std::uint64_t name_size = get_varint(manifest, size, pos);
  if (name_size == 0 || name_size > 256 || pos + name_size > size)
    throw CorruptStream("archive: bad compressor name");
  info.compressor.assign(reinterpret_cast<const char*>(manifest) + pos,
                         static_cast<std::size_t>(name_size));
  pos += static_cast<std::size_t>(name_size);
  info.target_ratio = get_f64(manifest, size, pos);
  info.epsilon = get_f64(manifest, size, pos);
  info.chunk_extent = get_varint(manifest, size, pos);
  parse_chunk_index(manifest, size, pos, footer, info);
  if (pos + 4 != size) throw CorruptStream("archive: trailing manifest bytes");
  return info;
}

}  // namespace fraz::archive
