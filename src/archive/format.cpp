#include "archive/format.hpp"

#include <limits>

#include "codec/checksum.hpp"
#include "codec/varint.hpp"
#include "util/error.hpp"

namespace fraz::archive {

namespace {

constexpr std::uint32_t kArchiveMagic = 0x417a5246u;   // "FRzA" little-endian
constexpr std::uint32_t kManifestMagic = 0x4d7a5246u;  // "FRzM" little-endian
constexpr std::uint32_t kFooterMagicV1 = 0x457a5246u;  // "FRzE" little-endian
constexpr std::uint32_t kFooterMagicV2 = 0x327a5246u;  // "FRz2" little-endian

void encode_chunk_index(const std::vector<ChunkEntry>& chunks, Buffer& out) {
  put_varint(out, chunks.size());
  for (const ChunkEntry& entry : chunks) {
    put_varint(out, entry.offset);
    put_varint(out, entry.size);
    put_f64(out, entry.error_bound);
    put_u32(out, entry.crc);
  }
}

/// Overflow-checked shape-elements × element-size.  A corrupt manifest may
/// carry extents whose product wraps 64 bits — a wrapped raw_bytes would
/// defeat the footer's raw-size cross-check and undersize reader buffers.
std::size_t checked_raw_bytes(const Shape& shape, DType dtype) {
  std::uint64_t bytes = dtype_size(dtype);
  for (const std::size_t d : shape) {
    if (d == 0) throw CorruptStream("archive: zero extent");
    if (bytes > std::numeric_limits<std::uint64_t>::max() / d)
      throw CorruptStream("archive: field shape overflows");
    bytes *= d;
  }
  if (bytes > std::numeric_limits<std::size_t>::max())
    throw CorruptStream("archive: field shape overflows");
  return static_cast<std::size_t>(bytes);
}

/// Parse one field's chunk index (shared by every manifest layout),
/// validating contiguity from \p running — absolute within the chunk region,
/// so multi-field spans chain through it — geometry against the field, and
/// every entry against \p region_bytes so no chunk can point past the file's
/// chunk region (the tiling invariant holds entry by entry, not just in the
/// final total).
void parse_field_chunk_index(const std::uint8_t* p, std::size_t size, std::size_t& pos,
                             FieldInfo& field, std::size_t& running,
                             std::size_t region_bytes) {
  field.chunk_count = get_varint(p, size, pos);
  const std::size_t n0 = field.shape[0];
  if (field.chunk_extent == 0 || field.chunk_extent > n0)
    throw CorruptStream("archive: bad chunk extent");
  if (field.chunk_count != (n0 + field.chunk_extent - 1) / field.chunk_extent)
    throw CorruptStream("archive: chunk count does not match shape");
  field.raw_bytes = checked_raw_bytes(field.shape, field.dtype);
  field.payload_bytes = 0;
  // A chunk entry is at least 14 encoded bytes (two 1-byte varints, an f64,
  // a u32): a count the remaining manifest cannot possibly hold is corrupt,
  // and rejecting it here keeps the reserve below proportional to the input
  // instead of attacker-chosen.
  if (field.chunk_count > (size - pos) / 14)
    throw CorruptStream("archive: chunk count exceeds manifest size");
  field.chunks.reserve(field.chunk_count);
  for (std::size_t i = 0; i < field.chunk_count; ++i) {
    ChunkEntry entry;
    entry.offset = get_varint(p, size, pos);
    entry.size = get_varint(p, size, pos);
    entry.error_bound = get_f64(p, size, pos);
    entry.crc = get_u32(p, size, pos);
    if (entry.offset != running || entry.size == 0)
      throw CorruptStream("archive: chunk index is not contiguous");
    if (entry.size > region_bytes - running)
      throw CorruptStream("archive: chunk entry past end of chunk region");
    running += entry.size;
    field.payload_bytes += entry.size;
    field.chunks.push_back(entry);
  }
}

/// Mirror fields[0] into the flat single-field members and sanity-check the
/// totals the footer recorded against what the field table implies.
void finalize_fields(ArchiveInfo& info, const Footer& footer, std::size_t running) {
  if (running != footer.region_bytes)
    throw CorruptStream("archive: chunk region size mismatch");
  std::size_t raw_total = 0;
  for (const FieldInfo& field : info.fields) raw_total += field.raw_bytes;
  if (raw_total != footer.raw_bytes)
    throw CorruptStream("archive: raw size does not match the field shapes");
  const FieldInfo& first = info.fields.front();
  info.compressor = first.compressor;
  info.dtype = first.dtype;
  info.shape = first.shape;
  info.chunk_extent = first.chunk_extent;
  info.chunk_count = first.chunk_count;
  info.target_ratio = first.target_ratio;
  info.epsilon = first.epsilon;
  info.chunks = first.chunks;
}

bool try_parse_footer_v2(const std::uint8_t* tail, std::size_t tail_size,
                         std::uint64_t total_size, Footer& footer) {
  if (tail_size < kFooterBytes) return false;
  std::size_t pos = tail_size - kFooterBytes;
  const std::size_t base = pos;
  if (get_u32(tail, tail_size, pos) != kFooterMagicV2) return false;
  const std::uint64_t manifest_offset = get_u64(tail, tail_size, pos);
  const std::uint64_t manifest_size = get_u64(tail, tail_size, pos);
  const std::uint64_t raw_bytes = get_u64(tail, tail_size, pos);
  const std::uint64_t archive_bytes = get_u64(tail, tail_size, pos);
  const double achieved_ratio = get_f64(tail, tail_size, pos);
  const std::uint32_t stored_crc = get_u32(tail, tail_size, pos);
  if (crc32(tail + base, kFooterBytes - 4) != stored_crc) return false;
  if (archive_bytes != total_size) throw CorruptStream("archive: size mismatch");
  if (manifest_offset > total_size || manifest_size > total_size - manifest_offset ||
      manifest_offset + manifest_size != total_size - kFooterBytes)
    throw CorruptStream("archive: manifest location out of range");
  footer.version = 2;
  footer.footer_bytes = kFooterBytes;
  footer.manifest_offset = static_cast<std::size_t>(manifest_offset);
  footer.manifest_size = static_cast<std::size_t>(manifest_size);
  footer.chunk_region = 0;
  footer.region_bytes = static_cast<std::size_t>(manifest_offset);
  footer.raw_bytes = raw_bytes;
  footer.archive_bytes = archive_bytes;
  footer.achieved_ratio = achieved_ratio;
  return true;
}

bool try_parse_footer_v1(const std::uint8_t* tail, std::size_t tail_size,
                         std::uint64_t total_size, Footer& footer) {
  if (tail_size < kFooterBytesV1) return false;
  std::size_t pos = tail_size - kFooterBytesV1;
  const std::size_t base = pos;
  if (get_u32(tail, tail_size, pos) != kFooterMagicV1) return false;
  const std::uint64_t manifest_size = get_u64(tail, tail_size, pos);
  const std::uint64_t raw_bytes = get_u64(tail, tail_size, pos);
  const std::uint64_t archive_bytes = get_u64(tail, tail_size, pos);
  const double achieved_ratio = get_f64(tail, tail_size, pos);
  const std::uint32_t stored_crc = get_u32(tail, tail_size, pos);
  if (crc32(tail + base, kFooterBytesV1 - 4) != stored_crc) return false;
  if (archive_bytes != total_size) throw CorruptStream("archive: size mismatch");
  if (manifest_size < 12 || manifest_size > total_size - kFooterBytesV1)
    throw CorruptStream("archive: manifest size out of range");
  footer.version = 1;
  footer.footer_bytes = kFooterBytesV1;
  footer.manifest_offset = 0;
  footer.manifest_size = static_cast<std::size_t>(manifest_size);
  footer.chunk_region = static_cast<std::size_t>(manifest_size);
  footer.region_bytes =
      static_cast<std::size_t>(total_size - manifest_size - kFooterBytesV1);
  footer.raw_bytes = raw_bytes;
  footer.archive_bytes = archive_bytes;
  footer.achieved_ratio = achieved_ratio;
  return true;
}

}  // namespace

std::string backend_name(CompressorId id) {
  switch (id) {
    case CompressorId::kSz: return "sz";
    case CompressorId::kZfp: return "zfp";
    case CompressorId::kMgard: return "mgard";
    case CompressorId::kTruncate: return "truncate";
    case CompressorId::kSzx: return "szx";
    case CompressorId::kFpc: return "fpc";
  }
  throw Unsupported("archive: unknown compressor id");
}

CompressorId backend_id(const std::string& name) {
  if (name == "sz") return CompressorId::kSz;
  if (name == "zfp") return CompressorId::kZfp;
  if (name == "mgard") return CompressorId::kMgard;
  if (name == "truncate") return CompressorId::kTruncate;
  if (name == "szx") return CompressorId::kSzx;
  if (name == "fpc") return CompressorId::kFpc;
  throw Unsupported("archive: backend '" + name +
                    "' has no container id (format v1 records the built-in backends; "
                    "write format v2 to record plugins by name)");
}

void encode_manifest(std::uint8_t version, const std::string& compressor, DType dtype,
                     const Shape& shape, double target_ratio, double epsilon,
                     std::size_t chunk_extent, const std::vector<ChunkEntry>& chunks,
                     Buffer& out) {
  if (version == 1) {
    // Legacy layout: the manifest is a Container frame over the full logical
    // array, so the backend must have a built-in CompressorId.
    Buffer payload;
    put_u32(payload, kArchiveMagic);
    payload.push_back(1);
    put_f64(payload, target_ratio);
    put_f64(payload, epsilon);
    put_varint(payload, chunk_extent);
    encode_chunk_index(chunks, payload);
    seal_container_into(backend_id(compressor), dtype, shape, payload.data(),
                        payload.size(), out);
    return;
  }
  require(version == 2, "archive: unsupported format version");
  out.clear();
  put_u32(out, kManifestMagic);
  out.push_back(2);
  out.push_back(dtype == DType::kFloat32 ? 0 : 1);
  put_varint(out, shape.size());
  for (std::size_t d : shape) put_varint(out, d);
  put_varint(out, compressor.size());
  out.append(compressor.data(), compressor.size());
  put_f64(out, target_ratio);
  put_f64(out, epsilon);
  put_varint(out, chunk_extent);
  encode_chunk_index(chunks, out);
  put_u32(out, crc32(out.data(), out.size()));
}

void encode_footer(std::uint8_t version, std::size_t manifest_offset,
                   std::size_t manifest_size, std::uint64_t raw_bytes,
                   std::uint64_t archive_bytes, double achieved_ratio, Buffer& out) {
  const std::size_t base = out.size();
  if (version == 1) {
    put_u32(out, kFooterMagicV1);
    put_u64(out, manifest_size);
  } else {
    // v2 and v3 share the FRz2 trailer; the manifest's version byte is what
    // distinguishes the layouts.
    require(version == 2 || version == 3, "archive: unsupported format version");
    put_u32(out, kFooterMagicV2);
    put_u64(out, manifest_offset);
    put_u64(out, manifest_size);
  }
  put_u64(out, raw_bytes);
  put_u64(out, archive_bytes);
  put_f64(out, achieved_ratio);
  put_u32(out, crc32(out.data() + base, out.size() - base));
}

Footer parse_footer(const std::uint8_t* tail, std::size_t tail_size,
                    std::uint64_t total_size) {
  if (total_size < kFooterBytesV1 + 12 || tail_size > total_size)
    throw CorruptStream("archive: too small");
  Footer footer;
  if (try_parse_footer_v2(tail, tail_size, total_size, footer)) return footer;
  if (try_parse_footer_v1(tail, tail_size, total_size, footer)) return footer;
  throw CorruptStream("archive: bad or corrupt footer");
}

namespace {

/// Read a length-prefixed string (shared by the v2 compressor name and the
/// v3 name fields).
std::string parse_short_string(const std::uint8_t* p, std::size_t size, std::size_t& pos,
                               const char* what) {
  const std::uint64_t length = get_varint(p, size, pos);
  if (length == 0 || length > 256 || pos + length > size)
    throw CorruptStream(std::string("archive: bad ") + what);
  std::string value(reinterpret_cast<const char*>(p) + pos,
                    static_cast<std::size_t>(length));
  pos += static_cast<std::size_t>(length);
  return value;
}

DType parse_dtype_tag(std::uint8_t tag) {
  if (tag > 1) throw CorruptStream("archive: bad dtype tag");
  return tag == 0 ? DType::kFloat32 : DType::kFloat64;
}

Shape parse_shape(const std::uint8_t* p, std::size_t size, std::size_t& pos) {
  const std::uint64_t ndims = get_varint(p, size, pos);
  if (ndims == 0 || ndims > 8) throw CorruptStream("archive: bad rank");
  Shape shape(ndims);
  for (auto& d : shape) {
    d = get_varint(p, size, pos);
    if (d == 0) throw CorruptStream("archive: zero extent");
  }
  return shape;
}

}  // namespace

void encode_manifest_fields(const std::vector<FieldInfo>& fields, Buffer& out) {
  require(!fields.empty(), "archive: a v3 manifest needs at least one field");
  out.clear();
  put_u32(out, kManifestMagic);
  out.push_back(3);
  put_varint(out, fields.size());
  for (const FieldInfo& field : fields) {
    require(!field.name.empty() && field.name.size() <= 256,
            "archive: field name must be 1..256 bytes");
    put_varint(out, field.name.size());
    out.append(field.name.data(), field.name.size());
    out.push_back(field.dtype == DType::kFloat32 ? 0 : 1);
    put_varint(out, field.shape.size());
    for (std::size_t d : field.shape) put_varint(out, d);
    put_varint(out, field.compressor.size());
    out.append(field.compressor.data(), field.compressor.size());
    put_f64(out, field.target_ratio);
    put_f64(out, field.epsilon);
    put_f64(out, field.payload_ratio);
    put_varint(out, field.chunk_extent);
    encode_chunk_index(field.chunks, out);
  }
  put_u32(out, crc32(out.data(), out.size()));
}

const FieldInfo* find_field(const ArchiveInfo& info, const std::string& name) noexcept {
  for (const FieldInfo& field : info.fields)
    if (field.name == name) return &field;
  return nullptr;
}

ArchiveInfo parse_manifest(const std::uint8_t* manifest, std::size_t size,
                           const Footer& footer) {
  ArchiveInfo info;
  info.raw_bytes = static_cast<std::size_t>(footer.raw_bytes);
  info.archive_bytes = static_cast<std::size_t>(footer.archive_bytes);
  info.achieved_ratio = footer.achieved_ratio;
  info.chunk_region = footer.chunk_region;

  if (footer.version == 1) {
    const Container frame = open_container(manifest, size);
    info.version = 1;
    FieldInfo field;
    field.name = kDefaultFieldName;
    field.compressor = backend_name(frame.id);
    field.dtype = frame.dtype;
    field.shape = frame.shape;
    const std::uint8_t* p = frame.payload;
    const std::size_t psize = frame.payload_size;
    std::size_t pos = 0;
    if (get_u32(p, psize, pos) != kArchiveMagic)
      throw CorruptStream("archive: bad manifest magic");
    if (pos >= psize) throw CorruptStream("archive: truncated manifest");
    if (p[pos++] != 1) throw CorruptStream("archive: unsupported format version");
    field.target_ratio = get_f64(p, psize, pos);
    field.epsilon = get_f64(p, psize, pos);
    field.chunk_extent = get_varint(p, psize, pos);
    std::size_t running = 0;
    parse_field_chunk_index(p, psize, pos, field, running, footer.region_bytes);
    if (pos != psize) throw CorruptStream("archive: trailing manifest bytes");
    field.payload_ratio = static_cast<double>(field.raw_bytes) /
                          static_cast<double>(field.payload_bytes);
    info.fields.push_back(std::move(field));
    finalize_fields(info, footer, running);
    return info;
  }

  // v2/v3: self-framed manifest block with its own trailing CRC; the version
  // byte after the magic selects the single-field or field-table body.
  std::size_t pos = 0;
  if (size < 16) throw CorruptStream("archive: truncated manifest");
  if (get_u32(manifest, size, pos) != kManifestMagic)
    throw CorruptStream("archive: bad manifest magic");
  const std::uint32_t stored_crc = [&] {
    std::size_t p = size - 4;
    return get_u32(manifest, size, p);
  }();
  if (crc32(manifest, size - 4) != stored_crc)
    throw CorruptStream("archive: manifest checksum mismatch");
  info.version = manifest[pos++];

  if (info.version == 2) {
    FieldInfo field;
    field.name = kDefaultFieldName;
    field.dtype = parse_dtype_tag(manifest[pos++]);
    field.shape = parse_shape(manifest, size, pos);
    field.compressor = parse_short_string(manifest, size, pos, "compressor name");
    field.target_ratio = get_f64(manifest, size, pos);
    field.epsilon = get_f64(manifest, size, pos);
    field.chunk_extent = get_varint(manifest, size, pos);
    std::size_t running = 0;
    parse_field_chunk_index(manifest, size, pos, field, running, footer.region_bytes);
    if (pos + 4 != size) throw CorruptStream("archive: trailing manifest bytes");
    field.payload_ratio = static_cast<double>(field.raw_bytes) /
                          static_cast<double>(field.payload_bytes);
    info.fields.push_back(std::move(field));
    finalize_fields(info, footer, running);
    return info;
  }

  if (info.version != 3) throw CorruptStream("archive: unsupported format version");
  const std::uint64_t field_count = get_varint(manifest, size, pos);
  if (field_count == 0 || field_count > kMaxFields)
    throw CorruptStream("archive: bad field count");
  std::size_t running = 0;
  info.fields.reserve(static_cast<std::size_t>(field_count));
  for (std::uint64_t i = 0; i < field_count; ++i) {
    FieldInfo field;
    field.name = parse_short_string(manifest, size, pos, "field name");
    if (find_field(info, field.name))
      throw CorruptStream("archive: duplicate field name '" + field.name + "'");
    if (pos + 2 > size) throw CorruptStream("archive: truncated manifest");
    field.dtype = parse_dtype_tag(manifest[pos++]);
    field.shape = parse_shape(manifest, size, pos);
    field.compressor = parse_short_string(manifest, size, pos, "compressor name");
    field.target_ratio = get_f64(manifest, size, pos);
    field.epsilon = get_f64(manifest, size, pos);
    field.payload_ratio = get_f64(manifest, size, pos);
    field.chunk_extent = get_varint(manifest, size, pos);
    parse_field_chunk_index(manifest, size, pos, field, running, footer.region_bytes);
    info.fields.push_back(std::move(field));
  }
  if (pos + 4 != size) throw CorruptStream("archive: trailing manifest bytes");
  finalize_fields(info, footer, running);
  return info;
}

}  // namespace fraz::archive
