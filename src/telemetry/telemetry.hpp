#ifndef FRAZ_TELEMETRY_TELEMETRY_HPP
#define FRAZ_TELEMETRY_TELEMETRY_HPP

/// \file telemetry.hpp
/// Process-wide telemetry: named counters, gauges, and latency histograms in
/// one registry, plus scoped trace spans feeding the histograms.
///
/// FRaZ's operational claims — bounded probe counts per tune, O(chunk ×
/// workers) writer memory, decode-once serving — were previously assertable
/// only in tests: counters lived in four unrelated per-object structs and
/// nothing measured latency outside the benches.  This layer is the single
/// observation plane over the three hot paths (tuner probe loop, archive
/// write pipeline, serve request path):
///
///  - **Counter** — monotonic, striped over leased per-thread cells so
///    concurrent serve threads neither contend on one cache line nor pay
///    an atomic read-modify-write.
///  - **Gauge** — a signed level tracked by +/- deltas (staged bytes,
///    resident cache bytes), so concurrent writers compose by summation.
///  - **Histogram** — log2-bucketed latency with p50/p95/p99 extraction
///    (telemetry/histogram.hpp).
///  - **SpanTimer / TELEM_SPAN** — RAII scope timers that feed a histogram
///    and, when a trace sink is installed, emit one structured JSON event
///    per span for request-lifecycle tracing.
///
/// The registry is the process-wide source of truth for totals; per-object
/// stats structs (ReaderPool::Stats, ChunkCache::Stats) are views over
/// *instanced* registry counters — each object owns one instance of a
/// shared name, exposition sums the instances — so the object view and the
/// global totals come from the same single increment site and can never
/// disagree.
///
/// Exposition: MetricsRegistry::to_json() (one line, machine-readable — the
/// serve protocol's METRICS reply and the CLI's --json enrichment) and
/// to_prometheus() (text exposition format).
///
/// Hard guarantees: telemetry only observes — it can never change produced
/// bytes (pinned by a pack byte-identity test) — and the FRAZ_TELEMETRY_OFF
/// runtime kill-switch reduces every instrumentation site to one relaxed
/// load and a branch (spans skip their clock reads entirely).

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "telemetry/histogram.hpp"
#include "util/thread_annotations.hpp"

namespace fraz::telemetry {

namespace detail {

/// The kill-switch flag.  Constant zero-initialized (= disabled) until its
/// dynamic initializer in telemetry.cpp reads FRAZ_TELEMETRY_OFF, so
/// instrumentation running during other translation units' static
/// initialization sees a defined (off) flag, never garbage.
extern std::atomic<bool> g_enabled;

/// Slot leasing, out of line (telemetry.cpp): leases this thread a cell
/// index, stores it into t_thread_slot, and returns it.  The lease is
/// returned to a free list when the thread exits, so a bounded set of
/// live threads keeps reusing the exclusive cell range forever.
std::size_t assign_thread_slot() noexcept;

/// This thread's leased cell index; kSlotUnassigned until first touch.
/// Constant-initialized so the hot-path read is a plain TLS load with no
/// per-call initialization guard.  After the lease is released at thread
/// exit it becomes kSlotOverflow: any counting from later TLS destructors
/// takes the always-safe shared overflow cell.
inline constexpr std::size_t kSlotUnassigned = static_cast<std::size_t>(-1);
inline constexpr std::size_t kSlotOverflow = static_cast<std::size_t>(-2);
inline thread_local std::size_t t_thread_slot = kSlotUnassigned;

/// This thread's counter-cell slot (leased on first touch).
inline std::size_t thread_slot() noexcept {
  const std::size_t slot = t_thread_slot;
  if (slot != kSlotUnassigned) return slot;
  return assign_thread_slot();
}

}  // namespace detail

/// Global kill-switch.  Initialized once from the FRAZ_TELEMETRY_OFF
/// environment variable (set and non-"0" = disabled); toggleable at runtime
/// for tests and overhead benches.  Disabling stops counting — stats read
/// while disabled are frozen, not wrong.  Inline (one relaxed load): this
/// check is the entire cost of a disabled instrumentation site.
inline bool enabled() noexcept {
  return detail::g_enabled.load(std::memory_order_relaxed);
}
inline void set_enabled(bool on) noexcept {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

/// Monotonic counter, striped across per-thread cache-line cells so
/// concurrent hot-path increments (N serve threads bumping
/// "serve.pool.requests") never contend — and, more importantly, never pay
/// an atomic read-modify-write.  Each thread leases a process-unique cell
/// index (detail::thread_slot, recycled through a free list at thread
/// exit); a leased cell has exactly one writer at any moment, so an
/// increment is a relaxed load + store on an owned line (~2ns) instead of
/// a full-barrier fetch_add (~7ns).  Exactness is preserved across lease
/// handoffs because acquire/release of a slot goes through a mutex — the
/// old owner's stores happen-before the new owner's loads.  Threads beyond
/// kCells (or counting after their lease died) take the shared overflow
/// cell with a real fetch_add, so correctness never depends on the lease
/// supply.  value() sums cells + overflow — exact, since cells only grow.
class Counter {
public:
  static constexpr std::size_t kCells = 32;

  Counter() noexcept = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void add(std::uint64_t n = 1) noexcept {
    if (!enabled()) return;
    add_unchecked(n);
  }
  /// The increment alone, skipping the kill-switch check — for callers
  /// that check once and then bump several counters.
  void add_unchecked(std::uint64_t n = 1) noexcept {
    const std::size_t slot = detail::thread_slot();
    if (slot < kCells) {
      // Exclusive cell: this thread is the only writer (see class comment),
      // so a non-RMW load+store cannot lose updates.
      std::atomic<std::uint64_t>& cell = cells_[slot].v;
      cell.store(cell.load(std::memory_order_relaxed) + n,
                 std::memory_order_relaxed);
    } else {
      overflow_.v.fetch_add(n, std::memory_order_relaxed);
    }
  }
  std::uint64_t value() const noexcept {
    std::uint64_t total = overflow_.v.load(std::memory_order_relaxed);
    for (const Cell& c : cells_) total += c.v.load(std::memory_order_relaxed);
    return total;
  }
  void reset() noexcept {
    for (Cell& c : cells_) c.v.store(0, std::memory_order_relaxed);
    overflow_.v.store(0, std::memory_order_relaxed);
  }

private:
  struct alignas(64) Cell {
    std::atomic<std::uint64_t> v{0};
  };
  Cell cells_[kCells];
  Cell overflow_;
};

/// Signed level metric updated by deltas; concurrent instances of one
/// subsystem (two caches, two pack pipelines) compose into a correct total
/// because every holder adds what it acquires and subtracts what it releases.
class Gauge {
public:
  Gauge() noexcept = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void add(std::int64_t n) noexcept {
    if (!enabled()) return;
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  void sub(std::int64_t n) noexcept { add(-n); }
  std::int64_t value() const noexcept { return value_.load(std::memory_order_relaxed); }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

private:
  std::atomic<std::int64_t> value_{0};
};


/// One span's trace record, handed to the installed sink at span end.
struct TraceEvent {
  const char* name = "";           ///< span name (= histogram name)
  std::uint64_t start_us = 0;      ///< steady-clock microseconds at entry
  std::uint64_t duration_us = 0;
};

/// Render a TraceEvent as one JSON object line (the standard sink format).
std::string trace_event_json(const TraceEvent& event);

/// Thread-safe named-metric registry.  Metric references returned by
/// counter()/gauge()/histogram() are stable for the registry's lifetime, so
/// hot paths look a metric up once (static local) and then touch only
/// atomics.  Names are dotted lowercase ("serve.pool.requests",
/// "serve.decode_us"); histograms record microseconds by convention and
/// carry a `_us` suffix.
class MetricsRegistry {
public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// A fresh counter *instance* under \p name: every call returns a new
  /// Counter, and exposition reports the per-name sum over all instances.
  /// This is how per-object stats (ReaderPool::Stats, ChunkCache::Stats)
  /// feed the registry without double-booking: one increment site, one
  /// atomic op, the object reads its own instance exactly and the process
  /// totals aggregate every instance — including those whose owner has
  /// since been destroyed (instances live for the registry's lifetime, so
  /// totals stay monotonic; churning objects leak one small counter each,
  /// which is the price of that guarantee).
  Counter& instanced_counter(const std::string& name);

  /// One JSON object: {"counters":{...},"gauges":{...},"histograms":{name:
  /// {count,sum_us,min_us,max_us,p50_us,p95_us,p99_us}}}.  A non-empty
  /// \p prefix restricts to metric names starting with it.
  std::string to_json(std::string_view prefix = {}) const;

  /// Prometheus text exposition: counters and gauges as-is, histograms as
  /// summaries with quantile labels.  Dots become underscores under a
  /// `fraz_` namespace prefix.
  std::string to_prometheus() const;

  /// Install (or clear, with nullptr) the structured trace sink invoked at
  /// every span end.  The sink runs on the instrumented thread under a
  /// mutex — keep it cheap (append to a log, push to a queue).
  void set_trace_sink(std::function<void(const TraceEvent&)> sink);
  /// Hand one event to the sink if installed (span layer internal).
  void trace(const TraceEvent& event) noexcept;
  /// Cheap pre-check so spans skip event assembly with no sink installed.
  bool tracing() const noexcept { return tracing_.load(std::memory_order_relaxed); }

  /// Zero every registered metric (test support; registration survives).
  void reset_values();

private:
  mutable Mutex mutex_;
  // Node-based maps: emplaced metrics never move, so returned references
  // stay valid while hot paths hold them.  The mutex guards the maps'
  // *structure* (registration); the metric objects themselves are atomic
  // and are touched lock-free through the returned references.
  std::map<std::string, Counter> counters_ FRAZ_GUARDED_BY(mutex_);
  std::multimap<std::string, Counter> instanced_ FRAZ_GUARDED_BY(mutex_);
  std::map<std::string, Gauge> gauges_ FRAZ_GUARDED_BY(mutex_);
  std::map<std::string, Histogram> histograms_ FRAZ_GUARDED_BY(mutex_);

  /// Totals per counter name: counters_ plus the instanced_ sums.
  std::map<std::string, std::uint64_t> counter_totals_locked() const
      FRAZ_REQUIRES(mutex_);

  Mutex sink_mutex_;
  std::function<void(const TraceEvent&)> sink_ FRAZ_GUARDED_BY(sink_mutex_);
  std::atomic<bool> tracing_{false};
};

/// The process-wide registry every instrumentation site feeds.
MetricsRegistry& global() noexcept;

/// Steady-clock microseconds (span timestamps).
std::uint64_t now_us() noexcept;

/// RAII scope timer: entry stamps the clock, exit records the elapsed
/// microseconds into the bound histogram and traces the span if a sink is
/// installed.  When telemetry is disabled at entry the span does nothing —
/// not even clock reads.
class SpanTimer {
public:
  SpanTimer(Histogram& sink, const char* name) noexcept
      : sink_(&sink), name_(name), armed_(enabled()) {
    if (armed_) start_us_ = now_us();
  }
  ~SpanTimer() {
    if (!armed_) return;
    const std::uint64_t duration = now_us() - start_us_;
    sink_->record(duration);
    if (global().tracing()) global().trace(TraceEvent{name_, start_us_, duration});
  }

  SpanTimer(const SpanTimer&) = delete;
  SpanTimer& operator=(const SpanTimer&) = delete;

private:
  Histogram* sink_;
  const char* name_;
  const bool armed_;
  std::uint64_t start_us_ = 0;
};

}  // namespace fraz::telemetry

#define FRAZ_TELEM_CONCAT_IMPL(a, b) a##b
#define FRAZ_TELEM_CONCAT(a, b) FRAZ_TELEM_CONCAT_IMPL(a, b)

/// Scoped trace span: times the enclosing scope into the named histogram of
/// the global registry.  The registry lookup is memoized per call site
/// (static local), so a hot span costs two clock reads and one histogram
/// record — or one relaxed load when telemetry is off.
///
///     TELEM_SPAN("serve.decode_us");
#define TELEM_SPAN(name_literal)                                              \
  ::fraz::telemetry::SpanTimer FRAZ_TELEM_CONCAT(fraz_telem_span_, __COUNTER__)( \
      []() -> ::fraz::telemetry::Histogram& {                                 \
        static ::fraz::telemetry::Histogram& memoized =                       \
            ::fraz::telemetry::global().histogram(name_literal);              \
        return memoized;                                                      \
      }(),                                                                    \
      name_literal)

#endif  // FRAZ_TELEMETRY_TELEMETRY_HPP
