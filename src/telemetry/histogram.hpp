#ifndef FRAZ_TELEMETRY_HISTOGRAM_HPP
#define FRAZ_TELEMETRY_HISTOGRAM_HPP

/// \file histogram.hpp
/// Log2-bucketed latency histogram of the telemetry layer.
///
/// Recording is wait-free — one relaxed fetch_add per bucket/count/sum plus
/// two bounded CAS loops for min/max — so a histogram may sit on the serve
/// hot path (requests, decodes) without adding a lock.  The bucket layout is
/// fixed and deterministic: bucket 0 holds the value 0, bucket b (1 ≤ b < 63)
/// holds values in [2^(b-1), 2^b - 1], and bucket 63 holds everything at or
/// above 2^62.  Values are dimensionless; by convention the span layer feeds
/// microseconds (metric names carry a `_us` suffix).
///
/// Quantiles are extracted from a Snapshot by exact rank walk (nearest-rank
/// over the bucket counts) with linear interpolation inside the landing
/// bucket, clamped to the observed [min, max] — so a one-sample histogram
/// reports that exact sample at every quantile, and an all-identical stream
/// reports the common value.  Snapshots merge (worker-local histograms can
/// fold into one), which only adds counts — quantile math is identical on a
/// merged snapshot.

#include <array>
#include <atomic>
#include <cstdint>

namespace fraz::telemetry {

/// Thread-safe log2-bucketed histogram (see file comment for bucket layout
/// and quantile semantics).
class Histogram {
public:
  static constexpr std::size_t kBuckets = 64;

  Histogram() noexcept;

  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  /// Bucket index a value lands in (pure layout function, test-pinned).
  static std::size_t bucket_of(std::uint64_t value) noexcept;
  /// Smallest value of bucket \p b (0 for bucket 0).
  static std::uint64_t bucket_lower(std::size_t b) noexcept;
  /// Largest value of bucket \p b (UINT64_MAX for the overflow bucket).
  static std::uint64_t bucket_upper(std::size_t b) noexcept;

  /// Record one observation.  Wait-free, relaxed ordering; respects the
  /// global kill-switch (a disabled record is one relaxed load + branch).
  void record(std::uint64_t value) noexcept;

  /// A consistent-enough copy of the histogram state.  Counters are read
  /// relaxed, so a snapshot taken during concurrent recording may be off by
  /// in-flight samples — fine for observability, never used for control.
  struct Snapshot {
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t min = 0;  ///< 0 when count == 0
    std::uint64_t max = 0;
    std::array<std::uint64_t, kBuckets> buckets{};

    /// Exact nearest-rank quantile over the buckets, interpolated within the
    /// landing bucket and clamped to [min, max].  q in [0, 1]; 0 when empty.
    double quantile(double q) const noexcept;
    double p50() const noexcept { return quantile(0.50); }
    double p95() const noexcept { return quantile(0.95); }
    double p99() const noexcept { return quantile(0.99); }
    double mean() const noexcept {
      return count == 0 ? 0 : static_cast<double>(sum) / static_cast<double>(count);
    }

    /// Fold \p other into this snapshot (bucket-wise addition).
    void merge(const Snapshot& other) noexcept;
  };
  Snapshot snapshot() const noexcept;

  /// Zero every counter (test support; not atomic against recorders).
  void reset() noexcept;

private:
  std::atomic<std::uint64_t> count_;
  std::atomic<std::uint64_t> sum_;
  std::atomic<std::uint64_t> min_;  ///< UINT64_MAX sentinel when empty
  std::atomic<std::uint64_t> max_;
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_;
};

}  // namespace fraz::telemetry

#endif  // FRAZ_TELEMETRY_HISTOGRAM_HPP
