#include "telemetry/telemetry.hpp"

#include <chrono>
#include <cstdlib>
#include <mutex>
#include <tuple>
#include <utility>
#include <vector>

#include "util/json_writer.hpp"

namespace fraz::telemetry {

namespace {

bool initial_enabled() {
  const char* off = std::getenv("FRAZ_TELEMETRY_OFF");
  return !(off != nullptr && *off != '\0' && std::string_view(off) != "0");
}

std::string prometheus_name(const std::string& name) {
  std::string out = "fraz_";
  for (const char c : name) out += c == '.' ? '_' : c;
  return out;
}

}  // namespace

// Zero-initialized (off) until this runs; see the header comment.
std::atomic<bool> detail::g_enabled{initial_enabled()};

namespace {

// Function-local statics so a lease taken during another translation
// unit's static initialization still finds initialized state.  Both are
// intentionally leaked (immortal): ~SlotLease runs from TLS destructors of
// arbitrary threads — including shared_thread_pool() workers joined during
// static teardown — which may fire after this TU's exit-time destructors,
// so the mutex and free list must never be destroyed.
Mutex& slot_mutex() noexcept FRAZ_RETURN_CAPABILITY(slot_mutex()) {
  static Mutex& m = *new Mutex;
  return m;
}

// The free list is guarded by slot_mutex() — expressed as a capability on
// the accessor since the state is a function-local static.
std::vector<std::size_t>& free_slots() FRAZ_REQUIRES(slot_mutex()) {
  static std::vector<std::size_t>& slots = *new std::vector<std::size_t>;
  return slots;
}

/// One thread's cell-slot lease.  Constructed on the thread's first counted
/// increment, destroyed by the TLS runtime at thread exit; the destructor
/// returns the slot so the next thread reuses it.  The mutex is the
/// exactness handoff: the old owner's cell stores happen-before the new
/// owner's first load.
struct SlotLease {
  std::size_t slot = detail::kSlotOverflow;

  SlotLease() noexcept {
    try {
      LockGuard lock(slot_mutex());
      std::vector<std::size_t>& free = free_slots();
      if (!free.empty()) {
        slot = free.back();
        free.pop_back();
      } else {
        static std::size_t next_slot = 0;
        if (next_slot < Counter::kCells) slot = next_slot++;
      }
    } catch (...) {
      // Keep the overflow slot — always safe.
    }
    detail::t_thread_slot = slot;
  }

  ~SlotLease() {
    // Later counting from this thread (other TLS destructors) must take
    // the shared overflow cell, never the recycled exclusive one.
    detail::t_thread_slot = detail::kSlotOverflow;
    if (slot >= Counter::kCells) return;
    try {
      LockGuard lock(slot_mutex());
      free_slots().push_back(slot);
    } catch (...) {
      // Losing a slot to an allocation failure only costs striping.
    }
  }
};

}  // namespace

std::size_t detail::assign_thread_slot() noexcept {
  static thread_local SlotLease lease;
  return lease.slot;
}

std::uint64_t now_us() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::string trace_event_json(const TraceEvent& event) {
  JsonWriter w;
  w.begin_object()
      .field("span", std::string_view(event.name))
      .field("start_us", event.start_us)
      .field("duration_us", event.duration_us)
      .end_object();
  return std::move(w).str();
}

Counter& MetricsRegistry::counter(const std::string& name) {
  LockGuard lock(mutex_);
  return counters_[name];
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  LockGuard lock(mutex_);
  return gauges_[name];
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  LockGuard lock(mutex_);
  return histograms_[name];
}

Counter& MetricsRegistry::instanced_counter(const std::string& name) {
  LockGuard lock(mutex_);
  return instanced_.emplace(std::piecewise_construct,
                            std::forward_as_tuple(name), std::forward_as_tuple())
      ->second;
}

std::map<std::string, std::uint64_t> MetricsRegistry::counter_totals_locked() const {
  std::map<std::string, std::uint64_t> totals;
  for (const auto& [name, c] : counters_) totals[name] += c.value();
  for (const auto& [name, c] : instanced_) totals[name] += c.value();
  return totals;
}

std::string MetricsRegistry::to_json(std::string_view prefix) const {
  const auto matches = [prefix](const std::string& name) {
    return prefix.empty() ||
           std::string_view(name).substr(0, prefix.size()) == prefix;
  };
  LockGuard lock(mutex_);
  JsonWriter w;
  w.begin_object();
  w.key("counters").begin_object();
  for (const auto& [name, total] : counter_totals_locked())
    if (matches(name)) w.field(name, total);
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, g] : gauges_)
    if (matches(name)) w.field(name, g.value());
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [name, h] : histograms_) {
    if (!matches(name)) continue;
    const Histogram::Snapshot s = h.snapshot();
    w.key(name)
        .begin_object()
        .field("count", s.count)
        .field("sum_us", s.sum)
        .field("min_us", s.min)
        .field("max_us", s.max)
        .field("mean_us", s.mean())
        .field("p50_us", s.p50())
        .field("p95_us", s.p95())
        .field("p99_us", s.p99())
        .end_object();
  }
  w.end_object();
  w.end_object();
  return std::move(w).str();
}

std::string MetricsRegistry::to_prometheus() const {
  LockGuard lock(mutex_);
  std::string out;
  for (const auto& [name, total] : counter_totals_locked()) {
    const std::string p = prometheus_name(name);
    out += "# TYPE " + p + " counter\n";
    out += p + " " + std::to_string(total) + "\n";
  }
  for (const auto& [name, g] : gauges_) {
    const std::string p = prometheus_name(name);
    out += "# TYPE " + p + " gauge\n";
    out += p + " " + std::to_string(g.value()) + "\n";
  }
  for (const auto& [name, h] : histograms_) {
    const Histogram::Snapshot s = h.snapshot();
    const std::string p = prometheus_name(name);
    out += "# TYPE " + p + " summary\n";
    out += p + "{quantile=\"0.5\"} " + json_number(s.p50()) + "\n";
    out += p + "{quantile=\"0.95\"} " + json_number(s.p95()) + "\n";
    out += p + "{quantile=\"0.99\"} " + json_number(s.p99()) + "\n";
    out += p + "_sum " + std::to_string(s.sum) + "\n";
    out += p + "_count " + std::to_string(s.count) + "\n";
  }
  return out;
}

void MetricsRegistry::set_trace_sink(std::function<void(const TraceEvent&)> sink) {
  LockGuard lock(sink_mutex_);
  sink_ = std::move(sink);
  tracing_.store(static_cast<bool>(sink_), std::memory_order_relaxed);
}

void MetricsRegistry::trace(const TraceEvent& event) noexcept {
  LockGuard lock(sink_mutex_);
  if (!sink_) return;
  try {
    sink_(event);
  } catch (...) {
    // A throwing sink must not take down instrumented code.
  }
}

void MetricsRegistry::reset_values() {
  LockGuard lock(mutex_);
  for (auto& [name, c] : counters_) c.reset();
  for (auto& [name, c] : instanced_) c.reset();
  for (auto& [name, g] : gauges_) g.reset();
  for (auto& [name, h] : histograms_) h.reset();
}

MetricsRegistry& global() noexcept {
  // Leaked on purpose: instrumented code may run during other objects'
  // static destruction, so the registry must never be destroyed first.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

}  // namespace fraz::telemetry
