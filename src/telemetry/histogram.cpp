#include "telemetry/histogram.hpp"

#include <algorithm>
#include <cmath>

#include "telemetry/telemetry.hpp"

namespace fraz::telemetry {

Histogram::Histogram() noexcept : count_(0), sum_(0), min_(UINT64_MAX), max_(0) {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
}

std::size_t Histogram::bucket_of(std::uint64_t value) noexcept {
  if (value == 0) return 0;
#if defined(__GNUC__) || defined(__clang__)
  const std::size_t width = 64u - static_cast<std::size_t>(__builtin_clzll(value));
#else
  std::size_t width = 0;
  for (std::uint64_t v = value; v != 0; v >>= 1) ++width;
#endif
  return std::min<std::size_t>(width, kBuckets - 1);
}

std::uint64_t Histogram::bucket_lower(std::size_t b) noexcept {
  return b == 0 ? 0 : 1ull << (b - 1);
}

std::uint64_t Histogram::bucket_upper(std::size_t b) noexcept {
  if (b == 0) return 0;
  if (b >= kBuckets - 1) return UINT64_MAX;
  return (1ull << b) - 1;
}

void Histogram::record(std::uint64_t value) noexcept {
  if (!enabled()) return;
  buckets_[bucket_of(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  std::uint64_t seen = min_.load(std::memory_order_relaxed);
  while (value < seen &&
         !min_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

Histogram::Snapshot Histogram::snapshot() const noexcept {
  Snapshot out;
  out.count = count_.load(std::memory_order_relaxed);
  out.sum = sum_.load(std::memory_order_relaxed);
  const std::uint64_t min = min_.load(std::memory_order_relaxed);
  out.min = min == UINT64_MAX ? 0 : min;
  out.max = max_.load(std::memory_order_relaxed);
  for (std::size_t b = 0; b < kBuckets; ++b)
    out.buckets[b] = buckets_[b].load(std::memory_order_relaxed);
  return out;
}

void Histogram::reset() noexcept {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(UINT64_MAX, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
}

double Histogram::Snapshot::quantile(double q) const noexcept {
  if (count == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Nearest-rank: the smallest rank r (1-based) with r >= q * count.
  const auto rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(count))));
  std::uint64_t before = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    if (buckets[b] == 0) continue;
    if (before + buckets[b] >= rank) {
      const double lo = static_cast<double>(bucket_lower(b));
      // The overflow bucket has no meaningful upper edge; interpolate toward
      // the observed max instead of UINT64_MAX.
      const double hi = b >= kBuckets - 1 ? static_cast<double>(max)
                                          : static_cast<double>(bucket_upper(b));
      const double within = static_cast<double>(rank - before) /
                            static_cast<double>(buckets[b]);
      const double value = lo + (hi - lo) * within;
      // Clamp to the observed range: a one-sample histogram answers that
      // exact sample, and no quantile can leave [min, max].
      return std::clamp(value, static_cast<double>(min), static_cast<double>(max));
    }
    before += buckets[b];
  }
  return static_cast<double>(max);
}

void Histogram::Snapshot::merge(const Snapshot& other) noexcept {
  if (other.count == 0) return;
  if (count == 0) {
    min = other.min;
    max = other.max;
  } else {
    min = std::min(min, other.min);
    max = std::max(max, other.max);
  }
  count += other.count;
  sum += other.sum;
  for (std::size_t b = 0; b < kBuckets; ++b) buckets[b] += other.buckets[b];
}

}  // namespace fraz::telemetry
