#ifndef FRAZ_CORE_QUALITY_TUNER_HPP
#define FRAZ_CORE_QUALITY_TUNER_HPP

/// \file quality_tuner.hpp
/// The paper's first future-work item (§VII): tuning to *analysis-quality*
/// targets instead of a compression ratio — "error bounds that correspond
/// with the quality of a scientist's analysis result ... such as a
/// particular SSIM in lossy compressed data required for valid results".
///
/// The machinery is FRaZ's: a black-box objective over the error bound,
/// driven through the shared tuning stack — an ask/tell `opt::SearchState`
/// whose quality probes (compress + decompress + metric) run through the
/// same `ProbeExecutor`/`ProbeCache` layer the ratio tuner uses.  The tuner
/// finds the *largest* bound (best ratio) whose quality still clears the
/// floor.  (`QualityMetric` now lives in core/probe.hpp, next to the probe
/// that measures it.)

#include <cstdint>

#include "core/probe.hpp"
#include "ndarray/ndarray.hpp"
#include "pressio/compressor.hpp"

namespace fraz {

/// Configuration of a quality-floor search.
struct QualityTunerConfig {
  QualityMetric metric = QualityMetric::kPsnrDb;
  /// Minimum acceptable quality (e.g. 60 dB, or SSIM 0.95).
  double quality_floor = 60.0;
  /// Relative slack: quality in [floor, floor * (1 + slack)] stops the
  /// search early (close enough to the floor = near-optimal ratio).
  double slack = 0.05;
  /// Search range for the bound; 0 = auto (data value range, floor*1e-9).
  double max_error_bound = 0;
  double min_error_bound = 0;
  /// Evaluation cap: each evaluation is a compress+decompress+metric pass.
  int max_evals = 32;
  std::uint64_t seed = 0x514c4954;  // "QLIT"
};

/// Result of a quality-floor search.
struct QualityTuneResult {
  double error_bound = 0;     ///< largest bound found meeting the floor
  double quality = 0;         ///< metric value at that bound
  double achieved_ratio = 0;  ///< compression ratio at that bound
  bool met_floor = false;     ///< true when quality >= floor
  int evaluations = 0;        ///< compress+decompress passes spent
};

/// Find the most aggressive error bound whose reconstruction quality still
/// meets the floor.  Throws InvalidArgument for unsupported metric/rank
/// combinations (SSIM on 1D data) and nonsensical configs.
QualityTuneResult tune_for_quality(const pressio::Compressor& compressor,
                                   const ArrayView& data, const QualityTunerConfig& config);

}  // namespace fraz

#endif  // FRAZ_CORE_QUALITY_TUNER_HPP
