#include "core/tuner.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <future>
#include <mutex>

#include "opt/cancel.hpp"
#include "opt/global_search.hpp"
#include "opt/thread_pool.hpp"
#include "pressio/evaluate.hpp"
#include "util/buffer.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

namespace fraz {

namespace {

/// Mix a stream index into the base seed (splitmix-style) so every region /
/// field / step gets an independent but reproducible random stream.
std::uint64_t substream(std::uint64_t seed, std::uint64_t index) {
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ull * (index + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

Status warm_archive_probe(pressio::Compressor& compressor, const ArrayView& data,
                          double bound, double target_ratio, double epsilon, Buffer& out,
                          WarmArchive& result) noexcept {
  try {
    compressor.set_error_bound(bound);
  } catch (...) {
    return status_from_current_exception();
  }
  const Status s = compressor.compress_into(data, out);
  if (!s.ok()) return s;
  result.ratio = static_cast<double>(data.size_bytes()) / static_cast<double>(out.size());
  result.in_band = ratio_acceptable(result.ratio, target_ratio, epsilon);
  return Status();
}

Tuner::Tuner(const pressio::Compressor& prototype, TunerConfig config)
    : prototype_(prototype.clone()), config_(config) {
  require(config_.target_ratio > 1.0, "Tuner: target_ratio must exceed 1");
  require(config_.epsilon > 0 && config_.epsilon < 1, "Tuner: epsilon in (0, 1)");
  require(config_.regions >= 1, "Tuner: regions must be >= 1");
  require(config_.overlap >= 0 && config_.overlap < 1, "Tuner: overlap in [0, 1)");
  require(config_.max_evals_per_region >= 1, "Tuner: max_evals_per_region >= 1");
}

Region Tuner::search_range(const ArrayView& data) const {
  double hi = config_.max_error_bound;
  if (hi <= 0) {
    hi = value_range(data);
    if (hi <= 0) hi = 1.0;  // constant field: any bound behaves the same
  }
  double lo = config_.min_error_bound;
  if (lo <= 0) lo = hi * 1e-9;
  require(lo < hi, "Tuner: min_error_bound must be below max_error_bound");
  return Region{lo, hi};
}

TuneResult Tuner::tune(const ArrayView& data) const {
  require(prototype_->supports_dims(data.dims()),
          "Tuner: compressor '" + prototype_->name() + "' does not support this rank");
  Timer timer;
  const Region range = search_range(data);
  // Optionally work in log(bound) space: the region split and the global
  // search then resolve every decade of the bound axis equally well.
  const bool log_scale = config_.log_scale_search;
  const double search_lo = log_scale ? std::log(range.lo) : range.lo;
  const double search_hi = log_scale ? std::log(range.hi) : range.hi;
  auto to_bound = [log_scale](double x) { return log_scale ? std::exp(x) : x; };
  const auto regions =
      make_error_bound_regions(search_lo, search_hi, config_.regions, config_.overlap);
  const double cutoff = loss_cutoff(config_.target_ratio, config_.epsilon);

  CancelToken token;
  std::atomic<int> total_calls{0};

  // One task per region (paper Alg. 2): each clones the compressor, runs the
  // cutoff-modified global search on its sub-range, and trips the shared
  // cancellation token on success so outstanding work stops early.
  auto run_region = [&](std::size_t index) -> RegionOutcome {
    RegionOutcome outcome;
    // Report the region in bound units even when searching in log space.
    outcome.region = Region{to_bound(regions[index].lo), to_bound(regions[index].hi)};
    if (token.cancelled()) {
      outcome.cancelled = true;
      return outcome;
    }
    const pressio::CompressorPtr compressor = prototype_->clone();

    // One grow-only scratch per region, reused across every probe of this
    // worker's search: after the first (largest) archive the inner loop
    // performs no per-iteration output allocation.
    Buffer scratch;
    double best_dist = std::numeric_limits<double>::infinity();
    auto objective = [&](double x) {
      const double bound = to_bound(x);
      compressor->set_error_bound(bound);
      const auto probe = pressio::probe_ratio(*compressor, data, scratch);
      ++total_calls;
      ++outcome.compress_calls;
      const double dist = std::abs(probe.ratio - config_.target_ratio);
      if (dist < best_dist) {
        best_dist = dist;
        outcome.best_bound = bound;
        outcome.best_ratio = probe.ratio;
      }
      return ratio_loss(probe.ratio, config_.target_ratio);
    };

    opt::SearchOptions search;
    search.max_calls = config_.max_evals_per_region;
    search.cutoff = cutoff;
    search.seed = substream(config_.seed, index);
    search.cancel = &token;
    const opt::SearchResult sr =
        opt::find_min_global(objective, regions[index].lo, regions[index].hi, search);

    outcome.hit_cutoff = sr.hit_cutoff;
    outcome.cancelled = sr.cancelled;
    if (sr.hit_cutoff) token.cancel();
    return outcome;
  };

  std::vector<RegionOutcome> outcomes(regions.size());
  if (config_.threads == 1 || regions.size() == 1) {
    for (std::size_t i = 0; i < regions.size(); ++i) outcomes[i] = run_region(i);
  } else {
    ThreadPool pool(config_.threads == 0
                        ? std::min<unsigned>(static_cast<unsigned>(regions.size()),
                                             std::thread::hardware_concurrency())
                        : std::min<unsigned>(config_.threads,
                                             static_cast<unsigned>(regions.size())));
    std::vector<std::future<RegionOutcome>> futures;
    futures.reserve(regions.size());
    for (std::size_t i = 0; i < regions.size(); ++i)
      futures.push_back(pool.submit([&, i] { return run_region(i); }));
    for (std::size_t i = 0; i < futures.size(); ++i) outcomes[i] = futures[i].get();
  }

  // Result selection: prefer in-band outcomes; otherwise the observation
  // closest to the target ratio across every region (paper Alg. 2 tail).
  TuneResult result;
  result.regions = std::move(outcomes);
  result.compress_calls = total_calls.load();
  double best_dist = std::numeric_limits<double>::infinity();
  for (const RegionOutcome& o : result.regions) {
    if (o.compress_calls == 0) continue;
    const double dist = std::abs(o.best_ratio - config_.target_ratio);
    const bool better =
        (o.hit_cutoff && !result.feasible) || (o.hit_cutoff == result.feasible && dist < best_dist);
    if (better) {
      result.feasible = result.feasible || o.hit_cutoff;
      best_dist = dist;
      result.error_bound = o.best_bound;
      result.achieved_ratio = o.best_ratio;
    }
  }
  result.feasible =
      ratio_acceptable(result.achieved_ratio, config_.target_ratio, config_.epsilon);
  result.seconds = timer.seconds();
  return result;
}

TuneResult Tuner::tune_with_prediction(const ArrayView& data, double predicted_bound) const {
  // Algorithm 1: when a prediction is available, try it before any training.
  if (predicted_bound > 0) {
    Timer timer;
    // Cross-call scratch: steady-state series (every step a warm hit) must
    // not allocate a fresh archive per step.  thread_local keeps the const
    // API and the clone-per-worker threading model intact.
    thread_local Buffer scratch;
    const pressio::CompressorPtr compressor = prototype_->clone();
    compressor->set_error_bound(predicted_bound);
    const auto probe = pressio::probe_ratio(*compressor, data, scratch);
    if (ratio_acceptable(probe.ratio, config_.target_ratio, config_.epsilon)) {
      TuneResult result;
      result.error_bound = predicted_bound;
      result.achieved_ratio = probe.ratio;
      result.feasible = true;
      result.from_prediction = true;
      result.compress_calls = 1;
      result.seconds = timer.seconds();
      return result;
    }
    TuneResult result = tune(data);
    result.compress_calls += 1;       // account for the failed prediction probe
    result.seconds = timer.seconds();  // total including the probe
    return result;
  }
  return tune(data);
}

SeriesResult Tuner::tune_series(const std::vector<ArrayView>& steps) const {
  require(!steps.empty(), "Tuner::tune_series: no time steps");
  SeriesResult series;
  Timer timer;
  double prediction = 0;  // p in Algorithm 3; 0 = none yet
  for (const ArrayView& step : steps) {
    StepOutcome outcome;
    outcome.result = tune_with_prediction(step, prediction);
    outcome.retrained = !outcome.result.from_prediction;
    if (outcome.retrained) ++series.retrain_count;
    // Algorithm 3 line 5-7: carry the bound forward only when it satisfied
    // the acceptance band.
    if (outcome.result.feasible) prediction = outcome.result.error_bound;
    series.total_compress_calls += outcome.result.compress_calls;
    series.steps.push_back(std::move(outcome));
  }
  series.seconds = timer.seconds();
  return series;
}

std::map<std::string, SeriesResult> Tuner::tune_fields(
    const std::map<std::string, std::vector<ArrayView>>& fields) const {
  require(!fields.empty(), "Tuner::tune_fields: no fields");
  // Fields are embarrassingly parallel (paper Alg. 3); each gets a pool slot.
  // Region-level parallelism inside each field stays enabled, so total thread
  // count is fields x regions — acceptable oversubscription, as the tasks are
  // compression-bound.
  ThreadPool pool(config_.threads == 0
                      ? std::min<unsigned>(static_cast<unsigned>(fields.size()),
                                           std::thread::hardware_concurrency())
                      : std::min<unsigned>(config_.threads,
                                           static_cast<unsigned>(fields.size())));
  std::map<std::string, std::future<SeriesResult>> futures;
  for (const auto& [name, steps] : fields) {
    const auto* steps_ptr = &steps;
    futures.emplace(name, pool.submit([this, steps_ptr] { return tune_series(*steps_ptr); }));
  }
  std::map<std::string, SeriesResult> results;
  for (auto& [name, future] : futures) results.emplace(name, future.get());
  return results;
}

}  // namespace fraz
