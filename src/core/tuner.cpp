#include "core/tuner.hpp"

#include <algorithm>
#include <cmath>
#include <future>
#include <limits>

#include "opt/global_search.hpp"
#include "opt/thread_pool.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

namespace fraz {

namespace {

/// Mix a stream index into the base seed (splitmix-style) so every region /
/// field / step gets an independent but reproducible random stream.
std::uint64_t substream(std::uint64_t seed, std::uint64_t index) {
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ull * (index + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

Status warm_archive_probe(pressio::Compressor& compressor, const ArrayView& data,
                          double bound, double target_ratio, double epsilon, Buffer& out,
                          WarmArchive& result) noexcept {
  try {
    compressor.set_error_bound(bound);
  } catch (...) {
    return status_from_current_exception();
  }
  const Status s = compressor.compress_into(data, out);
  if (!s.ok()) return s;
  result.ratio = static_cast<double>(data.size_bytes()) / static_cast<double>(out.size());
  result.in_band = ratio_acceptable(result.ratio, target_ratio, epsilon);
  return Status();
}

Tuner::Tuner(const pressio::Compressor& prototype, TunerConfig config)
    : Tuner(prototype, config, std::make_shared<ProbeCache>()) {}

Tuner::Tuner(const pressio::Compressor& prototype, TunerConfig config, ProbeCachePtr cache)
    : prototype_(prototype.clone()),
      config_(config),
      cache_(std::move(cache)),
      executor_(prototype, cache_, config_.threads) {
  require(config_.target_ratio > 1.0, "Tuner: target_ratio must exceed 1");
  require(config_.epsilon > 0 && config_.epsilon < 1, "Tuner: epsilon in (0, 1)");
  require(config_.regions >= 1, "Tuner: regions must be >= 1");
  require(config_.overlap >= 0 && config_.overlap < 1, "Tuner: overlap in [0, 1)");
  require(config_.max_evals_per_region >= 1, "Tuner: max_evals_per_region >= 1");
}

Region Tuner::search_range(const ArrayView& data) const {
  double hi = config_.max_error_bound;
  if (hi <= 0) {
    hi = value_range(data);
    if (hi <= 0) hi = 1.0;  // constant field: any bound behaves the same
  }
  double lo = config_.min_error_bound;
  if (lo <= 0) lo = hi * 1e-9;
  require(lo < hi, "Tuner: min_error_bound must be below max_error_bound");
  return Region{lo, hi};
}

TuneResult Tuner::tune(const ArrayView& data) const {
  return train(data, executor_.context_key(data));
}

TuneResult Tuner::train(const ArrayView& data, std::uint64_t context) const {
  require(prototype_->supports_dims(data.dims()),
          "Tuner: compressor '" + prototype_->name() + "' does not support this rank");
  Timer timer;
  if (prototype_->capabilities().lossless) {
    // A lossless backend (fpc) has a flat ratio curve: the bound never
    // changes the bytes, so one probe reveals the only achievable ratio and
    // a region search would spend its whole budget learning nothing.
    const double bound = search_range(data).hi;
    const ProbeOutcome probe = executor_.probe_ratio(data, context, bound);
    TuneResult result;
    result.error_bound = bound;
    result.achieved_ratio = probe.record.ratio;
    result.feasible =
        ratio_acceptable(probe.record.ratio, config_.target_ratio, config_.epsilon);
    result.compress_calls = 1;
    result.probe_cache_hits = probe.from_cache ? 1 : 0;
    result.seconds = timer.seconds();
    return result;
  }
  const Region range = search_range(data);
  // Optionally work in log(bound) space: the region split and the global
  // search then resolve every decade of the bound axis equally well.
  const bool log_scale = config_.log_scale_search;
  const double search_lo = log_scale ? std::log(range.lo) : range.lo;
  const double search_hi = log_scale ? std::log(range.hi) : range.hi;
  auto to_bound = [log_scale](double x) { return log_scale ? std::exp(x) : x; };
  const auto regions =
      make_error_bound_regions(search_lo, search_hi, config_.regions, config_.overlap);
  const double cutoff = loss_cutoff(config_.target_ratio, config_.epsilon);

  // One ask/tell stepper per region (paper Alg. 2), all advancing in
  // lockstep: each round collects one proposal from every live region,
  // evaluates the batch through the probe executor (dedup cache, shared
  // pool), and feeds the observations back.  The round structure replaces
  // the seed's one-blocked-thread-per-region layout and its racy
  // cancellation: the winner's round is the last round, deterministically,
  // so losing regions no longer drain their full budgets.
  std::vector<opt::SearchState> states;
  states.reserve(regions.size());
  std::vector<RegionOutcome> outcomes(regions.size());
  std::vector<double> best_dist(regions.size(), std::numeric_limits<double>::infinity());
  for (std::size_t i = 0; i < regions.size(); ++i) {
    opt::SearchOptions search;
    search.max_calls = config_.max_evals_per_region;
    search.cutoff = cutoff;
    search.seed = substream(config_.seed, i);
    states.emplace_back(regions[i].lo, regions[i].hi, search);
    // Report the region in bound units even when searching in log space.
    outcomes[i].region = Region{to_bound(regions[i].lo), to_bound(regions[i].hi)};
  }

  std::vector<std::size_t> round_region;
  std::vector<double> round_x, round_bounds;
  bool any_hit = false;
  while (!any_hit) {
    round_region.clear();
    round_x.clear();
    round_bounds.clear();
    for (std::size_t i = 0; i < states.size(); ++i) {
      double x;
      if (!states[i].done() && states[i].ask(x)) {
        round_region.push_back(i);
        round_x.push_back(x);
        round_bounds.push_back(to_bound(x));
      }
    }
    if (round_region.empty()) break;  // every region exhausted its budget

    const std::vector<ProbeOutcome> probes =
        executor_.probe_ratios(data, context, round_bounds);
    for (std::size_t k = 0; k < round_region.size(); ++k) {
      const std::size_t i = round_region[k];
      const double ratio = probes[k].record.ratio;
      states[i].tell(round_x[k], ratio_loss(ratio, config_.target_ratio));
      RegionOutcome& outcome = outcomes[i];
      ++outcome.compress_calls;
      outcome.cache_hits += probes[k].from_cache;
      const double dist = std::abs(ratio - config_.target_ratio);
      if (dist < best_dist[i]) {
        best_dist[i] = dist;
        outcome.best_bound = round_bounds[k];
        outcome.best_ratio = ratio;
      }
      if (states[i].done() && states[i].result().hit_cutoff) {
        outcome.hit_cutoff = true;
        any_hit = true;
      }
    }
  }
  if (any_hit)
    for (std::size_t i = 0; i < states.size(); ++i)
      if (!states[i].done()) outcomes[i].cancelled = true;

  // Result selection: prefer in-band outcomes; otherwise the observation
  // closest to the target ratio across every region (paper Alg. 2 tail).
  TuneResult result;
  result.regions = std::move(outcomes);
  double select_dist = std::numeric_limits<double>::infinity();
  for (const RegionOutcome& o : result.regions) {
    result.compress_calls += o.compress_calls;
    result.probe_cache_hits += o.cache_hits;
    if (o.compress_calls == 0) continue;
    const double dist = std::abs(o.best_ratio - config_.target_ratio);
    const bool better =
        (o.hit_cutoff && !result.feasible) || (o.hit_cutoff == result.feasible && dist < select_dist);
    if (better) {
      result.feasible = result.feasible || o.hit_cutoff;
      select_dist = dist;
      result.error_bound = o.best_bound;
      result.achieved_ratio = o.best_ratio;
    }
  }
  result.feasible =
      ratio_acceptable(result.achieved_ratio, config_.target_ratio, config_.epsilon);
  result.seconds = timer.seconds();
  return result;
}

TuneResult Tuner::tune_with_prediction(const ArrayView& data, double predicted_bound) const {
  // Algorithm 1: when a prediction is available, try it before any training.
  if (predicted_bound > 0) {
    Timer timer;
    const std::uint64_t context = executor_.context_key(data);
    const ProbeOutcome probe = executor_.probe_ratio(data, context, predicted_bound);
    if (ratio_acceptable(probe.record.ratio, config_.target_ratio, config_.epsilon)) {
      TuneResult result;
      result.error_bound = predicted_bound;
      result.achieved_ratio = probe.record.ratio;
      result.feasible = true;
      result.from_prediction = true;
      result.compress_calls = 1;
      result.probe_cache_hits = probe.from_cache ? 1 : 0;
      result.seconds = timer.seconds();
      return result;
    }
    TuneResult result = train(data, context);
    result.compress_calls += 1;       // account for the failed prediction probe
    result.probe_cache_hits += probe.from_cache ? 1 : 0;
    result.seconds = timer.seconds();  // total including the probe
    return result;
  }
  return tune(data);
}

SeriesResult Tuner::tune_series(const std::vector<ArrayView>& steps) const {
  require(!steps.empty(), "Tuner::tune_series: no time steps");
  SeriesResult series;
  Timer timer;
  double prediction = 0;  // p in Algorithm 3; 0 = none yet
  for (const ArrayView& step : steps) {
    StepOutcome outcome;
    outcome.result = tune_with_prediction(step, prediction);
    outcome.retrained = !outcome.result.from_prediction;
    if (outcome.retrained) ++series.retrain_count;
    // Algorithm 3 line 5-7: carry the bound forward only when it satisfied
    // the acceptance band.
    if (outcome.result.feasible) prediction = outcome.result.error_bound;
    series.total_compress_calls += outcome.result.compress_calls;
    series.total_probe_cache_hits += outcome.result.probe_cache_hits;
    series.steps.push_back(std::move(outcome));
  }
  series.seconds = timer.seconds();
  return series;
}

std::map<std::string, SeriesResult> Tuner::tune_fields(
    const std::map<std::string, std::vector<ArrayView>>& fields) const {
  require(!fields.empty(), "Tuner::tune_fields: no fields");
  // Fields stay embarrassingly parallel (paper Alg. 3) on a dedicated pool;
  // the probe batches they generate all funnel through the shared thread
  // pool, so total probe concurrency is hardware-bounded instead of
  // fields x regions.
  ThreadPool pool(config_.threads == 0
                      ? std::min<unsigned>(static_cast<unsigned>(fields.size()),
                                           std::thread::hardware_concurrency())
                      : std::min<unsigned>(config_.threads,
                                           static_cast<unsigned>(fields.size())));
  std::map<std::string, std::future<SeriesResult>> futures;
  for (const auto& [name, steps] : fields) {
    const auto* steps_ptr = &steps;
    futures.emplace(name, pool.submit([this, steps_ptr] { return tune_series(*steps_ptr); }));
  }
  std::map<std::string, SeriesResult> results;
  for (auto& [name, future] : futures) results.emplace(name, future.get());
  return results;
}

}  // namespace fraz
