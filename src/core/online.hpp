#ifndef FRAZ_CORE_ONLINE_HPP
#define FRAZ_CORE_ONLINE_HPP

/// \file online.hpp
/// The paper's second future-work item (§VII): an online version of FRaZ
/// providing "in situ fixed-ratio compression for simulation and instrument
/// data".
///
/// OnlineTuner wraps the batch tuner behind a push API: each arriving frame
/// is compressed at the carried-forward bound when that still lands in the
/// acceptance band (one compressor call — the fast path), and retrained
/// otherwise.  It additionally keeps drift statistics so operators can see
/// *when* the stream changed character, which the offline Algorithm 3 has no
/// place to report.

#include <cstddef>
#include <vector>

#include "core/tuner.hpp"
#include "util/buffer.hpp"
#include "util/status.hpp"

namespace fraz {

/// Streaming statistics of an OnlineTuner.
struct OnlineStats {
  std::size_t frames = 0;
  std::size_t retrains = 0;
  std::size_t frames_in_band = 0;
  int total_compress_calls = 0;
  /// Tuning probes served by the persistent probe cache (retrains on data
  /// the stream has already measured cost nothing).
  int probe_cache_hits = 0;
  /// Achieved ratio of the most recent frame.
  double last_ratio = 0;
  /// Exponential moving average of the achieved ratio (alpha = 0.2).
  double ratio_ema = 0;
};

/// In-situ fixed-ratio tuner: push frames as they arrive.
class OnlineTuner {
public:
  /// \param prototype compressor to tune (cloned internally).
  /// \param config same knobs as the batch Tuner.
  OnlineTuner(const pressio::Compressor& prototype, TunerConfig config);

  /// Process one arriving frame: probe the carried bound, retrain on drift.
  /// Returns the per-frame outcome (same shape as the batch API's steps).
  StepOutcome push(const ArrayView& frame);

  /// In-situ fast path: tune (reusing the carried bound) AND produce the
  /// frame's archive in the caller's reusable \p out — the deliverable a
  /// streaming deployment actually ships to storage.  On the warm path the
  /// archive itself is the acceptance probe, so an in-band frame costs
  /// exactly ONE compression.  Non-throwing.  On a non-ok Status \p out is
  /// unspecified and no archive was produced; if the failure struck after a
  /// retrain completed, the stream statistics still count the tuned frame.
  /// \p outcome (optional) receives the same per-frame detail as push().
  Status push_into(const ArrayView& frame, Buffer& out, StepOutcome* outcome = nullptr);

  /// The bound that will be probed first for the next frame (0 before any
  /// successful frame).
  double carried_bound() const noexcept { return prediction_; }

  /// Aggregate statistics since construction or the last reset().
  const OnlineStats& stats() const noexcept { return stats_; }

  /// Forget the carried bound and statistics (e.g. at a simulation restart).
  void reset();

private:
  /// Fold one frame's outcome into the carried bound and statistics.
  void commit(const StepOutcome& outcome);

  Tuner tuner_;
  pressio::CompressorPtr archiver_;  ///< dedicated clone for push_into archives
  double prediction_ = 0;
  OnlineStats stats_;
};

}  // namespace fraz

#endif  // FRAZ_CORE_ONLINE_HPP
