#include "core/online.hpp"

#include "util/timer.hpp"

namespace fraz {

OnlineTuner::OnlineTuner(const pressio::Compressor& prototype, TunerConfig config)
    : tuner_(prototype, config), archiver_(prototype.clone()) {}

void OnlineTuner::commit(const StepOutcome& outcome) {
  // Algorithm 3's carry rule: only a bound that satisfied the band is worth
  // reusing on the next frame.
  if (outcome.result.feasible) prediction_ = outcome.result.error_bound;

  ++stats_.frames;
  stats_.retrains += outcome.retrained;
  stats_.frames_in_band += outcome.result.feasible;
  stats_.total_compress_calls += outcome.result.compress_calls;
  stats_.probe_cache_hits += outcome.result.probe_cache_hits;
  stats_.last_ratio = outcome.result.achieved_ratio;
  stats_.ratio_ema = stats_.frames == 1
                         ? outcome.result.achieved_ratio
                         : 0.8 * stats_.ratio_ema + 0.2 * outcome.result.achieved_ratio;
}

StepOutcome OnlineTuner::push(const ArrayView& frame) {
  StepOutcome outcome;
  outcome.result = tuner_.tune_with_prediction(frame, prediction_);
  outcome.retrained = !outcome.result.from_prediction;
  commit(outcome);
  return outcome;
}

Status OnlineTuner::push_into(const ArrayView& frame, Buffer& out, StepOutcome* outcome) {
  try {
    const TunerConfig& cfg = tuner_.config();
    bool drift_probe = false;  // warm archive missed the band

    // Warm path: compress at the carried bound and let the archive itself be
    // the acceptance probe (one compression per in-band frame).  Nothing is
    // committed until the archive exists, so a failure here leaves the
    // stream state untouched.
    if (prediction_ > 0) {
      Timer timer;
      WarmArchive warm;
      const Status s = warm_archive_probe(*archiver_, frame, prediction_, cfg.target_ratio,
                                          cfg.epsilon, out, warm);
      if (!s.ok()) return s;
      if (warm.in_band) {
        StepOutcome step;
        step.result.error_bound = prediction_;
        step.result.achieved_ratio = warm.ratio;
        step.result.feasible = true;
        step.result.from_prediction = true;
        step.result.compress_calls = 1;
        step.result.seconds = timer.seconds();
        step.retrained = false;
        commit(step);
        if (outcome != nullptr) *outcome = std::move(step);
        return Status();
      }
      drift_probe = true;  // the rare, expensive path: full retraining below
    }

    StepOutcome step;
    if (drift_probe) {
      // The warm archive already measured the carried bound out-of-band, so
      // train from scratch instead of letting tune_with_prediction re-probe
      // the identical (deterministic) bound; count the warm archive as the
      // failed prediction probe it effectively was.
      step.result = tuner_.tune(frame);
      step.result.compress_calls += 1;
      step.retrained = true;
      commit(step);
    } else {
      step = push(frame);
    }
    archiver_->set_error_bound(step.result.error_bound);
    const Status s = archiver_->compress_into(frame, out);
    if (!s.ok()) return s;
    ++stats_.total_compress_calls;  // the archive pass itself
    if (outcome != nullptr) *outcome = std::move(step);
    return Status();
  } catch (...) {
    return status_from_current_exception();
  }
}

void OnlineTuner::reset() {
  prediction_ = 0;
  stats_ = OnlineStats{};
}

}  // namespace fraz
