#include "core/online.hpp"

namespace fraz {

OnlineTuner::OnlineTuner(const pressio::Compressor& prototype, TunerConfig config)
    : tuner_(prototype, config) {}

StepOutcome OnlineTuner::push(const ArrayView& frame) {
  StepOutcome outcome;
  outcome.result = tuner_.tune_with_prediction(frame, prediction_);
  outcome.retrained = !outcome.result.from_prediction;

  // Algorithm 3's carry rule: only a bound that satisfied the band is worth
  // reusing on the next frame.
  if (outcome.result.feasible) prediction_ = outcome.result.error_bound;

  ++stats_.frames;
  stats_.retrains += outcome.retrained;
  stats_.frames_in_band += outcome.result.feasible;
  stats_.total_compress_calls += outcome.result.compress_calls;
  stats_.last_ratio = outcome.result.achieved_ratio;
  stats_.ratio_ema = stats_.frames == 1
                         ? outcome.result.achieved_ratio
                         : 0.8 * stats_.ratio_ema + 0.2 * outcome.result.achieved_ratio;
  return outcome;
}

void OnlineTuner::reset() {
  prediction_ = 0;
  stats_ = OnlineStats{};
}

}  // namespace fraz
