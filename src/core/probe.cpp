#include "core/probe.hpp"

#include <algorithm>
#include <cstring>
#include <exception>
#include <future>
#include <thread>

#include "metrics/error_stats.hpp"
#include "metrics/ssim.hpp"
#include "opt/thread_pool.hpp"
#include "telemetry/telemetry.hpp"
#include "util/error.hpp"
#include "util/status.hpp"

namespace fraz {

namespace {

telemetry::Counter& probes_executed_counter() {
  static telemetry::Counter& c = telemetry::global().counter("tune.probes_executed");
  return c;
}

telemetry::Counter& probe_cache_hits_counter() {
  static telemetry::Counter& c = telemetry::global().counter("tune.probe_cache_hits");
  return c;
}

telemetry::Counter& probes_deduped_counter() {
  static telemetry::Counter& c = telemetry::global().counter("tune.probes_deduped");
  return c;
}

/// SplitMix64-style finalizer: every key-combining step funnels through this
/// so nearby inputs (consecutive bounds, one-bit data edits) land far apart.
std::uint64_t mix64(std::uint64_t z) noexcept {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// Word-at-a-time 64-bit content hash (FNV-flavoured with a strong
/// finalizer).  Collision odds at cache scale (<= 2^16 entries) are
/// negligible, and a collision costs a wrong cached ratio — so the full
/// content is hashed, never a sample.
std::uint64_t hash_bytes(const void* data, std::size_t size, std::uint64_t seed) noexcept {
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::uint64_t h = seed ^ (0x9e3779b97f4a7c15ull * (size + 1));
  std::size_t i = 0;
  for (; i + 8 <= size; i += 8) {
    std::uint64_t w;
    std::memcpy(&w, p + i, 8);
    h = mix64(h ^ w) + 0x2545f4914f6cdd1dull;
  }
  if (i < size) {
    std::uint64_t w = 0;
    std::memcpy(&w, p + i, size - i);
    h = mix64(h ^ w) + 0x2545f4914f6cdd1dull;
  }
  return mix64(h);
}

std::uint64_t hash_string(const std::string& s, std::uint64_t seed) noexcept {
  return hash_bytes(s.data(), s.size(), seed);
}

std::uint64_t double_bits(double v) noexcept {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  return bits;
}

}  // namespace

std::uint64_t data_fingerprint(const ArrayView& data) noexcept {
  std::uint64_t h = mix64(static_cast<std::uint64_t>(data.dtype()) + 0x64617461ull);
  for (const std::size_t extent : data.shape()) h = mix64(h ^ extent);
  const std::size_t size = data.size_bytes();
  if (size <= kFingerprintFullPassBytes) return hash_bytes(data.data(), size, h);
  // Strided sampling (contract in probe.hpp): total length plus evenly
  // spaced windows, first at offset 0, last flush against the end.  Each
  // window is seeded with its offset so swapping two equal-content windows
  // still changes the key.
  const auto* bytes = static_cast<const std::uint8_t*>(data.data());
  h = mix64(h ^ size);
  const std::size_t last_start = size - kFingerprintWindowBytes;
  for (std::size_t w = 0; w < kFingerprintWindows; ++w) {
    const std::size_t start = last_start * w / (kFingerprintWindows - 1);
    h = hash_bytes(bytes + start, kFingerprintWindowBytes, mix64(h ^ start));
  }
  return h;
}

std::uint64_t compressor_fingerprint(const pressio::Compressor& compressor) {
  std::uint64_t h = hash_string(compressor.name(), 0x636f6e66ull);
  for (const auto& [key, value] : compressor.get_options()) {
    h = hash_string(key, h);
    h = mix64(h ^ value.index());
    if (const auto* b = std::get_if<bool>(&value))
      h = mix64(h ^ static_cast<std::uint64_t>(*b));
    else if (const auto* i = std::get_if<std::int64_t>(&value))
      h = mix64(h ^ static_cast<std::uint64_t>(*i));
    else if (const auto* d = std::get_if<double>(&value))
      h = mix64(h ^ double_bits(*d));
    else
      h = hash_string(std::get<std::string>(value), h);
  }
  return h;
}

// -------------------------------------------------------------- ProbeCache

ProbeCache::ProbeCache(std::size_t max_entries)
    : generation_budget_(std::max<std::size_t>(max_entries / 2, 1)) {}

std::uint64_t ProbeCache::slot(std::uint64_t context, double bound) noexcept {
  return mix64(context ^ double_bits(bound));
}

void ProbeCache::rotate_if_full_locked() const {
  if (current_.size() < generation_budget_) return;
  previous_ = std::move(current_);
  current_.clear();
}

bool ProbeCache::lookup(std::uint64_t context, double bound, ProbeRecord& out) const noexcept {
  LockGuard lock(mutex_);
  const std::uint64_t key = slot(context, bound);
  auto it = current_.find(key);
  if (it == current_.end()) {
    const auto prev = previous_.find(key);
    if (prev == previous_.end()) {
      ++misses_;
      return false;
    }
    // A hit in the old generation means the entry is hot again — promote it
    // so the next rotation cannot drop it.
    const ProbeRecord record = prev->second;
    previous_.erase(prev);
    rotate_if_full_locked();
    it = current_.emplace(key, record).first;
  }
  ++hits_;
  out = it->second;
  return true;
}

void ProbeCache::insert(std::uint64_t context, double bound, const ProbeRecord& record) {
  LockGuard lock(mutex_);
  const std::uint64_t key = slot(context, bound);
  // Rotate first, then purge: one key must never live in both generations
  // (a rotation could carry a stale copy of this key into previous_, where
  // it would shadow the fresh observation after the next rotation and
  // double-count in stats).
  rotate_if_full_locked();
  previous_.erase(key);
  current_[key] = record;
}

ProbeCache::Stats ProbeCache::stats() const noexcept {
  LockGuard lock(mutex_);
  return Stats{hits_, misses_, current_.size() + previous_.size()};
}

void ProbeCache::clear() noexcept {
  LockGuard lock(mutex_);
  current_.clear();
  previous_.clear();
}

// ----------------------------------------------------------- ProbeExecutor

ProbeExecutor::ProbeExecutor(const pressio::Compressor& prototype, ProbeCachePtr cache,
                             unsigned threads)
    : prototype_(prototype.clone()),
      config_fingerprint_(compressor_fingerprint(prototype)),
      cache_(std::move(cache)),
      threads_(threads == 0 ? std::max(1u, std::thread::hardware_concurrency()) : threads),
      probe_span_name_("tune.probe_us." + prototype.name()),
      probe_hist_backend_(&telemetry::global().histogram(probe_span_name_)),
      probes_executed_backend_(
          &telemetry::global().counter("tune.probes_executed." + prototype.name())),
      cache_hits_backend_(
          &telemetry::global().counter("tune.probe_cache_hits." + prototype.name())) {
  require(cache_ != nullptr, "ProbeExecutor: cache must not be null");
}

std::uint64_t ProbeExecutor::context_key(const ArrayView& data) const noexcept {
  return mix64(config_fingerprint_ ^ data_fingerprint(data));
}

std::unique_ptr<ProbeExecutor::Context> ProbeExecutor::checkout() {
  {
    LockGuard lock(mutex_);
    if (!idle_.empty()) {
      auto context = std::move(idle_.back());
      idle_.pop_back();
      return context;
    }
  }
  auto context = std::make_unique<Context>();
  context->compressor = prototype_->clone();
  return context;
}

void ProbeExecutor::checkin(std::unique_ptr<Context> context) {
  LockGuard lock(mutex_);
  idle_.push_back(std::move(context));
}

ProbeRecord ProbeExecutor::execute_ratio(Context& context, const ArrayView& data,
                                         double bound) {
  TELEM_SPAN("tune.probe_us");
  telemetry::SpanTimer backend_span(*probe_hist_backend_, probe_span_name_.c_str());
  context.compressor->set_error_bound(bound);
  const Status s = context.compressor->compress_into(data, context.scratch);
  if (!s.ok()) throw_status(s);
  ProbeRecord record;
  record.ratio = static_cast<double>(data.size_bytes()) /
                 static_cast<double>(context.scratch.size());
  probes_executed_counter().add();
  probes_executed_backend_->add();
  return record;
}

std::vector<ProbeOutcome> ProbeExecutor::probe_ratios(const ArrayView& data,
                                                      std::uint64_t context,
                                                      const std::vector<double>& bounds) {
  std::vector<ProbeOutcome> out(bounds.size());

  // Partition the batch: cache hits are answered immediately; the first
  // occurrence of each novel bound becomes a miss to execute; repeats of a
  // miss within the batch wait for that execution.
  struct Miss {
    std::size_t index;
    double bound;
  };
  std::vector<Miss> misses;
  std::vector<std::pair<std::size_t, std::size_t>> repeats;  // (index, miss slot)
  std::unordered_map<std::uint64_t, std::size_t> batch_first;  // bound bits -> miss slot
  std::size_t hits = 0;
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    ProbeRecord cached;
    if (cache_->lookup(context, bounds[i], cached)) {
      out[i] = ProbeOutcome{cached, true};
      ++hits;
      continue;
    }
    const auto [it, fresh] = batch_first.try_emplace(double_bits(bounds[i]), misses.size());
    if (fresh) {
      misses.push_back(Miss{i, bounds[i]});
    } else {
      repeats.emplace_back(i, it->second);
      ++hits;
    }
  }

  if (!misses.empty()) {
    std::vector<ProbeRecord> records(misses.size());
    if (threads_ <= 1 || misses.size() == 1) {
      auto worker = checkout();
      for (std::size_t m = 0; m < misses.size(); ++m)
        records[m] = execute_ratio(*worker, data, misses[m].bound);
      checkin(std::move(worker));
    } else {
      // Contiguous groups capped at the executor's thread budget; group 0
      // runs on the calling thread so a waiting caller always contributes.
      const std::size_t groups =
          std::min<std::size_t>(threads_, misses.size());
      auto run_group = [&](std::size_t g) {
        auto worker = checkout();
        for (std::size_t m = g; m < misses.size(); m += groups)
          records[m] = execute_ratio(*worker, data, misses[m].bound);
        checkin(std::move(worker));
      };
      std::vector<std::future<void>> pending;
      pending.reserve(groups - 1);
      for (std::size_t g = 1; g < groups; ++g)
        pending.push_back(shared_thread_pool().submit([&run_group, g] { run_group(g); }));
      std::exception_ptr first_error;
      try {
        run_group(0);
      } catch (...) {
        first_error = std::current_exception();
      }
      for (auto& f : pending) {
        try {
          f.get();
        } catch (...) {
          if (!first_error) first_error = std::current_exception();
        }
      }
      if (first_error) std::rethrow_exception(first_error);
    }
    for (std::size_t m = 0; m < misses.size(); ++m) {
      cache_->insert(context, misses[m].bound, records[m]);
      out[misses[m].index] = ProbeOutcome{records[m], false};
    }
  }
  for (const auto& [index, slot] : repeats)
    out[index] = ProbeOutcome{out[misses[slot].index].record, true};

  // `hits` folds genuine cache hits and in-batch repeats together (that is
  // the executor's contract); telemetry splits them so dedup savings are
  // visible separately from cache reuse.
  probe_cache_hits_counter().add(hits - repeats.size());
  cache_hits_backend_->add(hits - repeats.size());
  probes_deduped_counter().add(repeats.size());

  LockGuard lock(mutex_);
  executed_ += misses.size();
  cache_hits_ += hits;
  return out;
}

ProbeOutcome ProbeExecutor::probe_ratio(const ArrayView& data, std::uint64_t context,
                                        double bound) {
  ProbeRecord cached;
  if (cache_->lookup(context, bound, cached)) {
    probe_cache_hits_counter().add();
    cache_hits_backend_->add();
    LockGuard lock(mutex_);
    ++cache_hits_;
    return ProbeOutcome{cached, true};
  }
  auto worker = checkout();
  ProbeRecord record;
  try {
    record = execute_ratio(*worker, data, bound);
  } catch (...) {
    checkin(std::move(worker));
    throw;
  }
  checkin(std::move(worker));
  cache_->insert(context, bound, record);
  LockGuard lock(mutex_);
  ++executed_;
  return ProbeOutcome{record, false};
}

ProbeOutcome ProbeExecutor::probe_quality(const ArrayView& data, std::uint64_t context,
                                          double bound, QualityMetric metric) {
  // Quality observations live under a metric-tagged key so a ratio probe at
  // the same bound can never masquerade as a quality measurement.
  const std::uint64_t tagged =
      mix64(context ^ (0x7175616cull + static_cast<std::uint64_t>(metric)));
  ProbeRecord cached;
  if (cache_->lookup(tagged, bound, cached)) {
    probe_cache_hits_counter().add();
    cache_hits_backend_->add();
    LockGuard lock(mutex_);
    ++cache_hits_;
    return ProbeOutcome{cached, true};
  }
  auto worker = checkout();
  ProbeRecord record;
  try {
    TELEM_SPAN("tune.probe_us");
    telemetry::SpanTimer backend_span(*probe_hist_backend_, probe_span_name_.c_str());
    worker->compressor->set_error_bound(bound);
    Status s = worker->compressor->compress_into(data, worker->scratch);
    if (!s.ok()) throw_status(s);
    s = worker->compressor->decompress_into(worker->scratch.data(), worker->scratch.size(),
                                            worker->decoded);
    if (!s.ok()) throw_status(s);
    record.ratio = static_cast<double>(data.size_bytes()) /
                   static_cast<double>(worker->scratch.size());
    record.quality = metric == QualityMetric::kPsnrDb
                         ? error_stats(data, worker->decoded.view()).psnr_db
                         : ssim(data, worker->decoded.view());
  } catch (...) {
    checkin(std::move(worker));
    throw;
  }
  checkin(std::move(worker));
  cache_->insert(tagged, bound, record);
  probes_executed_counter().add();
  probes_executed_backend_->add();
  LockGuard lock(mutex_);
  ++executed_;
  return ProbeOutcome{record, false};
}

std::size_t ProbeExecutor::executed() const noexcept {
  LockGuard lock(mutex_);
  return executed_;
}

std::size_t ProbeExecutor::cache_hits() const noexcept {
  LockGuard lock(mutex_);
  return cache_hits_;
}

}  // namespace fraz
