#ifndef FRAZ_CORE_REGIONS_HPP
#define FRAZ_CORE_REGIONS_HPP

/// \file regions.hpp
/// Error-bound range decomposition (paper §V-C, Fig. 5): the search interval
/// [lo, hi] is split into K regions that overlap by a fixed fraction α of the
/// region width, so a target sitting exactly on a region border is interior
/// to its neighbour — without the overlap, that rank "iterates longer lacking
/// stationary points for quadratic refinement" (paper).  The first and last
/// regions are slightly smaller so the union still equals [lo, hi].

#include <vector>

namespace fraz {

/// One error-bound search region.
struct Region {
  double lo;
  double hi;
};

/// Split [lo, hi] into \p count regions with overlap fraction \p alpha
/// (default 10%, the paper's choice).  Requires lo < hi, count >= 1,
/// 0 <= alpha < 1.
std::vector<Region> make_error_bound_regions(double lo, double hi, int count,
                                             double alpha = 0.1);

}  // namespace fraz

#endif  // FRAZ_CORE_REGIONS_HPP
