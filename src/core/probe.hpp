#ifndef FRAZ_CORE_PROBE_HPP
#define FRAZ_CORE_PROBE_HPP

/// \file probe.hpp
/// The shared probe layer under every tuner: one place that spends
/// compressor evaluations, batched onto the shared thread pool and
/// deduplicated through a cache keyed by (data fingerprint, compressor
/// configuration, error bound).
///
/// The paper observes that probe evaluations dominate tuning cost and that
/// overlapping regions re-evaluate the same bounds (§V-C).  Before this
/// layer, four independent loops — the batch Tuner, the quality tuner, the
/// online tuner, and the archive pipeline's per-chunk engines — each paid
/// their own probes and held their own scratch.  Now the Tuner drives
/// ask/tell SearchStates in lockstep rounds and submits one probe batch per
/// round; identical (data, config, bound) triples anywhere in the process
/// cost exactly one compression, and a deterministic backend makes a cached
/// ratio indistinguishable from a fresh one — so caching can never change a
/// tuned bound, only the number of compressions spent reaching it.

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "ndarray/ndarray.hpp"
#include "pressio/compressor.hpp"
#include "util/buffer.hpp"
#include "util/thread_annotations.hpp"

namespace fraz {

namespace telemetry {
class Counter;
class Histogram;
}  // namespace telemetry

/// Fidelity metric a quality probe can measure (used by tune_for_quality).
enum class QualityMetric {
  kPsnrDb,  ///< peak signal-to-noise ratio in dB (higher = better)
  kSsim,    ///< structural similarity in [0, 1] (higher = better); 2D/3D only
};

/// Strided-fingerprint contract (data_fingerprint below): buffers at most
/// this large hash every byte; larger ones hash the total length plus
/// kFingerprintWindows evenly spaced kFingerprintWindowBytes-byte windows,
/// the first anchored at offset 0 and the last ending at the final byte.
inline constexpr std::size_t kFingerprintFullPassBytes = 1u << 20;
inline constexpr std::size_t kFingerprintWindows = 64;
inline constexpr std::size_t kFingerprintWindowBytes = 256;

/// 64-bit content fingerprint of an array: dtype, shape, and the data.
/// Buffers up to kFingerprintFullPassBytes are hashed in full; larger ones
/// are sampled per the strided contract above, so the cost is bounded
/// (~16 KiB of reads) no matter how large the probe input grows.  Two
/// buffers that differ only in bytes outside the sampled windows therefore
/// collide BY DESIGN — acceptable for the probe cache, whose entries are
/// keyed per (compressor config, bound) and whose worst case is a stale
/// ratio estimate, never a correctness failure.
std::uint64_t data_fingerprint(const ArrayView& data) noexcept;

/// Fingerprint of a compressor's identity and configuration (name plus the
/// full option map).  The probe axis — the error bound — is keyed
/// separately, so a prototype's current bound setting does not matter.
std::uint64_t compressor_fingerprint(const pressio::Compressor& compressor);

/// One cached probe observation.
struct ProbeRecord {
  double ratio = 0;       ///< raw bytes / compressed bytes at the probed bound
  double quality = 0;     ///< metric value (quality probes only; else 0)
};

/// Thread-safe dedup cache of probe observations.  Bounded by a
/// two-generation scheme: entries live in a *current* generation; when that
/// generation reaches half the budget it becomes the *previous* generation
/// (dropping whatever the old previous one still held), and a hit in the
/// previous generation promotes the entry back into the current one.  An
/// entry touched at least once per generation therefore survives
/// indefinitely, while cold entries age out — long multi-field campaigns
/// keep their hot probes instead of losing everything to a wholesale clear.
/// Eviction is deterministic (driven purely by the insert sequence) and can
/// never change a tuned bound, only the number of compressions spent.
class ProbeCache {
public:
  explicit ProbeCache(std::size_t max_entries = 1u << 16);

  /// Look up the record for (context key, bound[, metric tag]); true on hit.
  /// A hit in the previous generation promotes the entry.
  bool lookup(std::uint64_t context, double bound, ProbeRecord& out) const noexcept;
  /// Insert an observation (overwrites an identical key).
  void insert(std::uint64_t context, double bound, const ProbeRecord& record);

  struct Stats {
    std::size_t hits = 0;
    std::size_t misses = 0;
    std::size_t entries = 0;
  };
  Stats stats() const noexcept;
  void clear() noexcept;

private:
  static std::uint64_t slot(std::uint64_t context, double bound) noexcept;
  /// Rotate generations once the current one fills its half-budget.
  void rotate_if_full_locked() const FRAZ_REQUIRES(mutex_);

  mutable Mutex mutex_;
  // lookup() promotes hot entries, so both generations mutate under a const
  // interface; the mutex makes that promotion safe.
  mutable std::unordered_map<std::uint64_t, ProbeRecord> current_
      FRAZ_GUARDED_BY(mutex_);
  mutable std::unordered_map<std::uint64_t, ProbeRecord> previous_
      FRAZ_GUARDED_BY(mutex_);
  std::size_t generation_budget_;  ///< max entries per generation (half the total)
  mutable std::size_t hits_ FRAZ_GUARDED_BY(mutex_) = 0;
  mutable std::size_t misses_ FRAZ_GUARDED_BY(mutex_) = 0;
};

using ProbeCachePtr = std::shared_ptr<ProbeCache>;

/// One probe's outcome as seen by a search: the observation plus whether the
/// cache (or an identical probe earlier in the same batch) already paid it.
struct ProbeOutcome {
  ProbeRecord record;
  bool from_cache = false;
};

/// Executes probes for one compressor configuration: clones workers on
/// demand (kept in an internal context pool so scratch buffers reach their
/// zero-allocation steady state), batches misses onto the shared thread
/// pool, and consults/feeds the shared ProbeCache.  Thread-safe; one
/// executor may serve concurrent searches over different data.
class ProbeExecutor {
public:
  /// \param prototype cloned once per worker context on demand.
  /// \param cache shared dedup cache (non-null).
  /// \param threads concurrency cap for one batch; 0 = hardware, 1 = inline.
  ProbeExecutor(const pressio::Compressor& prototype, ProbeCachePtr cache,
                unsigned threads);

  /// Cache context key for \p data under this executor's compressor config.
  /// Compute once per search and reuse across its rounds.
  std::uint64_t context_key(const ArrayView& data) const noexcept;

  /// Evaluate ratio probes for one batch of bounds (one search round).
  /// Results are positionally aligned with \p bounds.  Duplicate bounds in
  /// the batch and cache hits cost nothing; misses run concurrently up to
  /// the thread cap on the shared pool.  Throws on compression failure.
  std::vector<ProbeOutcome> probe_ratios(const ArrayView& data, std::uint64_t context,
                                         const std::vector<double>& bounds);

  /// Single ratio probe (prediction / warm paths).
  ProbeOutcome probe_ratio(const ArrayView& data, std::uint64_t context, double bound);

  /// Compress + decompress + metric probe for the quality tuner.  Cached
  /// under a metric-tagged key; record.quality carries the metric value and
  /// record.ratio the compression ratio of the same pass.
  ProbeOutcome probe_quality(const ArrayView& data, std::uint64_t context, double bound,
                             QualityMetric metric);

  const ProbeCachePtr& cache() const noexcept { return cache_; }
  /// Compressor invocations actually spent by this executor.
  std::size_t executed() const noexcept;
  /// Probes served without a compressor invocation.
  std::size_t cache_hits() const noexcept;

private:
  /// Per-worker state: a backend clone plus reusable scratch.
  struct Context {
    pressio::CompressorPtr compressor;
    Buffer scratch;
    NdArray decoded;
  };

  std::unique_ptr<Context> checkout();
  void checkin(std::unique_ptr<Context> context);
  ProbeRecord execute_ratio(Context& context, const ArrayView& data, double bound);

  pressio::CompressorPtr prototype_;
  std::uint64_t config_fingerprint_;
  ProbeCachePtr cache_;
  unsigned threads_;

  // Backend-labeled telemetry handles, resolved once in the constructor from
  // the prototype's name ("tune.probe_us.sz", "tune.probes_executed.szx",
  // ...).  These add a per-backend dimension so probe cost is attributable
  // to the compressor that paid it; the generic unlabeled metrics stay — CI
  // asserts them.  The span name string must outlive every SpanTimer that
  // borrows its c_str(), hence the owned member.
  std::string probe_span_name_;
  telemetry::Histogram* probe_hist_backend_;
  telemetry::Counter* probes_executed_backend_;
  telemetry::Counter* cache_hits_backend_;

  mutable Mutex mutex_;
  std::vector<std::unique_ptr<Context>> idle_ FRAZ_GUARDED_BY(mutex_);
  std::size_t executed_ FRAZ_GUARDED_BY(mutex_) = 0;
  std::size_t cache_hits_ FRAZ_GUARDED_BY(mutex_) = 0;
};

}  // namespace fraz

#endif  // FRAZ_CORE_PROBE_HPP
