#ifndef FRAZ_CORE_TUNER_HPP
#define FRAZ_CORE_TUNER_HPP

/// \file tuner.hpp
/// The FRaZ tuner: the paper's primary contribution.
///
/// Given a black-box error-bounded compressor (any pressio::Compressor), a
/// dataset, and a target compression ratio ρt with acceptance band ε, the
/// tuner finds an error bound e whose achieved ratio ρr(e) satisfies
/// ρt(1−ε) <= ρr(e) <= ρt(1+ε), subject to an optional maximum allowed error
/// bound U.  It implements:
///
/// - **Algorithm 1 (worker task)**: probe a predicted bound first; if it is
///   already acceptable, stop; otherwise run the cutoff-modified global
///   search on the worker's error-bound region.
/// - **Algorithm 2 (training)**: split [lo, U] into K overlapping regions,
///   search them in parallel, cancel outstanding work as soon as any region
///   lands in the acceptance band, and fall back to the closest observed
///   ratio when the target is infeasible.
/// - **Algorithm 3 (parallel by field / time-step reuse)**: tune the first
///   time-step, then reuse the found bound for subsequent steps, retraining
///   only when the reused bound drifts out of the band; fields are tuned in
///   parallel.
///
/// All randomness is seeded; identical inputs and configuration produce
/// identical tuned bounds.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/loss.hpp"
#include "core/probe.hpp"
#include "core/regions.hpp"
#include "ndarray/ndarray.hpp"
#include "pressio/compressor.hpp"
#include "util/buffer.hpp"
#include "util/seed.hpp"
#include "util/status.hpp"

namespace fraz {

/// Outcome of one archive-as-probe pass (see warm_archive_probe).
struct WarmArchive {
  double ratio = 0;     ///< achieved compression ratio of the archive in `out`
  bool in_band = false; ///< ratio within the acceptance band of the target
};

/// Algorithm 3's warm path, shared by Engine::compress and
/// OnlineTuner::push_into: compress \p data at \p bound into the caller's
/// reusable \p out and check the achieved ratio against the acceptance band
/// — the archive itself is the acceptance probe, so an in-band frame costs
/// exactly one compression.  Non-throwing; on failure \p out is unspecified.
Status warm_archive_probe(pressio::Compressor& compressor, const ArrayView& data,
                          double bound, double target_ratio, double epsilon, Buffer& out,
                          WarmArchive& result) noexcept;

/// Tuning configuration (defaults follow the paper where it states one).
struct TunerConfig {
  /// ρt — requested compression ratio.
  double target_ratio = 10.0;
  /// ε — acceptable relative deviation of the achieved ratio (paper uses 0.1
  /// in its convergence studies).
  double epsilon = 0.1;
  /// U — maximum allowed error bound.  0 selects the data's value range
  /// (the largest bound that can still matter).
  double max_error_bound = 0.0;
  /// Lower end of the search range.  0 selects U * 1e-9.
  double min_error_bound = 0.0;
  /// K — regions per dataset; the paper found 12 tasks a good tradeoff.
  int regions = 12;
  /// α — fractional overlap between adjacent regions (paper: 10%).
  double overlap = 0.1;
  /// Iteration cap per region (the paper bounds iterations, not time).
  int max_evals_per_region = 24;
  /// Worker threads for probe/field parallelism; 0 = hardware concurrency.
  /// Probe batches run on the shared opt thread pool capped at this count;
  /// the tuned bound is bit-identical at every thread count (the region
  /// searches advance in deterministic lockstep rounds).
  unsigned threads = 0;
  /// Deterministic seed.
  std::uint64_t seed = kDefaultSearchSeed;
  /// Search in log(error bound) space (extension over the paper, see
  /// DESIGN.md): compression-ratio curves typically span several decades of
  /// the bound axis, so the paper's linear region split leaves low-bound
  /// ratios inside a sliver of the first region.  Splitting and searching in
  /// log space resolves every decade equally; regions still overlap exactly
  /// as in Fig. 5.  Set false for the paper's literal linear behaviour.
  bool log_scale_search = true;
};

/// Outcome of one region's search.
struct RegionOutcome {
  Region region{};
  double best_bound = 0;    ///< e with ratio closest to target in this region
  double best_ratio = 0;    ///< ρr at best_bound
  int compress_calls = 0;   ///< probes this region's search consumed
  int cache_hits = 0;       ///< of those, served by the probe cache for free
  bool hit_cutoff = false;  ///< landed inside the acceptance band
  bool cancelled = false;   ///< stopped early because another region won
};

/// Result of tuning one dataset.
struct TuneResult {
  double error_bound = 0;    ///< recommended error bound e
  double achieved_ratio = 0; ///< ρr(e)
  bool feasible = false;     ///< true when inside the acceptance band
  bool from_prediction = false;  ///< satisfied by the warm-start probe alone
  int compress_calls = 0;    ///< probes the search consumed (cache hits included)
  int probe_cache_hits = 0;  ///< probes served without a compressor invocation
  double seconds = 0;        ///< wall time of the tuning
  std::vector<RegionOutcome> regions;  ///< per-region detail (empty when
                                       ///< satisfied by prediction)
};

/// Per-time-step outcome within a series.
struct StepOutcome {
  TuneResult result;
  bool retrained = false;  ///< true when the reused bound missed the band
};

/// Result of tuning a time series of one field.
struct SeriesResult {
  std::vector<StepOutcome> steps;
  int retrain_count = 0;
  int total_compress_calls = 0;      ///< probes consumed (cache hits included)
  int total_probe_cache_hits = 0;    ///< of those, served by the probe cache
  double seconds = 0;
};

/// The FRaZ autotuner.  Holds a prototype compressor (cloned per probe
/// worker, see pressio::Compressor's thread-safety contract) and a
/// configuration.
///
/// Since the ask/tell refactor the K region searches (paper Alg. 2) advance
/// in deterministic lockstep rounds: each round asks every live region for
/// its next proposal, evaluates the batch through a ProbeExecutor (dedup
/// cache + shared thread pool), tells each region its observation, and
/// cancels every region the moment one lands in the acceptance band.  The
/// tuned bound is therefore bit-identical at any thread count, and losing
/// regions stop after the winner's round instead of draining their budgets.
class Tuner {
public:
  Tuner(const pressio::Compressor& prototype, TunerConfig config);

  /// Share a probe cache with other consumers (an Engine, an OnlineTuner):
  /// identical (data, config, bound) probes anywhere in the process are then
  /// paid once.  \p cache must not be null.
  Tuner(const pressio::Compressor& prototype, TunerConfig config, ProbeCachePtr cache);

  const TunerConfig& config() const noexcept { return config_; }

  /// The dedup cache this tuner consults and feeds.
  const ProbeCachePtr& probe_cache() const noexcept { return cache_; }

  /// Algorithms 1+2: full parallel training on a single dataset.
  TuneResult tune(const ArrayView& data) const;

  /// Algorithm 1 entry: probe \p predicted_bound first (0 = no prediction),
  /// then fall back to full training.
  TuneResult tune_with_prediction(const ArrayView& data, double predicted_bound) const;

  /// Algorithm 3 (time dimension): warm-start successive steps with the
  /// previous step's bound; retrain only on drift.
  SeriesResult tune_series(const std::vector<ArrayView>& steps) const;

  /// Algorithm 3 (field dimension): tune several fields' series in parallel.
  std::map<std::string, SeriesResult> tune_fields(
      const std::map<std::string, std::vector<ArrayView>>& fields) const;

private:
  /// Resolve the [lo, hi] search range for \p data per config defaults.
  Region search_range(const ArrayView& data) const;

  /// Full lockstep training with the probe-cache context already computed
  /// (a context is a full pass over the data — callers that probed first
  /// hand theirs down instead of paying the fingerprint twice).
  TuneResult train(const ArrayView& data, std::uint64_t context) const;

  pressio::CompressorPtr prototype_;
  TunerConfig config_;
  ProbeCachePtr cache_;
  /// Thread-safe probe front end; mutable so const tuning entry points can
  /// spend probes (tune() is logically const: identical inputs, identical
  /// results, cache state only affects cost).
  mutable ProbeExecutor executor_;
};

}  // namespace fraz

#endif  // FRAZ_CORE_TUNER_HPP
