#include "core/serialize.hpp"

#include <sstream>

namespace fraz {

std::string to_json(const pressio::Options& options) {
  std::ostringstream os;
  os << "{";
  bool first = true;
  for (const auto& [key, value] : options) {
    if (!first) os << ",";
    first = false;
    os << json_escape(key) << ":";
    if (const auto* b = std::get_if<bool>(&value))
      os << (*b ? "true" : "false");
    else if (const auto* i = std::get_if<std::int64_t>(&value))
      os << *i;
    else if (const auto* d = std::get_if<double>(&value))
      os << json_number(*d);
    else
      os << json_escape(std::get<std::string>(value));
  }
  os << "}";
  return os.str();
}

std::string to_json(const TuneResult& result) {
  std::ostringstream os;
  os << "{\"error_bound\":" << json_number(result.error_bound)
     << ",\"achieved_ratio\":" << json_number(result.achieved_ratio)
     << ",\"feasible\":" << (result.feasible ? "true" : "false")
     << ",\"from_prediction\":" << (result.from_prediction ? "true" : "false")
     << ",\"compress_calls\":" << result.compress_calls
     << ",\"probe_cache_hits\":" << result.probe_cache_hits
     << ",\"probes_executed\":" << (result.compress_calls - result.probe_cache_hits)
     << ",\"seconds\":" << json_number(result.seconds);
  if (!result.regions.empty()) {
    os << ",\"regions\":[";
    for (std::size_t i = 0; i < result.regions.size(); ++i) {
      const RegionOutcome& r = result.regions[i];
      if (i) os << ",";
      os << "{\"lo\":" << json_number(r.region.lo) << ",\"hi\":" << json_number(r.region.hi)
         << ",\"best_bound\":" << json_number(r.best_bound)
         << ",\"best_ratio\":" << json_number(r.best_ratio)
         << ",\"compress_calls\":" << r.compress_calls
         << ",\"cache_hits\":" << r.cache_hits
         << ",\"hit_cutoff\":" << (r.hit_cutoff ? "true" : "false")
         << ",\"cancelled\":" << (r.cancelled ? "true" : "false") << "}";
    }
    os << "]";
  }
  os << "}";
  return os.str();
}

std::string to_json(const SeriesResult& series) {
  std::ostringstream os;
  os << "{\"retrain_count\":" << series.retrain_count
     << ",\"total_compress_calls\":" << series.total_compress_calls
     << ",\"total_probe_cache_hits\":" << series.total_probe_cache_hits
     << ",\"seconds\":" << json_number(series.seconds) << ",\"steps\":[";
  for (std::size_t i = 0; i < series.steps.size(); ++i) {
    if (i) os << ",";
    os << "{\"retrained\":" << (series.steps[i].retrained ? "true" : "false")
       << ",\"result\":" << to_json(series.steps[i].result) << "}";
  }
  os << "]}";
  return os.str();
}

}  // namespace fraz
