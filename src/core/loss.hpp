#ifndef FRAZ_CORE_LOSS_HPP
#define FRAZ_CORE_LOSS_HPP

/// \file loss.hpp
/// FRaZ's optimization objective (paper §V-B.2).
///
/// The raw objective is the distance between the achieved and target
/// compression ratios, ρr(e) − ρt.  FRaZ transforms it with a *clamped
/// square*: l(e) = min((ρr(e) − ρt)², γ) with γ = 80% of the largest finite
/// double.  The clamp gives the function a finite ceiling (the paper notes an
/// unbounded objective triggered a crash in Dlib) and the square converges
/// faster than |·| under quadratic refinement.

#include <limits>

namespace fraz {

/// γ: the loss ceiling, 80% of the maximum representable double (paper's
/// exact choice).
inline constexpr double kLossClamp = 0.8 * std::numeric_limits<double>::max();

/// l(e) = min((achieved − target)², clamp).
inline double ratio_loss(double achieved_ratio, double target_ratio,
                         double clamp = kLossClamp) noexcept {
  const double d = achieved_ratio - target_ratio;
  const double sq = d * d;
  return sq < clamp ? sq : clamp;
}

/// The early-termination cutoff: a loss inside [0, (ε·ρt)²] means the
/// achieved ratio is within the acceptance band.
inline double loss_cutoff(double target_ratio, double epsilon) noexcept {
  const double band = epsilon * target_ratio;
  return band * band;
}

/// Acceptance test ρt(1−ε) <= ρr <= ρt(1+ε) (paper Eq. 1).
inline bool ratio_acceptable(double achieved_ratio, double target_ratio,
                             double epsilon) noexcept {
  return achieved_ratio >= target_ratio * (1.0 - epsilon) &&
         achieved_ratio <= target_ratio * (1.0 + epsilon);
}

}  // namespace fraz

#endif  // FRAZ_CORE_LOSS_HPP
