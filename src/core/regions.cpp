#include "core/regions.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace fraz {

std::vector<Region> make_error_bound_regions(double lo, double hi, int count, double alpha) {
  require(lo < hi, "make_error_bound_regions: requires lo < hi");
  require(count >= 1, "make_error_bound_regions: count must be >= 1");
  require(alpha >= 0 && alpha < 1, "make_error_bound_regions: alpha in [0, 1)");

  std::vector<Region> regions;
  regions.reserve(static_cast<std::size_t>(count));
  const double width = (hi - lo) / count;
  const double pad = 0.5 * alpha * width;
  for (int i = 0; i < count; ++i) {
    Region r;
    r.lo = std::max(lo, lo + i * width - pad);
    r.hi = std::min(hi, lo + (i + 1) * width + pad);
    regions.push_back(r);
  }
  return regions;
}

}  // namespace fraz
