#include "core/quality_tuner.hpp"

#include <cmath>

#include "metrics/error_stats.hpp"
#include "metrics/ssim.hpp"
#include "opt/global_search.hpp"
#include "util/buffer.hpp"
#include "util/error.hpp"
#include "util/status.hpp"

namespace fraz {

namespace {

/// One compress+decompress+metric pass through the V2 entry points, reusing
/// the caller's scratch buffers across evaluations.
double measure_quality(const pressio::Compressor& compressor, const ArrayView& data,
                       QualityMetric metric, Buffer& scratch, NdArray& decoded) {
  Status s = compressor.compress_into(data, scratch);
  if (!s.ok()) throw_status(s);
  s = compressor.decompress_into(scratch.data(), scratch.size(), decoded);
  if (!s.ok()) throw_status(s);
  if (metric == QualityMetric::kPsnrDb) return error_stats(data, decoded.view()).psnr_db;
  return ssim(data, decoded.view());
}

}  // namespace

QualityTuneResult tune_for_quality(const pressio::Compressor& compressor,
                                   const ArrayView& data, const QualityTunerConfig& config) {
  require(config.quality_floor > 0, "tune_for_quality: quality_floor must be positive");
  require(config.slack >= 0, "tune_for_quality: slack must be >= 0");
  require(config.max_evals >= 2, "tune_for_quality: max_evals must be >= 2");
  if (config.metric == QualityMetric::kSsim)
    require(data.dims() >= 2, "tune_for_quality: SSIM requires 2D/3D data");
  require(compressor.supports_dims(data.dims()),
          "tune_for_quality: compressor does not support this rank");

  double hi = config.max_error_bound;
  if (hi <= 0) {
    hi = value_range(data);
    if (hi <= 0) hi = 1.0;
  }
  double lo = config.min_error_bound;
  if (lo <= 0) lo = hi * 1e-9;
  require(lo < hi, "tune_for_quality: empty search range");

  QualityTuneResult result;
  const pressio::CompressorPtr worker = compressor.clone();
  Buffer scratch;
  NdArray decoded;

  // Quality falls as the bound grows, so the largest acceptable bound sits
  // at the quality ~= floor crossing.  Search log-space for the bound that
  // minimizes the one-sided distance: bounds with quality below the floor
  // are penalized by how far they miss; acceptable bounds are scored by the
  // bound itself (negated) so the optimizer prefers the most aggressive one.
  double best_bound = 0, best_quality = 0, best_ratio = 0;
  auto objective = [&](double x) {
    const double bound = std::exp(x);
    worker->set_error_bound(bound);
    const double quality = measure_quality(*worker, data, config.metric, scratch, decoded);
    ++result.evaluations;
    if (quality >= config.quality_floor && bound > best_bound) {
      best_bound = bound;
      best_quality = quality;
      // The archive from the quality pass is still in scratch; its size IS
      // the ratio confirmation (no extra compress pass needed).
      best_ratio = static_cast<double>(data.size_bytes()) /
                   static_cast<double>(scratch.size());
    }
    if (quality < config.quality_floor)
      return (config.quality_floor - quality) / config.quality_floor;  // miss distance
    // Acceptable: prefer larger bounds; stop once quality is close to the
    // floor (within the slack) — further refinement cannot help much.
    const double closeness = (quality - config.quality_floor) /
                             (config.quality_floor * std::max(config.slack, 1e-9));
    return -1.0 / (1.0 + closeness);
  };

  opt::SearchOptions search;
  search.max_calls = config.max_evals;
  search.cutoff = -0.5;  // hit when quality within slack of the floor
  search.seed = config.seed;
  opt::find_min_global(objective, std::log(lo), std::log(hi), search);

  result.error_bound = best_bound;
  result.quality = best_quality;
  result.achieved_ratio = best_ratio;
  result.met_floor = best_bound > 0;
  return result;
}

}  // namespace fraz
