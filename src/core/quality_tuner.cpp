#include "core/quality_tuner.hpp"

#include <cmath>

#include "opt/global_search.hpp"
#include "util/error.hpp"

namespace fraz {

QualityTuneResult tune_for_quality(const pressio::Compressor& compressor,
                                   const ArrayView& data, const QualityTunerConfig& config) {
  require(config.quality_floor > 0, "tune_for_quality: quality_floor must be positive");
  require(config.slack >= 0, "tune_for_quality: slack must be >= 0");
  require(config.max_evals >= 2, "tune_for_quality: max_evals must be >= 2");
  if (config.metric == QualityMetric::kSsim)
    require(data.dims() >= 2, "tune_for_quality: SSIM requires 2D/3D data");
  require(compressor.supports_dims(data.dims()),
          "tune_for_quality: compressor does not support this rank");

  double hi = config.max_error_bound;
  if (hi <= 0) {
    hi = value_range(data);
    if (hi <= 0) hi = 1.0;
  }
  double lo = config.min_error_bound;
  if (lo <= 0) lo = hi * 1e-9;
  require(lo < hi, "tune_for_quality: empty search range");

  QualityTuneResult result;
  // The executor owns worker clone + scratch + decode reuse; quality probes
  // are serial (each feeds the next proposal) so one context suffices.
  ProbeExecutor executor(compressor, std::make_shared<ProbeCache>(), 1);
  const std::uint64_t context = executor.context_key(data);

  // Quality falls as the bound grows, so the largest acceptable bound sits
  // at the quality ~= floor crossing.  Search log-space for the bound that
  // minimizes the one-sided distance: bounds with quality below the floor
  // are penalized by how far they miss; acceptable bounds are scored by the
  // bound itself (negated) so the optimizer prefers the most aggressive one.
  double best_bound = 0, best_quality = 0, best_ratio = 0;

  opt::SearchOptions search;
  search.max_calls = config.max_evals;
  search.cutoff = -0.5;  // hit when quality within slack of the floor
  search.seed = config.seed;
  opt::SearchState state(std::log(lo), std::log(hi), search);
  double x;
  while (state.ask(x)) {
    const double bound = std::exp(x);
    const ProbeOutcome probe = executor.probe_quality(data, context, bound, config.metric);
    const double quality = probe.record.quality;
    ++result.evaluations;
    if (quality >= config.quality_floor && bound > best_bound) {
      best_bound = bound;
      best_quality = quality;
      // The quality pass measured its own archive; its ratio IS the
      // confirmation (no extra compress pass needed).
      best_ratio = probe.record.ratio;
    }
    double loss;
    if (quality < config.quality_floor) {
      loss = (config.quality_floor - quality) / config.quality_floor;  // miss distance
    } else {
      // Acceptable: prefer larger bounds; stop once quality is close to the
      // floor (within the slack) — further refinement cannot help much.
      const double closeness = (quality - config.quality_floor) /
                               (config.quality_floor * std::max(config.slack, 1e-9));
      loss = -1.0 / (1.0 + closeness);
    }
    state.tell(x, loss);
  }

  result.error_bound = best_bound;
  result.quality = best_quality;
  result.achieved_ratio = best_ratio;
  result.met_floor = best_bound > 0;
  return result;
}

}  // namespace fraz
