#ifndef FRAZ_CORE_SERIALIZE_HPP
#define FRAZ_CORE_SERIALIZE_HPP

/// \file serialize.hpp
/// JSON rendering of tuner results and option maps, so workflows can consume
/// FRaZ output programmatically (the CLI's --json mode, experiment logs).
/// Escaping and number formatting live in util/json_writer.hpp (re-exported
/// here: json_escape, json_number).

#include <string>

#include "core/tuner.hpp"
#include "pressio/options.hpp"
#include "util/json_writer.hpp"

namespace fraz {

/// Render an option map as one flat JSON object.
std::string to_json(const pressio::Options& options);

/// Render a TuneResult (region details included when present).
std::string to_json(const TuneResult& result);

/// Render a SeriesResult with per-step entries.
std::string to_json(const SeriesResult& series);

}  // namespace fraz

#endif  // FRAZ_CORE_SERIALIZE_HPP
