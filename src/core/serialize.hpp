#ifndef FRAZ_CORE_SERIALIZE_HPP
#define FRAZ_CORE_SERIALIZE_HPP

/// \file serialize.hpp
/// JSON rendering of tuner results and option maps, so workflows can consume
/// FRaZ output programmatically (the CLI's --json mode, experiment logs).
/// Hand-rolled writer: flat structures only, RFC 8259-conformant escaping
/// and locale-independent number formatting.

#include <string>

#include "core/tuner.hpp"
#include "pressio/options.hpp"

namespace fraz {

/// JSON string literal with escaping.
std::string json_escape(const std::string& text);

/// Locale-independent JSON number (handles infinities/NaN as strings, which
/// JSON cannot represent natively).
std::string json_number(double value);

/// Render an option map as one flat JSON object.
std::string to_json(const pressio::Options& options);

/// Render a TuneResult (region details included when present).
std::string to_json(const TuneResult& result);

/// Render a SeriesResult with per-step entries.
std::string to_json(const SeriesResult& series);

}  // namespace fraz

#endif  // FRAZ_CORE_SERIALIZE_HPP
