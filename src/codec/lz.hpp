#ifndef FRAZ_CODEC_LZ_HPP
#define FRAZ_CODEC_LZ_HPP

/// \file lz.hpp
/// Byte-oriented LZ77 dictionary coder with hash-chain match finding.
///
/// This reproduces SZ's stage-4 dictionary encoder (Gzip/Zstd in the paper):
/// it consumes the Huffman-coded byte stream and exploits repeated byte
/// sequences.  The interaction between stage 3 and this stage — a tiny change
/// in the error bound reshapes the Huffman tree, which changes which byte
/// patterns repeat — is the mechanism behind the paper's non-monotonic
/// compression-ratio curves (Fig. 3), so a real dictionary coder (not a stub)
/// is essential for faithful behaviour.
///
/// Wire format:
///   varint  decompressed_size
///   repeated sequences until decompressed_size bytes are produced:
///     varint  literal_count
///     raw     literals
///     if output incomplete:
///       varint  match_offset (1..window)
///       varint  match_length - kMinMatch

#include <cstddef>
#include <cstdint>
#include <vector>

namespace fraz {

/// Compression effort knobs (defaults mirror a mid-level Gzip effort).
struct LzOptions {
  /// Maximum hash-chain links traversed per position.
  unsigned max_chain = 32;
  /// Sliding window size in bytes (offsets never exceed this).
  std::size_t window = 1u << 16;
};

/// Compress \p data.
std::vector<std::uint8_t> lz_compress(const std::uint8_t* data, std::size_t size,
                                      const LzOptions& options = {});

inline std::vector<std::uint8_t> lz_compress(const std::vector<std::uint8_t>& data,
                                             const LzOptions& options = {}) {
  return lz_compress(data.data(), data.size(), options);
}

/// Decompress a buffer produced by lz_compress.  Throws CorruptStream on any
/// malformed input (bad offsets, truncation, size mismatch).
std::vector<std::uint8_t> lz_decompress(const std::uint8_t* data, std::size_t size);

inline std::vector<std::uint8_t> lz_decompress(const std::vector<std::uint8_t>& data) {
  return lz_decompress(data.data(), data.size());
}

}  // namespace fraz

#endif  // FRAZ_CODEC_LZ_HPP
