#ifndef FRAZ_CODEC_RANS_HPP
#define FRAZ_CODEC_RANS_HPP

/// \file rans.hpp
/// Static range asymmetric numeral system (rANS) coder for 32-bit integer
/// symbols.
///
/// Role in the reproduction: SZ 2.1.7's fourth stage is Zstd, whose FSE
/// entropy backend approaches the order-0 entropy of the Huffman-coded
/// stream; plain Huffman's 1-bit-per-symbol floor caps the compression ratio
/// of nearly-constant quantization-code streams far below what the paper's
/// SZ achieves at extreme ratios.  The SZ pipeline therefore entropy-codes
/// its quantization codes with this rANS coder (entropy-optimal to within
/// ~0.01 bits/symbol), while the MGARD reproduction keeps the plain
/// Huffman+LZ backend of its 2019-era original.
///
/// Wire format:
///   varint  symbol_count
///   varint  distinct_count
///   repeated distinct_count times:
///     varint  symbol delta (ascending; first absolute)
///     varint  normalized frequency (1..2^14, sums to 2^14)
///   varint  payload byte count, payload bytes (decoder reads forward)
///
/// Deterministic: equal inputs produce equal bytes.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace fraz {

/// Encode \p n symbols.
std::vector<std::uint8_t> rans_encode(const std::uint32_t* symbols, std::size_t n);

inline std::vector<std::uint8_t> rans_encode(const std::vector<std::uint32_t>& symbols) {
  return rans_encode(symbols.data(), symbols.size());
}

/// Decode a buffer produced by rans_encode; throws CorruptStream on any
/// malformed input.  Uses a flattened decode loop (bulk table fill, hoisted
/// renormalization bounds checks); bit-identical to rans_decode_ref.
std::vector<std::uint32_t> rans_decode(const std::uint8_t* data, std::size_t size);

inline std::vector<std::uint32_t> rans_decode(const std::vector<std::uint8_t>& data) {
  return rans_decode(data.data(), data.size());
}

/// Reference decoder (the original straightforward loop).  Kept as the
/// behavioural baseline the fast path is pinned against
/// (tests/test_simd_kernels.cpp) and as the bench comparison point.
std::vector<std::uint32_t> rans_decode_ref(const std::uint8_t* data, std::size_t size);

}  // namespace fraz

#endif  // FRAZ_CODEC_RANS_HPP
