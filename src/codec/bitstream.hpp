#ifndef FRAZ_CODEC_BITSTREAM_HPP
#define FRAZ_CODEC_BITSTREAM_HPP

/// \file bitstream.hpp
/// Little-endian bit-granular writer/reader.
///
/// Bits are packed LSB-first into bytes, i.e. the first bit written occupies
/// bit 0 of byte 0.  This matches the ordering used by ZFP's stream and makes
/// the embedded bit-plane coder's output byte layout deterministic across
/// platforms.  Values wider than one bit are written least-significant-bit
/// first as well.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/error.hpp"

namespace fraz {

/// Append-only bit writer backed by a growable byte buffer.
class BitWriter {
public:
  BitWriter() = default;

  /// Write the lowest bit of \p bit.
  void write_bit(unsigned bit);

  /// Write the lowest \p n bits of \p value (LSB first).  n in [0, 64].
  void write_bits(std::uint64_t value, unsigned n);

  /// Pad with zero bits up to the next byte boundary.
  void align_byte();

  /// Number of bits written so far.
  std::size_t bit_count() const noexcept { return bit_count_; }

  /// Finish and take the underlying buffer (writer becomes empty).
  std::vector<std::uint8_t> take();

  /// Finished size in bytes (including the partially filled tail byte).
  std::size_t byte_count() const noexcept { return (bit_count_ + 7) / 8; }

private:
  void flush_accumulator();

  std::vector<std::uint8_t> bytes_;
  std::uint64_t accumulator_ = 0;
  unsigned accumulator_bits_ = 0;
  std::size_t bit_count_ = 0;
};

/// Sequential bit reader over a byte span.
class BitReader {
public:
  BitReader(const std::uint8_t* data, std::size_t size_bytes) noexcept
      : data_(data), size_bits_(size_bytes * 8) {}

  explicit BitReader(const std::vector<std::uint8_t>& bytes) noexcept
      : BitReader(bytes.data(), bytes.size()) {}

  /// Read one bit; throws CorruptStream past the end.
  unsigned read_bit();

  /// Read \p n bits (LSB first); n in [0, 64].
  std::uint64_t read_bits(unsigned n);

  /// Skip forward to the next byte boundary.
  void align_byte() noexcept { pos_ = (pos_ + 7) / 8 * 8; }

  /// Bits consumed so far.
  std::size_t bit_position() const noexcept { return pos_; }

  /// Bits remaining.
  std::size_t bits_left() const noexcept { return size_bits_ - pos_; }

private:
  const std::uint8_t* data_;
  std::size_t size_bits_;
  std::size_t pos_ = 0;
};

}  // namespace fraz

#endif  // FRAZ_CODEC_BITSTREAM_HPP
