#include "codec/varint.hpp"

#include <cstring>

#include "util/error.hpp"

namespace fraz {

void put_varint(std::vector<std::uint8_t>& out, std::uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(value) | 0x80u);
    value >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(value));
}

void put_varint(Buffer& out, std::uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(value) | 0x80u);
    value >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(value));
}

void put_u32(Buffer& out, std::uint32_t value) {
  for (int shift = 0; shift < 32; shift += 8)
    out.push_back(static_cast<std::uint8_t>(value >> shift));
}

void put_u64(Buffer& out, std::uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8)
    out.push_back(static_cast<std::uint8_t>(value >> shift));
}

void put_f64(Buffer& out, double value) {
  std::uint64_t bits;
  std::memcpy(&bits, &value, 8);
  put_u64(out, bits);
}

std::uint32_t get_u32(const std::uint8_t* data, std::size_t size, std::size_t& pos) {
  if (pos + 4 > size) throw CorruptStream("get_u32: truncated u32");
  std::uint32_t value = 0;
  for (int shift = 0; shift < 32; shift += 8)
    value |= static_cast<std::uint32_t>(data[pos++]) << shift;
  return value;
}

std::uint64_t get_u64(const std::uint8_t* data, std::size_t size, std::size_t& pos) {
  if (pos + 8 > size) throw CorruptStream("get_u64: truncated u64");
  std::uint64_t value = 0;
  for (int shift = 0; shift < 64; shift += 8)
    value |= static_cast<std::uint64_t>(data[pos++]) << shift;
  return value;
}

double get_f64(const std::uint8_t* data, std::size_t size, std::size_t& pos) {
  const std::uint64_t bits = get_u64(data, size, pos);
  double value;
  std::memcpy(&value, &bits, 8);
  return value;
}

std::uint64_t get_varint(const std::uint8_t* data, std::size_t size, std::size_t& pos) {
  std::uint64_t value = 0;
  unsigned shift = 0;
  for (;;) {
    if (pos >= size) throw CorruptStream("get_varint: truncated varint");
    if (shift >= 64) throw CorruptStream("get_varint: overlong varint");
    const std::uint8_t byte = data[pos++];
    value |= static_cast<std::uint64_t>(byte & 0x7fu) << shift;
    if ((byte & 0x80u) == 0) return value;
    shift += 7;
  }
}

}  // namespace fraz
