#include "codec/varint.hpp"

#include "util/error.hpp"

namespace fraz {

void put_varint(std::vector<std::uint8_t>& out, std::uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(value) | 0x80u);
    value >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(value));
}

std::uint64_t get_varint(const std::uint8_t* data, std::size_t size, std::size_t& pos) {
  std::uint64_t value = 0;
  unsigned shift = 0;
  for (;;) {
    if (pos >= size) throw CorruptStream("get_varint: truncated varint");
    if (shift >= 64) throw CorruptStream("get_varint: overlong varint");
    const std::uint8_t byte = data[pos++];
    value |= static_cast<std::uint64_t>(byte & 0x7fu) << shift;
    if ((byte & 0x80u) == 0) return value;
    shift += 7;
  }
}

}  // namespace fraz
