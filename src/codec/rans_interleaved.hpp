#ifndef FRAZ_CODEC_RANS_INTERLEAVED_HPP
#define FRAZ_CODEC_RANS_INTERLEAVED_HPP

/// \file rans_interleaved.hpp
/// N-way interleaved rANS coder for 32-bit integer symbols — the entropy
/// stage of the sz blocked (v2) pipeline.
///
/// The single-state coder in rans.hpp is serial by construction: every
/// decode iteration is a slot -> table load -> state update chain depending
/// on the previous one, so one stream decodes at one symbol per chain
/// latency no matter how wide the core is.  This coder runs kWays = 8
/// alternating states over ONE shared byte stream (the ryg construction):
/// symbol i belongs to state i % 8, the encoder walks symbols in reverse
/// pushing renormalization bytes before each encode step and reverses the
/// buffer once at the end, and the decoder walks forward reading bytes after
/// each decode step — so the per-state byte sequences are exactly those of
/// eight independent single-state rANS coders, while the eight state updates
/// per round are independent and retire in parallel (ILP on one core, lane
/// parallelism in the AVX2 kernel).
///
/// Wire format:
///   varint  symbol_count
///   u8      ways (must equal kRansWays)
///   (end if symbol_count == 0)
///   u8      mode: 0 = rANS, 1 = raw varint symbols
///   mode 1: symbol_count varints (alphabet too large to normalize — the
///           stream is near-incompressible anyway)
///   mode 0: varint  distinct_count (>= 1)
///           repeated distinct_count times:
///             varint symbol delta (ascending; first absolute)
///             varint normalized frequency (1..2^14, sums to 2^14)
///           varint  payload byte count, payload bytes:
///             8 big-endian u32 initial states (state 0 first), then the
///             interleaved renormalization bytes in decode order
///
/// Determinism: equal inputs produce equal bytes.  The fast decode path
/// (scalar 8-way or the AVX2 kernel, selected by runtime dispatch) is
/// bit-identical to rans_interleaved_decode_ref on every input — pinned by
/// tests/test_rans_interleaved.cpp on adversarial symbol skews.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace fraz {

/// Interleaving width.  Eight u32 states fill the out-of-order window of one
/// core without spilling; the width is stored in the header so it can grow
/// in a later format revision without breaking old payloads.
constexpr unsigned kRansWays = 8;

/// Probability resolution of the interleaved coder: 2^14 slots.  Smaller
/// than rans.hpp's 2^17 so the slot table stays L2-resident (128 KiB packed
/// entries vs 512 KiB); block-group streams are short and sharply peaked, so
/// the precision loss costs well under 1% of payload.
constexpr unsigned kRansInterleavedProbBits = 14;

/// Encode \p n symbols.
std::vector<std::uint8_t> rans_interleaved_encode(const std::uint32_t* symbols,
                                                  std::size_t n);

inline std::vector<std::uint8_t> rans_interleaved_encode(
    const std::vector<std::uint32_t>& symbols) {
  return rans_interleaved_encode(symbols.data(), symbols.size());
}

/// Decode a buffer produced by rans_interleaved_encode; throws CorruptStream
/// on any malformed input.  Dispatches to the AVX2 lane kernel when the CPU
/// supports it, else to the scalar 8-way loop; both are bit-identical to the
/// reference decoder.
std::vector<std::uint32_t> rans_interleaved_decode(const std::uint8_t* data,
                                                   std::size_t size);

inline std::vector<std::uint32_t> rans_interleaved_decode(
    const std::vector<std::uint8_t>& data) {
  return rans_interleaved_decode(data.data(), data.size());
}

/// Decode into a caller-owned buffer, reusing its capacity (\p out is
/// resized to the symbol count).  The hot-loop variant for callers that
/// decode many streams back to back — same bytes-in, symbols-out behaviour
/// as rans_interleaved_decode with no per-call allocation once warm.
void rans_interleaved_decode_into(const std::uint8_t* data, std::size_t size,
                                  std::vector<std::uint32_t>& out);

/// As above, but throws CorruptStream unless the stream's declared symbol
/// count equals \p expected_count — checked BEFORE the count sizes any
/// allocation.  Callers decoding untrusted bytes with a known symbol count
/// (the sz blocked decoder: group element count) must use this form: a
/// degenerate one-symbol alphabet consumes zero payload bytes per symbol, so
/// a ~50-byte blob can otherwise legally declare billions of symbols and
/// force a multi-GB resize.
void rans_interleaved_decode_into(const std::uint8_t* data, std::size_t size,
                                  std::vector<std::uint32_t>& out,
                                  std::uint64_t expected_count);

/// Reference decoder: one symbol at a time, every byte read bounds-checked.
/// The behavioural baseline the fast paths are pinned against.
std::vector<std::uint32_t> rans_interleaved_decode_ref(const std::uint8_t* data,
                                                       std::size_t size);

namespace detail {

/// Compile-time ISA of the rans_interleaved_simd.cpp TU and whether it holds
/// a wide kernel (util/simd.hpp dispatch contract: enter the wide TU only
/// when simd::isa_runtime_ok(rans_interleaved_isa())).
int rans_interleaved_isa();
bool rans_interleaved_vectorized();

/// AVX2 lane kernel: decode \p rounds full rounds of kRansWays symbols.
/// \p table holds 2^14 packed entries (symbol << 32 | freq << 16 | cum);
/// states/out are caller-owned.  Returns the new payload cursor; throws
/// CorruptStream when renormalization runs out of payload bytes.  Defined in
/// rans_interleaved_simd.cpp; only callable when rans_interleaved_vectorized()
/// and the runtime ISA check both hold.
std::size_t rans_interleaved_decode_rounds_vec(const std::uint64_t* table,
                                               const std::uint8_t* payload,
                                               std::size_t payload_size,
                                               std::size_t byte_pos,
                                               std::uint32_t* states,
                                               std::uint32_t* out,
                                               std::size_t rounds);

}  // namespace detail

}  // namespace fraz

#endif  // FRAZ_CODEC_RANS_INTERLEAVED_HPP
