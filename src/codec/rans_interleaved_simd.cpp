/// AVX2 lane kernel for the 8-way interleaved rANS decoder.  CMake compiles
/// this TU with `-mavx2 -ffp-contract=off`; on non-AVX2 builds every entry
/// point degrades to the scalar 8-way loop in rans_interleaved.cpp (and
/// rans_interleaved_vectorized() reports false so callers never enter).
///
/// Bit-identity with rans_interleaved_decode_ref is a hard contract: a decode
/// step consumes no payload bytes and renormalization reads happen in
/// ascending lane order within each round, so the byte-consumption order is
/// identical to the scalar loop — see tests/test_rans_interleaved.cpp.
#include "codec/rans_interleaved.hpp"

#include "util/error.hpp"
#include "util/simd.hpp"

namespace fraz {
namespace detail {

int rans_interleaved_isa() { return simd::isa_id(); }

bool rans_interleaved_vectorized() {
#if defined(FRAZ_SIMD_AVX2)
  return true;
#else
  return false;
#endif
}

#if defined(FRAZ_SIMD_AVX2)

namespace {

constexpr unsigned kProbBits = kRansInterleavedProbBits;
constexpr std::uint32_t kProbScale = 1u << kProbBits;
constexpr std::uint32_t kStateLow = 1u << 23;

}  // namespace

std::size_t rans_interleaved_decode_rounds_vec(const std::uint64_t* table,
                                               const std::uint8_t* payload,
                                               std::size_t payload_size,
                                               std::size_t byte_pos,
                                               std::uint32_t* states,
                                               std::uint32_t* out,
                                               std::size_t rounds) {
  // Every state lives in [kStateLow, kStateLow*256) < 2^31, and the decode
  // update only shrinks it (freq*(x>>14) + slot - cum <= x), so signed 32-bit
  // compares are safe throughout.
  __m256i x = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(states));
  const __m256i slot_mask = _mm256_set1_epi32(static_cast<int>(kProbScale - 1));
  const __m256i u16_mask = _mm256_set1_epi32(0xffff);
  const __m256i low_bound = _mm256_set1_epi32(static_cast<int>(kStateLow));
  // SIMD renorm constants.  A lane needs at most two renormalization bytes
  // per round: the decode update maps any in-range state to at least
  // freq * (kStateLow >> kProbBits) >= 2^9, and 2^9 << 16 >= kStateLow, so
  // per-lane byte counts are 0, 1, or 2 — computable from the state alone as
  // (x < kStateLow) + (x < kStateLow >> 8) before any byte is read.
  const __m256i mid_bound = _mm256_set1_epi32(static_cast<int>(kStateLow >> 8));
  const __m256i zero = _mm256_setzero_si256();
  const __m256i shuf_zero = _mm256_set1_epi32(0x80);  // pshufb "emit zero" byte
  const __m256i hi_zero = _mm256_set1_epi32(static_cast<int>(0x80800000u));
  const __m256i lane_one = _mm256_set1_epi32(1);
  const __m256i pfx1 = _mm256_setr_epi32(0, 0, 1, 2, 3, 4, 5, 6);
  const __m256i pfx2 = _mm256_setr_epi32(0, 0, 0, 1, 2, 3, 4, 5);
  const __m256i pfx4 = _mm256_setr_epi32(0, 0, 0, 0, 0, 1, 2, 3);
  // Compact the 8 gathered u64 entries: even dwords of each gather hold
  // freq<<16|cum, odd dwords hold the symbol.
  const __m256i even_idx = _mm256_setr_epi32(0, 2, 4, 6, 0, 2, 4, 6);
  const __m256i odd_idx = _mm256_setr_epi32(1, 3, 5, 7, 1, 3, 5, 7);
  const auto* tbl = reinterpret_cast<const long long*>(table);

  for (std::size_t r = 0; r < rounds; ++r) {
    const __m256i slot = _mm256_and_si256(x, slot_mask);
    // Two 4-wide u64 gathers: lanes 0..3 and 4..7.
    const __m128i idx_lo = _mm256_castsi256_si128(slot);
    const __m128i idx_hi = _mm256_extracti128_si256(slot, 1);
    const __m256i ent_lo = _mm256_i32gather_epi64(tbl, idx_lo, 8);
    const __m256i ent_hi = _mm256_i32gather_epi64(tbl, idx_hi, 8);
    // Low dwords (freq<<16|cum) of each entry, compacted to lane order.
    const __m256i fc_lo = _mm256_permutevar8x32_epi32(ent_lo, even_idx);
    const __m256i fc_hi = _mm256_permutevar8x32_epi32(ent_hi, even_idx);
    const __m256i fc = _mm256_inserti128_si256(fc_lo, _mm256_castsi256_si128(fc_hi), 1);
    // High dwords = symbols.
    const __m256i sym_lo = _mm256_permutevar8x32_epi32(ent_lo, odd_idx);
    const __m256i sym_hi = _mm256_permutevar8x32_epi32(ent_hi, odd_idx);
    const __m256i sym = _mm256_inserti128_si256(sym_lo, _mm256_castsi256_si128(sym_hi), 1);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out), sym);
    out += kRansWays;

    const __m256i freq = _mm256_srli_epi32(fc, 16);
    const __m256i cum = _mm256_and_si256(fc, u16_mask);
    x = _mm256_add_epi32(
        _mm256_mullo_epi32(freq, _mm256_srli_epi32(x, static_cast<int>(kProbBits))),
        _mm256_sub_epi32(slot, cum));

    // Renormalize in-register, ascending lane order (the byte-consumption
    // contract).  Per-lane counts (0/1/2) prefix-sum into byte offsets, and
    // one 16-byte payload block broadcast to both halves feeds every lane
    // through a pshufb whose control is built from those offsets — no
    // vector-store/scalar-load roundtrip, no data-dependent branches.
    const __m256i need1 = _mm256_cmpgt_epi32(low_bound, x);
    if (_mm256_movemask_ps(_mm256_castsi256_ps(need1)) != 0) {
      if (byte_pos + 16 <= payload_size) {
        const __m256i need2 = _mm256_cmpgt_epi32(mid_bound, x);
        const __m256i cnt = _mm256_sub_epi32(zero, _mm256_add_epi32(need1, need2));
        // Inclusive prefix sum over the 8 lanes (shift-by-1/2/4 and add).
        __m256i s = cnt;
        __m256i t = _mm256_blend_epi32(_mm256_permutevar8x32_epi32(s, pfx1), zero, 0x01);
        s = _mm256_add_epi32(s, t);
        t = _mm256_blend_epi32(_mm256_permutevar8x32_epi32(s, pfx2), zero, 0x03);
        s = _mm256_add_epi32(s, t);
        t = _mm256_blend_epi32(_mm256_permutevar8x32_epi32(s, pfx4), zero, 0x0f);
        s = _mm256_add_epi32(s, t);
        const __m256i off = _mm256_sub_epi32(s, cnt);  // exclusive prefix = lane offset
        // Shuffle control per 32-bit lane: byte0 <- payload[off + cnt - 1],
        // byte1 <- payload[off] (two-byte lanes only), rest zeroed, so the
        // lane value matches the scalar (s << 8) | byte feed exactly.
        const __m256i is1 = _mm256_andnot_si256(need2, need1);
        __m256i b0 = shuf_zero;
        b0 = _mm256_blendv_epi8(b0, off, is1);
        b0 = _mm256_blendv_epi8(b0, _mm256_add_epi32(off, lane_one), need2);
        const __m256i b1 = _mm256_blendv_epi8(shuf_zero, off, need2);
        const __m256i ctrl =
            _mm256_or_si256(_mm256_or_si256(b0, _mm256_slli_epi32(b1, 8)), hi_zero);
        const __m256i block = _mm256_broadcastsi128_si256(
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(payload + byte_pos)));
        const __m256i fed = _mm256_shuffle_epi8(block, ctrl);
        x = _mm256_or_si256(_mm256_sllv_epi32(x, _mm256_slli_epi32(cnt, 3)), fed);
        byte_pos += static_cast<std::size_t>(_mm256_extract_epi32(s, 7));
      } else {
        // Payload tail: scalar per-lane feed with exact bounds checks.
        int need = _mm256_movemask_ps(_mm256_castsi256_ps(need1));
        alignas(32) std::uint32_t lanes[kRansWays];
        _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), x);
        while (need != 0) {
          const int w = __builtin_ctz(static_cast<unsigned>(need));
          std::uint32_t s = lanes[w];
          while (s < kStateLow) {
            if (byte_pos >= payload_size)
              throw CorruptStream("rans_interleaved: truncated payload");
            s = (s << 8) | payload[byte_pos++];
          }
          lanes[w] = s;
          need &= need - 1;
        }
        x = _mm256_load_si256(reinterpret_cast<const __m256i*>(lanes));
      }
    }
  }
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(states), x);
  return byte_pos;
}

#else  // !FRAZ_SIMD_AVX2 — never entered (vectorized() is false); satisfy the link.

std::size_t rans_interleaved_decode_rounds_vec(const std::uint64_t*, const std::uint8_t*,
                                               std::size_t, std::size_t byte_pos,
                                               std::uint32_t*, std::uint32_t*, std::size_t) {
  throw Unsupported("rans_interleaved: vector kernel unavailable in this build");
}

#endif

}  // namespace detail
}  // namespace fraz
