#include "codec/lz.hpp"

#include <algorithm>
#include <cstring>

#include "codec/varint.hpp"
#include "util/error.hpp"

namespace fraz {

namespace {

constexpr std::size_t kMinMatch = 4;
constexpr std::size_t kHashBits = 16;
constexpr std::size_t kHashSize = 1u << kHashBits;

std::uint32_t hash4(const std::uint8_t* p) noexcept {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return (v * 2654435761u) >> (32 - kHashBits);
}

std::size_t match_length(const std::uint8_t* a, const std::uint8_t* b, std::size_t limit) noexcept {
  std::size_t n = 0;
  while (n < limit && a[n] == b[n]) ++n;
  return n;
}

}  // namespace

std::vector<std::uint8_t> lz_compress(const std::uint8_t* data, std::size_t size,
                                      const LzOptions& options) {
  require(options.window > 0, "lz_compress: window must be positive");
  std::vector<std::uint8_t> out;
  out.reserve(size / 2 + 16);
  put_varint(out, size);

  if (size == 0) return out;

  // Hash-chain match finder: head[h] = most recent position with hash h;
  // prev[i % window] = previous position with the same hash as i.
  std::vector<std::int64_t> head(kHashSize, -1);
  std::vector<std::int64_t> prev(std::min(options.window, size), -1);
  const std::size_t prev_size = prev.size();

  auto insert = [&](std::size_t pos) {
    if (pos + 4 > size) return;
    const std::uint32_t h = hash4(data + pos);
    prev[pos % prev_size] = head[h];
    head[h] = static_cast<std::int64_t>(pos);
  };

  std::size_t pos = 0;
  std::size_t literal_start = 0;

  auto flush_sequence = [&](std::size_t match_pos, std::size_t match_off, std::size_t match_len) {
    put_varint(out, match_pos - literal_start);
    out.insert(out.end(), data + literal_start, data + match_pos);
    if (match_len > 0) {
      put_varint(out, match_off);
      put_varint(out, match_len - kMinMatch);
    }
  };

  while (pos < size) {
    std::size_t best_len = 0;
    std::size_t best_off = 0;
    if (pos + kMinMatch <= size) {
      const std::size_t limit = size - pos;
      std::int64_t candidate = head[hash4(data + pos)];
      unsigned chain = options.max_chain;
      while (candidate >= 0 && chain-- > 0) {
        const auto cpos = static_cast<std::size_t>(candidate);
        if (pos - cpos > options.window) break;
        const std::size_t len = match_length(data + cpos, data + pos, limit);
        if (len > best_len) {
          best_len = len;
          best_off = pos - cpos;
          if (len >= 1024) break;  // long enough; stop searching
        }
        candidate = prev[cpos % prev_size];
      }
    }

    if (best_len >= kMinMatch) {
      flush_sequence(pos, best_off, best_len);
      // Index positions covered by the match (bounded effort for long matches).
      const std::size_t end = pos + best_len;
      const std::size_t index_end = std::min(end, pos + 64);
      for (std::size_t p = pos; p < index_end; ++p) insert(p);
      pos = end;
      literal_start = pos;
    } else {
      insert(pos);
      ++pos;
    }
  }
  if (literal_start < size || size == 0) {
    // Trailing literals with no match.
    put_varint(out, size - literal_start);
    out.insert(out.end(), data + literal_start, data + size);
  } else if (literal_start == size) {
    // Stream ended exactly on a match: emit an empty trailing literal run so
    // the decoder's loop shape stays uniform only when bytes remain — here
    // the decoder already has everything, so nothing to emit.
  }
  return out;
}

std::vector<std::uint8_t> lz_decompress(const std::uint8_t* data, std::size_t size) {
  std::size_t pos = 0;
  const std::uint64_t out_size = get_varint(data, size, pos);
  std::vector<std::uint8_t> out;
  out.reserve(out_size);

  while (out.size() < out_size) {
    const std::uint64_t literal_count = get_varint(data, size, pos);
    if (pos + literal_count > size) throw CorruptStream("lz: truncated literal run");
    if (out.size() + literal_count > out_size) throw CorruptStream("lz: literal overrun");
    out.insert(out.end(), data + pos, data + pos + literal_count);
    pos += literal_count;
    if (out.size() == out_size) break;

    const std::uint64_t offset = get_varint(data, size, pos);
    const std::uint64_t length = get_varint(data, size, pos) + kMinMatch;
    if (offset == 0 || offset > out.size()) throw CorruptStream("lz: bad match offset");
    if (out.size() + length > out_size) throw CorruptStream("lz: match overrun");
    // Byte-by-byte copy: overlapping matches (offset < length) are legal and
    // replicate the most recent bytes, as in every LZ77 family coder.
    std::size_t src = out.size() - offset;
    for (std::uint64_t i = 0; i < length; ++i) out.push_back(out[src + i]);
  }
  return out;
}

}  // namespace fraz
