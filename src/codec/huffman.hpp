#ifndef FRAZ_CODEC_HUFFMAN_HPP
#define FRAZ_CODEC_HUFFMAN_HPP

/// \file huffman.hpp
/// Canonical Huffman coder for 32-bit integer symbols.
///
/// This is the reproduction of SZ's stage-3 entropy coder: SZ Huffman-codes
/// the linear-scaling quantization codes, whose alphabet is sparse integers
/// clustered around the zero-displacement code.  The encoder therefore
/// serializes an explicit (symbol, code length) dictionary rather than
/// assuming a dense byte alphabet.
///
/// Wire format:
///   varint  symbol_count (number of encoded symbols)
///   varint  distinct_count
///   repeated distinct_count times:
///     varint  symbol delta (symbols sorted ascending; first is absolute)
///     varint  code length (1..32)
///   payload bits, byte aligned at the end
///
/// Degenerate cases: zero symbols encode to an empty dictionary; a single
/// distinct symbol is assigned a 1-bit code.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace fraz {

/// Encode \p n symbols.  Deterministic: equal inputs yield equal bytes.
std::vector<std::uint8_t> huffman_encode(const std::uint32_t* symbols, std::size_t n);

inline std::vector<std::uint8_t> huffman_encode(const std::vector<std::uint32_t>& symbols) {
  return huffman_encode(symbols.data(), symbols.size());
}

/// Decode a buffer produced by huffman_encode.  Throws CorruptStream on any
/// malformed input.  Uses a table-driven fast path (11-bit prefix table with
/// a buffered 64-bit reader); bit-identical to huffman_decode_ref.
std::vector<std::uint32_t> huffman_decode(const std::uint8_t* data, std::size_t size);

inline std::vector<std::uint32_t> huffman_decode(const std::vector<std::uint8_t>& data) {
  return huffman_decode(data.data(), data.size());
}

/// Reference decoder (the original bit-by-bit canonical walk).  Kept as the
/// behavioural baseline the fast path is pinned against
/// (tests/test_simd_kernels.cpp) and as the bench comparison point.
std::vector<std::uint32_t> huffman_decode_ref(const std::uint8_t* data, std::size_t size);

}  // namespace fraz

#endif  // FRAZ_CODEC_HUFFMAN_HPP
