#ifndef FRAZ_CODEC_CHECKSUM_HPP
#define FRAZ_CODEC_CHECKSUM_HPP

/// \file checksum.hpp
/// CRC-32 (IEEE 802.3 polynomial) used to validate compressed containers so
/// that corrupted archives are rejected with CorruptStream instead of
/// producing garbage reconstructions.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace fraz {

/// CRC-32 of \p data.
std::uint32_t crc32(const std::uint8_t* data, std::size_t size) noexcept;

/// CRC-32 of a byte vector.
inline std::uint32_t crc32(const std::vector<std::uint8_t>& data) noexcept {
  return crc32(data.data(), data.size());
}

}  // namespace fraz

#endif  // FRAZ_CODEC_CHECKSUM_HPP
