#include "codec/huffman.hpp"

#include <algorithm>
#include <cstring>
#include <map>
#include <queue>

#include "codec/bitstream.hpp"
#include "codec/varint.hpp"
#include "util/error.hpp"

namespace fraz {

namespace {

constexpr unsigned kMaxCodeLength = 32;

struct SymbolLength {
  std::uint32_t symbol;
  unsigned length;
};

/// Compute Huffman code lengths for the given (symbol, frequency) pairs.
/// Ties are broken deterministically by symbol value.  If the tree depth
/// exceeds kMaxCodeLength the frequencies are repeatedly halved (flattening
/// the tree) until it fits; this only matters for pathological inputs.
std::vector<SymbolLength> code_lengths(std::vector<std::pair<std::uint32_t, std::uint64_t>> freq) {
  if (freq.empty()) return {};
  if (freq.size() == 1) return {{freq[0].first, 1}};

  for (;;) {
    struct Node {
      std::uint64_t weight;
      std::uint32_t tiebreak;  // min symbol in subtree: deterministic ordering
      int left = -1, right = -1;
      std::uint32_t symbol = 0;
      bool leaf = false;
    };
    std::vector<Node> nodes;
    nodes.reserve(freq.size() * 2);
    using Handle = std::pair<std::pair<std::uint64_t, std::uint32_t>, int>;  // ((w, tie), index)
    std::priority_queue<Handle, std::vector<Handle>, std::greater<>> heap;
    for (const auto& [sym, f] : freq) {
      Node n;
      n.weight = f;
      n.tiebreak = sym;
      n.symbol = sym;
      n.leaf = true;
      nodes.push_back(n);
      heap.push({{f, sym}, static_cast<int>(nodes.size() - 1)});
    }
    while (heap.size() > 1) {
      const auto a = heap.top();
      heap.pop();
      const auto b = heap.top();
      heap.pop();
      Node parent;
      parent.weight = a.first.first + b.first.first;
      parent.tiebreak = std::min(a.first.second, b.first.second);
      parent.left = a.second;
      parent.right = b.second;
      nodes.push_back(parent);
      heap.push({{parent.weight, parent.tiebreak}, static_cast<int>(nodes.size() - 1)});
    }

    // Depth-first traversal to collect leaf depths.
    std::vector<SymbolLength> lengths;
    lengths.reserve(freq.size());
    unsigned max_depth = 0;
    std::vector<std::pair<int, unsigned>> stack{{heap.top().second, 0}};
    while (!stack.empty()) {
      auto [idx, depth] = stack.back();
      stack.pop_back();
      const Node& n = nodes[static_cast<std::size_t>(idx)];
      if (n.leaf) {
        lengths.push_back({n.symbol, std::max(depth, 1u)});
        max_depth = std::max(max_depth, depth);
      } else {
        stack.push_back({n.left, depth + 1});
        stack.push_back({n.right, depth + 1});
      }
    }
    if (max_depth <= kMaxCodeLength) return lengths;
    for (auto& [sym, f] : freq) f = (f + 1) / 2;  // flatten and retry
  }
}

/// Canonical code assignment: codes ordered by (length, symbol).
struct Canonical {
  std::vector<SymbolLength> sorted;          // by (length, symbol)
  std::vector<std::uint32_t> codes;          // parallel to sorted
  std::uint32_t first_code[kMaxCodeLength + 2] = {};
  std::uint32_t first_index[kMaxCodeLength + 2] = {};
  std::uint32_t count[kMaxCodeLength + 2] = {};
};

Canonical canonicalize(std::vector<SymbolLength> lengths) {
  Canonical c;
  std::sort(lengths.begin(), lengths.end(), [](const SymbolLength& a, const SymbolLength& b) {
    return a.length != b.length ? a.length < b.length : a.symbol < b.symbol;
  });
  c.sorted = std::move(lengths);
  c.codes.resize(c.sorted.size());
  for (const auto& sl : c.sorted) c.count[sl.length]++;

  std::uint32_t code = 0;
  std::uint32_t index = 0;
  for (unsigned len = 1; len <= kMaxCodeLength; ++len) {
    c.first_code[len] = code;
    c.first_index[len] = index;
    for (std::uint32_t i = 0; i < c.count[len]; ++i) c.codes[index + i] = code + i;
    code = (code + c.count[len]) << 1;
    index += c.count[len];
  }
  return c;
}

}  // namespace

std::vector<std::uint8_t> huffman_encode(const std::uint32_t* symbols, std::size_t n) {
  // Stage 1: frequency census.
  std::map<std::uint32_t, std::uint64_t> census;
  for (std::size_t i = 0; i < n; ++i) census[symbols[i]]++;
  std::vector<std::pair<std::uint32_t, std::uint64_t>> freq(census.begin(), census.end());

  // Stage 2: code lengths + canonical codes.
  Canonical canon = canonicalize(code_lengths(std::move(freq)));

  // Symbol -> (code, length) lookup for encoding.
  std::map<std::uint32_t, std::pair<std::uint32_t, unsigned>> encode_table;
  for (std::size_t i = 0; i < canon.sorted.size(); ++i)
    encode_table[canon.sorted[i].symbol] = {canon.codes[i], canon.sorted[i].length};

  // Stage 3: header.
  std::vector<std::uint8_t> out;
  put_varint(out, n);
  // Dictionary sorted by symbol for delta coding.
  std::vector<SymbolLength> by_symbol = canon.sorted;
  std::sort(by_symbol.begin(), by_symbol.end(),
            [](const SymbolLength& a, const SymbolLength& b) { return a.symbol < b.symbol; });
  put_varint(out, by_symbol.size());
  std::uint32_t prev = 0;
  for (std::size_t i = 0; i < by_symbol.size(); ++i) {
    put_varint(out, by_symbol[i].symbol - (i == 0 ? 0 : prev));
    put_varint(out, by_symbol[i].length);
    prev = by_symbol[i].symbol;
  }

  // Stage 4: payload. Huffman codes are written MSB-first so canonical
  // numeric order matches lexicographic bit order during decode.
  BitWriter writer;
  for (std::size_t i = 0; i < n; ++i) {
    const auto& [code, length] = encode_table.at(symbols[i]);
    for (unsigned b = length; b-- > 0;) writer.write_bit((code >> b) & 1u);
  }
  const std::vector<std::uint8_t> payload = writer.take();
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

namespace {

/// Parse the dictionary header shared by both decoders.  Returns false for
/// the empty-dictionary degenerate case (out stays empty).
bool parse_dictionary(const std::uint8_t* data, std::size_t size, std::size_t& pos,
                      std::uint64_t& symbol_count, Canonical& canon) {
  symbol_count = get_varint(data, size, pos);
  const std::uint64_t distinct = get_varint(data, size, pos);
  if (distinct == 0) {
    if (symbol_count != 0) throw CorruptStream("huffman: empty dictionary with symbols");
    return false;
  }
  std::vector<SymbolLength> lengths;
  lengths.reserve(std::min<std::uint64_t>(distinct, std::uint64_t{1} << 20));
  std::uint32_t symbol = 0;
  for (std::uint64_t i = 0; i < distinct; ++i) {
    const std::uint64_t delta = get_varint(data, size, pos);
    const std::uint64_t length = get_varint(data, size, pos);
    if (length == 0 || length > kMaxCodeLength) throw CorruptStream("huffman: bad code length");
    symbol = (i == 0) ? static_cast<std::uint32_t>(delta)
                      : symbol + static_cast<std::uint32_t>(delta);
    lengths.push_back({symbol, static_cast<unsigned>(length)});
  }
  canon = canonicalize(std::move(lengths));
  return true;
}

/// The original bit-by-bit canonical walk over a BitReader, one symbol.
std::uint32_t decode_one_slow(BitReader& reader, const Canonical& canon) {
  std::uint32_t code = 0;
  for (unsigned len = 1; len <= kMaxCodeLength; ++len) {
    code = (code << 1) | reader.read_bit();
    if (canon.count[len] != 0 && code < canon.first_code[len] + canon.count[len]) {
      const std::uint32_t idx = canon.first_index[len] + (code - canon.first_code[len]);
      return canon.sorted[idx].symbol;
    }
  }
  throw CorruptStream("huffman: invalid code word");
}

/// Width of the fast-path prefix table.  Canonical Huffman over the nearly
/// geometric quantization-code alphabet rarely exceeds 11 bits, so almost
/// every symbol resolves with one table load.
constexpr unsigned kFastBits = 11;

}  // namespace

std::vector<std::uint32_t> huffman_decode(const std::uint8_t* data, std::size_t size) {
  std::size_t pos = 0;
  std::uint64_t symbol_count = 0;
  Canonical canon;
  if (!parse_dictionary(data, size, pos, symbol_count, canon)) return {};

  // The fast path assumes the canonical assignment is prefix-free, which
  // holds exactly when the Kraft sum does not exceed 1.  Encoder output
  // always satisfies this; hostile dictionaries take the reference walk.
  std::uint64_t kraft = 0;
  for (const auto& sl : canon.sorted) kraft += std::uint64_t{1} << (kMaxCodeLength - sl.length);
  const bool fast_ok =
      kraft <= (std::uint64_t{1} << kMaxCodeLength) && canon.sorted.size() < (1u << 24);

  std::vector<std::uint32_t> out;
  out.reserve(std::min<std::uint64_t>(symbol_count, std::uint64_t{1} << 20));

  if (!fast_ok) {
    BitReader reader(data + pos, size - pos);
    for (std::uint64_t i = 0; i < symbol_count; ++i)
      out.push_back(decode_one_slow(reader, canon));
    return out;
  }

  // Prefix table: indexed by the next kFastBits stream bits (LSB-first read
  // order, i.e. the bit-reverse of the MSB-first code), each hit packs
  // (length << 24) | sorted_index.  Codes longer than kFastBits and slots
  // near the end of the stream fall back to the bit-by-bit walk.
  std::vector<std::uint32_t> table(std::size_t{1} << kFastBits, 0);
  for (std::size_t i = 0; i < canon.sorted.size(); ++i) {
    const unsigned len = canon.sorted[i].length;
    if (len > kFastBits) continue;
    const std::uint32_t code = canon.codes[i];
    std::uint32_t rev = 0;
    for (unsigned b = 0; b < len; ++b) rev |= ((code >> b) & 1u) << (len - 1 - b);
    const std::uint32_t entry = (len << 24) | static_cast<std::uint32_t>(i);
    for (std::size_t t = rev; t < table.size(); t += std::size_t{1} << len)
      table[t] = entry;
  }

  const std::uint8_t* payload = data + pos;
  const std::size_t payload_size = size - pos;
  std::uint64_t buf = 0;      // next stream bits, LSB first
  unsigned nbits = 0;         // valid bits in buf
  std::size_t byte_pos = 0;
  for (std::uint64_t i = 0; i < symbol_count; ++i) {
    while (nbits <= 56 && byte_pos < payload_size) {
      buf |= static_cast<std::uint64_t>(payload[byte_pos++]) << nbits;
      nbits += 8;
    }
    if (nbits >= kFastBits) {
      const std::uint32_t e = table[buf & ((1u << kFastBits) - 1)];
      if (e != 0) {
        const unsigned len = e >> 24;
        buf >>= len;
        nbits -= len;
        out.push_back(canon.sorted[e & 0xffffffu].symbol);
        continue;
      }
    }
    // Long code or stream tail: the reference walk over the buffered bits.
    std::uint32_t code = 0;
    unsigned matched_len = 0;
    for (unsigned len = 1; len <= kMaxCodeLength; ++len) {
      if (nbits == 0) {
        if (byte_pos < payload_size) {
          buf = payload[byte_pos++];
          nbits = 8;
        } else {
          throw CorruptStream("BitReader: read past end of stream");
        }
      }
      code = (code << 1) | static_cast<std::uint32_t>(buf & 1u);
      buf >>= 1;
      --nbits;
      if (canon.count[len] != 0 && code < canon.first_code[len] + canon.count[len]) {
        matched_len = len;
        out.push_back(
            canon.sorted[canon.first_index[len] + (code - canon.first_code[len])].symbol);
        break;
      }
    }
    if (matched_len == 0) throw CorruptStream("huffman: invalid code word");
  }
  return out;
}

std::vector<std::uint32_t> huffman_decode_ref(const std::uint8_t* data, std::size_t size) {
  std::size_t pos = 0;
  std::uint64_t symbol_count = 0;
  Canonical canon;
  if (!parse_dictionary(data, size, pos, symbol_count, canon)) return {};

  BitReader reader(data + pos, size - pos);
  std::vector<std::uint32_t> out;
  out.reserve(std::min<std::uint64_t>(symbol_count, std::uint64_t{1} << 20));
  for (std::uint64_t i = 0; i < symbol_count; ++i)
    out.push_back(decode_one_slow(reader, canon));
  return out;
}

}  // namespace fraz
