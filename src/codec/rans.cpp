#include "codec/rans.hpp"

#include <algorithm>
#include <map>

#include "codec/varint.hpp"
#include "util/error.hpp"

namespace fraz {

namespace {

constexpr unsigned kProbBits = 17;  // covers the full 2^16+1 SZ code alphabet
constexpr std::uint32_t kProbScale = 1u << kProbBits;
/// Renormalization interval: state stays in [kStateLow, kStateLow * 256).
constexpr std::uint32_t kStateLow = 1u << 23;

struct SymbolStats {
  std::uint32_t symbol;
  std::uint32_t freq;  // normalized, >= 1
  std::uint32_t cum;   // cumulative start
};

/// Normalize raw counts so they sum exactly to kProbScale with every present
/// symbol keeping frequency >= 1.  Deterministic: rounding drift is absorbed
/// by the symbols with the largest frequencies, visiting them in descending
/// (frequency, symbol) order.
std::vector<SymbolStats> normalize(const std::map<std::uint32_t, std::uint64_t>& census,
                                   std::uint64_t total) {
  require(census.size() <= kProbScale, "rans: alphabet exceeds the probability table");
  std::vector<SymbolStats> stats;
  stats.reserve(census.size());
  std::int64_t assigned = 0;
  for (const auto& [symbol, count] : census) {
    auto freq = static_cast<std::uint32_t>(count * kProbScale / total);
    if (freq == 0) freq = 1;
    stats.push_back({symbol, freq, 0});
    assigned += freq;
  }
  std::int64_t drift = static_cast<std::int64_t>(kProbScale) - assigned;
  if (drift != 0) {
    // Indices ordered by descending frequency; ties by symbol for determinism.
    std::vector<std::size_t> order(stats.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return stats[a].freq != stats[b].freq ? stats[a].freq > stats[b].freq
                                            : stats[a].symbol < stats[b].symbol;
    });
    for (std::size_t i = 0; drift != 0; i = (i + 1) % order.size()) {
      SymbolStats& s = stats[order[i]];
      if (drift > 0) {
        // Surplus capacity: grow the big symbols first.
        const auto add = static_cast<std::uint32_t>(drift);
        s.freq += add;
        drift = 0;
      } else if (s.freq > 1) {
        const auto take = static_cast<std::uint32_t>(
            std::min<std::int64_t>(-drift, s.freq - 1));
        s.freq -= take;
        drift += take;
      }
    }
  }

  std::uint32_t cum = 0;
  for (auto& s : stats) {
    s.cum = cum;
    cum += s.freq;
  }
  return stats;
}

}  // namespace

std::vector<std::uint8_t> rans_encode(const std::uint32_t* symbols, std::size_t n) {
  std::map<std::uint32_t, std::uint64_t> census;
  for (std::size_t i = 0; i < n; ++i) census[symbols[i]]++;

  std::vector<std::uint8_t> out;
  put_varint(out, n);
  put_varint(out, census.size());
  if (census.empty()) return out;

  const std::vector<SymbolStats> stats = normalize(census, n);
  std::uint32_t prev = 0;
  for (std::size_t i = 0; i < stats.size(); ++i) {
    put_varint(out, stats[i].symbol - (i == 0 ? 0 : prev));
    put_varint(out, stats[i].freq);
    prev = stats[i].symbol;
  }

  // Symbol -> stats lookup (alphabet is sorted by construction).
  std::map<std::uint32_t, const SymbolStats*> lookup;
  for (const auto& s : stats) lookup[s.symbol] = &s;

  // rANS encodes in reverse so the decoder emits in forward order.
  std::vector<std::uint8_t> payload;
  std::uint32_t state = kStateLow;
  for (std::size_t i = n; i-- > 0;) {
    const SymbolStats& s = *lookup.at(symbols[i]);
    // Renormalize: stream out low bytes until the post-encode state fits.
    const std::uint32_t x_max = ((kStateLow >> kProbBits) << 8) * s.freq;
    while (state >= x_max) {
      payload.push_back(static_cast<std::uint8_t>(state & 0xffu));
      state >>= 8;
    }
    state = ((state / s.freq) << kProbBits) + (state % s.freq) + s.cum;
  }
  // Flush the final 32-bit state.
  for (int b = 0; b < 4; ++b) {
    payload.push_back(static_cast<std::uint8_t>(state & 0xffu));
    state >>= 8;
  }
  std::reverse(payload.begin(), payload.end());
  put_varint(out, payload.size());
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

namespace {

/// Parse the alphabet header shared by both decoders.  Returns false for the
/// empty-alphabet degenerate case.
bool parse_alphabet(const std::uint8_t* data, std::size_t size, std::size_t& pos,
                    std::uint64_t& symbol_count, std::vector<SymbolStats>& stats) {
  symbol_count = get_varint(data, size, pos);
  const std::uint64_t distinct = get_varint(data, size, pos);
  if (distinct == 0) {
    if (symbol_count != 0) throw CorruptStream("rans: empty alphabet with symbols");
    return false;
  }
  if (distinct > kProbScale) throw CorruptStream("rans: alphabet too large");

  stats.resize(distinct);
  std::uint32_t symbol = 0, cum = 0;
  for (std::uint64_t i = 0; i < distinct; ++i) {
    const std::uint64_t delta = get_varint(data, size, pos);
    const std::uint64_t freq = get_varint(data, size, pos);
    if (freq == 0 || freq > kProbScale) throw CorruptStream("rans: bad frequency");
    symbol = i == 0 ? static_cast<std::uint32_t>(delta)
                    : symbol + static_cast<std::uint32_t>(delta);
    stats[i] = {symbol, static_cast<std::uint32_t>(freq), cum};
    cum += static_cast<std::uint32_t>(freq);
  }
  if (cum != kProbScale) throw CorruptStream("rans: frequencies do not sum to scale");
  return true;
}

}  // namespace

std::vector<std::uint32_t> rans_decode(const std::uint8_t* data, std::size_t size) {
  std::size_t pos = 0;
  std::uint64_t symbol_count = 0;
  std::vector<SymbolStats> stats;
  if (!parse_alphabet(data, size, pos, symbol_count, stats)) return {};

  // Slot -> symbol index lookup table, filled range-by-range (memset speed
  // instead of a per-slot loop; dominated by the biggest symbol's range on
  // the nearly-constant code streams SZ produces).
  std::vector<std::uint32_t> slot_to_index(kProbScale);
  for (std::uint32_t i = 0; i < stats.size(); ++i)
    std::fill(slot_to_index.begin() + stats[i].cum,
              slot_to_index.begin() + stats[i].cum + stats[i].freq, i);

  const std::uint64_t payload_size = get_varint(data, size, pos);
  if (pos + payload_size != size) throw CorruptStream("rans: payload size mismatch");
  const std::uint8_t* payload = data + pos;

  if (payload_size < 4) throw CorruptStream("rans: payload too small");
  std::uint32_t state = 0;
  std::size_t byte_pos = 0;
  for (int b = 0; b < 4; ++b) state = (state << 8) | payload[byte_pos++];

  // The decode chain is slot -> slot_to_index load -> stats load -> state
  // update, and the 512 KiB slot table is indexed by an effectively random
  // slot — a cache miss on the critical path.  SZ code streams are sharply
  // peaked, so the most frequent symbol owns most of the slot range: a
  // register-only range check answers those iterations without touching the
  // table, and only the tail of the distribution pays the indirection.
  const SymbolStats* dom = &stats[0];
  for (const SymbolStats& s : stats)
    if (s.freq > dom->freq) dom = &s;
  const std::uint32_t dom_cum = dom->cum;
  const std::uint32_t dom_freq = dom->freq;

  std::vector<std::uint32_t> out;
  out.reserve(std::min<std::uint64_t>(symbol_count, std::uint64_t{1} << 20));
  for (std::uint64_t i = 0; i < symbol_count; ++i) {
    const std::uint32_t slot = state & (kProbScale - 1);
    // Unsigned wrap makes one compare of slot - cum cover both range ends.
    const SymbolStats& s =
        slot - dom_cum < dom_freq ? *dom : stats[slot_to_index[slot]];
    out.push_back(s.symbol);
    state = s.freq * (state >> kProbBits) + slot - s.cum;
    if (state < kStateLow) {
      // Renormalization needs at most 3 bytes once state >= 1 (state == 0
      // only reachable from a corrupt initial state), so the common case
      // runs with the bounds check hoisted out of the byte loop.
      if (state != 0 && byte_pos + 3 <= payload_size) {
        do {
          state = (state << 8) | payload[byte_pos++];
        } while (state < kStateLow);
      } else {
        while (state < kStateLow) {
          if (byte_pos >= payload_size) throw CorruptStream("rans: truncated payload");
          state = (state << 8) | payload[byte_pos++];
        }
      }
    }
  }
  if (state != kStateLow) throw CorruptStream("rans: final state mismatch");
  if (byte_pos != payload_size) throw CorruptStream("rans: trailing payload bytes");
  return out;
}

std::vector<std::uint32_t> rans_decode_ref(const std::uint8_t* data, std::size_t size) {
  std::size_t pos = 0;
  std::uint64_t symbol_count = 0;
  std::vector<SymbolStats> stats;
  if (!parse_alphabet(data, size, pos, symbol_count, stats)) return {};

  std::vector<std::uint32_t> slot_to_index(kProbScale);
  for (std::uint32_t i = 0; i < stats.size(); ++i)
    for (std::uint32_t s = stats[i].cum; s < stats[i].cum + stats[i].freq; ++s)
      slot_to_index[s] = i;

  const std::uint64_t payload_size = get_varint(data, size, pos);
  if (pos + payload_size != size) throw CorruptStream("rans: payload size mismatch");
  const std::uint8_t* payload = data + pos;
  std::size_t byte_pos = 0;
  auto next_byte = [&]() -> std::uint32_t {
    if (byte_pos >= payload_size) throw CorruptStream("rans: truncated payload");
    return payload[byte_pos++];
  };

  if (payload_size < 4) throw CorruptStream("rans: payload too small");
  std::uint32_t state = 0;
  for (int b = 0; b < 4; ++b) state = (state << 8) | next_byte();

  std::vector<std::uint32_t> out;
  out.reserve(std::min<std::uint64_t>(symbol_count, std::uint64_t{1} << 20));
  for (std::uint64_t i = 0; i < symbol_count; ++i) {
    const std::uint32_t slot = state & (kProbScale - 1);
    const SymbolStats& s = stats[slot_to_index[slot]];
    out.push_back(s.symbol);
    state = s.freq * (state >> kProbBits) + slot - s.cum;
    while (state < kStateLow) state = (state << 8) | next_byte();
  }
  if (state != kStateLow) throw CorruptStream("rans: final state mismatch");
  if (byte_pos != payload_size) throw CorruptStream("rans: trailing payload bytes");
  return out;
}

}  // namespace fraz
