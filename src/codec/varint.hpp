#ifndef FRAZ_CODEC_VARINT_HPP
#define FRAZ_CODEC_VARINT_HPP

/// \file varint.hpp
/// LEB128 variable-length integers, zigzag mapping, and the little-endian
/// fixed-width wire helpers shared by the container and archive framers.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/buffer.hpp"

namespace fraz {

/// Append \p value as unsigned LEB128 to \p out.
void put_varint(std::vector<std::uint8_t>& out, std::uint64_t value);
void put_varint(Buffer& out, std::uint64_t value);

/// Decode an unsigned LEB128 starting at \p pos (advanced past the value).
/// Throws CorruptStream on truncation or overlong encoding.
std::uint64_t get_varint(const std::uint8_t* data, std::size_t size, std::size_t& pos);

/// Little-endian fixed-width scalars.  The getters advance \p pos and throw
/// CorruptStream on truncation; f64 travels as its IEEE-754 bit pattern.
void put_u32(Buffer& out, std::uint32_t value);
void put_u64(Buffer& out, std::uint64_t value);
void put_f64(Buffer& out, double value);
std::uint32_t get_u32(const std::uint8_t* data, std::size_t size, std::size_t& pos);
std::uint64_t get_u64(const std::uint8_t* data, std::size_t size, std::size_t& pos);
double get_f64(const std::uint8_t* data, std::size_t size, std::size_t& pos);

/// Zigzag map a signed value to unsigned (0,-1,1,-2,... -> 0,1,2,3,...).
constexpr std::uint64_t zigzag_encode(std::int64_t v) noexcept {
  return (static_cast<std::uint64_t>(v) << 1) ^ static_cast<std::uint64_t>(v >> 63);
}

/// Inverse of zigzag_encode.
constexpr std::int64_t zigzag_decode(std::uint64_t u) noexcept {
  return static_cast<std::int64_t>(u >> 1) ^ -static_cast<std::int64_t>(u & 1);
}

}  // namespace fraz

#endif  // FRAZ_CODEC_VARINT_HPP
