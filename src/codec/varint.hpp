#ifndef FRAZ_CODEC_VARINT_HPP
#define FRAZ_CODEC_VARINT_HPP

/// \file varint.hpp
/// LEB128 variable-length integers and zigzag mapping, used by the container
/// headers and the LZ coder's token stream.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace fraz {

/// Append \p value as unsigned LEB128 to \p out.
void put_varint(std::vector<std::uint8_t>& out, std::uint64_t value);

/// Decode an unsigned LEB128 starting at \p pos (advanced past the value).
/// Throws CorruptStream on truncation or overlong encoding.
std::uint64_t get_varint(const std::uint8_t* data, std::size_t size, std::size_t& pos);

/// Zigzag map a signed value to unsigned (0,-1,1,-2,... -> 0,1,2,3,...).
constexpr std::uint64_t zigzag_encode(std::int64_t v) noexcept {
  return (static_cast<std::uint64_t>(v) << 1) ^ static_cast<std::uint64_t>(v >> 63);
}

/// Inverse of zigzag_encode.
constexpr std::int64_t zigzag_decode(std::uint64_t u) noexcept {
  return static_cast<std::int64_t>(u >> 1) ^ -static_cast<std::int64_t>(u & 1);
}

}  // namespace fraz

#endif  // FRAZ_CODEC_VARINT_HPP
