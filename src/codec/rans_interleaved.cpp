#include "codec/rans_interleaved.hpp"

#include <algorithm>
#include <map>

#include "codec/varint.hpp"
#include "util/error.hpp"
#include "util/simd.hpp"

namespace fraz {

namespace {

constexpr unsigned kProbBits = kRansInterleavedProbBits;
constexpr std::uint32_t kProbScale = 1u << kProbBits;
/// Renormalization interval: every state stays in [kStateLow, kStateLow*256).
constexpr std::uint32_t kStateLow = 1u << 23;
constexpr unsigned kWays = kRansWays;

constexpr std::uint8_t kModeRans = 0;
constexpr std::uint8_t kModeRaw = 1;

struct SymbolStats {
  std::uint32_t symbol;
  std::uint32_t freq;  // normalized, >= 1
  std::uint32_t cum;   // cumulative start
};

/// Normalize raw counts so they sum exactly to kProbScale with every present
/// symbol keeping frequency >= 1.  Same deterministic drift policy as the
/// single-state coder (rans.cpp): rounding drift is absorbed by the symbols
/// with the largest frequencies, visited in descending (frequency, symbol)
/// order.  \p census must be sorted by symbol.
std::vector<SymbolStats> normalize(const std::vector<std::pair<std::uint32_t, std::uint64_t>>& census,
                                   std::uint64_t total) {
  std::vector<SymbolStats> stats;
  stats.reserve(census.size());
  std::int64_t assigned = 0;
  for (const auto& [symbol, count] : census) {
    auto freq = static_cast<std::uint32_t>(count * kProbScale / total);
    if (freq == 0) freq = 1;
    stats.push_back({symbol, freq, 0});
    assigned += freq;
  }
  std::int64_t drift = static_cast<std::int64_t>(kProbScale) - assigned;
  if (drift != 0) {
    std::vector<std::size_t> order(stats.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return stats[a].freq != stats[b].freq ? stats[a].freq > stats[b].freq
                                            : stats[a].symbol < stats[b].symbol;
    });
    for (std::size_t i = 0; drift != 0; i = (i + 1) % order.size()) {
      SymbolStats& s = stats[order[i]];
      if (drift > 0) {
        const auto add = static_cast<std::uint32_t>(drift);
        s.freq += add;
        drift = 0;
      } else if (s.freq > 1) {
        const auto take =
            static_cast<std::uint32_t>(std::min<std::int64_t>(-drift, s.freq - 1));
        s.freq -= take;
        drift += take;
      }
    }
  }

  std::uint32_t cum = 0;
  for (auto& s : stats) {
    s.cum = cum;
    cum += s.freq;
  }
  return stats;
}

/// Sorted (symbol, count) census.  Quantization-code alphabets are dense
/// around the radius, so a min..max flat array census replaces the std::map
/// walk of the single-state encoder (the dominant cost of rans_encode on
/// large streams); genuinely sparse alphabets fall back to the map.
std::vector<std::pair<std::uint32_t, std::uint64_t>> build_census(const std::uint32_t* symbols,
                                                                  std::size_t n) {
  std::uint32_t lo = symbols[0], hi = symbols[0];
  for (std::size_t i = 1; i < n; ++i) {
    lo = std::min(lo, symbols[i]);
    hi = std::max(hi, symbols[i]);
  }
  std::vector<std::pair<std::uint32_t, std::uint64_t>> census;
  const std::uint64_t range = static_cast<std::uint64_t>(hi) - lo + 1;
  if (range <= (std::uint64_t{1} << 20)) {
    std::vector<std::uint64_t> counts(static_cast<std::size_t>(range), 0);
    for (std::size_t i = 0; i < n; ++i) ++counts[symbols[i] - lo];
    for (std::size_t v = 0; v < counts.size(); ++v)
      if (counts[v] != 0) census.emplace_back(lo + static_cast<std::uint32_t>(v), counts[v]);
  } else {
    std::map<std::uint32_t, std::uint64_t> map_census;
    for (std::size_t i = 0; i < n; ++i) ++map_census[symbols[i]];
    census.assign(map_census.begin(), map_census.end());
  }
  return census;
}

/// Parse the alphabet section into stats; shared by both decoders.
void parse_alphabet(const std::uint8_t* data, std::size_t size, std::size_t& pos,
                    std::vector<SymbolStats>& stats) {
  const std::uint64_t distinct = get_varint(data, size, pos);
  if (distinct == 0 || distinct > kProbScale)
    throw CorruptStream("rans_interleaved: bad alphabet size");
  stats.resize(distinct);
  std::uint32_t symbol = 0, cum = 0;
  for (std::uint64_t i = 0; i < distinct; ++i) {
    const std::uint64_t delta = get_varint(data, size, pos);
    const std::uint64_t freq = get_varint(data, size, pos);
    if (freq == 0 || freq > kProbScale) throw CorruptStream("rans_interleaved: bad frequency");
    symbol = i == 0 ? static_cast<std::uint32_t>(delta)
                    : symbol + static_cast<std::uint32_t>(delta);
    stats[i] = {symbol, static_cast<std::uint32_t>(freq), cum};
    cum += static_cast<std::uint32_t>(freq);
  }
  if (cum != kProbScale)
    throw CorruptStream("rans_interleaved: frequencies do not sum to scale");
}

/// Shared front half of both decoders: header, mode routing, alphabet, and
/// the eight big-endian initial states.  Returns false when the caller is
/// already done (empty stream or raw mode, with \p out filled).
bool decode_prologue(const std::uint8_t* data, std::size_t size, std::size_t& pos,
                     std::uint64_t& symbol_count, std::vector<SymbolStats>& stats,
                     const std::uint8_t*& payload, std::size_t& payload_size,
                     std::size_t& byte_pos, std::uint32_t* states,
                     std::vector<std::uint32_t>& out,
                     const std::uint64_t* expected_count) {
  symbol_count = get_varint(data, size, pos);
  // Callers that know the count reject a hostile header here, before the
  // declared count sizes any allocation: a degenerate one-symbol alphabet
  // decodes with zero payload bytes per symbol, so nothing downstream bounds
  // symbol_count by the blob size.
  if (expected_count && symbol_count != *expected_count)
    throw CorruptStream("rans_interleaved: symbol count mismatch");
  if (pos >= size) throw CorruptStream("rans_interleaved: truncated header");
  const std::uint8_t ways = data[pos++];
  if (ways != kWays) throw CorruptStream("rans_interleaved: unsupported way count");
  if (symbol_count == 0) {
    if (pos != size) throw CorruptStream("rans_interleaved: trailing bytes");
    return false;
  }
  if (pos >= size) throw CorruptStream("rans_interleaved: truncated mode");
  const std::uint8_t mode = data[pos++];
  if (mode == kModeRaw) {
    out.reserve(std::min<std::uint64_t>(symbol_count, std::uint64_t{1} << 20));
    for (std::uint64_t i = 0; i < symbol_count; ++i) {
      const std::uint64_t v = get_varint(data, size, pos);
      if (v > 0xffffffffull) throw CorruptStream("rans_interleaved: raw symbol overflow");
      out.push_back(static_cast<std::uint32_t>(v));
    }
    if (pos != size) throw CorruptStream("rans_interleaved: trailing bytes");
    return false;
  }
  if (mode != kModeRans) throw CorruptStream("rans_interleaved: unknown mode");

  parse_alphabet(data, size, pos, stats);
  payload_size = get_varint(data, size, pos);
  if (pos + payload_size != size) throw CorruptStream("rans_interleaved: payload size mismatch");
  payload = data + pos;
  if (payload_size < 4 * kWays) throw CorruptStream("rans_interleaved: payload too small");
  byte_pos = 0;
  for (unsigned w = 0; w < kWays; ++w) {
    std::uint32_t s = 0;
    for (int b = 0; b < 4; ++b) s = (s << 8) | payload[byte_pos++];
    if (s < kStateLow) throw CorruptStream("rans_interleaved: bad initial state");
    states[w] = s;
  }
  return true;
}

void check_epilogue(const std::uint32_t* states, std::size_t byte_pos,
                    std::size_t payload_size) {
  for (unsigned w = 0; w < kWays; ++w)
    if (states[w] != kStateLow) throw CorruptStream("rans_interleaved: final state mismatch");
  if (byte_pos != payload_size) throw CorruptStream("rans_interleaved: trailing payload bytes");
}

}  // namespace

std::vector<std::uint8_t> rans_interleaved_encode(const std::uint32_t* symbols,
                                                  std::size_t n) {
  std::vector<std::uint8_t> out;
  put_varint(out, n);
  out.push_back(static_cast<std::uint8_t>(kWays));
  if (n == 0) return out;

  const auto census = build_census(symbols, n);
  if (census.size() > kProbScale) {
    // More distinct symbols than probability slots: the stream is close to
    // incompressible, so store it verbatim instead of failing.
    out.push_back(kModeRaw);
    for (std::size_t i = 0; i < n; ++i) put_varint(out, symbols[i]);
    return out;
  }

  out.push_back(kModeRans);
  const std::vector<SymbolStats> stats = normalize(census, n);
  std::uint32_t prev = 0;
  put_varint(out, stats.size());
  for (std::size_t i = 0; i < stats.size(); ++i) {
    put_varint(out, stats[i].symbol - (i == 0 ? 0 : prev));
    put_varint(out, stats[i].freq);
    prev = stats[i].symbol;
  }

  // Symbol -> encode-entry lookup mirroring the census layout: flat array
  // over the dense min..max range, map fallback for sparse alphabets.  Each
  // entry carries the renormalization threshold plus a fixed-point reciprocal
  // of its frequency so the state update below needs no hardware divide:
  // for every 32-bit x,  x / freq == ((x * rcp_freq) >> 32) >> rcp_shift,
  // which turns  ((x / freq) << kProbBits) + (x % freq) + cum  into
  // x + bias + (x / freq) * cmpl_freq — bit-identical to the division form.
  struct EncSymbol {
    std::uint32_t x_max;       // renormalize while x >= x_max
    std::uint32_t rcp_freq;    // fixed-point 1/freq
    std::uint32_t bias;
    std::uint32_t cmpl_freq;   // (1 << kProbBits) - freq
    std::uint32_t rcp_shift;
  };
  const auto make_enc = [](const SymbolStats& s) {
    EncSymbol es{};
    es.x_max = ((kStateLow >> kProbBits) << 8) * s.freq;
    es.cmpl_freq = (1u << kProbBits) - s.freq;
    if (s.freq < 2) {
      // freq == 1: q == x, so fold the (x << kProbBits) expansion into bias.
      es.rcp_freq = ~0u;
      es.rcp_shift = 0;
      es.bias = s.cum + (1u << kProbBits) - 1;
    } else {
      std::uint32_t shift = 0;
      while (s.freq > (1u << shift)) ++shift;
      es.rcp_freq = static_cast<std::uint32_t>(
          ((std::uint64_t{1} << (shift + 31)) + s.freq - 1) / s.freq);
      es.rcp_shift = shift - 1;
      es.bias = s.cum;
    }
    return es;
  };
  const std::uint32_t lo = stats.front().symbol;
  const std::uint64_t range = static_cast<std::uint64_t>(stats.back().symbol) - lo + 1;
  std::vector<EncSymbol> flat;
  std::map<std::uint32_t, EncSymbol> sparse;
  const bool dense = range <= (std::uint64_t{1} << 20);
  if (dense) {
    flat.assign(static_cast<std::size_t>(range), EncSymbol{});
    for (const auto& s : stats) flat[s.symbol - lo] = make_enc(s);
  } else {
    for (const auto& s : stats) sparse.emplace(s.symbol, make_enc(s));
  }

  // Encode in reverse with alternating states so the decoder emits forward:
  // renormalization bytes are pushed before each encode step and the whole
  // payload is reversed once, which makes every state's byte sequence exactly
  // that of a single-state rANS over its own symbol subsequence.
  //
  // The renorm is branchless: a state needs at most two renormalization
  // bytes per step (states live below kStateLow * 256 = 2^31 and
  // x_max >= 2^17), so both candidate bytes are stored unconditionally and
  // the write cursor advances by however many were actually needed — no
  // data-dependent branch for the predictor to miss.  thread_local scratch:
  // group encoders reuse the warm allocation; the 2n bound plus flush slack
  // makes the stray second-byte store always in bounds.
  thread_local std::vector<std::uint8_t> payload;
  if (payload.size() < 2 * n + 8 * kWays) payload.resize(2 * n + 8 * kWays);
  std::uint8_t* pp = payload.data();
  std::uint32_t states[kWays];
  for (auto& s : states) s = kStateLow;
  for (std::size_t i = n; i-- > 0;) {
    const EncSymbol es = dense ? flat[symbols[i] - lo] : sparse.find(symbols[i])->second;
    std::uint32_t& x = states[i % kWays];
    pp[0] = static_cast<std::uint8_t>(x & 0xffu);
    pp[1] = static_cast<std::uint8_t>((x >> 8) & 0xffu);
    const unsigned renorm =
        static_cast<unsigned>(x >= es.x_max) +
        static_cast<unsigned>(static_cast<std::uint64_t>(x) >=
                              (static_cast<std::uint64_t>(es.x_max) << 8));
    pp += renorm;
    x >>= 8 * renorm;
    const std::uint32_t q = static_cast<std::uint32_t>(
                                (static_cast<std::uint64_t>(x) * es.rcp_freq) >> 32) >>
                            es.rcp_shift;
    x += es.bias + q * es.cmpl_freq;
  }
  // Flush states 7..0 LSB-first; after the reversal below the decoder reads
  // state 0 first, each big-endian.
  for (unsigned w = kWays; w-- > 0;) {
    std::uint32_t x = states[w];
    for (int b = 0; b < 4; ++b) {
      *pp++ = static_cast<std::uint8_t>(x & 0xffu);
      x >>= 8;
    }
  }
  const std::size_t payload_size = static_cast<std::size_t>(pp - payload.data());
  std::reverse(payload.data(), payload.data() + payload_size);
  put_varint(out, payload_size);
  out.insert(out.end(), payload.data(), payload.data() + payload_size);
  return out;
}

std::vector<std::uint32_t> rans_interleaved_decode_ref(const std::uint8_t* data,
                                                       std::size_t size) {
  std::size_t pos = 0;
  std::uint64_t symbol_count = 0;
  std::vector<SymbolStats> stats;
  const std::uint8_t* payload = nullptr;
  std::size_t payload_size = 0, byte_pos = 0;
  std::uint32_t states[kWays];
  std::vector<std::uint32_t> out;
  if (!decode_prologue(data, size, pos, symbol_count, stats, payload, payload_size,
                       byte_pos, states, out, nullptr))
    return out;

  std::vector<std::uint32_t> slot_to_index(kProbScale);
  for (std::uint32_t i = 0; i < stats.size(); ++i)
    for (std::uint32_t s = stats[i].cum; s < stats[i].cum + stats[i].freq; ++s)
      slot_to_index[s] = i;

  out.reserve(std::min<std::uint64_t>(symbol_count, std::uint64_t{1} << 20));
  for (std::uint64_t i = 0; i < symbol_count; ++i) {
    std::uint32_t& x = states[i % kWays];
    const std::uint32_t slot = x & (kProbScale - 1);
    const SymbolStats& s = stats[slot_to_index[slot]];
    out.push_back(s.symbol);
    x = s.freq * (x >> kProbBits) + slot - s.cum;
    while (x < kStateLow) {
      if (byte_pos >= payload_size) throw CorruptStream("rans_interleaved: truncated payload");
      x = (x << 8) | payload[byte_pos++];
    }
  }
  check_epilogue(states, byte_pos, payload_size);
  return out;
}

namespace {

void decode_into_impl(const std::uint8_t* data, std::size_t size,
                      std::vector<std::uint32_t>& out,
                      const std::uint64_t* expected_count) {
  std::size_t pos = 0;
  std::uint64_t symbol_count = 0;
  std::vector<SymbolStats> stats;
  const std::uint8_t* payload = nullptr;
  std::size_t payload_size = 0, byte_pos = 0;
  std::uint32_t states[kWays];
  out.clear();
  if (!decode_prologue(data, size, pos, symbol_count, stats, payload, payload_size,
                       byte_pos, states, out, expected_count))
    return;

  // Packed slot table: one 64-bit load per symbol replaces the two dependent
  // loads (slot -> index -> stats) of the reference loop.  2^14 entries =
  // 128 KiB, L2-resident; thread_local so back-to-back group decodes reuse
  // the warm allocation.  No clearing needed: the alphabet's frequencies sum
  // to exactly kProbScale, so the fill below covers every slot.
  thread_local std::vector<std::uint64_t> table;
  table.resize(kProbScale);
  for (const SymbolStats& s : stats) {
    const std::uint64_t entry = (static_cast<std::uint64_t>(s.symbol) << 32) |
                                (static_cast<std::uint64_t>(s.freq) << 16) | s.cum;
    std::fill(table.begin() + s.cum, table.begin() + s.cum + s.freq, entry);
  }

  out.resize(symbol_count);
  std::uint32_t* op = out.data();
  const std::uint64_t rounds = symbol_count / kWays;

  static const bool vec_ok = detail::rans_interleaved_vectorized() &&
                             simd::isa_runtime_ok(detail::rans_interleaved_isa());
  std::uint64_t done = 0;
  if (vec_ok && rounds > 0) {
    byte_pos = detail::rans_interleaved_decode_rounds_vec(
        table.data(), payload, payload_size, byte_pos, states, op, rounds);
    done = rounds * kWays;
  } else {
    // Scalar 8-way rounds: the eight state updates are mutually independent,
    // so the out-of-order core overlaps their load/multiply chains; only the
    // (rare) renormalization byte reads are ordered across lanes.
    for (std::uint64_t r = 0; r < rounds; ++r) {
      if (byte_pos + 3 * kWays <= payload_size) {
        for (unsigned w = 0; w < kWays; ++w) {
          std::uint32_t x = states[w];
          const std::uint32_t slot = x & (kProbScale - 1);
          const std::uint64_t e = table[slot];
          op[w] = static_cast<std::uint32_t>(e >> 32);
          x = static_cast<std::uint32_t>((e >> 16) & 0xffffu) * (x >> kProbBits) + slot -
              static_cast<std::uint32_t>(e & 0xffffu);
          while (x < kStateLow) x = (x << 8) | payload[byte_pos++];
          states[w] = x;
        }
      } else {
        for (unsigned w = 0; w < kWays; ++w) {
          std::uint32_t x = states[w];
          const std::uint32_t slot = x & (kProbScale - 1);
          const std::uint64_t e = table[slot];
          op[w] = static_cast<std::uint32_t>(e >> 32);
          x = static_cast<std::uint32_t>((e >> 16) & 0xffffu) * (x >> kProbBits) + slot -
              static_cast<std::uint32_t>(e & 0xffffu);
          while (x < kStateLow) {
            if (byte_pos >= payload_size)
              throw CorruptStream("rans_interleaved: truncated payload");
            x = (x << 8) | payload[byte_pos++];
          }
          states[w] = x;
        }
      }
      op += kWays;
    }
    done = rounds * kWays;
  }

  // Tail: fewer than kWays symbols, always bounds-checked.
  op = out.data() + done;
  for (std::uint64_t i = done; i < symbol_count; ++i) {
    std::uint32_t& x = states[i % kWays];
    const std::uint32_t slot = x & (kProbScale - 1);
    const std::uint64_t e = table[slot];
    *op++ = static_cast<std::uint32_t>(e >> 32);
    x = static_cast<std::uint32_t>((e >> 16) & 0xffffu) * (x >> kProbBits) + slot -
        static_cast<std::uint32_t>(e & 0xffffu);
    while (x < kStateLow) {
      if (byte_pos >= payload_size) throw CorruptStream("rans_interleaved: truncated payload");
      x = (x << 8) | payload[byte_pos++];
    }
  }
  check_epilogue(states, byte_pos, payload_size);
}

}  // namespace

void rans_interleaved_decode_into(const std::uint8_t* data, std::size_t size,
                                  std::vector<std::uint32_t>& out) {
  decode_into_impl(data, size, out, nullptr);
}

void rans_interleaved_decode_into(const std::uint8_t* data, std::size_t size,
                                  std::vector<std::uint32_t>& out,
                                  std::uint64_t expected_count) {
  decode_into_impl(data, size, out, &expected_count);
}

std::vector<std::uint32_t> rans_interleaved_decode(const std::uint8_t* data,
                                                   std::size_t size) {
  std::vector<std::uint32_t> out;
  rans_interleaved_decode_into(data, size, out);
  return out;
}

}  // namespace fraz
