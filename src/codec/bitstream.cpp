#include "codec/bitstream.hpp"

namespace fraz {

void BitWriter::flush_accumulator() {
  while (accumulator_bits_ >= 8) {
    bytes_.push_back(static_cast<std::uint8_t>(accumulator_ & 0xffu));
    accumulator_ >>= 8;
    accumulator_bits_ -= 8;
  }
}

void BitWriter::write_bit(unsigned bit) {
  accumulator_ |= static_cast<std::uint64_t>(bit & 1u) << accumulator_bits_;
  ++accumulator_bits_;
  ++bit_count_;
  if (accumulator_bits_ == 64) flush_accumulator();
}

void BitWriter::write_bits(std::uint64_t value, unsigned n) {
  require(n <= 64, "BitWriter::write_bits: n > 64");
  if (n == 0) return;
  if (n < 64) value &= (std::uint64_t{1} << n) - 1;
  // Split so the accumulator never overflows 64 bits.
  unsigned room = 64 - accumulator_bits_;
  unsigned first = n < room ? n : room;
  accumulator_ |= value << accumulator_bits_;
  accumulator_bits_ += first;
  bit_count_ += first;
  flush_accumulator();
  if (first < n) {
    value >>= first;
    accumulator_ |= value << accumulator_bits_;
    accumulator_bits_ += n - first;
    bit_count_ += n - first;
    flush_accumulator();
  }
}

void BitWriter::align_byte() {
  const unsigned rem = bit_count_ % 8;
  if (rem != 0) write_bits(0, 8 - rem);
}

std::vector<std::uint8_t> BitWriter::take() {
  align_byte();
  flush_accumulator();
  if (accumulator_bits_ > 0) {
    bytes_.push_back(static_cast<std::uint8_t>(accumulator_ & 0xffu));
    accumulator_ = 0;
    accumulator_bits_ = 0;
  }
  bit_count_ = 0;
  return std::move(bytes_);
}

unsigned BitReader::read_bit() {
  if (pos_ >= size_bits_) throw CorruptStream("BitReader: read past end of stream");
  const unsigned bit = (data_[pos_ / 8] >> (pos_ % 8)) & 1u;
  ++pos_;
  return bit;
}

std::uint64_t BitReader::read_bits(unsigned n) {
  require(n <= 64, "BitReader::read_bits: n > 64");
  if (n == 0) return 0;
  if (pos_ + n > size_bits_) throw CorruptStream("BitReader: read past end of stream");
  std::uint64_t value = 0;
  unsigned got = 0;
  while (got < n) {
    const std::size_t byte = pos_ / 8;
    const unsigned offset = static_cast<unsigned>(pos_ % 8);
    const unsigned take = std::min<unsigned>(8 - offset, n - got);
    const std::uint64_t chunk = (static_cast<std::uint64_t>(data_[byte]) >> offset) &
                                ((std::uint64_t{1} << take) - 1);
    value |= chunk << got;
    got += take;
    pos_ += take;
  }
  return value;
}

}  // namespace fraz
