#ifndef FRAZ_COMPRESSORS_SZX_SZX_HPP
#define FRAZ_COMPRESSORS_SZX_SZX_HPP

/// \file szx.hpp
/// SZx-style ultra-fast error-bounded compressor (Yu et al., see PAPERS.md).
///
/// The design trades ratio for speed: data is cut into fixed blocks of 128
/// scalars, each classified in one pass as *constant* (the whole block fits
/// inside the error bound around its midpoint — stored as a single scalar),
/// *packed* (uniform quantization against the block minimum, codes stored
/// with exactly the required bit width), or *raw* (non-finite values or
/// blocks whose code range exceeds 30 bits — scalars stored verbatim, so
/// NaN/Inf round-trip bit-exactly).  There is no prediction and no entropy
/// stage, which is precisely why a probe costs an order of magnitude less
/// than sz: one streaming pass with four-wide SIMD min/max and quantize
/// kernels (szx_kernels.hpp).
///
/// Error bound: absolute; every reconstructed finite value differs from the
/// input by at most `error_bound` (validated per element at encode time —
/// blocks that fail validation demote to raw storage, so the guarantee holds
/// unconditionally).

#include <cstdint>
#include <vector>

#include "ndarray/ndarray.hpp"
#include "util/buffer.hpp"

namespace fraz {

/// Tuning knob of the szx coder.
struct SzxOptions {
  /// Absolute error bound (> 0, finite).
  double error_bound = 1e-3;
};

/// Compress into a sealed container.
std::vector<std::uint8_t> szx_compress(const ArrayView& input, const SzxOptions& options);

/// Zero-copy variant: seal into the caller's reusable \p out.
void szx_compress_into(const ArrayView& input, const SzxOptions& options, Buffer& out);

/// Validate and reconstruct.  Throws CorruptStream on malformed frames.
NdArray szx_decompress(const std::uint8_t* data, std::size_t size);

inline NdArray szx_decompress(const std::vector<std::uint8_t>& data) {
  return szx_decompress(data.data(), data.size());
}

}  // namespace fraz

#endif  // FRAZ_COMPRESSORS_SZX_SZX_HPP
