#ifndef FRAZ_COMPRESSORS_SZX_SZX_KERNELS_HPP
#define FRAZ_COMPRESSORS_SZX_SZX_KERNELS_HPP

/// \file szx_kernels.hpp
/// Blockwise kernels for the szx backend: min/max/finite scan, bound-checked
/// quantization, dequantization, and the bit-plane (un)packers.
///
/// The scalar functions here are the *reference semantics* — the vector
/// versions in szx_kernels_simd.cpp must be bit-identical, and the scalar
/// code is written to mirror vertical 4-lane SIMD exactly (4 accumulator
/// lanes, `a < b ? a : b` min/max matching `_mm256_min_pd` operand order,
/// finiteness via `v - v == 0`, round-half-away-from-zero built from two
/// truncations instead of llround).  tests/test_simd_kernels.cpp pins the
/// equivalence on adversarial inputs.
///
/// Dispatch: callers check `simd_active()` (baseline-safe, see simd.hpp) and
/// pick the `_vec` entry points only when the wide TU is runtime-usable.

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "util/simd.hpp"

namespace fraz::szxk {

/// Elements per szx block.  One block is classified and encoded as a unit.
inline constexpr std::size_t kBlock = 128;

/// Quantized codes are capped at 30 bits so every code converts exactly (and
/// safely) through the signed-i32 SIMD paths; wider blocks are stored raw.
inline constexpr unsigned kMaxQBits = 30;
inline constexpr double kQMax = 1073741823.0;  // 2^30 - 1

struct BlockStats {
  double min;
  double max;
  bool all_finite;
};

struct QuantResult {
  std::uint32_t qor;  ///< OR of all codes (gives the required bit width).
  bool ok;            ///< Every element in range and within the bound.
};

/// Fold 4 accumulator lanes with the same `a < b ? a : b` selection the
/// vector path uses, so NaN propagation is identical.
inline double fold_min(const double* lane) {
  double m = lane[0];
  for (int l = 1; l < 4; ++l) m = m < lane[l] ? m : lane[l];
  return m;
}
inline double fold_max(const double* lane) {
  double m = lane[0];
  for (int l = 1; l < 4; ++l) m = m > lane[l] ? m : lane[l];
  return m;
}

/// Scalar reference: 4-lane vertical scan (lane = i & 3) folded at the end.
template <typename Scalar>
inline BlockStats block_stats_scalar(const Scalar* p, const std::size_t n) {
  double mn[4], mx[4];
  for (int l = 0; l < 4; ++l) {
    mn[l] = std::numeric_limits<double>::infinity();
    mx[l] = -std::numeric_limits<double>::infinity();
  }
  bool finite = true;
  for (std::size_t i = 0; i < n; ++i) {
    const double v = static_cast<double>(p[i]);
    const int l = static_cast<int>(i & 3);
    mn[l] = mn[l] < v ? mn[l] : v;
    mx[l] = mx[l] > v ? mx[l] : v;
    finite = finite && (v - v == 0.0);
  }
  return {fold_min(mn), fold_max(mx), finite};
}

/// Scalar reference quantizer: q[i] = round_half_away((p[i]-base)/twoe),
/// validated against the absolute bound e after reconstruction through the
/// storage type.  When the result reports !ok the q[] contents are
/// unspecified (the caller stores the block raw).
template <typename Scalar>
inline QuantResult quantize_scalar(const Scalar* p, const std::size_t n, const double base,
                                   const double twoe, const double e, std::uint32_t* q) {
  std::uint32_t qor = 0;
  bool ok = true;
  for (std::size_t i = 0; i < n; ++i) {
    const double v = static_cast<double>(p[i]);
    const double t = (v - base) / twoe;
    // Round half away from zero via two exact truncations; equals
    // llround(t) for every t in [0, 2^30] (pinned by test).
    const double tr = std::trunc(t);
    const double r = tr + std::trunc((t - tr) * 2.0);
    if (!(r >= 0.0 && r <= kQMax)) {
      ok = false;
      q[i] = 0;
      continue;
    }
    const double cd = static_cast<double>(static_cast<Scalar>(base + twoe * r));
    if (!(std::fabs(cd - v) <= e)) ok = false;
    const auto qi = static_cast<std::uint32_t>(static_cast<std::int32_t>(r));
    q[i] = qi;
    qor |= qi;
  }
  return {qor, ok};
}

/// Scalar reference dequantizer: out[i] = Scalar(base + twoe * q[i]).
template <typename Scalar>
inline void dequantize_scalar(const std::uint32_t* q, const std::size_t n, const double base,
                              const double twoe, Scalar* out) {
  for (std::size_t i = 0; i < n; ++i) {
    const double qd = static_cast<double>(static_cast<std::int32_t>(q[i]));
    out[i] = static_cast<Scalar>(base + twoe * qd);
  }
}

/// LSB-first bit-plane packer: appends ceil(n*bits/8) bytes to \p out.
/// bits <= kMaxQBits; each q[i] must fit in `bits` bits.
inline void pack_bits(const std::uint32_t* q, const std::size_t n, const unsigned bits,
                      std::vector<std::uint8_t>& out) {
  std::uint64_t acc = 0;
  unsigned fill = 0;
  for (std::size_t i = 0; i < n; ++i) {
    acc |= static_cast<std::uint64_t>(q[i]) << fill;
    fill += bits;
    while (fill >= 8) {
      out.push_back(static_cast<std::uint8_t>(acc));
      acc >>= 8;
      fill -= 8;
    }
  }
  if (fill > 0) out.push_back(static_cast<std::uint8_t>(acc));
}

/// Inverse of pack_bits over exactly ceil(n*bits/8) source bytes.
inline void unpack_bits(const std::uint8_t* src, const std::size_t n, const unsigned bits,
                        std::uint32_t* q) {
  std::uint64_t acc = 0;
  unsigned fill = 0;
  std::size_t pos = 0;
  const std::uint32_t mask =
      bits >= 32 ? ~0u : (bits == 0 ? 0u : ((1u << bits) - 1u));
  for (std::size_t i = 0; i < n; ++i) {
    while (fill < bits) {
      acc |= static_cast<std::uint64_t>(src[pos++]) << fill;
      fill += 8;
    }
    q[i] = static_cast<std::uint32_t>(acc) & mask;
    acc >>= bits;
    fill -= bits;
  }
}

// --- vector entry points (szx_kernels_simd.cpp; call only when active) -----

/// Compile-time ISA of the wide TU (fraz::simd::isa_id() there).
int kernels_isa() noexcept;
/// True when the wide TU actually carries vector kernels (AVX2 four-wide
/// doubles); false when it degraded to the scalar reference at compile time.
bool kernels_vectorized() noexcept;

BlockStats block_stats_vec(const float* p, std::size_t n);
BlockStats block_stats_vec(const double* p, std::size_t n);
QuantResult quantize_vec(const float* p, std::size_t n, double base, double twoe, double e,
                         std::uint32_t* q);
QuantResult quantize_vec(const double* p, std::size_t n, double base, double twoe, double e,
                         std::uint32_t* q);
void dequantize_vec(const std::uint32_t* q, std::size_t n, double base, double twoe, float* out);
void dequantize_vec(const std::uint32_t* q, std::size_t n, double base, double twoe, double* out);

/// Baseline-safe dispatch decision, memoized after the first call.
inline bool simd_active() noexcept {
  static const bool ok = kernels_vectorized() && simd::isa_runtime_ok(kernels_isa());
  return ok;
}

}  // namespace fraz::szxk

#endif  // FRAZ_COMPRESSORS_SZX_SZX_KERNELS_HPP
