#include "compressors/szx/szx.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "codec/varint.hpp"
#include "compressors/container.hpp"
#include "compressors/szx/szx_kernels.hpp"
#include "util/error.hpp"

namespace fraz {

namespace {

/// Payload layout (after the shared container header):
///   u8      payload version (1)
///   u8      block size log2 (7 -> 128 scalars per block)
///   f64     absolute error bound
///   varint  states byte count, then 2-bit block states packed LSB-first
///   varint  data byte count, then per-block data in block order:
///             state 0 (constant): Scalar midpoint
///             state 1 (packed):   Scalar base, u8 bits (<= 30),
///                                 ceil(n*bits/8) packed-code bytes
///             state 2 (raw):      n Scalars verbatim
constexpr std::uint8_t kPayloadVersion = 1;
constexpr std::uint8_t kBlockLog2 = 7;

enum BlockState : unsigned { kConstant = 0, kPacked = 1, kRaw = 2 };

unsigned bit_width(std::uint32_t v) {
  unsigned bits = 0;
  while ((v >> bits) != 0 && bits < 32) ++bits;
  return bits;
}

template <typename Scalar>
void append_scalar(std::vector<std::uint8_t>& out, const Scalar v) {
  std::uint8_t raw[sizeof(Scalar)];
  std::memcpy(raw, &v, sizeof(Scalar));
  out.insert(out.end(), raw, raw + sizeof(Scalar));
}

void append_f64_bits(std::vector<std::uint8_t>& out, const double v) {
  std::uint64_t u = 0;
  std::memcpy(&u, &v, sizeof(u));
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(u >> (8 * i)));
}

template <typename Scalar>
Scalar read_scalar(const std::uint8_t* p) {
  Scalar v;
  std::memcpy(&v, p, sizeof(Scalar));
  return v;
}

template <typename Scalar>
void encode_payload(const ArrayView& input, const double e, std::vector<std::uint8_t>& payload) {
  const Scalar* p = input.typed<Scalar>();
  const std::size_t n = input.elements();
  const std::size_t n_blocks = (n + szxk::kBlock - 1) / szxk::kBlock;
  std::vector<std::uint8_t> states((n_blocks + 3) / 4, 0);
  std::vector<std::uint8_t> data;
  data.reserve(n * sizeof(Scalar) / 4 + 64);
  const bool vec = szxk::simd_active();
  const double twoe = 2.0 * e;
  std::uint32_t q[szxk::kBlock];

  for (std::size_t b = 0; b < n_blocks; ++b) {
    const std::size_t off = b * szxk::kBlock;
    const std::size_t bn = std::min(szxk::kBlock, n - off);
    const Scalar* bp = p + off;
    const szxk::BlockStats st =
        vec ? szxk::block_stats_vec(bp, bn) : szxk::block_stats_scalar(bp, bn);
    unsigned state = kRaw;
    if (st.all_finite) {
      if (st.max - st.min <= twoe) {
        // Candidate constant block: the midpoint (as stored) must stay within
        // the bound of both extremes, hence of every element.
        const auto mid = static_cast<Scalar>(st.min + 0.5 * (st.max - st.min));
        const auto md = static_cast<double>(mid);
        if (std::fabs(md - st.min) <= e && std::fabs(md - st.max) <= e) {
          state = kConstant;
          append_scalar(data, mid);
        }
      }
      if (state != kConstant) {
        const szxk::QuantResult qr = vec ? szxk::quantize_vec(bp, bn, st.min, twoe, e, q)
                                         : szxk::quantize_scalar(bp, bn, st.min, twoe, e, q);
        if (qr.ok) {
          state = kPacked;
          append_scalar(data, static_cast<Scalar>(st.min));
          const unsigned bits = bit_width(qr.qor);
          data.push_back(static_cast<std::uint8_t>(bits));
          szxk::pack_bits(q, bn, bits, data);
        }
      }
    }
    if (state == kRaw) {
      const auto* raw = reinterpret_cast<const std::uint8_t*>(bp);
      data.insert(data.end(), raw, raw + bn * sizeof(Scalar));
    }
    states[b >> 2] |= static_cast<std::uint8_t>(state << ((b & 3) * 2));
  }

  payload.push_back(kPayloadVersion);
  payload.push_back(kBlockLog2);
  append_f64_bits(payload, e);
  put_varint(payload, states.size());
  payload.insert(payload.end(), states.begin(), states.end());
  put_varint(payload, data.size());
  payload.insert(payload.end(), data.begin(), data.end());
}

template <typename Scalar>
void decode_payload(const Container& c, const std::size_t n, NdArray& out) {
  const std::uint8_t* payload = c.payload;
  const std::size_t psize = c.payload_size;
  std::size_t pos = 0;
  if (psize < 2) throw CorruptStream("szx: payload header truncated");
  if (payload[pos++] != kPayloadVersion) throw CorruptStream("szx: unknown payload version");
  if (payload[pos++] != kBlockLog2) throw CorruptStream("szx: unsupported block size");
  const double e = get_f64(payload, psize, pos);
  if (!(std::isfinite(e) && e > 0.0)) throw CorruptStream("szx: bad error bound");
  const double twoe = 2.0 * e;

  const std::size_t n_blocks = (n + szxk::kBlock - 1) / szxk::kBlock;
  const std::uint64_t states_bytes = get_varint(payload, psize, pos);
  if (states_bytes != (n_blocks + 3) / 4 || states_bytes > psize - pos)
    throw CorruptStream("szx: state stream size mismatch");
  const std::uint8_t* states = payload + pos;
  pos += states_bytes;
  const std::uint64_t data_bytes = get_varint(payload, psize, pos);
  if (data_bytes != psize - pos) throw CorruptStream("szx: data stream size mismatch");

  Scalar* outp = out.typed<Scalar>();
  const bool vec = szxk::simd_active();
  std::uint32_t q[szxk::kBlock];
  for (std::size_t b = 0; b < n_blocks; ++b) {
    const std::size_t off = b * szxk::kBlock;
    const std::size_t bn = std::min(szxk::kBlock, n - off);
    const unsigned state = (states[b >> 2] >> ((b & 3) * 2)) & 3u;
    switch (state) {
      case kConstant: {
        if (psize - pos < sizeof(Scalar)) throw CorruptStream("szx: constant block truncated");
        const Scalar mid = read_scalar<Scalar>(payload + pos);
        pos += sizeof(Scalar);
        std::fill(outp + off, outp + off + bn, mid);
        break;
      }
      case kPacked: {
        if (psize - pos < sizeof(Scalar) + 1) throw CorruptStream("szx: packed block truncated");
        const auto base = static_cast<double>(read_scalar<Scalar>(payload + pos));
        pos += sizeof(Scalar);
        const unsigned bits = payload[pos++];
        if (bits > szxk::kMaxQBits) throw CorruptStream("szx: packed bit width out of range");
        const std::size_t nbytes = (bn * bits + 7) / 8;
        if (psize - pos < nbytes) throw CorruptStream("szx: packed codes truncated");
        szxk::unpack_bits(payload + pos, bn, bits, q);
        pos += nbytes;
        if (vec)
          szxk::dequantize_vec(q, bn, base, twoe, outp + off);
        else
          szxk::dequantize_scalar(q, bn, base, twoe, outp + off);
        break;
      }
      case kRaw: {
        const std::size_t nbytes = bn * sizeof(Scalar);
        if (psize - pos < nbytes) throw CorruptStream("szx: raw block truncated");
        std::memcpy(outp + off, payload + pos, nbytes);
        pos += nbytes;
        break;
      }
      default:
        throw CorruptStream("szx: invalid block state");
    }
  }
  if (pos != psize) throw CorruptStream("szx: trailing bytes after block data");
}

}  // namespace

std::vector<std::uint8_t> szx_compress(const ArrayView& input, const SzxOptions& options) {
  Buffer out;
  szx_compress_into(input, options, out);
  return out.to_vector();
}

void szx_compress_into(const ArrayView& input, const SzxOptions& options, Buffer& out) {
  require(input.dims() >= 1 && input.dims() <= 8, "szx: supports 1D..8D data");
  require(input.elements() > 0, "szx: empty input");
  require(std::isfinite(options.error_bound) && options.error_bound > 0,
          "szx: error bound must be positive and finite");
  std::vector<std::uint8_t> payload;
  if (input.dtype() == DType::kFloat32)
    encode_payload<float>(input, options.error_bound, payload);
  else
    encode_payload<double>(input, options.error_bound, payload);
  seal_container_into(CompressorId::kSzx, input.dtype(), input.shape(), payload, out);
}

NdArray szx_decompress(const std::uint8_t* data, std::size_t size) {
  const Container c = open_container(data, size, CompressorId::kSzx);
  std::uint64_t n = 1;
  for (const std::size_t extent : c.shape) {
    if (extent == 0 || n > (std::uint64_t{1} << 42) / extent)
      throw CorruptStream("szx: implausible shape");
    n *= extent;
  }
  NdArray out(c.dtype, c.shape);
  if (c.dtype == DType::kFloat32)
    decode_payload<float>(c, static_cast<std::size_t>(n), out);
  else
    decode_payload<double>(c, static_cast<std::size_t>(n), out);
  return out;
}

}  // namespace fraz
