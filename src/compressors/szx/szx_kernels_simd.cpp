/// Vector implementations of the szx block kernels.  CMake compiles this TU
/// with `-mavx2 -ffp-contract=off` on x86 when available; without wide64
/// support every entry point degrades to the scalar reference (and
/// kernels_vectorized() reports false so callers never pay the call).
///
/// Bit-identity with szx_kernels.hpp scalar references is a hard contract —
/// see the header comment and tests/test_simd_kernels.cpp.
#include "compressors/szx/szx_kernels.hpp"

namespace fraz::szxk {

int kernels_isa() noexcept { return simd::isa_id(); }

bool kernels_vectorized() noexcept {
#if defined(FRAZ_SIMD_HAS_WIDE64)
  return true;
#else
  return false;
#endif
}

#if defined(FRAZ_SIMD_HAS_WIDE64)

namespace {

using simd::V4d;
using simd::V4i32;

template <typename Scalar>
inline V4d load_lanes(const Scalar* p);
template <>
inline V4d load_lanes<float>(const float* p) {
  return V4d::load4f(p);
}
template <>
inline V4d load_lanes<double>(const double* p) {
  return V4d::load(p);
}

/// Round-trip through the storage type: identity for double, float cast for
/// float — matches `(double)(Scalar)x` lane-wise.
template <typename Scalar>
inline V4d storage_roundtrip(V4d x);
template <>
inline V4d storage_roundtrip<float>(V4d x) {
  return simd::f32_roundtrip(x);
}
template <>
inline V4d storage_roundtrip<double>(V4d x) {
  return x;
}

template <typename Scalar>
BlockStats block_stats_impl(const Scalar* p, const std::size_t n) {
  const std::size_t n4 = n & ~std::size_t{3};
  V4d vmn = V4d::bcast(std::numeric_limits<double>::infinity());
  V4d vmx = V4d::bcast(-std::numeric_limits<double>::infinity());
  V4d vfin = simd::cmp_eq(V4d::bcast(0.0), V4d::bcast(0.0));  // all-ones mask
  for (std::size_t i = 0; i < n4; i += 4) {
    const V4d v = load_lanes<Scalar>(p + i);
    vmn = simd::vmin(vmn, v);
    vmx = simd::vmax(vmx, v);
    vfin = simd::mask_and(vfin, simd::cmp_eq(simd::sub(v, v), V4d::bcast(0.0)));
  }
  double mn[4], mx[4];
  vmn.store(mn);
  vmx.store(mx);
  bool finite = simd::movemask(vfin) == 0xF;
  for (std::size_t i = n4; i < n; ++i) {
    const double v = static_cast<double>(p[i]);
    const int l = static_cast<int>(i & 3);
    mn[l] = mn[l] < v ? mn[l] : v;
    mx[l] = mx[l] > v ? mx[l] : v;
    finite = finite && (v - v == 0.0);
  }
  return {fold_min(mn), fold_max(mx), finite};
}

template <typename Scalar>
QuantResult quantize_impl(const Scalar* p, const std::size_t n, const double base,
                          const double twoe, const double e, std::uint32_t* q) {
  const std::size_t n4 = n & ~std::size_t{3};
  const V4d vbase = V4d::bcast(base);
  const V4d vtwoe = V4d::bcast(twoe);
  const V4d ve = V4d::bcast(e);
  const V4d vzero = V4d::bcast(0.0);
  const V4d vtwo = V4d::bcast(2.0);
  const V4d vqmax = V4d::bcast(kQMax);
  V4i32 vqor{};
  bool ok = true;
  for (std::size_t i = 0; i < n4; i += 4) {
    const V4d v = load_lanes<Scalar>(p + i);
    const V4d t = simd::div(simd::sub(v, vbase), vtwoe);
    const V4d tr = simd::trunc(t);
    const V4d r = simd::add(tr, simd::trunc(simd::mul(simd::sub(t, tr), vtwo)));
    const V4d in_range = simd::mask_and(simd::cmp_le(vzero, r), simd::cmp_le(r, vqmax));
    const V4d cd = storage_roundtrip<Scalar>(simd::add(vbase, simd::mul(vtwoe, r)));
    const V4d err_ok = simd::cmp_le(simd::vabs(simd::sub(cd, v)), ve);
    ok = ok && simd::movemask(simd::mask_and(in_range, err_ok)) == 0xF;
    // Out-of-range lanes are blended to 0.0 before the convert, matching the
    // scalar reference's q[i] = 0 on its skip path.
    const V4i32 qi = simd::to_i32(simd::blend(in_range, r, vzero));
    qi.store(reinterpret_cast<std::int32_t*>(q + i));
    vqor = simd::vor(vqor, qi);
  }
  std::int32_t lanes[4];
  vqor.store(lanes);
  std::uint32_t qor = static_cast<std::uint32_t>(lanes[0]) | static_cast<std::uint32_t>(lanes[1]) |
                      static_cast<std::uint32_t>(lanes[2]) | static_cast<std::uint32_t>(lanes[3]);
  for (std::size_t i = n4; i < n; ++i) {
    const double v = static_cast<double>(p[i]);
    const double t = (v - base) / twoe;
    const double tr = std::trunc(t);
    const double r = tr + std::trunc((t - tr) * 2.0);
    if (!(r >= 0.0 && r <= kQMax)) {
      ok = false;
      q[i] = 0;
      continue;
    }
    const double cd = static_cast<double>(static_cast<Scalar>(base + twoe * r));
    if (!(std::fabs(cd - v) <= e)) ok = false;
    const auto qi = static_cast<std::uint32_t>(static_cast<std::int32_t>(r));
    q[i] = qi;
    qor |= qi;
  }
  return {qor, ok};
}

template <typename Scalar>
inline void store_lanes(V4d x, Scalar* out);
template <>
inline void store_lanes<float>(V4d x, float* out) {
  simd::store4f(x, out);
}
template <>
inline void store_lanes<double>(V4d x, double* out) {
  x.store(out);
}

template <typename Scalar>
void dequantize_impl(const std::uint32_t* q, const std::size_t n, const double base,
                     const double twoe, Scalar* out) {
  const std::size_t n4 = n & ~std::size_t{3};
  const V4d vbase = V4d::bcast(base);
  const V4d vtwoe = V4d::bcast(twoe);
  for (std::size_t i = 0; i < n4; i += 4) {
    const V4i32 qi = V4i32::load(reinterpret_cast<const std::int32_t*>(q + i));
    const V4d qd = simd::to_f64(qi);
    store_lanes<Scalar>(simd::add(vbase, simd::mul(vtwoe, qd)), out + i);
  }
  for (std::size_t i = n4; i < n; ++i) {
    const double qd = static_cast<double>(static_cast<std::int32_t>(q[i]));
    out[i] = static_cast<Scalar>(base + twoe * qd);
  }
}

}  // namespace

BlockStats block_stats_vec(const float* p, std::size_t n) { return block_stats_impl(p, n); }
BlockStats block_stats_vec(const double* p, std::size_t n) { return block_stats_impl(p, n); }
QuantResult quantize_vec(const float* p, std::size_t n, double base, double twoe, double e,
                         std::uint32_t* q) {
  return quantize_impl(p, n, base, twoe, e, q);
}
QuantResult quantize_vec(const double* p, std::size_t n, double base, double twoe, double e,
                         std::uint32_t* q) {
  return quantize_impl(p, n, base, twoe, e, q);
}
void dequantize_vec(const std::uint32_t* q, std::size_t n, double base, double twoe, float* out) {
  dequantize_impl(q, n, base, twoe, out);
}
void dequantize_vec(const std::uint32_t* q, std::size_t n, double base, double twoe, double* out) {
  dequantize_impl(q, n, base, twoe, out);
}

#else  // !FRAZ_SIMD_HAS_WIDE64 — scalar reference stands in

BlockStats block_stats_vec(const float* p, std::size_t n) { return block_stats_scalar(p, n); }
BlockStats block_stats_vec(const double* p, std::size_t n) { return block_stats_scalar(p, n); }
QuantResult quantize_vec(const float* p, std::size_t n, double base, double twoe, double e,
                         std::uint32_t* q) {
  return quantize_scalar(p, n, base, twoe, e, q);
}
QuantResult quantize_vec(const double* p, std::size_t n, double base, double twoe, double e,
                         std::uint32_t* q) {
  return quantize_scalar(p, n, base, twoe, e, q);
}
void dequantize_vec(const std::uint32_t* q, std::size_t n, double base, double twoe, float* out) {
  dequantize_scalar(q, n, base, twoe, out);
}
void dequantize_vec(const std::uint32_t* q, std::size_t n, double base, double twoe, double* out) {
  dequantize_scalar(q, n, base, twoe, out);
}

#endif

}  // namespace fraz::szxk
