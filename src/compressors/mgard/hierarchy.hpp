#ifndef FRAZ_COMPRESSORS_MGARD_HIERARCHY_HPP
#define FRAZ_COMPRESSORS_MGARD_HIERARCHY_HPP

/// \file hierarchy.hpp
/// Dyadic nodal grid hierarchy for the MGARD-like multilevel compressor.
///
/// For an axis of n samples and L refinement levels, the level-l node set is
///   grid(l) = { i : i % 2^(L-l) == 0 } ∪ { n-1 }
/// so grid(0) is the coarsest lattice and grid(L) is every sample.  The last
/// index is a member of every level so arbitrary (non 2^k+1) extents are
/// handled without padding.  A multi-index node first appears at the level
/// where *all* of its coordinates are on the axis grids; that level is the
/// node's coefficient level.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "ndarray/ndarray.hpp"

namespace fraz::mgard_detail {

/// Number of refinement levels used for \p shape: enough to reduce the
/// largest axis to ~2 coarse intervals, capped so tiny inputs still work.
unsigned level_count(const Shape& shape);

/// True when coordinate \p i of an axis of extent \p n lies on grid(l).
bool on_axis_level(std::size_t i, std::size_t n, unsigned level, unsigned total_levels);

/// Smallest level at which coordinate \p i appears (0 = coarsest).
unsigned axis_level(std::size_t i, std::size_t n, unsigned total_levels);

/// Coarse-grid bracket of \p i on grid(level): the nearest members lo <= i
/// and hi > i.  Precondition: i is NOT on grid(level).
struct Bracket {
  std::size_t lo;
  std::size_t hi;
  double weight;  ///< interpolation weight of hi: (i - lo) / (hi - lo)
};
Bracket axis_bracket(std::size_t i, std::size_t n, unsigned level, unsigned total_levels);

/// Per-node coefficient level for every flat index of the array, row-major.
std::vector<std::uint8_t> node_levels(const Shape& shape, unsigned total_levels);

}  // namespace fraz::mgard_detail

#endif  // FRAZ_COMPRESSORS_MGARD_HIERARCHY_HPP
