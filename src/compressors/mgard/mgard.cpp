#include "compressors/mgard/mgard.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstring>

#include "codec/huffman.hpp"
#include "codec/lz.hpp"
#include "codec/varint.hpp"
#include "compressors/container.hpp"
#include "compressors/mgard/hierarchy.hpp"
#include "util/error.hpp"

namespace fraz {

namespace {

using namespace mgard_detail;

/// Quantization radius for the Huffman alphabet; large residuals escape to a
/// raw-scalar stream (code 0), exactly as in the SZ reproduction.
constexpr std::int64_t kRadius = std::int64_t{1} << 21;

/// Effective per-level quantizer half-width for the requested norm.
///
/// MGARD 0.0.0.2's computable bound comes from splitting the loss budget
/// across the level hierarchy: coefficients are taken against the *original*
/// coarse values, the decoder interpolates from reconstructions, and the
/// per-level errors telescope — |err| <= sum_l d_l.  A uniform split
/// d_l = tolerance / (levels + 1) guarantees the bound at the cost of a
/// (levels+1)-times finer quantizer, which is exactly why the paper finds
/// MGARD's ratios the weakest of the three compressors (Figs. 9, 10).
double half_width(const MgardOptions& opt, unsigned levels) {
  const double budget = opt.norm == MgardNorm::kInfinity
                            ? opt.tolerance
                            // Uniform quantization error ~U(-d, d): variance
                            // d^2/3, so d = sqrt(3*MSE) meets the L2 target.
                            : std::sqrt(3.0 * opt.tolerance);
  return budget / static_cast<double>(levels + 1);
}

std::array<std::size_t, 3> strides_of(const Shape& shape) {
  std::array<std::size_t, 3> s{0, 0, 0};
  const std::size_t d = shape.size();
  s[d - 1] = 1;
  for (std::size_t i = d - 1; i-- > 0;) s[i] = s[i + 1] * shape[i + 1];
  return s;
}

/// Multilinear interpolation of node \p coord from the (already
/// reconstructed) next-coarser grid.  Axes whose coordinate lies on the
/// coarse grid contribute a single plane; the remaining axes contribute the
/// bracketing pair with linear weights.
template <typename Scalar>
double interpolate(const Scalar* recon, const Shape& shape,
                   const std::array<std::size_t, 3>& stride, const std::size_t* coord,
                   unsigned coarse_level, unsigned total_levels) {
  const unsigned dims = static_cast<unsigned>(shape.size());
  // Per axis: one or two taps.
  std::size_t tap_idx[3][2] = {};
  double tap_w[3][2] = {};
  unsigned tap_n[3] = {1, 1, 1};
  for (unsigned d = 0; d < dims; ++d) {
    if (on_axis_level(coord[d], shape[d], coarse_level, total_levels)) {
      tap_idx[d][0] = coord[d];
      tap_w[d][0] = 1.0;
      tap_n[d] = 1;
    } else {
      const Bracket b = axis_bracket(coord[d], shape[d], coarse_level, total_levels);
      tap_idx[d][0] = b.lo;
      tap_w[d][0] = 1.0 - b.weight;
      tap_idx[d][1] = b.hi;
      tap_w[d][1] = b.weight;
      tap_n[d] = 2;
    }
  }
  double acc = 0;
  const unsigned n0 = tap_n[0];
  const unsigned n1 = dims > 1 ? tap_n[1] : 1;
  const unsigned n2 = dims > 2 ? tap_n[2] : 1;
  for (unsigned a = 0; a < n0; ++a)
    for (unsigned b = 0; b < n1; ++b)
      for (unsigned c = 0; c < n2; ++c) {
        std::size_t idx = tap_idx[0][a] * stride[0];
        double w = tap_w[0][a];
        if (dims > 1) {
          idx += tap_idx[1][b] * stride[1];
          w *= tap_w[1][b];
        }
        if (dims > 2) {
          idx += tap_idx[2][c] * stride[2];
          w *= tap_w[2][c];
        }
        acc += w * static_cast<double>(recon[idx]);
      }
  return acc;
}

template <typename Scalar>
void put_scalar(std::vector<std::uint8_t>& out, Scalar v) {
  std::uint8_t bytes[sizeof(Scalar)];
  std::memcpy(bytes, &v, sizeof(Scalar));
  out.insert(out.end(), bytes, bytes + sizeof(Scalar));
}

template <typename Scalar>
Scalar get_scalar(const std::uint8_t* data, std::size_t size, std::size_t& pos) {
  if (pos + sizeof(Scalar) > size) throw CorruptStream("mgard: truncated raw scalar");
  Scalar v;
  std::memcpy(&v, data + pos, sizeof(Scalar));
  pos += sizeof(Scalar);
  return v;
}

/// Convert flat index to coordinates (row-major).
inline void unflatten(std::size_t idx, const Shape& shape, std::size_t* coord) {
  for (unsigned d = static_cast<unsigned>(shape.size()); d-- > 0;) {
    coord[d] = idx % shape[d];
    idx /= shape[d];
  }
}

template <typename Scalar>
void compress_impl(const ArrayView& input, const MgardOptions& opt, Buffer& out) {
  const Shape& shape = input.shape();
  const auto stride = strides_of(shape);
  const Scalar* data = input.typed<Scalar>();
  const unsigned levels = level_count(shape);
  const std::vector<std::uint8_t> lvl = node_levels(shape, levels);
  const double d_half = half_width(opt, levels);
  const double step = 2.0 * d_half;

  std::vector<std::uint32_t> codes(input.elements());
  std::vector<std::uint8_t> raw_stream;

  // Multilevel decomposition against the ORIGINAL field (as in MGARD
  // 0.0.0.2): coefficient = value - interpolation of original coarse values.
  // The decoder interpolates from reconstructions instead, so per-level
  // quantization errors telescope; the per-level half-width keeps the total
  // within the requested tolerance.
  for (unsigned l = 0; l <= levels; ++l) {
    for (std::size_t idx = 0; idx < input.elements(); ++idx) {
      if (lvl[idx] != l) continue;
      std::size_t coord[3] = {0, 0, 0};
      unflatten(idx, shape, coord);
      const double v = static_cast<double>(data[idx]);
      // Level 0 nodes have no coarser grid: predict 0 (direct quantization).
      const double pred = l == 0 ? 0.0 : interpolate(data, shape, stride, coord, l - 1, levels);
      const double qf = (v - pred) / step;
      bool escaped = true;
      if (std::abs(qf) < static_cast<double>(kRadius) - 1) {
        const std::int64_t q = std::llround(qf);
        const double candidate = pred + step * static_cast<double>(q);
        if (std::isfinite(candidate) && std::abs(candidate - v) <= d_half) {
          codes[idx] = static_cast<std::uint32_t>(kRadius + q);
          escaped = false;
        }
      }
      if (escaped) {
        codes[idx] = 0;
        put_scalar(raw_stream, data[idx]);
      }
    }
  }

  const std::vector<std::uint8_t> huff = huffman_encode(codes);
  std::vector<std::uint8_t> assembled;
  assembled.reserve(huff.size() + raw_stream.size() + 32);
  assembled.push_back(static_cast<std::uint8_t>(opt.norm));
  put_scalar(assembled, opt.tolerance);
  put_varint(assembled, levels);
  put_varint(assembled, huff.size());
  assembled.insert(assembled.end(), huff.begin(), huff.end());
  put_varint(assembled, raw_stream.size());
  assembled.insert(assembled.end(), raw_stream.begin(), raw_stream.end());

  const std::vector<std::uint8_t> packed = lz_compress(assembled);
  seal_container_into(CompressorId::kMgard, input.dtype(), input.shape(), packed, out);
}

template <typename Scalar>
NdArray decompress_impl(const Container& c) {
  const std::vector<std::uint8_t> assembled = lz_decompress(c.payload, c.payload_size);
  const std::uint8_t* p = assembled.data();
  const std::size_t size = assembled.size();
  std::size_t pos = 0;
  if (size < 1) throw CorruptStream("mgard: empty payload");

  MgardOptions opt;
  const std::uint8_t norm_tag = p[pos++];
  if (norm_tag > 1) throw CorruptStream("mgard: bad norm tag");
  opt.norm = static_cast<MgardNorm>(norm_tag);
  opt.tolerance = get_scalar<double>(p, size, pos);
  if (!(opt.tolerance > 0) || !std::isfinite(opt.tolerance))
    throw CorruptStream("mgard: bad stored tolerance");
  const auto levels = static_cast<unsigned>(get_varint(p, size, pos));
  if (levels == 0 || levels > 20) throw CorruptStream("mgard: bad level count");

  const std::uint64_t huff_bytes = get_varint(p, size, pos);
  if (pos + huff_bytes > size) throw CorruptStream("mgard: truncated code stream");
  const std::vector<std::uint32_t> codes = huffman_decode(p + pos, huff_bytes);
  pos += huff_bytes;
  const std::uint64_t raw_bytes = get_varint(p, size, pos);
  if (pos + raw_bytes > size) throw CorruptStream("mgard: truncated raw stream");
  const std::uint8_t* raw_stream = p + pos;
  std::size_t raw_pos = 0;

  const Shape& shape = c.shape;
  const auto stride = strides_of(shape);
  NdArray out(c.dtype, shape);
  Scalar* recon = out.typed<Scalar>();
  if (codes.size() != out.elements()) throw CorruptStream("mgard: code count mismatch");
  const std::vector<std::uint8_t> lvl = node_levels(shape, levels);
  const double step = 2.0 * half_width(opt, levels);

  for (unsigned l = 0; l <= levels; ++l) {
    for (std::size_t idx = 0; idx < out.elements(); ++idx) {
      if (lvl[idx] != l) continue;
      const std::uint32_t code = codes[idx];
      if (code == 0) {
        recon[idx] = get_scalar<Scalar>(raw_stream, raw_bytes, raw_pos);
        continue;
      }
      std::size_t coord[3] = {0, 0, 0};
      unflatten(idx, shape, coord);
      const double pred =
          l == 0 ? 0.0 : interpolate(recon, shape, stride, coord, l - 1, levels);
      const auto q = static_cast<std::int64_t>(code) - kRadius;
      recon[idx] = static_cast<Scalar>(pred + step * static_cast<double>(q));
    }
  }
  return out;
}

void validate(const ArrayView& input, const MgardOptions& opt) {
  if (input.dims() < 2 || input.dims() > 3)
    throw Unsupported("mgard: supports only 2D and 3D data");
  require(input.elements() > 0, "mgard: empty input");
  require(opt.tolerance > 0 && std::isfinite(opt.tolerance),
          "mgard: tolerance must be positive and finite");
  for (std::size_t d : input.shape())
    require(d >= 2, "mgard: every extent must be >= 2");
}

}  // namespace

std::vector<std::uint8_t> mgard_compress(const ArrayView& input, const MgardOptions& options) {
  Buffer out;
  mgard_compress_into(input, options, out);
  return out.to_vector();
}

void mgard_compress_into(const ArrayView& input, const MgardOptions& options, Buffer& out) {
  validate(input, options);
  if (input.dtype() == DType::kFloat32)
    compress_impl<float>(input, options, out);
  else
    compress_impl<double>(input, options, out);
}

NdArray mgard_decompress(const std::uint8_t* data, std::size_t size) {
  const Container c = open_container(data, size, CompressorId::kMgard);
  if (c.shape.size() < 2 || c.shape.size() > 3)
    throw Unsupported("mgard: container rank unsupported");
  return c.dtype == DType::kFloat32 ? decompress_impl<float>(c) : decompress_impl<double>(c);
}

}  // namespace fraz
