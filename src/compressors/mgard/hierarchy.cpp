#include "compressors/mgard/hierarchy.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace fraz::mgard_detail {

unsigned level_count(const Shape& shape) {
  std::size_t max_extent = 1;
  for (std::size_t d : shape) max_extent = std::max(max_extent, d);
  unsigned levels = 0;
  // Stop when the coarsest stride would exceed the axis: 2^L <= max_extent-1.
  while ((std::size_t{1} << (levels + 1)) <= max_extent - 1 && levels < 12) ++levels;
  return std::max(levels, 1u);
}

bool on_axis_level(std::size_t i, std::size_t n, unsigned level, unsigned total_levels) {
  if (i == n - 1) return true;
  const std::size_t stride = std::size_t{1} << (total_levels - level);
  return i % stride == 0;
}

unsigned axis_level(std::size_t i, std::size_t n, unsigned total_levels) {
  for (unsigned l = 0; l <= total_levels; ++l)
    if (on_axis_level(i, n, l, total_levels)) return l;
  return total_levels;  // unreachable: level == total_levels has stride 1
}

Bracket axis_bracket(std::size_t i, std::size_t n, unsigned level, unsigned total_levels) {
  require(!on_axis_level(i, n, level, total_levels), "axis_bracket: node already on grid");
  const std::size_t stride = std::size_t{1} << (total_levels - level);
  const std::size_t lo = i - i % stride;
  std::size_t hi = lo + stride;
  if (hi > n - 1) hi = n - 1;
  Bracket b;
  b.lo = lo;
  b.hi = hi;
  b.weight = static_cast<double>(i - lo) / static_cast<double>(hi - lo);
  return b;
}

std::vector<std::uint8_t> node_levels(const Shape& shape, unsigned total_levels) {
  const std::size_t n = shape_elements(shape);
  std::vector<std::uint8_t> levels(n);
  const unsigned dims = static_cast<unsigned>(shape.size());
  std::vector<std::vector<std::uint8_t>> axis_lvl(dims);
  for (unsigned d = 0; d < dims; ++d) {
    axis_lvl[d].resize(shape[d]);
    for (std::size_t i = 0; i < shape[d]; ++i)
      axis_lvl[d][i] = static_cast<std::uint8_t>(axis_level(i, shape[d], total_levels));
  }
  std::vector<std::size_t> coord(dims, 0);
  for (std::size_t idx = 0; idx < n; ++idx) {
    std::uint8_t lvl = 0;
    for (unsigned d = 0; d < dims; ++d) lvl = std::max(lvl, axis_lvl[d][coord[d]]);
    levels[idx] = lvl;
    // advance row-major coordinates
    for (unsigned d = dims; d-- > 0;) {
      if (++coord[d] < shape[d]) break;
      coord[d] = 0;
    }
  }
  return levels;
}

}  // namespace fraz::mgard_detail
