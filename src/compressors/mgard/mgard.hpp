#ifndef FRAZ_COMPRESSORS_MGARD_MGARD_HPP
#define FRAZ_COMPRESSORS_MGARD_MGARD_HPP

/// \file mgard.hpp
/// Multigrid-style error-controlled lossy compressor in the spirit of MGARD
/// (Ainsworth, Tugluk, Whitney, Klasky — CVS 2018).
///
/// The defining MGARD features the FRaZ paper relies on are preserved:
///  - multilevel (multigrid) reduction: values are predicted by multilinear
///    interpolation from the next-coarser dyadic grid and only the residual
///    coefficients are coded, level by level;
///  - *guaranteed, computable* bounds on the reconstruction loss: residuals
///    are quantized against the decoder's own reconstruction, so the final
///    L-infinity error is bounded by the quantizer half-width;
///  - two norms: infinity norm (absolute bound) and an L2 norm mode that
///    targets mean squared error;
///  - 2D/3D support only (the paper excludes MGARD from 1D HACC/EXAALT).
///
/// Substitution note (see DESIGN.md): the original MGARD performs an L2
/// Galerkin projection between levels; this reproduction uses plain nodal
/// interpolation hierarchies, which keeps the computable-bound property and
/// the multilevel structure while simplifying the linear algebra.

#include <cstdint>
#include <vector>

#include "ndarray/ndarray.hpp"
#include "util/buffer.hpp"

namespace fraz {

/// Error norm used to control loss.
enum class MgardNorm : std::uint8_t {
  kInfinity = 0,  ///< tolerance = absolute error bound
  kL2 = 1,        ///< tolerance = target mean squared error
};

/// Tuning knobs for the MGARD-like compressor.
struct MgardOptions {
  MgardNorm norm = MgardNorm::kInfinity;
  /// Absolute bound (kInfinity) or MSE target (kL2); must be > 0.
  double tolerance = 1e-3;
};

/// Compress \p input (2D/3D, f32/f64).  Throws Unsupported for 1D data.
std::vector<std::uint8_t> mgard_compress(const ArrayView& input, const MgardOptions& options);

/// Zero-copy variant: write the sealed container into the caller's reusable
/// \p out (cleared first, capacity retained across calls).
void mgard_compress_into(const ArrayView& input, const MgardOptions& options, Buffer& out);

/// Decompress a container produced by mgard_compress.
NdArray mgard_decompress(const std::uint8_t* data, std::size_t size);

inline NdArray mgard_decompress(const std::vector<std::uint8_t>& data) {
  return mgard_decompress(data.data(), data.size());
}

}  // namespace fraz

#endif  // FRAZ_COMPRESSORS_MGARD_MGARD_HPP
