#include "compressors/container.hpp"

#include <cstring>

#include "codec/checksum.hpp"
#include "codec/varint.hpp"
#include "util/error.hpp"

namespace fraz {

namespace {
constexpr std::uint32_t kMagic = 0x5a615246u;  // "FRaZ" little-endian
constexpr std::uint8_t kVersion = 1;
}  // namespace

std::vector<std::uint8_t> seal_container(CompressorId id, DType dtype, const Shape& shape,
                                         const std::vector<std::uint8_t>& payload) {
  Buffer out;
  seal_container_into(id, dtype, shape, payload, out);
  return out.to_vector();
}

void seal_container_into(CompressorId id, DType dtype, const Shape& shape,
                         const std::uint8_t* payload, std::size_t payload_size, Buffer& out,
                         std::uint8_t version) {
  out.clear();
  out.reserve(payload_size + 32);
  put_u32(out, kMagic);
  out.push_back(version);
  out.push_back(static_cast<std::uint8_t>(id));
  out.push_back(dtype == DType::kFloat32 ? 0 : 1);
  put_varint(out, shape.size());
  for (std::size_t d : shape) put_varint(out, d);
  put_varint(out, payload_size);
  out.append(payload, payload_size);
  put_u32(out, crc32(out.data(), out.size()));
}

void seal_container_into(CompressorId id, DType dtype, const Shape& shape,
                         const std::vector<std::uint8_t>& payload, Buffer& out) {
  seal_container_into(id, dtype, shape, payload.data(), payload.size(), out);
}

namespace {

Container open_container_impl(const std::uint8_t* data, std::size_t size,
                              const CompressorId* expected) {
  std::size_t pos = 0;
  if (size < 12) throw CorruptStream("container: too small");
  if (get_u32(data, size, pos) != kMagic) throw CorruptStream("container: bad magic");
  const std::uint32_t stored_crc = [&] {
    std::size_t p = size - 4;
    return get_u32(data, size, p);
  }();
  if (crc32(data, size - 4) != stored_crc) throw CorruptStream("container: checksum mismatch");

  const std::uint8_t version = data[pos++];
  const std::uint8_t id_tag = data[pos++];
  const std::uint8_t dtype_tag = data[pos++];
  // Version 2 exists only for sz blocked payloads; every other backend is
  // pinned to version 1 so an unknown (version, id) pair fails loudly here
  // instead of misparsing downstream.
  if (version != kVersion &&
      !(version == 2 && id_tag == static_cast<std::uint8_t>(CompressorId::kSz)))
    throw CorruptStream("container: unsupported version");
  if (dtype_tag > 1) throw CorruptStream("container: bad dtype tag");
  if (id_tag < static_cast<std::uint8_t>(CompressorId::kSz) ||
      id_tag > static_cast<std::uint8_t>(CompressorId::kFpc))
    throw CorruptStream("container: unknown compressor id");
  const auto id = static_cast<CompressorId>(id_tag);
  if (expected && id != *expected)
    throw Unsupported("container: produced by a different compressor");

  Container c;
  c.id = id;
  c.dtype = dtype_tag == 0 ? DType::kFloat32 : DType::kFloat64;
  const std::uint64_t ndims = get_varint(data, size, pos);
  if (ndims == 0 || ndims > 8) throw CorruptStream("container: bad rank");
  c.shape.resize(ndims);
  for (auto& d : c.shape) {
    d = get_varint(data, size, pos);
    if (d == 0) throw CorruptStream("container: zero extent");
  }
  const std::uint64_t payload_size = get_varint(data, size, pos);
  if (pos + payload_size + 4 != size) throw CorruptStream("container: payload size mismatch");
  c.payload = data + pos;
  c.payload_size = payload_size;
  c.version = version;
  return c;
}

}  // namespace

Container open_container(const std::uint8_t* data, std::size_t size, CompressorId expected) {
  return open_container_impl(data, size, &expected);
}

Container open_container(const std::uint8_t* data, std::size_t size) {
  return open_container_impl(data, size, nullptr);
}

}  // namespace fraz
