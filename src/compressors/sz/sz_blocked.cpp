#include "compressors/sz/sz_blocked.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstring>

#include "codec/rans_interleaved.hpp"
#include "codec/varint.hpp"
#include "compressors/sz/sz_internal.hpp"
#include "compressors/sz/sz_kernels.hpp"
#include "opt/thread_pool.hpp"
#include "util/error.hpp"

namespace fraz {

namespace {

using szi::BlockGeom;
using szi::CoeffSteps;
using szi::kRadius;

/// A run of consecutive row-major blocks coded as one independent unit.
struct Group {
  std::size_t first_block;
  std::size_t block_count;
  std::size_t elems;
};

std::vector<BlockGeom> collect_blocks(const Shape& shape, unsigned dims) {
  std::vector<BlockGeom> blocks;
  blocks.reserve(szi::count_blocks(shape, dims, szb::blocked_edge(dims)));
  szi::for_each_block(shape, dims, szb::blocked_edge(dims),
                      [&](const BlockGeom& g) { blocks.push_back(g); });
  return blocks;
}

/// Greedy grouping: close a group once it reaches the element target.  A
/// pure function of the block list (hence of the shape), which is what makes
/// the payload thread-count independent.
std::vector<Group> build_groups(const std::vector<BlockGeom>& blocks) {
  std::vector<Group> groups;
  Group cur{0, 0, 0};
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    cur.block_count += 1;
    cur.elems += blocks[i].len[0] * blocks[i].len[1] * blocks[i].len[2];
    if (cur.elems >= szb::kGroupTargetElems) {
      groups.push_back(cur);
      cur = {i + 1, 0, 0};
    }
  }
  if (cur.block_count != 0) groups.push_back(cur);
  return groups;
}

/// Normalized block view: every block is (planes, rows, inner) with the
/// inner axis contiguous (stride 1).  1D and 2D blocks degenerate to
/// planes == 1 (and rows == 1 for 1D), which also collapses the 7-term
/// Lorenzo stencil below to the 3-term (2D) and 1-term (1D) forms exactly.
struct NormBlock {
  std::size_t planes, rows, inner;
  std::size_t base_idx;       // flat index of the block origin
  std::size_t plane_stride;   // global stride between p and p+1 (0 when planes==1)
  std::size_t row_stride;     // global stride between r and r+1 (0 when rows==1)
};

NormBlock normalize_block(const BlockGeom& g, unsigned dims,
                          const std::array<std::size_t, 3>& stride) {
  NormBlock nb{};
  nb.planes = dims == 3 ? g.len[0] : 1;
  nb.rows = dims == 3 ? g.len[1] : dims == 2 ? g.len[0] : 1;
  nb.inner = g.len[dims - 1];
  nb.base_idx = 0;
  for (unsigned d = 0; d < dims; ++d) nb.base_idx += g.base[d] * stride[d];
  nb.plane_stride = dims == 3 ? stride[0] : 0;
  nb.row_stride = dims == 3 ? stride[1] : dims == 2 ? stride[0] : 0;
  return nb;
}

/// The 7-term Lorenzo stencil over block-local reconstructed neighbours, in
/// one fixed evaluation order.  Encoder and decoder call this identical
/// expression so predictions agree bit-for-bit; out-of-block samples arrive
/// as literal 0.0 (the zero row / zero-initialized carries below).
inline double lorenzo7(double up, double north, double prev, double north_prev,
                       double up_prev, double upnorth, double upnorth_prev) {
  return up + north + prev - north_prev - up_prev - upnorth + upnorth_prev;
}

/// Zero row standing in for out-of-block neighbour rows.  Sized for the
/// largest inner edge (1D blocks); .bss, shared, read-only.
template <typename Scalar>
const Scalar* zero_row() {
  static const Scalar zeros[1024] = {};
  return zeros;
}

// ---------------------------------------------------------------------------
// Encode
// ---------------------------------------------------------------------------

/// Block-local Lorenzo encode: quantize the block against its own
/// reconstruction, reading nothing outside it.  recon rows live in the
/// caller's field-sized buffer (groups touch disjoint blocks, so parallel
/// encoders never alias).
template <typename Scalar>
void encode_lorenzo_block(const Scalar* data, Scalar* recon, const NormBlock& nb, double e,
                          double twoe, std::uint32_t*& codes_out,
                          std::vector<std::uint8_t>& raws) {
  const Scalar* zeros = zero_row<Scalar>();
  // Quantization is encoder-internal: the decoder only ever sees the emitted
  // code, so the reciprocal multiply and nearbyint (round-to-even, one
  // roundsd on the loop-carried chain instead of an int64 round trip) are
  // free to differ from llround in the last ulp — any q whose reconstruction
  // passes the bound check is a valid encoding.  What MUST mirror the decoder
  // exactly is the prediction + reconstruction arithmetic.
  const double inv_twoe = 1.0 / twoe;
  std::uint32_t* cp = codes_out;
  for (std::size_t p = 0; p < nb.planes; ++p)
    for (std::size_t r = 0; r < nb.rows; ++r) {
      const std::size_t row_idx = nb.base_idx + p * nb.plane_stride + r * nb.row_stride;
      const Scalar* drow = data + row_idx;
      Scalar* rrow = recon + row_idx;
      const Scalar* up = p > 0 ? rrow - nb.plane_stride : zeros;
      const Scalar* north = r > 0 ? rrow - nb.row_stride : zeros;
      const Scalar* upnorth = p > 0 && r > 0 ? rrow - nb.plane_stride - nb.row_stride : zeros;
      double prev = 0.0, pn = 0.0, pu = 0.0, pun = 0.0;
      for (std::size_t c = 0; c < nb.inner; ++c) {
        const double cu = static_cast<double>(up[c]);
        const double cn = static_cast<double>(north[c]);
        const double cun = static_cast<double>(upnorth[c]);
        const double pred = lorenzo7(cu, cn, prev, pn, pu, cun, pun);
        const double v = static_cast<double>(drow[c]);
        const double qf = (v - pred) * inv_twoe;
        bool escaped = true;
        if (std::abs(qf) < static_cast<double>(kRadius) - 1) {
          const double qd = std::nearbyint(qf);
          const Scalar candidate = static_cast<Scalar>(pred + twoe * qd);
          // Validate after Scalar rounding so the bound holds exactly.
          if (std::isfinite(static_cast<double>(candidate)) &&
              std::abs(static_cast<double>(candidate) - v) <= e) {
            *cp++ = static_cast<std::uint32_t>(kRadius + static_cast<std::int64_t>(qd));
            rrow[c] = candidate;
            escaped = false;
          }
        }
        if (escaped) {
          *cp++ = 0;
          szi::put_scalar(raws, drow[c]);
          rrow[c] = drow[c];
        }
        prev = static_cast<double>(rrow[c]);
        pn = cn;
        pu = cu;
        pun = cun;
      }
    }
  codes_out = cp;
}

/// Sampled separable least-squares fit over the normalized block: one pass
/// over every other plane/row (all of the contiguous inner axis, which keeps
/// the accumulation vectorizable), coordinate moments computed in O(edge).
/// Replaces szi::fit_regression on the blocked path only — the v1 pipeline's
/// bytes are pinned by golden CRCs, while the v2 format treats the fit as an
/// encoder-internal choice (any coefficients that win the cost comparison
/// below are valid), so the cheaper fit is format-legal.
template <typename Scalar>
std::array<double, 4> fit_regression_sampled(const Scalar* data, const NormBlock& nb,
                                             unsigned dims) {
  const std::size_t pstep = nb.planes > 1 ? 2 : 1;
  const std::size_t rstep = nb.rows > 1 ? 2 : 1;
  double sum_v = 0, sum_vp = 0, sum_vr = 0, sum_vc = 0;
  for (std::size_t p = 0; p < nb.planes; p += pstep)
    for (std::size_t r = 0; r < nb.rows; r += rstep) {
      const Scalar* drow = data + nb.base_idx + p * nb.plane_stride + r * nb.row_stride;
      double s = 0, sc = 0;
      for (std::size_t c = 0; c < nb.inner; ++c) {
        const double v = static_cast<double>(drow[c]);
        s += v;
        sc += v * static_cast<double>(c);
      }
      sum_v += s;
      sum_vp += static_cast<double>(p) * s;
      sum_vr += static_cast<double>(r) * s;
      sum_vc += sc;
    }
  // Per-axis coordinate moments of the sampled grid: count, mean, and the
  // centred second moment sum((x - mean)^2).
  const auto axis_moments = [](std::size_t len, std::size_t step, double& k, double& mean,
                               double& var_sum) {
    double sum = 0, sum2 = 0;
    k = 0;
    for (std::size_t x = 0; x < len; x += step) {
      k += 1;
      sum += static_cast<double>(x);
      sum2 += static_cast<double>(x) * static_cast<double>(x);
    }
    mean = sum / k;
    var_sum = sum2 - k * mean * mean;
  };
  double kp, mp, vp, kr, mr, vr, kc, mc, vc;
  axis_moments(nb.planes, pstep, kp, mp, vp);
  axis_moments(nb.rows, rstep, kr, mr, vr);
  axis_moments(nb.inner, 1, kc, mc, vc);
  const double mean_v = sum_v / (kp * kr * kc);
  const double slope_p = vp > 0 ? (sum_vp - mp * sum_v) / (kr * kc * vp) : 0.0;
  const double slope_r = vr > 0 ? (sum_vr - mr * sum_v) / (kp * kc * vr) : 0.0;
  const double slope_c = vc > 0 ? (sum_vc - mc * sum_v) / (kp * kr * vc) : 0.0;
  std::array<double, 4> coeff{};
  if (dims == 3) {
    coeff[1] = slope_p;
    coeff[2] = slope_r;
    coeff[3] = slope_c;
    coeff[0] = mean_v - slope_p * mp - slope_r * mr - slope_c * mc;
  } else {
    coeff[1] = slope_r;
    coeff[2] = slope_c;
    coeff[0] = mean_v - slope_r * mr - slope_c * mc;
  }
  return coeff;
}

/// Encoder-side mode decision for one block: fit, quantize coefficients, and
/// compare per-point absolute residuals of both predictors.  The Lorenzo
/// proxy runs on original values block-locally (matching what the real
/// predictor will see, minus reconstruction noise), so the same
/// bound-proportional penalty as the v1 pipeline is added.
template <typename Scalar>
bool decide_regression(const Scalar* data, const NormBlock& nb, unsigned dims, double e,
                       const CoeffSteps& steps, std::array<double, 4>& coeff,
                       std::array<std::int64_t, 4>& q) {
  const auto fitted = fit_regression_sampled(data, nb, dims);
  for (unsigned i = 0; i < 4; ++i) {
    const double step = i == 0 ? steps.intercept : steps.slope;
    const double scaled = fitted[i] / step;
    if (!(std::abs(scaled) < 4.5e15)) return false;  // keep exact in double & varint-friendly
    q[i] = static_cast<std::int64_t>(std::llround(scaled));
    coeff[i] = static_cast<double>(q[i]) * step;
  }

  const double lorenzo_noise = e * (dims == 3 ? 1.5 : 0.6);
  const Scalar* zeros = zero_row<Scalar>();
  double cost_lorenzo = 0, cost_reg = 0;
  // Stride-2 row/plane sampling: the decision only ranks the two predictors,
  // and the subset sees the same smoothness the full block does.  Encoder
  // internal (the payload stays a pure function of shape + data), and
  // deterministic, so tuned bounds are unaffected.
  const std::size_t pstep = nb.planes > 1 ? 2 : 1;
  const std::size_t rstep = nb.rows > 1 ? 2 : 1;
  std::size_t sampled = 0;
  for (std::size_t p = 0; p < nb.planes; p += pstep)
    for (std::size_t r = 0; r < nb.rows; r += rstep) {
      const Scalar* drow = data + nb.base_idx + p * nb.plane_stride + r * nb.row_stride;
      const Scalar* up = p > 0 ? drow - nb.plane_stride : zeros;
      const Scalar* north = r > 0 ? drow - nb.row_stride : zeros;
      const Scalar* upnorth = p > 0 && r > 0 ? drow - nb.plane_stride - nb.row_stride : zeros;
      // Regression prediction along the row: base + step*c, same
      // decomposition the quantize kernel uses.
      const double pred_base =
          dims == 3 ? (coeff[0] + coeff[1] * static_cast<double>(p)) +
                          coeff[2] * static_cast<double>(r)
                    : coeff[0] + coeff[1] * static_cast<double>(r);
      const double pred_step = dims == 3 ? coeff[3] : coeff[2];
      double prev = 0.0, pn = 0.0, pu = 0.0, pun = 0.0;
      for (std::size_t c = 0; c < nb.inner; ++c) {
        const double cu = static_cast<double>(up[c]);
        const double cn = static_cast<double>(north[c]);
        const double cun = static_cast<double>(upnorth[c]);
        const double v = static_cast<double>(drow[c]);
        cost_lorenzo += std::abs(v - lorenzo7(cu, cn, prev, pn, pu, cun, pun));
        cost_reg += std::abs(v - (pred_base + pred_step * static_cast<double>(c)));
        prev = v;
        pn = cn;
        pu = cu;
        pun = cun;
      }
      sampled += nb.inner;
    }
  const double n = static_cast<double>(sampled);
  return cost_reg < cost_lorenzo + n * lorenzo_noise;
}

/// Encode one group into its self-contained blob.
template <typename Scalar>
std::vector<std::uint8_t> encode_group(const Scalar* data, Scalar* recon, unsigned dims,
                                       const std::array<std::size_t, 3>& stride,
                                       const BlockGeom* blocks, const Group& grp, double e,
                                       bool allow_regression) {
  const double twoe = 2.0 * e;
  const CoeffSteps steps =
      szi::coeff_steps(e, static_cast<double>(szb::blocked_edge(dims)));
  const bool vec = szk::simd_active();

  std::vector<std::uint8_t> flags((grp.block_count + 7) / 8, 0);
  std::vector<std::uint8_t> coeffs;
  std::vector<std::uint8_t> raws;
  // Every element emits exactly one code (escapes emit code 0), so the code
  // buffer size is known up front.  thread_local: one warm allocation per
  // worker for the whole compress, not one per group.
  thread_local std::vector<std::uint32_t> codes;
  if (codes.size() < grp.elems) codes.resize(grp.elems);
  std::uint32_t* cp = codes.data();

  for (std::size_t bi = 0; bi < grp.block_count; ++bi) {
    const BlockGeom& g = blocks[grp.first_block + bi];
    const NormBlock nb = normalize_block(g, dims, stride);

    std::array<double, 4> coeff{};
    std::array<std::int64_t, 4> cq{};
    bool use_regression =
        allow_regression && decide_regression(data, nb, dims, e, steps, coeff, cq);
    if (use_regression) {
      flags[bi / 8] |= static_cast<std::uint8_t>(1u << (bi % 8));
      for (unsigned i = 0; i < 4; ++i) put_varint(coeffs, zigzag_encode(cq[i]));
      for (std::size_t p = 0; p < nb.planes; ++p)
        for (std::size_t r = 0; r < nb.rows; ++r) {
          const double pred_base =
              dims == 3 ? (coeff[0] + coeff[1] * static_cast<double>(p)) +
                              coeff[2] * static_cast<double>(r)
                        : coeff[0] + coeff[1] * static_cast<double>(r);
          const double pred_step = dims == 3 ? coeff[3] : coeff[2];
          const std::size_t idx0 = nb.base_idx + p * nb.plane_stride + r * nb.row_stride;
          const std::uint32_t esc =
              vec ? szk::quantize_run_vec(data + idx0, nb.inner, pred_base, pred_step, twoe,
                                          e, cp, recon + idx0)
                  : szk::quantize_run_scalar(data + idx0, nb.inner, pred_base, pred_step,
                                             twoe, e, cp, recon + idx0);
          cp += nb.inner;
          for (std::uint32_t m = esc; m != 0; m &= m - 1)
            szi::put_scalar(raws, data[idx0 + static_cast<unsigned>(__builtin_ctz(m))]);
        }
    } else {
      encode_lorenzo_block(data, recon, nb, e, twoe, cp, raws);
    }
  }

  const std::vector<std::uint8_t> entropy = rans_interleaved_encode(codes.data(), grp.elems);
  std::vector<std::uint8_t> blob;
  blob.reserve(flags.size() + coeffs.size() + entropy.size() + raws.size() + 32);
  put_varint(blob, flags.size());
  blob.insert(blob.end(), flags.begin(), flags.end());
  put_varint(blob, coeffs.size());
  blob.insert(blob.end(), coeffs.begin(), coeffs.end());
  put_varint(blob, entropy.size());
  blob.insert(blob.end(), entropy.begin(), entropy.end());
  put_varint(blob, raws.size());
  blob.insert(blob.end(), raws.begin(), raws.end());
  return blob;
}

template <typename Scalar>
void blocked_compress_impl(const ArrayView& input, const SzOptions& opt, Buffer& out) {
  const unsigned dims = static_cast<unsigned>(input.dims());
  const Shape& shape = input.shape();
  const auto stride = szi::strides_of(shape);
  const Scalar* data = input.typed<Scalar>();
  const double e = opt.error_bound;
  const bool allow_regression = opt.regression && dims >= 2;

  const std::vector<BlockGeom> blocks = collect_blocks(shape, dims);
  const std::vector<Group> groups = build_groups(blocks);

  // Field-sized reconstruction buffer shared by all workers: each group's
  // blocks cover disjoint index ranges, and block-local prediction never
  // reads another block's rows, so there is no cross-group traffic at all.
  std::vector<Scalar> recon(input.elements());
  std::vector<std::vector<std::uint8_t>> blobs(groups.size());
  parallel_for_shared(groups.size(), opt.threads, [&](std::size_t gi) {
    blobs[gi] = encode_group(data, recon.data(), dims, stride, blocks.data(), groups[gi], e,
                             allow_regression);
  });

  std::vector<std::uint8_t> payload;
  std::size_t total = 16;
  for (const auto& b : blobs) total += b.size() + 10;
  payload.reserve(total);
  szi::put_scalar(payload, e);
  payload.push_back(opt.regression ? 1 : 0);
  put_varint(payload, groups.size());
  for (const auto& b : blobs) {
    put_varint(payload, b.size());
    payload.insert(payload.end(), b.begin(), b.end());
  }
  seal_container_into(CompressorId::kSz, input.dtype(), shape, payload.data(), payload.size(),
                      out, /*version=*/2);
}

// ---------------------------------------------------------------------------
// Decode
// ---------------------------------------------------------------------------

/// Block-local Lorenzo reconstruction, the mirror of encode_lorenzo_block:
/// loop-carried previous-column samples and zero-row substitution keep the
/// inner loop branch-free except for the (validated-rare) escape test, which
/// is why blocked decode beats the v1 chain even before thread scaling.
template <typename Scalar>
void decode_lorenzo_block(Scalar* recon, const NormBlock& nb, double twoe,
                          const std::uint32_t*& cp, const std::uint8_t* raws,
                          std::size_t raw_size, std::size_t& raw_pos) {
  const Scalar* zeros = zero_row<Scalar>();
  for (std::size_t p = 0; p < nb.planes; ++p)
    for (std::size_t r = 0; r < nb.rows; ++r) {
      Scalar* rrow = recon + nb.base_idx + p * nb.plane_stride + r * nb.row_stride;
      const Scalar* up = p > 0 ? rrow - nb.plane_stride : zeros;
      const Scalar* north = r > 0 ? rrow - nb.row_stride : zeros;
      const Scalar* upnorth = p > 0 && r > 0 ? rrow - nb.plane_stride - nb.row_stride : zeros;
      double prev = 0.0, pn = 0.0, pu = 0.0, pun = 0.0;
      for (std::size_t c = 0; c < nb.inner; ++c) {
        const double cu = static_cast<double>(up[c]);
        const double cn = static_cast<double>(north[c]);
        const double cun = static_cast<double>(upnorth[c]);
        const std::uint32_t code = *cp++;
        Scalar v;
        if (code == 0) {
          v = szi::get_scalar<Scalar>(raws, raw_size, raw_pos);
        } else {
          const double pred = lorenzo7(cu, cn, prev, pn, pu, cun, pun);
          const auto q = static_cast<std::int64_t>(code) - kRadius;
          v = static_cast<Scalar>(pred + twoe * static_cast<double>(q));
        }
        rrow[c] = v;
        prev = static_cast<double>(v);
        pn = cn;
        pu = cu;
        pun = cun;
      }
    }
}

template <typename Scalar>
void decode_group(Scalar* out, unsigned dims, const std::array<std::size_t, 3>& stride,
                  const BlockGeom* blocks, const Group& grp, double e,
                  const std::uint8_t* blob, std::size_t blob_size) {
  const double twoe = 2.0 * e;
  const CoeffSteps steps =
      szi::coeff_steps(e, static_cast<double>(szb::blocked_edge(dims)));
  const bool vec = szk::simd_active();
  std::size_t pos = 0;

  // Section lengths are untrusted 64-bit varints, so every bound below is the
  // subtraction form `len > blob_size - pos` (get_varint leaves
  // pos <= blob_size): the addition form `pos + len` would wrap for hostile
  // lengths and pass the check.
  const std::uint64_t flag_bytes = get_varint(blob, blob_size, pos);
  if (flag_bytes != (grp.block_count + 7) / 8) throw CorruptStream("sz: flag size mismatch");
  if (flag_bytes > blob_size - pos) throw CorruptStream("sz: truncated flags");
  const std::uint8_t* flags = blob + pos;
  pos += flag_bytes;

  const std::uint64_t coeff_bytes = get_varint(blob, blob_size, pos);
  if (coeff_bytes > blob_size - pos) throw CorruptStream("sz: truncated coefficients");
  const std::uint8_t* coeff_stream = blob + pos;
  std::size_t coeff_pos = 0;
  pos += coeff_bytes;

  const std::uint64_t entropy_bytes = get_varint(blob, blob_size, pos);
  if (entropy_bytes > blob_size - pos) throw CorruptStream("sz: truncated code stream");
  // thread_local: one warm code buffer per worker across all its groups.
  // Passing grp.elems rejects a hostile declared symbol count before the
  // codec sizes its output, so codes.size() == grp.elems on return.
  thread_local std::vector<std::uint32_t> codes;
  rans_interleaved_decode_into(blob + pos, entropy_bytes, codes, grp.elems);
  pos += entropy_bytes;

  const std::uint64_t raw_bytes = get_varint(blob, blob_size, pos);
  if (raw_bytes != blob_size - pos) throw CorruptStream("sz: group blob size mismatch");
  const std::uint8_t* raws = blob + pos;
  std::size_t raw_pos = 0;

  // The encoder only emits codes in [0, 2R-1]; rejecting anything larger up
  // front both hardens decode and lets the reconstruct kernel assume its
  // int32 lanes are non-negative.  Max-reduction instead of branch-per-code
  // so the sweep vectorizes.
  std::uint32_t max_code = 0;
  for (const std::uint32_t code : codes) max_code = std::max(max_code, code);
  if (max_code > 2 * static_cast<std::uint32_t>(kRadius) - 1)
    throw CorruptStream("sz: quantization code out of range");

  const std::uint32_t* cp = codes.data();
  for (std::size_t bi = 0; bi < grp.block_count; ++bi) {
    const BlockGeom& g = blocks[grp.first_block + bi];
    const NormBlock nb = normalize_block(g, dims, stride);
    const bool use_regression = (flags[bi / 8] >> (bi % 8)) & 1u;
    if (use_regression) {
      // The encoder never flags 1D blocks (regression is 2D/3D only); a
      // hostile stream that does is rejected rather than fed to the 32-lane
      // kernels with an over-long run.
      if (dims < 2) throw CorruptStream("sz: regression flag on 1D block");
      std::array<double, 4> coeff{};
      for (unsigned i = 0; i < 4; ++i) {
        const double step = i == 0 ? steps.intercept : steps.slope;
        coeff[i] = static_cast<double>(
                       zigzag_decode(get_varint(coeff_stream, coeff_bytes, coeff_pos))) *
                   step;
      }
      for (std::size_t p = 0; p < nb.planes; ++p)
        for (std::size_t r = 0; r < nb.rows; ++r) {
          const double pred_base =
              dims == 3 ? (coeff[0] + coeff[1] * static_cast<double>(p)) +
                              coeff[2] * static_cast<double>(r)
                        : coeff[0] + coeff[1] * static_cast<double>(r);
          const double pred_step = dims == 3 ? coeff[3] : coeff[2];
          const std::size_t idx0 = nb.base_idx + p * nb.plane_stride + r * nb.row_stride;
          const std::uint32_t esc =
              vec ? szk::reconstruct_run_vec(cp, nb.inner, pred_base, pred_step, twoe,
                                             out + idx0)
                  : szk::reconstruct_run_scalar(cp, nb.inner, pred_base, pred_step, twoe,
                                                out + idx0);
          cp += nb.inner;
          for (std::uint32_t m = esc; m != 0; m &= m - 1)
            out[idx0 + static_cast<unsigned>(__builtin_ctz(m))] =
                szi::get_scalar<Scalar>(raws, raw_bytes, raw_pos);
        }
    } else {
      decode_lorenzo_block(out, nb, twoe, cp, raws, raw_bytes, raw_pos);
    }
  }
  if (coeff_pos != coeff_bytes) throw CorruptStream("sz: trailing coefficient bytes");
  if (raw_pos != raw_bytes) throw CorruptStream("sz: trailing raw bytes");
}

template <typename Scalar>
NdArray blocked_decompress_impl(const Container& c, unsigned threads) {
  const std::uint8_t* p = c.payload;
  const std::size_t size = c.payload_size;
  std::size_t pos = 0;

  const double e = szi::get_scalar<double>(p, size, pos);
  if (!(e > 0) || !std::isfinite(e)) throw CorruptStream("sz: bad stored error bound");
  if (pos >= size) throw CorruptStream("sz: truncated header");
  pos += 1;  // regression enable flag (informational)

  const unsigned dims = static_cast<unsigned>(c.shape.size());
  const std::vector<BlockGeom> blocks = collect_blocks(c.shape, dims);
  const std::vector<Group> groups = build_groups(blocks);

  const std::uint64_t group_count = get_varint(p, size, pos);
  if (group_count != groups.size()) throw CorruptStream("sz: group count mismatch");

  struct Span {
    const std::uint8_t* data;
    std::size_t size;
  };
  std::vector<Span> spans(groups.size());
  for (auto& s : spans) {
    const std::uint64_t blob_size = get_varint(p, size, pos);
    // Subtraction form: `pos + blob_size` wraps for hostile 64-bit lengths.
    if (blob_size > size - pos) throw CorruptStream("sz: truncated group blob");
    s = {p + pos, static_cast<std::size_t>(blob_size)};
    pos += blob_size;
  }
  if (pos != size) throw CorruptStream("sz: trailing payload bytes");

  NdArray out(c.dtype, c.shape);
  const auto stride = szi::strides_of(c.shape);
  Scalar* recon = out.typed<Scalar>();
  parallel_for_shared(groups.size(), threads, [&](std::size_t gi) {
    decode_group(recon, dims, stride, blocks.data(), groups[gi], e, spans[gi].data,
                 spans[gi].size);
  });
  return out;
}

}  // namespace

void sz_blocked_compress_into(const ArrayView& input, const SzOptions& options, Buffer& out) {
  if (input.dtype() == DType::kFloat32)
    blocked_compress_impl<float>(input, options, out);
  else
    blocked_compress_impl<double>(input, options, out);
}

NdArray sz_blocked_decompress(const Container& c, unsigned threads) {
  require(c.shape.size() >= 1 && c.shape.size() <= 3, "sz: container rank unsupported");
  return c.dtype == DType::kFloat32 ? blocked_decompress_impl<float>(c, threads)
                                    : blocked_decompress_impl<double>(c, threads);
}

}  // namespace fraz
