#include "compressors/sz/sz.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstring>

#include "codec/lz.hpp"
#include "codec/rans.hpp"
#include "codec/varint.hpp"
#include "compressors/container.hpp"
#include "compressors/sz/sz_blocked.hpp"
#include "compressors/sz/sz_internal.hpp"
#include "compressors/sz/sz_kernels.hpp"
#include "util/error.hpp"

namespace fraz {

namespace {

using szi::BlockGeom;
using szi::CoeffSteps;
using szi::fit_regression;
using szi::get_scalar;
using szi::kRadius;
using szi::put_scalar;
using szi::regression_predict;
using szi::strides_of;

/// Block edge per rank (SZ uses 6^3 blocks for 3D data).
constexpr std::size_t block_edge(unsigned dims) noexcept {
  return dims == 3 ? 6 : dims == 2 ? 12 : 256;
}

CoeffSteps coeff_steps(double error_bound, unsigned dims) noexcept {
  return szi::coeff_steps(error_bound, static_cast<double>(block_edge(dims)));
}

/// 1-layer Lorenzo prediction at global coords from the reconstruction
/// buffer.  Out-of-range neighbours contribute zero (SZ's convention).
template <typename Scalar>
double lorenzo_predict(const Scalar* recon, const std::size_t* coord, const Shape& shape,
                       const std::array<std::size_t, 3>& stride) {
  const unsigned dims = static_cast<unsigned>(shape.size());
  auto sample = [&](int di, int dj, int dk) -> double {
    std::ptrdiff_t c[3] = {static_cast<std::ptrdiff_t>(coord[0]) - di,
                           static_cast<std::ptrdiff_t>(coord[1]) - dj,
                           static_cast<std::ptrdiff_t>(coord[2]) - dk};
    std::size_t idx = 0;
    for (unsigned d = 0; d < dims; ++d) {
      if (c[d] < 0) return 0.0;
      idx += static_cast<std::size_t>(c[d]) * stride[d];
    }
    return static_cast<double>(recon[idx]);
  };
  switch (dims) {
    case 1:
      return sample(1, 0, 0);
    case 2:
      return sample(1, 0, 0) + sample(0, 1, 0) - sample(1, 1, 0);
    default:  // 3
      return sample(0, 0, 1) + sample(0, 1, 0) + sample(1, 0, 0) - sample(0, 1, 1) -
             sample(1, 0, 1) - sample(1, 1, 0) + sample(1, 1, 1);
  }
}

/// Visit blocks of the array in row-major block order (v1 block size).
template <typename Fn>
void for_each_block(const Shape& shape, unsigned dims, Fn&& fn) {
  szi::for_each_block(shape, dims, block_edge(dims), std::forward<Fn>(fn));
}

std::size_t count_blocks(const Shape& shape, unsigned dims) {
  return szi::count_blocks(shape, dims, block_edge(dims));
}

template <typename Scalar>
void compress_impl(const ArrayView& input, const SzOptions& opt, Buffer& out) {
  const unsigned dims = static_cast<unsigned>(input.dims());
  const Shape& shape = input.shape();
  const auto stride = strides_of(shape);
  const Scalar* data = input.typed<Scalar>();
  const double e = opt.error_bound;
  const double twoe = 2.0 * e;
  const CoeffSteps steps = coeff_steps(e, dims);
  const bool allow_regression = opt.regression && dims >= 2;

  std::vector<Scalar> recon(input.elements());
  std::vector<std::uint32_t> codes;
  codes.reserve(input.elements());
  std::vector<std::uint8_t> flags((count_blocks(shape, dims) + 7) / 8, 0);
  std::vector<std::uint8_t> coeff_stream;
  std::vector<std::uint8_t> raw_stream;
  std::size_t block_index = 0;

  for_each_block(shape, dims, [&](const BlockGeom& g) {
    // ---- mode decision (encoder-side heuristic on original values) ----
    bool use_regression = false;
    std::array<double, 4> coeff{};
    if (allow_regression) {
      const auto fitted = fit_regression(data, g, dims, stride);
      // Quantize coefficients; both sides predict from the rounded values.
      bool quantizable = true;
      std::array<std::int64_t, 4> q{};
      for (unsigned i = 0; i < 4; ++i) {
        const double step = i == 0 ? steps.intercept : steps.slope;
        const double scaled = fitted[i] / step;
        if (!(std::abs(scaled) < 4.5e15)) {  // keep exact in double & varint-friendly
          quantizable = false;
          break;
        }
        q[i] = static_cast<std::int64_t>(std::llround(scaled));
        coeff[i] = static_cast<double>(q[i]) * step;
      }
      if (quantizable) {
        // Compare per-point absolute residuals of both predictors.  The
        // Lorenzo proxy uses original values, which hides the quantization
        // noise the real predictor inherits from reconstructed neighbours
        // (a 7-term 3D stencil feeds back ~1.5e of noise per point), so a
        // bound-proportional penalty is added — the same correction SZ 2.x
        // applies when arbitrating Lorenzo vs regression.
        // Expected |noise| scales with the stencil size: ~7 reconstructed
        // neighbours in 3D, 3 in 2D, 1 in 1D.
        const double lorenzo_noise =
            e * (dims == 3 ? 1.5 : dims == 2 ? 0.6 : 0.3);
        double cost_lorenzo = 0, cost_reg = 0;
        for (std::size_t a = 0; a < g.len[0]; ++a)
          for (std::size_t b = 0; b < g.len[1]; ++b)
            for (std::size_t c = 0; c < g.len[2]; ++c) {
              std::size_t coord[3] = {g.base[0] + a, g.base[1] + b, g.base[2] + c};
              std::size_t idx = coord[0] * stride[0];
              if (dims > 1) idx += coord[1] * stride[1];
              if (dims > 2) idx += coord[2] * stride[2];
              const double v = static_cast<double>(data[idx]);
              cost_lorenzo += std::abs(v - lorenzo_predict(data, coord, shape, stride)) +
                              lorenzo_noise;
              cost_reg += std::abs(v - regression_predict(coeff.data(), a, b, c));
            }
        if (cost_reg < cost_lorenzo) {
          use_regression = true;
          for (unsigned i = 0; i < 4; ++i) put_varint(coeff_stream, zigzag_encode(q[i]));
        }
      }
    }
    if (use_regression) flags[block_index / 8] |= std::uint8_t(1u << (block_index % 8));
    ++block_index;

    // ---- residual quantization over the block ----
    if (use_regression) {
      // Regression prediction has no serial dependence, so each contiguous
      // inner-axis run goes through the (possibly vectorized) kernel.  The
      // per-run pred_base keeps the reference expression's left-to-right
      // association ((c0 + c1*a) + c2*b) + c3*c; see sz_kernels.hpp.
      const bool vec = szk::simd_active();
      const std::size_t run = g.len[dims - 1];
      std::size_t code_base = codes.size();
      codes.resize(code_base + g.len[0] * g.len[1] * g.len[2]);
      std::uint32_t* cp = codes.data() + code_base;
      const std::size_t outer1 = dims == 3 ? g.len[1] : 1;
      for (std::size_t a = 0; a < g.len[0]; ++a)
        for (std::size_t b = 0; b < outer1; ++b) {
          double pred_base, pred_step;
          std::size_t idx0;
          if (dims == 3) {
            pred_base = (coeff[0] + coeff[1] * static_cast<double>(a)) +
                        coeff[2] * static_cast<double>(b);
            pred_step = coeff[3];
            idx0 = (g.base[0] + a) * stride[0] + (g.base[1] + b) * stride[1] + g.base[2];
          } else {
            pred_base = coeff[0] + coeff[1] * static_cast<double>(a);
            pred_step = coeff[2];
            idx0 = (g.base[0] + a) * stride[0] + g.base[1];
          }
          const std::uint32_t esc =
              vec ? szk::quantize_run_vec(data + idx0, run, pred_base, pred_step, twoe, e,
                                          cp, recon.data() + idx0)
                  : szk::quantize_run_scalar(data + idx0, run, pred_base, pred_step, twoe,
                                             e, cp, recon.data() + idx0);
          cp += run;
          for (std::uint32_t m = esc; m != 0; m &= m - 1)
            put_scalar(raw_stream, data[idx0 + static_cast<unsigned>(__builtin_ctz(m))]);
        }
    } else {
      for (std::size_t a = 0; a < g.len[0]; ++a)
        for (std::size_t b = 0; b < g.len[1]; ++b)
          for (std::size_t c = 0; c < g.len[2]; ++c) {
            std::size_t coord[3] = {g.base[0] + a, g.base[1] + b, g.base[2] + c};
            std::size_t idx = coord[0] * stride[0];
            if (dims > 1) idx += coord[1] * stride[1];
            if (dims > 2) idx += coord[2] * stride[2];
            const double v = static_cast<double>(data[idx]);
            const double pred = lorenzo_predict(recon.data(), coord, shape, stride);
            const double qf = (v - pred) / twoe;
            bool escaped = true;
            if (std::abs(qf) < static_cast<double>(kRadius) - 1) {
              const std::int64_t q = std::llround(qf);
              const Scalar candidate =
                  static_cast<Scalar>(pred + twoe * static_cast<double>(q));
              // Validate after Scalar rounding so the bound holds exactly.
              if (std::isfinite(static_cast<double>(candidate)) &&
                  std::abs(static_cast<double>(candidate) - v) <= e) {
                codes.push_back(static_cast<std::uint32_t>(kRadius + q));
                recon[idx] = candidate;
                escaped = false;
              }
            }
            if (escaped) {
              codes.push_back(0);
              put_scalar(raw_stream, data[idx]);
              recon[idx] = data[idx];
            }
          }
    }
  });

  // ---- stage 3: entropy coding of the quantization codes ----
  // rANS rather than plain Huffman: SZ 2.1.7's Zstd stage brings the coded
  // stream to its order-0 entropy, which Huffman's 1-bit/symbol floor cannot
  // reach on the nearly-constant code streams of extreme ratios (Fig. 9/10).
  const std::vector<std::uint8_t> huff = rans_encode(codes);
  std::vector<std::uint8_t> assembled;
  assembled.reserve(huff.size() + coeff_stream.size() + raw_stream.size() + 64);
  put_scalar(assembled, e);
  assembled.push_back(opt.regression ? 1 : 0);
  put_varint(assembled, flags.size());
  assembled.insert(assembled.end(), flags.begin(), flags.end());
  put_varint(assembled, coeff_stream.size());
  assembled.insert(assembled.end(), coeff_stream.begin(), coeff_stream.end());
  put_varint(assembled, huff.size());
  assembled.insert(assembled.end(), huff.begin(), huff.end());
  put_varint(assembled, raw_stream.size());
  assembled.insert(assembled.end(), raw_stream.begin(), raw_stream.end());

  // ---- stage 4: dictionary coder over everything ----
  const std::vector<std::uint8_t> packed = lz_compress(assembled);
  seal_container_into(CompressorId::kSz, input.dtype(), input.shape(), packed, out);
}

template <typename Scalar>
NdArray decompress_impl(const Container& c) {
  const std::vector<std::uint8_t> assembled = lz_decompress(c.payload, c.payload_size);
  const std::uint8_t* p = assembled.data();
  const std::size_t size = assembled.size();
  std::size_t pos = 0;

  const double e = get_scalar<double>(p, size, pos);
  if (!(e > 0) || !std::isfinite(e)) throw CorruptStream("sz: bad stored error bound");
  if (pos >= size) throw CorruptStream("sz: truncated header");
  pos += 1;  // regression enable flag (informational)
  const double twoe = 2.0 * e;

  // Section lengths are untrusted 64-bit varints: check with the subtraction
  // form (get_varint leaves pos <= size) — `pos + len` wraps for hostile
  // lengths and would pass.
  const std::uint64_t flag_bytes = get_varint(p, size, pos);
  if (flag_bytes > size - pos) throw CorruptStream("sz: truncated flags");
  const std::uint8_t* flags = p + pos;
  pos += flag_bytes;

  const std::uint64_t coeff_bytes = get_varint(p, size, pos);
  if (coeff_bytes > size - pos) throw CorruptStream("sz: truncated coefficients");
  const std::uint8_t* coeff_stream = p + pos;
  std::size_t coeff_pos = 0;
  pos += coeff_bytes;

  const std::uint64_t huff_bytes = get_varint(p, size, pos);
  if (huff_bytes > size - pos) throw CorruptStream("sz: truncated code stream");
  const std::vector<std::uint32_t> codes = rans_decode(p + pos, huff_bytes);
  pos += huff_bytes;

  const std::uint64_t raw_bytes = get_varint(p, size, pos);
  if (raw_bytes > size - pos) throw CorruptStream("sz: truncated raw stream");
  const std::uint8_t* raw_stream = p + pos;
  std::size_t raw_pos = 0;

  const unsigned dims = static_cast<unsigned>(c.shape.size());
  const auto stride = strides_of(c.shape);
  const CoeffSteps steps = coeff_steps(e, dims);
  NdArray out(c.dtype, c.shape);
  Scalar* recon = out.typed<Scalar>();
  if (codes.size() != out.elements()) throw CorruptStream("sz: code count mismatch");
  if (flag_bytes != (count_blocks(c.shape, dims) + 7) / 8)
    throw CorruptStream("sz: flag size mismatch");
  // The encoder only emits codes in [0, 2R-1]; rejecting anything larger up
  // front both hardens decode and lets the reconstruct kernel assume its
  // int32 lanes are non-negative.
  for (const std::uint32_t code : codes)
    if (code > 2 * static_cast<std::uint64_t>(kRadius) - 1)
      throw CorruptStream("sz: quantization code out of range");

  std::size_t code_index = 0;
  std::size_t block_index = 0;
  for_each_block(c.shape, dims, [&](const BlockGeom& g) {
    const bool use_regression = (flags[block_index / 8] >> (block_index % 8)) & 1u;
    ++block_index;
    std::array<double, 4> coeff{};
    if (use_regression) {
      for (unsigned i = 0; i < 4; ++i) {
        const double step = i == 0 ? steps.intercept : steps.slope;
        coeff[i] = static_cast<double>(
                       zigzag_decode(get_varint(coeff_stream, coeff_bytes, coeff_pos))) *
                   step;
      }
    }
    if (use_regression && dims >= 2) {
      // Mirror of the encoder's run decomposition (see compress_impl); the
      // kernel reconstructs every lane and reports code-0 escapes for the
      // raw-stream patch below.  1D regression flags (never produced by the
      // encoder, but possible in a hostile stream) fall through to the
      // scalar loop whose runs have no 32-element bound.
      const bool vec = szk::simd_active();
      const std::size_t run = g.len[dims - 1];
      const std::size_t outer1 = dims == 3 ? g.len[1] : 1;
      for (std::size_t a = 0; a < g.len[0]; ++a)
        for (std::size_t b = 0; b < outer1; ++b) {
          double pred_base, pred_step;
          std::size_t idx0;
          if (dims == 3) {
            pred_base = (coeff[0] + coeff[1] * static_cast<double>(a)) +
                        coeff[2] * static_cast<double>(b);
            pred_step = coeff[3];
            idx0 = (g.base[0] + a) * stride[0] + (g.base[1] + b) * stride[1] + g.base[2];
          } else {
            pred_base = coeff[0] + coeff[1] * static_cast<double>(a);
            pred_step = coeff[2];
            idx0 = (g.base[0] + a) * stride[0] + g.base[1];
          }
          const std::uint32_t* cp = codes.data() + code_index;
          code_index += run;
          const std::uint32_t esc =
              vec ? szk::reconstruct_run_vec(cp, run, pred_base, pred_step, twoe,
                                             recon + idx0)
                  : szk::reconstruct_run_scalar(cp, run, pred_base, pred_step, twoe,
                                                recon + idx0);
          for (std::uint32_t m = esc; m != 0; m &= m - 1)
            recon[idx0 + static_cast<unsigned>(__builtin_ctz(m))] =
                get_scalar<Scalar>(raw_stream, raw_bytes, raw_pos);
        }
    } else {
      for (std::size_t a = 0; a < g.len[0]; ++a)
        for (std::size_t b = 0; b < g.len[1]; ++b)
          for (std::size_t cc = 0; cc < g.len[2]; ++cc) {
            std::size_t coord[3] = {g.base[0] + a, g.base[1] + b, g.base[2] + cc};
            std::size_t idx = coord[0] * stride[0];
            if (dims > 1) idx += coord[1] * stride[1];
            if (dims > 2) idx += coord[2] * stride[2];
            const std::uint32_t code = codes[code_index++];
            if (code == 0) {
              recon[idx] = get_scalar<Scalar>(raw_stream, raw_bytes, raw_pos);
            } else {
              const double pred = use_regression
                                      ? regression_predict(coeff.data(), a, b, cc)
                                      : lorenzo_predict(recon, coord, c.shape, stride);
              const auto q = static_cast<std::int64_t>(code) - kRadius;
              recon[idx] = static_cast<Scalar>(pred + twoe * static_cast<double>(q));
            }
          }
    }
  });
  return out;
}

void validate(const ArrayView& input, const SzOptions& opt) {
  require(input.dims() >= 1 && input.dims() <= 3, "sz: supports 1D/2D/3D data");
  require(input.elements() > 0, "sz: empty input");
  require(opt.error_bound > 0 && std::isfinite(opt.error_bound),
          "sz: error bound must be positive and finite");
}

}  // namespace

std::vector<std::uint8_t> sz_compress(const ArrayView& input, const SzOptions& options) {
  Buffer out;
  sz_compress_into(input, options, out);
  return out.to_vector();
}

void sz_compress_into(const ArrayView& input, const SzOptions& options, Buffer& out) {
  validate(input, options);
  if (options.mode == SzMode::kBlocked) {
    sz_blocked_compress_into(input, options, out);
    return;
  }
  if (input.dtype() == DType::kFloat32)
    compress_impl<float>(input, options, out);
  else
    compress_impl<double>(input, options, out);
}

NdArray sz_decompress(const std::uint8_t* data, std::size_t size, unsigned threads) {
  const Container c = open_container(data, size, CompressorId::kSz);
  require(c.shape.size() >= 1 && c.shape.size() <= 3, "sz: container rank unsupported");
  // The frame version, not the configured mode, selects the decoder: any sz
  // instance decodes both formats, so mixed archives always read back.
  if (c.version == 2) return sz_blocked_decompress(c, threads);
  return c.dtype == DType::kFloat32 ? decompress_impl<float>(c) : decompress_impl<double>(c);
}

}  // namespace fraz
