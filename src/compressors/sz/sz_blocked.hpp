#ifndef FRAZ_COMPRESSORS_SZ_SZ_BLOCKED_HPP
#define FRAZ_COMPRESSORS_SZ_SZ_BLOCKED_HPP

/// \file sz_blocked.hpp
/// The sz blocked pipeline (payload format v2, container version 2).
///
/// Where the v1 pipeline threads one Lorenzo feedback chain and one rANS
/// state through the whole field, v2 makes both block-local so the field
/// splits into independently codable pieces:
///
///  * prediction blocks — 16^3 (3D), 32^2 (2D), 1024 (1D) — whose Lorenzo /
///    regression state never crosses a block boundary (out-of-block
///    neighbours predict as zero, so only each block's first corner starts
///    cold);
///  * block groups — greedy runs of consecutive row-major blocks totalling
///    >= kGroupTargetElems elements — each carrying its own flag/coefficient
///    /entropy/raw sections, with the quantization codes in an 8-way
///    interleaved rANS stream (codec/rans_interleaved.hpp);
///  * predict -> quantize -> entropy fused per group: codes go straight from
///    the block loops into the group's coder without a field-sized
///    intermediate pass, and there is no LZ stage.
///
/// Grouping is a pure function of the shape, so the payload is byte-identical
/// at every thread count; groups touch disjoint output elements, so encode
/// and decode parallelize freely over shared_thread_pool().
///
/// v2 payload grammar (inside the standard container frame, version byte 2):
///   f64     error bound (IEEE bits, little endian)
///   u8      regression enabled (informational, like v1)
///   varint  group count (must equal the shape-derived grouping)
///   per group:
///     varint blob size, blob:
///       varint flags size,   flag bytes (bit per block, 1 = regression)
///       varint coeffs size,  zigzag varint quadruples per regression block
///       varint entropy size, interleaved-rANS stream of the group's codes
///       varint raws size,    escaped scalars verbatim in visit order
///
/// Internal to the sz backend — callers go through sz_compress_into /
/// sz_decompress, which validate and dispatch on SzOptions::mode / the frame
/// version.

#include <cstddef>

#include "compressors/container.hpp"
#include "compressors/sz/sz.hpp"

namespace fraz {

namespace szb {

/// Prediction-block edge of the v2 format.  Larger than v1's (6/12/256):
/// block-local prediction pays a cold boundary per block, so bigger blocks
/// amortize it; the inner-axis edge stays <= 32 (2D/3D) to fit the
/// 32-lane escape masks of the sz kernels.
constexpr std::size_t blocked_edge(unsigned dims) noexcept {
  return dims == 3 ? 16 : dims == 2 ? 32 : 1024;
}

/// Minimum elements per block group.  Big enough that each group's
/// interleaved-rANS table cost (alphabet + 32 flush bytes) is noise, small
/// enough that typical chunks split into many parallel units.
constexpr std::size_t kGroupTargetElems = 32768;

}  // namespace szb

/// Encode \p input as a v2 frame.  Pre-validated by sz_compress_into.
void sz_blocked_compress_into(const ArrayView& input, const SzOptions& options, Buffer& out);

/// Decode a v2 frame (container version 2, id kSz) opened by the caller.
/// \p threads caps intra-chunk parallelism; output is identical at any value.
NdArray sz_blocked_decompress(const Container& c, unsigned threads);

}  // namespace fraz

#endif  // FRAZ_COMPRESSORS_SZ_SZ_BLOCKED_HPP
