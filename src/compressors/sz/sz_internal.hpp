#ifndef FRAZ_COMPRESSORS_SZ_SZ_INTERNAL_HPP
#define FRAZ_COMPRESSORS_SZ_SZ_INTERNAL_HPP

/// \file sz_internal.hpp
/// Helpers shared by the serial (v1) and blocked (v2) sz pipelines: block
/// geometry, the regression fit/predict pair, and raw-scalar wire helpers.
/// Moved verbatim from sz.cpp when the blocked pipeline was added — the
/// serial pipeline's bytes are pinned by golden CRCs, so behaviour here must
/// not drift.  Internal to the sz backend; not part of any public API.

#include <algorithm>
#include <array>
#include <cstdint>
#include <cstring>
#include <vector>

#include "ndarray/ndarray.hpp"
#include "util/error.hpp"

namespace fraz {
namespace szi {

/// Quantization radius: codes live in [1, 2R-1], code 0 is the
/// "unpredictable" escape (raw scalar stored verbatim).
constexpr std::int64_t kRadius = 32768;

/// Regression slope/intercept quantization steps, derived from the error
/// bound so coefficient rounding shifts predictions by at most ~e/2.  The
/// bound itself is unaffected (encoder and decoder predict from the same
/// quantized coefficients); this only preserves prediction quality.
struct CoeffSteps {
  double intercept;
  double slope;
};

/// \p span is the block edge of the calling pipeline (the v1 and v2 formats
/// use different block sizes, so their steps differ by construction).
inline CoeffSteps coeff_steps(double error_bound, double span) noexcept {
  return {error_bound / 8.0, error_bound / (8.0 * span)};
}

/// Row-major strides for a shape (slowest dimension first).
inline std::array<std::size_t, 3> strides_of(const Shape& shape) {
  std::array<std::size_t, 3> s{0, 0, 0};
  const std::size_t d = shape.size();
  s[d - 1] = 1;
  for (std::size_t i = d - 1; i-- > 0;) s[i] = s[i + 1] * shape[i + 1];
  return s;
}

/// The shared per-block geometry: origin and extent of the clipped block.
struct BlockGeom {
  std::size_t base[3];
  std::size_t len[3];  // extent per (used) axis; 1 for unused axes
};

/// Evaluate the regression plane at local block coordinates.  Encoder and
/// decoder must use this identical expression so predictions agree exactly.
inline double regression_predict(const double* coeff, std::size_t lx, std::size_t ly,
                                 std::size_t lz) {
  return coeff[0] + coeff[1] * static_cast<double>(lx) + coeff[2] * static_cast<double>(ly) +
         coeff[3] * static_cast<double>(lz);
}

/// Separable least-squares fit of v ~ b0 + b1*l0 + b2*l1 + b3*l2 over the
/// (rectangular) block.  Axes beyond `dims` get zero slope.  Local coords
/// l0/l1/l2 follow the block's own axis order (l0 = slowest).
template <typename Scalar>
std::array<double, 4> fit_regression(const Scalar* data, const BlockGeom& g, unsigned dims,
                                     const std::array<std::size_t, 3>& stride) {
  double mean_v = 0;
  double mean_c[3] = {0, 0, 0};
  const std::size_t n = g.len[0] * g.len[1] * g.len[2];
  for (unsigned d = 0; d < 3; ++d) mean_c[d] = (static_cast<double>(g.len[d]) - 1.0) / 2.0;

  for (std::size_t a = 0; a < g.len[0]; ++a)
    for (std::size_t b = 0; b < g.len[1]; ++b)
      for (std::size_t c = 0; c < g.len[2]; ++c) {
        std::size_t idx = (g.base[0] + a) * stride[0];
        if (dims > 1) idx += (g.base[1] + b) * stride[1];
        if (dims > 2) idx += (g.base[2] + c) * stride[2];
        mean_v += static_cast<double>(data[idx]);
      }
  mean_v /= static_cast<double>(n);

  double num[3] = {0, 0, 0}, den[3] = {0, 0, 0};
  for (std::size_t a = 0; a < g.len[0]; ++a)
    for (std::size_t b = 0; b < g.len[1]; ++b)
      for (std::size_t c = 0; c < g.len[2]; ++c) {
        std::size_t idx = (g.base[0] + a) * stride[0];
        if (dims > 1) idx += (g.base[1] + b) * stride[1];
        if (dims > 2) idx += (g.base[2] + c) * stride[2];
        const double dv = static_cast<double>(data[idx]) - mean_v;
        const double dc[3] = {static_cast<double>(a) - mean_c[0],
                              static_cast<double>(b) - mean_c[1],
                              static_cast<double>(c) - mean_c[2]};
        for (unsigned d = 0; d < 3; ++d) {
          num[d] += dv * dc[d];
          den[d] += dc[d] * dc[d];
        }
      }
  std::array<double, 4> coeff{};
  for (unsigned d = 0; d < 3; ++d) coeff[d + 1] = den[d] > 0 ? num[d] / den[d] : 0.0;
  coeff[0] = mean_v - coeff[1] * mean_c[0] - coeff[2] * mean_c[1] - coeff[3] * mean_c[2];
  return coeff;
}

/// Visit blocks of edge \p edge in row-major block order.
template <typename Fn>
void for_each_block(const Shape& shape, unsigned dims, std::size_t edge, Fn&& fn) {
  std::size_t counts[3] = {1, 1, 1};
  for (unsigned d = 0; d < dims; ++d) counts[d] = (shape[d] + edge - 1) / edge;
  for (std::size_t b0 = 0; b0 < counts[0]; ++b0)
    for (std::size_t b1 = 0; b1 < counts[1]; ++b1)
      for (std::size_t b2 = 0; b2 < counts[2]; ++b2) {
        BlockGeom g{};
        const std::size_t bases[3] = {b0 * edge, b1 * edge, b2 * edge};
        for (unsigned d = 0; d < 3; ++d) {
          g.base[d] = d < dims ? bases[d] : 0;
          g.len[d] = d < dims ? std::min(edge, shape[d] - bases[d]) : 1;
        }
        fn(g);
      }
}

inline std::size_t count_blocks(const Shape& shape, unsigned dims, std::size_t edge) {
  std::size_t total = 1;
  for (unsigned d = 0; d < dims; ++d) total *= (shape[d] + edge - 1) / edge;
  return total;
}

/// Append an IEEE scalar verbatim (little endian).
template <typename Scalar>
void put_scalar(std::vector<std::uint8_t>& out, Scalar v) {
  std::uint8_t bytes[sizeof(Scalar)];
  std::memcpy(bytes, &v, sizeof(Scalar));
  out.insert(out.end(), bytes, bytes + sizeof(Scalar));
}

template <typename Scalar>
Scalar get_scalar(const std::uint8_t* data, std::size_t size, std::size_t& pos) {
  if (pos + sizeof(Scalar) > size) throw CorruptStream("sz: truncated raw scalar");
  Scalar v;
  std::memcpy(&v, data + pos, sizeof(Scalar));
  pos += sizeof(Scalar);
  return v;
}

}  // namespace szi
}  // namespace fraz

#endif  // FRAZ_COMPRESSORS_SZ_SZ_INTERNAL_HPP
