/// Hot kernels of the SZ backend's regression-predicted blocks.
///
/// Regression blocks are the data-parallel part of SZ: the predictor depends
/// only on the block coefficients and local coordinates, never on previously
/// reconstructed values, so the quantize (encode) and reconstruct (decode)
/// loops vectorize over the contiguous inner axis of each block.  Lorenzo
/// blocks stay scalar — their predictor reads reconstructed neighbours, a
/// serial feedback the vector lanes cannot honour.
///
/// Bit-identity contract: the `_vec` kernels produce byte-identical codes,
/// reconstruction values, and escape masks to the `_scalar` references for
/// every input (including NaN/Inf), pinned by tests/test_simd_kernels.cpp.
/// The scalar references replace sz.cpp's original `std::llround(qf)` with
/// the branch-free round-half-away-from-zero
///     r = trunc(qf) + trunc((qf - trunc(qf)) * 2.0)
/// which is exact in IEEE double for |qf| < 2^51 and therefore identical to
/// llround over the guarded |qf| < kRadius - 1 range — archive bytes are
/// unchanged (pinned by tests/test_archive_fields.cpp golden CRCs).
///
/// The regression prediction for an inner-axis run is evaluated as
///     pred(i) = pred_base + pred_step * i
/// where the caller computes pred_base with the same left-to-right
/// association as the original expression c0 + c1*lx + c2*ly + c3*lz; the
/// dropped trailing `+ c3*0` term of 2D runs is an exact no-op because
/// quantized coefficients are never -0.0.
#ifndef FRAZ_COMPRESSORS_SZ_SZ_KERNELS_HPP
#define FRAZ_COMPRESSORS_SZ_SZ_KERNELS_HPP

#include <cmath>
#include <cstddef>
#include <cstdint>

#include "util/simd.hpp"

namespace fraz {
namespace szk {

/// Quantization radius (shared with sz.cpp): codes live in [1, 2R-1] and
/// code 0 is the "unpredictable" escape.
constexpr std::int64_t kRadius = 32768;

/// |qf| guard below which a residual may be quantized (kRadius - 1).
constexpr double kQfLimit = 32767.0;

/// Quantize one contiguous run of a regression block.
///
/// For each element i: pred = pred_base + pred_step*i, qf = (v - pred)/twoe.
/// In-range residuals that survive the post-rounding bound check emit code
/// kRadius + round(qf) and the reconstructed value; everything else escapes
/// with code 0 and recon[i] = data[i] verbatim.  Bit i of the returned mask
/// is set for escaped elements (callers append their raw scalars in index
/// order); n must be <= 32.
template <typename Scalar>
inline std::uint32_t quantize_run_scalar(const Scalar* data, std::size_t n, double pred_base,
                                         double pred_step, double twoe, double e,
                                         std::uint32_t* codes, Scalar* recon) {
  std::uint32_t escapes = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double v = static_cast<double>(data[i]);
    const double pred = pred_base + pred_step * static_cast<double>(i);
    const double qf = (v - pred) / twoe;
    bool escaped = true;
    if (std::abs(qf) < kQfLimit) {
      const double tr = std::trunc(qf);
      const double r = tr + std::trunc((qf - tr) * 2.0);  // == llround(qf)
      const Scalar candidate = static_cast<Scalar>(pred + twoe * r);
      // Validate after Scalar rounding so the bound holds exactly.
      if (std::isfinite(static_cast<double>(candidate)) &&
          std::abs(static_cast<double>(candidate) - v) <= e) {
        codes[i] = static_cast<std::uint32_t>(kRadius + static_cast<std::int64_t>(r));
        recon[i] = candidate;
        escaped = false;
      }
    }
    if (escaped) {
      codes[i] = 0;
      recon[i] = data[i];
      escapes |= 1u << i;
    }
  }
  return escapes;
}

/// Reconstruct one contiguous run of a regression block from its codes.
///
/// Every element gets recon[i] = (Scalar)(pred + twoe*(code - kRadius)); bit
/// i of the returned mask flags code == 0 escapes whose value the caller must
/// patch from the raw stream (in index order).  Codes must be <= 2*kRadius-1
/// (sz.cpp validates the decoded stream before calling); n must be <= 32.
template <typename Scalar>
inline std::uint32_t reconstruct_run_scalar(const std::uint32_t* codes, std::size_t n,
                                            double pred_base, double pred_step, double twoe,
                                            Scalar* recon) {
  std::uint32_t escapes = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double pred = pred_base + pred_step * static_cast<double>(i);
    const auto q = static_cast<std::int64_t>(codes[i]) - kRadius;
    recon[i] = static_cast<Scalar>(pred + twoe * static_cast<double>(q));
    if (codes[i] == 0) escapes |= 1u << i;
  }
  return escapes;
}

// ---------------------------------------------------------------------------
// Vectorized kernels, defined in sz_kernels_simd.cpp (compiled with wider
// codegen on x86).  Callers must gate on simd_active(); when the wide TU has
// no 64-bit lanes the _vec entry points forward to the scalar references.
// ---------------------------------------------------------------------------

int kernels_isa();
bool kernels_vectorized();

std::uint32_t quantize_run_vec(const float* data, std::size_t n, double pred_base,
                               double pred_step, double twoe, double e, std::uint32_t* codes,
                               float* recon);
std::uint32_t quantize_run_vec(const double* data, std::size_t n, double pred_base,
                               double pred_step, double twoe, double e, std::uint32_t* codes,
                               double* recon);
std::uint32_t reconstruct_run_vec(const std::uint32_t* codes, std::size_t n, double pred_base,
                                  double pred_step, double twoe, float* recon);
std::uint32_t reconstruct_run_vec(const std::uint32_t* codes, std::size_t n, double pred_base,
                                  double pred_step, double twoe, double* recon);

/// True when the _vec kernels are both compiled wide and runtime-safe here.
inline bool simd_active() {
  static const bool on = kernels_vectorized() && simd::isa_runtime_ok(kernels_isa());
  return on;
}

}  // namespace szk
}  // namespace fraz

#endif  // FRAZ_COMPRESSORS_SZ_SZ_KERNELS_HPP
