/// Vector implementations of the SZ regression-block kernels.  CMake compiles
/// this TU with `-mavx2 -ffp-contract=off` on x86 when available; without
/// wide64 support every entry point degrades to the scalar reference (and
/// kernels_vectorized() reports false so callers never pay the call).
///
/// Bit-identity with sz_kernels.hpp scalar references is a hard contract —
/// see the header comment and tests/test_simd_kernels.cpp.
#include "compressors/sz/sz_kernels.hpp"

namespace fraz {
namespace szk {

int kernels_isa() { return simd::isa_id(); }

bool kernels_vectorized() {
#if defined(FRAZ_SIMD_HAS_WIDE64)
  return true;
#else
  return false;
#endif
}

#if defined(FRAZ_SIMD_HAS_WIDE64)

namespace {

using simd::V4d;
using simd::V4i32;

template <typename Scalar>
inline V4d load_lanes(const Scalar* p);
template <>
inline V4d load_lanes<float>(const float* p) {
  return V4d::load4f(p);
}
template <>
inline V4d load_lanes<double>(const double* p) {
  return V4d::load(p);
}

template <typename Scalar>
inline void store_lanes(V4d x, Scalar* out);
template <>
inline void store_lanes<float>(V4d x, float* out) {
  simd::store4f(x, out);
}
template <>
inline void store_lanes<double>(V4d x, double* out) {
  x.store(out);
}

template <typename Scalar>
inline V4d storage_roundtrip(V4d x);
template <>
inline V4d storage_roundtrip<float>(V4d x) {
  return simd::f32_roundtrip(x);
}
template <>
inline V4d storage_roundtrip<double>(V4d x) {
  return x;
}

constexpr double kLaneIdx[4] = {0.0, 1.0, 2.0, 3.0};

template <typename Scalar>
std::uint32_t quantize_run_impl(const Scalar* data, const std::size_t n, const double pred_base,
                                const double pred_step, const double twoe, const double e,
                                std::uint32_t* codes, Scalar* recon) {
  const std::size_t n4 = n & ~std::size_t{3};
  const V4d vbase = V4d::bcast(pred_base);
  const V4d vstep = V4d::bcast(pred_step);
  const V4d vtwoe = V4d::bcast(twoe);
  const V4d ve = V4d::bcast(e);
  const V4d vzero = V4d::bcast(0.0);
  const V4d vtwo = V4d::bcast(2.0);
  const V4d vlim = V4d::bcast(kQfLimit);
  const V4d vrad = V4d::bcast(static_cast<double>(kRadius));
  const V4d lane = V4d::load(kLaneIdx);
  std::uint32_t escapes = 0;
  for (std::size_t i = 0; i < n4; i += 4) {
    const V4d v = load_lanes<Scalar>(data + i);
    const V4d l = simd::add(V4d::bcast(static_cast<double>(i)), lane);
    const V4d pred = simd::add(vbase, simd::mul(vstep, l));
    const V4d qf = simd::div(simd::sub(v, pred), vtwoe);
    const V4d in_range = simd::cmp_lt(simd::vabs(qf), vlim);
    const V4d tr = simd::trunc(qf);
    const V4d r = simd::add(tr, simd::trunc(simd::mul(simd::sub(qf, tr), vtwo)));
    const V4d cd = storage_roundtrip<Scalar>(simd::add(pred, simd::mul(vtwoe, r)));
    // isfinite(cd): NaN and Inf both fail cd - cd == 0.
    const V4d finite = simd::cmp_eq(simd::sub(cd, cd), vzero);
    const V4d err_ok = simd::cmp_le(simd::vabs(simd::sub(cd, v)), ve);
    const V4d ok = simd::mask_and(in_range, simd::mask_and(finite, err_ok));
    // Escaped lanes are blended to 0.0 before the convert (code 0), so the
    // int conversion never sees an out-of-range double.
    const V4i32 code = simd::to_i32(simd::blend(ok, simd::add(r, vrad), vzero));
    code.store(reinterpret_cast<std::int32_t*>(codes + i));
    store_lanes<Scalar>(simd::blend(ok, cd, v), recon + i);
    const auto esc = static_cast<std::uint32_t>(~simd::movemask(ok) & 0xF);
    if (esc != 0) {
      escapes |= esc << i;
      // Re-store escaped lanes verbatim: the f32 round-trip in the blended
      // store would quieten signalling NaNs, breaking bit-identity with the
      // scalar reference's recon[i] = data[i].
      for (std::size_t l2 = 0; l2 < 4; ++l2)
        if ((esc >> l2) & 1u) recon[i + l2] = data[i + l2];
    }
  }
  for (std::size_t i = n4; i < n; ++i) {
    const double v = static_cast<double>(data[i]);
    const double pred = pred_base + pred_step * static_cast<double>(i);
    const double qf = (v - pred) / twoe;
    bool escaped = true;
    if (std::abs(qf) < kQfLimit) {
      const double tr = std::trunc(qf);
      const double r = tr + std::trunc((qf - tr) * 2.0);
      const Scalar candidate = static_cast<Scalar>(pred + twoe * r);
      if (std::isfinite(static_cast<double>(candidate)) &&
          std::abs(static_cast<double>(candidate) - v) <= e) {
        codes[i] = static_cast<std::uint32_t>(kRadius + static_cast<std::int64_t>(r));
        recon[i] = candidate;
        escaped = false;
      }
    }
    if (escaped) {
      codes[i] = 0;
      recon[i] = data[i];
      escapes |= 1u << i;
    }
  }
  return escapes;
}

template <typename Scalar>
std::uint32_t reconstruct_run_impl(const std::uint32_t* codes, const std::size_t n,
                                   const double pred_base, const double pred_step,
                                   const double twoe, Scalar* recon) {
  const std::size_t n4 = n & ~std::size_t{3};
  const V4d vbase = V4d::bcast(pred_base);
  const V4d vstep = V4d::bcast(pred_step);
  const V4d vtwoe = V4d::bcast(twoe);
  const V4d vzero = V4d::bcast(0.0);
  const V4d vrad = V4d::bcast(static_cast<double>(kRadius));
  const V4d lane = V4d::load(kLaneIdx);
  std::uint32_t escapes = 0;
  for (std::size_t i = 0; i < n4; i += 4) {
    // Codes are validated <= 2*kRadius-1 upstream, so the i32 lanes are
    // non-negative and the integer arithmetic below is exact in double.
    const V4i32 ci = V4i32::load(reinterpret_cast<const std::int32_t*>(codes + i));
    const V4d cd = simd::to_f64(ci);
    const V4d q = simd::sub(cd, vrad);
    const V4d l = simd::add(V4d::bcast(static_cast<double>(i)), lane);
    const V4d pred = simd::add(vbase, simd::mul(vstep, l));
    store_lanes<Scalar>(simd::add(pred, simd::mul(vtwoe, q)), recon + i);
    escapes |= static_cast<std::uint32_t>(simd::movemask(simd::cmp_eq(cd, vzero))) << i;
  }
  for (std::size_t i = n4; i < n; ++i) {
    const double pred = pred_base + pred_step * static_cast<double>(i);
    const auto q = static_cast<std::int64_t>(codes[i]) - kRadius;
    recon[i] = static_cast<Scalar>(pred + twoe * static_cast<double>(q));
    if (codes[i] == 0) escapes |= 1u << i;
  }
  return escapes;
}

}  // namespace

std::uint32_t quantize_run_vec(const float* data, std::size_t n, double pred_base,
                               double pred_step, double twoe, double e, std::uint32_t* codes,
                               float* recon) {
  return quantize_run_impl(data, n, pred_base, pred_step, twoe, e, codes, recon);
}
std::uint32_t quantize_run_vec(const double* data, std::size_t n, double pred_base,
                               double pred_step, double twoe, double e, std::uint32_t* codes,
                               double* recon) {
  return quantize_run_impl(data, n, pred_base, pred_step, twoe, e, codes, recon);
}
std::uint32_t reconstruct_run_vec(const std::uint32_t* codes, std::size_t n, double pred_base,
                                  double pred_step, double twoe, float* recon) {
  return reconstruct_run_impl(codes, n, pred_base, pred_step, twoe, recon);
}
std::uint32_t reconstruct_run_vec(const std::uint32_t* codes, std::size_t n, double pred_base,
                                  double pred_step, double twoe, double* recon) {
  return reconstruct_run_impl(codes, n, pred_base, pred_step, twoe, recon);
}

#else  // !FRAZ_SIMD_HAS_WIDE64 — scalar reference stands in

std::uint32_t quantize_run_vec(const float* data, std::size_t n, double pred_base,
                               double pred_step, double twoe, double e, std::uint32_t* codes,
                               float* recon) {
  return quantize_run_scalar(data, n, pred_base, pred_step, twoe, e, codes, recon);
}
std::uint32_t quantize_run_vec(const double* data, std::size_t n, double pred_base,
                               double pred_step, double twoe, double e, std::uint32_t* codes,
                               double* recon) {
  return quantize_run_scalar(data, n, pred_base, pred_step, twoe, e, codes, recon);
}
std::uint32_t reconstruct_run_vec(const std::uint32_t* codes, std::size_t n, double pred_base,
                                  double pred_step, double twoe, float* recon) {
  return reconstruct_run_scalar(codes, n, pred_base, pred_step, twoe, recon);
}
std::uint32_t reconstruct_run_vec(const std::uint32_t* codes, std::size_t n, double pred_base,
                                  double pred_step, double twoe, double* recon) {
  return reconstruct_run_scalar(codes, n, pred_base, pred_step, twoe, recon);
}

#endif

}  // namespace szk
}  // namespace fraz
