#ifndef FRAZ_COMPRESSORS_SZ_SZ_HPP
#define FRAZ_COMPRESSORS_SZ_SZ_HPP

/// \file sz.hpp
/// Prediction-based error-bounded lossy compressor in the style of SZ 2.x
/// (Di & Cappello IPDPS'16; Tao et al. IPDPS'17; Liang et al. Big Data'18).
///
/// The four-stage pipeline matches the paper's description of SZ:
///  1. blockwise hybrid prediction — a 1-layer Lorenzo predictor on
///     *reconstructed* neighbours, or a per-block linear regression plane
///     (2D/3D), whichever fits the block better;
///  2. linear-scaling quantization of the prediction residual into
///     `2^16`-entry integer codes with an "unpredictable" escape that stores
///     the exact scalar;
///  3. custom Huffman coding of the quantization codes;
///  4. an LZ77 dictionary-coder pass over the whole payload (the Gzip/Zstd
///     stage).
///
/// Because prediction runs on reconstructed values and stages 3-4 interact,
/// the compression ratio is *not* monotonic in the error bound — exactly the
/// property (paper Fig. 3) that motivates FRaZ's global search instead of
/// binary search.
///
/// Guarantee: for every element, |original - decompressed| <= error_bound
/// (verified at encode time after float rounding; violators are escaped).

#include <cstdint>
#include <vector>

#include "ndarray/ndarray.hpp"
#include "util/buffer.hpp"

namespace fraz {

/// Tuning knobs for the SZ-like compressor.
struct SzOptions {
  /// Absolute error bound; must be > 0 and finite.
  double error_bound = 1e-3;
  /// Enable the per-block regression predictor (2D/3D only).
  bool regression = true;
};

/// Compress \p input (1D/2D/3D, f32/f64) into a sealed container.
std::vector<std::uint8_t> sz_compress(const ArrayView& input, const SzOptions& options);

/// Zero-copy variant: write the sealed container into the caller's reusable
/// \p out (cleared first, capacity retained across calls).
void sz_compress_into(const ArrayView& input, const SzOptions& options, Buffer& out);

/// Decompress a container produced by sz_compress.
NdArray sz_decompress(const std::uint8_t* data, std::size_t size);

inline NdArray sz_decompress(const std::vector<std::uint8_t>& data) {
  return sz_decompress(data.data(), data.size());
}

}  // namespace fraz

#endif  // FRAZ_COMPRESSORS_SZ_SZ_HPP
