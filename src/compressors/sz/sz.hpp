#ifndef FRAZ_COMPRESSORS_SZ_SZ_HPP
#define FRAZ_COMPRESSORS_SZ_SZ_HPP

/// \file sz.hpp
/// Prediction-based error-bounded lossy compressor in the style of SZ 2.x
/// (Di & Cappello IPDPS'16; Tao et al. IPDPS'17; Liang et al. Big Data'18).
///
/// The four-stage pipeline matches the paper's description of SZ:
///  1. blockwise hybrid prediction — a 1-layer Lorenzo predictor on
///     *reconstructed* neighbours, or a per-block linear regression plane
///     (2D/3D), whichever fits the block better;
///  2. linear-scaling quantization of the prediction residual into
///     `2^16`-entry integer codes with an "unpredictable" escape that stores
///     the exact scalar;
///  3. custom Huffman coding of the quantization codes;
///  4. an LZ77 dictionary-coder pass over the whole payload (the Gzip/Zstd
///     stage).
///
/// Because prediction runs on reconstructed values and stages 3-4 interact,
/// the compression ratio is *not* monotonic in the error bound — exactly the
/// property (paper Fig. 3) that motivates FRaZ's global search instead of
/// binary search.
///
/// Guarantee: for every element, |original - decompressed| <= error_bound
/// (verified at encode time after float rounding; violators are escaped).

#include <cstdint>
#include <vector>

#include "ndarray/ndarray.hpp"
#include "util/buffer.hpp"

namespace fraz {

/// Execution mode of the sz pipeline.
enum class SzMode : std::uint8_t {
  /// The classic four-stage pipeline above (payload format v1): global
  /// Lorenzo feedback, single-state rANS, LZ stage.
  kSerial = 0,
  /// Blocked fused pipeline (payload format v2): prediction state never
  /// crosses a fixed-size block boundary, predict->quantize->entropy fuse
  /// per block group, and each group carries an independent 8-way
  /// interleaved rANS stream — so groups encode and decode in parallel with
  /// byte-identical output at any thread count.  No LZ stage (the
  /// interleaved coder reaches order-0 entropy on its own; the small
  /// dictionary gain is traded for the parallel/fused speedup).
  kBlocked = 1,
};

/// Tuning knobs for the SZ-like compressor.
struct SzOptions {
  /// Absolute error bound; must be > 0 and finite.
  double error_bound = 1e-3;
  /// Enable the per-block regression predictor (2D/3D only).
  bool regression = true;
  /// Pipeline selection; affects *encode* only (decode routes on the frame
  /// version, so either instance decodes both formats).
  SzMode mode = SzMode::kSerial;
  /// Intra-chunk worker cap for blocked encode/decode (workers drawn from
  /// shared_thread_pool(), caller included).  0 or 1 runs inline.  Output
  /// bytes are identical at every setting.
  unsigned threads = 0;
};

/// Compress \p input (1D/2D/3D, f32/f64) into a sealed container.
std::vector<std::uint8_t> sz_compress(const ArrayView& input, const SzOptions& options);

/// Zero-copy variant: write the sealed container into the caller's reusable
/// \p out (cleared first, capacity retained across calls).
void sz_compress_into(const ArrayView& input, const SzOptions& options, Buffer& out);

/// Decompress a container produced by sz_compress (either format version;
/// the frame says which).  \p threads caps intra-chunk decode parallelism
/// for v2 frames (0 or 1 = inline; v1 frames always decode serially).
NdArray sz_decompress(const std::uint8_t* data, std::size_t size, unsigned threads = 0);

inline NdArray sz_decompress(const std::vector<std::uint8_t>& data, unsigned threads = 0) {
  return sz_decompress(data.data(), data.size(), threads);
}

}  // namespace fraz

#endif  // FRAZ_COMPRESSORS_SZ_SZ_HPP
