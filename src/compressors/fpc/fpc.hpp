#ifndef FRAZ_COMPRESSORS_FPC_FPC_HPP
#define FRAZ_COMPRESSORS_FPC_FPC_HPP

/// \file fpc.hpp
/// FPC-style lossless compressor for hard-to-compress floats (Burtscher &
/// Ratanaworabhan; SNIPPETS.md snippet 1 is the exemplar).
///
/// Two hash-table predictors race on every value: an FCM (finite context
/// method — "the same context produced this value last time") and a DFCM
/// (differential FCM — "the same *delta* context produced this delta").  The
/// winner is whichever prediction XORs against the true bit pattern to more
/// leading zero bytes; a 4-bit header per value records the chosen predictor
/// (1 bit) and the zero-byte count (3 bits), and only the non-zero low bytes
/// of the XOR residual are stored.  No quantization, no entropy stage:
/// exactly one hash + XOR + table update per value, which is why this is the
/// backend the tuner falls back to when smooth-field predictors (sz/zfp)
/// lose — rough, turbulent, or already-compressed data still moves at
/// memcpy-like speed and round-trips bit-exactly (NaN payloads included).
///
/// The compressor is lossless: `set_error_bound` is accepted (any bound is
/// trivially honoured) and ignored.

#include <cstdint>
#include <vector>

#include "ndarray/ndarray.hpp"
#include "util/buffer.hpp"

namespace fraz {

/// Tuning knobs of the fpc coder.
struct FpcOptions {
  /// log2 of each predictor hash-table size, in [8, 20].  Bigger tables
  /// remember more contexts (better ratio on large fields) at the cost of
  /// cache footprint; 16 matches the reference implementation's sweet spot.
  unsigned table_bits = 16;
};

/// Compress into a sealed container.
std::vector<std::uint8_t> fpc_compress(const ArrayView& input, const FpcOptions& options);

/// Zero-copy variant: seal into the caller's reusable \p out.
void fpc_compress_into(const ArrayView& input, const FpcOptions& options, Buffer& out);

/// Validate and reconstruct (bit-exact).  Throws CorruptStream on malformed
/// frames.
NdArray fpc_decompress(const std::uint8_t* data, std::size_t size);

inline NdArray fpc_decompress(const std::vector<std::uint8_t>& data) {
  return fpc_decompress(data.data(), data.size());
}

}  // namespace fraz

#endif  // FRAZ_COMPRESSORS_FPC_FPC_HPP
