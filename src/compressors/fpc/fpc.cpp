#include "compressors/fpc/fpc.hpp"

#include <cmath>
#include <cstring>

#include "codec/varint.hpp"
#include "compressors/container.hpp"
#include "util/error.hpp"

namespace fraz {

namespace {

/// Payload layout (after the shared container header):
///   u8      payload version (1)
///   u8      table_bits (8..20)
///   headers ceil(n/2) bytes — one nibble per value, value 2i in the low
///           nibble; nibble = (predictor << 3) | zero-byte code
///   residual bytes, little-endian low bytes of the chosen XOR residual
constexpr std::uint8_t kPayloadVersion = 1;
constexpr unsigned kMinTableBits = 8;
constexpr unsigned kMaxTableBits = 20;

/// Traits tying the scalar type to its bit pattern and hash shifts.  The f64
/// shifts are the reference FPC constants; the f32 variants scale the context
/// window to the narrower word.
template <typename Scalar>
struct FpcTraits;

template <>
struct FpcTraits<double> {
  using UInt = std::uint64_t;
  static constexpr unsigned kFcmShift = 48;   // value bits feeding the FCM context
  static constexpr unsigned kDfcmShift = 40;  // delta bits feeding the DFCM context
  /// 3-bit code for a leading-zero-byte count.  8 counts but 4 is rare
  /// (codes 4..7 mean 5..8 zero bytes), so lzb 4 demotes to code 3.
  static unsigned code_of(const unsigned lzb) { return lzb >= 5 ? lzb - 1 : (lzb == 4 ? 3 : lzb); }
  static unsigned lzb_of(const unsigned code) { return code >= 4 ? code + 1 : code; }
};

template <>
struct FpcTraits<float> {
  using UInt = std::uint32_t;
  static constexpr unsigned kFcmShift = 16;
  static constexpr unsigned kDfcmShift = 8;
  static unsigned code_of(const unsigned lzb) { return lzb; }  // 0..4 fit directly
  static unsigned lzb_of(const unsigned code) { return code; }
};

template <typename UInt>
unsigned leading_zero_bytes(const UInt x) {
  if (x == 0) return sizeof(UInt);
  return static_cast<unsigned>(__builtin_clzll(static_cast<std::uint64_t>(x)) -
                               (64 - sizeof(UInt) * 8)) /
         8;
}

/// The two predictor states advanced identically by encoder and decoder.
template <typename Scalar>
struct Predictors {
  using UInt = typename FpcTraits<Scalar>::UInt;
  std::vector<UInt> fcm;
  std::vector<UInt> dfcm;
  UInt fcm_hash = 0;
  UInt dfcm_hash = 0;
  UInt last = 0;
  UInt mask;

  explicit Predictors(const unsigned table_bits)
      : fcm(std::size_t{1} << table_bits, 0),
        dfcm(std::size_t{1} << table_bits, 0),
        mask((UInt{1} << table_bits) - 1) {}

  UInt predict_fcm() const { return fcm[fcm_hash]; }
  UInt predict_dfcm() const { return static_cast<UInt>(last + dfcm[dfcm_hash]); }

  void update(const UInt value) {
    fcm[fcm_hash] = value;
    fcm_hash = ((fcm_hash << 6) ^ (value >> FpcTraits<Scalar>::kFcmShift)) & mask;
    const UInt delta = static_cast<UInt>(value - last);
    dfcm[dfcm_hash] = delta;
    dfcm_hash = ((dfcm_hash << 2) ^ (delta >> FpcTraits<Scalar>::kDfcmShift)) & mask;
    last = value;
  }
};

template <typename Scalar>
void encode_payload(const ArrayView& input, const unsigned table_bits,
                    std::vector<std::uint8_t>& payload) {
  using Traits = FpcTraits<Scalar>;
  using UInt = typename Traits::UInt;
  const Scalar* data = input.typed<Scalar>();
  const std::size_t n = input.elements();

  Predictors<Scalar> pred(table_bits);
  std::vector<std::uint8_t> headers((n + 1) / 2, 0);
  std::vector<std::uint8_t> residuals;
  residuals.reserve(n * sizeof(Scalar) / 2 + 64);

  for (std::size_t i = 0; i < n; ++i) {
    UInt v;
    std::memcpy(&v, data + i, sizeof(Scalar));
    const UInt xf = v ^ pred.predict_fcm();
    const UInt xd = v ^ pred.predict_dfcm();
    const unsigned lf = leading_zero_bytes(xf);
    const unsigned ld = leading_zero_bytes(xd);
    // Tie goes to FCM so encoder and decoder never depend on table contents
    // beyond the shared update sequence.
    const bool use_dfcm = ld > lf;
    const UInt x = use_dfcm ? xd : xf;
    const unsigned code = Traits::code_of(use_dfcm ? ld : lf);
    const unsigned stored = sizeof(Scalar) - Traits::lzb_of(code);
    const unsigned nibble = (static_cast<unsigned>(use_dfcm) << 3) | code;
    headers[i >> 1] |= static_cast<std::uint8_t>(nibble << ((i & 1) * 4));
    for (unsigned b = 0; b < stored; ++b)
      residuals.push_back(static_cast<std::uint8_t>(x >> (8 * b)));
    pred.update(v);
  }

  payload.push_back(kPayloadVersion);
  payload.push_back(static_cast<std::uint8_t>(table_bits));
  payload.insert(payload.end(), headers.begin(), headers.end());
  payload.insert(payload.end(), residuals.begin(), residuals.end());
}

template <typename Scalar>
void decode_payload(const Container& c, const std::size_t n, NdArray& out) {
  using Traits = FpcTraits<Scalar>;
  using UInt = typename Traits::UInt;
  const std::uint8_t* payload = c.payload;
  const std::size_t psize = c.payload_size;
  std::size_t pos = 0;
  if (psize < 2) throw CorruptStream("fpc: payload header truncated");
  if (payload[pos++] != kPayloadVersion) throw CorruptStream("fpc: unknown payload version");
  const unsigned table_bits = payload[pos++];
  if (table_bits < kMinTableBits || table_bits > kMaxTableBits)
    throw CorruptStream("fpc: table_bits out of range");

  const std::size_t header_bytes = (n + 1) / 2;
  if (psize - pos < header_bytes) throw CorruptStream("fpc: header stream truncated");
  const std::uint8_t* headers = payload + pos;
  pos += header_bytes;

  Predictors<Scalar> pred(table_bits);
  Scalar* outp = out.typed<Scalar>();
  for (std::size_t i = 0; i < n; ++i) {
    const unsigned nibble = (headers[i >> 1] >> ((i & 1) * 4)) & 0xFu;
    const bool use_dfcm = (nibble >> 3) != 0;
    const unsigned lzb = Traits::lzb_of(nibble & 7u);
    if (lzb > sizeof(Scalar)) throw CorruptStream("fpc: zero-byte code out of range");
    const unsigned stored = sizeof(Scalar) - lzb;
    if (psize - pos < stored) throw CorruptStream("fpc: residual stream truncated");
    UInt x = 0;
    for (unsigned b = 0; b < stored; ++b)
      x |= static_cast<UInt>(payload[pos + b]) << (8 * b);
    pos += stored;
    const UInt v = x ^ (use_dfcm ? pred.predict_dfcm() : pred.predict_fcm());
    std::memcpy(outp + i, &v, sizeof(Scalar));
    pred.update(v);
  }
  if (pos != psize) throw CorruptStream("fpc: trailing bytes after residuals");
  // The unused high nibble of an odd-length header stream must be zero so
  // frames stay canonical (byte-identical re-encode).
  if ((n & 1) != 0 && (headers[n >> 1] >> 4) != 0)
    throw CorruptStream("fpc: nonzero padding nibble");
}

}  // namespace

std::vector<std::uint8_t> fpc_compress(const ArrayView& input, const FpcOptions& options) {
  Buffer out;
  fpc_compress_into(input, options, out);
  return out.to_vector();
}

void fpc_compress_into(const ArrayView& input, const FpcOptions& options, Buffer& out) {
  require(input.dims() >= 1 && input.dims() <= 8, "fpc: supports 1D..8D data");
  require(input.elements() > 0, "fpc: empty input");
  require(options.table_bits >= kMinTableBits && options.table_bits <= kMaxTableBits,
          "fpc: table_bits must be in [8, 20]");
  std::vector<std::uint8_t> payload;
  if (input.dtype() == DType::kFloat32)
    encode_payload<float>(input, options.table_bits, payload);
  else
    encode_payload<double>(input, options.table_bits, payload);
  seal_container_into(CompressorId::kFpc, input.dtype(), input.shape(), payload, out);
}

NdArray fpc_decompress(const std::uint8_t* data, std::size_t size) {
  const Container c = open_container(data, size, CompressorId::kFpc);
  std::uint64_t n = 1;
  for (const std::size_t extent : c.shape) {
    if (extent == 0 || n > (std::uint64_t{1} << 42) / extent)
      throw CorruptStream("fpc: implausible shape");
    n *= extent;
  }
  NdArray out(c.dtype, c.shape);
  if (c.dtype == DType::kFloat32)
    decode_payload<float>(c, static_cast<std::size_t>(n), out);
  else
    decode_payload<double>(c, static_cast<std::size_t>(n), out);
  return out;
}

}  // namespace fraz
