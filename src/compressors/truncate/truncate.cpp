#include "compressors/truncate/truncate.hpp"

#include <cstring>

#include "codec/bitstream.hpp"
#include "compressors/container.hpp"
#include "util/error.hpp"

namespace fraz {

namespace {

template <typename Scalar, typename UInt>
void compress_impl(const ArrayView& input, unsigned bits, Buffer& out) {
  const Scalar* data = input.typed<Scalar>();
  BitWriter writer;
  const unsigned width = sizeof(Scalar) * 8;
  for (std::size_t i = 0; i < input.elements(); ++i) {
    UInt u;
    std::memcpy(&u, data + i, sizeof(Scalar));
    writer.write_bits(u >> (width - bits), bits);
  }
  std::vector<std::uint8_t> payload;
  payload.push_back(static_cast<std::uint8_t>(bits));
  const auto stream = writer.take();
  payload.insert(payload.end(), stream.begin(), stream.end());
  seal_container_into(CompressorId::kTruncate, input.dtype(), input.shape(), payload, out);
}

template <typename Scalar, typename UInt>
void decompress_impl(const Container& c, NdArray& out) {
  if (c.payload_size < 1) throw CorruptStream("truncate: empty payload");
  const unsigned width = sizeof(Scalar) * 8;
  const unsigned bits = c.payload[0];
  if (bits < 1 || bits > width) throw CorruptStream("truncate: bad kept-bit count");
  BitReader reader(c.payload + 1, c.payload_size - 1);
  Scalar* data = out.typed<Scalar>();
  // Midpoint refill: reconstruct dropped bits as 100...0, the centre of the
  // truncated interval (halves the worst-case mantissa error vs zeros).
  const UInt refill = bits == width ? UInt{0} : UInt{1} << (width - bits - 1);
  for (std::size_t i = 0; i < out.elements(); ++i) {
    UInt u = static_cast<UInt>(reader.read_bits(bits)) << (width - bits);
    u |= refill;
    std::memcpy(data + i, &u, sizeof(Scalar));
  }
}

}  // namespace

std::vector<std::uint8_t> truncate_compress(const ArrayView& input,
                                            const TruncateOptions& options) {
  Buffer out;
  truncate_compress_into(input, options, out);
  return out.to_vector();
}

void truncate_compress_into(const ArrayView& input, const TruncateOptions& options,
                            Buffer& out) {
  require(input.dims() >= 1 && input.dims() <= 3, "truncate: supports 1D/2D/3D data");
  require(input.elements() > 0, "truncate: empty input");
  const unsigned width = static_cast<unsigned>(dtype_size(input.dtype())) * 8;
  require(options.bits >= 1 && options.bits <= width,
          "truncate: bits must be in [1, scalar width]");
  if (input.dtype() == DType::kFloat32)
    compress_impl<float, std::uint32_t>(input, options.bits, out);
  else
    compress_impl<double, std::uint64_t>(input, options.bits, out);
}

NdArray truncate_decompress(const std::uint8_t* data, std::size_t size) {
  const Container c = open_container(data, size, CompressorId::kTruncate);
  NdArray out(c.dtype, c.shape);
  if (c.dtype == DType::kFloat32)
    decompress_impl<float, std::uint32_t>(c, out);
  else
    decompress_impl<double, std::uint64_t>(c, out);
  return out;
}

}  // namespace fraz
