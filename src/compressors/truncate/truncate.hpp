#ifndef FRAZ_COMPRESSORS_TRUNCATE_TRUNCATE_HPP
#define FRAZ_COMPRESSORS_TRUNCATE_TRUNCATE_HPP

/// \file truncate.hpp
/// Mantissa-truncation fixed-ratio compressor — the strawman the paper's
/// introduction dismisses: "fixed-ratio compression can be obtained by
/// simply truncating the mantissa of the floating-point numbers, [but] this
/// approach may not respect the user's diverse error constraints."
///
/// Each scalar keeps its top `bits` bits (sign, exponent, leading mantissa
/// bits); the rest are dropped and the kept prefixes are bit-packed.  The
/// ratio is exactly `width / bits` by construction, with no error control
/// whatsoever — which is precisely why it serves as the baseline showing
/// what FRaZ's error-bounded tuning buys (quality at equal ratio).

#include <cstdint>
#include <vector>

#include "ndarray/ndarray.hpp"
#include "util/buffer.hpp"

namespace fraz {

/// Tuning knob of the truncation coder.
struct TruncateOptions {
  /// Bits kept per scalar (1..width).  Ratio = width/bits exactly.
  unsigned bits = 16;
};

/// Compress by keeping the top `bits` of every scalar.
std::vector<std::uint8_t> truncate_compress(const ArrayView& input,
                                            const TruncateOptions& options);

/// Zero-copy variant: write the sealed container into the caller's reusable
/// \p out (cleared first, capacity retained across calls).
void truncate_compress_into(const ArrayView& input, const TruncateOptions& options,
                            Buffer& out);

/// Reconstruct: kept prefix, dropped bits refilled with the midpoint pattern
/// (1 followed by zeros) to halve the expected truncation error.
NdArray truncate_decompress(const std::uint8_t* data, std::size_t size);

inline NdArray truncate_decompress(const std::vector<std::uint8_t>& data) {
  return truncate_decompress(data.data(), data.size());
}

}  // namespace fraz

#endif  // FRAZ_COMPRESSORS_TRUNCATE_TRUNCATE_HPP
