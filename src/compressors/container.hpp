#ifndef FRAZ_COMPRESSORS_CONTAINER_HPP
#define FRAZ_COMPRESSORS_CONTAINER_HPP

/// \file container.hpp
/// Shared on-disk framing for every compressor's output.
///
/// Layout:
///   u32     magic 'FRaZ'
///   u8      format version
///   u8      compressor id
///   u8      dtype (0 = f32, 1 = f64)
///   varint  ndims, then varint extents (slowest first)
///   varint  payload size
///   payload (compressor specific)
///   u32     CRC-32 over everything before it
///
/// The trailer checksum means a corrupted archive raises CorruptStream during
/// decompression instead of silently reconstructing garbage.

#include <cstdint>
#include <vector>

#include "ndarray/ndarray.hpp"
#include "util/buffer.hpp"

namespace fraz {

/// Identifies which compressor produced a container.
enum class CompressorId : std::uint8_t {
  kSz = 1,
  kZfp = 2,
  kMgard = 3,
  kTruncate = 4,
  kSzx = 5,
  kFpc = 6,
};

/// Parsed container: header fields plus a span of the payload.
struct Container {
  CompressorId id;
  DType dtype;
  Shape shape;
  const std::uint8_t* payload;
  std::size_t payload_size;
  /// Format version of the frame.  1 for every backend's classic payload;
  /// 2 only for sz blocked payloads (the payload grammar changes with it,
  /// so the decoder routes on this field).  v1 stays decodable forever.
  std::uint8_t version = 1;
};

/// Serialize header + payload + checksum into one buffer.
std::vector<std::uint8_t> seal_container(CompressorId id, DType dtype, const Shape& shape,
                                         const std::vector<std::uint8_t>& payload);

/// Zero-copy variant: seal into a caller-owned, reusable Buffer.  \p out is
/// cleared first; its capacity is retained across calls, so steady-state
/// sealing performs no heap allocation.  \p version is the frame format
/// version to stamp; only sz may seal version 2 (see Container::version).
void seal_container_into(CompressorId id, DType dtype, const Shape& shape,
                         const std::uint8_t* payload, std::size_t payload_size, Buffer& out,
                         std::uint8_t version = 1);

/// Convenience over the pointer form for payloads already in a std::vector.
void seal_container_into(CompressorId id, DType dtype, const Shape& shape,
                         const std::vector<std::uint8_t>& payload, Buffer& out);

/// Validate and parse.  Throws CorruptStream on bad magic/version/checksum or
/// truncation, and Unsupported when \p expected does not match the stored id.
Container open_container(const std::uint8_t* data, std::size_t size, CompressorId expected);

/// Same validation without an expected-producer check: accepts any known
/// CompressorId (the archive reader learns the backend from the frame itself).
Container open_container(const std::uint8_t* data, std::size_t size);

}  // namespace fraz

#endif  // FRAZ_COMPRESSORS_CONTAINER_HPP
