#ifndef FRAZ_COMPRESSORS_ZFP_ZFP_HPP
#define FRAZ_COMPRESSORS_ZFP_ZFP_HPP

/// \file zfp.hpp
/// Transform-based error-bounded lossy compressor in the style of ZFP
/// (Lindstrom, TVCG 2014), reproducing the two modes the FRaZ paper
/// exercises:
///
/// - **fixed-accuracy**: absolute error tolerance.  The minimum coded
///   bit-plane exponent is `emin = floor(log2(tolerance))` — the flooring the
///   paper calls out as the reason ZFP expresses only a step function of
///   compression ratios over the tolerance axis.
/// - **fixed-rate**: every 4^d block gets exactly `rate * 4^d` bits, enabling
///   random access but with markedly worse rate-distortion (the paper's
///   Figs. 1, 9, 10 baseline).
///
/// Pipeline per 4^d block: block-floating-point alignment to the block's
/// largest exponent, integer lifting transform, total-sequency ordering,
/// negabinary mapping, and embedded bit-plane coding with group testing.
/// Supports 1D/2D/3D, f32/f64.

#include <cstdint>
#include <vector>

#include "ndarray/ndarray.hpp"
#include "util/buffer.hpp"

namespace fraz {

/// Compression mode, mirroring zfp_stream's accuracy/rate policies.
enum class ZfpMode : std::uint8_t {
  kAccuracy = 0,
  kFixedRate = 1,
};

/// Tuning knobs for the ZFP-like compressor.
struct ZfpOptions {
  ZfpMode mode = ZfpMode::kAccuracy;
  /// Absolute error tolerance (accuracy mode).  Must be > 0.
  double tolerance = 1e-3;
  /// Bits per value (fixed-rate mode).  Must be > 0; fractional rates allowed.
  double rate = 8.0;
};

/// Compress \p input (1D/2D/3D) into a sealed container.
std::vector<std::uint8_t> zfp_compress(const ArrayView& input, const ZfpOptions& options);

/// Zero-copy variant: write the sealed container into the caller's reusable
/// \p out (cleared first, capacity retained across calls).
void zfp_compress_into(const ArrayView& input, const ZfpOptions& options, Buffer& out);

/// Decompress a container produced by zfp_compress.
NdArray zfp_decompress(const std::uint8_t* data, std::size_t size);

inline NdArray zfp_decompress(const std::vector<std::uint8_t>& data) {
  return zfp_decompress(data.data(), data.size());
}

}  // namespace fraz

#endif  // FRAZ_COMPRESSORS_ZFP_ZFP_HPP
