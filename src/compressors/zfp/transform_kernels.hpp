/// Vectorized ZFP block transforms.
///
/// The lifted transform applies the same 4-point butterfly along every row /
/// column / pillar of a 4^d block, so a 2D/3D block vectorizes naturally:
/// four lifts run in the four lanes of a 128-bit (i32) or 256-bit (i64)
/// vector, with a 4x4 transpose bridging the contiguous x-axis passes.  1D
/// blocks (a single 4-point lift) stay on the scalar path.
///
/// The lifting arithmetic is exact integer math (wrapping adds and
/// arithmetic shifts), so scalar/vector bit-identity is structural, not an
/// FP-rounding accident; tests/test_simd_kernels.cpp pins it anyway.
///
/// Dispatch follows the util/simd.hpp contract: transform_simd.cpp reports
/// its compile-time ISA and per-width availability (i64 lanes need AVX2; i32
/// lanes exist on SSE2/NEON too, but on x86 the whole TU is compiled with
/// -mavx2, so entering it still requires the AVX2 runtime check).
#ifndef FRAZ_COMPRESSORS_ZFP_TRANSFORM_KERNELS_HPP
#define FRAZ_COMPRESSORS_ZFP_TRANSFORM_KERNELS_HPP

#include <cstdint>

#include "compressors/zfp/transform.hpp"
#include "util/simd.hpp"

namespace fraz {
namespace zfpk {

int kernels_isa();
bool kernels_vectorized_i32();
bool kernels_vectorized_i64();

void fwd_transform_vec(std::int32_t* block, unsigned dims);
void inv_transform_vec(std::int32_t* block, unsigned dims);
void fwd_transform_vec(std::int64_t* block, unsigned dims);
void inv_transform_vec(std::int64_t* block, unsigned dims);

/// True when the _vec kernels for this lane width are compiled wide and
/// runtime-safe on this CPU.
template <typename Int>
bool simd_active();

template <>
inline bool simd_active<std::int32_t>() {
  static const bool on = kernels_vectorized_i32() && simd::isa_runtime_ok(kernels_isa());
  return on;
}

template <>
inline bool simd_active<std::int64_t>() {
  static const bool on = kernels_vectorized_i64() && simd::isa_runtime_ok(kernels_isa());
  return on;
}

/// Transform entry points with runtime dispatch; drop-in for the
/// zfp_detail:: scalar transforms.
template <typename Int>
inline void fwd_transform_any(Int* block, unsigned dims) {
  if (dims >= 2 && simd_active<Int>())
    fwd_transform_vec(block, dims);
  else
    zfp_detail::fwd_transform(block, dims);
}

template <typename Int>
inline void inv_transform_any(Int* block, unsigned dims) {
  if (dims >= 2 && simd_active<Int>())
    inv_transform_vec(block, dims);
  else
    zfp_detail::inv_transform(block, dims);
}

}  // namespace zfpk
}  // namespace fraz

#endif  // FRAZ_COMPRESSORS_ZFP_TRANSFORM_KERNELS_HPP
