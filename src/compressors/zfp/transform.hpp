#ifndef FRAZ_COMPRESSORS_ZFP_TRANSFORM_HPP
#define FRAZ_COMPRESSORS_ZFP_TRANSFORM_HPP

/// \file transform.hpp
/// The ZFP block transform machinery: the exactly-invertible lifted
/// near-orthogonal transform applied along each dimension of a 4^d block,
/// negabinary (base -2) coefficient mapping, and the total-sequency
/// permutation that orders coefficients by expected magnitude before
/// embedded coding.
///
/// The lifting steps follow Lindstrom's fixed-rate compressed floating-point
/// arrays (TVCG 2014): the forward transform is
///       ( 4  4  4  4)
/// 1/16*( 5  1 -1 -5)   applied as integer lifting so that
///       (-4  4  4 -4)   inverse(forward(x)) == x exactly.
///       (-2  6 -6  2)

#include <array>
#include <cstdint>
#include <type_traits>

namespace fraz::zfp_detail {

/// The lifting arithmetic deliberately wraps — exact invertibility holds in
/// two's complement modulo 2^width, and extreme coefficients do reach the
/// wrap.  Signed overflow and pre-C++20 `<<` of negatives are undefined, so
/// add/subtract/double route through the unsigned representation (identical
/// bits on every real target); only the arithmetic right shifts stay signed.
template <typename Int>
Int wadd(Int a, Int b) noexcept {
  using U = std::make_unsigned_t<Int>;
  return static_cast<Int>(static_cast<U>(a) + static_cast<U>(b));
}

template <typename Int>
Int wsub(Int a, Int b) noexcept {
  using U = std::make_unsigned_t<Int>;
  return static_cast<Int>(static_cast<U>(a) - static_cast<U>(b));
}

template <typename Int>
Int dbl(Int v) noexcept {
  return static_cast<Int>(static_cast<std::make_unsigned_t<Int>>(v) << 1);
}

/// Forward lift of 4 integers at stride \p s.
template <typename Int>
void fwd_lift(Int* p, std::size_t s) noexcept {
  Int x = p[0 * s], y = p[1 * s], z = p[2 * s], w = p[3 * s];
  x = wadd(x, w); x >>= 1; w = wsub(w, x);
  z = wadd(z, y); z >>= 1; y = wsub(y, z);
  x = wadd(x, z); x >>= 1; z = wsub(z, x);
  w = wadd(w, y); w >>= 1; y = wsub(y, w);
  w = wadd(w, static_cast<Int>(y >> 1)); y = wsub(y, static_cast<Int>(w >> 1));
  p[0 * s] = x; p[1 * s] = y; p[2 * s] = z; p[3 * s] = w;
}

/// Inverse lift of 4 integers at stride \p s; exact inverse of fwd_lift.
template <typename Int>
void inv_lift(Int* p, std::size_t s) noexcept {
  Int x = p[0 * s], y = p[1 * s], z = p[2 * s], w = p[3 * s];
  y = wadd(y, static_cast<Int>(w >> 1)); w = wsub(w, static_cast<Int>(y >> 1));
  y = wadd(y, w); w = dbl(w); w = wsub(w, y);
  z = wadd(z, x); x = dbl(x); x = wsub(x, z);
  y = wadd(y, z); z = dbl(z); z = wsub(z, y);
  w = wadd(w, x); x = dbl(x); x = wsub(x, w);
  p[0 * s] = x; p[1 * s] = y; p[2 * s] = z; p[3 * s] = w;
}

/// Forward transform of a 4^d block (d = dims), in place.
template <typename Int>
void fwd_transform(Int* block, unsigned dims) noexcept {
  switch (dims) {
    case 1:
      fwd_lift(block, 1);
      break;
    case 2:
      for (unsigned y = 0; y < 4; ++y) fwd_lift(block + 4 * y, 1);   // rows (x)
      for (unsigned x = 0; x < 4; ++x) fwd_lift(block + x, 4);       // columns (y)
      break;
    default:  // 3
      for (unsigned z = 0; z < 4; ++z)
        for (unsigned y = 0; y < 4; ++y) fwd_lift(block + 16 * z + 4 * y, 1);  // x
      for (unsigned z = 0; z < 4; ++z)
        for (unsigned x = 0; x < 4; ++x) fwd_lift(block + 16 * z + x, 4);      // y
      for (unsigned y = 0; y < 4; ++y)
        for (unsigned x = 0; x < 4; ++x) fwd_lift(block + 4 * y + x, 16);      // z
      break;
  }
}

/// Inverse transform of a 4^d block, in place.
template <typename Int>
void inv_transform(Int* block, unsigned dims) noexcept {
  switch (dims) {
    case 1:
      inv_lift(block, 1);
      break;
    case 2:
      for (unsigned x = 0; x < 4; ++x) inv_lift(block + x, 4);
      for (unsigned y = 0; y < 4; ++y) inv_lift(block + 4 * y, 1);
      break;
    default:  // 3
      for (unsigned y = 0; y < 4; ++y)
        for (unsigned x = 0; x < 4; ++x) inv_lift(block + 4 * y + x, 16);
      for (unsigned z = 0; z < 4; ++z)
        for (unsigned x = 0; x < 4; ++x) inv_lift(block + 16 * z + x, 4);
      for (unsigned z = 0; z < 4; ++z)
        for (unsigned y = 0; y < 4; ++y) inv_lift(block + 16 * z + 4 * y, 1);
      break;
  }
}

/// Negabinary mask for the unsigned twin of Int.
template <typename UInt>
constexpr UInt nb_mask() noexcept {
  UInt m = 0;
  for (unsigned b = 1; b < sizeof(UInt) * 8; b += 2) m |= UInt{1} << b;
  return m;
}

/// Two's complement -> negabinary.
template <typename Int, typename UInt>
UInt int2uint(Int x) noexcept {
  constexpr UInt mask = nb_mask<UInt>();
  return (static_cast<UInt>(x) + mask) ^ mask;
}

/// Negabinary -> two's complement; exact inverse of int2uint.
template <typename Int, typename UInt>
Int uint2int(UInt u) noexcept {
  constexpr UInt mask = nb_mask<UInt>();
  return static_cast<Int>((u ^ mask) - mask);
}

/// Total-sequency permutation: `perm[i]` is the linear block offset of the
/// i-th coefficient in increasing total-frequency order.  Low-sequency
/// (smooth) coefficients carry most energy and are coded first.
const std::array<std::uint8_t, 4>& sequency_order_1d() noexcept;
const std::array<std::uint8_t, 16>& sequency_order_2d() noexcept;
const std::array<std::uint8_t, 64>& sequency_order_3d() noexcept;

/// Pointer to the order table for \p dims (1..3), length 4^dims.
const std::uint8_t* sequency_order(unsigned dims) noexcept;

}  // namespace fraz::zfp_detail

#endif  // FRAZ_COMPRESSORS_ZFP_TRANSFORM_HPP
