/// Vector implementations of the ZFP block transforms.  CMake compiles this
/// TU with `-mavx2 -ffp-contract=off` on x86 when available; see
/// transform_kernels.hpp for the dispatch and bit-identity contract.
#include "compressors/zfp/transform_kernels.hpp"

namespace fraz {
namespace zfpk {

int kernels_isa() { return simd::isa_id(); }

bool kernels_vectorized_i32() { return simd::isa_id() != simd::kScalar; }

bool kernels_vectorized_i64() {
#if defined(FRAZ_SIMD_HAS_WIDE64)
  return true;
#else
  return false;
#endif
}

#if !defined(FRAZ_SIMD_SCALAR) || defined(FRAZ_SIMD_HAS_WIDE64)

namespace {

/// Four fwd_lift butterflies at once, one per lane.  Wrapping vector adds
/// match zfp_detail::wadd/wsub bit-for-bit; sra1 matches the signed >> 1.
template <typename V>
inline void fwd_lift_v(V& x, V& y, V& z, V& w) {
  using simd::add;
  using simd::sra1;
  using simd::sub;
  x = add(x, w); x = sra1(x); w = sub(w, x);
  z = add(z, y); z = sra1(z); y = sub(y, z);
  x = add(x, z); x = sra1(x); z = sub(z, x);
  w = add(w, y); w = sra1(w); y = sub(y, w);
  w = add(w, sra1(y)); y = sub(y, sra1(w));
}

/// Exact vector mirror of zfp_detail::inv_lift (dbl == wrapping self-add).
template <typename V>
inline void inv_lift_v(V& x, V& y, V& z, V& w) {
  using simd::add;
  using simd::sra1;
  using simd::sub;
  y = add(y, sra1(w)); w = sub(w, sra1(y));
  y = add(y, w); w = add(w, w); w = sub(w, y);
  z = add(z, x); x = add(x, x); x = sub(x, z);
  y = add(y, z); z = add(z, z); z = sub(z, y);
  w = add(w, x); x = add(x, x); x = sub(x, w);
}

/// Forward transform of one 16-element slice (rows then columns).  The
/// transpose turns the contiguous rows into per-lane columns for the x-pass;
/// after transposing back, the row vectors lift along y directly.
template <typename V, typename Int>
inline void fwd_slice(Int* s) {
  V r0 = V::load(s), r1 = V::load(s + 4), r2 = V::load(s + 8), r3 = V::load(s + 12);
  simd::transpose4(r0, r1, r2, r3);
  fwd_lift_v(r0, r1, r2, r3);  // x-pass: four rows in parallel
  simd::transpose4(r0, r1, r2, r3);
  fwd_lift_v(r0, r1, r2, r3);  // y-pass: four columns in parallel
  r0.store(s); r1.store(s + 4); r2.store(s + 8); r3.store(s + 12);
}

template <typename V, typename Int>
inline void inv_slice(Int* s) {
  V r0 = V::load(s), r1 = V::load(s + 4), r2 = V::load(s + 8), r3 = V::load(s + 12);
  inv_lift_v(r0, r1, r2, r3);  // y-pass first (inverse order)
  simd::transpose4(r0, r1, r2, r3);
  inv_lift_v(r0, r1, r2, r3);  // x-pass
  simd::transpose4(r0, r1, r2, r3);
  r0.store(s); r1.store(s + 4); r2.store(s + 8); r3.store(s + 12);
}

/// The 3D z-pass: for each y-row, the four vectors at stride 16 hold the
/// pillar samples with x in the lanes.
template <typename V, typename Int>
inline void fwd_z_pass(Int* block) {
  for (unsigned y = 0; y < 4; ++y) {
    Int* p = block + 4 * y;
    V w0 = V::load(p), w1 = V::load(p + 16), w2 = V::load(p + 32), w3 = V::load(p + 48);
    fwd_lift_v(w0, w1, w2, w3);
    w0.store(p); w1.store(p + 16); w2.store(p + 32); w3.store(p + 48);
  }
}

template <typename V, typename Int>
inline void inv_z_pass(Int* block) {
  for (unsigned y = 0; y < 4; ++y) {
    Int* p = block + 4 * y;
    V w0 = V::load(p), w1 = V::load(p + 16), w2 = V::load(p + 32), w3 = V::load(p + 48);
    inv_lift_v(w0, w1, w2, w3);
    w0.store(p); w1.store(p + 16); w2.store(p + 32); w3.store(p + 48);
  }
}

template <typename V, typename Int>
void fwd_transform_impl(Int* block, unsigned dims) {
  if (dims == 2) {
    fwd_slice<V>(block);
  } else {  // 3
    // Slice-local x+y passes commute across slices, so fusing them per
    // slice reorders only independent lifts relative to the scalar code.
    for (unsigned z = 0; z < 4; ++z) fwd_slice<V>(block + 16 * z);
    fwd_z_pass<V>(block);
  }
}

template <typename V, typename Int>
void inv_transform_impl(Int* block, unsigned dims) {
  if (dims == 2) {
    inv_slice<V>(block);
  } else {  // 3
    inv_z_pass<V>(block);
    for (unsigned z = 0; z < 4; ++z) inv_slice<V>(block + 16 * z);
  }
}

}  // namespace

#endif  // vector widths available

#if !defined(FRAZ_SIMD_SCALAR)
void fwd_transform_vec(std::int32_t* block, unsigned dims) {
  fwd_transform_impl<simd::V4i32>(block, dims);
}
void inv_transform_vec(std::int32_t* block, unsigned dims) {
  inv_transform_impl<simd::V4i32>(block, dims);
}
#else
void fwd_transform_vec(std::int32_t* block, unsigned dims) {
  zfp_detail::fwd_transform(block, dims);
}
void inv_transform_vec(std::int32_t* block, unsigned dims) {
  zfp_detail::inv_transform(block, dims);
}
#endif

#if defined(FRAZ_SIMD_HAS_WIDE64)
void fwd_transform_vec(std::int64_t* block, unsigned dims) {
  fwd_transform_impl<simd::V4i64>(block, dims);
}
void inv_transform_vec(std::int64_t* block, unsigned dims) {
  inv_transform_impl<simd::V4i64>(block, dims);
}
#else
void fwd_transform_vec(std::int64_t* block, unsigned dims) {
  zfp_detail::fwd_transform(block, dims);
}
void inv_transform_vec(std::int64_t* block, unsigned dims) {
  zfp_detail::inv_transform(block, dims);
}
#endif

}  // namespace zfpk
}  // namespace fraz
