#include "compressors/zfp/zfp.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <functional>
#include <limits>

#include "codec/bitstream.hpp"
#include "codec/varint.hpp"
#include "compressors/container.hpp"
#include "compressors/zfp/transform.hpp"
#include "compressors/zfp/transform_kernels.hpp"
#include "util/error.hpp"

namespace fraz {

namespace {

using zfp_detail::int2uint;
using zfp_detail::sequency_order;
using zfp_detail::uint2int;

/// Per-scalar-type constants of the fixed-point representation.
template <typename Scalar>
struct Traits;

template <>
struct Traits<float> {
  using Int = std::int32_t;
  using UInt = std::uint32_t;
  static constexpr unsigned kIntPrec = 32;
  static constexpr int kExpBias = 150;    // emax in [-149, 128] for normal/subnormal f32
  static constexpr unsigned kExpBits = 9;
};

template <>
struct Traits<double> {
  using Int = std::int64_t;
  using UInt = std::uint64_t;
  static constexpr unsigned kIntPrec = 64;
  static constexpr int kExpBias = 1075;   // emax in [-1074, 1024]
  static constexpr unsigned kExpBits = 12;
};

/// Exponent e with |x| in [2^(e-1), 2^e); 0 for x == 0.
int exponent_of(double x) noexcept {
  int e = 0;
  std::frexp(x, &e);
  return e;
}

/// emin = floor(log2(tolerance)): the bit plane below which ZFP's accuracy
/// mode discards everything.  frexp gives tol = m * 2^e with m in [0.5, 1),
/// so floor(log2(tol)) = e - 1 (exact also for powers of two).
int accuracy_emin(double tolerance) noexcept { return exponent_of(tolerance) - 1; }

/// ZFP's per-block precision: how many top bit planes survive under the
/// accuracy policy.  The 2*(dims+1) term is the guard that accounts for
/// transform gain and alignment roundoff.
unsigned block_precision(int emax, int emin, unsigned dims, unsigned intprec) noexcept {
  const long p = static_cast<long>(emax) - emin + 2 * (static_cast<long>(dims) + 1);
  return static_cast<unsigned>(std::clamp(p, 0l, static_cast<long>(intprec)));
}

/// Embedded coding of `n` negabinary coefficients (already in sequency
/// order), most significant bit plane first, with group testing: the state
/// `n_sig` counts coefficients discovered significant so far; their plane
/// bits are coded verbatim, and the insignificant tail is coded with a unary
/// run-length scheme.  Mirrors zfp's encode_ints/decode_ints.
template <typename UInt>
void encode_planes(BitWriter& writer, const UInt* coeffs, unsigned n, unsigned maxprec,
                   std::int64_t budget) {
  const unsigned intprec = sizeof(UInt) * 8;
  const unsigned kmin = intprec > maxprec ? intprec - maxprec : 0;
  unsigned n_sig = 0;
  for (unsigned k = intprec; budget > 0 && k-- > kmin;) {
    // Gather bit plane k (n <= 64, so it fits one word).
    std::uint64_t plane = 0;
    for (unsigned i = 0; i < n; ++i)
      plane |= static_cast<std::uint64_t>((coeffs[i] >> k) & 1u) << i;
    // Verbatim bits for already-significant coefficients.
    unsigned m = std::min<std::int64_t>(n_sig, budget);
    budget -= m;
    writer.write_bits(plane, m);
    // m can reach 64 (every coefficient significant): a full-width shift is
    // undefined, and the intended result is an empty plane.
    plane = m >= 64 ? 0 : plane >> m;
    // Group-tested remainder.
    while (n_sig < n && budget > 0) {
      --budget;
      const unsigned any = plane != 0 ? 1u : 0u;
      writer.write_bit(any);
      if (!any) break;
      // Scan for the next significant coefficient; its terminating 1 at
      // position n-1 is implicit.
      while (n_sig < n - 1 && budget > 0) {
        --budget;
        const unsigned bit = static_cast<unsigned>(plane & 1u);
        writer.write_bit(bit);
        plane >>= 1;
        ++n_sig;
        if (bit) goto next_group;
      }
      // Either only the last coefficient remains (its bit is implicit) or the
      // budget ran out mid-scan; both consume the coefficient.
      plane >>= 1;
      ++n_sig;
    next_group:;
    }
  }
}

/// Exact mirror of encode_planes.
template <typename UInt>
void decode_planes(BitReader& reader, UInt* coeffs, unsigned n, unsigned maxprec,
                   std::int64_t budget) {
  const unsigned intprec = sizeof(UInt) * 8;
  const unsigned kmin = intprec > maxprec ? intprec - maxprec : 0;
  std::fill(coeffs, coeffs + n, UInt{0});
  unsigned n_sig = 0;
  for (unsigned k = intprec; budget > 0 && k-- > kmin;) {
    unsigned m = std::min<std::int64_t>(n_sig, budget);
    budget -= m;
    std::uint64_t plane = reader.read_bits(m);
    unsigned pos = n_sig;  // next position to be classified
    while (pos < n && budget > 0) {
      --budget;
      if (!reader.read_bit()) break;
      while (pos < n - 1 && budget > 0) {
        --budget;
        if (reader.read_bit()) {
          plane |= std::uint64_t{1} << pos;
          ++pos;
          goto next_group;
        }
        ++pos;
      }
      plane |= std::uint64_t{1} << pos;
      ++pos;
    next_group:;
    }
    n_sig = std::max(n_sig, pos);
    for (unsigned i = 0; i < n && plane; ++i, plane >>= 1)
      coeffs[i] |= static_cast<UInt>(plane & 1u) << k;
  }
}

/// Copy a (possibly partial) block from the array, padding out-of-range
/// positions by clamping to the last valid sample along each axis.
template <typename Scalar>
void gather_block(const Scalar* data, const Shape& shape, const std::size_t* base,
                  unsigned dims, Scalar* block) {
  std::size_t extent[3] = {1, 1, 1};
  for (unsigned d = 0; d < dims; ++d) extent[d] = shape[d];
  // strides for row-major (slowest dim first)
  std::size_t stride[3] = {0, 0, 0};
  stride[dims - 1] = 1;
  for (int d = static_cast<int>(dims) - 2; d >= 0; --d)
    stride[d] = stride[d + 1] * extent[d + 1];

  const unsigned n1 = dims >= 1 ? 4 : 1;
  const unsigned n2 = dims >= 2 ? 4 : 1;
  const unsigned n3 = dims >= 3 ? 4 : 1;
  // local index (a,b,c) maps to block offset c*16 + b*4 + a for 3D where
  // a is the fastest (last) dimension -- consistent with fwd_transform.
  for (unsigned c = 0; c < n3; ++c)
    for (unsigned b = 0; b < n2; ++b)
      for (unsigned a = 0; a < n1; ++a) {
        std::size_t idx = 0;
        const unsigned local[3] = {a, b, c};
        for (unsigned d = 0; d < dims; ++d) {
          // local[0] is the fastest-moving axis = last shape dimension.
          const unsigned axis = dims - 1 - d;
          const std::size_t coord = std::min(base[axis] + local[d], extent[axis] - 1);
          idx += coord * stride[axis];
        }
        block[c * 16 + b * 4 + a] = data[idx];
      }
}

/// Write back the valid region of a block.
template <typename Scalar>
void scatter_block(Scalar* data, const Shape& shape, const std::size_t* base, unsigned dims,
                   const Scalar* block) {
  std::size_t extent[3] = {1, 1, 1};
  for (unsigned d = 0; d < dims; ++d) extent[d] = shape[d];
  std::size_t stride[3] = {0, 0, 0};
  stride[dims - 1] = 1;
  for (int d = static_cast<int>(dims) - 2; d >= 0; --d)
    stride[d] = stride[d + 1] * extent[d + 1];

  const unsigned n1 = dims >= 1 ? 4 : 1;
  const unsigned n2 = dims >= 2 ? 4 : 1;
  const unsigned n3 = dims >= 3 ? 4 : 1;
  for (unsigned c = 0; c < n3; ++c)
    for (unsigned b = 0; b < n2; ++b)
      for (unsigned a = 0; a < n1; ++a) {
        std::size_t idx = 0;
        bool valid = true;
        const unsigned local[3] = {a, b, c};
        for (unsigned d = 0; d < dims; ++d) {
          const unsigned axis = dims - 1 - d;
          const std::size_t coord = base[axis] + local[d];
          if (coord >= extent[axis]) {
            valid = false;
            break;
          }
          idx += coord * stride[axis];
        }
        if (valid) data[idx] = block[c * 16 + b * 4 + a];
      }
}

/// Iterate the block grid in row-major order, invoking fn(base).
void for_each_block(const Shape& shape, unsigned dims,
                    const std::function<void(const std::size_t*)>& fn) {
  std::size_t blocks[3] = {1, 1, 1};
  for (unsigned d = 0; d < dims; ++d) blocks[d] = (shape[d] + 3) / 4;
  std::size_t base[3];
  for (std::size_t b0 = 0; b0 < blocks[0]; ++b0)
    for (std::size_t b1 = 0; b1 < blocks[1]; ++b1)
      for (std::size_t b2 = 0; b2 < blocks[2]; ++b2) {
        base[0] = b0 * 4;
        base[1] = b1 * 4;
        base[2] = b2 * 4;
        fn(base);
      }
}

/// Per-block bit budget for the chosen mode.  Accuracy mode is effectively
/// unbounded; rate mode fixes the budget exactly.
std::int64_t block_budget(const ZfpOptions& opt, unsigned block_elems, unsigned intprec,
                          unsigned expbits) {
  if (opt.mode == ZfpMode::kFixedRate) {
    const auto bits = static_cast<std::int64_t>(std::llround(opt.rate * block_elems));
    // A block cannot be smaller than its zero/nonzero flag.
    return std::max<std::int64_t>(bits, 1);
  }
  return static_cast<std::int64_t>(block_elems) * intprec + expbits + 64;
}

template <typename Scalar>
void compress_impl(const ArrayView& input, const ZfpOptions& opt, Buffer& out) {
  using T = Traits<Scalar>;
  using Int = typename T::Int;
  using UInt = typename T::UInt;

  const unsigned dims = static_cast<unsigned>(input.dims());
  const unsigned block_elems = 1u << (2 * dims);
  const std::uint8_t* order = sequency_order(dims);
  const Scalar* data = input.typed<Scalar>();
  const int emin = accuracy_emin(opt.tolerance);
  const std::int64_t budget = block_budget(opt, block_elems, T::kIntPrec, T::kExpBits);

  BitWriter writer;
  for_each_block(input.shape(), dims, [&](const std::size_t* base) {
    Scalar block[64];
    gather_block(data, input.shape(), base, dims, block);

    double maxabs = 0;
    for (unsigned i = 0; i < block_elems; ++i)
      maxabs = std::max(maxabs, std::abs(static_cast<double>(block[i])));
    const int emax = exponent_of(maxabs);
    const unsigned maxprec = opt.mode == ZfpMode::kAccuracy
                                 ? block_precision(emax, emin, dims, T::kIntPrec)
                                 : T::kIntPrec;

    const std::size_t block_start = writer.bit_count();
    std::int64_t bits = budget;
    if (maxabs == 0 || maxprec == 0) {
      writer.write_bit(0);  // empty block
    } else {
      writer.write_bit(1);
      writer.write_bits(static_cast<std::uint64_t>(emax + T::kExpBias), T::kExpBits);
      bits -= 1 + T::kExpBits;
      if (bits > 0) {
        // Block-floating-point alignment + decorrelating transform.
        Int iblock[64];
        for (unsigned i = 0; i < block_elems; ++i)
          iblock[i] = static_cast<Int>(
              std::ldexp(static_cast<double>(block[i]),
                         static_cast<int>(T::kIntPrec) - 2 - emax));
        zfpk::fwd_transform_any(iblock, dims);
        UInt ublock[64];
        for (unsigned i = 0; i < block_elems; ++i)
          ublock[i] = int2uint<Int, UInt>(iblock[order[i]]);
        encode_planes(writer, ublock, block_elems, maxprec, bits);
      }
    }
    if (opt.mode == ZfpMode::kFixedRate) {
      // Pad so every block consumes exactly `budget` bits (random access).
      while (writer.bit_count() <
             block_start + static_cast<std::size_t>(budget))
        writer.write_bit(0);
    }
  });

  std::vector<std::uint8_t> payload;
  payload.push_back(static_cast<std::uint8_t>(opt.mode));
  const double param = opt.mode == ZfpMode::kAccuracy ? opt.tolerance : opt.rate;
  std::uint64_t param_bits;
  std::memcpy(&param_bits, &param, 8);
  for (int b = 0; b < 8; ++b) payload.push_back(static_cast<std::uint8_t>(param_bits >> (8 * b)));
  const std::vector<std::uint8_t> stream = writer.take();
  payload.insert(payload.end(), stream.begin(), stream.end());

  seal_container_into(CompressorId::kZfp, input.dtype(), input.shape(), payload, out);
}

template <typename Scalar>
void decompress_impl(const Container& c, const ZfpOptions& opt, NdArray& out) {
  using T = Traits<Scalar>;
  using Int = typename T::Int;
  using UInt = typename T::UInt;

  const unsigned dims = static_cast<unsigned>(c.shape.size());
  const unsigned block_elems = 1u << (2 * dims);
  const std::uint8_t* order = sequency_order(dims);
  Scalar* data = out.typed<Scalar>();
  const int emin = accuracy_emin(opt.tolerance);
  const std::int64_t budget = block_budget(opt, block_elems, T::kIntPrec, T::kExpBits);

  BitReader reader(c.payload + 9, c.payload_size - 9);
  for_each_block(c.shape, dims, [&](const std::size_t* base) {
    const std::size_t block_start = reader.bit_position();
    Scalar block[64] = {};
    std::int64_t bits = budget;
    if (reader.read_bit()) {
      const int emax = static_cast<int>(reader.read_bits(T::kExpBits)) - T::kExpBias;
      bits -= 1 + T::kExpBits;
      const unsigned maxprec = opt.mode == ZfpMode::kAccuracy
                                   ? block_precision(emax, emin, dims, T::kIntPrec)
                                   : T::kIntPrec;
      if (bits > 0) {
        UInt ublock[64];
        decode_planes(reader, ublock, block_elems, maxprec, bits);
        Int iblock[64];
        for (unsigned i = 0; i < block_elems; ++i)
          iblock[order[i]] = uint2int<Int, UInt>(ublock[i]);
        zfpk::inv_transform_any(iblock, dims);
        for (unsigned i = 0; i < block_elems; ++i)
          block[i] = static_cast<Scalar>(
              std::ldexp(static_cast<double>(iblock[i]),
                         emax + 2 - static_cast<int>(T::kIntPrec)));
      }
    }
    if (opt.mode == ZfpMode::kFixedRate) {
      // Skip the block's padding to the fixed boundary.
      const std::size_t target = block_start + static_cast<std::size_t>(budget);
      while (reader.bit_position() < target) reader.read_bit();
    }
    scatter_block(data, c.shape, base, dims, block);
  });
}

ZfpOptions options_from_payload(const Container& c) {
  if (c.payload_size < 9) throw CorruptStream("zfp: payload too small");
  ZfpOptions opt;
  const std::uint8_t mode_tag = c.payload[0];
  if (mode_tag > 1) throw CorruptStream("zfp: bad mode tag");
  opt.mode = static_cast<ZfpMode>(mode_tag);
  std::uint64_t param_bits = 0;
  for (int b = 0; b < 8; ++b) param_bits |= static_cast<std::uint64_t>(c.payload[1 + b]) << (8 * b);
  double param;
  std::memcpy(&param, &param_bits, 8);
  if (!(param > 0) || !std::isfinite(param)) throw CorruptStream("zfp: bad mode parameter");
  (opt.mode == ZfpMode::kAccuracy ? opt.tolerance : opt.rate) = param;
  return opt;
}

void validate(const ArrayView& input, const ZfpOptions& opt) {
  require(input.dims() >= 1 && input.dims() <= 3, "zfp: supports 1D/2D/3D data");
  require(input.elements() > 0, "zfp: empty input");
  if (opt.mode == ZfpMode::kAccuracy)
    require(opt.tolerance > 0 && std::isfinite(opt.tolerance),
            "zfp: tolerance must be positive and finite");
  else
    require(opt.rate > 0 && std::isfinite(opt.rate), "zfp: rate must be positive and finite");
}

}  // namespace

std::vector<std::uint8_t> zfp_compress(const ArrayView& input, const ZfpOptions& options) {
  Buffer out;
  zfp_compress_into(input, options, out);
  return out.to_vector();
}

void zfp_compress_into(const ArrayView& input, const ZfpOptions& options, Buffer& out) {
  validate(input, options);
  if (input.dtype() == DType::kFloat32)
    compress_impl<float>(input, options, out);
  else
    compress_impl<double>(input, options, out);
}

NdArray zfp_decompress(const std::uint8_t* data, std::size_t size) {
  const Container c = open_container(data, size, CompressorId::kZfp);
  require(c.shape.size() >= 1 && c.shape.size() <= 3, "zfp: container rank unsupported");
  const ZfpOptions opt = options_from_payload(c);
  NdArray out(c.dtype, c.shape);
  if (c.dtype == DType::kFloat32)
    decompress_impl<float>(c, opt, out);
  else
    decompress_impl<double>(c, opt, out);
  return out;
}

}  // namespace fraz
