#include "compressors/zfp/transform.hpp"

#include <algorithm>
#include <numeric>

namespace fraz::zfp_detail {

namespace {

/// Build the sequency order for a d-dimensional 4-block: sort linear offsets
/// by the sum of their coordinates, breaking ties by coordinates so the
/// permutation is deterministic.
template <std::size_t N>
std::array<std::uint8_t, N> build_order(unsigned dims) {
  std::array<std::uint8_t, N> order{};
  std::iota(order.begin(), order.end(), static_cast<std::uint8_t>(0));
  auto coords = [dims](std::uint8_t idx) {
    std::array<unsigned, 3> c{0, 0, 0};
    for (unsigned d = 0; d < dims; ++d) {
      c[d] = idx & 3u;
      idx >>= 2;
    }
    return c;
  };
  std::stable_sort(order.begin(), order.end(), [&](std::uint8_t a, std::uint8_t b) {
    const auto ca = coords(a), cb = coords(b);
    const unsigned sa = ca[0] + ca[1] + ca[2];
    const unsigned sb = cb[0] + cb[1] + cb[2];
    if (sa != sb) return sa < sb;
    return a < b;
  });
  return order;
}

}  // namespace

const std::array<std::uint8_t, 4>& sequency_order_1d() noexcept {
  static const auto order = build_order<4>(1);
  return order;
}

const std::array<std::uint8_t, 16>& sequency_order_2d() noexcept {
  static const auto order = build_order<16>(2);
  return order;
}

const std::array<std::uint8_t, 64>& sequency_order_3d() noexcept {
  static const auto order = build_order<64>(3);
  return order;
}

const std::uint8_t* sequency_order(unsigned dims) noexcept {
  switch (dims) {
    case 1:
      return sequency_order_1d().data();
    case 2:
      return sequency_order_2d().data();
    default:
      return sequency_order_3d().data();
  }
}

}  // namespace fraz::zfp_detail
