#include "pressio/options.hpp"

namespace fraz::pressio {

std::vector<std::string> Options::keys() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  for (const auto& [k, v] : values_) out.push_back(k);
  return out;
}

}  // namespace fraz::pressio
