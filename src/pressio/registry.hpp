#ifndef FRAZ_PRESSIO_REGISTRY_HPP
#define FRAZ_PRESSIO_REGISTRY_HPP

/// \file registry.hpp
/// Factory registry of compressor plugins, keyed by name.  The built-in
/// backends ("sz", "zfp", "mgard") are registered automatically; users can
/// register additional plugins, which FRaZ then tunes with no further code.

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "pressio/compressor.hpp"

namespace fraz::pressio {

/// Compressor plugin factory registry.
class Registry {
public:
  using Factory = std::function<CompressorPtr()>;

  /// Register a plugin; throws InvalidArgument on duplicate names.
  void register_factory(const std::string& name, Factory factory);

  /// Instantiate a fresh compressor; throws Unsupported for unknown names.
  CompressorPtr create(const std::string& name) const;

  /// Config-driven construction: instantiate and apply \p options in one
  /// step.  Throws Unsupported for unknown names and whatever set_options
  /// raises for invalid option values.
  CompressorPtr create(const std::string& name, const Options& options) const;

  /// Non-throwing construction for service paths: unknown names and invalid
  /// options come back as a Status instead of an exception.
  Result<CompressorPtr> try_create(const std::string& name,
                                   const Options& options = {}) const noexcept;

  /// True when \p name is registered.
  bool contains(const std::string& name) const;

  /// Registered names, sorted.
  std::vector<std::string> names() const;

private:
  std::map<std::string, Factory> factories_;
};

/// The process-wide registry, with built-in backends pre-registered.
Registry& registry();

}  // namespace fraz::pressio

#endif  // FRAZ_PRESSIO_REGISTRY_HPP
