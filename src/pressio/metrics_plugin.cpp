#include "pressio/metrics_plugin.hpp"

#include <limits>

#include "metrics/acf.hpp"
#include "metrics/error_stats.hpp"
#include "metrics/ssim.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

namespace fraz::pressio {

namespace {

class SizeMetrics final : public MetricsPlugin {
public:
  std::string name() const override { return "size"; }

  void end_compress(const ArrayView& input,
                    const std::vector<std::uint8_t>& archive) override {
    input_bytes_ = input.size_bytes();
    archive_bytes_ = archive.size();
    elements_ = input.elements();
  }

  Options results() const override {
    Options o;
    if (archive_bytes_ == 0) return o;
    o.set("size:uncompressed_bytes", static_cast<std::int64_t>(input_bytes_));
    o.set("size:compressed_bytes", static_cast<std::int64_t>(archive_bytes_));
    o.set("size:compression_ratio", compression_ratio(input_bytes_, archive_bytes_));
    o.set("size:bit_rate", bit_rate(elements_, archive_bytes_));
    return o;
  }

private:
  std::size_t input_bytes_ = 0;
  std::size_t archive_bytes_ = 0;
  std::size_t elements_ = 0;
};

class TimeMetrics final : public MetricsPlugin {
public:
  std::string name() const override { return "time"; }

  void begin_compress(const ArrayView&) override { timer_.reset(); }

  void end_compress(const ArrayView&, const std::vector<std::uint8_t>&) override {
    compress_seconds_ = timer_.seconds();
    timer_.reset();
  }

  void end_decompress(const ArrayView&, const NdArray&) override {
    decompress_seconds_ = timer_.seconds();
  }

  Options results() const override {
    Options o;
    o.set("time:compress_seconds", compress_seconds_);
    if (decompress_seconds_ >= 0) o.set("time:decompress_seconds", decompress_seconds_);
    return o;
  }

private:
  Timer timer_;
  double compress_seconds_ = 0;
  double decompress_seconds_ = -1;
};

class ErrorMetrics final : public MetricsPlugin {
public:
  std::string name() const override { return "error"; }

  void end_decompress(const ArrayView& input, const NdArray& reconstruction) override {
    const ErrorStats stats = error_stats(input, reconstruction.view());
    Options o;
    o.set("error:max_abs", stats.max_abs_error);
    o.set("error:rmse", stats.rmse);
    o.set("error:mse", stats.mse);
    o.set("error:psnr_db", stats.psnr_db);
    o.set("error:value_range", stats.value_range);
    o.set("error:acf_lag1", error_acf(input, reconstruction.view()));
    if (input.dims() >= 2) o.set("error:ssim", ssim(input, reconstruction.view()));
    results_ = std::move(o);
  }

  Options results() const override { return results_; }

private:
  Options results_;
};

}  // namespace

MetricsPluginPtr make_size_metrics() { return std::make_unique<SizeMetrics>(); }
MetricsPluginPtr make_time_metrics() { return std::make_unique<TimeMetrics>(); }
MetricsPluginPtr make_error_metrics() { return std::make_unique<ErrorMetrics>(); }

MetricsPluginPtr make_metrics(const std::string& name) {
  if (name == "size") return make_size_metrics();
  if (name == "time") return make_time_metrics();
  if (name == "error") return make_error_metrics();
  throw Unsupported("make_metrics: unknown metrics plugin '" + name + "'");
}

Options run_with_metrics(const Compressor& compressor, const ArrayView& input,
                         const std::vector<MetricsPlugin*>& plugins) {
  for (MetricsPlugin* p : plugins) p->begin_compress(input);
  const auto archive = compressor.compress(input);
  for (MetricsPlugin* p : plugins) p->end_compress(input, archive);
  const NdArray reconstruction = compressor.decompress(archive.data(), archive.size());
  for (MetricsPlugin* p : plugins) p->end_decompress(input, reconstruction);

  Options merged;
  for (const MetricsPlugin* p : plugins)
    for (const auto& [key, value] : p->results()) merged.set(key, value);
  return merged;
}

}  // namespace fraz::pressio
