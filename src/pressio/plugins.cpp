#include <algorithm>
#include <cmath>
#include <memory>

#include "compressors/fpc/fpc.hpp"
#include "compressors/mgard/mgard.hpp"
#include "compressors/sz/sz.hpp"
#include "compressors/szx/szx.hpp"
#include "compressors/truncate/truncate.hpp"
#include "compressors/zfp/zfp.hpp"
#include "pressio/registry.hpp"
#include "util/error.hpp"

/// \file plugins.cpp
/// Built-in compressor plugins bridging the three from-scratch codecs to the
/// uniform pressio interface, plus the process-wide registry.

namespace fraz::pressio {

namespace {

/// Shared implementation of the non-throwing V2 entry points: every built-in
/// backend funnels its (validating, throwing) codec through these bridges.
template <typename Fn>
Status guarded(Fn&& fn) noexcept {
  try {
    fn();
    return Status();
  } catch (...) {
    return status_from_current_exception();
  }
}

// ---------------------------------------------------------------- SZ plugin
class SzPlugin final : public Compressor {
public:
  std::string name() const override { return "sz"; }

  Capabilities capabilities() const override {
    Capabilities c;
    c.name = "sz";
    c.min_dims = 1;
    c.max_dims = 3;
    c.blocked_mode = true;
    return c;
  }

  Options get_options() const override {
    return Options{
        {"sz:error_bound", opt_.error_bound},
        {"sz:regression", opt_.regression},
        {"sz:mode", std::string(opt_.mode == SzMode::kBlocked ? "blocked" : "serial")},
        {"sz:threads", static_cast<std::int64_t>(opt_.threads)}};
  }

  void set_options(const Options& options) override {
    if (options.contains("sz:error_bound")) {
      const double e = options.get<double>("sz:error_bound");
      require(e > 0, "sz:error_bound must be positive");
      opt_.error_bound = e;
    }
    if (options.contains("sz:regression"))
      opt_.regression = options.get<bool>("sz:regression");
    if (options.contains("sz:mode")) {
      const auto mode = options.get<std::string>("sz:mode");
      if (mode == "serial")
        opt_.mode = SzMode::kSerial;
      else if (mode == "blocked")
        opt_.mode = SzMode::kBlocked;
      else
        throw InvalidArgument("sz:mode must be 'serial' or 'blocked'");
    }
    if (options.contains("sz:threads")) {
      const auto threads = options.get<std::int64_t>("sz:threads");
      require(threads >= 0 && threads <= 1024, "sz:threads must be in [0, 1024]");
      opt_.threads = static_cast<unsigned>(threads);
    }
  }

  void set_error_bound(double bound) override {
    require(bound > 0, "sz: error bound must be positive");
    opt_.error_bound = bound;
  }
  double error_bound() const override { return opt_.error_bound; }

  Status compress_into(const ArrayView& input, Buffer& out) const noexcept override {
    return guarded([&] { sz_compress_into(input, opt_, out); });
  }

  Status decompress_into(const std::uint8_t* data, std::size_t size,
                         NdArray& out) const noexcept override {
    // sz:threads caps intra-chunk parallelism for v2 (blocked) frames; v1
    // frames ignore it.  Either configured mode decodes both formats.
    return guarded([&] { out = sz_decompress(data, size, opt_.threads); });
  }

  CompressorPtr clone() const override { return std::make_unique<SzPlugin>(*this); }

private:
  SzOptions opt_;
};

// --------------------------------------------------------------- ZFP plugin
class ZfpPlugin final : public Compressor {
public:
  std::string name() const override { return "zfp"; }

  Capabilities capabilities() const override {
    Capabilities c;
    c.name = "zfp";
    c.min_dims = 1;
    c.max_dims = 3;
    // Fixed-rate mode bounds the *rate*, not the pointwise error; only the
    // accuracy mode (which FRaZ tunes) is error-bounded.
    c.error_bounded = opt_.mode == ZfpMode::kAccuracy;
    return c;
  }

  Options get_options() const override {
    return Options{
        {"zfp:mode", std::string(opt_.mode == ZfpMode::kAccuracy ? "accuracy" : "rate")},
        {"zfp:tolerance", opt_.tolerance},
        {"zfp:rate", opt_.rate}};
  }

  void set_options(const Options& options) override {
    if (options.contains("zfp:mode")) {
      const auto mode = options.get<std::string>("zfp:mode");
      if (mode == "accuracy")
        opt_.mode = ZfpMode::kAccuracy;
      else if (mode == "rate")
        opt_.mode = ZfpMode::kFixedRate;
      else
        throw InvalidArgument("zfp:mode must be 'accuracy' or 'rate'");
    }
    if (options.contains("zfp:tolerance")) {
      const double t = options.get<double>("zfp:tolerance");
      require(t > 0, "zfp:tolerance must be positive");
      opt_.tolerance = t;
    }
    if (options.contains("zfp:rate")) {
      const double r = options.get<double>("zfp:rate");
      require(r > 0, "zfp:rate must be positive");
      opt_.rate = r;
    }
  }

  /// FRaZ tunes ZFP through its fixed-accuracy mode (the paper's approach:
  /// the built-in fixed-rate mode is the *baseline*, not the tuned target).
  void set_error_bound(double bound) override {
    require(bound > 0, "zfp: error bound must be positive");
    opt_.tolerance = bound;
  }
  double error_bound() const override { return opt_.tolerance; }

  Status compress_into(const ArrayView& input, Buffer& out) const noexcept override {
    return guarded([&] { zfp_compress_into(input, opt_, out); });
  }

  Status decompress_into(const std::uint8_t* data, std::size_t size,
                         NdArray& out) const noexcept override {
    return guarded([&] { out = zfp_decompress(data, size); });
  }

  CompressorPtr clone() const override { return std::make_unique<ZfpPlugin>(*this); }

private:
  ZfpOptions opt_;
};

// ------------------------------------------------------------- MGARD plugin
class MgardPlugin final : public Compressor {
public:
  std::string name() const override { return "mgard"; }

  Capabilities capabilities() const override {
    Capabilities c;
    c.name = "mgard";
    // The paper excludes MGARD from 1D (HACC/EXAALT) data.
    c.min_dims = 2;
    c.max_dims = 3;
    // The L2 mode targets mean squared error, not a pointwise bound.
    c.error_bounded = opt_.norm == MgardNorm::kInfinity;
    return c;
  }

  Options get_options() const override {
    return Options{
        {"mgard:norm", std::string(opt_.norm == MgardNorm::kInfinity ? "infinity" : "l2")},
        {"mgard:tolerance", opt_.tolerance}};
  }

  void set_options(const Options& options) override {
    if (options.contains("mgard:norm")) {
      const auto norm = options.get<std::string>("mgard:norm");
      if (norm == "infinity")
        opt_.norm = MgardNorm::kInfinity;
      else if (norm == "l2")
        opt_.norm = MgardNorm::kL2;
      else
        throw InvalidArgument("mgard:norm must be 'infinity' or 'l2'");
    }
    if (options.contains("mgard:tolerance")) {
      const double t = options.get<double>("mgard:tolerance");
      require(t > 0, "mgard:tolerance must be positive");
      opt_.tolerance = t;
    }
  }

  void set_error_bound(double bound) override {
    require(bound > 0, "mgard: error bound must be positive");
    opt_.tolerance = bound;
  }
  double error_bound() const override { return opt_.tolerance; }

  Status compress_into(const ArrayView& input, Buffer& out) const noexcept override {
    return guarded([&] { mgard_compress_into(input, opt_, out); });
  }

  Status decompress_into(const std::uint8_t* data, std::size_t size,
                         NdArray& out) const noexcept override {
    return guarded([&] { out = mgard_decompress(data, size); });
  }

  CompressorPtr clone() const override { return std::make_unique<MgardPlugin>(*this); }

private:
  MgardOptions opt_;
};

// ---------------------------------------------------------- truncate plugin
//
// The paper-intro strawman, wrapped as a tunable backend: the error bound is
// mapped to kept bits via the value magnitude (truncating m mantissa bits of
// v costs at most |v| * 2^-m), so the absolute bound is honoured —
// conservatively, with the blunt quality the paper's Fig. 1 criticism of
// non-error-bounded fixed-rate schemes predicts.
class TruncatePlugin final : public Compressor {
public:
  std::string name() const override { return "truncate"; }

  Capabilities capabilities() const override {
    Capabilities c;
    c.name = "truncate";
    c.min_dims = 1;
    c.max_dims = 3;
    // The bound->bits mapping is conservative, but with explicitly fixed
    // bits the coder offers no error control at all (the paper's strawman).
    c.error_bounded = fixed_bits_ == 0;
    return c;
  }

  Options get_options() const override {
    return Options{{"truncate:bits", static_cast<std::int64_t>(fixed_bits_)},
                   {"truncate:error_bound", bound_}};
  }

  void set_options(const Options& options) override {
    if (options.contains("truncate:bits")) {
      const auto bits = options.get<std::int64_t>("truncate:bits");
      require(bits >= 0 && bits <= 64, "truncate:bits must be in [0, 64] (0 = from bound)");
      fixed_bits_ = static_cast<unsigned>(bits);
    }
    if (options.contains("truncate:error_bound")) {
      const double e = options.get<double>("truncate:error_bound");
      require(e > 0, "truncate:error_bound must be positive");
      bound_ = e;
    }
  }

  void set_error_bound(double bound) override {
    require(bound > 0, "truncate: error bound must be positive");
    bound_ = bound;
    fixed_bits_ = 0;  // derive from the bound again
  }
  double error_bound() const override { return bound_; }

  Status compress_into(const ArrayView& input, Buffer& out) const noexcept override {
    return guarded([&] {
      TruncateOptions opt;
      opt.bits = fixed_bits_ != 0 ? fixed_bits_ : bits_for_bound(input);
      truncate_compress_into(input, opt, out);
    });
  }

  Status decompress_into(const std::uint8_t* data, std::size_t size,
                         NdArray& out) const noexcept override {
    return guarded([&] { out = truncate_decompress(data, size); });
  }

  CompressorPtr clone() const override { return std::make_unique<TruncatePlugin>(*this); }

private:
  /// Kept bits meeting the absolute bound: sign + exponent + m mantissa bits
  /// with maxabs * 2^-m <= bound.
  unsigned bits_for_bound(const ArrayView& input) const {
    const unsigned width = static_cast<unsigned>(dtype_size(input.dtype())) * 8;
    const unsigned ebits = input.dtype() == DType::kFloat32 ? 8 : 11;
    const double maxabs = max_abs(input);
    if (maxabs <= bound_) return 1 + ebits;  // exponent alone suffices
    const double m = std::ceil(std::log2(maxabs / bound_));
    const auto mantissa = static_cast<unsigned>(std::max(m, 0.0));
    return std::min(width, 1 + ebits + mantissa);
  }

  double bound_ = 1e-3;
  unsigned fixed_bits_ = 0;
};

// ----------------------------------------------------------- SZx plugin
//
// The ultra-fast tier: one blockwise streaming pass, no prediction or
// entropy stage (see szx.hpp).  Stateless per call, hence thread_safe.
class SzxPlugin final : public Compressor {
public:
  std::string name() const override { return "szx"; }

  Capabilities capabilities() const override {
    Capabilities c;
    c.name = "szx";
    c.min_dims = 1;
    c.max_dims = 8;  // block layout is rank-agnostic (flat 1D blocks)
    c.thread_safe = true;
    return c;
  }

  Options get_options() const override {
    return Options{{"szx:error_bound", opt_.error_bound}};
  }

  void set_options(const Options& options) override {
    if (options.contains("szx:error_bound")) {
      const double e = options.get<double>("szx:error_bound");
      require(e > 0, "szx:error_bound must be positive");
      opt_.error_bound = e;
    }
  }

  void set_error_bound(double bound) override {
    require(bound > 0, "szx: error bound must be positive");
    opt_.error_bound = bound;
  }
  double error_bound() const override { return opt_.error_bound; }

  Status compress_into(const ArrayView& input, Buffer& out) const noexcept override {
    return guarded([&] { szx_compress_into(input, opt_, out); });
  }

  Status decompress_into(const std::uint8_t* data, std::size_t size,
                         NdArray& out) const noexcept override {
    return guarded([&] { out = szx_decompress(data, size); });
  }

  CompressorPtr clone() const override { return std::make_unique<SzxPlugin>(*this); }

private:
  SzxOptions opt_;
};

// ----------------------------------------------------------- FPC plugin
//
// Lossless fast path for hard-to-compress floats.  Any error bound is
// trivially honoured (error_bounded stays true); the lossless flag tells the
// tuner the ratio curve is flat, so a search degenerates to one probe.
class FpcPlugin final : public Compressor {
public:
  std::string name() const override { return "fpc"; }

  Capabilities capabilities() const override {
    Capabilities c;
    c.name = "fpc";
    c.min_dims = 1;
    c.max_dims = 8;  // predictor stream is rank-agnostic
    c.thread_safe = true;
    c.lossless = true;
    return c;
  }

  Options get_options() const override {
    return Options{{"fpc:table_bits", static_cast<std::int64_t>(opt_.table_bits)}};
  }

  void set_options(const Options& options) override {
    if (options.contains("fpc:table_bits")) {
      const auto bits = options.get<std::int64_t>("fpc:table_bits");
      require(bits >= 8 && bits <= 20, "fpc:table_bits must be in [8, 20]");
      opt_.table_bits = static_cast<unsigned>(bits);
    }
  }

  /// Accepted and ignored: reconstruction is exact, so every positive bound
  /// holds.  Rejecting non-positive bounds keeps the tuner contract uniform.
  void set_error_bound(double bound) override {
    require(bound > 0, "fpc: error bound must be positive");
    bound_ = bound;
  }
  double error_bound() const override { return bound_; }

  Status compress_into(const ArrayView& input, Buffer& out) const noexcept override {
    return guarded([&] { fpc_compress_into(input, opt_, out); });
  }

  Status decompress_into(const std::uint8_t* data, std::size_t size,
                         NdArray& out) const noexcept override {
    return guarded([&] { out = fpc_decompress(data, size); });
  }

  CompressorPtr clone() const override { return std::make_unique<FpcPlugin>(*this); }

private:
  FpcOptions opt_;
  double bound_ = 1e-3;
};

}  // namespace

void Registry::register_factory(const std::string& name, Factory factory) {
  require(!factories_.count(name), "Registry: duplicate compressor '" + name + "'");
  factories_[name] = std::move(factory);
}

CompressorPtr Registry::create(const std::string& name) const {
  auto it = factories_.find(name);
  if (it == factories_.end()) throw Unsupported("Registry: unknown compressor '" + name + "'");
  return it->second();
}

CompressorPtr Registry::create(const std::string& name, const Options& options) const {
  CompressorPtr c = create(name);
  c->set_options(options);
  return c;
}

Result<CompressorPtr> Registry::try_create(const std::string& name,
                                           const Options& options) const noexcept {
  try {
    return create(name, options);
  } catch (...) {
    return status_from_current_exception();
  }
}

bool Registry::contains(const std::string& name) const { return factories_.count(name) != 0; }

std::vector<std::string> Registry::names() const {
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [name, f] : factories_) out.push_back(name);
  return out;
}

Registry& registry() {
  static Registry r = [] {
    Registry reg;
    reg.register_factory("sz", [] { return std::make_unique<SzPlugin>(); });
    reg.register_factory("zfp", [] { return std::make_unique<ZfpPlugin>(); });
    reg.register_factory("mgard", [] { return std::make_unique<MgardPlugin>(); });
    reg.register_factory("truncate", [] { return std::make_unique<TruncatePlugin>(); });
    reg.register_factory("szx", [] { return std::make_unique<SzxPlugin>(); });
    reg.register_factory("fpc", [] { return std::make_unique<FpcPlugin>(); });
    return reg;
  }();
  return r;
}

}  // namespace fraz::pressio
