#ifndef FRAZ_PRESSIO_OPTIONS_HPP
#define FRAZ_PRESSIO_OPTIONS_HPP

/// \file options.hpp
/// String-keyed, variant-valued option maps — the libpressio-style
/// configuration currency.  Compressor plugins publish their tunables under
/// namespaced keys ("sz:error_bound", "zfp:mode", ...) and accept partial
/// updates, which is what lets FRaZ drive heterogeneous compressors through
/// one code path.

#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <type_traits>
#include <variant>
#include <vector>

#include "util/error.hpp"

namespace fraz::pressio {

/// The value types an option can carry.
using OptionValue = std::variant<bool, std::int64_t, double, std::string>;

namespace detail {
/// True when T is exactly one of the variant alternatives.
template <typename T>
inline constexpr bool is_option_alternative =
    std::is_same_v<T, bool> || std::is_same_v<T, std::int64_t> ||
    std::is_same_v<T, double> || std::is_same_v<T, std::string>;

/// True when reads of T may coerce across the numeric alternatives.  bool is
/// deliberately excluded: flags and numbers are different kinds of options.
template <typename T>
inline constexpr bool is_coercible_numeric =
    std::is_arithmetic_v<T> && !std::is_same_v<T, bool>;

/// True when the numeric value \p v fits T exactly enough to coerce: within
/// T's range, and integral-valued when T is an integer type.  Guards the
/// static_cast so narrowing never wraps and double->int never hits UB.
template <typename T, typename From>
bool fits(From v) noexcept {
  if constexpr (std::is_integral_v<T>) {
    if constexpr (std::is_floating_point_v<From>) {
      if (std::nearbyint(v) != v) return false;
      // [min, max+1) in double: both ends are powers of two (or zero), hence
      // exactly representable for every integer width — unlike max itself,
      // which rounds up for 64-bit types and would admit an overflow.
      return v >= static_cast<double>(std::numeric_limits<T>::min()) &&
             v < std::ldexp(1.0, std::numeric_limits<T>::digits);
    } else {
      if constexpr (std::is_signed_v<T>) {
        return v >= static_cast<From>(std::numeric_limits<T>::min()) &&
               v <= static_cast<From>(std::numeric_limits<T>::max());
      } else {
        return v >= 0 && static_cast<std::uint64_t>(v) <=
                             static_cast<std::uint64_t>(std::numeric_limits<T>::max());
      }
    }
  } else {
    if constexpr (std::is_same_v<T, float> && std::is_floating_point_v<From>) {
      // double -> float of a finite value beyond float's range is UB, not
      // infinity; non-finite values convert safely.
      return !std::isfinite(v) || (v >= -static_cast<From>(std::numeric_limits<T>::max()) &&
                                   v <= static_cast<From>(std::numeric_limits<T>::max()));
    }
    (void)v;
    return true;  // int64 -> float/double: may lose precision, never UB
  }
}
}  // namespace detail

/// Ordered option map with type-checked access.
class Options {
public:
  Options() = default;
  Options(std::initializer_list<std::pair<const std::string, OptionValue>> init)
      : values_(init) {}

  /// Insert or overwrite.
  void set(const std::string& key, OptionValue value) { values_[key] = std::move(value); }

  /// True when \p key exists.
  bool contains(const std::string& key) const { return values_.count(key) != 0; }

  /// Typed read; throws InvalidArgument on missing key or wrong type.
  ///
  /// Numeric reads coerce between the stored int64_t and double
  /// representations (and to narrower arithmetic types such as int), so
  /// `opts.get<int>("regions")` and `opts.get<double>("level")` both work
  /// regardless of which numeric alternative a caller stored.  A double is
  /// only coerced to an integer type when it holds an exact integer value.
  template <typename T>
  T get(const std::string& key) const {
    static_assert(detail::is_option_alternative<T> || detail::is_coercible_numeric<T>,
                  "Options::get: unsupported value type");
    auto it = values_.find(key);
    require(it != values_.end(), "Options: missing key '" + key + "'");
    if constexpr (detail::is_option_alternative<T>) {
      if (const T* v = std::get_if<T>(&it->second)) return *v;
    }
    if constexpr (detail::is_coercible_numeric<T>) {
      if (const auto* i = std::get_if<std::int64_t>(&it->second)) {
        require(detail::fits<T>(*i),
                "Options: key '" + key + "' is out of range for the requested type");
        return static_cast<T>(*i);
      }
      if (const auto* d = std::get_if<double>(&it->second)) {
        require(detail::fits<T>(*d),
                "Options: key '" + key + "' does not fit the requested type exactly");
        return static_cast<T>(*d);
      }
    }
    throw InvalidArgument("Options: wrong type for key '" + key + "'");
  }

  /// Typed read with fallback when the key is absent (still type-checked when
  /// present).
  template <typename T>
  T get_or(const std::string& key, T fallback) const {
    return contains(key) ? get<T>(key) : fallback;
  }

  std::size_t size() const noexcept { return values_.size(); }
  auto begin() const noexcept { return values_.begin(); }
  auto end() const noexcept { return values_.end(); }

  /// Keys in sorted order (diagnostics, docs).
  std::vector<std::string> keys() const;

private:
  std::map<std::string, OptionValue> values_;
};

}  // namespace fraz::pressio

#endif  // FRAZ_PRESSIO_OPTIONS_HPP
