#ifndef FRAZ_PRESSIO_OPTIONS_HPP
#define FRAZ_PRESSIO_OPTIONS_HPP

/// \file options.hpp
/// String-keyed, variant-valued option maps — the libpressio-style
/// configuration currency.  Compressor plugins publish their tunables under
/// namespaced keys ("sz:error_bound", "zfp:mode", ...) and accept partial
/// updates, which is what lets FRaZ drive heterogeneous compressors through
/// one code path.

#include <cstdint>
#include <map>
#include <string>
#include <variant>
#include <vector>

#include "util/error.hpp"

namespace fraz::pressio {

/// The value types an option can carry.
using OptionValue = std::variant<bool, std::int64_t, double, std::string>;

/// Ordered option map with type-checked access.
class Options {
public:
  Options() = default;
  Options(std::initializer_list<std::pair<const std::string, OptionValue>> init)
      : values_(init) {}

  /// Insert or overwrite.
  void set(const std::string& key, OptionValue value) { values_[key] = std::move(value); }

  /// True when \p key exists.
  bool contains(const std::string& key) const { return values_.count(key) != 0; }

  /// Typed read; throws InvalidArgument on missing key or wrong type.
  template <typename T>
  T get(const std::string& key) const {
    auto it = values_.find(key);
    require(it != values_.end(), "Options: missing key '" + key + "'");
    const T* v = std::get_if<T>(&it->second);
    require(v != nullptr, "Options: wrong type for key '" + key + "'");
    return *v;
  }

  /// Typed read with fallback when the key is absent (still type-checked when
  /// present).
  template <typename T>
  T get_or(const std::string& key, T fallback) const {
    return contains(key) ? get<T>(key) : fallback;
  }

  std::size_t size() const noexcept { return values_.size(); }
  auto begin() const noexcept { return values_.begin(); }
  auto end() const noexcept { return values_.end(); }

  /// Keys in sorted order (diagnostics, docs).
  std::vector<std::string> keys() const;

private:
  std::map<std::string, OptionValue> values_;
};

}  // namespace fraz::pressio

#endif  // FRAZ_PRESSIO_OPTIONS_HPP
