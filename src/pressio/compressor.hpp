#ifndef FRAZ_PRESSIO_COMPRESSOR_HPP
#define FRAZ_PRESSIO_COMPRESSOR_HPP

/// \file compressor.hpp
/// The abstract compressor interface FRaZ tunes against.  This is the
/// reproduction of libpressio's role in the paper: one uniform API hides the
/// differences between SZ, ZFP, and MGARD so a single tuner implementation
/// treats every backend as a black box mapping (data, error bound) to a
/// compressed buffer.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ndarray/ndarray.hpp"
#include "pressio/options.hpp"

namespace fraz::pressio {

class Compressor;
using CompressorPtr = std::unique_ptr<Compressor>;

/// Abstract error-bounded compressor.
///
/// Thread-safety contract: instances are NOT safe for concurrent use (the
/// paper notes the same about SZ/MGARD, whose C implementations use global
/// state).  The parallel orchestrator therefore gives each worker its own
/// clone() — the same discipline FRaZ applies by running each compression in
/// its own process/task.
class Compressor {
public:
  virtual ~Compressor() = default;

  /// Stable identifier ("sz", "zfp", "mgard").
  virtual std::string name() const = 0;

  /// Snapshot of all published options.
  virtual Options get_options() const = 0;

  /// Apply a partial update; unknown keys in \p options are ignored unless
  /// they are namespaced to this compressor, in which case they must be valid
  /// (InvalidArgument otherwise).
  virtual void set_options(const Options& options) = 0;

  /// The single scalar knob FRaZ searches over.  For SZ/ZFP this is the
  /// absolute error bound; for MGARD it is the tolerance of the configured
  /// norm.
  virtual void set_error_bound(double bound) = 0;
  virtual double error_bound() const = 0;

  /// Capability probe: can this backend compress rank-\p dims data?
  virtual bool supports_dims(std::size_t dims) const = 0;

  /// Compress; throws on unsupported input.
  virtual std::vector<std::uint8_t> compress(const ArrayView& input) const = 0;

  /// Decompress a buffer this backend produced.
  virtual NdArray decompress(const std::uint8_t* data, std::size_t size) const = 0;

  NdArray decompress(const std::vector<std::uint8_t>& data) const {
    return decompress(data.data(), data.size());
  }

  /// Deep copy with identical configuration (one per worker thread).
  virtual CompressorPtr clone() const = 0;
};

}  // namespace fraz::pressio

#endif  // FRAZ_PRESSIO_COMPRESSOR_HPP
