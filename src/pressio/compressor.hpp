#ifndef FRAZ_PRESSIO_COMPRESSOR_HPP
#define FRAZ_PRESSIO_COMPRESSOR_HPP

/// \file compressor.hpp
/// The abstract compressor interface FRaZ tunes against.  This is the
/// reproduction of libpressio's role in the paper: one uniform API hides the
/// differences between SZ, ZFP, and MGARD so a single tuner implementation
/// treats every backend as a black box mapping (data, error bound) to a
/// compressed buffer.
///
/// CompressorV2 contract (this revision):
///  - the hot paths are **non-throwing**: `compress_into` / `decompress_into`
///    report failure as a Status value, so the tuner's inner search loop —
///    dozens of compress calls per tune — never pays for stack unwinding and
///    can treat failure as data;
///  - output is **zero-copy**: `compress_into` writes into a caller-owned,
///    grow-only Buffer whose capacity survives reuse, so the steady state of
///    repeated probing performs no per-call heap allocation for the archive;
///  - backends publish **capabilities()** so orchestration code (Engine,
///    CLI, deployment probes) can introspect dtype/rank support, thread
///    safety, and determinism without trial-and-error;
///  - the original throwing, vector-returning methods remain as thin
///    wrappers over the V2 entry points for existing callers.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ndarray/ndarray.hpp"
#include "pressio/options.hpp"
#include "util/buffer.hpp"
#include "util/status.hpp"

namespace fraz::pressio {

class Compressor;
using CompressorPtr = std::unique_ptr<Compressor>;

/// Static description of what a backend can do.  Returned by value from
/// capabilities(); cheap enough for setup-time introspection (not intended
/// for per-element hot loops).
struct Capabilities {
  /// Stable identifier, same as Compressor::name().
  std::string name;
  /// Implementation version of the backend ("1.0" for the built-ins).
  std::string version = "1.0";
  /// Supported array ranks, inclusive.
  std::size_t min_dims = 1;
  std::size_t max_dims = 3;
  /// Supported element types.
  bool supports_f32 = true;
  bool supports_f64 = true;
  /// True when one instance may be used from several threads concurrently.
  /// The built-ins are all false: FRaZ's orchestrator clones per worker, the
  /// same discipline the paper applies to SZ/MGARD's global state.
  bool thread_safe = false;
  /// True when identical (input, options) always produce identical bytes.
  bool deterministic = true;
  /// True when the backend honours set_error_bound as a pointwise absolute
  /// error guarantee (the property FRaZ's search relies on).
  bool error_bounded = true;
  /// True when decompression reproduces the input bit-exactly regardless of
  /// the bound (fpc).  Lossless backends have a flat ratio curve, so the
  /// tuner reports their fixed ratio instead of searching.
  bool lossless = false;
  /// True when the backend offers a blocked execution mode (block-local
  /// prediction state, per-group entropy streams) whose encode/decode can
  /// run intra-chunk parallel with thread-count-invariant bytes (sz's
  /// "<name>:mode=blocked" option).
  bool blocked_mode = false;

  /// Convenience probe: can the backend compress rank-\p dims data of \p t?
  bool supports(DType t, std::size_t dims) const noexcept {
    const bool dtype_ok = t == DType::kFloat32 ? supports_f32 : supports_f64;
    return dtype_ok && dims >= min_dims && dims <= max_dims;
  }
};

/// Abstract error-bounded compressor.
///
/// Thread-safety contract: unless capabilities().thread_safe says otherwise,
/// instances are NOT safe for concurrent use (the paper notes the same about
/// SZ/MGARD, whose C implementations use global state).  The parallel
/// orchestrator therefore gives each worker its own clone() — the same
/// discipline FRaZ applies by running each compression in its own
/// process/task.
class Compressor {
public:
  virtual ~Compressor() = default;

  /// Stable identifier ("sz", "zfp", "mgard").
  virtual std::string name() const = 0;

  /// Introspectable description of supported dtypes/ranks and behaviour.
  virtual Capabilities capabilities() const = 0;

  /// Snapshot of all published options.
  virtual Options get_options() const = 0;

  /// Apply a partial update; unknown keys in \p options are ignored unless
  /// they are namespaced to this compressor, in which case they must be valid
  /// (InvalidArgument otherwise).
  virtual void set_options(const Options& options) = 0;

  /// The single scalar knob FRaZ searches over.  For SZ/ZFP this is the
  /// absolute error bound; for MGARD it is the tolerance of the configured
  /// norm.
  virtual void set_error_bound(double bound) = 0;
  virtual double error_bound() const = 0;

  /// Capability probe: can this backend compress rank-\p dims data?
  bool supports_dims(std::size_t dims) const {
    const Capabilities c = capabilities();
    return dims >= c.min_dims && dims <= c.max_dims;
  }

  /// V2 hot path: compress \p input into the caller-owned \p out.  \p out is
  /// cleared first; its capacity is retained across calls (grow-only), so
  /// repeated probing against the same field reaches a zero-allocation
  /// steady state.  Never throws — failures come back as a non-ok Status.
  virtual Status compress_into(const ArrayView& input, Buffer& out) const noexcept = 0;

  /// V2 hot path: decompress a buffer this backend produced into \p out
  /// (replaced wholesale).  Never throws.
  virtual Status decompress_into(const std::uint8_t* data, std::size_t size,
                                 NdArray& out) const noexcept = 0;

  /// Legacy wrapper over compress_into; allocates and throws on failure.
  std::vector<std::uint8_t> compress(const ArrayView& input) const {
    Buffer out;
    const Status s = compress_into(input, out);
    if (!s.ok()) throw_status(s);
    return out.to_vector();
  }

  /// Legacy wrapper over decompress_into; throws on failure.
  NdArray decompress(const std::uint8_t* data, std::size_t size) const {
    NdArray out;
    const Status s = decompress_into(data, size, out);
    if (!s.ok()) throw_status(s);
    return out;
  }

  NdArray decompress(const std::vector<std::uint8_t>& data) const {
    return decompress(data.data(), data.size());
  }

  /// Deep copy with identical configuration (one per worker thread).
  virtual CompressorPtr clone() const = 0;
};

}  // namespace fraz::pressio

#endif  // FRAZ_PRESSIO_COMPRESSOR_HPP
