#ifndef FRAZ_PRESSIO_EVALUATE_HPP
#define FRAZ_PRESSIO_EVALUATE_HPP

/// \file evaluate.hpp
/// Measurement helpers layered on the compressor interface: the compression-
/// ratio probe FRaZ's loss function calls, and a full fidelity evaluation
/// (ratio + distortion metrics) used by the benches and examples.

#include "pressio/compressor.hpp"

namespace fraz::pressio {

/// Result of a compression-only probe.
struct RatioProbe {
  std::size_t input_bytes = 0;
  std::size_t compressed_bytes = 0;
  double ratio = 0;        ///< input/compressed
  double bit_rate = 0;     ///< bits per scalar
  double seconds = 0;      ///< wall time of the compress call
};

/// Compress once at the compressor's current settings and report the ratio.
RatioProbe probe_ratio(const Compressor& compressor, const ArrayView& input);

/// Hot-path variant for repeated probing (the tuner's inner loop): compress
/// into the caller's reusable \p scratch, so the steady state performs no
/// per-call output allocation.  Throws on compression failure.
RatioProbe probe_ratio(const Compressor& compressor, const ArrayView& input, Buffer& scratch);

/// Full quality evaluation (compress + decompress + metrics).
struct FidelityReport {
  RatioProbe probe;
  double psnr_db = 0;
  double rmse = 0;
  double max_abs_error = 0;
  double ssim = 0;        ///< NaN for 1D inputs (SSIM needs 2D structure)
  double acf_error = 0;   ///< lag-1 autocorrelation of the error field
  double seconds_decompress = 0;
};

/// Run the full pipeline and compute every paper metric.
FidelityReport evaluate_fidelity(const Compressor& compressor, const ArrayView& input);

}  // namespace fraz::pressio

#endif  // FRAZ_PRESSIO_EVALUATE_HPP
