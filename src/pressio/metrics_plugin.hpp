#ifndef FRAZ_PRESSIO_METRICS_PLUGIN_HPP
#define FRAZ_PRESSIO_METRICS_PLUGIN_HPP

/// \file metrics_plugin.hpp
/// Composable metrics plugins, mirroring libpressio's metrics architecture:
/// observers hook the compress/decompress lifecycle and publish their
/// measurements as namespaced options ("size:compression_ratio",
/// "time:compress_seconds", "error:psnr_db", ...).  FRaZ's ratio probe and
/// the benches consume the same machinery a downstream user would.

#include <memory>
#include <string>
#include <vector>

#include "ndarray/ndarray.hpp"
#include "pressio/compressor.hpp"
#include "pressio/options.hpp"

namespace fraz::pressio {

/// Lifecycle observer of one compress(+decompress) pass.
class MetricsPlugin {
public:
  virtual ~MetricsPlugin() = default;

  /// Stable identifier ("size", "time", "error").
  virtual std::string name() const = 0;

  /// Called immediately before compression of \p input.
  virtual void begin_compress(const ArrayView& input) { (void)input; }

  /// Called with the produced archive.
  virtual void end_compress(const ArrayView& input,
                            const std::vector<std::uint8_t>& archive) {
    (void)input;
    (void)archive;
  }

  /// Called after decompression (when the run includes one).
  virtual void end_decompress(const ArrayView& input, const NdArray& reconstruction) {
    (void)input;
    (void)reconstruction;
  }

  /// Measurements collected so far, keys namespaced by name().
  virtual Options results() const = 0;
};

using MetricsPluginPtr = std::unique_ptr<MetricsPlugin>;

/// Archive size and ratio ("size:*").
MetricsPluginPtr make_size_metrics();

/// Wall-clock timings ("time:*").
MetricsPluginPtr make_time_metrics();

/// Reconstruction error statistics incl. PSNR/SSIM/ACF ("error:*"); needs a
/// decompress phase, otherwise publishes nothing.
MetricsPluginPtr make_error_metrics();

/// Instantiate a built-in plugin by name; throws Unsupported otherwise.
MetricsPluginPtr make_metrics(const std::string& name);

/// Run one compress+decompress pass of \p compressor over \p input, feeding
/// every plugin in \p plugins, and merge their results into one option map.
Options run_with_metrics(const Compressor& compressor, const ArrayView& input,
                         const std::vector<MetricsPlugin*>& plugins);

}  // namespace fraz::pressio

#endif  // FRAZ_PRESSIO_METRICS_PLUGIN_HPP
