#include "pressio/evaluate.hpp"

#include <limits>

#include "metrics/acf.hpp"
#include "metrics/error_stats.hpp"
#include "metrics/ssim.hpp"
#include "util/timer.hpp"

namespace fraz::pressio {

RatioProbe probe_ratio(const Compressor& compressor, const ArrayView& input) {
  Buffer scratch;
  return probe_ratio(compressor, input, scratch);
}

RatioProbe probe_ratio(const Compressor& compressor, const ArrayView& input, Buffer& scratch) {
  RatioProbe r;
  r.input_bytes = input.size_bytes();
  Timer timer;
  const Status s = compressor.compress_into(input, scratch);
  r.seconds = timer.seconds();
  if (!s.ok()) throw_status(s);
  r.compressed_bytes = scratch.size();
  r.ratio = compression_ratio(r.input_bytes, r.compressed_bytes);
  r.bit_rate = bit_rate(input.elements(), r.compressed_bytes);
  return r;
}

FidelityReport evaluate_fidelity(const Compressor& compressor, const ArrayView& input) {
  FidelityReport report;
  report.probe.input_bytes = input.size_bytes();

  Buffer compressed;
  Timer timer;
  Status s = compressor.compress_into(input, compressed);
  report.probe.seconds = timer.seconds();
  if (!s.ok()) throw_status(s);
  report.probe.compressed_bytes = compressed.size();
  report.probe.ratio = compression_ratio(report.probe.input_bytes, compressed.size());
  report.probe.bit_rate = bit_rate(input.elements(), compressed.size());

  timer.reset();
  NdArray decoded;
  s = compressor.decompress_into(compressed.data(), compressed.size(), decoded);
  report.seconds_decompress = timer.seconds();
  if (!s.ok()) throw_status(s);

  const ErrorStats stats = error_stats(input, decoded.view());
  report.psnr_db = stats.psnr_db;
  report.rmse = stats.rmse;
  report.max_abs_error = stats.max_abs_error;
  report.acf_error = error_acf(input, decoded.view());
  report.ssim = input.dims() >= 2 ? ssim(input, decoded.view())
                                  : std::numeric_limits<double>::quiet_NaN();
  return report;
}

}  // namespace fraz::pressio
